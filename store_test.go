// Tests for the durable result store plumbing: two evaluators sharing one
// store, the canonical key/value codec, and the fingerprint contract.
package prophet_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"prophet"

	"prophet/internal/resultstore"
)

// TestResultStoreWarmsSecondEvaluator is the in-process warm-restart
// contract: an evaluator attached to a populated store answers a repeated
// sweep entirely from disk — byte-identical results and zero simulations,
// baselines included.
func TestResultStoreWarmsSecondEvaluator(t *testing.T) {
	jobs := testJobs(t)
	path := t.TempDir() + "/results.prst"

	cold := prophet.New(prophet.WithWorkers(4))
	st, err := resultstore.Open(path, resultstore.Options{Fingerprint: cold.StoreFingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	cold.UseResultStore(st)
	first, err := cold.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(jobs) {
		t.Fatalf("store holds %d entries after sweeping %d jobs", st.Len(), len(jobs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A brand-new evaluator on a re-opened store is the warm restart: its
	// engine must never run.
	warm := prophet.New(prophet.WithWorkers(4))
	st2, err := resultstore.Open(path, resultstore.Options{Fingerprint: warm.StoreFingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm.UseResultStore(st2)
	second, err := warm.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := warm.BaselineCacheStats(); misses != 0 {
		t.Fatalf("warm sweep simulated %d baselines, want 0 (all jobs stored)", misses)
	}
	if got := st2.Stats(); got.Hits != int64(len(jobs)) {
		t.Fatalf("warm sweep disk hits = %d, want %d", got.Hits, len(jobs))
	}
	if len(first) != len(second) {
		t.Fatalf("result lengths: cold=%d warm=%d", len(first), len(second))
	}
	for i := range first {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("job %d errored: cold=%v warm=%v", i, first[i].Err, second[i].Err)
		}
		if first[i].Stats != second[i].Stats {
			t.Errorf("job %d (%s/%s) diverged from disk:\n cold %+v\n warm %+v",
				i, jobs[i].Workload.Name, jobs[i].Scheme, first[i].Stats, second[i].Stats)
		}
	}
}

// TestResultStoreRunJobHits: the single-job path consults the store too —
// a second evaluator's Run never touches its engine for a stored job.
func TestResultStoreRunJobHits(t *testing.T) {
	w, err := prophet.Find("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	w = w.WithRecords(20_000)
	path := t.TempDir() + "/results.prst"

	a := prophet.New()
	st, err := resultstore.Open(path, resultstore.Options{Fingerprint: a.StoreFingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	a.UseResultStore(st)
	first, err := a.Run(context.Background(), w, prophet.Prophet)
	if err != nil {
		t.Fatal(err)
	}

	b := prophet.New(prophet.WithResultStore(st))
	second, err := b.Run(context.Background(), w, prophet.Prophet)
	if err != nil {
		t.Fatal(err)
	}
	if _, misses := b.BaselineCacheStats(); misses != 0 {
		t.Fatalf("stored Run still simulated a baseline (misses=%d)", misses)
	}
	if first != second {
		t.Fatalf("stored Run diverged:\n first  %+v\n second %+v", first, second)
	}
}

// TestStoredResultCodecIsByteStable: decode→re-encode of a stored value is
// the identity, which is what makes disk-tier replays byte-identical.
func TestStoredResultCodecIsByteStable(t *testing.T) {
	ev := prophet.New()
	w, err := prophet.Find("mcf")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.Run(context.Background(), w.WithRecords(20_000), prophet.Triangel)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := prophet.EncodeStoredResult(prophet.Report{Stats: rep})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := prophet.DecodeStoredResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := prophet.EncodeStoredResult(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("codec not byte-stable:\n enc %s\n re  %s", enc, re)
	}
	if dec.Stats != rep {
		t.Fatalf("round-trip changed stats:\n in  %+v\n out %+v", rep, dec.Stats)
	}
}

// TestDecodeStoredResultRejectsUnknownFields: schema drift the fingerprint
// failed to catch degrades to a decode error (→ recompute), never to
// silently zeroed fields.
func TestDecodeStoredResultRejectsUnknownFields(t *testing.T) {
	if _, err := prophet.DecodeStoredResult([]byte(`{"stats":{},"futureField":1}`)); err == nil {
		t.Fatal("unknown field decoded without error")
	}
	if _, err := prophet.DecodeStoredResult([]byte(`not json`)); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

// TestStoreKeyMatchesServingCacheShape pins the cross-tier key contract:
// every tier keys on the same canonical string, so a result stored by one
// entry point satisfies all the others.
func TestStoreKeyMatchesServingCacheShape(t *testing.T) {
	j := prophet.Job{
		Workload:    prophet.Workload{Name: "sphinx3", Records: 20_000},
		Scheme:      prophet.Prophet,
		TuneRecords: 5_000,
	}
	want := "evaluate\nsphinx3\n20000\nprophet\n5000"
	if got := prophet.StoreKey(j); got != want {
		t.Fatalf("StoreKey = %q, want %q", got, want)
	}
}

// TestStoreFingerprintSeparatesConfigurations: different engine options
// must land in different store namespaces.
func TestStoreFingerprintSeparatesConfigurations(t *testing.T) {
	base := prophet.New().StoreFingerprint()
	tuned := prophet.New(prophet.WithOptions(prophet.Options{DRAMChannels: 2})).StoreFingerprint()
	if base == tuned {
		t.Fatal("distinct engine options share a store fingerprint")
	}
	if !strings.Contains(base, "schema=") || !strings.Contains(base, "version=") {
		t.Fatalf("fingerprint missing schema/version markers: %q", base)
	}
	if prophet.New().StoreFingerprint() != base {
		t.Fatal("fingerprint not deterministic for equal configurations")
	}
}
