package resultstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openT(t *testing.T, path string, o Options) *Store {
	t.Helper()
	s, err := Open(path, o)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestColdVsWarmOpenByteIdentity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.prst")
	o := Options{Fingerprint: "fp1"}
	vals := map[string][]byte{
		"a": []byte(`{"stats":1}`),
		"b": []byte(`{"stats":2}`),
		"c": bytes.Repeat([]byte{0, 1, 2, 0xff}, 100),
	}

	s := openT(t, path, o)
	for k, v := range vals {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	cold := map[string][]byte{}
	for k := range vals {
		v, ok := s.Get(k)
		if !ok {
			t.Fatalf("cold Get(%s) missed", k)
		}
		cold[k] = v
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	w := openT(t, path, o)
	if w.Len() != len(vals) {
		t.Fatalf("warm open recovered %d entries, want %d", w.Len(), len(vals))
	}
	for k, v := range vals {
		got, ok := w.Get(k)
		if !ok {
			t.Fatalf("warm Get(%s) missed", k)
		}
		if !bytes.Equal(got, v) || !bytes.Equal(got, cold[k]) {
			t.Fatalf("warm Get(%s) = %q, want byte-identical to stored %q", k, got, v)
		}
	}
	st := w.Stats()
	if st.CorruptSkipped != 0 || st.Resets != 0 {
		t.Fatalf("clean warm open reported damage: %+v", st)
	}
}

func TestPutIsIdempotent(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "s.prst"), Options{Fingerprint: "fp"})
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v; re-putting a stored key must be a no-op", v, ok)
	}
	st := s.Stats()
	if st.Writes != 1 || st.DupWrites != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want writes=1 dupWrites=1 entries=1", st)
	}
}

func TestFingerprintMismatchRejectsAtOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.prst")
	s := openT(t, path, Options{Fingerprint: "engine-v1"})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := Open(path, Options{Fingerprint: "engine-v2"}); !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("Open with changed fingerprint: err = %v, want ErrFingerprintMismatch", err)
	}

	// ResetOnMismatch discards the stale contents instead of refusing.
	var warned bool
	r := openT(t, path, Options{
		Fingerprint:     "engine-v2",
		ResetOnMismatch: true,
		Logf:            func(string, ...any) { warned = true },
	})
	if r.Len() != 0 {
		t.Fatalf("reset store still has %d entries", r.Len())
	}
	if _, ok := r.Get("k"); ok {
		t.Fatal("stale entry survived a fingerprint reset")
	}
	if st := r.Stats(); st.Resets != 1 {
		t.Fatalf("stats %+v, want resets=1", st)
	}
	if !warned {
		t.Fatal("fingerprint reset was not logged")
	}
}

func TestOpenRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store.json")
	if err := os.WriteFile(path, []byte(`{"precious":"user data"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{Fingerprint: "fp", ResetOnMismatch: true}); err == nil {
		t.Fatal("Open accepted (and would have destroyed) a non-store file")
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != `{"precious":"user data"}` {
		t.Fatalf("foreign file was modified: %q, %v", b, err)
	}
}

// findRecord locates the on-disk offset of key's record by scanning the raw
// file, so corruption tests can flip bytes surgically.
func findRecord(t *testing.T, path, fp, key string) (off, n int) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, hdrLen, err := parseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	pk := fp + keySep + key
	i := hdrLen
	for i < len(buf) {
		klen := int(binary.LittleEndian.Uint32(buf[i+4:]))
		vlen := int(binary.LittleEndian.Uint32(buf[i+8:]))
		rn := recHeaderLen + klen + vlen
		if string(buf[i+recHeaderLen:i+recHeaderLen+klen]) == pk {
			return i, rn
		}
		i += rn
	}
	t.Fatalf("record %q not found in %s", key, path)
	return 0, 0
}

func TestBitFlippedEntryIsSkippedNotFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.prst")
	const fp = "fp"
	s := openT(t, path, Options{Fingerprint: fp})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one bit inside k2's value bytes.
	off, n := findRecord(t, path, fp, "k2")
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := int64(off + n - 2) // inside the value
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warnings int
	w := openT(t, path, Options{Fingerprint: fp, Logf: func(string, ...any) { warnings++ }})
	if w.Len() != 4 {
		t.Fatalf("recovered %d entries, want 4 (corrupt k2 dropped)", w.Len())
	}
	if _, ok := w.Get("k2"); ok {
		t.Fatal("bit-flipped entry was served")
	}
	for _, k := range []string{"k0", "k1", "k3", "k4"} {
		v, ok := w.Get(k)
		if !ok || !bytes.Equal(v, []byte("value-"+k[1:])) {
			t.Fatalf("intact entry %s lost in recovery: %q, %v", k, v, ok)
		}
	}
	st := w.Stats()
	if st.CorruptSkipped == 0 {
		t.Fatalf("stats %+v, want corruptSkipped > 0", st)
	}
	if warnings == 0 {
		t.Fatal("corruption recovery was not logged")
	}

	// The heal rewrote a clean log: a third open sees no damage and a new
	// Put for the lost key round-trips.
	if err := w.Put("k2", []byte("value-2")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	h := openT(t, path, Options{Fingerprint: fp})
	if st := h.Stats(); st.CorruptSkipped != 0 || h.Len() != 5 {
		t.Fatalf("healed log still dirty: %+v entries=%d", st, h.Len())
	}
}

func TestTruncatedTailIsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.prst")
	s := openT(t, path, Options{Fingerprint: "fp"})
	if err := s.Put("keep", []byte("kept-value")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte("torn-value")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half (a crash mid-append).
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	w := openT(t, path, Options{Fingerprint: "fp"})
	if _, ok := w.Get("torn"); ok {
		t.Fatal("truncated entry was served")
	}
	if v, ok := w.Get("keep"); !ok || string(v) != "kept-value" {
		t.Fatalf("entry before the torn tail lost: %q, %v", v, ok)
	}
	if st := w.Stats(); st.CorruptSkipped == 0 {
		t.Fatalf("stats %+v, want corruptSkipped > 0", st)
	}
	// Appends after the heal land on a clean tail.
	if err := w.Put("torn", []byte("torn-value")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	h := openT(t, path, Options{Fingerprint: "fp"})
	if v, ok := h.Get("torn"); !ok || string(v) != "torn-value" {
		t.Fatalf("re-put after heal lost: %q, %v", v, ok)
	}
}

func TestSizeCapCompactionKeepsRecentEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.prst")
	const capBytes = 4096
	s := openT(t, path, Options{Fingerprint: "fp", MaxBytes: capBytes})
	val := bytes.Repeat([]byte("x"), 200)
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 || st.Evicted == 0 {
		t.Fatalf("stats %+v, want compactions and evictions", st)
	}
	if st.Bytes > capBytes {
		t.Fatalf("log is %d bytes, cap %d", st.Bytes, capBytes)
	}
	if _, ok := s.Get("k099"); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok := s.Get("k000"); ok {
		t.Fatal("oldest entry survived a full-pressure compaction")
	}
	// The compacted log recovers cleanly.
	s.Close()
	w := openT(t, path, Options{Fingerprint: "fp"})
	if v, ok := w.Get("k099"); !ok || !bytes.Equal(v, val) {
		t.Fatal("compacted log lost its newest entry across a restart")
	}
}

func TestGetRefreshesRecencyForCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.prst")
	s := openT(t, path, Options{Fingerprint: "fp", MaxBytes: 2048})
	val := bytes.Repeat([]byte("y"), 100)
	if err := s.Put("pinned", val); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, ok := s.Get("pinned"); !ok {
			t.Fatalf("pinned entry lost at put %d", i)
		}
		if err := s.Put(fmt.Sprintf("f%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get("pinned"); !ok {
		t.Fatal("frequently-read entry was evicted before cold ones")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "s.prst"), Options{Fingerprint: "fp"})
	const goroutines = 8
	const keys = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("k%d", i)
				want := []byte(fmt.Sprintf("v%d", i))
				if err := s.Put(k, want); err != nil {
					t.Errorf("Put(%s): %v", k, err)
					return
				}
				if v, ok := s.Get(k); !ok || !bytes.Equal(v, want) {
					t.Errorf("Get(%s) = %q, %v", k, v, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Entries != keys {
		t.Fatalf("entries = %d, want %d", st.Entries, keys)
	}
	// Exactly one disk write per key; every other Put deduplicated.
	if st.Writes != keys || st.DupWrites != int64(keys*(goroutines-1)) {
		t.Fatalf("stats %+v, want writes=%d dupWrites=%d", st, keys, keys*(goroutines-1))
	}
}

func TestClosedStore(t *testing.T) {
	s := openT(t, filepath.Join(t.TempDir(), "s.prst"), Options{Fingerprint: "fp"})
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("Get after Close served an entry")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
