// Package resultstore implements a durable, content-addressed result store:
// the disk tier under prophetd's in-memory serving cache. It persists
// completed evaluation results across process restarts — the serving-side
// analogue of the paper's profile-then-reuse philosophy, where expensive
// offline work is written down once and amortized across every later run —
// and, mounted under a fleet coordinator, turns the whole fleet's repeat
// traffic into O(1) disk reads instead of re-simulations.
//
// The format is a single append-only log file plus an in-memory index:
//
//	header:  magic "PRSTORE1", fingerprint length, fingerprint, CRC32
//	record:  magic, key length, value length, CRC32(key‖value), key, value
//
// all little-endian. Results are immutable — a key's value is a pure
// function of the request and the engine fingerprint — so the log needs no
// update-in-place: Put appends, Get reads by offset, and a size cap is
// enforced by compaction (rewrite the most recently used entries, drop the
// rest).
//
// Two properties carry the correctness story:
//
//   - Self-invalidation: the engine fingerprint (schema generation, build
//     version, resolved simulation options) is stamped into the header and
//     prefixed onto every record's key. Open rejects a file written under a
//     different fingerprint (or, with ResetOnMismatch, discards it with a
//     logged warning), so upgrading the simulator can never serve stale
//     bytes.
//   - Corruption robustness: every record is CRC-checked on load and again
//     on every Get. A truncated or bit-flipped entry is skipped with a
//     logged warning and counted in Stats — never a crash — and a log found
//     dirty at Open is compacted back to a clean file.
//
// The store is safe for concurrent use by one process. It takes no file
// lock: two live processes must not share one store file (restarts sharing
// a path are the intended use).
package resultstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"sort"
	"strings"
	"sync"
)

var (
	// ErrFingerprintMismatch is returned by Open (unless ResetOnMismatch is
	// set) when the store file was written by an engine with a different
	// fingerprint: its results describe a different simulator.
	ErrFingerprintMismatch = errors.New("resultstore: engine fingerprint mismatch")
	// ErrClosed is returned by Put after Close.
	ErrClosed = errors.New("resultstore: store is closed")
)

var headerMagic = []byte("PRSTORE1")

const (
	recMagic      = 0x9E57C0DE // marks the start of every record
	recHeaderLen  = 16         // magic + keyLen + valLen + crc
	maxRecordLen  = 1 << 28    // sanity bound on keyLen+valLen during recovery
	gcKeepPercent = 90         // compaction keeps at most this % of MaxBytes
)

// keySep joins the fingerprint and the logical key into the physical record
// key, so entries are content-addressed by (fingerprint, key) even if the
// header check were ever bypassed. Fingerprints are printable flag/version
// strings and never contain control bytes.
const keySep = "\x1f"

// Options configure Open.
type Options struct {
	// Fingerprint identifies the engine that produces (and may consume) the
	// stored results — see prophet.StoreFingerprint. Required in spirit: an
	// empty fingerprint still round-trips but disables staleness protection.
	Fingerprint string
	// MaxBytes caps the log file size; exceeding it triggers a compaction
	// that keeps the most recently used entries within 90% of the cap.
	// 0 means unbounded.
	MaxBytes int64
	// ResetOnMismatch discards a store written under a different fingerprint
	// instead of failing Open — the daemon's behavior, where a simulator
	// upgrade should cold-start the cache, not refuse to boot.
	ResetOnMismatch bool
	// Logf receives recovery and corruption warnings (nil = silent).
	Logf func(format string, args ...any)
}

// recref locates one live record in the log.
type recref struct {
	off  int64  // file offset of the record header
	n    int    // total record length (header + key + value)
	vlen int    // value length
	seq  uint64 // last-use ordinal for compaction (higher = more recent)
}

// Stats is a point-in-time snapshot of the store, surfaced by prophetd at
// GET /v1/stats under "store".
type Stats struct {
	// Entries and Bytes describe the live log.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Get outcomes; Writes counts appended records
	// and DupWrites the idempotent re-puts of already-stored keys.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Writes    int64 `json:"writes"`
	DupWrites int64 `json:"dupWrites"`
	// CorruptSkipped counts truncated or checksum-failing entries dropped
	// during recovery or reads — each one a logged warning, never a crash.
	CorruptSkipped int64 `json:"corruptSkipped"`
	// Evicted and Compactions describe size-cap GC activity; Resets counts
	// fingerprint-mismatch discards at Open.
	Evicted     int64 `json:"evicted"`
	Compactions int64 `json:"compactions"`
	Resets      int64 `json:"resets"`
}

// Store is the durable result store. All methods are safe for concurrent
// use.
type Store struct {
	mu sync.Mutex

	path string
	fp   string
	max  int64
	logf func(string, ...any)

	f     *os.File
	size  int64
	index map[string]recref // logical key -> live record
	seq   uint64

	hits, misses, writes, dup, corrupt, evicted, compactions, resets int64
}

// Open loads (or creates) the store at path, validating its fingerprint and
// recovering its index. A file whose header does not parse as a result
// store is always an error — Open never destroys a file it does not
// recognize. A recognized store with a different fingerprint errors with
// ErrFingerprintMismatch, or is discarded when ResetOnMismatch is set.
func Open(path string, o Options) (*Store, error) {
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Store{
		path:  path,
		fp:    o.Fingerprint,
		max:   o.MaxBytes,
		logf:  logf,
		index: map[string]recref{},
	}
	buf, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("resultstore: %s: %w", path, err)
	}
	if len(buf) == 0 {
		if err := s.createLocked(); err != nil {
			return nil, err
		}
		return s, nil
	}
	fp, hdrLen, err := parseHeader(buf)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %s: %w", path, err)
	}
	if fp != o.Fingerprint {
		if !o.ResetOnMismatch {
			return nil, fmt.Errorf("resultstore: %s: %w (store %q, engine %q)",
				path, ErrFingerprintMismatch, fp, o.Fingerprint)
		}
		s.resets++
		s.logf("resultstore: %s: engine fingerprint changed (store %q, engine %q); discarding %d bytes",
			path, fp, o.Fingerprint, len(buf))
		if err := s.createLocked(); err != nil {
			return nil, err
		}
		return s, nil
	}

	recs, corrupt, clean := scanRecords(buf[hdrLen:], int64(hdrLen))
	s.corrupt += corrupt
	if corrupt > 0 {
		s.logf("resultstore: %s: skipped %d corrupt or truncated entries during recovery", path, corrupt)
	}
	// Deduplicate (last write wins) while preserving append order for seq.
	live := dedupe(recs)
	prefix := s.fp + keySep
	if !clean {
		// Heal: rewrite only the verified records so the tail is appendable
		// again. Offsets are reassigned by the rewrite.
		ents := make([]liveEntry, 0, len(live))
		for i, r := range live {
			key, ok := strings.CutPrefix(r.key, prefix)
			if !ok {
				s.corrupt++
				continue
			}
			ents = append(ents, liveEntry{key: key, val: r.val, seq: uint64(i + 1)})
		}
		if err := s.rewriteLocked(ents); err != nil {
			return nil, err
		}
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultstore: %s: %w", path, err)
	}
	s.f = f
	s.size = int64(len(buf))
	for i, r := range live {
		key, ok := strings.CutPrefix(r.key, prefix)
		if !ok {
			s.corrupt++
			continue
		}
		s.index[key] = recref{off: r.off, n: r.n, vlen: len(r.val), seq: uint64(i + 1)}
	}
	s.seq = uint64(len(live))
	return s, nil
}

// Get returns the stored value for key. Every read re-verifies the record
// checksum; a record that fails is dropped from the index, counted, and
// reported as a miss. The returned slice is the caller's to keep.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.index[key]
	if !ok || s.f == nil {
		s.misses++
		return nil, false
	}
	rec := make([]byte, r.n)
	if _, err := s.f.ReadAt(rec, r.off); err != nil {
		s.dropCorruptLocked(key, fmt.Sprintf("read: %v", err))
		return nil, false
	}
	gotKey, val, err := decodeRecord(rec)
	if err != nil || gotKey != s.fp+keySep+key {
		s.dropCorruptLocked(key, "checksum or key mismatch")
		return nil, false
	}
	s.seq++
	r.seq = s.seq
	s.index[key] = r
	s.hits++
	return val, true
}

// dropCorruptLocked removes a record that failed verification at read time.
func (s *Store) dropCorruptLocked(key, reason string) {
	delete(s.index, key)
	s.corrupt++
	s.misses++
	s.logf("resultstore: %s: dropping corrupt entry (%s)", s.path, reason)
}

// Put appends the value under key. Results are immutable: a key that is
// already stored is a no-op (counted as a duplicate write), which makes
// concurrent write-through from several cache tiers idempotent.
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ErrClosed
	}
	if _, ok := s.index[key]; ok {
		s.dup++
		return nil
	}
	rec := encodeRecord(s.fp+keySep+key, val)
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		// A partial tail is healed by the next Open; keep this process's
		// view consistent by truncating back to the last good record.
		_ = s.f.Truncate(s.size)
		return fmt.Errorf("resultstore: %s: append: %w", s.path, err)
	}
	s.seq++
	s.index[key] = recref{off: s.size, n: len(rec), vlen: len(val), seq: s.seq}
	s.size += int64(len(rec))
	s.writes++
	if s.max > 0 && s.size > s.max {
		if err := s.gcLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:        len(s.index),
		Bytes:          s.size,
		Hits:           s.hits,
		Misses:         s.misses,
		Writes:         s.writes,
		DupWrites:      s.dup,
		CorruptSkipped: s.corrupt,
		Evicted:        s.evicted,
		Compactions:    s.compactions,
		Resets:         s.resets,
	}
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ErrClosed
	}
	return s.f.Sync()
}

// Close syncs and closes the log. Get returns misses and Put errors after
// Close.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// createLocked starts an empty log: truncate and write a fresh header.
func (s *Store) createLocked() error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: %s: %w", s.path, err)
	}
	hdr := encodeHeader(s.fp)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return fmt.Errorf("resultstore: %s: write header: %w", s.path, err)
	}
	s.f = f
	s.size = int64(len(hdr))
	s.index = map[string]recref{}
	s.seq = 0
	return nil
}

// gcLocked enforces the size cap: keep the most recently used entries that
// fit within gcKeepPercent of MaxBytes (always at least the newest one) and
// rewrite the log without the rest.
func (s *Store) gcLocked() error {
	type kv struct {
		key string
		ref recref
	}
	all := make([]kv, 0, len(s.index))
	for k, r := range s.index {
		all = append(all, kv{k, r})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ref.seq > all[j].ref.seq })
	target := s.max / 100 * gcKeepPercent
	budget := int64(len(encodeHeader(s.fp)))
	var keep []liveEntry
	for i, e := range all {
		sz := int64(e.ref.n)
		if i > 0 && budget+sz > target {
			break
		}
		rec := make([]byte, e.ref.n)
		if _, err := s.f.ReadAt(rec, e.ref.off); err != nil {
			s.corrupt++
			continue
		}
		_, val, err := decodeRecord(rec)
		if err != nil {
			s.corrupt++
			continue
		}
		budget += sz
		keep = append(keep, liveEntry{key: e.key, val: val, seq: e.ref.seq})
	}
	s.evicted += int64(len(all) - len(keep))
	s.compactions++
	// Rewrite oldest-first so a future recovery's last-write-wins dedupe
	// sees the same relative order.
	sort.Slice(keep, func(i, j int) bool { return keep[i].seq < keep[j].seq })
	s.logf("resultstore: %s: size cap %d exceeded; compacting to %d entries", s.path, s.max, len(keep))
	return s.rewriteLocked(keep)
}

// liveEntry is one verified record held in memory during a rewrite.
type liveEntry struct {
	key string // logical key (fingerprint prefix stripped)
	val []byte
	seq uint64
}

// rewriteLocked replaces the log with exactly the given entries, written
// atomically (temp file + rename), and rebuilds the index. Entry seq values
// are preserved so recency ordering survives compaction.
func (s *Store) rewriteLocked(ents []liveEntry) error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("resultstore: %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	hdr := encodeHeader(s.fp)
	if _, err := w.Write(hdr); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %s: %w", tmp, err)
	}
	index := make(map[string]recref, len(ents))
	off := int64(len(hdr))
	var maxSeq uint64
	for _, e := range ents {
		rec := encodeRecord(s.fp+keySep+e.key, e.val)
		if _, err := w.Write(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("resultstore: %s: %w", tmp, err)
		}
		index[e.key] = recref{off: off, n: len(rec), vlen: len(e.val), seq: e.seq}
		off += int64(len(rec))
		if e.seq > maxSeq {
			maxSeq = e.seq
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("resultstore: rename %s: %w", tmp, err)
	}
	if s.f != nil {
		s.f.Close()
	}
	s.f = f
	s.size = off
	s.index = index
	if maxSeq > s.seq {
		s.seq = maxSeq
	}
	return nil
}

// --- wire format -----------------------------------------------------------

// encodeHeader builds the file header for a fingerprint.
func encodeHeader(fp string) []byte {
	b := make([]byte, 0, len(headerMagic)+4+len(fp)+4)
	b = append(b, headerMagic...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(fp)))
	b = append(b, fp...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE([]byte(fp)))
	return b
}

// parseHeader validates the header and returns the stored fingerprint and
// header length. Any inconsistency is an error: Open must never mistake (or
// destroy) a file that is not a result store.
func parseHeader(buf []byte) (fp string, hdrLen int, err error) {
	if len(buf) < len(headerMagic)+8 || !bytes.Equal(buf[:len(headerMagic)], headerMagic) {
		return "", 0, errors.New("not a result store (bad magic)")
	}
	p := len(headerMagic)
	n := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if n < 0 || n > maxRecordLen || len(buf) < p+n+4 {
		return "", 0, errors.New("corrupt header")
	}
	fp = string(buf[p : p+n])
	p += n
	if binary.LittleEndian.Uint32(buf[p:]) != crc32.ChecksumIEEE([]byte(fp)) {
		return "", 0, errors.New("corrupt header (fingerprint checksum)")
	}
	return fp, p + 4, nil
}

// encodeRecord serializes one record.
func encodeRecord(key string, val []byte) []byte {
	b := make([]byte, 0, recHeaderLen+len(key)+len(val))
	b = binary.LittleEndian.AppendUint32(b, recMagic)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(key)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(val)))
	crc := crc32.NewIEEE()
	crc.Write([]byte(key))
	crc.Write(val)
	b = binary.LittleEndian.AppendUint32(b, crc.Sum32())
	b = append(b, key...)
	b = append(b, val...)
	return b
}

// decodeRecord verifies and splits one complete record buffer.
func decodeRecord(rec []byte) (key string, val []byte, err error) {
	if len(rec) < recHeaderLen || binary.LittleEndian.Uint32(rec) != recMagic {
		return "", nil, errors.New("bad record magic")
	}
	klen := int(binary.LittleEndian.Uint32(rec[4:]))
	vlen := int(binary.LittleEndian.Uint32(rec[8:]))
	if klen < 0 || vlen < 0 || klen+vlen > maxRecordLen || len(rec) != recHeaderLen+klen+vlen {
		return "", nil, errors.New("bad record lengths")
	}
	want := binary.LittleEndian.Uint32(rec[12:])
	body := rec[recHeaderLen:]
	if crc32.ChecksumIEEE(body) != want {
		return "", nil, errors.New("record checksum mismatch")
	}
	return string(body[:klen]), append([]byte(nil), body[klen:]...), nil
}

// scanned is one record found during recovery; val aliases the scan buffer.
type scanned struct {
	key string
	val []byte
	off int64 // absolute file offset
	n   int
}

// scanRecords walks the record region of the log. It tolerates arbitrary
// damage: a record whose magic, lengths, or checksum do not verify is
// counted and skipped, resynchronizing on the next record magic; a
// truncated tail is counted and dropped. clean reports whether the whole
// region parsed without damage (a dirty log is rewritten by the caller).
func scanRecords(body []byte, base int64) (recs []scanned, corrupt int64, clean bool) {
	clean = true
	magic := binary.LittleEndian.AppendUint32(nil, recMagic)
	resync := func(from int) int {
		j := bytes.Index(body[from:], magic)
		if j < 0 {
			return -1
		}
		return from + j
	}
	i := 0
	for i < len(body) {
		if len(body)-i < recHeaderLen {
			corrupt++
			clean = false
			break
		}
		if binary.LittleEndian.Uint32(body[i:]) != recMagic {
			corrupt++
			clean = false
			if i = resync(i + 1); i < 0 {
				break
			}
			continue
		}
		klen := int(binary.LittleEndian.Uint32(body[i+4:]))
		vlen := int(binary.LittleEndian.Uint32(body[i+8:]))
		if klen < 0 || vlen < 0 || klen+vlen > maxRecordLen || i+recHeaderLen+klen+vlen > len(body) {
			corrupt++
			clean = false
			if i = resync(i + 1); i < 0 {
				break
			}
			continue
		}
		n := recHeaderLen + klen + vlen
		rec := body[i : i+n]
		want := binary.LittleEndian.Uint32(rec[12:])
		if crc32.ChecksumIEEE(rec[recHeaderLen:]) != want {
			corrupt++
			clean = false
			i += n
			continue
		}
		recs = append(recs, scanned{
			key: string(rec[recHeaderLen : recHeaderLen+klen]),
			val: rec[recHeaderLen+klen:],
			off: base + int64(i),
			n:   n,
		})
		i += n
	}
	return recs, corrupt, clean
}

// dedupe keeps the last occurrence of every key, preserving append order.
func dedupe(recs []scanned) []scanned {
	last := make(map[string]int, len(recs))
	for i, r := range recs {
		last[r.key] = i
	}
	out := recs[:0]
	for i, r := range recs {
		if last[r.key] == i {
			out = append(out, r)
		}
	}
	return out
}
