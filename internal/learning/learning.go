// Package learning implements Step 3 of the Prophet pipeline (Section 4.3):
// merging counters collected under different program inputs so one optimized
// binary adapts to all of them.
//
// The merge rules are the paper's equations:
//
//   - Equation 4, per-PC metrics (accuracy, miss weight):
//     Merged = o + (n - o) / min(l+1, L)  when the PC was seen before,
//     Merged = n                          when the PC is new,
//     where l counts completed learning loops and L is a designer parameter.
//     New inputs nudge existing estimates toward their observations (Load E
//     of Figure 7), first observations are adopted wholesale (Loads B/C),
//     and agreeing observations are fixed points (Load A).
//
//   - Equation 5, the allocated-entry count: Merged = max(o, n) — a
//     conservative table size accommodating every input seen.
package learning

import (
	"prophet/internal/mem"
	"prophet/internal/pmu"
)

// DefaultL is the designer parameter L bounding how slowly old knowledge
// yields to new observations.
const DefaultL = 4

// PCProfile is the merged per-PC state.
type PCProfile struct {
	// Accuracy is the merged prefetching accuracy in [0,1], or -1 if the
	// PC never issued a prefetch under any input.
	Accuracy float64
	// MissWeight is the merged L2 miss contribution (hint-buffer rank).
	MissWeight float64
}

// Profile is the persistent learning state carried across inputs.
type Profile struct {
	// L is the Equation 4 designer parameter.
	L int
	// Loops counts completed Analysis steps (l in Equation 4).
	Loops int
	// PCs holds the merged per-PC profile.
	PCs map[mem.Addr]PCProfile
	// AllocatedEntries is the Equation 5 merged table requirement.
	AllocatedEntries uint64
}

// NewProfile returns an empty profile with designer parameter L
// (DefaultL when l <= 0).
func NewProfile(l int) *Profile {
	if l <= 0 {
		l = DefaultL
	}
	return &Profile{L: l, PCs: make(map[mem.Addr]PCProfile)}
}

// merge applies Equation 4 to one scalar.
func (p *Profile) merge(old, new float64) float64 {
	den := p.Loops + 1
	if den > p.L {
		den = p.L
	}
	return old + (new-old)/float64(den)
}

// Learn folds one profiling run's counters into the profile and advances the
// loop counter. The first call (Loops == 0) adopts the counters directly.
func (p *Profile) Learn(c *pmu.Counters) {
	for pc, e := range c.PC {
		newAcc := e.Accuracy()
		newMiss := float64(e.L2Misses)
		old, seen := p.PCs[pc]
		if !seen {
			// o not in X: adopt the new observation (Loads B/C).
			p.PCs[pc] = PCProfile{Accuracy: newAcc, MissWeight: newMiss}
			continue
		}
		merged := old
		// A PC that issued nothing this run (-1) carries no accuracy
		// evidence; keep the old estimate. Symmetrically, a PC with no
		// prior accuracy adopts the new one.
		switch {
		case newAcc < 0:
			// no new evidence
		case old.Accuracy < 0:
			merged.Accuracy = newAcc
		default:
			merged.Accuracy = p.merge(old.Accuracy, newAcc)
		}
		merged.MissWeight = p.merge(old.MissWeight, newMiss)
		p.PCs[pc] = merged
	}
	// Equation 5: conservative maximum of table requirements.
	if n := c.AllocatedEntries(); n > p.AllocatedEntries {
		p.AllocatedEntries = n
	}
	p.Loops++
}

// Accuracy returns the merged accuracy for pc (-1 when unknown).
func (p *Profile) Accuracy(pc mem.Addr) float64 {
	if e, ok := p.PCs[pc]; ok {
		return e.Accuracy
	}
	return -1
}

// MissWeights returns the merged per-PC miss weights, rounded to integers
// for the hint buffer's ranking interface.
func (p *Profile) MissWeights() map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64, len(p.PCs))
	for pc, e := range p.PCs {
		if e.MissWeight > 0 {
			out[pc] = uint64(e.MissWeight + 0.5)
		} else {
			out[pc] = 0
		}
	}
	return out
}

// Clone deep-copies the profile.
func (p *Profile) Clone() *Profile {
	out := &Profile{L: p.L, Loops: p.Loops, AllocatedEntries: p.AllocatedEntries, PCs: make(map[mem.Addr]PCProfile, len(p.PCs))}
	for k, v := range p.PCs {
		out.PCs[k] = v
	}
	return out
}
