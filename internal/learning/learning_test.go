package learning

import (
	"math"
	"testing"

	"prophet/internal/mem"
	"prophet/internal/pmu"
)

func counters(accByPC map[mem.Addr]float64, allocated uint64) *pmu.Counters {
	c := pmu.NewCounters(1)
	for pc, acc := range accByPC {
		e := &pmu.PCCounters{Issued: 1000, Useful: uint64(acc * 1000), L2Misses: 100}
		c.PC[pc] = e
	}
	c.SetTableCounters(allocated, 0)
	return c
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFirstLearnAdoptsCounters(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.8, 2: 0.1}, 5000))
	if !near(p.Accuracy(1), 0.8) || !near(p.Accuracy(2), 0.1) {
		t.Fatalf("first learn: acc(1)=%v acc(2)=%v", p.Accuracy(1), p.Accuracy(2))
	}
	if p.AllocatedEntries != 5000 {
		t.Fatalf("AllocatedEntries = %d", p.AllocatedEntries)
	}
	if p.Loops != 1 {
		t.Fatalf("Loops = %d", p.Loops)
	}
}

// Load A of Figure 7: identical behaviour under both inputs is a fixed point.
func TestEquation4FixedPoint(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.8}, 100))
	p.Learn(counters(map[mem.Addr]float64{1: 0.8}, 100))
	if !near(p.Accuracy(1), 0.8) {
		t.Fatalf("agreeing inputs moved the estimate: %v", p.Accuracy(1))
	}
}

// Loads B and C of Figure 7: a PC first seen under input Y is adopted as-is.
func TestEquation4NewPCAdopted(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.8}, 100))
	p.Learn(counters(map[mem.Addr]float64{2: 0.3}, 100))
	if !near(p.Accuracy(2), 0.3) {
		t.Fatalf("new PC accuracy = %v, want adopted 0.3", p.Accuracy(2))
	}
	if !near(p.Accuracy(1), 0.8) {
		t.Fatalf("absent PC must keep old estimate, got %v", p.Accuracy(1))
	}
}

// Load E of Figure 7: conflicting observations move the estimate by
// (n - o) / min(l+1, L).
func TestEquation4ConflictingObservation(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.2}, 100)) // l becomes 1
	p.Learn(counters(map[mem.Addr]float64{1: 1.0}, 100)) // min(l+1,L) = 2
	want := 0.2 + (1.0-0.2)/2
	if !near(p.Accuracy(1), want) {
		t.Fatalf("merged accuracy = %v, want %v", p.Accuracy(1), want)
	}
}

// Over time, frequently observed values dominate (Section 4.3).
func TestEquation4Convergence(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.0}, 100))
	for i := 0; i < 20; i++ {
		p.Learn(counters(map[mem.Addr]float64{1: 0.9}, 100))
	}
	if p.Accuracy(1) < 0.85 {
		t.Fatalf("estimate %v did not converge toward 0.9", p.Accuracy(1))
	}
}

func TestEquation4LBoundsAdaptationRate(t *testing.T) {
	// With L=2 the step size never shrinks below 1/2, adapting faster
	// than L=8 after many loops.
	fast, slow := NewProfile(2), NewProfile(8)
	for i := 0; i < 10; i++ {
		fast.Learn(counters(map[mem.Addr]float64{1: 0.0}, 100))
		slow.Learn(counters(map[mem.Addr]float64{1: 0.0}, 100))
	}
	fast.Learn(counters(map[mem.Addr]float64{1: 1.0}, 100))
	slow.Learn(counters(map[mem.Addr]float64{1: 1.0}, 100))
	if fast.Accuracy(1) <= slow.Accuracy(1) {
		t.Fatalf("L=2 (%v) should adapt faster than L=8 (%v)", fast.Accuracy(1), slow.Accuracy(1))
	}
	if !near(fast.Accuracy(1), 0.5) {
		t.Fatalf("L=2 step = %v, want 0.5", fast.Accuracy(1))
	}
}

// Equation 5: the merged allocation is the maximum over inputs.
func TestEquation5Max(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(nil, 1000))
	p.Learn(counters(nil, 5000))
	p.Learn(counters(nil, 2000))
	if p.AllocatedEntries != 5000 {
		t.Fatalf("AllocatedEntries = %d, want max 5000", p.AllocatedEntries)
	}
}

func TestNoEvidenceKeepsOldAccuracy(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.8}, 100))
	// Second input: PC 1 misses but never issues prefetches (acc -1).
	c := pmu.NewCounters(1)
	c.PC[1] = &pmu.PCCounters{L2Misses: 50}
	p.Learn(c)
	if !near(p.Accuracy(1), 0.8) {
		t.Fatalf("no-evidence input changed accuracy to %v", p.Accuracy(1))
	}
}

func TestMissWeightsRounding(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.5}, 0))
	w := p.MissWeights()
	if w[1] != 100 {
		t.Fatalf("MissWeights = %v", w)
	}
}

func TestUnknownPCAccuracy(t *testing.T) {
	p := NewProfile(4)
	if p.Accuracy(42) != -1 {
		t.Fatal("unknown PC must report -1")
	}
}

func TestClone(t *testing.T) {
	p := NewProfile(4)
	p.Learn(counters(map[mem.Addr]float64{1: 0.8}, 100))
	c := p.Clone()
	c.Learn(counters(map[mem.Addr]float64{2: 0.2}, 200))
	if len(p.PCs) != 1 || p.Loops != 1 || p.AllocatedEntries != 100 {
		t.Fatal("Clone aliases profile state")
	}
}

func TestDefaultL(t *testing.T) {
	if NewProfile(0).L != DefaultL {
		t.Fatal("NewProfile(0) must use DefaultL")
	}
}
