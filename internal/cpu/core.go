// Package cpu models the out-of-order core of Table 1: a 5-wide fetch,
// 288-entry-ROB machine with a bounded load queue and L1-MSHR-limited
// memory-level parallelism.
//
// The model is trace-driven and deterministic. It does not simulate register
// renaming or a scheduler; instead it computes, for every memory record, the
// earliest cycle the access can issue given
//
//   - front-end bandwidth (fetch width over the record's instruction gap),
//   - ROB occupancy (an access cannot dispatch until the instruction
//     ROB-size older than it has committed),
//   - load-queue occupancy,
//   - address dependences carried by the trace (mem.Access.Dep), and
//   - L1 MSHR availability for overlapping misses.
//
// These five constraints are what make temporal prefetching matter: pointer
// chases serialize on Dep, bandwidth-bound phases queue on MSHRs, and covered
// misses shrink the critical path. The absolute IPC is not calibrated to any
// silicon; relative IPC between prefetching schemes is the quantity the
// experiments report, mirroring the paper's use of speedups.
package cpu

import (
	"prophet/internal/mem"
)

// Config describes the core (defaults follow Table 1).
type Config struct {
	FetchWidth  int // instructions fetched/decoded per cycle
	IssueWidth  int // reported only; the 10-wide back end is not binding
	CommitWidth int // reported only
	ROB         int // reorder-buffer entries
	LQ          int // load-queue entries
	SQ          int // store-queue entries (reported only; stores are posted)
	L1MSHRs     int // outstanding L1 misses
}

// Default returns the Table 1 core configuration.
func Default() Config {
	return Config{
		FetchWidth:  5,
		IssueWidth:  10,
		CommitWidth: 10,
		ROB:         288,
		LQ:          85,
		SQ:          90,
		L1MSHRs:     16,
	}
}

// Memory is the interface the core drives. Access performs the memory access
// at cycle now and returns the cycle its data is available plus whether it
// missed in the L1 (for MSHR accounting).
type Memory interface {
	Access(a mem.Access, now uint64) (ready uint64, l1Miss bool)
}

// Stats reports the outcome of a core run.
type Stats struct {
	Instructions uint64 // total dynamic instructions (memory + gaps)
	MemRecords   uint64 // memory records executed
	Cycles       uint64 // total execution cycles
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// depRingSize bounds how far back a Dep reference may reach. Generators keep
// Dep below this; larger values are clamped.
const depRingSize = 8192

type inflight struct {
	index uint64 // record index (for ROB/LQ distance) in instruction terms
	done  uint64 // completion cycle
}

// Core is the trace-driven core model. A Core is single-use: construct, Run,
// read stats (or Reset between uses when pooled by the simulator).
type Core struct {
	cfg Config
	mem Memory

	slotClock   uint64 // fetch progress in units of 1/FetchWidth cycles
	lastCycle   uint64 // latest completion seen (end-of-run cycle)
	instrCount  uint64 // dynamic instructions fetched
	recIndex    uint64 // memory records processed
	completions [depRingSize]uint64

	// robLoads holds incomplete loads in program order for the ROB and LQ
	// occupancy checks. Entries are popped once their completion is in the
	// past or once they must be waited on. Occupancy never exceeds LQ, so
	// the backing array is allocated once, at construction.
	robLoads []inflight
	// mshrs holds completion cycles of outstanding L1 misses (unordered,
	// at most L1MSHRs — preallocated likewise).
	mshrs []uint64

	st Stats
}

// New builds a core over the given memory. It panics on non-positive widths,
// which are static configuration errors.
func New(cfg Config, m Memory) *Core {
	if cfg.FetchWidth <= 0 || cfg.ROB <= 0 || cfg.LQ <= 0 || cfg.L1MSHRs <= 0 {
		panic("cpu: non-positive core configuration")
	}
	return &Core{
		cfg:      cfg,
		mem:      m,
		robLoads: make([]inflight, 0, cfg.LQ),
		mshrs:    make([]uint64, 0, cfg.L1MSHRs),
	}
}

// Reset restores the just-constructed state over a (possibly new) memory,
// reusing the core's buffers. It exists so internal/sim can pool simulated
// systems across runs.
func (c *Core) Reset(m Memory) {
	c.mem = m
	c.slotClock = 0
	c.lastCycle = 0
	c.instrCount = 0
	c.recIndex = 0
	clear(c.completions[:])
	c.robLoads = c.robLoads[:0]
	c.mshrs = c.mshrs[:0]
	c.st = Stats{}
}

// Run executes the whole trace record-by-record and returns the run
// statistics. It is the sequential reference implementation: RunBlocks must
// produce bit-identical Stats for every block size (internal/sim/difftest
// enforces this).
func (c *Core) Run(src mem.Source) Stats {
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		c.Step(a)
	}
	return c.Finish()
}

// RunBlocks executes the whole trace in blocks of up to len(buf) records,
// amortizing source dispatch and bounds checks across each block. Sources
// implementing mem.BlockSource deliver blocks natively (zero-copy for
// in-memory traces); others are drained through buf. Stats are bit-identical
// to Run for every block size.
func (c *Core) RunBlocks(src mem.Source, buf []mem.Access) Stats {
	if len(buf) == 0 {
		buf = make([]mem.Access, mem.DefaultBlockRecords)
	}
	for {
		blk := mem.FillBlock(src, buf)
		if len(blk) == 0 {
			break
		}
		for i := range blk {
			c.Step(blk[i])
		}
	}
	return c.Finish()
}

// Step executes a single record (exposed for incremental drivers).
func (c *Core) Step(a mem.Access) {
	instrs := a.Instructions()
	c.instrCount += instrs
	c.st.Instructions += instrs
	c.st.MemRecords++

	// Front end: fetch bandwidth in 1/FetchWidth cycle units.
	c.slotClock += instrs
	cycle := c.slotClock / uint64(c.cfg.FetchWidth)

	// ROB occupancy: the access cannot dispatch while an incomplete load
	// more than ROB instructions older is still outstanding. LQ: at most
	// LQ incomplete loads.
	cycle = c.drainOccupancy(cycle)

	// Address dependence.
	if a.Dep != 0 {
		dep := uint64(a.Dep)
		if dep >= depRingSize {
			dep = depRingSize - 1
		}
		if dep <= c.recIndex {
			if t := c.completions[(c.recIndex-dep)%depRingSize]; t > cycle {
				cycle = t
			}
		}
	}

	if a.Kind == mem.Load {
		// MSHR availability gates miss issue; conservatively applied
		// before the access since we cannot know hit/miss until issued.
		cycle = c.drainMSHRs(cycle)
	}

	ready, l1Miss := c.mem.Access(a, cycle)
	var done uint64
	if a.Kind == mem.Load {
		done = ready
		if l1Miss {
			c.mshrs = append(c.mshrs, done)
		}
		if done > cycle {
			c.robLoads = append(c.robLoads, inflight{index: c.instrCount, done: done})
		}
	} else {
		// Stores retire through the store queue; the fill happened at
		// issue time inside the hierarchy.
		done = cycle + 1
	}
	c.completions[c.recIndex%depRingSize] = done
	c.recIndex++
	if done > c.lastCycle {
		c.lastCycle = done
	}
	// Fetch cannot run ahead of dispatch indefinitely; re-sync the slot
	// clock so stalls propagate to the front end.
	if s := cycle * uint64(c.cfg.FetchWidth); s > c.slotClock {
		c.slotClock = s
	}
}

// drainOccupancy applies the ROB and LQ limits, advancing cycle past the
// completions that must retire first. The slice stays anchored at its
// backing array's start (pops are deferred into one compaction) so the
// preallocated capacity is never abandoned.
//
// Completed loads are pruned lazily: a stale entry (done <= cycle) is
// cycle-neutral in every max-over-done pop — entry cycles are non-decreasing
// across records, so once complete it stays complete — and only distorts the
// load-queue *count*, which binds solely at the LQ limit. So the eager
// per-record prune scan is deferred until the raw count reaches LQ, where a
// prune restores exactly the incomplete set the eager variant would hold.
// Cycle results are bit-identical; only the scan cost moves.
func (c *Core) drainOccupancy(cycle uint64) uint64 {
	// ROB: oldest incomplete load must be within ROB instructions. Stale
	// completed entries in the prefix advance nothing and are popped along
	// the way.
	pop := 0
	n := len(c.robLoads)
	for pop < n && c.instrCount-c.robLoads[pop].index >= uint64(c.cfg.ROB) {
		if d := c.robLoads[pop].done; d > cycle {
			cycle = d
		}
		pop++
	}
	if pop > 0 {
		n = copy(c.robLoads, c.robLoads[pop:])
		c.robLoads = c.robLoads[:n]
	}
	if n < c.cfg.LQ {
		return cycle
	}
	// LQ may bind: prune completed loads, then pop until under the limit.
	keep := c.robLoads[:0]
	for _, f := range c.robLoads {
		if f.done > cycle {
			keep = append(keep, f)
		}
	}
	c.robLoads = keep
	pop = 0
	for len(c.robLoads)-pop >= c.cfg.LQ {
		if d := c.robLoads[pop].done; d > cycle {
			cycle = d
		}
		pop++
	}
	if pop > 0 {
		n = copy(c.robLoads, c.robLoads[pop:])
		c.robLoads = c.robLoads[:n]
	}
	return cycle
}

// drainMSHRs waits for an MSHR if all are busy. Completed entries are pruned
// lazily, only when the raw count hits the limit — below it the gate cannot
// bind whether or not stale entries linger, and pruning at the limit leaves
// exactly the incomplete set an eager prune would, so wait cycles are
// bit-identical.
func (c *Core) drainMSHRs(cycle uint64) uint64 {
	if len(c.mshrs) < c.cfg.L1MSHRs {
		return cycle
	}
	keep := c.mshrs[:0]
	for _, t := range c.mshrs {
		if t > cycle {
			keep = append(keep, t)
		}
	}
	c.mshrs = keep
	if len(c.mshrs) < c.cfg.L1MSHRs {
		return cycle
	}
	// Wait for the earliest outstanding miss.
	min := c.mshrs[0]
	minIdx := 0
	for i, t := range c.mshrs {
		if t < min {
			min, minIdx = t, i
		}
	}
	if min > cycle {
		cycle = min
	}
	c.mshrs = append(c.mshrs[:minIdx], c.mshrs[minIdx+1:]...)
	return cycle
}

// Finish closes the run and returns final statistics.
func (c *Core) Finish() Stats {
	c.st.Cycles = c.lastCycle
	if fetch := c.slotClock / uint64(c.cfg.FetchWidth); fetch > c.st.Cycles {
		c.st.Cycles = fetch
	}
	if c.st.Cycles == 0 && c.st.Instructions > 0 {
		c.st.Cycles = 1
	}
	return c.st
}
