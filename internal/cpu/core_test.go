package cpu

import (
	"testing"

	"prophet/internal/mem"
)

// fixedMemory returns hitLat for every access, or missLat for lines in the
// miss set, and reports l1Miss accordingly.
type fixedMemory struct {
	hitLat  uint64
	missLat uint64
	misses  map[mem.Line]bool
	count   int
}

func (m *fixedMemory) Access(a mem.Access, now uint64) (uint64, bool) {
	m.count++
	if m.misses != nil && m.misses[a.Line()] {
		return now + m.missLat, true
	}
	return now + m.hitLat, false
}

func loadAt(pc, addr mem.Addr, dep uint32, gap uint16) mem.Access {
	return mem.Access{PC: pc, Addr: addr, Kind: mem.Load, Dep: dep, Gap: gap}
}

func TestIPCBoundedByFetchWidth(t *testing.T) {
	// All hits, no dependences: throughput should approach fetch width.
	m := &fixedMemory{hitLat: 2}
	var recs []mem.Access
	for i := 0; i < 10000; i++ {
		recs = append(recs, loadAt(1, mem.Addr(i*64), 0, 4)) // 5 instructions per record
	}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	ipc := st.IPC()
	if ipc > 5.01 {
		t.Fatalf("IPC %.2f exceeds fetch width 5", ipc)
	}
	if ipc < 4.0 {
		t.Fatalf("IPC %.2f too far below fetch width for an all-hit run", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// Every load misses (200 cycles) and depends on the previous one:
	// total cycles ~= n * 200.
	misses := map[mem.Line]bool{}
	var recs []mem.Access
	const n = 200
	for i := 0; i < n; i++ {
		addr := mem.Addr(i * 64)
		misses[mem.LineOf(addr)] = true
		recs = append(recs, loadAt(1, addr, 1, 0))
	}
	m := &fixedMemory{hitLat: 2, missLat: 200, misses: misses}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	if st.Cycles < n*200*9/10 {
		t.Fatalf("dependent chain finished in %d cycles, want >= %d", st.Cycles, n*200*9/10)
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// Same misses but independent: MLP should cut cycles far below serial.
	misses := map[mem.Line]bool{}
	var recs []mem.Access
	const n = 200
	for i := 0; i < n; i++ {
		addr := mem.Addr(i * 64)
		misses[mem.LineOf(addr)] = true
		recs = append(recs, loadAt(1, addr, 0, 0))
	}
	m := &fixedMemory{hitLat: 2, missLat: 200, misses: misses}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	serial := uint64(n * 200)
	if st.Cycles > serial/4 {
		t.Fatalf("independent misses took %d cycles; want well below serial %d", st.Cycles, serial)
	}
}

func TestMSHRLimitCapsMLP(t *testing.T) {
	misses := map[mem.Line]bool{}
	var recs []mem.Access
	const n = 640
	for i := 0; i < n; i++ {
		addr := mem.Addr(i * 64)
		misses[mem.LineOf(addr)] = true
		recs = append(recs, loadAt(1, addr, 0, 0))
	}
	m := &fixedMemory{hitLat: 2, missLat: 200, misses: misses}
	cfgWide := Default()
	cfgWide.L1MSHRs = 64
	cfgNarrow := Default()
	cfgNarrow.L1MSHRs = 2
	wide := New(cfgWide, m).Run(mem.NewSliceSource(recs))
	m2 := &fixedMemory{hitLat: 2, missLat: 200, misses: misses}
	narrow := New(cfgNarrow, m2).Run(mem.NewSliceSource(recs))
	if narrow.Cycles <= wide.Cycles {
		t.Fatalf("narrow MSHRs (%d cycles) should be slower than wide (%d cycles)", narrow.Cycles, wide.Cycles)
	}
	if narrow.Cycles < wide.Cycles*4 {
		t.Fatalf("MSHR=2 run only %.1fx slower than MSHR=64; limit not binding", float64(narrow.Cycles)/float64(wide.Cycles))
	}
}

func TestROBLimitBlocksDistantOverlap(t *testing.T) {
	// One long miss followed by ROB-filling hit instructions, then another
	// miss: the second miss cannot start until the first retires once the
	// window fills.
	misses := map[mem.Line]bool{0: true, 1: true}
	var recs []mem.Access
	recs = append(recs, loadAt(1, 0, 0, 0))
	// 600 single-instruction hit records exceed the 288-entry ROB.
	for i := 0; i < 600; i++ {
		recs = append(recs, loadAt(2, mem.Addr(0x100000+i*64), 0, 0))
	}
	recs = append(recs, loadAt(3, 64, 0, 0))
	m := &fixedMemory{hitLat: 1, missLat: 1000, misses: misses}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	// The second miss must start after the first completes (cycle ~1000),
	// so total must exceed 1000 + 1000 * something well beyond 1100.
	if st.Cycles < 1900 {
		t.Fatalf("run took %d cycles; ROB should have serialized the two misses (~2000)", st.Cycles)
	}
}

func TestGapInstructionsCostFetchBandwidth(t *testing.T) {
	m := &fixedMemory{hitLat: 1}
	var recs []mem.Access
	for i := 0; i < 1000; i++ {
		recs = append(recs, loadAt(1, mem.Addr(i*64), 0, 99)) // 100 instrs per record
	}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	if st.Instructions != 100000 {
		t.Fatalf("Instructions = %d, want 100000", st.Instructions)
	}
	// 100k instructions at fetch width 5 needs >= 20k cycles.
	if st.Cycles < 20000 {
		t.Fatalf("Cycles = %d, want >= 20000 (fetch-bandwidth bound)", st.Cycles)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	misses := map[mem.Line]bool{}
	var recs []mem.Access
	for i := 0; i < 100; i++ {
		addr := mem.Addr(i * 64)
		misses[mem.LineOf(addr)] = true
		recs = append(recs, mem.Access{PC: 1, Addr: addr, Kind: mem.Store})
	}
	m := &fixedMemory{hitLat: 2, missLat: 500, misses: misses}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	// Posted stores retire quickly; the run should be near fetch-bound.
	if st.Cycles > 1000 {
		t.Fatalf("store-only run took %d cycles; stores should be posted", st.Cycles)
	}
}

func TestDeterminism(t *testing.T) {
	rng := mem.NewPRNG(3)
	var recs []mem.Access
	misses := map[mem.Line]bool{}
	for i := 0; i < 5000; i++ {
		addr := mem.Addr(rng.Intn(1<<20) * 64)
		if rng.Intn(3) == 0 {
			misses[mem.LineOf(addr)] = true
		}
		recs = append(recs, loadAt(mem.Addr(rng.Intn(16)), addr, uint32(rng.Intn(3)), uint16(rng.Intn(10))))
	}
	run := func() Stats {
		m := &fixedMemory{hitLat: 2, missLat: 150, misses: misses}
		return New(Default(), m).Run(mem.NewSliceSource(recs))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic core run: %+v vs %+v", a, b)
	}
}

func TestStatsIPCZeroCycles(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Fatal("IPC of empty stats should be 0")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero fetch width should panic")
		}
	}()
	New(Config{}, &fixedMemory{})
}

func TestEmptyRun(t *testing.T) {
	st := New(Default(), &fixedMemory{hitLat: 1}).Run(mem.NewSliceSource(nil))
	if st.Instructions != 0 || st.MemRecords != 0 {
		t.Fatalf("empty run produced %+v", st)
	}
}

func TestDepClampOutOfRange(t *testing.T) {
	// A Dep larger than the ring must not panic and must not reference
	// garbage.
	m := &fixedMemory{hitLat: 1}
	recs := []mem.Access{loadAt(1, 0, 999999, 0), loadAt(1, 64, 42, 0)}
	st := New(Default(), m).Run(mem.NewSliceSource(recs))
	if st.MemRecords != 2 {
		t.Fatalf("MemRecords = %d", st.MemRecords)
	}
}
