package pmu

import (
	"testing"

	"prophet/internal/mem"
)

func TestAccuracy(t *testing.T) {
	c := NewCounters(1)
	pc := mem.Addr(0x400)
	for i := 0; i < 10; i++ {
		c.RecordIssue(pc)
	}
	for i := 0; i < 7; i++ {
		c.RecordUseful(pc)
	}
	if got := c.Accuracy(pc); got != 0.7 {
		t.Fatalf("Accuracy = %v, want 0.7", got)
	}
}

func TestAccuracyNoIssues(t *testing.T) {
	c := NewCounters(1)
	c.RecordL2Miss(1)
	if got := c.Accuracy(1); got != -1 {
		t.Fatalf("Accuracy with no issues = %v, want -1", got)
	}
	if got := c.Accuracy(999); got != -1 {
		t.Fatalf("Accuracy of unknown PC = %v, want -1", got)
	}
}

func TestZeroPCIgnored(t *testing.T) {
	c := NewCounters(1)
	c.RecordIssue(0)
	c.RecordUseful(0)
	c.RecordL2Miss(0)
	if len(c.PC) != 0 {
		t.Fatal("PC 0 must not be recorded (prefetch-generated traffic)")
	}
}

func TestAllocatedEntries(t *testing.T) {
	c := NewCounters(1)
	c.SetTableCounters(100, 30)
	if got := c.AllocatedEntries(); got != 70 {
		t.Fatalf("AllocatedEntries = %d, want 70", got)
	}
	c.SetTableCounters(10, 30)
	if got := c.AllocatedEntries(); got != 0 {
		t.Fatalf("AllocatedEntries = %d, want clamped 0", got)
	}
}

func TestTopMissPCs(t *testing.T) {
	c := NewCounters(1)
	for i := 0; i < 5; i++ {
		c.RecordL2Miss(1)
	}
	for i := 0; i < 9; i++ {
		c.RecordL2Miss(2)
	}
	c.RecordL2Miss(3)
	top := c.TopMissPCs(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 1 {
		t.Fatalf("TopMissPCs = %v, want [2 1]", top)
	}
	all := c.TopMissPCs(0)
	if len(all) != 3 {
		t.Fatalf("TopMissPCs(0) = %v, want all 3", all)
	}
}

func TestTopMissPCsDeterministicTies(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		c := NewCounters(1)
		for pc := mem.Addr(10); pc <= 14; pc++ {
			c.RecordL2Miss(pc)
		}
		top := c.TopMissPCs(3)
		if top[0] != 10 || top[1] != 11 || top[2] != 12 {
			t.Fatalf("tie break not deterministic: %v", top)
		}
	}
}

func TestSamplingApproximatesExact(t *testing.T) {
	exact := NewCounters(1)
	sampled := NewCounters(16)
	pc := mem.Addr(0x500)
	const n = 16000
	for i := 0; i < n; i++ {
		exact.RecordIssue(pc)
		sampled.RecordIssue(pc)
	}
	e := exact.PC[pc].Issued
	s := sampled.PC[pc].Issued
	if e != n {
		t.Fatalf("exact = %d", e)
	}
	if s < n*9/10 || s > n*11/10 {
		t.Fatalf("sampled estimate %d deviates >10%% from %d", s, n)
	}
}

func TestMissWeights(t *testing.T) {
	c := NewCounters(1)
	c.RecordL2Miss(7)
	c.RecordL2Miss(7)
	w := c.MissWeights()
	if w[7] != 2 {
		t.Fatalf("MissWeights = %v", w)
	}
}

func TestOverheadBytesTiny(t *testing.T) {
	c := NewCounters(1)
	for pc := mem.Addr(1); pc <= 100; pc++ {
		c.RecordL2Miss(pc)
	}
	// 100 PCs of counters must be a few KB — the Figure 2 "Counter ~B"
	// versus "Trace ~GB" contrast.
	if got := c.OverheadBytes(); got > 10*1024 {
		t.Fatalf("OverheadBytes = %d, want a few KB", got)
	}
}

func TestClone(t *testing.T) {
	c := NewCounters(1)
	c.RecordIssue(1)
	c.SetTableCounters(5, 2)
	d := c.Clone()
	d.RecordIssue(1)
	d.RecordIssue(2)
	if c.PC[1].Issued != 1 {
		t.Fatal("clone aliases per-PC counters")
	}
	if _, ok := c.PC[2]; ok {
		t.Fatal("clone aliases the PC map")
	}
	if d.Insertions != 5 || d.Replacements != 2 {
		t.Fatal("clone lost global counters")
	}
}
