// Package pmu models the performance-monitoring facilities Prophet's
// profiling step relies on (Section 4.1): PEBS-style per-PC event counters
// and standard global PMU counters.
//
// The three per-PC events are
//
//   - MEM_LOAD_RETIRED.L2_Prefetch_Issue — prefetches issued on behalf of a
//     PC,
//   - MEM_LOAD_RETIRED.L2_Prefetch_Useful — prefetches later hit by demand,
//   - MEM_LOAD_RETIRED.L2_MISS — used to rank PCs by miss contribution for
//     the 128-entry hint buffer.
//
// The two global counters are metadata-table insertions and replacements;
// their difference is the allocated-entry count Equation 3 resizes with.
//
// PEBS samples rather than counts every event; SamplePeriod reproduces that
// (period 1 = exact counting, the default in the simulator just as the
// paper collects counters "using facilities within gem5"). The profiling
// payload is a few bytes per touched PC — the counters-vs-traces contrast of
// Figure 2 — which OverheadBytes quantifies for the Section 5.4 experiment.
package pmu

import (
	"sort"

	"prophet/internal/mem"
)

// PCCounters holds the per-PC PEBS event counts.
type PCCounters struct {
	Issued   uint64 // L2_Prefetch_Issue
	Useful   uint64 // L2_Prefetch_Useful
	L2Misses uint64 // L2_MISS
}

// Accuracy returns Useful/Issued (Section 4.1), or -1 when the PC issued no
// prefetches (distinguishing "never issued" from "always wrong").
func (c PCCounters) Accuracy() float64 {
	if c.Issued == 0 {
		return -1
	}
	return float64(c.Useful) / float64(c.Issued)
}

// Counters is one profiling run's collected state.
type Counters struct {
	// PC maps instruction addresses to their event counts.
	PC map[mem.Addr]*PCCounters
	// Insertions and Replacements are the global metadata-table counters.
	Insertions   uint64
	Replacements uint64

	period uint64 // PEBS sampling period (1 = exact)
	tick   uint64
}

// NewCounters returns an empty counter set with the given PEBS sampling
// period (values < 1 mean exact counting).
func NewCounters(samplePeriod uint64) *Counters {
	if samplePeriod < 1 {
		samplePeriod = 1
	}
	return &Counters{PC: make(map[mem.Addr]*PCCounters), period: samplePeriod}
}

func (c *Counters) sampled() bool {
	c.tick++
	return c.tick%c.period == 0
}

func (c *Counters) pc(pc mem.Addr) *PCCounters {
	e, ok := c.PC[pc]
	if !ok {
		e = &PCCounters{}
		c.PC[pc] = e
	}
	return e
}

// RecordIssue counts a prefetch issued for trigger PC.
func (c *Counters) RecordIssue(pc mem.Addr) {
	if pc == 0 || !c.sampled() {
		return
	}
	c.pc(pc).Issued += c.period
}

// RecordUseful counts a demand hit on a prefetched line.
func (c *Counters) RecordUseful(pc mem.Addr) {
	if pc == 0 || !c.sampled() {
		return
	}
	c.pc(pc).Useful += c.period
}

// RecordL2Miss counts an L2 demand miss for pc.
func (c *Counters) RecordL2Miss(pc mem.Addr) {
	if pc == 0 || !c.sampled() {
		return
	}
	c.pc(pc).L2Misses += c.period
}

// SetTableCounters stores the global metadata-table counters.
func (c *Counters) SetTableCounters(insertions, replacements uint64) {
	c.Insertions = insertions
	c.Replacements = replacements
}

// AllocatedEntries is Insertions - Replacements (Section 4.1).
func (c *Counters) AllocatedEntries() uint64 {
	if c.Replacements >= c.Insertions {
		return 0
	}
	return c.Insertions - c.Replacements
}

// Accuracy returns the prefetching accuracy of a PC (-1 if it never issued).
func (c *Counters) Accuracy(pc mem.Addr) float64 {
	if e, ok := c.PC[pc]; ok {
		return e.Accuracy()
	}
	return -1
}

// MissWeights returns each PC's L2 miss count (hint-buffer ranking weights).
func (c *Counters) MissWeights() map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64, len(c.PC))
	for pc, e := range c.PC {
		out[pc] = e.L2Misses
	}
	return out
}

// TopMissPCs returns up to n PCs ordered by descending L2 miss count
// (deterministic: ties break on PC).
func (c *Counters) TopMissPCs(n int) []mem.Addr {
	pcs := make([]mem.Addr, 0, len(c.PC))
	for pc := range c.PC {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		mi, mj := c.PC[pcs[i]].L2Misses, c.PC[pcs[j]].L2Misses
		if mi != mj {
			return mi > mj
		}
		return pcs[i] < pcs[j]
	})
	if n > 0 && len(pcs) > n {
		pcs = pcs[:n]
	}
	return pcs
}

// OverheadBytes estimates the profiling payload size: three 8-byte counters
// per touched PC plus the two global counters. This is the "Counter ~B"
// side of Figure 2's counters-vs-traces comparison.
func (c *Counters) OverheadBytes() int {
	return len(c.PC)*(3*8+8) + 2*8
}

// Clone deep-copies the counters.
func (c *Counters) Clone() *Counters {
	out := NewCounters(c.period)
	out.Insertions = c.Insertions
	out.Replacements = c.Replacements
	for pc, e := range c.PC {
		cp := *e
		out.PC[pc] = &cp
	}
	return out
}
