package analysis

import (
	"testing"
	"testing/quick"

	"prophet/internal/learning"
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

func profileWith(pcs map[mem.Addr]learning.PCProfile, allocated uint64) *learning.Profile {
	p := learning.NewProfile(4)
	for pc, prof := range pcs {
		p.PCs[pc] = prof
	}
	p.AllocatedEntries = allocated
	return p
}

func TestEquation1InsertDecision(t *testing.T) {
	if InsertDecision(0.14, 0.15) {
		t.Error("accuracy below EL_ACC must not insert")
	}
	if !InsertDecision(0.15, 0.15) {
		t.Error("accuracy at EL_ACC must insert")
	}
	if !InsertDecision(0.9, 0.15) {
		t.Error("high accuracy must insert")
	}
}

func TestEquation2PriorityLevels(t *testing.T) {
	// n=2: bands [0,.25) [.25,.5) [.5,.75) [.75,1].
	cases := []struct {
		acc  float64
		want uint8
	}{
		{0.0, 0}, {0.2, 0}, {0.25, 1}, {0.49, 1},
		{0.5, 2}, {0.74, 2}, {0.75, 3}, {0.99, 3}, {1.0, 3},
	}
	for _, c := range cases {
		if got := PriorityLevel(c.acc, 2); got != c.want {
			t.Errorf("PriorityLevel(%v, 2) = %d, want %d", c.acc, got, c.want)
		}
	}
}

func TestEquation2PriorityBitsProperty(t *testing.T) {
	f := func(raw uint16, bits uint8) bool {
		b := int(bits%3) + 1 // 1..3 bits
		acc := float64(raw) / 65535
		lvl := PriorityLevel(acc, b)
		return int(lvl) < 1<<b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEquation3Ways(t *testing.T) {
	table := temporal.DefaultTableConfig() // 24576 entries/way, max 8
	cases := []struct {
		entries uint64
		ways    int
		disable bool
	}{
		{0, 0, true},
		{1000, 0, true},        // rounds to 1024, well under half a way
		{12288, 1, false},      // ties round up: 16384 entries -> 1 way
		{20000, 1, false},      // rounds to 16384 -> 1 way
		{24576, 2, false},      // tie rounds up to 32768 -> 2 ways
		{25000, 2, false},      // rounds to 32768 -> 2 ways
		{100_000, 6, false},    // rounds to 131072 -> 5.33 -> 6 ways
		{300_000, 8, false},    // capped at the 1MB table
		{10_000_000, 8, false}, // far beyond cap
	}
	for _, c := range cases {
		ways, disable := WaysForEntries(c.entries, table)
		if ways != c.ways || disable != c.disable {
			t.Errorf("WaysForEntries(%d) = (%d,%v), want (%d,%v)",
				c.entries, ways, disable, c.ways, c.disable)
		}
	}
}

func TestAnalyzeGeneratesHints(t *testing.T) {
	p := profileWith(map[mem.Addr]learning.PCProfile{
		1: {Accuracy: 0.05, MissWeight: 100}, // below EL_ACC: filtered
		2: {Accuracy: 0.30, MissWeight: 200}, // level 1
		3: {Accuracy: 0.90, MissWeight: 300}, // level 3
		4: {Accuracy: -1, MissWeight: 50},    // no evidence: no hint
	}, 50_000)
	res := Analyze(p, DefaultParams())
	if h := res.Hints.PC[1]; h.Insert {
		t.Errorf("PC1 hint = %+v, want do-not-insert", h)
	}
	if h := res.Hints.PC[2]; !h.Insert || h.Priority != 1 {
		t.Errorf("PC2 hint = %+v, want insert priority 1", h)
	}
	if h := res.Hints.PC[3]; !h.Insert || h.Priority != 3 {
		t.Errorf("PC3 hint = %+v, want insert priority 3", h)
	}
	if _, ok := res.Hints.PC[4]; ok {
		t.Error("PC4 with no accuracy evidence must not receive a hint")
	}
	if res.HintInstructions != 3 {
		t.Errorf("HintInstructions = %d, want 3", res.HintInstructions)
	}
	// 50,000 entries round to 65,536 -> ceil(65536/24576) = 3 ways.
	if res.Hints.MetaWays != 3 || res.Hints.DisableTP {
		t.Errorf("resizing hint = %d ways disable=%v, want 3 ways", res.Hints.MetaWays, res.Hints.DisableTP)
	}
	if res.Weights[3] != 300 {
		t.Errorf("weights = %v", res.Weights)
	}
}

func TestAnalyzeTrimsToHintBuffer(t *testing.T) {
	pcs := map[mem.Addr]learning.PCProfile{}
	for i := 0; i < 300; i++ {
		pcs[mem.Addr(1000+i)] = learning.PCProfile{Accuracy: 0.5, MissWeight: float64(i)}
	}
	res := Analyze(profileWith(pcs, 100_000), DefaultParams())
	if len(res.Hints.PC) != 128 {
		t.Fatalf("hint count = %d, want 128 (hint buffer cap)", len(res.Hints.PC))
	}
	// The heaviest PC must survive the trim.
	if _, ok := res.Hints.PC[mem.Addr(1000+299)]; !ok {
		t.Fatal("heaviest-miss PC trimmed")
	}
	// The lightest must not.
	if _, ok := res.Hints.PC[mem.Addr(1000)]; ok {
		t.Fatal("lightest-miss PC kept")
	}
	if res.HintInstructions > 128 {
		t.Fatalf("HintInstructions = %d, exceeds the 128 budget", res.HintInstructions)
	}
}

func TestAnalyzeDisableTPForTinyFootprint(t *testing.T) {
	res := Analyze(profileWith(nil, 100), DefaultParams())
	if !res.Hints.DisableTP {
		t.Fatal("tiny metadata footprint must disable temporal prefetching")
	}
}

func TestAnalyzeElapsedUnderASecond(t *testing.T) {
	pcs := map[mem.Addr]learning.PCProfile{}
	for i := 0; i < 10000; i++ {
		pcs[mem.Addr(i)] = learning.PCProfile{Accuracy: 0.4, MissWeight: 1}
	}
	res := Analyze(profileWith(pcs, 100_000), DefaultParams())
	if res.Elapsed.Seconds() >= 1.0 {
		t.Fatalf("analysis took %v, paper requires <1s", res.Elapsed)
	}
}

func TestRoundPow2(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 4}, {6, 8},
		{7, 8}, {1000, 1024}, {1536, 2048}, {1535, 1024},
	}
	for _, c := range cases {
		if got := roundPow2(c.in); got != c.want {
			t.Errorf("roundPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.ELAcc != 0.15 {
		t.Error("EL_ACC default must be 0.15 (Figure 16a)")
	}
	if p.PriorityBits != 2 {
		t.Error("n default must be 2 (Figure 16b)")
	}
	if p.MaxHints != 128 {
		t.Error("hint cap must be 128")
	}
}
