// Package analysis implements Step 2 of the Prophet pipeline (Section 4.2):
// turning a merged counter profile into the hints injected into the binary.
//
//   - Equation 1 (insertion): PCs whose prefetching accuracy under the
//     simplified temporal prefetcher falls below the extremely-low threshold
//     EL_ACC are marked do-not-insert; the prefetcher discards their demand
//     requests entirely.
//   - Equation 2 (replacement): remaining PCs receive a priority level
//     R(acc) in [0, 2^n) by quantizing accuracy into 2^n uniform bands
//     (accuracy below 1/2^n but above EL_ACC maps to level 0).
//   - Equation 3 (resizing): the allocated-entry counter is rounded to the
//     nearest power of two (capped at the 1MB table's entry count), then
//     converted to LLC ways; a result under half a way disables temporal
//     prefetching for the binary.
package analysis

import (
	"sync"
	"time"

	"prophet/internal/core"
	"prophet/internal/learning"
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// Params are the designer-chosen analysis parameters.
type Params struct {
	// ELAcc is EL_ACC, the extremely-low accuracy threshold of Equation 1.
	// The paper's sensitivity study (Figure 16a) settles on 0.15.
	ELAcc float64
	// PriorityBits is n in Equation 2 (2 in the final design, Figure 16b).
	PriorityBits int
	// Table describes the metadata-table geometry for Equation 3.
	Table temporal.TableConfig
	// MaxHints caps the PC hint count at the hint-buffer size.
	MaxHints int
}

// DefaultParams returns the paper's evaluated parameters.
func DefaultParams() Params {
	return Params{
		ELAcc:        0.15,
		PriorityBits: core.PriorityBits,
		Table:        temporal.DefaultTableConfig(),
		MaxHints:     core.HintBufferEntries,
	}
}

// Result is the analysis output: the hint set to inject plus bookkeeping for
// the overhead study.
type Result struct {
	// Hints is the PC + CSR hint set for the optimized binary.
	Hints core.HintSet
	// Weights carries each hinted PC's miss contribution for hint-buffer
	// prioritization.
	Weights map[mem.Addr]uint64
	// HintInstructions is the number of hint instructions injected at the
	// program entry (Section 5.4.3: at most 128).
	HintInstructions int
	// Elapsed is the wall-clock analysis cost (Section 5.4.2: well under
	// one second).
	Elapsed time.Duration
}

// InsertDecision is Equation 1.
func InsertDecision(acc, elAcc float64) bool { return acc >= elAcc }

// PriorityLevel is Equation 2: quantize accuracy into 2^n bands. The level
// is 0 for EL_ACC <= acc < 1/2^n and 2^n - 1 for acc in the top band.
func PriorityLevel(acc float64, bits int) uint8 {
	if bits <= 0 {
		return 0
	}
	levels := 1 << bits
	lvl := int(acc * float64(levels))
	if lvl >= levels {
		lvl = levels - 1
	}
	if lvl < 0 {
		lvl = 0
	}
	return uint8(lvl)
}

// roundPow2 rounds v to the nearest power of two (ties round up); 0 stays 0.
func roundPow2(v uint64) uint64 {
	if v == 0 {
		return 0
	}
	lower := uint64(1)
	for lower<<1 <= v {
		lower <<= 1
	}
	upper := lower << 1
	if v-lower < upper-v {
		return lower
	}
	return upper
}

// WaysForEntries is Equation 3: convert an allocated-entry count into LLC
// ways. The second return reports the "disable temporal prefetching"
// verdict (under half a way of demand).
func WaysForEntries(entries uint64, table temporal.TableConfig) (ways int, disable bool) {
	rounded := roundPow2(entries)
	if max := uint64(table.MaxEntries()); rounded > max {
		rounded = max
	}
	perWay := float64(table.EntriesPerWayTotal())
	ratio := float64(rounded) / perWay
	if ratio < 0.5 {
		return 0, true
	}
	ways = int(ratio)
	if float64(ways) < ratio {
		ways++
	}
	if ways > table.MaxWays {
		ways = table.MaxWays
	}
	return ways, false
}

// Analyze generates the hint set from a merged profile.
func Analyze(p *learning.Profile, params Params) Result {
	return AnalyzeWith(p, params, 1)
}

// analyzePCs applies Equations 1 and 2 to the given PCs, writing hints and
// weights for qualifying ones. Each PC is independent, which is what makes
// the sharded pass of AnalyzeWith deterministic.
func analyzePCs(p *learning.Profile, params Params, pcs []mem.Addr, hints map[mem.Addr]core.Hint, weights map[mem.Addr]uint64) {
	for _, pc := range pcs {
		prof := p.PCs[pc]
		acc := prof.Accuracy
		if acc < 0 {
			// The PC never triggered a prefetch under profiling:
			// no temporal evidence either way, so no hint — it
			// stays under the runtime default.
			continue
		}
		h := core.Hint{}
		if !InsertDecision(acc, params.ELAcc) {
			h = core.Hint{Insert: false, Priority: 0}
		} else {
			h = core.Hint{Insert: true, Priority: PriorityLevel(acc, params.PriorityBits)}
		}
		hints[pc] = h
		if prof.MissWeight > 0 {
			weights[pc] = uint64(prof.MissWeight + 0.5)
		}
	}
}

// analyzeShardMin is the per-PC metadata volume below which sharding costs
// more than it saves.
const analyzeShardMin = 4096

// AnalyzeWith is Analyze with the per-PC metadata scan sharded across up to
// workers goroutines. PCs partition into contiguous regions, each worker
// analyzes its regions into private maps, and the merge unions them —
// regions are disjoint, so the union is order-independent and the Result is
// bit-identical to the sequential pass at every worker count.
func AnalyzeWith(p *learning.Profile, params Params, workers int) Result {
	start := time.Now()
	if params.MaxHints <= 0 {
		params.MaxHints = core.HintBufferEntries
	}
	hints := make(map[mem.Addr]core.Hint, len(p.PCs))
	weights := make(map[mem.Addr]uint64, len(p.PCs))
	if workers > len(p.PCs)/analyzeShardMin {
		workers = len(p.PCs) / analyzeShardMin
	}
	if workers <= 1 {
		pcs := make([]mem.Addr, 0, len(p.PCs))
		for pc := range p.PCs {
			pcs = append(pcs, pc)
		}
		analyzePCs(p, params, pcs, hints, weights)
	} else {
		pcs := make([]mem.Addr, 0, len(p.PCs))
		for pc := range p.PCs {
			pcs = append(pcs, pc)
		}
		type shard struct {
			hints   map[mem.Addr]core.Hint
			weights map[mem.Addr]uint64
		}
		shards := make([]shard, workers)
		var wg sync.WaitGroup
		per := (len(pcs) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * per
			hi := lo + per
			if hi > len(pcs) {
				hi = len(pcs)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				sh := shard{
					hints:   make(map[mem.Addr]core.Hint, hi-lo),
					weights: make(map[mem.Addr]uint64, hi-lo),
				}
				analyzePCs(p, params, pcs[lo:hi], sh.hints, sh.weights)
				shards[w] = sh
			}(w, lo, hi)
		}
		wg.Wait()
		for _, sh := range shards {
			for pc, h := range sh.hints {
				hints[pc] = h
			}
			for pc, mw := range sh.weights {
				weights[pc] = mw
			}
		}
	}
	trimHints(hints, weights, params.MaxHints)
	ways, disable := WaysForEntries(p.AllocatedEntries, params.Table)
	return Result{
		Hints: core.HintSet{
			PC:        hints,
			MetaWays:  ways,
			DisableTP: disable,
		},
		Weights:          weights,
		HintInstructions: len(hints),
		Elapsed:          time.Since(start),
	}
}

// trimHints keeps only the top max PCs by miss weight (deterministic ties).
func trimHints(hints map[mem.Addr]core.Hint, weights map[mem.Addr]uint64, max int) {
	if len(hints) <= max {
		return
	}
	buf := core.NewHintBuffer(max)
	buf.Install(hints, weights)
	for pc := range hints {
		if _, ok := buf.Lookup(pc); !ok {
			delete(hints, pc)
			delete(weights, pc)
		}
	}
}
