package temporal

// Hawkeye-style replacement for the metadata table (Section 2.1.2): the
// original Triage paper used Hawkeye (Jain & Lin, ISCA'16) to evict metadata
// entries unlikely to be reused, at a ~13KB storage cost for a ~0.25%
// speedup — which is why Triangel replaced it with SRRIP. We provide a
// Hawkeye-lite so that trade-off is reproducible: an OPT-inspired predictor
// that classifies inserted entries as cache-friendly or cache-averse from
// the observed reuse behaviour of recently evicted tags.
//
// Mechanism (a sampled ghost history standing in for OPTgen):
//
//   - every set keeps a short FIFO of recently evicted tags ("ghosts");
//   - an insert whose tag is still in the ghost list was evicted
//     prematurely — it is classified friendly and inserted protected
//     (RRPV 0 equivalent);
//   - other inserts are classified averse and inserted at distant RRPV, so
//     they yield the space quickly unless they prove reuse.
//
// The policy plugs into the Table as MetaHawkeye.

const hawkeyeGhosts = 8 // ghost tags remembered per set

// hawkeyeState holds the per-set ghost FIFO. It is kept in a side map so
// Entry stays the packed 41-bit structure of the paper.
type hawkeyeState struct {
	ghosts map[int][]uint16
}

func newHawkeyeState() *hawkeyeState {
	return &hawkeyeState{ghosts: make(map[int][]uint16)}
}

// observeEviction records an evicted tag in the set's ghost list.
func (h *hawkeyeState) observeEviction(set int, tag uint16) {
	g := h.ghosts[set]
	g = append(g, tag)
	if len(g) > hawkeyeGhosts {
		g = g[len(g)-hawkeyeGhosts:]
	}
	h.ghosts[set] = g
}

// friendly reports whether a tag was recently evicted from the set (and
// removes the ghost): a premature eviction marks the entry cache-friendly.
func (h *hawkeyeState) friendly(set int, tag uint16) bool {
	g := h.ghosts[set]
	for i, t := range g {
		if t == tag {
			h.ghosts[set] = append(g[:i], g[i+1:]...)
			return true
		}
	}
	return false
}

// StorageBits accounts the predictor's cost: ghost tags (10 bits each) per
// set. At the Table 1 geometry (2048 sets) this is ~20KB, the same order as
// the 13KB the paper cites for Triage's Hawkeye.
func (h *hawkeyeState) StorageBits(sets int) int { return sets * hawkeyeGhosts * tagBits }
