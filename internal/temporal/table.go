package temporal

import (
	"fmt"
	"math/bits"
	"sync"
)

// Policy selects the metadata-table replacement policy.
type Policy uint8

const (
	// MetaLRU evicts the least-recently-used entry in the set.
	MetaLRU Policy = iota
	// MetaSRRIP is the 2-bit RRIP policy Triangel uses for metadata.
	MetaSRRIP
	// ProphetPriority implements the paper's profile-guided replacement:
	// victim candidates are the entries with the lowest hint priority, and
	// the runtime policy's state (RRIP, falling back to recency) chooses
	// the final victim among them (Section 4.2).
	ProphetPriority
	// MetaHawkeye is the Hawkeye-style predictor the original Triage used
	// (Section 2.1.2): premature evictions mark entries cache-friendly and
	// protect them on re-insertion (see hawkeye.go).
	MetaHawkeye
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case MetaLRU:
		return "meta-lru"
	case MetaSRRIP:
		return "meta-srrip"
	case ProphetPriority:
		return "prophet-priority"
	case MetaHawkeye:
		return "meta-hawkeye"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// TableConfig describes the metadata table geometry.
type TableConfig struct {
	// Sets mirrors the host LLC's set count (2048 for the Table 1 LLC).
	Sets int
	// EntriesPerWay is how many packed entries one LLC way contributes per
	// set (12 compressed entries per 64-byte line).
	EntriesPerWay int
	// MaxWays caps the LLC ways the table may claim (8 ways = 1MB).
	MaxWays int
	// Policy selects victim selection.
	Policy Policy
}

// DefaultTableConfig matches the Table 1 LLC with the paper's 1MB cap.
func DefaultTableConfig() TableConfig {
	return TableConfig{Sets: 2048, EntriesPerWay: 12, MaxWays: 8, Policy: MetaSRRIP}
}

// EntriesPerWayTotal is the total entries one way contributes across sets.
func (c TableConfig) EntriesPerWayTotal() int { return c.Sets * c.EntriesPerWay }

// MaxEntries is the capacity at MaxWays.
func (c TableConfig) MaxEntries() int { return c.MaxWays * c.EntriesPerWayTotal() }

const tagBits = 10
const tagMask = 1<<tagBits - 1

// Entry is one Markov metadata entry: a 10-bit tag identifying the source
// line within its set and the 31-bit compressed target that followed it.
type Entry struct {
	Tag      uint16
	Target   uint32
	Priority uint8 // Prophet replacement state (2 bits)
	valid    bool
	rrpv     uint8
	// last is the recency stamp for LRU victim choice, truncated to 32
	// bits so Entry packs into 16 bytes (1.5x the scan density of the
	// 24-byte layout). Comparisons are only meaningful among live entries
	// of one set, and only the MetaLRU policy consults them; a table would
	// need 2^32 touches before wraparound could reorder a set.
	last uint32
}

// Evicted describes a metadata entry displaced from the table.
type Evicted struct {
	Set      int
	Tag      uint16
	Target   uint32
	Priority uint8
	Valid    bool
}

// SrcKey reconstructs the (truncated) compressed source index of the evicted
// entry from its set and tag. This is the key the Multi-path Victim Buffer
// indexes with; like the hardware it is lossy beyond set+tag bits.
func (e Evicted) SrcKey(cfg TableConfig) uint32 {
	return uint32(e.Tag)<<uint(bits.TrailingZeros(uint(cfg.Sets))) | uint32(e.Set)
}

// TableStats counts metadata-table events. Insertions - Replacements is the
// "allocated entries" PMU metric of Section 4.1.
type TableStats struct {
	Lookups      uint64
	Hits         uint64
	Insertions   uint64
	Updates      uint64
	Replacements uint64
}

// AllocatedEntries returns insertions minus replacements (Section 4.1).
func (s TableStats) AllocatedEntries() uint64 {
	if s.Replacements >= s.Insertions {
		return 0
	}
	return s.Insertions - s.Replacements
}

// Table is the in-LLC Markov metadata table. It is associativity-resizable:
// its capacity is ways x Sets x EntriesPerWay and changing ways is how
// resizing policies trade metadata capacity against demand LLC capacity.
//
// Storage is one flat entry array of Sets x (MaxWays x EntriesPerWay) slots;
// set s occupies the window starting at s*maxPerSet with count[s] live
// slots. A flat backing array costs two allocations per table instead of one
// (growing) slice per hot set, and keeps a set's entries on adjacent cache
// lines for the per-access linear tag scans.
type Table struct {
	cfg       TableConfig
	ways      int
	setBits   uint
	maxPerSet int
	entries   []Entry  // flat: Sets consecutive windows of maxPerSet slots
	tags      []uint16 // scan accelerator: tag|tagLiveBit per live slot
	count     []int32  // live slots per set (the old per-set slice length)
	clock     uint64
	stats     TableStats
	hawkeye   *hawkeyeState // non-nil for MetaHawkeye
}

// tagLiveBit marks a live slot in the tags accelerator array. Tags are 10
// bits, so bit 15 is free; a zero tags word can never match a probe.
const tagLiveBit = 1 << 15

// tablePools recycles whole tables per geometry across runs. At the Table 1
// geometry the entry array alone is multi-megabyte, and every engine
// constructor allocates (and the runtime zeroes) a fresh one per simulation
// — a measurable slice of short-run CPU time. Recycling is sound without
// touching that array: every read of entries/tags is bounded by count[set],
// and a slot becomes live only through a full overwrite, so clearing the
// small per-set count array alone restores the fresh-table contract.
var tablePools struct {
	sync.RWMutex
	m map[TableConfig]*sync.Pool
}

func tablePool(cfg TableConfig) *sync.Pool {
	tablePools.RLock()
	p := tablePools.m[cfg]
	tablePools.RUnlock()
	if p != nil {
		return p
	}
	tablePools.Lock()
	defer tablePools.Unlock()
	if tablePools.m == nil {
		tablePools.m = map[TableConfig]*sync.Pool{}
	}
	if p = tablePools.m[cfg]; p == nil {
		p = &sync.Pool{}
		tablePools.m[cfg] = p
	}
	return p
}

// NewTable builds a table with the given initial ways, recycling the storage
// of a previously Released table of the same geometry when one is available.
// It panics on invalid geometry (static configuration error).
func NewTable(cfg TableConfig, ways int) *Table {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic("temporal: table sets must be a positive power of two")
	}
	if cfg.EntriesPerWay <= 0 || cfg.MaxWays <= 0 {
		panic("temporal: non-positive table geometry")
	}
	if ways < 0 {
		ways = 0
	}
	if ways > cfg.MaxWays {
		ways = cfg.MaxWays
	}
	if t, _ := tablePool(cfg).Get().(*Table); t != nil {
		t.recycle(ways)
		return t
	}
	maxPerSet := cfg.MaxWays * cfg.EntriesPerWay
	t := &Table{
		cfg:       cfg,
		ways:      ways,
		setBits:   uint(bits.TrailingZeros(uint(cfg.Sets))),
		maxPerSet: maxPerSet,
		entries:   make([]Entry, cfg.Sets*maxPerSet),
		tags:      make([]uint16, cfg.Sets*maxPerSet),
		count:     make([]int32, cfg.Sets),
	}
	if cfg.Policy == MetaHawkeye {
		t.hawkeye = newHawkeyeState()
	}
	return t
}

// recycle restores a pooled table to the observable state of a fresh
// NewTable(cfg, ways). The entries and tags arrays stay dirty on purpose:
// no code path reads a slot at index >= count[set] within a set's window,
// and slots enter the live window only via a full Entry+tag write, so stale
// contents are unobservable. ways has already been clamped by NewTable.
func (t *Table) recycle(ways int) {
	t.ways = ways
	clear(t.count)
	t.clock = 0
	t.stats = TableStats{}
	if t.hawkeye != nil {
		clear(t.hawkeye.ghosts)
	}
}

// Release returns the table to its geometry's pool so a future NewTable can
// reuse the backing arrays instead of allocating afresh. The caller must not
// touch the table afterwards. Releasing is optional — an unreleased table is
// ordinary garbage — so only per-run engine teardown bothers.
func (t *Table) Release() {
	if t == nil {
		return
	}
	tablePool(t.cfg).Put(t)
}

// setSlice returns the live entries of one set (the window prefix).
func (t *Table) setSlice(set int) []Entry {
	base := set * t.maxPerSet
	return t.entries[base : base+int(t.count[set])]
}

// Config returns the table geometry.
func (t *Table) Config() TableConfig { return t.cfg }

// Ways returns the LLC ways currently allocated to metadata.
func (t *Table) Ways() int { return t.ways }

// Capacity returns the current entry capacity.
func (t *Table) Capacity() int { return t.ways * t.cfg.Sets * t.cfg.EntriesPerWay }

// Stats returns a copy of the table counters.
func (t *Table) Stats() TableStats { return t.stats }

// Live returns the number of valid entries (for occupancy accounting).
func (t *Table) Live() int {
	n := 0
	for set := range t.count {
		for _, e := range t.setSlice(set) {
			if e.valid {
				n++
			}
		}
	}
	return n
}

func (t *Table) locate(src uint32) (set int, tag uint16) {
	set = int(src & uint32(t.cfg.Sets-1))
	tag = uint16((src >> t.setBits) & tagMask)
	return set, tag
}

// Lookup searches for the metadata of compressed source index src and
// returns its target. A hit promotes the entry in the replacement state.
func (t *Table) Lookup(src uint32) (target uint32, ok bool) {
	t.stats.Lookups++
	set, tag := t.locate(src)
	if i := t.findSlot(set, tag); i >= 0 {
		e := &t.entries[set*t.maxPerSet+i]
		t.stats.Hits++
		t.clock++
		e.rrpv = 0
		e.last = uint32(t.clock)
		return e.Target, true
	}
	return 0, false
}

// findSlot scans the tags accelerator for a live entry with the given tag
// and returns its slot within the set, or -1. Scanning 2-byte tag words
// instead of 24-byte entries keeps the (up to 96-entry) probe inside a few
// cache lines.
func (t *Table) findSlot(set int, tag uint16) int {
	base := set * t.maxPerSet
	tags := t.tags[base : base+int(t.count[set])]
	want := tag | tagLiveBit
	for i, tg := range tags {
		if tg == want {
			return i
		}
	}
	return -1
}

// Peek is Lookup without replacement-state side effects.
func (t *Table) Peek(src uint32) (target uint32, ok bool) {
	set, tag := t.locate(src)
	if i := t.findSlot(set, tag); i >= 0 {
		return t.entries[set*t.maxPerSet+i].Target, true
	}
	return 0, false
}

// Insert records the correlation src -> target with the given Prophet
// priority (0 when unused). If the table has zero capacity the insert is
// dropped. The displaced metadata, if any, is returned for victim-buffer
// handling; this includes the old target of an in-place update — when a
// source gains a new successor, its previous successor is exactly the
// "Markov target evicted from the metadata table" the Multi-path Victim
// Buffer exists to keep (Section 4.5).
func (t *Table) Insert(src, target uint32, priority uint8) Evicted {
	capPerSet := t.ways * t.cfg.EntriesPerWay
	if capPerSet == 0 {
		return Evicted{}
	}
	set, tag := t.locate(src)
	base := set * t.maxPerSet
	t.clock++
	// One scan over the tags accelerator finds an existing entry AND
	// remembers the first free slot for the miss path, fusing what used to
	// be two passes (findSlot, then a free-slot scan) into one.
	want := tag | tagLiveBit
	match, free := -1, -1
	for i, tg := range t.tags[base : base+int(t.count[set])] {
		if tg == want {
			match = i
			break
		}
		if tg&tagLiveBit == 0 && free < 0 {
			free = i
		}
	}
	// Existing entry: update target in place, reporting the displaced
	// target if it changed.
	if match >= 0 {
		e := &t.entries[base+match]
		ev := Evicted{}
		if e.Target != target {
			ev = Evicted{Set: set, Tag: e.Tag, Target: e.Target, Priority: e.Priority, Valid: true}
		}
		e.Target = target
		e.Priority = priority
		e.rrpv = 0
		e.last = uint32(t.clock)
		t.stats.Updates++
		return ev
	}
	entries := t.setSlice(set)
	t.stats.Insertions++
	insertRRPV := uint8(srripInsertRRPV)
	if t.hawkeye != nil {
		// Hawkeye classification: prematurely evicted tags come back
		// protected; unknown tags come in cache-averse.
		if t.hawkeye.friendly(set, tag) {
			insertRRPV = 0
		} else {
			insertRRPV = srripMaxRRPV
		}
	}
	// Free slot, remembered by the fused scan above. (Live slots ahead of
	// count only lose their tag bit transiently inside Resize, which
	// compacts before returning, so a zero word there is authoritative.)
	if free >= 0 {
		entries[free] = Entry{Tag: tag, Target: target, Priority: priority, valid: true, rrpv: insertRRPV, last: uint32(t.clock)}
		t.tags[base+free] = tag | tagLiveBit
		return Evicted{}
	}
	if len(entries) < capPerSet {
		t.entries[base+len(entries)] = Entry{Tag: tag, Target: target, Priority: priority, valid: true, rrpv: insertRRPV, last: uint32(t.clock)}
		t.tags[base+len(entries)] = tag | tagLiveBit
		t.count[set]++
		return Evicted{}
	}
	// Replacement.
	vi := t.victim(entries)
	ev := Evicted{Set: set, Tag: entries[vi].Tag, Target: entries[vi].Target, Priority: entries[vi].Priority, Valid: true}
	if t.hawkeye != nil {
		t.hawkeye.observeEviction(set, entries[vi].Tag)
	}
	entries[vi] = Entry{Tag: tag, Target: target, Priority: priority, valid: true, rrpv: insertRRPV, last: uint32(t.clock)}
	t.tags[base+vi] = tag | tagLiveBit
	t.stats.Replacements++
	return ev
}

const (
	srripMaxRRPV    = 3
	srripInsertRRPV = 2
)

// victim selects the entry to replace within a full set according to the
// configured policy.
func (t *Table) victim(entries []Entry) int {
	switch t.cfg.Policy {
	case MetaLRU:
		return victimLRU(entries, nil)
	case MetaSRRIP, MetaHawkeye:
		return victimSRRIP(entries, nil)
	case ProphetPriority:
		// Candidates: entries with the lowest priority level; the
		// runtime policy (RRIP state) picks among them (Section 3.1:
		// "the Prophet Replacement Policy first generates candidate
		// victims for the Runtime Replacement Policy, which then
		// chooses the final victim").
		minPrio := entries[0].Priority
		for _, e := range entries[1:] {
			if e.Priority < minPrio {
				minPrio = e.Priority
			}
		}
		cand := make([]bool, len(entries))
		for i := range entries {
			cand[i] = entries[i].Priority == minPrio
		}
		return victimSRRIP(entries, cand)
	}
	panic("temporal: unknown table policy " + t.cfg.Policy.String())
}

func victimLRU(entries []Entry, cand []bool) int {
	best := -1
	for i := range entries {
		if cand != nil && !cand[i] {
			continue
		}
		if best < 0 || entries[i].last < entries[best].last {
			best = i
		}
	}
	return best
}

func victimSRRIP(entries []Entry, cand []bool) int {
	for {
		for i := range entries {
			if cand != nil && !cand[i] {
				continue
			}
			if entries[i].rrpv >= srripMaxRRPV {
				return i
			}
		}
		aged := false
		for i := range entries {
			if cand != nil && !cand[i] {
				continue
			}
			if entries[i].rrpv < srripMaxRRPV {
				entries[i].rrpv++
				aged = true
			}
		}
		if !aged {
			// All candidates already at max but loop missed them
			// (defensive); fall back to recency.
			return victimLRU(entries, cand)
		}
	}
}

// Resize changes the allocated ways, evicting surplus entries (victims chosen
// by the configured policy) when shrinking. Evicted entries are returned so
// resizing can feed the victim buffer.
func (t *Table) Resize(ways int) []Evicted {
	if ways < 0 {
		ways = 0
	}
	if ways > t.cfg.MaxWays {
		ways = t.cfg.MaxWays
	}
	var evs []Evicted
	if ways < t.ways {
		capPerSet := ways * t.cfg.EntriesPerWay
		for set := range t.count {
			for countValid(t.setSlice(set)) > capPerSet {
				entries := t.setSlice(set)
				vi := t.victim(entries)
				e := &entries[vi]
				evs = append(evs, Evicted{Set: set, Tag: e.Tag, Target: e.Target, Priority: e.Priority, Valid: true})
				e.valid = false
				e.rrpv = srripMaxRRPV
				e.last = 0
				// Compact: drop invalid entries, preserving order.
				t.compactSet(set)
			}
		}
	}
	t.ways = ways
	return evs
}

func countValid(entries []Entry) int {
	n := 0
	for i := range entries {
		if entries[i].valid {
			n++
		}
	}
	return n
}

// compactSet shifts a set's valid entries to the front of its window,
// preserving their order, and shrinks the live count accordingly. The tags
// accelerator moves in lock-step; slots beyond the new count are cleared so
// stale tag words cannot match.
func (t *Table) compactSet(set int) {
	base := set * t.maxPerSet
	entries := t.setSlice(set)
	n := 0
	for i := range entries {
		if entries[i].valid {
			if n != i {
				entries[n] = entries[i]
				t.tags[base+n] = t.tags[base+i]
			}
			n++
		}
	}
	for i := n; i < len(entries); i++ {
		t.tags[base+i] = 0
	}
	t.count[set] = int32(n)
}
