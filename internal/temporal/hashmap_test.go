package temporal

import (
	"math/rand"
	"testing"
)

// TestProbeMapAgainstReference drives the open-addressed map with a
// deterministic random op mix and cross-checks every result against Go's
// built-in map. Deletion exercises backward-shift compaction, including
// wrapped probe runs.
func TestProbeMapAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := newProbeMap[uint64](4)
	ref := map[uint64]uint32{}
	const keySpace = 512 // small space forces collisions and reuse
	for op := 0; op < 200_000; op++ {
		k := uint64(rng.Intn(keySpace))
		switch rng.Intn(3) {
		case 0:
			v := uint32(rng.Intn(1 << 20))
			m.set(k, v)
			ref[k] = v
		case 1:
			m.del(k)
			delete(ref, k)
		default:
			got, ok := m.get(k)
			want, wok := ref[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: get(%d) = %d,%v want %d,%v", op, k, got, ok, want, wok)
			}
		}
		if m.len() != len(ref) {
			t.Fatalf("op %d: len = %d want %d", op, m.len(), len(ref))
		}
	}
	// Full sweep at the end.
	for k := uint64(0); k < keySpace; k++ {
		got, ok := m.get(k)
		want, wok := ref[k]
		if ok != wok || (ok && got != want) {
			t.Fatalf("final: get(%d) = %d,%v want %d,%v", k, got, ok, want, wok)
		}
	}
}

// TestProbeMapClusterDeletion deletes from the middle of a dense collision
// run, the case backward-shift compaction must handle without breaking
// later probes.
func TestProbeMapClusterDeletion(t *testing.T) {
	m := newProbeMap[uint32](4)
	// Insert enough keys to guarantee clustered runs in a small table.
	for k := uint32(0); k < 100; k++ {
		m.set(k, k*10)
	}
	for k := uint32(0); k < 100; k += 2 {
		m.del(k)
	}
	for k := uint32(0); k < 100; k++ {
		v, ok := m.get(k)
		if k%2 == 0 {
			if ok {
				t.Fatalf("get(%d) should be deleted", k)
			}
		} else if !ok || v != k*10 {
			t.Fatalf("get(%d) = %d,%v want %d,true", k, v, ok, k*10)
		}
	}
}

func TestProbeMapGrowth(t *testing.T) {
	m := newProbeMap[uint64](1)
	const n = 10_000
	for k := uint64(0); k < n; k++ {
		m.set(k<<20|k, uint32(k))
	}
	if m.len() != n {
		t.Fatalf("len = %d want %d", m.len(), n)
	}
	for k := uint64(0); k < n; k++ {
		if v, ok := m.get(k<<20 | k); !ok || v != uint32(k) {
			t.Fatalf("get(%d) = %d,%v", k, v, ok)
		}
	}
}
