package temporal

// TargetHistogram measures how many distinct Markov targets each source
// address exhibits over a run — the statistic behind Figure 8 ("54.85%,
// 20.88%, 9.71% of memory addresses have 1, 2, 3 Markov targets"). It is an
// offline measurement structure, not a hardware model, so it tracks exact
// distinct-target sets up to a small cap.
type TargetHistogram struct {
	maxDistinct int
	targets     map[uint64][]uint64
	seen        map[uint64]uint32
}

// NewTargetHistogram returns a histogram that distinguishes target counts up
// to maxDistinct (counts beyond are clamped into the final bucket).
func NewTargetHistogram(maxDistinct int) *TargetHistogram {
	if maxDistinct < 1 {
		maxDistinct = 1
	}
	return &TargetHistogram{
		maxDistinct: maxDistinct,
		targets:     make(map[uint64][]uint64),
		seen:        make(map[uint64]uint32),
	}
}

// Observe records that source src was followed by target.
func (h *TargetHistogram) Observe(src, target uint64) {
	h.seen[src]++
	ts := h.targets[src]
	for _, t := range ts {
		if t == target {
			return
		}
	}
	if len(ts) >= h.maxDistinct {
		return // clamp: already in the final bucket
	}
	h.targets[src] = append(ts, target)
}

// Sources returns the number of distinct source addresses observed.
func (h *TargetHistogram) Sources() int { return len(h.targets) }

// Fractions returns, for T = 1..maxDistinct, the fraction of sources with
// exactly T distinct targets (the final bucket holds ">= maxDistinct").
func (h *TargetHistogram) Fractions() []float64 { return h.FractionsMin(1) }

// FractionsMin restricts the distribution to sources observed at least
// minObservations times. Figure 8 concerns addresses that recur under
// temporal prefetching, so its measurement uses a minimum of 2; one-shot
// addresses trivially have one target and would wash the distribution out.
func (h *TargetHistogram) FractionsMin(minObservations uint32) []float64 {
	out := make([]float64, h.maxDistinct)
	total := 0.0
	for src, ts := range h.targets {
		if h.seen[src] < minObservations {
			continue
		}
		n := len(ts)
		if n > h.maxDistinct {
			n = h.maxDistinct
		}
		out[n-1]++
		total++
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}
