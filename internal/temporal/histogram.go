package temporal

// TargetHistogram measures how many distinct Markov targets each source
// address exhibits over a run — the statistic behind Figure 8 ("54.85%,
// 20.88%, 9.71% of memory addresses have 1, 2, 3 Markov targets"). It is an
// offline measurement structure, not a hardware model, so it tracks exact
// distinct-target sets up to a small cap.
//
// Sources live in flat parallel arrays indexed through one probe map, so an
// Observe costs a single hash lookup and no per-source allocations (the old
// layout kept two Go maps and one target slice per source).
type TargetHistogram struct {
	maxDistinct int
	index       *probeMap[uint64] // src -> slot
	seen        []uint32          // observations per source
	n           []uint8           // distinct targets recorded per source
	targets     []uint64          // maxDistinct-wide window per source
}

// NewTargetHistogram returns a histogram that distinguishes target counts up
// to maxDistinct (counts beyond are clamped into the final bucket).
func NewTargetHistogram(maxDistinct int) *TargetHistogram {
	if maxDistinct < 1 {
		maxDistinct = 1
	}
	return &TargetHistogram{
		maxDistinct: maxDistinct,
		index:       newProbeMap[uint64](1 << 10),
	}
}

// Observe records that source src was followed by target.
func (h *TargetHistogram) Observe(src, target uint64) {
	slot, ok := h.index.get(src)
	if !ok {
		slot = uint32(len(h.seen))
		h.index.set(src, slot)
		h.seen = append(h.seen, 0)
		h.n = append(h.n, 0)
		for i := 0; i < h.maxDistinct; i++ {
			h.targets = append(h.targets, 0)
		}
	}
	h.seen[slot]++
	base := int(slot) * h.maxDistinct
	k := int(h.n[slot])
	for i := 0; i < k; i++ {
		if h.targets[base+i] == target {
			return
		}
	}
	if k >= h.maxDistinct {
		return // clamp: already in the final bucket
	}
	h.targets[base+k] = target
	h.n[slot]++
}

// Sources returns the number of distinct source addresses observed.
func (h *TargetHistogram) Sources() int { return len(h.n) }

// Fractions returns, for T = 1..maxDistinct, the fraction of sources with
// exactly T distinct targets (the final bucket holds ">= maxDistinct").
func (h *TargetHistogram) Fractions() []float64 { return h.FractionsMin(1) }

// FractionsMin restricts the distribution to sources observed at least
// minObservations times. Figure 8 concerns addresses that recur under
// temporal prefetching, so its measurement uses a minimum of 2; one-shot
// addresses trivially have one target and would wash the distribution out.
func (h *TargetHistogram) FractionsMin(minObservations uint32) []float64 {
	out := make([]float64, h.maxDistinct)
	total := 0.0
	for slot := range h.n {
		if h.seen[slot] < minObservations {
			continue
		}
		n := int(h.n[slot])
		if n > h.maxDistinct {
			n = h.maxDistinct
		}
		out[n-1]++
		total++
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i] /= total
	}
	return out
}
