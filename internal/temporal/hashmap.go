package temporal

import "math/bits"

// probeMap is a small open-addressed hash map from integer keys to uint32
// values, used on the simulator's per-access hot paths (address compression,
// the metadata reuse buffer, Triangel's samplers) in place of Go's built-in
// map. It exists for speed and allocation behaviour, not generality:
//
//   - linear probing in one flat backing array — no per-entry allocations,
//     no bucket pointers, cache-line-friendly probes;
//   - growth only (by rehash) at 3/4 load; deletion uses backward-shift
//     compaction, so no tombstones accumulate and lookups stay O(probe run);
//   - fully deterministic: iteration is never exposed, so callers cannot
//     depend on ordering the way they could with a built-in map.
//
// The zero value is not usable; construct with newProbeMap.
type probeMap[K ~uint32 | ~uint64] struct {
	keys  []K
	vals  []uint32
	state []uint8 // 0 = empty, 1 = occupied
	count int
	mask  uint64
}

// newProbeMap returns a map pre-sized for capHint entries.
func newProbeMap[K ~uint32 | ~uint64](capHint int) *probeMap[K] {
	n := 8
	for n < capHint*4/3+1 {
		n <<= 1
	}
	m := &probeMap[K]{}
	m.alloc(n)
	return m
}

func (m *probeMap[K]) alloc(n int) {
	m.keys = make([]K, n)
	m.vals = make([]uint32, n)
	m.state = make([]uint8, n)
	m.mask = uint64(n - 1)
	m.count = 0
}

// hash mixes the key with a Fibonacci multiplier; the high bits feed the
// table index so nearby keys spread across the table.
func (m *probeMap[K]) hash(k K) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	return bits.RotateLeft64(x, 31)
}

// get returns the value stored for k.
func (m *probeMap[K]) get(k K) (uint32, bool) {
	i := m.hash(k) & m.mask
	for m.state[i] != 0 {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	return 0, false
}

// set inserts or updates k -> v.
func (m *probeMap[K]) set(k K, v uint32) {
	if m.count*4 >= len(m.keys)*3 {
		m.grow()
	}
	i := m.hash(k) & m.mask
	for m.state[i] != 0 {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i] = k
	m.vals[i] = v
	m.state[i] = 1
	m.count++
}

// del removes k if present, compacting the probe run behind it
// (backward-shift deletion) so no tombstones are needed.
func (m *probeMap[K]) del(k K) {
	i := m.hash(k) & m.mask
	for m.state[i] != 0 {
		if m.keys[i] == k {
			m.count--
			// Shift subsequent entries of the same run back into the
			// hole when their home slot precedes it.
			hole := i
			j := (i + 1) & m.mask
			for m.state[j] != 0 {
				home := m.hash(m.keys[j]) & m.mask
				// The entry at j may move into the hole only if its
				// home position does not sit strictly between the
				// hole and j (cyclically) — otherwise probing for it
				// would terminate at the hole.
				if (j-home)&m.mask >= (j-hole)&m.mask {
					m.keys[hole] = m.keys[j]
					m.vals[hole] = m.vals[j]
					hole = j
				}
				j = (j + 1) & m.mask
			}
			m.keys[hole] = 0
			m.vals[hole] = 0
			m.state[hole] = 0
			return
		}
		i = (i + 1) & m.mask
	}
}

// len returns the number of stored entries.
func (m *probeMap[K]) len() int { return m.count }

// clear empties the map, keeping its capacity.
func (m *probeMap[K]) clear() {
	clear(m.state)
	m.count = 0
}

func (m *probeMap[K]) grow() {
	oldKeys, oldVals, oldState := m.keys, m.vals, m.state
	m.alloc(len(oldKeys) * 2)
	for i, s := range oldState {
		if s != 0 {
			// Direct re-insert; no growth can trigger here.
			j := m.hash(oldKeys[i]) & m.mask
			for m.state[j] != 0 {
				j = (j + 1) & m.mask
			}
			m.keys[j] = oldKeys[i]
			m.vals[j] = oldVals[i]
			m.state[j] = 1
			m.count++
		}
	}
}
