package temporal

import "prophet/internal/mem"

// LineIndex maps cache lines to small integer slots (ring positions, table
// indices). It is the exported face of the open-addressed probe map for the
// scheme packages, which use it to index their samplers without paying Go
// map costs on every trainable access.
type LineIndex struct {
	m *probeMap[mem.Line]
}

// NewLineIndex returns an index pre-sized for capHint lines.
func NewLineIndex(capHint int) *LineIndex {
	return &LineIndex{m: newProbeMap[mem.Line](capHint)}
}

// Get returns the slot stored for l.
func (x *LineIndex) Get(l mem.Line) (int, bool) {
	v, ok := x.m.get(l)
	return int(v), ok
}

// Set stores l -> slot.
func (x *LineIndex) Set(l mem.Line, slot int) { x.m.set(l, uint32(slot)) }

// Del removes l if present.
func (x *LineIndex) Del(l mem.Line) { x.m.del(l) }

// Len returns the number of indexed lines.
func (x *LineIndex) Len() int { return x.m.len() }

// U32Set is an open-addressed set of uint32 keys — the distinct-source
// estimator of Triage's resizing logic, which adds one element per trainable
// access and must not pay a Go-map assignment for it.
type U32Set struct {
	m *probeMap[uint32]
}

// NewU32Set returns a set pre-sized for capHint elements.
func NewU32Set(capHint int) *U32Set {
	return &U32Set{m: newProbeMap[uint32](capHint)}
}

// Add inserts v.
func (s *U32Set) Add(v uint32) { s.m.set(v, 0) }

// Len returns the number of distinct elements.
func (s *U32Set) Len() int { return s.m.len() }

// Clear empties the set, keeping its capacity.
func (s *U32Set) Clear() { s.m.clear() }
