package temporal

import "testing"

func hawkeyeTable() *Table {
	cfg := TableConfig{Sets: 16, EntriesPerWay: 2, MaxWays: 2, Policy: MetaHawkeye}
	return NewTable(cfg, 2) // 4 entries per set
}

func TestHawkeyePrematureEvictionProtects(t *testing.T) {
	tb := hawkeyeTable()
	// Fill set 0 (sources 0,16,32,48 -> distinct tags 0..3).
	for i := 0; i < 4; i++ {
		tb.Insert(uint32(16*i), uint32(i+1), 0)
	}
	// Evict source 0 by inserting a fifth tag.
	ev := tb.Insert(64, 99, 0)
	if !ev.Valid {
		t.Fatal("no eviction from full set")
	}
	// Reinsert the evicted source: Hawkeye classifies it friendly
	// (premature eviction) and inserts protected.
	tb.Insert(uint32(ev.Tag)<<4, 42, 0)
	// Churn: cache-averse inserts (never-seen tags) must be evicted
	// before the protected entry.
	for i := 10; i < 14; i++ {
		tb.Insert(uint32(16*i), uint32(i), 0)
	}
	if got, ok := tb.Peek(uint32(ev.Tag) << 4); !ok || got != 42 {
		t.Fatalf("protected entry evicted by cache-averse churn (got %v ok=%v)", got, ok)
	}
}

func TestHawkeyeAverseInsertsYieldQuickly(t *testing.T) {
	tb := hawkeyeTable()
	// Promote four entries via hits so they are all protected.
	for i := 0; i < 4; i++ {
		tb.Insert(uint32(16*i), uint32(i+1), 0)
		tb.Lookup(uint32(16 * i))
	}
	// A stream of unknown tags churns through; after each insert the
	// newcomer itself (rrpv=max) should be the next victim, so the four
	// promoted entries survive the whole stream.
	for i := 20; i < 40; i++ {
		tb.Insert(uint32(16*i), uint32(i), 0)
	}
	survivors := 0
	for i := 0; i < 4; i++ {
		if _, ok := tb.Peek(uint32(16 * i)); ok {
			survivors++
		}
	}
	if survivors < 3 {
		t.Fatalf("only %d/4 promoted entries survived an averse scan", survivors)
	}
}

func TestHawkeyeGhostListBounded(t *testing.T) {
	h := newHawkeyeState()
	for i := 0; i < 100; i++ {
		h.observeEviction(0, uint16(i))
	}
	if got := len(h.ghosts[0]); got != hawkeyeGhosts {
		t.Fatalf("ghost list length %d, want %d", got, hawkeyeGhosts)
	}
	// Only the most recent ghosts are remembered.
	if !h.friendly(0, 99) {
		t.Fatal("most recent ghost forgotten")
	}
	if h.friendly(0, 0) {
		t.Fatal("ancient ghost remembered")
	}
	// friendly consumes the ghost.
	if h.friendly(0, 99) {
		t.Fatal("ghost not consumed on match")
	}
}

func TestHawkeyeStorageSameOrderAsPaper(t *testing.T) {
	h := newHawkeyeState()
	kb := float64(h.StorageBits(2048)) / 8 / 1024
	// Paper cites 13KB for Triage's Hawkeye; our lite predictor should be
	// the same order of magnitude at the Table 1 geometry.
	if kb < 5 || kb > 40 {
		t.Fatalf("Hawkeye-lite storage = %.1f KB, outside the paper's order (13KB)", kb)
	}
}

func TestHawkeyePolicyName(t *testing.T) {
	if MetaHawkeye.String() != "meta-hawkeye" {
		t.Error("policy name")
	}
}
