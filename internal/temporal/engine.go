package temporal

import "prophet/internal/mem"

// AccessEvent describes one L2 access presented to a temporal prefetcher.
// Both demand requests and L1-prefetch requests flow through (Section 5.1:
// prefetchers train on the L2 access stream including L1 prefetches).
type AccessEvent struct {
	// PC is the memory instruction (0 for L1-prefetch-generated traffic).
	PC mem.Addr
	// Line is the accessed cache line.
	Line mem.Line
	// Hit reports whether the access hit in the L2.
	Hit bool
	// HitPrefetched reports a first demand touch of a prefetched L2 line
	// (the access is part of the miss stream the prefetcher should train
	// on even though it technically hit).
	HitPrefetched bool
	// FromL1Prefetch marks L1-prefetcher-generated requests.
	FromL1Prefetch bool
	// Cycle is the access cycle.
	Cycle uint64
}

// Trainable reports whether the event belongs to the training stream: the
// L2 miss stream plus first touches of prefetched lines.
func (ev AccessEvent) Trainable() bool { return !ev.Hit || ev.HitPrefetched }

// Engine is a temporal prefetcher attached to the L2. The simulator calls
// OnAccess for every L2 access; the engine returns the lines to prefetch
// into the L2. Feedback about prefetch outcomes arrives through
// PrefetchUseful / PrefetchUseless, which runtime policies (Triangel's
// PatternConf) and the PMU both consume.
type Engine interface {
	// Name identifies the scheme in reports ("triage", "triangel",
	// "prophet", ...).
	Name() string
	// OnAccess observes one L2 access and returns prefetch candidates.
	OnAccess(ev AccessEvent) []mem.Line
	// PrefetchUseful reports a demand hit on a line prefetched by this
	// engine; pc is the trigger PC recorded at issue.
	PrefetchUseful(trigger mem.Addr, line mem.Line)
	// PrefetchUseless reports the eviction of a prefetched line that was
	// never referenced by demand.
	PrefetchUseless(trigger mem.Addr, line mem.Line)
	// MetaWays returns the LLC ways currently held by the metadata table
	// (the demand-visible LLC shrinks by this much).
	MetaWays() int
	// TableStats exposes the metadata table counters.
	TableStats() TableStats
}

// TrainingUnit tracks, per PC, the previously accessed line so engines can
// form (previous -> current) correlations. It is bounded like the hardware
// structure (Triangel's training unit): a direct-mapped table indexed by PC.
type TrainingUnit struct {
	pcs   []mem.Addr
	lines []mem.Line
	valid []bool
}

// NewTrainingUnit returns a training unit with the given entry count
// (rounded up to a power of two).
func NewTrainingUnit(entries int) *TrainingUnit {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &TrainingUnit{
		pcs:   make([]mem.Addr, n),
		lines: make([]mem.Line, n),
		valid: make([]bool, n),
	}
}

func (u *TrainingUnit) slot(pc mem.Addr) int {
	x := uint64(pc) >> 2
	x ^= x >> 9
	return int(x & uint64(len(u.pcs)-1))
}

// Observe records line as PC's latest access and returns the previous line
// for the same PC, if the unit still holds it.
func (u *TrainingUnit) Observe(pc mem.Addr, line mem.Line) (prev mem.Line, ok bool) {
	i := u.slot(pc)
	if u.valid[i] && u.pcs[i] == pc {
		prev, ok = u.lines[i], true
	}
	u.pcs[i] = pc
	u.lines[i] = line
	u.valid[i] = true
	return prev, ok
}

// Last peeks at PC's latest line without updating.
func (u *TrainingUnit) Last(pc mem.Addr) (mem.Line, bool) {
	i := u.slot(pc)
	if u.valid[i] && u.pcs[i] == pc {
		return u.lines[i], true
	}
	return 0, false
}

// Chase walks the Markov chain from compressed source src for up to degree
// steps, translating targets back to lines. It is the shared prediction loop
// of Triage, Triangel and Prophet.
func Chase(table *Table, comp *Compressor, src uint32, degree int) []mem.Line {
	var out []mem.Line
	cur := src
	for i := 0; i < degree; i++ {
		target, ok := table.Lookup(cur)
		if !ok {
			break
		}
		line, ok := comp.Line(target)
		if !ok {
			break
		}
		out = append(out, line)
		cur = target
	}
	return out
}

// ReuseBuffer is a small fully-associative cache of recently used metadata
// (Triangel's reuse buffer). It filters repeated LLC metadata reads and
// gives the Multi-path Victim Buffer its second lookup port. Capacity is in
// entries; replacement is LRU.
type ReuseBuffer struct {
	cap   int
	clock uint64
	data  map[uint32]*reuseEntry
}

type reuseEntry struct {
	target uint32
	last   uint64
}

// NewReuseBuffer returns a reuse buffer holding up to capEntries entries.
func NewReuseBuffer(capEntries int) *ReuseBuffer {
	if capEntries <= 0 {
		capEntries = 1
	}
	return &ReuseBuffer{cap: capEntries, data: make(map[uint32]*reuseEntry, capEntries)}
}

// Lookup returns the buffered target for src.
func (b *ReuseBuffer) Lookup(src uint32) (uint32, bool) {
	e, ok := b.data[src]
	if !ok {
		return 0, false
	}
	b.clock++
	e.last = b.clock
	return e.target, true
}

// Insert buffers src -> target, evicting the LRU entry when full.
func (b *ReuseBuffer) Insert(src, target uint32) {
	b.clock++
	if e, ok := b.data[src]; ok {
		e.target = target
		e.last = b.clock
		return
	}
	if len(b.data) >= b.cap {
		var lruKey uint32
		var lruT uint64
		first := true
		for k, e := range b.data {
			if first || e.last < lruT {
				lruKey, lruT, first = k, e.last, false
			}
		}
		delete(b.data, lruKey)
	}
	b.data[src] = &reuseEntry{target: target, last: b.clock}
}

// Len returns the number of buffered entries.
func (b *ReuseBuffer) Len() int { return len(b.data) }
