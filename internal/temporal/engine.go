package temporal

import "prophet/internal/mem"

// AccessEvent describes one L2 access presented to a temporal prefetcher.
// Both demand requests and L1-prefetch requests flow through (Section 5.1:
// prefetchers train on the L2 access stream including L1 prefetches).
type AccessEvent struct {
	// PC is the memory instruction (0 for L1-prefetch-generated traffic).
	PC mem.Addr
	// Line is the accessed cache line.
	Line mem.Line
	// Hit reports whether the access hit in the L2.
	Hit bool
	// HitPrefetched reports a first demand touch of a prefetched L2 line
	// (the access is part of the miss stream the prefetcher should train
	// on even though it technically hit).
	HitPrefetched bool
	// FromL1Prefetch marks L1-prefetcher-generated requests.
	FromL1Prefetch bool
	// Cycle is the access cycle.
	Cycle uint64
}

// Trainable reports whether the event belongs to the training stream: the
// L2 miss stream plus first touches of prefetched lines.
func (ev AccessEvent) Trainable() bool { return !ev.Hit || ev.HitPrefetched }

// Engine is a temporal prefetcher attached to the L2. The simulator calls
// OnAccess for every L2 access; the engine returns the lines to prefetch
// into the L2. Feedback about prefetch outcomes arrives through
// PrefetchUseful / PrefetchUseless, which runtime policies (Triangel's
// PatternConf) and the PMU both consume.
type Engine interface {
	// Name identifies the scheme in reports ("triage", "triangel",
	// "prophet", ...).
	Name() string
	// OnAccess observes one L2 access and returns prefetch candidates.
	// The returned slice may alias a scratch buffer owned by the engine:
	// it is valid only until the next OnAccess call, and callers must not
	// retain it. (The simulator issues the prefetches immediately, so the
	// engines recycle one buffer across all accesses of a run.)
	OnAccess(ev AccessEvent) []mem.Line
	// PrefetchUseful reports a demand hit on a line prefetched by this
	// engine; pc is the trigger PC recorded at issue.
	PrefetchUseful(trigger mem.Addr, line mem.Line)
	// PrefetchUseless reports the eviction of a prefetched line that was
	// never referenced by demand.
	PrefetchUseless(trigger mem.Addr, line mem.Line)
	// MetaWays returns the LLC ways currently held by the metadata table
	// (the demand-visible LLC shrinks by this much).
	MetaWays() int
	// TableStats exposes the metadata table counters.
	TableStats() TableStats
}

// TrainingUnit tracks, per PC, the previously accessed line so engines can
// form (previous -> current) correlations. It is bounded like the hardware
// structure (Triangel's training unit): a direct-mapped table indexed by PC.
type TrainingUnit struct {
	pcs   []mem.Addr
	lines []mem.Line
	valid []bool
}

// NewTrainingUnit returns a training unit with the given entry count
// (rounded up to a power of two).
func NewTrainingUnit(entries int) *TrainingUnit {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &TrainingUnit{
		pcs:   make([]mem.Addr, n),
		lines: make([]mem.Line, n),
		valid: make([]bool, n),
	}
}

func (u *TrainingUnit) slot(pc mem.Addr) int {
	x := uint64(pc) >> 2
	x ^= x >> 9
	return int(x & uint64(len(u.pcs)-1))
}

// Observe records line as PC's latest access and returns the previous line
// for the same PC, if the unit still holds it.
func (u *TrainingUnit) Observe(pc mem.Addr, line mem.Line) (prev mem.Line, ok bool) {
	i := u.slot(pc)
	if u.valid[i] && u.pcs[i] == pc {
		prev, ok = u.lines[i], true
	}
	u.pcs[i] = pc
	u.lines[i] = line
	u.valid[i] = true
	return prev, ok
}

// Last peeks at PC's latest line without updating.
func (u *TrainingUnit) Last(pc mem.Addr) (mem.Line, bool) {
	i := u.slot(pc)
	if u.valid[i] && u.pcs[i] == pc {
		return u.lines[i], true
	}
	return 0, false
}

// Chase walks the Markov chain from compressed source src for up to degree
// steps, translating targets back to lines. It is the shared prediction loop
// of Triage, Triangel and Prophet.
func Chase(table *Table, comp *Compressor, src uint32, degree int) []mem.Line {
	return AppendChase(nil, table, comp, src, degree)
}

// AppendChase is Chase appending into dst, so per-access callers can recycle
// one scratch buffer for the whole run instead of allocating per prediction.
func AppendChase(dst []mem.Line, table *Table, comp *Compressor, src uint32, degree int) []mem.Line {
	cur := src
	for i := 0; i < degree; i++ {
		target, ok := table.Lookup(cur)
		if !ok {
			break
		}
		line, ok := comp.Line(target)
		if !ok {
			break
		}
		dst = append(dst, line)
		cur = target
	}
	return dst
}

// ReuseBuffer is a small fully-associative cache of recently used metadata
// (Triangel's reuse buffer). It filters repeated LLC metadata reads and
// gives the Multi-path Victim Buffer its second lookup port. Capacity is in
// entries; replacement is LRU.
//
// Storage is a flat entry array indexed through a probe map: lookups cost
// one probe, inserts never allocate in steady state, and LRU eviction scans
// the (small, fixed) entry array — deterministically, unlike iterating a Go
// map. Timestamps are unique (the clock ticks on every touch), so the LRU
// victim is unique and the scan order cannot influence results.
type ReuseBuffer struct {
	cap     int
	clock   uint64
	index   *probeMap[uint32] // src -> slot in the entry arrays
	keys    []uint32
	targets []uint32
	last    []uint64
	used    []bool
	n       int
}

// NewReuseBuffer returns a reuse buffer holding up to capEntries entries.
func NewReuseBuffer(capEntries int) *ReuseBuffer {
	if capEntries <= 0 {
		capEntries = 1
	}
	return &ReuseBuffer{
		cap:     capEntries,
		index:   newProbeMap[uint32](capEntries),
		keys:    make([]uint32, capEntries),
		targets: make([]uint32, capEntries),
		last:    make([]uint64, capEntries),
		used:    make([]bool, capEntries),
	}
}

// Lookup returns the buffered target for src.
func (b *ReuseBuffer) Lookup(src uint32) (uint32, bool) {
	slot, ok := b.index.get(src)
	if !ok {
		return 0, false
	}
	b.clock++
	b.last[slot] = b.clock
	return b.targets[slot], true
}

// Insert buffers src -> target, evicting the LRU entry when full.
func (b *ReuseBuffer) Insert(src, target uint32) {
	b.clock++
	if slot, ok := b.index.get(src); ok {
		b.targets[slot] = target
		b.last[slot] = b.clock
		return
	}
	slot := -1
	if b.n >= b.cap {
		// Evict the LRU entry; clock uniqueness makes the victim unique.
		lruT := b.last[0] + 1
		for i := 0; i < b.cap; i++ {
			if b.used[i] && b.last[i] < lruT {
				slot, lruT = i, b.last[i]
			}
		}
		b.index.del(b.keys[slot])
		b.n--
	} else {
		for i := 0; i < b.cap; i++ {
			if !b.used[i] {
				slot = i
				break
			}
		}
	}
	b.keys[slot] = src
	b.targets[slot] = target
	b.last[slot] = b.clock
	b.used[slot] = true
	b.index.set(src, uint32(slot))
	b.n++
}

// Len returns the number of buffered entries.
func (b *ReuseBuffer) Len() int { return b.n }
