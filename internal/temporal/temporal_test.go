package temporal

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
)

func smallTable(policy Policy) TableConfig {
	return TableConfig{Sets: 16, EntriesPerWay: 2, MaxWays: 4, Policy: policy}
}

func TestCompressorRoundTrip(t *testing.T) {
	c := NewCompressor()
	lines := []mem.Line{100, 200, 100, 300}
	idx := make([]uint32, len(lines))
	for i, l := range lines {
		idx[i] = c.Index(l)
	}
	if idx[0] != idx[2] {
		t.Fatal("same line produced different indices")
	}
	if idx[0] == idx[1] || idx[1] == idx[3] {
		t.Fatal("distinct lines share an index")
	}
	for i, l := range lines {
		got, ok := c.Line(idx[i])
		if !ok || got != l {
			t.Fatalf("Line(%d) = %v,%v want %v", idx[i], got, ok, l)
		}
	}
	if c.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", c.Entries())
	}
}

func TestCompressorLookupNoAllocate(t *testing.T) {
	c := NewCompressor()
	if _, ok := c.Lookup(42); ok {
		t.Fatal("Lookup invented a mapping")
	}
	if c.Entries() != 0 {
		t.Fatal("Lookup allocated")
	}
	c.Index(42)
	if idx, ok := c.Lookup(42); !ok || idx != 0 {
		t.Fatalf("Lookup after Index = %v,%v", idx, ok)
	}
}

func TestCompressorSequentialAssignment(t *testing.T) {
	c := NewCompressor()
	for i := 0; i < 100; i++ {
		if got := c.Index(mem.Line(1000 + i)); got != uint32(i) {
			t.Fatalf("index %d assigned %d", i, got)
		}
	}
}

func TestTableInsertLookup(t *testing.T) {
	tb := NewTable(smallTable(MetaLRU), 4)
	tb.Insert(5, 99, 0)
	got, ok := tb.Lookup(5)
	if !ok || got != 99 {
		t.Fatalf("Lookup(5) = %d,%v want 99,true", got, ok)
	}
	if _, ok := tb.Lookup(6); ok {
		t.Fatal("Lookup(6) hit on empty slot")
	}
	st := tb.Stats()
	if st.Lookups != 2 || st.Hits != 1 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableUpdateInPlace(t *testing.T) {
	tb := NewTable(smallTable(MetaLRU), 4)
	tb.Insert(5, 99, 0)
	// Updating with a new target displaces the old target (which feeds
	// the Multi-path Victim Buffer).
	ev := tb.Insert(5, 77, 2)
	if !ev.Valid || ev.Target != 99 {
		t.Fatalf("update displaced %+v, want old target 99", ev)
	}
	got, _ := tb.Lookup(5)
	if got != 77 {
		t.Fatalf("target after update = %d, want 77", got)
	}
	// Re-inserting the same target displaces nothing.
	if ev := tb.Insert(5, 77, 2); ev.Valid {
		t.Fatalf("same-target update displaced %+v", ev)
	}
	st := tb.Stats()
	if st.Insertions != 1 || st.Updates != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableCapacityAndReplacement(t *testing.T) {
	cfg := smallTable(MetaLRU)
	tb := NewTable(cfg, 1) // 2 entries per set
	// Sources 0, 16, 32 map to set 0 with distinct tags.
	tb.Insert(0, 1, 0)
	tb.Insert(16, 2, 0)
	ev := tb.Insert(32, 3, 0)
	if !ev.Valid {
		t.Fatal("full set insert did not evict")
	}
	if tb.Stats().Replacements != 1 {
		t.Fatalf("replacements = %d", tb.Stats().Replacements)
	}
	if live := tb.Live(); live != 2 {
		t.Fatalf("live entries = %d, want 2", live)
	}
}

func TestTableLRUVictim(t *testing.T) {
	cfg := smallTable(MetaLRU)
	tb := NewTable(cfg, 1)
	tb.Insert(0, 1, 0)
	tb.Insert(16, 2, 0)
	tb.Lookup(0) // 0 recently used; 16 is LRU
	ev := tb.Insert(32, 3, 0)
	if !ev.Valid || ev.Target != 2 {
		t.Fatalf("LRU evicted %+v, want the entry with target 2", ev)
	}
}

func TestTableProphetPriorityVictim(t *testing.T) {
	cfg := smallTable(ProphetPriority)
	tb := NewTable(cfg, 1)
	tb.Insert(0, 1, 3)  // high priority
	tb.Insert(16, 2, 0) // low priority
	tb.Lookup(16)       // recently used, but priority dominates
	ev := tb.Insert(32, 3, 2)
	if !ev.Valid || ev.Target != 2 {
		t.Fatalf("Prophet policy evicted %+v, want the low-priority entry (target 2)", ev)
	}
	// High-priority entry survives.
	if got, ok := tb.Lookup(0); !ok || got != 1 {
		t.Fatal("high-priority entry was evicted")
	}
}

func TestTableZeroWaysDropsInserts(t *testing.T) {
	tb := NewTable(smallTable(MetaSRRIP), 0)
	ev := tb.Insert(1, 2, 0)
	if ev.Valid || tb.Live() != 0 {
		t.Fatal("zero-capacity table accepted an insert")
	}
	if _, ok := tb.Lookup(1); ok {
		t.Fatal("zero-capacity table returned a hit")
	}
}

func TestTableResizeShrinkEvicts(t *testing.T) {
	cfg := smallTable(MetaLRU)
	tb := NewTable(cfg, 4) // 8 entries per set
	// Fill set 0 with 8 entries (sources 0,16,...,112).
	for i := 0; i < 8; i++ {
		tb.Insert(uint32(16*i), uint32(i+1), 0)
	}
	evs := tb.Resize(1) // down to 2 entries per set
	if len(evs) != 6 {
		t.Fatalf("shrink evicted %d entries, want 6", len(evs))
	}
	if tb.Live() != 2 {
		t.Fatalf("live after shrink = %d, want 2", tb.Live())
	}
	if tb.Ways() != 1 {
		t.Fatalf("ways = %d", tb.Ways())
	}
	if tb.Capacity() != cfg.Sets*cfg.EntriesPerWay {
		t.Fatalf("capacity = %d", tb.Capacity())
	}
}

func TestTableResizeClamps(t *testing.T) {
	tb := NewTable(smallTable(MetaLRU), 2)
	tb.Resize(99)
	if tb.Ways() != 4 {
		t.Fatalf("ways = %d, want clamped 4", tb.Ways())
	}
	tb.Resize(-1)
	if tb.Ways() != 0 {
		t.Fatalf("ways = %d, want 0", tb.Ways())
	}
}

func TestAllocatedEntries(t *testing.T) {
	s := TableStats{Insertions: 10, Replacements: 3}
	if s.AllocatedEntries() != 7 {
		t.Fatalf("AllocatedEntries = %d", s.AllocatedEntries())
	}
	s = TableStats{Insertions: 2, Replacements: 5}
	if s.AllocatedEntries() != 0 {
		t.Fatal("AllocatedEntries should clamp at 0")
	}
}

func TestDefaultGeometryMatchesPaper(t *testing.T) {
	cfg := DefaultTableConfig()
	if cfg.MaxEntries() != 196608 {
		t.Fatalf("1MB table = %d entries, want 196608 (Section 5.10)", cfg.MaxEntries())
	}
	if cfg.EntriesPerWayTotal() != 24576 {
		t.Fatalf("one way = %d entries, want 24576", cfg.EntriesPerWayTotal())
	}
}

func TestEvictedSrcKey(t *testing.T) {
	cfg := DefaultTableConfig() // 2048 sets -> 11 set bits
	e := Evicted{Set: 5, Tag: 3}
	if got := e.SrcKey(cfg); got != 3<<11|5 {
		t.Fatalf("SrcKey = %d, want %d", got, 3<<11|5)
	}
}

func TestChase(t *testing.T) {
	tb := NewTable(smallTable(MetaLRU), 4)
	comp := NewCompressor()
	// Build chain A -> B -> C -> D.
	lines := []mem.Line{1000, 2000, 3000, 4000}
	var idx []uint32
	for _, l := range lines {
		idx = append(idx, comp.Index(l))
	}
	for i := 0; i+1 < len(idx); i++ {
		tb.Insert(idx[i], idx[i+1], 0)
	}
	got := Chase(tb, comp, idx[0], 4)
	if len(got) != 3 {
		t.Fatalf("Chase found %d lines, want 3", len(got))
	}
	for i, want := range lines[1:] {
		if got[i] != want {
			t.Errorf("chase step %d = %v, want %v", i, got[i], want)
		}
	}
	if got := Chase(tb, comp, idx[0], 2); len(got) != 2 {
		t.Fatalf("degree-2 chase returned %d lines", len(got))
	}
}

func TestTrainingUnit(t *testing.T) {
	u := NewTrainingUnit(64)
	if _, ok := u.Observe(1, 100); ok {
		t.Fatal("first observation returned a previous line")
	}
	prev, ok := u.Observe(1, 200)
	if !ok || prev != 100 {
		t.Fatalf("Observe = %v,%v want 100,true", prev, ok)
	}
	if last, ok := u.Last(1); !ok || last != 200 {
		t.Fatalf("Last = %v,%v", last, ok)
	}
	if _, ok := u.Last(999); ok {
		t.Fatal("Last hit for unknown PC")
	}
}

func TestTrainingUnitConflict(t *testing.T) {
	u := NewTrainingUnit(4)
	u.Observe(0x10, 1)
	// A conflicting PC evicts the old entry.
	conflict := mem.Addr(0x10 + 4*4)
	if u.slot(0x10) != u.slot(conflict) {
		t.Skip("hash changed; aliasing assumption broken")
	}
	u.Observe(conflict, 2)
	if _, ok := u.Last(0x10); ok {
		t.Fatal("evicted PC still present")
	}
}

func TestReuseBuffer(t *testing.T) {
	b := NewReuseBuffer(2)
	b.Insert(1, 10)
	b.Insert(2, 20)
	if v, ok := b.Lookup(1); !ok || v != 10 {
		t.Fatalf("Lookup(1) = %v,%v", v, ok)
	}
	// 2 is now LRU; inserting 3 evicts it.
	b.Insert(3, 30)
	if _, ok := b.Lookup(2); ok {
		t.Fatal("LRU entry not evicted")
	}
	if v, ok := b.Lookup(1); !ok || v != 10 {
		t.Fatalf("MRU entry lost: %v,%v", v, ok)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	b.Insert(1, 11) // update in place
	if v, _ := b.Lookup(1); v != 11 {
		t.Fatal("update in place failed")
	}
}

func TestTargetHistogram(t *testing.T) {
	h := NewTargetHistogram(5)
	// src 1: one target; src 2: two; src 3: three.
	h.Observe(1, 10)
	h.Observe(1, 10)
	h.Observe(2, 10)
	h.Observe(2, 20)
	h.Observe(3, 10)
	h.Observe(3, 20)
	h.Observe(3, 30)
	f := h.Fractions()
	want := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3, 0, 0}
	for i := range want {
		if diff := f[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("fraction[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	if h.Sources() != 3 {
		t.Fatalf("Sources = %d", h.Sources())
	}
}

func TestTargetHistogramClamp(t *testing.T) {
	h := NewTargetHistogram(2)
	for i := 0; i < 10; i++ {
		h.Observe(1, uint64(i))
	}
	f := h.Fractions()
	if f[1] != 1.0 {
		t.Fatalf("clamped bucket = %v, want 1.0", f[1])
	}
}

func TestTargetHistogramEmpty(t *testing.T) {
	h := NewTargetHistogram(3)
	for _, v := range h.Fractions() {
		if v != 0 {
			t.Fatal("empty histogram has non-zero fractions")
		}
	}
}

// Property: the table never exceeds capacity and lookups after insert find
// the most recent target, for arbitrary operation sequences.
func TestTableInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mem.NewPRNG(seed)
		cfg := smallTable(Policy(seed % 3))
		tb := NewTable(cfg, 1+int(seed%4))
		latest := map[uint32]uint32{}
		for i := 0; i < 3000; i++ {
			src := uint32(rng.Intn(256))
			switch rng.Intn(3) {
			case 0:
				target := uint32(rng.Intn(1 << 20))
				tb.Insert(src, target, uint8(rng.Intn(4)))
				latest[src] = target
			case 1:
				if got, ok := tb.Lookup(src); ok {
					// A hit must return the latest inserted
					// target for a source with that tag...
					// unless a tag alias overwrote it; with
					// 16 sets and srcs < 256 there are no
					// tag aliases (tag = src>>4 < 16).
					if want, seen := latest[src]; seen && got != want {
						return false
					}
				}
			case 2:
				tb.Resize(rng.Intn(cfg.MaxWays + 1))
			}
			if tb.Live() > tb.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if MetaLRU.String() == "" || MetaSRRIP.String() == "" || ProphetPriority.String() == "" {
		t.Fatal("policies must have names")
	}
	if Policy(77).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}
