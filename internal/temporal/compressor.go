// Package temporal provides the shared substrate of all on-chip temporal
// prefetchers in this repository (Triage, Triangel, Prophet): the compressed
// address space, the in-LLC Markov metadata table with pluggable replacement,
// the prefetcher engine interface the simulator drives, a metadata reuse
// buffer, and the Markov-target histogram behind Figure 8.
//
// Metadata format (Section 3.1): each 64-byte LLC line packs 12 compressed
// entries of {10-bit tag, 31-bit target}. With the Table 1 LLC (2MB, 16-way,
// 2048 sets) one way holds 2048 lines x 12 = 24,576 entries, so the paper's
// 1MB maximum table is 8 ways = 196,608 entries — the exact figure Section
// 5.10 uses.
package temporal

import "prophet/internal/mem"

// IndexBits is the width of a compressed address (the 31-bit "target
// address" of the metadata format).
const IndexBits = 31

// MaxIndex is the largest representable compressed index.
const MaxIndex = 1<<IndexBits - 1

// Compressor maintains the bidirectional mapping between cache-line
// addresses and the 31-bit compressed indices stored in metadata entries.
// Triage introduced this structure so that metadata fits 41 bits per entry;
// we reproduce it exactly. Index assignment is first-touch sequential, and
// the mapping wraps (overwriting the oldest index) if a run ever exceeds
// 2^31 distinct lines, which no simulated workload approaches.
//
// Index sits on the per-access hot path of every temporal scheme, so the
// line -> index direction is an open-addressed probe map rather than a Go
// map: one flat probe per lookup, no per-entry allocations.
type Compressor struct {
	toIndex *probeMap[mem.Line]
	toLine  []mem.Line
}

// NewCompressor returns an empty compressor.
func NewCompressor() *Compressor {
	// Presized for the tens of thousands of distinct lines a typical
	// simulated trace touches, so steady-state Index calls never rehash.
	return &Compressor{
		toIndex: newProbeMap[mem.Line](1 << 15),
		toLine:  make([]mem.Line, 0, 1<<14),
	}
}

// Index returns the compressed index for line l, allocating one on first use.
func (c *Compressor) Index(l mem.Line) uint32 {
	if idx, ok := c.toIndex.get(l); ok {
		return idx
	}
	idx := uint32(len(c.toLine)) & MaxIndex
	if len(c.toLine) <= int(idx) {
		c.toLine = append(c.toLine, l)
	} else {
		// Wrapped: recycle the slot.
		c.toIndex.del(c.toLine[idx])
		c.toLine[idx] = l
	}
	c.toIndex.set(l, idx)
	return idx
}

// Lookup returns the index for l without allocating.
func (c *Compressor) Lookup(l mem.Line) (uint32, bool) {
	return c.toIndex.get(l)
}

// Line translates a compressed index back to its line address.
func (c *Compressor) Line(idx uint32) (mem.Line, bool) {
	if int(idx) >= len(c.toLine) {
		return 0, false
	}
	return c.toLine[idx], true
}

// Entries returns the number of live mappings (for storage accounting).
func (c *Compressor) Entries() int { return c.toIndex.len() }
