package triangel

import (
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// dueller is the Set Dueller resizing monitor (Section 2.1.3): it samples a
// subset of cache sets and maintains, for both the demand LLC and the
// metadata table, Mattson stack-distance histograms over full-associativity
// shadow tags. At each epoch it picks the way partition that maximizes the
// estimated combined hit utility — "simulating various partitioning
// configurations for the cache and the Markov table, evaluating their
// respective hit rates" with ~2KB of sampled state in hardware.
//
// Sampling only a few sets is precisely why the estimate can lag program
// behaviour; the Prophet paper observes the resulting allocations are often
// too conservative on omnetpp and mcf. That emerges here naturally: the
// histograms describe the previous epoch, not the future.
type dueller struct {
	tableCfg   temporal.TableConfig
	metaWeight float64

	sampleMask uint64 // LLC sets sampled (1/64)
	llcSets    map[uint64][]mem.Line
	llcHist    []float64 // hits by stack position (way)
	llcMisses  float64

	metaSets   map[uint32][]uint32
	metaHist   []float64 // hits by stack position in way-granularity
	metaMisses float64
}

const (
	duellerLLCWays = 16
	duellerDecay   = 0.5
	sampleShift    = 6 // sample 1/64 of sets
)

func newDueller(tableCfg temporal.TableConfig, metaWeight float64) *dueller {
	return &dueller{
		tableCfg:   tableCfg,
		metaWeight: metaWeight,
		llcSets:    make(map[uint64][]mem.Line),
		llcHist:    make([]float64, duellerLLCWays),
		metaSets:   make(map[uint32][]uint32),
		metaHist:   make([]float64, tableCfg.MaxWays),
	}
}

// observeLLC feeds a demand LLC access (an L2 miss) into the LLC monitor.
// The Mattson stack updates move-to-front in place — the shadow stacks are
// long-lived and must not allocate per sampled access.
func (d *dueller) observeLLC(l mem.Line) {
	set := uint64(l) & 2047
	if set&(1<<sampleShift-1) != 0 {
		return
	}
	stack := d.llcSets[set]
	pos := -1
	for i, x := range stack {
		if x == l {
			pos = i
			break
		}
	}
	if pos >= 0 {
		if pos < len(d.llcHist) {
			d.llcHist[pos]++
		}
		// Move-to-front: rotate [0, pos] right by one.
		copy(stack[1:pos+1], stack[:pos])
		stack[0] = l
		return
	}
	d.llcMisses++
	if len(stack) < duellerLLCWays {
		if stack == nil {
			stack = make([]mem.Line, 0, duellerLLCWays)
		}
		stack = append(stack, 0)
		d.llcSets[set] = stack
	}
	// Prepend, dropping the coldest entry when already full.
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = l
}

// observeMeta feeds a metadata insertion/access into the metadata monitor.
func (d *dueller) observeMeta(src uint32) {
	set := src & 2047
	if set&(1<<sampleShift-1) != 0 {
		return
	}
	stack := d.metaSets[set]
	pos := -1
	for i, x := range stack {
		if x == src {
			pos = i
			break
		}
	}
	entriesPerWay := d.tableCfg.EntriesPerWay
	if pos >= 0 {
		way := pos / entriesPerWay
		if way < len(d.metaHist) {
			d.metaHist[way]++
		}
		copy(stack[1:pos+1], stack[:pos])
		stack[0] = src
		return
	}
	d.metaMisses++
	if max := entriesPerWay * d.tableCfg.MaxWays; len(stack) < max {
		if stack == nil {
			stack = make([]uint32, 0, max)
		}
		stack = append(stack, 0)
		d.metaSets[set] = stack
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = src
}

// choose returns the metadata way allocation maximizing estimated utility:
// sum of LLC hits with (16 - w) ways plus weighted metadata hits with w ways.
// Histograms decay afterwards so stale phases age out.
func (d *dueller) choose(current int) int {
	best, bestVal := current, -1.0
	maxMeta := d.tableCfg.MaxWays
	for w := 0; w <= maxMeta; w++ {
		llcWays := duellerLLCWays - w
		val := 0.0
		for i := 0; i < llcWays && i < len(d.llcHist); i++ {
			val += d.llcHist[i]
		}
		for i := 0; i < w && i < len(d.metaHist); i++ {
			val += d.metaWeight * d.metaHist[i]
		}
		if val > bestVal {
			best, bestVal = w, val
		}
	}
	for i := range d.llcHist {
		d.llcHist[i] *= duellerDecay
	}
	for i := range d.metaHist {
		d.metaHist[i] *= duellerDecay
	}
	d.llcMisses *= duellerDecay
	d.metaMisses *= duellerDecay
	return best
}
