package triangel

import (
	"prophet/internal/registry"
	"prophet/internal/sim"
)

// The triangel scheme self-registers: the evaluator resolves it by name, so
// the public API needs no per-prefetcher switch.
func init() {
	registry.MustRegister("triangel", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			e := New(Default())
			st := sim.RunOpts(ctx.Sim, ctx.Opts, e, nil, nil, nil, ctx.Factory())
			e.Release()
			return registry.Result{Stats: st}, nil
		})
	})
}
