package triangel

import (
	"testing"

	"prophet/internal/mem"
	"prophet/internal/temporal"
)

func miss(pc mem.Addr, line mem.Line) temporal.AccessEvent {
	return temporal.AccessEvent{PC: pc, Line: line, Hit: false}
}

func testConfig() Config {
	cfg := Default()
	cfg.Table = temporal.TableConfig{Sets: 64, EntriesPerWay: 4, MaxWays: 4, Policy: temporal.MetaSRRIP}
	cfg.Ways = 4
	cfg.SetDueller = false
	return cfg
}

func TestLearnsAndPredictsSequence(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x400)
	seq := []mem.Line{10, 700, 33, 950, 42, 77}
	for pass := 0; pass < 3; pass++ {
		for _, l := range seq {
			p.OnAccess(miss(pc, l))
		}
	}
	got := p.OnAccess(miss(pc, seq[0]))
	if len(got) == 0 || got[0] != seq[1] {
		t.Fatalf("prediction after training = %v, want first %v", got, seq[1])
	}
}

func TestAggressiveDegree(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x410)
	seq := []mem.Line{1, 2000, 55, 301, 999, 40}
	for pass := 0; pass < 3; pass++ {
		for _, l := range seq {
			p.OnAccess(miss(pc, l))
		}
	}
	got := p.OnAccess(miss(pc, seq[0]))
	if len(got) != 4 {
		t.Fatalf("degree-4 Triangel returned %d prefetches: %v", len(got), got)
	}
}

func TestReuseConfFiltersRandomPC(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x500)
	rng := mem.NewPRNG(2)
	// Random lines over a huge space never recur: reuse samples expire
	// past the table window (1024 entries here) and ReuseConf decays,
	// shutting insertion off for the tail of the run.
	const n = 8000
	for i := 0; i < n; i++ {
		p.OnAccess(miss(pc, mem.Line(rng.Intn(1<<22))))
	}
	if got := p.ReuseConf(pc); got >= p.cfg.ReuseThreshold {
		t.Fatalf("ReuseConf = %d after random stream, want < %d", got, p.cfg.ReuseThreshold)
	}
	if ins := p.TableStats().Insertions; ins > n/2 {
		t.Fatalf("random stream inserted %d entries of %d; ReuseConf should have filtered the tail", ins, n)
	}
}

// TestPatternConfCollapseRejectsInterleavedPattern reproduces the Figure 1
// failure mode: a burst of useless accesses drives PatternConf to zero, after
// which genuinely pattern-bearing accesses from the same PC are rejected.
func TestPatternConfCollapseRejectsInterleavedPattern(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x600)
	// Drive PatternConf to zero with useless-prefetch feedback (red dots).
	for i := 0; i < confMax+1; i++ {
		p.PrefetchUseless(pc, 1)
	}
	if p.PatternConf(pc) != 0 {
		t.Fatalf("PatternConf = %d, want 0", p.PatternConf(pc))
	}
	before := p.TableStats().Insertions
	// A clean temporal sequence now arrives (blue stars): Triangel
	// rejects its insertion because the short-term counter is floored.
	seq := []mem.Line{10, 20, 30, 40, 50}
	for _, l := range seq {
		p.OnAccess(miss(pc, l))
	}
	if got := p.TableStats().Insertions - before; got != 0 {
		t.Fatalf("collapsed PatternConf still inserted %d entries", got)
	}
}

func TestUsefulFeedbackRestoresInsertion(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x700)
	for i := 0; i < confMax+1; i++ {
		p.PrefetchUseless(pc, 1)
	}
	for i := 0; i < confInit+1; i++ {
		p.PrefetchUseful(pc, 1)
	}
	if p.PatternConf(pc) < p.cfg.PatternThreshold {
		t.Fatalf("PatternConf = %d, want >= threshold %d", p.PatternConf(pc), p.cfg.PatternThreshold)
	}
	before := p.TableStats().Insertions
	for _, l := range []mem.Line{10, 20, 30} {
		p.OnAccess(miss(pc, l))
	}
	if got := p.TableStats().Insertions - before; got == 0 {
		t.Fatal("restored PatternConf did not re-enable insertion")
	}
}

func TestSetDuellerResizesDown(t *testing.T) {
	cfg := testConfig()
	cfg.SetDueller = true
	cfg.ResizeEpoch = 500
	p := New(cfg)
	// LLC-heavy, metadata-light load: most accesses are distinct lines
	// (LLC utility) from a PC whose pattern never repeats, so the dueller
	// should shrink the table allocation.
	rng := mem.NewPRNG(3)
	pc := mem.Addr(0x800)
	for i := 0; i < 3000; i++ {
		p.OnAccess(miss(pc, mem.Line(rng.Intn(1<<22))))
	}
	if p.MetaWays() >= cfg.Ways {
		t.Fatalf("MetaWays = %d; dueller should have shrunk the metadata table", p.MetaWays())
	}
}

func TestNameAndStats(t *testing.T) {
	p := New(testConfig())
	if p.Name() != "triangel" {
		t.Error("name")
	}
	if p.MetaWays() != 4 {
		t.Errorf("MetaWays = %d", p.MetaWays())
	}
	_ = p.TableStats()
	_ = p.Table()
}

func TestZeroPCIgnoredForTraining(t *testing.T) {
	p := New(testConfig())
	p.OnAccess(miss(0, 1))
	p.OnAccess(miss(0, 2))
	if p.TableStats().Insertions != 0 {
		t.Fatal("PC-less accesses must not train")
	}
}
