// Package triangel implements the Triangel temporal prefetcher (Ainsworth &
// Mukhanov, ISCA'24), the state-of-the-art hardware baseline of the Prophet
// paper. Triangel extends Triage with
//
//   - an insertion filter driven by two 4-bit confidence counters per memory
//     instruction: PatternConf (do this PC's accesses repeat their successor
//     relationships?) and ReuseConf (do its lines recur within the metadata
//     table's reach?). Training and insertion are rejected when the counters
//     fall below threshold — the short-term behaviour Figure 1 of the
//     Prophet paper shows mis-firing on interleaved useful/useless patterns;
//   - SRRIP replacement for the metadata table (replacing Triage's Hawkeye);
//   - Set-Dueller resizing: sampled shadow utility monitors for both the
//     demand LLC and the metadata table decide the way partition each epoch;
//   - aggressive chained prefetching (degree 4), which Triangel's own
//     ablation credits with most of its speedup.
//
// PatternConf is trained by a history sampler: a bounded FIFO of sampled
// (address -> successor) pairs. When a sampled address recurs, the observed
// successor is compared against the recorded one (+1 match, -1 mismatch).
// Prefetch outcome feedback (useful +1 / evicted-unused -1) adds the "blue
// dot / red dot" signal of Figure 1. ReuseConf is trained by a reuse
// sampler: sampled lines that recur within the table's entry capacity raise
// it, samples that expire unreferenced lower it.
package triangel

import (
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// Config parameterizes Triangel.
type Config struct {
	// Degree is the Markov chain-walk prefetch degree (4: "aggressive").
	Degree int
	// Ways is the initial metadata allocation in LLC ways.
	Ways int
	// Table is the metadata-table geometry.
	Table temporal.TableConfig
	// PatternThreshold gates insertion on PatternConf (0..15 counter).
	PatternThreshold int8
	// ReuseThreshold gates insertion on ReuseConf (0..15 counter).
	ReuseThreshold int8
	// SetDueller enables utility-monitor resizing.
	SetDueller bool
	// ResizeEpoch is the number of trainable accesses between resizes.
	ResizeEpoch uint64
	// MetaHitWeight scales metadata utility against LLC hit utility when
	// the Set Dueller partitions ways. Weights below 1 reproduce
	// Triangel's conservative allocations on omnetpp/mcf.
	MetaHitWeight float64
}

// Default returns the configuration used throughout the evaluation.
func Default() Config {
	tc := temporal.DefaultTableConfig()
	tc.Policy = temporal.MetaSRRIP
	return Config{
		Degree:           4,
		Ways:             tc.MaxWays,
		Table:            tc,
		PatternThreshold: 8,
		ReuseThreshold:   6,
		SetDueller:       true,
		ResizeEpoch:      100_000,
		MetaHitWeight:    0.8,
	}
}

const (
	confMax  = 15 // 4-bit counters
	confInit = 8

	patternSamplerCap = 2048
	reuseSamplerCap   = 4096
)

// pcState is the per-memory-instruction training state.
type pcState struct {
	pc          mem.Addr
	valid       bool
	patternConf int8
	reuseConf   int8
}

type patternSample struct {
	line     mem.Line
	expected mem.Line
	pc       mem.Addr
	valid    bool
}

type reuseSample struct {
	line  mem.Line
	pc    mem.Addr
	tick  uint64
	valid bool
}

// Prefetcher is the Triangel engine.
type Prefetcher struct {
	cfg     Config
	table   *temporal.Table
	comp    *temporal.Compressor
	train   *temporal.TrainingUnit
	pcs     []pcState  // direct-mapped by PC, like the training unit
	scratch []mem.Line // prediction buffer reused across OnAccess calls

	// History sampler (PatternConf). The index maps line -> ring slot
	// through an open-addressed probe map: sampler checks run on every
	// trainable access, so the lookup must not cost a Go-map operation.
	patRing  []patternSample
	patHead  int
	patIndex *temporal.LineIndex

	// Reuse sampler (ReuseConf).
	reuseRing  []reuseSample
	reuseHead  int
	reuseTail  int
	reuseCount int
	reuseIndex *temporal.LineIndex
	accessTick uint64

	dueller *dueller
}

// New builds a Triangel prefetcher.
func New(cfg Config) *Prefetcher {
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	p := &Prefetcher{
		cfg:        cfg,
		table:      temporal.NewTable(cfg.Table, cfg.Ways),
		comp:       temporal.NewCompressor(),
		train:      temporal.NewTrainingUnit(1024),
		pcs:        make([]pcState, 1024),
		scratch:    make([]mem.Line, 0, cfg.Degree),
		patRing:    make([]patternSample, patternSamplerCap),
		patIndex:   temporal.NewLineIndex(patternSamplerCap),
		reuseRing:  make([]reuseSample, reuseSamplerCap),
		reuseIndex: temporal.NewLineIndex(reuseSamplerCap),
	}
	if cfg.SetDueller {
		p.dueller = newDueller(cfg.Table, cfg.MetaHitWeight)
	}
	return p
}

// Name implements temporal.Engine.
func (p *Prefetcher) Name() string { return "triangel" }

func (p *Prefetcher) pcSlot(pc mem.Addr) *pcState {
	x := uint64(pc) >> 2
	x ^= x >> 9
	st := &p.pcs[x&uint64(len(p.pcs)-1)]
	if !st.valid || st.pc != pc {
		*st = pcState{pc: pc, valid: true, patternConf: confInit, reuseConf: confInit}
	}
	return st
}

// sampleHash picks the deterministic sampling subsets.
func sampleHash(l mem.Line) uint64 {
	x := uint64(l)
	x ^= x >> 13
	x *= 0x9e3779b97f4a7c15
	return x >> 32
}

// OnAccess implements temporal.Engine.
func (p *Prefetcher) OnAccess(ev temporal.AccessEvent) []mem.Line {
	if !ev.Trainable() {
		return nil
	}
	p.accessTick++
	cur := p.comp.Index(ev.Line)

	if p.dueller != nil {
		p.dueller.observeLLC(ev.Line)
	}
	p.expireReuseSamples()

	if ev.PC != 0 {
		st := p.pcSlot(ev.PC)
		p.observeReuse(ev.PC, ev.Line, st)
		if prev, ok := p.train.Observe(ev.PC, ev.Line); ok && prev != ev.Line {
			p.checkPatternSample(prev, ev.Line)
			p.maybeAddPatternSample(ev.PC, prev, ev.Line)
			// Insertion filter (Section 2.1.1): both confidence
			// counters must clear their thresholds.
			if st.patternConf >= p.cfg.PatternThreshold && st.reuseConf >= p.cfg.ReuseThreshold {
				src := p.comp.Index(prev)
				p.table.Insert(src, cur, 0)
				if p.dueller != nil {
					p.dueller.observeMeta(src)
				}
			}
		}
	}

	p.maybeResize()
	// Aggressiveness control: the chained degree-4 walk is only worth its
	// bandwidth when the triggering instruction's pattern confidence is
	// high; low-confidence triggers fall back to degree 1.
	degree := p.cfg.Degree
	if ev.PC != 0 && p.pcSlot(ev.PC).patternConf < p.cfg.PatternThreshold {
		degree = 1
	}
	p.scratch = temporal.AppendChase(p.scratch[:0], p.table, p.comp, cur, degree)
	return p.scratch
}

// checkPatternSample confirms or refutes a recorded (prev -> ?) sample.
func (p *Prefetcher) checkPatternSample(prev, cur mem.Line) {
	slot, ok := p.patIndex.Get(prev)
	if !ok {
		return
	}
	s := p.patRing[slot]
	if !s.valid || s.line != prev {
		p.patIndex.Del(prev)
		return
	}
	st := p.pcSlot(s.pc)
	if s.expected == cur {
		if st.patternConf < confMax {
			st.patternConf++
		}
	} else if st.patternConf > 0 {
		st.patternConf--
	}
	p.patIndex.Del(prev)
	p.patRing[slot] = patternSample{}
}

// maybeAddPatternSample records (prev -> cur) for a sampled subset of
// addresses. The ring overwrites oldest samples; an overwritten sample was
// simply never re-observed within the window and carries no penalty (the
// reuse sampler provides that signal).
func (p *Prefetcher) maybeAddPatternSample(pc mem.Addr, prev, cur mem.Line) {
	if sampleHash(prev)&63 != 0 { // sample 1/64 of addresses
		return
	}
	if _, ok := p.patIndex.Get(prev); ok {
		return
	}
	old := p.patRing[p.patHead]
	if old.valid {
		p.patIndex.Del(old.line)
	}
	p.patRing[p.patHead] = patternSample{line: prev, expected: cur, pc: pc, valid: true}
	p.patIndex.Set(prev, p.patHead)
	p.patHead = (p.patHead + 1) % len(p.patRing)
}

// observeReuse feeds the reuse sampler: a sampled line recurring within the
// table's entry capacity is evidence the PC's pattern fits the table.
func (p *Prefetcher) observeReuse(pc mem.Addr, line mem.Line, st *pcState) {
	window := uint64(p.table.Config().MaxEntries())
	if slot, ok := p.reuseIndex.Get(line); ok {
		s := p.reuseRing[slot]
		if s.valid && s.line == line {
			if p.accessTick-s.tick <= window {
				if st.reuseConf < confMax {
					st.reuseConf++
				}
			} else if st.reuseConf > 0 {
				st.reuseConf--
			}
			p.reuseIndex.Del(line)
			p.reuseRing[slot] = reuseSample{}
		}
	}
	if sampleHash(line)>>6&63 != 0 { // sample 1/64 of lines
		return
	}
	if _, ok := p.reuseIndex.Get(line); ok {
		return
	}
	if p.reuseCount >= len(p.reuseRing) {
		// Capacity overflow carries no penalty: the sample simply fell
		// out of the monitoring window. Only expiry (the line provably
		// failed to recur within table reach) lowers ReuseConf.
		p.dropOldestReuse(false)
	}
	p.reuseRing[p.reuseTail] = reuseSample{line: line, pc: pc, tick: p.accessTick, valid: true}
	p.reuseIndex.Set(line, p.reuseTail)
	p.reuseTail = (p.reuseTail + 1) % len(p.reuseRing)
	p.reuseCount++
}

// expireReuseSamples retires samples older than the table window, lowering
// the sampling PC's ReuseConf: the line did not recur within reach.
func (p *Prefetcher) expireReuseSamples() {
	window := uint64(p.table.Config().MaxEntries())
	for p.reuseCount > 0 {
		s := p.reuseRing[p.reuseHead]
		if !s.valid { // hole left by a confirmed sample
			p.reuseHead = (p.reuseHead + 1) % len(p.reuseRing)
			p.reuseCount--
			continue
		}
		if p.accessTick-s.tick <= window {
			return
		}
		p.dropOldestReuse(true)
	}
}

// dropOldestReuse pops the head sample; penalize lowers its PC's ReuseConf.
func (p *Prefetcher) dropOldestReuse(penalize bool) {
	s := p.reuseRing[p.reuseHead]
	if s.valid {
		p.reuseIndex.Del(s.line)
		if penalize {
			st := p.pcSlot(s.pc)
			if st.reuseConf > 0 {
				st.reuseConf--
			}
		}
	}
	p.reuseRing[p.reuseHead] = reuseSample{}
	p.reuseHead = (p.reuseHead + 1) % len(p.reuseRing)
	p.reuseCount--
}

// PrefetchUseful implements temporal.Engine: a useful prefetch raises the
// trigger PC's PatternConf (a blue dot in Figure 1).
func (p *Prefetcher) PrefetchUseful(trigger mem.Addr, _ mem.Line) {
	if trigger == 0 {
		return
	}
	st := p.pcSlot(trigger)
	if st.patternConf < confMax {
		st.patternConf++
	}
}

// PrefetchUseless implements temporal.Engine: an evicted-unused prefetch
// lowers the trigger PC's PatternConf (a red dot in Figure 1).
func (p *Prefetcher) PrefetchUseless(trigger mem.Addr, _ mem.Line) {
	if trigger == 0 {
		return
	}
	st := p.pcSlot(trigger)
	if st.patternConf > 0 {
		st.patternConf--
	}
}

func (p *Prefetcher) maybeResize() {
	if p.dueller == nil {
		return
	}
	if p.accessTick%p.cfg.ResizeEpoch != 0 {
		return
	}
	ways := p.dueller.choose(p.table.Ways())
	if ways != p.table.Ways() {
		p.table.Resize(ways)
	}
}

// MetaWays implements temporal.Engine.
func (p *Prefetcher) MetaWays() int { return p.table.Ways() }

// TableStats implements temporal.Engine.
func (p *Prefetcher) TableStats() temporal.TableStats { return p.table.Stats() }

// Table exposes the metadata table for tests.
func (p *Prefetcher) Table() *temporal.Table { return p.table }

// Release returns the metadata table's storage to the geometry pool. The
// prefetcher (and anything obtained through Table) must not be used after.
func (p *Prefetcher) Release() { p.table.Release() }

// PatternConf exposes a PC's confidence counter for tests and Figure 1.
func (p *Prefetcher) PatternConf(pc mem.Addr) int8 { return p.pcSlot(pc).patternConf }

// ReuseConf exposes a PC's reuse confidence for tests.
func (p *Prefetcher) ReuseConf(pc mem.Addr) int8 { return p.pcSlot(pc).reuseConf }

var _ temporal.Engine = (*Prefetcher)(nil)
