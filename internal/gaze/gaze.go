// Package gaze implements a Gaze-style spatial-pattern prefetcher (Chen et
// al., "Gaze into the Pattern", arXiv 2412.05211): footprints of 4KB regions
// are learned in an accumulation table and replayed from a pattern history
// table, with the paper's key idea that a region's first two offsets — the
// trigger and the second access, an internal temporal correlation — select
// the stored pattern far more precisely than the trigger alone.
//
// The reproduction is deliberately compact but keeps the two-stage shape:
//
//   - Stage 1, on region activation: a trigger-offset signature looks up the
//     pattern history table and replays only maximum-confidence lines (the
//     trigger alone is ambiguous, so only long-run-stable bits qualify).
//   - Stage 2, on the region's second distinct access: the (trigger, second)
//     signature selects the precise pattern and replays every bit above the
//     confidence threshold.
//
// When a region's accumulation entry is evicted, its observed footprint
// trains both signatures: footprint bits bump 2-bit saturating counters up,
// absent bits decay them. Everything is bounded, set-associative, and
// LRU-replaced with deterministic scans — same-input runs are
// byte-identical, like every other engine in the repository.
//
// Unlike the temporal schemes, gaze keeps its metadata in dedicated SRAM
// rather than carved-out LLC ways, so MetaWays is always 0 and the
// demand-visible LLC stays whole.
package gaze

import (
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// Config sizes the prefetcher.
type Config struct {
	// RegionLines is the spatial region size in cache lines (64 = 4KB
	// regions of 64B lines). Must be a power of two, at most 64 so a
	// footprint fits one uint64.
	RegionLines int
	// ATEntries is the accumulation-table capacity (regions observed
	// concurrently).
	ATEntries int
	// PHTSets and PHTWays shape the set-associative pattern history table.
	PHTSets int
	PHTWays int
	// Threshold is the stage-2 counter value (out of counterMax=3) a
	// footprint bit needs to be replayed.
	Threshold uint8
	// Degree caps prefetches issued per triggering access.
	Degree int
}

// Default returns the evaluated configuration: 4KB regions, a 64-region
// accumulation table, and a 256x4 pattern history table — 2-bit counters
// over 64-bit footprints, ~9KB of pattern SRAM.
func Default() Config {
	return Config{
		RegionLines: 64,
		ATEntries:   64,
		PHTSets:     256,
		PHTWays:     4,
		Threshold:   2,
		Degree:      16,
	}
}

// counterMax is the 2-bit saturating counter ceiling.
const counterMax = 3

// atEntry accumulates one active region's footprint.
type atEntry struct {
	region    uint64
	footprint uint64
	trigger   uint8 // first offset observed
	second    uint8 // second distinct offset
	hasSecond bool
	used      bool
	last      uint64 // LRU clock
}

// phtEntry stores one learned pattern: per-offset 2-bit confidence counters,
// anchored at the signature's trigger offset.
type phtEntry struct {
	sig      uint32
	counters [64]uint8
	used     bool
	last     uint64
}

// Prefetcher is the engine. Create one per run with New.
type Prefetcher struct {
	cfg   Config
	mask  uint64 // RegionLines - 1
	shift uint   // log2(RegionLines)

	at    []atEntry
	pht   [][]phtEntry
	clock uint64

	stats   temporal.TableStats
	scratch []mem.Line
}

// New returns a fresh prefetcher. Invalid dimensions fall back to Default
// values, so a zero Config is usable.
func New(cfg Config) *Prefetcher {
	d := Default()
	if cfg.RegionLines <= 0 || cfg.RegionLines > 64 || cfg.RegionLines&(cfg.RegionLines-1) != 0 {
		cfg.RegionLines = d.RegionLines
	}
	if cfg.ATEntries <= 0 {
		cfg.ATEntries = d.ATEntries
	}
	if cfg.PHTSets <= 0 || cfg.PHTSets&(cfg.PHTSets-1) != 0 {
		cfg.PHTSets = d.PHTSets
	}
	if cfg.PHTWays <= 0 {
		cfg.PHTWays = d.PHTWays
	}
	if cfg.Threshold == 0 || cfg.Threshold > counterMax {
		cfg.Threshold = d.Threshold
	}
	if cfg.Degree <= 0 {
		cfg.Degree = d.Degree
	}
	shift := uint(0)
	for 1<<shift < cfg.RegionLines {
		shift++
	}
	pht := make([][]phtEntry, cfg.PHTSets)
	for i := range pht {
		pht[i] = make([]phtEntry, cfg.PHTWays)
	}
	return &Prefetcher{
		cfg:     cfg,
		mask:    uint64(cfg.RegionLines - 1),
		shift:   shift,
		at:      make([]atEntry, cfg.ATEntries),
		pht:     pht,
		scratch: make([]mem.Line, 0, cfg.Degree),
	}
}

var _ temporal.Engine = (*Prefetcher)(nil)

// Name implements temporal.Engine.
func (p *Prefetcher) Name() string { return "gaze" }

// MetaWays implements temporal.Engine: pattern SRAM, no LLC carve-out.
func (p *Prefetcher) MetaWays() int { return 0 }

// TableStats implements temporal.Engine, reporting pattern-history-table
// traffic.
func (p *Prefetcher) TableStats() temporal.TableStats { return p.stats }

// PrefetchUseful implements temporal.Engine. Outcome feedback does not steer
// this reproduction (confidence lives in the pattern counters), so it is
// statistics-only.
func (p *Prefetcher) PrefetchUseful(trigger mem.Addr, line mem.Line) {}

// PrefetchUseless implements temporal.Engine.
func (p *Prefetcher) PrefetchUseless(trigger mem.Addr, line mem.Line) {}

// sig1 is the stage-1 signature: the trigger offset alone, tagged apart from
// sig2's space so both patterns coexist in one table.
func sig1(trigger uint8) uint32 { return uint32(trigger) | 1<<16 }

// sig2 is the stage-2 signature: trigger and second offset — the internal
// temporal correlation that disambiguates patterns sharing a trigger.
func sig2(trigger, second uint8) uint32 { return uint32(trigger)<<8 | uint32(second) | 2<<16 }

// OnAccess implements temporal.Engine.
func (p *Prefetcher) OnAccess(ev temporal.AccessEvent) []mem.Line {
	p.clock++
	region := uint64(ev.Line) >> p.shift
	offset := uint8(uint64(ev.Line) & p.mask)
	p.scratch = p.scratch[:0]

	if e := p.atLookup(region); e != nil {
		e.last = p.clock
		e.footprint |= 1 << offset
		if !e.hasSecond && offset != e.trigger {
			e.second = offset
			e.hasSecond = true
			// Stage 2: the two-offset signature selects the precise
			// pattern; replay bits above the confidence threshold.
			p.replay(sig2(e.trigger, e.second), region, e.footprint, p.cfg.Threshold)
		}
		return p.scratch
	}

	// Region activation: retire the LRU entry's footprint into the pattern
	// table, then track the new region. Stage 1 replays only
	// maximum-confidence bits — a lone trigger offset is ambiguous.
	p.atInsert(region, offset)
	p.replay(sig1(offset), region, 1<<offset, counterMax)
	return p.scratch
}

// atLookup finds the accumulation entry for region.
func (p *Prefetcher) atLookup(region uint64) *atEntry {
	for i := range p.at {
		if p.at[i].used && p.at[i].region == region {
			return &p.at[i]
		}
	}
	return nil
}

// atInsert allocates an accumulation entry for region, training the pattern
// table with the evicted victim's footprint.
func (p *Prefetcher) atInsert(region uint64, trigger uint8) {
	// Free slot, else the unique LRU victim (the clock ticks every access,
	// so timestamps never tie).
	slot := -1
	var lru uint64
	for i := range p.at {
		if !p.at[i].used {
			slot = i
			break
		}
		if slot == -1 || p.at[i].last < lru {
			slot, lru = i, p.at[i].last
		}
	}
	v := &p.at[slot]
	if v.used {
		p.train(v)
	}
	*v = atEntry{
		region:    region,
		footprint: 1 << trigger,
		trigger:   trigger,
		used:      true,
		last:      p.clock,
	}
}

// train commits an observed footprint into both signature spaces: set bits
// saturate up, clear bits decay, so only stable spatial patterns reach the
// replay thresholds.
func (p *Prefetcher) train(e *atEntry) {
	p.trainSig(sig1(e.trigger), e.footprint)
	if e.hasSecond {
		p.trainSig(sig2(e.trigger, e.second), e.footprint)
	}
}

func (p *Prefetcher) trainSig(sig uint32, footprint uint64) {
	set := p.pht[p.setOf(sig)]
	for i := range set {
		if set[i].used && set[i].sig == sig {
			set[i].last = p.clock
			p.updateCounters(&set[i], footprint)
			p.stats.Updates++
			return
		}
	}
	// Allocate, evicting the set's unique LRU way.
	slot := 0
	for i := 1; i < len(set); i++ {
		if !set[i].used {
			if set[slot].used {
				slot = i
			}
			continue
		}
		if set[slot].used && set[i].last < set[slot].last {
			slot = i
		}
	}
	if set[slot].used {
		p.stats.Replacements++
	}
	set[slot] = phtEntry{sig: sig, used: true, last: p.clock}
	p.updateCounters(&set[slot], footprint)
	p.stats.Insertions++
}

func (p *Prefetcher) updateCounters(e *phtEntry, footprint uint64) {
	for b := 0; b < p.cfg.RegionLines; b++ {
		if footprint&(1<<b) != 0 {
			if e.counters[b] < counterMax {
				e.counters[b]++
			}
		} else if e.counters[b] > 0 {
			e.counters[b]--
		}
	}
}

// replay appends prefetches for every stored bit at or above threshold,
// skipping lines already touched in the live footprint, bounded by Degree.
func (p *Prefetcher) replay(sig uint32, region, touched uint64, threshold uint8) {
	p.stats.Lookups++
	set := p.pht[p.setOf(sig)]
	for i := range set {
		if !set[i].used || set[i].sig != sig {
			continue
		}
		set[i].last = p.clock
		p.stats.Hits++
		base := region << p.shift
		for b := 0; b < p.cfg.RegionLines && len(p.scratch) < p.cfg.Degree; b++ {
			if set[i].counters[b] >= threshold && touched&(1<<b) == 0 {
				p.scratch = append(p.scratch, mem.Line(base|uint64(b)))
			}
		}
		return
	}
}

// setOf hashes a signature to its PHT set.
func (p *Prefetcher) setOf(sig uint32) int {
	x := uint64(sig) * 0x9E3779B97F4A7C15
	return int((x >> 40) & uint64(p.cfg.PHTSets-1))
}
