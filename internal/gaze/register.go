package gaze

import (
	"prophet/internal/registry"
	"prophet/internal/sim"
)

// The gaze scheme self-registers like every other engine: the evaluator and
// the daemon resolve it by name.
func init() {
	registry.MustRegister("gaze", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			st := sim.RunOpts(ctx.Sim, ctx.Opts, New(Default()), nil, nil, nil, ctx.Factory())
			return registry.Result{Stats: st}, nil
		})
	})
}
