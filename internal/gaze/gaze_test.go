package gaze

import (
	"testing"

	"prophet/internal/mem"
	"prophet/internal/temporal"
)

func access(line mem.Line) temporal.AccessEvent {
	return temporal.AccessEvent{PC: 0x400000, Line: line}
}

// touch replays a region's offsets through the prefetcher, returning every
// line it predicted along the way.
func touch(p *Prefetcher, region uint64, offsets ...uint64) []mem.Line {
	var out []mem.Line
	for _, off := range offsets {
		out = append(out, p.OnAccess(access(mem.Line(region<<6|off)))...)
	}
	return out
}

// TestLearnsSpatialPattern: after observing the same footprint under the
// same (trigger, second) correlation in several regions, activating a fresh
// region with that correlation replays the remaining footprint.
func TestLearnsSpatialPattern(t *testing.T) {
	p := New(Config{ATEntries: 1}) // single AT entry: every new region trains the last
	pattern := []uint64{3, 7, 11, 15}
	// Train across distinct regions; the single-entry AT commits each
	// footprint when the next region activates.
	for r := uint64(1); r <= 8; r++ {
		touch(p, r, pattern...)
	}
	got := touch(p, 100, 3, 7)
	want := map[mem.Line]bool{mem.Line(100<<6 | 11): true, mem.Line(100<<6 | 15): true}
	seen := map[mem.Line]bool{}
	for _, l := range got {
		if want[l] {
			seen[l] = true
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("after training on %v, predictions for fresh region = %v, want to include offsets 11 and 15", pattern, got)
	}
}

// TestSecondOffsetDisambiguates: two patterns sharing a trigger but
// differing in their second access must replay differently — the paper's
// central claim.
func TestSecondOffsetDisambiguates(t *testing.T) {
	p := New(Config{ATEntries: 1})
	patternA := []uint64{0, 1, 2, 3}
	patternB := []uint64{0, 32, 40, 48}
	for r := uint64(1); r <= 10; r++ {
		touch(p, 2*r, patternA...)
		touch(p, 2*r+1, patternB...)
	}
	gotA := touch(p, 200, 0, 1)
	for _, l := range gotA {
		if off := uint64(l) & 63; off >= 32 {
			t.Fatalf("pattern A replay leaked pattern B offset %d (predictions %v)", off, gotA)
		}
	}
	gotB := touch(p, 201, 0, 32)
	foundFar := false
	for _, l := range gotB {
		if off := uint64(l) & 63; off == 40 || off == 48 {
			foundFar = true
		}
	}
	if !foundFar {
		t.Fatalf("pattern B replay missed its far offsets: %v", gotB)
	}
}

// TestDeterminism: identical access sequences produce identical predictions
// and stats.
func TestDeterminism(t *testing.T) {
	run := func() ([]mem.Line, temporal.TableStats) {
		p := New(Default())
		var all []mem.Line
		for r := uint64(0); r < 200; r++ {
			all = append(all, touch(p, r%37, r%64, (r*7)%64, (r*13)%64)...)
		}
		return all, p.TableStats()
	}
	l1, s1 := run()
	l2, s2 := run()
	if len(l1) != len(l2) || s1 != s2 {
		t.Fatalf("two identical runs diverged: %d vs %d predictions, stats %+v vs %+v", len(l1), len(l2), s1, s2)
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("prediction %d diverged: %v vs %v", i, l1[i], l2[i])
		}
	}
}

// TestEngineContract: zero config is usable, MetaWays stays 0, the scratch
// buffer is recycled, and Degree bounds predictions.
func TestEngineContract(t *testing.T) {
	p := New(Config{})
	if p.MetaWays() != 0 {
		t.Fatalf("MetaWays() = %d, want 0 (gaze uses dedicated SRAM)", p.MetaWays())
	}
	if p.Name() != "gaze" {
		t.Fatalf("Name() = %q", p.Name())
	}
	dense := make([]uint64, 64)
	for i := range dense {
		dense[i] = uint64(i)
	}
	p2 := New(Config{ATEntries: 1, Degree: 4})
	for r := uint64(1); r <= 6; r++ {
		touch(p2, r, dense...)
	}
	got := p2.OnAccess(access(mem.Line(50 << 6)))
	if len(got) > 4 {
		t.Fatalf("Degree=4 but %d prefetches issued", len(got))
	}
	// Feedback hooks are statistics-only but must not panic.
	p2.PrefetchUseful(0x400000, mem.Line(50<<6|1))
	p2.PrefetchUseless(0x400000, mem.Line(50<<6|2))
	if p2.TableStats().Lookups == 0 {
		t.Fatal("TableStats().Lookups stayed 0 after activity")
	}
}
