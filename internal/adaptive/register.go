package adaptive

import (
	"prophet/internal/registry"
	"prophet/internal/sim"
)

// The adaptive scheme self-registers; Meta reports the adaptation
// trajectory so sweeps can see how often reconfiguration fired.
func init() {
	registry.MustRegister("adaptive", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			w := New(Default())
			st := sim.RunOpts(ctx.Sim, ctx.Opts, w, nil, nil, nil, ctx.Factory())
			meta := map[string]int{
				"switches": w.Switches(),
				"windows":  int(w.Windows()),
			}
			w.Release()
			return registry.Result{Stats: st, Meta: meta}, nil
		})
	})
}
