// Package adaptive implements a POWER7-style runtime-reconfiguring
// prefetcher wrapper (Prat et al., arXiv 1501.02282): instead of committing
// to one prefetching scheme for a whole run, it monitors phase signals over
// fixed access windows and switches the active engine to whichever candidate
// earned the most prefetch utility in the current phase.
//
// The control loop is explore/exploit. After a phase change — the windowed
// miss rate shifting by more than Config.Delta from the rate the current
// choice was made at — the wrapper cycles each candidate through one full
// window, scoring it by useful-prefetch feedback minus useless evictions,
// then exploits the highest scorer until the next shift. Ties break toward
// the earlier candidate, windows are counted in accesses, and candidates are
// constructed once up front, so the whole trajectory of switches is a pure
// function of the access stream: same trace, same switches, byte-identical
// results.
//
// Only the active engine observes the access stream; dormant candidates stay
// cold until explored again, exactly like reconfiguring hardware. Prefetch
// feedback is credited to the engine active at issue time.
package adaptive

import (
	"prophet/internal/gaze"
	"prophet/internal/mem"
	"prophet/internal/temporal"
	"prophet/internal/triage"
	"prophet/internal/triangel"
)

// Candidate pairs a label with a fresh engine.
type Candidate struct {
	Name   string
	Engine temporal.Engine
}

// Config tunes the adaptation loop.
type Config struct {
	// Window is the evaluation window in L2 accesses.
	Window uint64
	// Delta is the absolute windowed-miss-rate shift that invalidates the
	// current choice and triggers re-exploration.
	Delta float64
	// Candidates are the engines to adapt over, explored in order. Nil
	// selects DefaultCandidates.
	Candidates []Candidate
}

// Default returns the evaluated configuration: 8K-access windows and a 10%
// miss-rate shift threshold.
func Default() Config {
	return Config{Window: 8192, Delta: 0.10}
}

// DefaultCandidates returns the stock candidate set: the two temporal
// engines plus the gaze spatial engine — deliberately diverse, so phases
// with different locality structure have a profitable switch available.
func DefaultCandidates() []Candidate {
	return []Candidate{
		{Name: "triangel", Engine: triangel.New(triangel.Default())},
		{Name: "triage", Engine: triage.New(triage.Default())},
		{Name: "gaze", Engine: gaze.New(gaze.Default())},
	}
}

// phase is the controller state.
type phase int

const (
	exploring phase = iota
	exploiting
)

// Wrapper is the adaptive engine. Create one per run with New.
type Wrapper struct {
	cfg   Config
	cands []Candidate

	state  phase
	active int // index into cands
	scores []int64

	// Window accounting.
	windowAccesses uint64
	windowMisses   uint64
	refRate        float64 // miss rate the current exploit choice was made at
	switches       int
	windows        uint64
}

// New returns a fresh adaptive wrapper.
func New(cfg Config) *Wrapper {
	d := Default()
	if cfg.Window == 0 {
		cfg.Window = d.Window
	}
	if cfg.Delta <= 0 {
		cfg.Delta = d.Delta
	}
	cands := cfg.Candidates
	if len(cands) == 0 {
		cands = DefaultCandidates()
	}
	return &Wrapper{
		cfg:    cfg,
		cands:  cands,
		state:  exploring,
		scores: make([]int64, len(cands)),
	}
}

var _ temporal.Engine = (*Wrapper)(nil)

// Name implements temporal.Engine.
func (w *Wrapper) Name() string { return "adaptive" }

// Release releases every candidate engine that supports releasing (the
// temporal engines return their metadata-table storage to the geometry
// pool). The wrapper must not be used after.
func (w *Wrapper) Release() {
	for _, c := range w.cands {
		if r, ok := c.Engine.(interface{ Release() }); ok {
			r.Release()
		}
	}
}

// Active returns the currently selected candidate's name (tooling and the
// online-adaptation session surface it).
func (w *Wrapper) Active() string { return w.cands[w.active].Name }

// Switches returns how many times the active engine changed.
func (w *Wrapper) Switches() int { return w.switches }

// Windows returns how many evaluation windows have completed.
func (w *Wrapper) Windows() uint64 { return w.windows }

// MetaWays implements temporal.Engine, reporting the active engine's LLC
// carve-out — switching engines resizes the demand-visible LLC, exactly like
// runtime reconfiguration would.
func (w *Wrapper) MetaWays() int { return w.cands[w.active].Engine.MetaWays() }

// TableStats implements temporal.Engine, aggregating over all candidates so
// exploration traffic is not hidden.
func (w *Wrapper) TableStats() temporal.TableStats {
	var total temporal.TableStats
	for _, c := range w.cands {
		s := c.Engine.TableStats()
		total.Lookups += s.Lookups
		total.Hits += s.Hits
		total.Insertions += s.Insertions
		total.Updates += s.Updates
		total.Replacements += s.Replacements
	}
	return total
}

// PrefetchUseful implements temporal.Engine: feedback is routed to the
// active engine and credited to its score.
func (w *Wrapper) PrefetchUseful(trigger mem.Addr, line mem.Line) {
	w.scores[w.active] += 2
	w.cands[w.active].Engine.PrefetchUseful(trigger, line)
}

// PrefetchUseless implements temporal.Engine.
func (w *Wrapper) PrefetchUseless(trigger mem.Addr, line mem.Line) {
	w.scores[w.active]--
	w.cands[w.active].Engine.PrefetchUseless(trigger, line)
}

// OnAccess implements temporal.Engine: delegate to the active engine, then
// advance the adaptation clock.
func (w *Wrapper) OnAccess(ev temporal.AccessEvent) []mem.Line {
	lines := w.cands[w.active].Engine.OnAccess(ev)
	w.windowAccesses++
	if ev.Trainable() {
		w.windowMisses++
	}
	if w.windowAccesses >= w.cfg.Window {
		w.endWindow()
	}
	return lines
}

// endWindow closes one evaluation window and runs the controller.
func (w *Wrapper) endWindow() {
	rate := float64(w.windowMisses) / float64(w.windowAccesses)
	w.windowAccesses, w.windowMisses = 0, 0
	w.windows++

	switch w.state {
	case exploring:
		if w.active+1 < len(w.cands) {
			// Next candidate gets the next window.
			w.setActive(w.active + 1)
			return
		}
		// Exploration done: exploit the top scorer (earliest wins ties).
		best := 0
		for i, s := range w.scores {
			if s > w.scores[best] {
				best = i
			}
		}
		w.setActive(best)
		w.state = exploiting
		w.refRate = rate
	case exploiting:
		if diff := rate - w.refRate; diff > w.cfg.Delta || diff < -w.cfg.Delta {
			// Phase change: forget the old scores and re-explore from the
			// first candidate.
			for i := range w.scores {
				w.scores[i] = 0
			}
			w.setActive(0)
			w.state = exploring
		}
	}
}

func (w *Wrapper) setActive(i int) {
	if i != w.active {
		w.switches++
	}
	w.active = i
}
