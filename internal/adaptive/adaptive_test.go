package adaptive

import (
	"testing"

	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// stubEngine counts calls and predicts a fixed line; its id makes
// delegation observable.
type stubEngine struct {
	id       int
	accesses int
	useful   int
	scratch  [1]mem.Line
}

func (s *stubEngine) Name() string { return "stub" }
func (s *stubEngine) OnAccess(ev temporal.AccessEvent) []mem.Line {
	s.accesses++
	s.scratch[0] = mem.Line(s.id)
	return s.scratch[:]
}
func (s *stubEngine) PrefetchUseful(trigger mem.Addr, line mem.Line)  { s.useful++ }
func (s *stubEngine) PrefetchUseless(trigger mem.Addr, line mem.Line) {}
func (s *stubEngine) MetaWays() int                                   { return s.id }
func (s *stubEngine) TableStats() temporal.TableStats {
	return temporal.TableStats{Lookups: uint64(s.accesses)}
}

func stubWrapper(window uint64) (*Wrapper, []*stubEngine) {
	stubs := []*stubEngine{{id: 1}, {id: 2}, {id: 3}}
	w := New(Config{Window: window, Delta: 0.10, Candidates: []Candidate{
		{Name: "a", Engine: stubs[0]},
		{Name: "b", Engine: stubs[1]},
		{Name: "c", Engine: stubs[2]},
	}})
	return w, stubs
}

func miss() temporal.AccessEvent { return temporal.AccessEvent{Line: 1, Hit: false} }
func hit() temporal.AccessEvent  { return temporal.AccessEvent{Line: 1, Hit: true} }

// TestExploreThenExploit: every candidate gets exactly one exploration
// window, then the top scorer is exploited.
func TestExploreThenExploit(t *testing.T) {
	w, stubs := stubWrapper(4)
	// Window 1: candidate a active; feedback makes b the eventual winner
	// impossible — credit arrives while each is active, so drive scores by
	// when PrefetchUseful is called.
	for i := 0; i < 4; i++ {
		w.OnAccess(hit())
	}
	if w.Active() != "b" {
		t.Fatalf("after window 1 active = %q, want b (second explore window)", w.Active())
	}
	w.PrefetchUseful(0, 0) // +2 to b while active
	for i := 0; i < 4; i++ {
		w.OnAccess(hit())
	}
	if w.Active() != "c" {
		t.Fatalf("after window 2 active = %q, want c", w.Active())
	}
	for i := 0; i < 4; i++ {
		w.OnAccess(hit())
	}
	// Exploration over: b scored +2, a and c 0.
	if w.Active() != "b" {
		t.Fatalf("exploit phase chose %q, want b", w.Active())
	}
	if stubs[0].accesses != 4 || stubs[1].accesses != 4 || stubs[2].accesses != 4 {
		t.Fatalf("exploration windows uneven: %d/%d/%d accesses",
			stubs[0].accesses, stubs[1].accesses, stubs[2].accesses)
	}
	if stubs[1].useful != 1 {
		t.Fatalf("feedback not routed to active engine: b.useful = %d", stubs[1].useful)
	}
	// MetaWays follows the active engine.
	if w.MetaWays() != 2 {
		t.Fatalf("MetaWays() = %d, want active engine's 2", w.MetaWays())
	}
}

// TestPhaseShiftTriggersReexploration: a miss-rate swing beyond Delta resets
// the controller into exploration.
func TestPhaseShiftTriggersReexploration(t *testing.T) {
	w, _ := stubWrapper(4)
	// Three all-hit exploration windows, then an all-hit exploit window:
	// refRate = 0.
	for i := 0; i < 12; i++ {
		w.OnAccess(hit())
	}
	if w.state != exploiting {
		t.Fatal("not exploiting after exploration")
	}
	w.scores[0] = 99 // pretend "a" accumulated credit in the old phase
	// An all-miss window shifts the rate by 1.0 > Delta.
	for i := 0; i < 4; i++ {
		w.OnAccess(miss())
	}
	if w.state != exploring {
		t.Fatal("phase shift did not trigger re-exploration")
	}
	if w.Active() != "a" {
		t.Fatalf("re-exploration starts at %q, want a", w.Active())
	}
	for i, s := range w.scores {
		if s != 0 {
			t.Fatalf("stale score survived re-exploration: scores[%d] = %d", i, s)
		}
	}
	// A stable exploit phase must NOT re-explore.
	for i := 0; i < 12; i++ {
		w.OnAccess(miss()) // explore all three on all-miss windows
	}
	if w.state != exploiting {
		t.Fatal("did not settle back into exploitation")
	}
	st := w.state
	for i := 0; i < 8; i++ {
		w.OnAccess(miss())
	}
	if w.state != st {
		t.Fatal("stable miss rate re-triggered exploration")
	}
}

// TestAggregateTableStats: exploration traffic from dormant candidates stays
// visible in the aggregated counters.
func TestAggregateTableStats(t *testing.T) {
	w, _ := stubWrapper(4)
	for i := 0; i < 12; i++ {
		w.OnAccess(hit())
	}
	if got := w.TableStats().Lookups; got != 12 {
		t.Fatalf("aggregated Lookups = %d, want 12", got)
	}
}

// TestDefaultCandidatesRun: the stock candidate set drives real engines
// through a short deterministic stream without panics, and identical runs
// match.
func TestDefaultCandidatesRun(t *testing.T) {
	run := func() (int, uint64) {
		w := New(Config{Window: 64})
		for i := 0; i < 1000; i++ {
			ev := temporal.AccessEvent{
				PC:   mem.Addr(0x400000 + (i%7)*8),
				Line: mem.Line(i * 3 % 512),
				Hit:  i%3 == 0,
			}
			w.OnAccess(ev)
		}
		return w.Switches(), w.windows
	}
	s1, w1 := run()
	s2, w2 := run()
	if s1 != s2 || w1 != w2 {
		t.Fatalf("identical runs diverged: switches %d/%d windows %d/%d", s1, s2, w1, w2)
	}
	if w1 != 1000/64 {
		t.Fatalf("windows = %d, want %d", w1, 1000/64)
	}
}
