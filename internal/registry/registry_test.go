package registry

import (
	"sort"
	"testing"
)

func noop() Scheme {
	return Func(func(Context) (Result, error) { return Result{}, nil })
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("", noop); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("reg-test-nil", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := Register("reg-test-a", noop); err != nil {
		t.Fatal(err)
	}
	if err := Register("reg-test-a", noop); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestLookupAndNames(t *testing.T) {
	if _, ok := Lookup("reg-test-missing"); ok {
		t.Error("missing scheme resolved")
	}
	if err := Register("reg-test-b", noop); err != nil {
		t.Fatal(err)
	}
	f, ok := Lookup("reg-test-b")
	if !ok || f == nil {
		t.Fatal("registered scheme did not resolve")
	}
	if _, err := f().Run(Context{}); err != nil {
		t.Fatal(err)
	}
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names not sorted: %v", names)
	}
	found := false
	for _, n := range names {
		if n == "reg-test-b" {
			found = true
		}
	}
	if !found {
		t.Errorf("reg-test-b missing from %v", names)
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	MustRegister("reg-test-c", noop)
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on duplicate")
		}
	}()
	MustRegister("reg-test-c", noop)
}
