// Package registry is the pluggable prefetching-scheme registry behind the
// public Evaluator API. Scheme packages (triage, triangel, rpg2, core)
// self-register a factory under a stable name in their init functions;
// evaluators resolve schemes by name at run time instead of switching over a
// hard-coded list, so adding a prefetcher is a new package plus one Register
// call — the core API never changes.
//
// The registry sits below internal/pipeline in the import graph: it may
// depend only on the simulator substrate (sim, mem). Schemes that need the
// full profile-guided pipeline (Prophet's profile -> learn -> analyze ->
// run loop) receive it through Context.Prophet, a hook the evaluator
// injects, which keeps the analysis/learning layers out of the scheme
// packages' import sets.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"prophet/internal/mem"
	"prophet/internal/sim"
)

// SourceFactory produces a fresh deterministic trace per pass. Schemes that
// profile before running (RPG2, Prophet) call it several times and must see
// identical access streams, exactly like re-running a binary on one input.
type SourceFactory func() mem.Source

// ProphetRunner is the evaluator-injected hook into the profile-guided
// pipeline (Figure 5). It exists because the pipeline's analysis layer
// imports core, so core cannot implement the flow itself without a cycle.
type ProphetRunner interface {
	// RunDirect profiles the input once, learns, analyzes, and runs the
	// optimized binary on it (the Direct flow of Figure 13). The meta map
	// reports pipeline extras ("hints", "metaWays", "disableTP").
	RunDirect(factory SourceFactory) (sim.Stats, map[string]int)
}

// Context carries everything a scheme run may need.
type Context struct {
	// Sim is the simulated system configuration (Table 1 by default).
	Sim sim.Config
	// Opts shapes how the scheme's simulation passes execute (block size,
	// intra-run parallelism). Results are bit-identical for every value;
	// schemes pass it through to sim.RunOpts untouched.
	Opts sim.Opts
	// Factory produces the workload trace; call once per simulation pass.
	Factory SourceFactory
	// TuneRecords caps tuning traces for schemes that search runtime knobs
	// (RPG2's prefetch-distance binary search). 0 means full-length.
	TuneRecords uint64
	// Baseline returns the no-prefetching run for this trace, served from
	// the evaluator's cache — schemes that degenerate to the baseline
	// (RPG2 without kernels) should call it instead of re-simulating.
	// May be nil when no cache-capable caller is attached.
	Baseline func() sim.Stats
	// Prophet is the profile-guided pipeline hook; nil when the caller
	// cannot run pipelines (the prophet scheme then fails cleanly).
	Prophet ProphetRunner
}

// Result is one scheme run's outcome.
type Result struct {
	// Stats is the simulated run outcome.
	Stats sim.Stats
	// Meta carries scheme-specific extras (rpg2: "kernels", "distance";
	// prophet: "hints", "metaWays", "disableTP"). May be nil.
	Meta map[string]int
}

// Scheme runs one workload under one prefetching configuration.
type Scheme interface {
	Run(ctx Context) (Result, error)
}

// Func adapts a plain function to Scheme.
type Func func(ctx Context) (Result, error)

// Run implements Scheme.
func (f Func) Run(ctx Context) (Result, error) { return f(ctx) }

// Factory builds a fresh Scheme instance per run, so scheme state (tables,
// confidence counters) never leaks across runs or goroutines.
type Factory func() Scheme

var (
	mu      sync.RWMutex
	schemes = map[string]Factory{}
)

// Register installs a scheme factory under name. Duplicate names are
// rejected: two packages silently fighting over a name would make results
// depend on init order.
func Register(name string, factory Factory) error {
	if name == "" {
		return fmt.Errorf("registry: empty scheme name")
	}
	if factory == nil {
		return fmt.Errorf("registry: nil factory for scheme %q", name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := schemes[name]; dup {
		return fmt.Errorf("registry: scheme %q already registered", name)
	}
	schemes[name] = factory
	return nil
}

// MustRegister is Register for init functions: a duplicate is a programming
// error, not a runtime condition.
func MustRegister(name string, factory Factory) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// Lookup resolves a scheme factory by name.
func Lookup(name string) (Factory, bool) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := schemes[name]
	return f, ok
}

// Names lists the registered schemes, sorted for stable output.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]string, 0, len(schemes))
	for n := range schemes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
