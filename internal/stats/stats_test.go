package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if !near(Geomean([]float64{2, 8}), 4) {
		t.Errorf("Geomean(2,8) = %v", Geomean([]float64{2, 8}))
	}
	if !near(Geomean([]float64{3}), 3) {
		t.Error("single-element geomean")
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	if Geomean([]float64{1, -2}) != 0 {
		t.Error("non-positive input should yield 0")
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
			min = math.Min(min, xs[i])
			max = math.Max(max, xs[i])
		}
		g := Geomean(xs)
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if !near(Speedup(2, 1), 2) || !near(Speedup(1, 2), 0.5) {
		t.Error("speedup ratios wrong")
	}
	if Speedup(1, 0) != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestCoverage(t *testing.T) {
	if !near(Coverage(100, 60), 0.4) {
		t.Errorf("Coverage(100,60) = %v", Coverage(100, 60))
	}
	if Coverage(100, 120) != 0 {
		t.Error("more misses than baseline should clamp to 0")
	}
	if Coverage(0, 5) != 0 {
		t.Error("zero baseline misses")
	}
}

func TestAccuracy(t *testing.T) {
	if !near(Accuracy(3, 4), 0.75) {
		t.Error("accuracy")
	}
	if Accuracy(3, 0) != 0 {
		t.Error("zero issued")
	}
}

func TestNormalizedTraffic(t *testing.T) {
	if !near(NormalizedTraffic(110, 100), 1.1) {
		t.Error("traffic normalization")
	}
	if NormalizedTraffic(5, 0) != 0 {
		t.Error("zero baseline traffic")
	}
}

func TestMean(t *testing.T) {
	if !near(Mean([]float64{1, 2, 3}), 2) {
		t.Error("mean")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
}
