// Package stats provides the evaluation metrics of Section 5: IPC speedups,
// geometric means, prefetching coverage (demand-miss reduction) and
// accuracy, and normalized DRAM traffic.
package stats

import "math"

// Geomean returns the geometric mean of xs (0 for empty or non-positive
// input, which signals a configuration error upstream).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns scheme/baseline (IPC ratio; Figures 10, 13-19).
func Speedup(schemeIPC, baselineIPC float64) float64 {
	if baselineIPC == 0 {
		return 0
	}
	return schemeIPC / baselineIPC
}

// Coverage returns the demand-miss reduction relative to a baseline run
// (Figure 12a: "Prophet reduces demand misses by 42.75%"). Negative values
// (more misses than baseline, e.g. from pollution) clamp to 0.
func Coverage(baselineMisses, schemeMisses uint64) float64 {
	if baselineMisses == 0 {
		return 0
	}
	if schemeMisses >= baselineMisses {
		return 0
	}
	return float64(baselineMisses-schemeMisses) / float64(baselineMisses)
}

// Accuracy returns useful/issued (Figure 12b).
func Accuracy(useful, issued uint64) float64 {
	if issued == 0 {
		return 0
	}
	return float64(useful) / float64(issued)
}

// NormalizedTraffic returns scheme DRAM traffic over baseline (Figure 11).
func NormalizedTraffic(schemeTraffic, baselineTraffic uint64) float64 {
	if baselineTraffic == 0 {
		return 0
	}
	return float64(schemeTraffic) / float64(baselineTraffic)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
