package rpg2

import (
	"prophet/internal/registry"
)

// The rpg2 scheme self-registers the full profile-and-tune methodology.
func init() {
	registry.MustRegister("rpg2", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			res := Evaluate(ctx.Sim, ctx.Opts, ctx.Factory, ctx.TuneRecords, ctx.Baseline)
			return registry.Result{
				Stats: res.Stats,
				Meta:  map[string]int{"kernels": res.Kernels, "distance": res.Distance},
			}, nil
		})
	})
}
