// Package rpg2 implements the RPG2 software indirect-access prefetching
// baseline (Zhang et al., ASPLOS'24) following the Prophet paper's own
// evaluation methodology (Section 5.1):
//
//  1. a profiling pass identifies memory instructions causing at least 10%
//     of their accesses to miss and whose prefetch kernels RPG2 supports —
//     i.e. the access stream of the instruction follows a regular stride;
//  2. for each identified PC, a software prefetch is simulated by issuing a
//     request for (accessed address + distance) whenever the PC executes;
//  3. the prefetch distance is tuned by RPG2's binary search, keeping the
//     distance with the best measured performance.
//
// RPG2's defining limitation — which Figure 10 quantifies — is step 1: on
// workloads whose kernels are pointer chases or computed indices, no PC
// qualifies and the scheme degenerates to a no-op. On CRONO-style graph
// kernels (a[b[i]] with strided b[i]) it performs well (Figure 15).
package rpg2

import (
	"sort"

	"prophet/internal/mem"
)

// ProfileParams control kernel identification.
type ProfileParams struct {
	// MinMissRatio is the qualification threshold (0.10 in the paper).
	MinMissRatio float64
	// MinStrideFraction is the fraction of a PC's address deltas that must
	// equal its dominant stride for the kernel to count as stride-regular.
	MinStrideFraction float64
	// MinAccesses filters statistically insignificant PCs.
	MinAccesses uint64
}

// DefaultProfileParams returns the paper's thresholds.
func DefaultProfileParams() ProfileParams {
	return ProfileParams{MinMissRatio: 0.10, MinStrideFraction: 0.60, MinAccesses: 64}
}

// pcProfile accumulates per-PC profiling state.
type pcProfile struct {
	accesses uint64
	misses   uint64
	lastLine mem.Line
	hasLast  bool
	deltas   map[int64]uint64
}

// Profiler consumes one profiling run's demand accesses and identifies
// RPG2-qualified prefetch kernels.
type Profiler struct {
	pcs map[mem.Addr]*pcProfile
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{pcs: make(map[mem.Addr]*pcProfile)}
}

// Observe records one demand access and whether it missed the cache.
func (p *Profiler) Observe(pc mem.Addr, line mem.Line, missed bool) {
	if pc == 0 {
		return
	}
	st, ok := p.pcs[pc]
	if !ok {
		st = &pcProfile{deltas: make(map[int64]uint64)}
		p.pcs[pc] = st
	}
	st.accesses++
	if missed {
		st.misses++
	}
	if st.hasLast {
		d := int64(line) - int64(st.lastLine)
		if d != 0 {
			st.deltas[d]++
			if len(st.deltas) > 1024 {
				// Bound the histogram: drop singleton deltas.
				for k, v := range st.deltas {
					if v <= 1 {
						delete(st.deltas, k)
					}
				}
			}
		}
	}
	st.lastLine = line
	st.hasLast = true
}

// Kernel is one qualified prefetch kernel.
type Kernel struct {
	PC         mem.Addr
	StrideLine int64 // dominant stride in cache lines
	MissRatio  float64
}

// Kernels returns the PCs qualifying under params, ordered by miss count
// (descending, deterministic ties on PC).
func (p *Profiler) Kernels(params ProfileParams) []Kernel {
	var out []Kernel
	pcs := make([]mem.Addr, 0, len(p.pcs))
	for pc := range p.pcs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		mi, mj := p.pcs[pcs[i]].misses, p.pcs[pcs[j]].misses
		if mi != mj {
			return mi > mj
		}
		return pcs[i] < pcs[j]
	})
	for _, pc := range pcs {
		st := p.pcs[pc]
		if st.accesses < params.MinAccesses {
			continue
		}
		missRatio := float64(st.misses) / float64(st.accesses)
		if missRatio < params.MinMissRatio {
			continue
		}
		var bestDelta int64
		var bestCount, total uint64
		for d, c := range st.deltas {
			total += c
			if c > bestCount || (c == bestCount && d < bestDelta) {
				bestDelta, bestCount = d, c
			}
		}
		if total == 0 || bestDelta == 0 {
			continue
		}
		if float64(bestCount)/float64(total) < params.MinStrideFraction {
			continue
		}
		out = append(out, Kernel{PC: pc, StrideLine: bestDelta, MissRatio: missRatio})
	}
	return out
}

// Prefetcher replays the simulated software prefetch instructions: on every
// execution of a kernel PC it requests (address + distance x stride). It is
// hooked at demand-access level, mirroring software prefetch placement.
type Prefetcher struct {
	kernels  map[mem.Addr]int64
	distance int
	issued   uint64
	scratch  [1]mem.Line // reused across OnDemand calls
}

// NewPrefetcher builds the runtime prefetcher from identified kernels and a
// prefetch distance (in strides ahead).
func NewPrefetcher(kernels []Kernel, distance int) *Prefetcher {
	if distance < 1 {
		distance = 1
	}
	m := make(map[mem.Addr]int64, len(kernels))
	for _, k := range kernels {
		m[k.PC] = k.StrideLine
	}
	return &Prefetcher{kernels: m, distance: distance}
}

// Name identifies the scheme.
func (p *Prefetcher) Name() string { return "rpg2" }

// Distance returns the configured prefetch distance.
func (p *Prefetcher) Distance() int { return p.distance }

// KernelCount returns how many PCs carry software prefetches.
func (p *Prefetcher) KernelCount() int { return len(p.kernels) }

// Issued returns the number of software prefetches executed.
func (p *Prefetcher) Issued() uint64 { return p.issued }

// OnDemand is called for every demand access; for kernel PCs it returns the
// software prefetch target. The returned slice aliases a scratch buffer and
// is valid until the next call.
func (p *Prefetcher) OnDemand(pc mem.Addr, line mem.Line) []mem.Line {
	stride, ok := p.kernels[pc]
	if !ok {
		return nil
	}
	target := int64(line) + stride*int64(p.distance)
	if target < 0 {
		return nil
	}
	p.issued++
	p.scratch[0] = mem.Line(target)
	return p.scratch[:]
}

// TuneDistance performs RPG2's binary search over prefetch distances.
// measure runs the workload with the given distance and returns performance
// (higher is better, e.g. IPC). The search assumes the response is roughly
// unimodal in log-distance, evaluating the power-of-two ladder between 1 and
// maxDistance and narrowing to the best.
func TuneDistance(maxDistance int, measure func(distance int) float64) int {
	if maxDistance < 1 {
		maxDistance = 1
	}
	var ladder []int
	for d := 1; d <= maxDistance; d <<= 1 {
		ladder = append(ladder, d)
	}
	scores := make(map[int]float64)
	score := func(i int) float64 {
		if s, ok := scores[ladder[i]]; ok {
			return s
		}
		s := measure(ladder[i])
		scores[ladder[i]] = s
		return s
	}
	// Peak-finding binary search over the (assumed unimodal) ladder.
	lo, hi := 0, len(ladder)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if score(mid) < score(mid+1) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ladder[lo]
}
