package rpg2

import (
	"testing"

	"prophet/internal/mem"
)

func TestKernelIdentificationStride(t *testing.T) {
	p := NewProfiler()
	pc := mem.Addr(0x400)
	for i := 0; i < 200; i++ {
		p.Observe(pc, mem.Line(i*2), true) // stride 2, all misses
	}
	ks := p.Kernels(DefaultProfileParams())
	if len(ks) != 1 {
		t.Fatalf("kernels = %v, want one", ks)
	}
	if ks[0].PC != pc || ks[0].StrideLine != 2 {
		t.Fatalf("kernel = %+v", ks[0])
	}
	if ks[0].MissRatio != 1.0 {
		t.Fatalf("miss ratio = %v", ks[0].MissRatio)
	}
}

func TestKernelRejectsLowMissRatio(t *testing.T) {
	p := NewProfiler()
	pc := mem.Addr(0x400)
	for i := 0; i < 200; i++ {
		p.Observe(pc, mem.Line(i), i%20 == 0) // 5% misses
	}
	if ks := p.Kernels(DefaultProfileParams()); len(ks) != 0 {
		t.Fatalf("low-miss PC qualified: %v", ks)
	}
}

func TestKernelRejectsIrregular(t *testing.T) {
	p := NewProfiler()
	pc := mem.Addr(0x500)
	rng := mem.NewPRNG(7)
	for i := 0; i < 500; i++ {
		p.Observe(pc, mem.Line(rng.Intn(1<<20)), true)
	}
	if ks := p.Kernels(DefaultProfileParams()); len(ks) != 0 {
		t.Fatalf("pointer-chase-like PC qualified: %v", ks)
	}
}

func TestKernelRejectsTooFewAccesses(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 10; i++ {
		p.Observe(1, mem.Line(i), true)
	}
	if ks := p.Kernels(DefaultProfileParams()); len(ks) != 0 {
		t.Fatalf("sparse PC qualified: %v", ks)
	}
}

func TestKernelOrderByMisses(t *testing.T) {
	p := NewProfiler()
	for i := 0; i < 100; i++ {
		p.Observe(1, mem.Line(i), true)
	}
	for i := 0; i < 200; i++ {
		p.Observe(2, mem.Line(i*3), true)
	}
	ks := p.Kernels(DefaultProfileParams())
	if len(ks) != 2 || ks[0].PC != 2 || ks[1].PC != 1 {
		t.Fatalf("kernel order = %v", ks)
	}
}

func TestPrefetcherIssuesAtDistance(t *testing.T) {
	pf := NewPrefetcher([]Kernel{{PC: 1, StrideLine: 2}}, 8)
	got := pf.OnDemand(1, 100)
	if len(got) != 1 || got[0] != mem.Line(100+2*8) {
		t.Fatalf("OnDemand = %v, want line 116", got)
	}
	if pf.OnDemand(99, 100) != nil {
		t.Fatal("non-kernel PC prefetched")
	}
	if pf.Issued() != 1 {
		t.Fatalf("Issued = %d", pf.Issued())
	}
}

func TestPrefetcherNegativeClamp(t *testing.T) {
	pf := NewPrefetcher([]Kernel{{PC: 1, StrideLine: -100}}, 8)
	if got := pf.OnDemand(1, 10); got != nil {
		t.Fatalf("negative target not clamped: %v", got)
	}
}

func TestTuneDistanceFindsPeak(t *testing.T) {
	// Response peaks at distance 8.
	measure := func(d int) float64 {
		diff := d - 8
		if diff < 0 {
			diff = -diff
		}
		return 100 - float64(diff)
	}
	if got := TuneDistance(64, measure); got != 8 {
		t.Fatalf("TuneDistance = %d, want 8", got)
	}
}

func TestTuneDistanceMonotoneUp(t *testing.T) {
	if got := TuneDistance(64, func(d int) float64 { return float64(d) }); got != 64 {
		t.Fatalf("TuneDistance = %d, want 64", got)
	}
}

func TestTuneDistanceMonotoneDown(t *testing.T) {
	if got := TuneDistance(64, func(d int) float64 { return -float64(d) }); got != 1 {
		t.Fatalf("TuneDistance = %d, want 1", got)
	}
}

func TestTuneDistanceCachesMeasurements(t *testing.T) {
	calls := map[int]int{}
	TuneDistance(64, func(d int) float64 {
		calls[d]++
		return float64(d)
	})
	for d, n := range calls {
		if n > 1 {
			t.Fatalf("distance %d measured %d times", d, n)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	p := DefaultProfileParams()
	if p.MinMissRatio != 0.10 {
		t.Error("RPG2 qualification threshold is 10% cache misses")
	}
}

func TestPrefetcherName(t *testing.T) {
	pf := NewPrefetcher(nil, 4)
	if pf.Name() != "rpg2" || pf.KernelCount() != 0 || pf.Distance() != 4 {
		t.Error("metadata accessors wrong")
	}
}
