package rpg2

import (
	"prophet/internal/mem"
	"prophet/internal/sim"
)

// EvalResult carries the full RPG2 methodology outcome.
type EvalResult struct {
	Stats    sim.Stats
	Kernels  int
	Distance int
}

// observer adapts the profiler to the sim observer interface, counting an
// access as a miss when it leaves the L1 (the paper's "at least 10% cache
// misses" qualification).
type observer struct{ prof *Profiler }

func (o observer) OnDemandAccess(pc mem.Addr, line mem.Line, l1Hit, _ bool) {
	o.prof.Observe(pc, line, !l1Hit)
}

// Evaluate performs the full RPG2 methodology: profile to find stride
// kernels, tune the prefetch distance by binary search (on a trace capped at
// tuneRecords when nonzero), then run with the best distance. With no
// qualifying kernels the scheme degenerates to the baseline, as on most SPEC
// workloads — baseline may supply that run from a cache (nil = simulate it
// here).
func Evaluate(cfg sim.Config, opts sim.Opts, factory func() mem.Source, tuneRecords uint64, baseline func() sim.Stats) EvalResult {
	prof := NewProfiler()
	// Kernel identification profiles load misses the way PEBS counts
	// retired-load misses: without the L1 prefetcher masking them.
	profCfg := cfg
	profCfg.L1PF = sim.L1None
	sim.RunOpts(profCfg, opts, nil, nil, nil, observer{prof}, factory())
	kernels := prof.Kernels(DefaultProfileParams())
	if baseline == nil {
		baseline = func() sim.Stats { return sim.RunOpts(cfg, opts, nil, nil, nil, nil, factory()) }
	}
	if len(kernels) == 0 {
		return EvalResult{Stats: baseline(), Kernels: 0, Distance: 0}
	}
	tuneSrc := func() mem.Source {
		src := factory()
		if tuneRecords > 0 {
			src = mem.Limit(src, tuneRecords)
		}
		return src
	}
	var bestIPC float64
	best := TuneDistance(32, func(d int) float64 {
		ipc := sim.RunOpts(cfg, opts, nil, NewPrefetcher(kernels, d), nil, nil, tuneSrc()).IPC()
		if ipc > bestIPC {
			bestIPC = ipc
		}
		return ipc
	})
	// RPG2 is *robust*: prefetches that do not pay off are rolled back at
	// runtime. If the tuned configuration loses to the plain baseline on
	// the tuning trace, the kernels are dropped.
	if baseTune := sim.RunOpts(cfg, opts, nil, nil, nil, nil, tuneSrc()).IPC(); bestIPC <= baseTune {
		return EvalResult{Stats: baseline(), Kernels: len(kernels), Distance: 0}
	}
	st := sim.RunOpts(cfg, opts, nil, NewPrefetcher(kernels, best), nil, nil, factory())
	return EvalResult{Stats: st, Kernels: len(kernels), Distance: best}
}
