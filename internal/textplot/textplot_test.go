package textplot

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"a", "bbbb"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	out := tb.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	// Column alignment: header and rows share prefix width.
	if !strings.HasPrefix(lines[3], "x      ") {
		t.Errorf("row not padded to widest cell: %q", lines[3])
	}
}

func TestChartScalesToMax(t *testing.T) {
	out := Chart("c", []string{"l1", "l2"}, []Series{
		{Name: "s", Values: []float64{1, 2}},
	}, 10)
	if !strings.Contains(out, strings.Repeat("#", 10)+" 2.000") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("#", 5)+" 1.000") {
		t.Errorf("half bar wrong:\n%s", out)
	}
}

func TestChartHandlesZeroAndMissing(t *testing.T) {
	out := Chart("", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{0}}}, 10)
	if !strings.Contains(out, "| 0.000") {
		t.Errorf("zero bar: %s", out)
	}
	// Label b has no value: renders 0 without panicking.
	if !strings.Contains(out, "b\n") {
		t.Error("missing label block")
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if Pct(0.1234) != "12.34%" {
		t.Errorf("Pct = %q", Pct(0.1234))
	}
}
