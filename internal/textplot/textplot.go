// Package textplot renders the experiment results as aligned ASCII tables
// and grouped bar charts, so every figure of the paper has a terminal
// representation from cmd/experiments.
package textplot

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the aligned table text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of values in a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders a grouped horizontal bar chart: one block per label, one bar
// per series. Bars scale to the maximum value across all series.
func Chart(title string, labels []string, series []Series, width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for li, label := range labels {
		b.WriteString(label)
		b.WriteByte('\n')
		for _, s := range series {
			v := 0.0
			if li < len(s.Values) {
				v = s.Values[li]
			}
			n := int(v / max * float64(width))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %.3f\n", nameW, s.Name, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}

// F formats a float with 3 decimals (table cell helper).
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// Pct formats a ratio as a percentage with 2 decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
