// Package mem defines the fundamental address and trace types shared by the
// whole simulator: byte addresses, 64-byte cache-line addresses, memory-access
// records, and streaming trace sources.
//
// A trace is a sequence of Access records. Each record describes one memory
// instruction (its PC, effective address and kind) plus two pieces of
// micro-architectural context that a flat address stream cannot carry:
//
//   - Gap: the number of non-memory instructions fetched immediately before
//     this access. The core model charges fetch/commit bandwidth for them.
//   - Dep: the distance, in memory records, to the producer of this access's
//     address (0 = no dependence). Pointer-chasing loads carry Dep=1 and
//     therefore serialize behind the previous miss; index-array loads carry
//     Dep=0 and overlap freely. This is what gives the simulator realistic
//     memory-level parallelism without simulating register dataflow.
package mem

import "fmt"

// LineShift is log2 of the cache-line size. All caches in the simulated
// system use 64-byte lines (Table 1 of the paper).
const LineShift = 6

// LineBytes is the cache-line size in bytes.
const LineBytes = 1 << LineShift

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// Line is a cache-line address (a byte address with the low 6 bits dropped).
type Line uint64

// LineOf returns the cache line containing byte address a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Addr returns the byte address of the first byte of the line.
func (l Line) Addr() Addr { return Addr(l) << LineShift }

// String formats the line address as hex for debugging.
func (l Line) String() string { return fmt.Sprintf("line:%#x", uint64(l)) }

// Kind discriminates memory-access types in a trace.
type Kind uint8

const (
	// Load is a demand read access.
	Load Kind = iota
	// Store is a demand write access.
	Store
)

// String returns "load" or "store".
func (k Kind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Access is one memory-instruction record in a trace.
type Access struct {
	// PC is the address of the memory instruction.
	PC Addr
	// Addr is the effective (data) address accessed.
	Addr Addr
	// Kind says whether the access reads or writes.
	Kind Kind
	// Dep is the distance, in memory records, to the record producing this
	// access's address. 0 means the address does not depend on a recent
	// load (it can issue as soon as it is fetched); 1 means it depends on
	// the immediately preceding record, as in pointer chasing.
	Dep uint32
	// Gap is the number of non-memory instructions that precede this
	// access in program order. They consume fetch/commit bandwidth but
	// never access the memory hierarchy.
	Gap uint16
}

// Line returns the cache line touched by the access.
func (a Access) Line() Line { return LineOf(a.Addr) }

// Instructions returns the number of dynamic instructions the record
// represents: the access itself plus its non-memory gap.
func (a Access) Instructions() uint64 { return 1 + uint64(a.Gap) }

// Source is a pull-based stream of accesses. Next returns the next record and
// true, or a zero Access and false when the stream is exhausted. Sources are
// single-use; generators return fresh Sources on demand.
type Source interface {
	Next() (Access, bool)
}

// SliceSource adapts an in-memory slice to the Source interface.
type SliceSource struct {
	recs []Access
	pos  int
}

// NewSliceSource returns a Source that replays recs in order.
func NewSliceSource(recs []Access) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Access, bool) {
	if s.pos >= len(s.recs) {
		return Access{}, false
	}
	a := s.recs[s.pos]
	s.pos++
	return a, true
}

// Materialize returns the source's full record sequence as a slice. A fresh
// SliceSource is returned as its backing slice without copying — callers
// treat the result as read-only — so caching layers that wrap already
// materialized traces (decoded trace files) do not duplicate them in memory.
func Materialize(src Source) []Access {
	if s, ok := src.(*SliceSource); ok && s.pos == 0 {
		return s.recs
	}
	return Collect(src, 0)
}

// Collect drains a source into a slice, stopping after max records
// (max <= 0 means unbounded). It is a convenience for tests and for the
// trace-file writer.
func Collect(src Source, max int) []Access {
	var out []Access
	for {
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}

// Limit wraps a source so that it yields at most n records.
func Limit(src Source, n uint64) Source { return &limited{src: src, left: n} }

type limited struct {
	src  Source
	left uint64
}

func (l *limited) Next() (Access, bool) {
	if l.left == 0 {
		return Access{}, false
	}
	l.left--
	return l.src.Next()
}

// FuncSource adapts a closure to the Source interface.
type FuncSource func() (Access, bool)

// Next implements Source.
func (f FuncSource) Next() (Access, bool) { return f() }
