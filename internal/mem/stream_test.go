package mem

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"
)

// traceBytes serializes recs through WriteTrace for reader tests.
func traceBytes(t *testing.T, recs []Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sampleRecords(n int) []Access {
	recs := make([]Access, n)
	for i := range recs {
		recs[i] = Access{
			PC:   Addr(0x400000 + i*4),
			Addr: Addr(uint64(i) * 64),
			Kind: Kind(i % 2),
			Dep:  uint32(i % 7),
			Gap:  uint16(i % 30),
		}
	}
	return recs
}

// TestTraceReaderStreams checks the streaming reader yields exactly the
// written records across block boundaries (sizes straddling the block size).
func TestTraceReaderStreams(t *testing.T) {
	for _, n := range []int{0, 1, traceBlockRecords - 1, traceBlockRecords, traceBlockRecords + 1, 3*traceBlockRecords + 17} {
		recs := sampleRecords(n)
		tr, err := NewTraceReader(bytes.NewReader(traceBytes(t, recs)))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Count() != uint64(n) {
			t.Fatalf("n=%d: Count = %d", n, tr.Count())
		}
		for i := 0; ; i++ {
			a, ok := tr.Next()
			if !ok {
				if i != n {
					t.Fatalf("n=%d: stream ended after %d records", n, i)
				}
				break
			}
			if i >= n || a != recs[i] {
				t.Fatalf("n=%d: record %d = %+v", n, i, a)
			}
		}
		if tr.Err() != nil {
			t.Fatalf("n=%d: Err = %v", n, tr.Err())
		}
		// Exhausted streams keep returning false.
		if _, ok := tr.Next(); ok {
			t.Fatalf("n=%d: Next after EOF succeeded", n)
		}
	}
}

// TestTraceReaderTruncation: a trace cut mid-stream surfaces ErrBadTrace
// through Err, not a silent short stream.
func TestTraceReaderTruncation(t *testing.T) {
	data := traceBytes(t, sampleRecords(100))
	tr, err := NewTraceReader(bytes.NewReader(data[:len(data)-5]))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
		n++
	}
	if tr.Err() == nil {
		t.Fatalf("truncated stream reported no error after %d records", n)
	}
}

// TestOpenTraceFileStreams round-trips plain and gzip files through the
// streaming opener and matches ReadTraceFile's result.
func TestOpenTraceFileStreams(t *testing.T) {
	recs := sampleRecords(5000)
	for _, name := range []string{"t.trc", "t.trc.gz"} {
		path := filepath.Join(t.TempDir(), name)
		if _, err := WriteTraceFile(path, NewSliceSource(recs)); err != nil {
			t.Fatal(err)
		}
		tr, err := OpenTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got := Collect(tr, 0)
		if err := tr.Err(); err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		want, err := ReadTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d records, read %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: record %d: %+v != %+v", name, i, got[i], want[i])
			}
		}
	}
}

var _ io.Closer = (*TraceReader)(nil)
var _ Source = (*TraceReader)(nil)
