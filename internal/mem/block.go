package mem

import "encoding/binary"

// DefaultBlockRecords is the block size the simulator uses when consuming a
// trace in batches. It matches the TraceReader's internal decode block so a
// streamed trace file refills exactly once per simulated block.
const DefaultBlockRecords = traceBlockRecords

// BlockSource is an optional extension of Source for bulk consumption. A
// BlockSource can hand the simulator whole runs of records at a time,
// amortizing interface dispatch and bounds checks across a block.
//
// NextBlock returns up to len(buf) records, either decoded into buf or — for
// in-memory sources — as a zero-copy view of backing storage. The returned
// slice is only valid until the next NextBlock or Next call. An empty slice
// means the stream is exhausted. Next and NextBlock may be interleaved
// freely; both consume the same underlying position.
type BlockSource interface {
	Source
	NextBlock(buf []Access) []Access
}

// FillBlock reads up to len(buf) records from src. Sources implementing
// BlockSource serve the request natively (possibly zero-copy); any other
// source is drained record-by-record into buf. The empty slice marks
// exhaustion, exactly as for BlockSource.NextBlock.
func FillBlock(src Source, buf []Access) []Access {
	if bs, ok := src.(BlockSource); ok {
		return bs.NextBlock(buf)
	}
	n := 0
	for n < len(buf) {
		a, ok := src.Next()
		if !ok {
			break
		}
		buf[n] = a
		n++
	}
	return buf[:n]
}

// NextBlock implements BlockSource with a zero-copy view of the backing
// slice; buf only bounds the block length.
func (s *SliceSource) NextBlock(buf []Access) []Access {
	n := len(s.recs) - s.pos
	if n > len(buf) {
		n = len(buf)
	}
	out := s.recs[s.pos : s.pos+n]
	s.pos += n
	return out
}

// NextBlock implements BlockSource, clamping the block to the remaining
// record budget before delegating to the wrapped source.
func (l *limited) NextBlock(buf []Access) []Access {
	if l.left < uint64(len(buf)) {
		buf = buf[:l.left]
	}
	out := FillBlock(l.src, buf)
	l.left -= uint64(len(out))
	return out
}

// NextBlock implements BlockSource, decoding up to len(buf) records straight
// from the reader's block buffer. Short final blocks and zero-length traces
// yield a short (or empty) slice, never an error by themselves; decode
// failures are reported through Err as for Next.
func (t *TraceReader) NextBlock(buf []Access) []Access {
	n := 0
	for n < len(buf) {
		if t.err != nil || t.delivered >= t.count {
			break
		}
		if t.pos >= len(t.block) {
			if !t.refill() {
				break
			}
		}
		// Decode every whole record available in the current block, bounded
		// by the caller's buffer.
		avail := (len(t.block) - t.pos) / recordBytes
		if rem := len(buf) - n; avail > rem {
			avail = rem
		}
		if rem := t.count - t.delivered; uint64(avail) > rem {
			avail = int(rem)
		}
		for i := 0; i < avail; i++ {
			b := t.block[t.pos : t.pos+recordBytes]
			t.pos += recordBytes
			buf[n] = Access{
				PC:   Addr(binary.LittleEndian.Uint64(b[0:])),
				Addr: Addr(binary.LittleEndian.Uint64(b[8:])),
				Kind: Kind(b[16]),
				Dep:  binary.LittleEndian.Uint32(b[17:]),
				Gap:  binary.LittleEndian.Uint16(b[21:]),
			}
			n++
		}
		t.delivered += uint64(avail)
	}
	return buf[:n]
}
