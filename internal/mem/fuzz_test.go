package mem

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzTraceReader hammers the native-trace parser with arbitrary bytes:
// corrupt magic, bad versions, absurd header counts, and mid-record
// truncation must all surface as ErrBadTrace (from NewTraceReader or Err),
// never a panic, unbounded allocation, or a silently short stream.
func FuzzTraceReader(f *testing.F) {
	var good bytes.Buffer
	if _, err := WriteTrace(&good, NewSliceSource(testRecords())); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())-5]) // truncated mid-record
	f.Add(good.Bytes()[:12])                  // truncated header
	f.Add([]byte("PROPHTRC"))                 // magic only
	// Absurd declared count with no payload behind it.
	absurd := append([]byte{}, good.Bytes()[:12]...)
	absurd = binary.LittleEndian.AppendUint64(absurd, 1<<40)
	f.Add(absurd)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewTraceReader error %v not classified under ErrBadTrace", err)
			}
			return
		}
		var n uint64
		for {
			_, ok := tr.Next()
			if !ok {
				break
			}
			n++
		}
		if err := tr.Err(); err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("Err() = %v, not classified under ErrBadTrace", err)
			}
		} else if n != tr.Count() {
			t.Fatalf("clean stream delivered %d of %d declared records", n, tr.Count())
		}
		if _, ok := tr.Next(); ok {
			t.Fatal("Next() succeeded after stream end")
		}
	})
}
