package mem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// recordSource wraps a SliceSource but hides its BlockSource implementation,
// forcing FillBlock down the record-at-a-time fallback path.
type recordSource struct{ src *SliceSource }

func (r recordSource) Next() (Access, bool) { return r.src.Next() }

// blockDrain drains src via FillBlock with a fixed buffer size, returning
// every record and the block lengths observed.
func blockDrain(src Source, block int) (recs []Access, blocks []int) {
	buf := make([]Access, block)
	for {
		blk := FillBlock(src, buf)
		if len(blk) == 0 {
			return recs, blocks
		}
		blocks = append(blocks, len(blk))
		recs = append(recs, blk...)
	}
}

// TestNextBlockEquivalence checks every BlockSource implementation (and the
// record-loop fallback) against the record-at-a-time drain of the same
// stream, across block sizes that exercise short final blocks.
func TestNextBlockEquivalence(t *testing.T) {
	recs := make([]Access, 0, 100)
	for i := 0; i < 100; i++ {
		recs = append(recs, Access{
			PC:   Addr(0x400000 + i*8),
			Addr: Addr(0x7f000000 + i*64),
			Kind: Kind(i % 2),
			Dep:  uint32(i % 5),
			Gap:  uint16(i % 7),
		})
	}
	var traced bytes.Buffer
	if _, err := WriteTrace(&traced, NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	sources := map[string]func() Source{
		"slice":    func() Source { return NewSliceSource(recs) },
		"limited":  func() Source { return Limit(NewSliceSource(recs), 73) },
		"fallback": func() Source { return recordSource{NewSliceSource(recs)} },
		"trace": func() Source {
			tr, err := NewTraceReader(bytes.NewReader(traced.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		},
	}
	for name, open := range sources {
		var want []Access
		ref := open()
		for {
			a, ok := ref.Next()
			if !ok {
				break
			}
			want = append(want, a)
		}
		for _, block := range []int{1, 3, 7, 64, 100, 101, 4096} {
			t.Run(fmt.Sprintf("%s/block=%d", name, block), func(t *testing.T) {
				got, blocks := blockDrain(open(), block)
				if len(got) != len(want) {
					t.Fatalf("drained %d records, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
					}
				}
				for i, n := range blocks {
					if n > block {
						t.Fatalf("block %d has %d records, exceeds buffer %d", i, n, block)
					}
					if i < len(blocks)-1 && n < block && name == "slice" {
						t.Fatalf("non-final block %d is short (%d < %d)", i, n, block)
					}
				}
			})
		}
		// A zero-length buffer yields the empty slice without consuming
		// anything; the stream remains fully drainable afterwards.
		src := open()
		if blk := FillBlock(src, nil); len(blk) != 0 {
			t.Fatalf("%s: FillBlock(nil buf) returned %d records", name, len(blk))
		}
		got, _ := blockDrain(src, 16)
		if len(got) != len(want) {
			t.Fatalf("%s: zero-length fill consumed records (%d left of %d)", name, len(got), len(want))
		}
	}
}

// FuzzBlockReplay feeds the trace parser arbitrary bytes and drains the
// result in block mode: whatever the stream — clean, truncated mid-record,
// corrupt header — block replay must deliver exactly the records the
// record-at-a-time reader delivers, classify failures under ErrBadTrace
// identically, handle short final blocks, and never panic.
func FuzzBlockReplay(f *testing.F) {
	var good bytes.Buffer
	if _, err := WriteTrace(&good, NewSliceSource(testRecords())); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes(), uint16(1))
	f.Add(good.Bytes(), uint16(3)) // short final block
	f.Add(good.Bytes(), uint16(4096))
	f.Add(good.Bytes()[:len(good.Bytes())-5], uint16(2)) // truncated mid-record
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, blockArg uint16) {
		block := int(blockArg)%512 + 1
		// Record-at-a-time reference drain.
		ref, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewTraceReader error %v not classified under ErrBadTrace", err)
			}
			return
		}
		var want []Access
		for {
			a, ok := ref.Next()
			if !ok {
				break
			}
			want = append(want, a)
		}
		// Block-mode drain of the same bytes.
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second open failed where first succeeded: %v", err)
		}
		buf := make([]Access, block)
		var got []Access
		for {
			blk := tr.NextBlock(buf)
			if len(blk) == 0 {
				break
			}
			if len(blk) > block {
				t.Fatalf("block of %d records exceeds buffer %d", len(blk), block)
			}
			got = append(got, blk...)
		}
		if len(got) != len(want) {
			t.Fatalf("block mode delivered %d records, record mode %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("record %d: block mode %+v, record mode %+v", i, got[i], want[i])
			}
		}
		refErr, blockErr := ref.Err(), tr.Err()
		if (refErr == nil) != (blockErr == nil) {
			t.Fatalf("error divergence: record mode %v, block mode %v", refErr, blockErr)
		}
		if blockErr != nil && !errors.Is(blockErr, ErrBadTrace) {
			t.Fatalf("block-mode error %v not classified under ErrBadTrace", blockErr)
		}
		if blk := tr.NextBlock(buf); len(blk) != 0 {
			t.Fatal("NextBlock returned records after stream end")
		}
	})
}
