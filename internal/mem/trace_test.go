package mem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testRecords() []Access {
	return []Access{
		{PC: 0x400100, Addr: 0x7f001040, Kind: Load, Dep: 0, Gap: 3},
		{PC: 0x400108, Addr: 0x7f001080, Kind: Load, Dep: 1, Gap: 0},
		{PC: 0x400110, Addr: 0x7f0010c0, Kind: Store, Dep: 0, Gap: 12},
		{PC: 0x400100, Addr: 0x7f001100, Kind: Load, Dep: 2, Gap: 65535},
	}
}

// TestWriteReadTraceRoundTrip pins the in-memory writer/reader pair.
func TestWriteReadTraceRoundTrip(t *testing.T) {
	recs := testRecords()
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceSource(recs))
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(recs)) {
		t.Fatalf("wrote %d records, want %d", n, len(recs))
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

// TestTraceFileRoundTrip: plain and gzip-compressed trace files round-trip
// identically, and gzip detection works from content even when the file is
// renamed without its .gz suffix.
func TestTraceFileRoundTrip(t *testing.T) {
	recs := testRecords()
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.trc")
	gz := filepath.Join(dir, "t.trc.gz")

	for _, path := range []string{plain, gz} {
		n, err := WriteTraceFile(path, NewSliceSource(recs))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if n != uint64(len(recs)) {
			t.Fatalf("%s: wrote %d records, want %d", path, n, len(recs))
		}
		got, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("%s: read %d records, want %d", path, len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Errorf("%s record %d: got %+v want %+v", path, i, got[i], recs[i])
			}
		}
	}

	// The compressed file must actually be gzip (magic bytes), and smaller
	// framing than raw for real traces is gzip's business, not ours.
	raw, err := os.ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatalf(".gz output is not gzip-framed: % x", raw[:2])
	}

	// Content sniffing: a gzip file without the suffix still loads.
	renamed := filepath.Join(dir, "renamed.trc")
	if err := os.Rename(gz, renamed); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(renamed)
	if err != nil {
		t.Fatalf("renamed gzip trace: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("renamed gzip trace: read %d records, want %d", len(got), len(recs))
	}
}

// TestReadTraceFileErrors: missing files and corrupt content fail cleanly.
func TestReadTraceFileErrors(t *testing.T) {
	if _, err := ReadTraceFile(filepath.Join(t.TempDir(), "nope.trc")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(bad, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceFile(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
