package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Line
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{128, 2},
		{0xFFFF_FFFF_FFFF_FFFF, Line(0xFFFF_FFFF_FFFF_FFFF >> 6)},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		l := Line(raw >> LineShift)
		return LineOf(l.Addr()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessInstructions(t *testing.T) {
	a := Access{Gap: 7}
	if got := a.Instructions(); got != 8 {
		t.Errorf("Instructions() = %d, want 8", got)
	}
	if got := (Access{}).Instructions(); got != 1 {
		t.Errorf("zero-gap Instructions() = %d, want 1", got)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Errorf("Kind strings wrong: %q %q", Load, Store)
	}
}

func TestSliceSourceAndLimit(t *testing.T) {
	recs := []Access{{PC: 1}, {PC: 2}, {PC: 3}}
	src := NewSliceSource(recs)
	got := Collect(Limit(src, 2), 0)
	if len(got) != 2 || got[0].PC != 1 || got[1].PC != 2 {
		t.Fatalf("Limit(2) collected %v", got)
	}
	// Original source continues from where Limit stopped.
	a, ok := src.Next()
	if !ok || a.PC != 3 {
		t.Fatalf("source should continue at PC 3, got %v ok=%v", a, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source should be exhausted")
	}
}

func TestCollectMax(t *testing.T) {
	recs := make([]Access, 10)
	got := Collect(NewSliceSource(recs), 4)
	if len(got) != 4 {
		t.Fatalf("Collect max=4 returned %d records", len(got))
	}
}

func TestFuncSource(t *testing.T) {
	n := 0
	src := FuncSource(func() (Access, bool) {
		if n >= 3 {
			return Access{}, false
		}
		n++
		return Access{PC: Addr(n)}, true
	})
	if got := len(Collect(src, 0)); got != 3 {
		t.Fatalf("FuncSource yielded %d records, want 3", got)
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := NewPRNG(42), NewPRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed PRNGs diverged at step %d", i)
		}
	}
	c := NewPRNG(43)
	same := 0
	a = NewPRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestPRNGIntnRange(t *testing.T) {
	p := NewPRNG(7)
	for i := 0; i < 10000; i++ {
		v := p.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestPRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewPRNG(1).Intn(0)
}

func TestPRNGFloat64Range(t *testing.T) {
	p := NewPRNG(9)
	for i := 0; i < 10000; i++ {
		f := p.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewPRNG(seed)
		perm := p.Perm(32)
		seen := make([]bool, 32)
		for _, v := range perm {
			if v < 0 || v >= 32 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRNGUniformity(t *testing.T) {
	p := NewPRNG(11)
	const buckets, draws = 8, 80000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[p.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range count {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from %d", b, c, want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	recs := []Access{
		{PC: 0x400123, Addr: 0x7fff0040, Kind: Load, Dep: 1, Gap: 9},
		{PC: 0x400321, Addr: 0x12345678, Kind: Store, Dep: 0, Gap: 0},
		{PC: 0x400555, Addr: 0xdeadbeef, Kind: Load, Dep: 300, Gap: 65535},
	}
	var buf bytes.Buffer
	n, err := WriteTrace(&buf, NewSliceSource(recs))
	if err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if n != uint64(len(recs)) {
		t.Fatalf("WriteTrace wrote %d records, want %d", n, len(recs))
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, addrs []uint64) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		recs := make([]Access, n)
		for i := 0; i < n; i++ {
			recs[i] = Access{
				PC:   Addr(pcs[i]),
				Addr: Addr(addrs[i]),
				Kind: Kind(pcs[i] % 2),
				Dep:  uint32(addrs[i] % 100),
				Gap:  uint16(pcs[i] % 1000),
			}
		}
		var buf bytes.Buffer
		if _, err := WriteTrace(&buf, NewSliceSource(recs)); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("ReadTrace accepted garbage")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadTrace accepted empty input")
	}
}

func TestReadTraceRejectsTruncated(t *testing.T) {
	recs := []Access{{PC: 1}, {PC: 2}}
	var buf bytes.Buffer
	if _, err := WriteTrace(&buf, NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("ReadTrace accepted truncated file")
	}
}
