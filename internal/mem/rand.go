package mem

// PRNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeding into xoshiro256**-style state). Every stochastic
// component of the simulator — workload generators, samplers, tie-breaking —
// draws from an explicitly seeded PRNG so runs are bit-reproducible.
type PRNG struct {
	s [4]uint64
}

// NewPRNG returns a PRNG seeded deterministically from seed.
func NewPRNG(seed uint64) *PRNG {
	p := &PRNG{}
	// splitmix64 to fill the state; avoids the all-zero state for any seed.
	x := seed
	for i := range p.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.s[i] = z ^ (z >> 31)
	}
	return p
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (p *PRNG) Uint64() uint64 {
	result := rotl(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl(p.s[3], 45)
	return result
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("mem.PRNG: Intn with non-positive n")
	}
	return int(p.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (p *PRNG) Perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Shuffle permutes s in place.
func (p *PRNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
