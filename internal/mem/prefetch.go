package mem

import "sync"

// PrefetchSource overlaps trace decode with simulation: a single producer
// goroutine pulls blocks from the wrapped source into recycled buffers while
// the consumer simulates the previous block. Because there is exactly one
// producer and blocks are handed over through an ordered channel, the record
// sequence observed by the consumer is identical to draining the wrapped
// source directly — the pipeline changes scheduling, never results.
//
// The consumer must call Stop when abandoning the stream early, or the
// producer goroutine would block forever on the hand-over channel.
type PrefetchSource struct {
	blocks chan []Access
	free   chan []Access
	done   chan struct{}
	block  int
	stop   sync.Once

	cur []Access // block currently being consumed
	pos int      // records of cur already delivered
}

// Prefetch wraps src in an asynchronous block pipeline reading blocks of up
// to block records, keeping at most depth blocks in flight. block and depth
// are clamped to at least 1.
func Prefetch(src Source, block, depth int) *PrefetchSource {
	if block < 1 {
		block = DefaultBlockRecords
	}
	if depth < 1 {
		depth = 1
	}
	p := &PrefetchSource{
		blocks: make(chan []Access, depth),
		free:   make(chan []Access, depth+1),
		done:   make(chan struct{}),
		block:  block,
	}
	for i := 0; i < depth+1; i++ {
		p.free <- make([]Access, block)
	}
	go p.produce(src)
	return p
}

func (p *PrefetchSource) produce(src Source) {
	defer close(p.blocks)
	for {
		var buf []Access
		select {
		case buf = <-p.free:
		case <-p.done:
			return
		}
		// Recycled buffers can be zero-copy views handed back by the
		// consumer, whose capacity need not match the configured block
		// size; clamp (or replace) so every block honours the bound.
		if cap(buf) < p.block {
			buf = make([]Access, p.block)
		}
		out := FillBlock(src, buf[:p.block])
		if len(out) == 0 {
			return
		}
		select {
		case p.blocks <- out:
		case <-p.done:
			return
		}
	}
}

// Stop terminates the producer goroutine. It is safe to call multiple times
// and after exhaustion; a stopped source reports end-of-stream from then on.
func (p *PrefetchSource) Stop() { p.stop.Do(func() { close(p.done) }) }

// advance makes cur hold undelivered records, fetching the next block when
// the current one is spent. It reports false at end of stream.
func (p *PrefetchSource) advance() bool {
	for p.pos >= len(p.cur) {
		if p.cur != nil {
			// Recycle the spent buffer. SliceSource hands out views of its
			// own backing array rather than filling our buffer; those are
			// not ours to recycle, but the free channel has spare capacity
			// so the producer never starves either way.
			select {
			case p.free <- p.cur[:cap(p.cur)]:
			default:
			}
			p.cur = nil
		}
		blk, ok := <-p.blocks
		if !ok {
			return false
		}
		p.cur, p.pos = blk, 0
	}
	return true
}

// Next implements Source.
func (p *PrefetchSource) Next() (Access, bool) {
	if !p.advance() {
		return Access{}, false
	}
	a := p.cur[p.pos]
	p.pos++
	return a, true
}

// NextBlock implements BlockSource. The returned slice is a view of the
// pipeline's current buffer, valid until the next NextBlock or Next call.
func (p *PrefetchSource) NextBlock(buf []Access) []Access {
	if !p.advance() {
		return nil
	}
	n := len(p.cur) - p.pos
	if n > len(buf) {
		n = len(buf)
	}
	out := p.cur[p.pos : p.pos+n]
	p.pos += n
	return out
}
