package mem

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trace file format (little-endian):
//
//	magic   [8]byte  "PROPHTRC"
//	version uint32   (currently 1)
//	count   uint64   number of records
//	records count × { pc uint64, addr uint64, kind uint8, dep uint32, gap uint16 }
//
// The format is intentionally simple: it exists so cmd/tracegen can export
// workloads for inspection and so traces can be replayed byte-identically.

var traceMagic = [8]byte{'P', 'R', 'O', 'P', 'H', 'T', 'R', 'C'}

const traceVersion = 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("mem: malformed trace file")

// WriteTrace writes all records from src to w in the trace file format,
// returning the number of records written.
func WriteTrace(w io.Writer, src Source) (uint64, error) {
	recs := Collect(src, 0)
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(traceVersion)); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(recs))); err != nil {
		return 0, err
	}
	var buf [23]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.PC))
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Addr))
		buf[16] = byte(r.Kind)
		binary.LittleEndian.PutUint32(buf[17:], r.Dep)
		binary.LittleEndian.PutUint16(buf[21:], r.Gap)
		if _, err := bw.Write(buf[:]); err != nil {
			return 0, err
		}
	}
	return uint64(len(recs)), bw.Flush()
}

// WriteTraceFile writes all records from src to the named file,
// gzip-compressing when the path ends in ".gz". It returns the number of
// records written; ReadTraceFile round-trips either form byte-identically.
func WriteTraceFile(path string, src Source) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	n, err := WriteTrace(w, src)
	if zw != nil {
		if cerr := zw.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}

// ReadTraceFile reads an entire trace file written by WriteTraceFile (or by
// WriteTrace to a plain file), transparently decompressing gzip. Compression
// is detected from the stream's leading magic bytes, not the file name, so
// renamed files still load.
func ReadTraceFile(path string) ([]Access, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		defer zr.Close()
		return ReadTrace(zr)
	}
	return ReadTrace(br)
}

// ReadTrace reads an entire trace file produced by WriteTrace.
func ReadTrace(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	const maxReasonable = 1 << 28 // refuse absurd files rather than OOM
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: record count %d too large", ErrBadTrace, count)
	}
	recs := make([]Access, 0, count)
	var buf [23]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, i, err)
		}
		recs = append(recs, Access{
			PC:   Addr(binary.LittleEndian.Uint64(buf[0:])),
			Addr: Addr(binary.LittleEndian.Uint64(buf[8:])),
			Kind: Kind(buf[16]),
			Dep:  binary.LittleEndian.Uint32(buf[17:]),
			Gap:  binary.LittleEndian.Uint16(buf[21:]),
		})
	}
	return recs, nil
}
