package mem

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trace file format (little-endian):
//
//	magic   [8]byte  "PROPHTRC"
//	version uint32   (currently 1)
//	count   uint64   number of records
//	records count × { pc uint64, addr uint64, kind uint8, dep uint32, gap uint16 }
//
// The format is intentionally simple: it exists so cmd/tracegen can export
// workloads for inspection and so traces can be replayed byte-identically.

var traceMagic = [8]byte{'P', 'R', 'O', 'P', 'H', 'T', 'R', 'C'}

const traceVersion = 1

// ErrBadTrace reports a malformed trace file.
var ErrBadTrace = errors.New("mem: malformed trace file")

// WriteTrace writes all records from src to w in the trace file format,
// returning the number of records written.
func WriteTrace(w io.Writer, src Source) (uint64, error) {
	recs := Collect(src, 0)
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(traceVersion)); err != nil {
		return 0, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(recs))); err != nil {
		return 0, err
	}
	var buf [23]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[0:], uint64(r.PC))
		binary.LittleEndian.PutUint64(buf[8:], uint64(r.Addr))
		buf[16] = byte(r.Kind)
		binary.LittleEndian.PutUint32(buf[17:], r.Dep)
		binary.LittleEndian.PutUint16(buf[21:], r.Gap)
		if _, err := bw.Write(buf[:]); err != nil {
			return 0, err
		}
	}
	return uint64(len(recs)), bw.Flush()
}

// WriteTraceFile writes all records from src to the named file,
// gzip-compressing when the path ends in ".gz". It returns the number of
// records written; ReadTraceFile round-trips either form byte-identically.
func WriteTraceFile(path string, src Source) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	n, err := WriteTrace(w, src)
	if zw != nil {
		if cerr := zw.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	return n, nil
}

// recordBytes is the on-disk size of one trace record.
const recordBytes = 23

// traceBlockRecords is how many records a TraceReader decodes per refill of
// its reusable block buffer.
const traceBlockRecords = 4096

// TraceReader streams a trace without materializing the full record slice:
// it refills one reusable block buffer from the underlying reader and
// decodes records on demand. It implements Source, so a trace file can be
// replayed directly into the simulator with O(block) memory whatever the
// trace length. Callers that need random access or multiple passes should
// collect the records instead (ReadTrace / ReadTraceFile).
type TraceReader struct {
	r         io.Reader
	count     uint64 // total records in the trace
	delivered uint64
	block     []byte // reusable block buffer (whole records only)
	pos       int    // consumed bytes within block
	err       error
	closer    io.Closer // set by OpenTraceFile
}

// NewTraceReader parses the header from r and returns a streaming reader
// positioned at the first record.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	var head [12]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	version := binary.LittleEndian.Uint32(head[0:])
	if version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	count := binary.LittleEndian.Uint64(head[4:])
	return &TraceReader{
		r:     br,
		count: count,
		block: make([]byte, 0, traceBlockRecords*recordBytes),
	}, nil
}

// Count returns the record count declared in the trace header.
func (t *TraceReader) Count() uint64 { return t.count }

// Err returns the error that terminated the stream early, if any. A stream
// that delivered all Count records reports nil.
func (t *TraceReader) Err() error { return t.err }

// Close releases the underlying file when the reader came from
// OpenTraceFile; it is a no-op otherwise.
func (t *TraceReader) Close() error {
	if t.closer != nil {
		err := t.closer.Close()
		t.closer = nil
		return err
	}
	return nil
}

// Next implements Source, decoding the next record from the block buffer.
func (t *TraceReader) Next() (Access, bool) {
	if t.err != nil || t.delivered >= t.count {
		return Access{}, false
	}
	if t.pos >= len(t.block) {
		if !t.refill() {
			return Access{}, false
		}
	}
	b := t.block[t.pos : t.pos+recordBytes]
	t.pos += recordBytes
	t.delivered++
	return Access{
		PC:   Addr(binary.LittleEndian.Uint64(b[0:])),
		Addr: Addr(binary.LittleEndian.Uint64(b[8:])),
		Kind: Kind(b[16]),
		Dep:  binary.LittleEndian.Uint32(b[17:]),
		Gap:  binary.LittleEndian.Uint16(b[21:]),
	}, true
}

// refill reads the next block of whole records into the reusable buffer.
func (t *TraceReader) refill() bool {
	want := t.count - t.delivered
	if want > traceBlockRecords {
		want = traceBlockRecords
	}
	buf := t.block[:want*recordBytes]
	if _, err := io.ReadFull(t.r, buf); err != nil {
		t.err = fmt.Errorf("%w: truncated at record %d: %v", ErrBadTrace, t.delivered, err)
		return false
	}
	t.block = buf
	t.pos = 0
	return true
}

// OpenTraceFile opens a trace file for streaming replay, transparently
// decompressing gzip (detected from the stream's leading magic bytes, not
// the file name). The caller owns the returned reader and must Close it.
func OpenTraceFile(path string) (*TraceReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	var src io.Reader = br
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		src = zr
	}
	tr, err := NewTraceReader(src)
	if err != nil {
		f.Close()
		return nil, err
	}
	tr.closer = f
	return tr, nil
}

// ReadTraceFile reads an entire trace file written by WriteTraceFile (or by
// WriteTrace to a plain file), transparently decompressing gzip. Use
// OpenTraceFile to stream instead of materializing every record.
func ReadTraceFile(path string) ([]Access, error) {
	tr, err := OpenTraceFile(path)
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	return collectTrace(tr)
}

// ReadTrace reads an entire trace produced by WriteTrace.
func ReadTrace(r io.Reader) ([]Access, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	return collectTrace(tr)
}

func collectTrace(tr *TraceReader) ([]Access, error) {
	const maxReasonable = 1 << 28 // refuse absurd files rather than OOM
	if tr.Count() > maxReasonable {
		return nil, fmt.Errorf("%w: record count %d too large", ErrBadTrace, tr.Count())
	}
	recs := make([]Access, 0, tr.Count())
	for {
		a, ok := tr.Next()
		if !ok {
			break
		}
		recs = append(recs, a)
	}
	if err := tr.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
