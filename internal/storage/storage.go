// Package storage accounts the hardware storage overhead of every scheme,
// reproducing Section 5.10 and the related-work numbers of Section 2.1:
//
//   - Prophet: 48KB replacement state (196,608 entries x 2 bits), 0.19KB
//     hint buffer (128 entries), 344KB Multi-path Victim Buffer (65,536
//     entries x 43 bits);
//   - Triage: ~13KB Hawkeye replacement state, >200KB Bloom-filter resizing
//     (tracking ~200,000 entries);
//   - Triangel: ~2KB Set Dueller plus per-PC confidence/training state.
package storage

import "fmt"

// Item is one storage structure.
type Item struct {
	Name string
	Bits int
}

// KB returns the item size in kilobytes.
func (i Item) KB() float64 { return float64(i.Bits) / 8 / 1024 }

// String formats the item.
func (i Item) String() string { return fmt.Sprintf("%s: %.2f KB", i.Name, i.KB()) }

// TotalKB sums a structure list.
func TotalKB(items []Item) float64 {
	total := 0.0
	for _, it := range items {
		total += it.KB()
	}
	return total
}

const (
	metaTableEntries = 196608 // 1MB table (Section 5.10)
	hintBufferSlots  = 128
	mvbEntries       = 65536
)

// Prophet returns Prophet's storage items (Section 5.10).
func Prophet() []Item {
	return []Item{
		// 2-bit replacement state per metadata entry.
		{Name: "Prophet replacement state", Bits: metaTableEntries * 2},
		// Hint buffer: 128 x (PC tag ~9 bits + 3-bit hint) ≈ 0.19KB.
		{Name: "Hint buffer", Bits: hintBufferSlots * 12},
		// MVB: 31-bit target + 10-bit tag + 2-bit counter per entry.
		{Name: "Multi-path Victim Buffer", Bits: mvbEntries * 43},
	}
}

// Triage returns Triage's management-structure storage (Section 2.1).
func Triage() []Item {
	return []Item{
		// Hawkeye-style replacement predictor (Section 2.1.2: 13KB).
		{Name: "Hawkeye replacement state", Bits: 13 * 1024 * 8},
		// Counting Bloom filter tracking ~200K entries (Section 2.1.3:
		// >200KB).
		{Name: "Bloom-filter resizer", Bits: 200 * 1024 * 8},
	}
}

// Triangel returns Triangel's management-structure storage.
func Triangel() []Item {
	return []Item{
		// SRRIP: 2-bit RRPV per metadata entry.
		{Name: "SRRIP replacement state", Bits: metaTableEntries * 2},
		// Set Dueller sampled sets (Section 2.1.3: ~2KB).
		{Name: "Set Dueller", Bits: 2 * 1024 * 8},
		// Training unit: per-PC history + PatternConf/ReuseConf
		// (1024 entries x ~(64-bit addr + 2x4-bit conf + tag)).
		{Name: "Training unit + confidences", Bits: 1024 * 88},
	}
}
