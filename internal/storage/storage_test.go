package storage

import (
	"math"
	"strings"
	"testing"
)

func kbOf(items []Item, name string) float64 {
	for _, it := range items {
		if it.Name == name {
			return it.KB()
		}
	}
	return -1
}

// Section 5.10's exact numbers.
func TestProphetStorageMatchesPaper(t *testing.T) {
	items := Prophet()
	if got := kbOf(items, "Prophet replacement state"); got != 48 {
		t.Errorf("replacement state = %v KB, want 48", got)
	}
	if got := kbOf(items, "Hint buffer"); math.Abs(got-0.19) > 0.01 {
		t.Errorf("hint buffer = %v KB, want ~0.19", got)
	}
	if got := kbOf(items, "Multi-path Victim Buffer"); got != 344 {
		t.Errorf("MVB = %v KB, want 344", got)
	}
}

func TestTriageStorageMatchesPaper(t *testing.T) {
	items := Triage()
	if got := kbOf(items, "Hawkeye replacement state"); got != 13 {
		t.Errorf("Hawkeye = %v KB, want 13 (Section 2.1.2)", got)
	}
	if got := kbOf(items, "Bloom-filter resizer"); got != 200 {
		t.Errorf("Bloom = %v KB, want 200 (Section 2.1.3)", got)
	}
}

func TestTriangelStorage(t *testing.T) {
	items := Triangel()
	if got := kbOf(items, "Set Dueller"); got != 2 {
		t.Errorf("Set Dueller = %v KB, want ~2", got)
	}
}

func TestTotalKB(t *testing.T) {
	total := TotalKB(Prophet())
	if math.Abs(total-(48+0.19+344)) > 0.01 {
		t.Errorf("Prophet total = %v KB", total)
	}
}

func TestItemString(t *testing.T) {
	s := Item{Name: "x", Bits: 8192}.String()
	if !strings.Contains(s, "1.00 KB") {
		t.Errorf("Item.String = %q", s)
	}
}
