// Package cliutil holds tiny helpers shared by the cmd tools' flag
// parsing, so list-valued flags behave identically everywhere.
package cliutil

import "strings"

// SplitList parses a comma-separated flag value, trimming whitespace and
// dropping empty entries ("a, b,,c" -> ["a" "b" "c"]).
func SplitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
