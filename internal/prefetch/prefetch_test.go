package prefetch

import (
	"testing"

	"prophet/internal/mem"
)

func TestNone(t *testing.T) {
	var n None
	if n.Name() != "none" {
		t.Error("None name")
	}
	if got := n.OnAccess(1, 2, false); got != nil {
		t.Errorf("None prefetched %v", got)
	}
}

func TestStrideDetectsAfterWarmup(t *testing.T) {
	s := NewStride(8)
	pc := mem.Addr(0x400100)
	var got []mem.Line
	for i := 0; i < 5; i++ {
		got = s.OnAccess(pc, mem.Line(10+i*2), false)
	}
	if len(got) != 8 {
		t.Fatalf("degree-8 stride issued %d prefetches, want 8", len(got))
	}
	// Last access at line 18, stride 2: expect 20,22,...
	for i, l := range got {
		want := mem.Line(18 + 2*(i+1))
		if l != want {
			t.Errorf("prefetch %d = %v, want %v", i, l, want)
		}
	}
}

func TestStrideNoPrefetchWithoutPattern(t *testing.T) {
	s := NewStride(8)
	pc := mem.Addr(0x400100)
	lines := []mem.Line{10, 99, 3, 512, 7, 1024}
	for _, l := range lines {
		if got := s.OnAccess(pc, l, false); len(got) != 0 {
			t.Fatalf("random stream triggered prefetches %v at line %v", got, l)
		}
	}
}

func TestStrideZeroDeltaIgnored(t *testing.T) {
	s := NewStride(4)
	pc := mem.Addr(0x1)
	s.OnAccess(pc, 5, false)
	if got := s.OnAccess(pc, 5, false); got != nil {
		t.Fatalf("repeat access produced prefetches %v", got)
	}
}

func TestStrideRetrainsOnNewStride(t *testing.T) {
	s := NewStride(2)
	pc := mem.Addr(0x2)
	for i := 0; i < 4; i++ {
		s.OnAccess(pc, mem.Line(i), false)
	}
	// Break the pattern twice; confidence must drop and no prefetch fire.
	if got := s.OnAccess(pc, 100, false); got != nil {
		t.Fatalf("stride break still prefetched %v", got)
	}
	// New stride of 3 needs the old confidence to decay and the new
	// stride to be confirmed before prefetching resumes.
	if got := s.OnAccess(pc, 103, false); got != nil {
		t.Fatalf("prefetch fired before new stride confirmed: %v", got)
	}
	if got := s.OnAccess(pc, 106, false); got != nil {
		t.Fatalf("prefetch fired while old confidence still decaying: %v", got)
	}
	relearned := s.OnAccess(pc, 109, false)
	if len(relearned) == 0 {
		t.Fatal("stride not re-learned after confirmations")
	}
	if relearned[0] != 112 {
		t.Fatalf("first prefetch = %v, want 112", relearned[0])
	}
}

func TestStrideNegative(t *testing.T) {
	s := NewStride(4)
	pc := mem.Addr(0x3)
	for i := 0; i < 5; i++ {
		s.OnAccess(pc, mem.Line(1000-i*3), false)
	}
	got := s.OnAccess(pc, mem.Line(1000-5*3), false)
	if len(got) != 4 {
		t.Fatalf("negative stride issued %d prefetches", len(got))
	}
	if got[0] != mem.Line(1000-6*3) {
		t.Fatalf("negative stride prefetch = %v, want %v", got[0], mem.Line(1000-6*3))
	}
}

func TestStrideTableConflictResets(t *testing.T) {
	s := NewStride(2)
	// Two PCs that alias to the same table index cannot corrupt each
	// other into false prefetches: the entry resets on PC mismatch.
	pcA := mem.Addr(4)
	pcB := pcA + mem.Addr(tableSize*4) // same pcIndex
	if pcIndex(pcA) != pcIndex(pcB) {
		t.Skip("aliasing assumption broken by index hash")
	}
	for i := 0; i < 4; i++ {
		s.OnAccess(pcA, mem.Line(i*2), false)
	}
	if got := s.OnAccess(pcB, 1000, false); got != nil {
		t.Fatalf("aliased PC inherited prefetch state: %v", got)
	}
}

func TestIPCPConstantStrideClass(t *testing.T) {
	p := NewIPCP()
	pc := mem.Addr(0x500)
	var got []mem.Line
	for i := 0; i < 6; i++ {
		got = p.OnAccess(pc, mem.Line(i*4), true)
	}
	if len(got) == 0 {
		t.Fatal("IPCP CS class did not fire on constant stride")
	}
	if got[0] != mem.Line(5*4+4) {
		t.Fatalf("CS prefetch starts at %v, want %v", got[0], mem.Line(24))
	}
}

func TestIPCPGlobalStream(t *testing.T) {
	p := NewIPCP()
	// Sequential lines from alternating PCs: per-PC stride is 2, but we
	// need several same-PC observations; use many PCs so CS never forms,
	// but the global stream does.
	var got []mem.Line
	for i := 0; i < 12; i++ {
		pc := mem.Addr(0x600 + i%6*8)
		got = p.OnAccess(pc, mem.Line(100+i), false)
	}
	if len(got) == 0 {
		t.Fatal("IPCP GS class did not fire on a global sequential stream")
	}
}

func TestIPCPNextLineOnMissHeavyIrregular(t *testing.T) {
	p := NewIPCP()
	pc := mem.Addr(0x700)
	rng := mem.NewPRNG(5)
	var got []mem.Line
	for i := 0; i < 20; i++ {
		got = p.OnAccess(pc, mem.Line(rng.Intn(1<<20)), false)
	}
	// Miss-heavy irregular PC should degrade to NL (1 prefetch) at most.
	if len(got) > 1 {
		t.Fatalf("irregular miss-heavy PC issued %d prefetches, want <=1 (NL)", len(got))
	}
}

func TestIPCPName(t *testing.T) {
	if NewIPCP().Name() != "ipcp" || NewStride(8).Name() != "stride" {
		t.Error("prefetcher names wrong")
	}
}
