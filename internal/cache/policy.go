// Package cache implements the set-associative caches of the simulated
// memory hierarchy (Table 1 of the paper): tag state, dirty bits,
// prefetch-fill bookkeeping, per-line fill-ready cycles for timeliness
// modelling, and pluggable replacement policies (LRU, tree-PLRU, SRRIP).
//
// Caches here are functional state machines: they decide hits, victims and
// recency. Latency and bandwidth are accounted by internal/sim and
// internal/dram, which consult the per-line Ready cycle recorded at fill
// time to charge partial latency for late prefetches.
package cache

import "fmt"

// Policy selects a replacement policy for a cache.
type Policy uint8

const (
	// LRU is true least-recently-used replacement.
	LRU Policy = iota
	// PLRU is tree-based pseudo-LRU (falls back to CLOCK for
	// non-power-of-two associativity, which only arises after resizing).
	PLRU
	// SRRIP is 2-bit static re-reference interval prediction (Jaleel et
	// al., ISCA'10), the policy Triangel uses for its metadata table and a
	// good stand-in for the hierarchy-aware LLC policy in Table 1.
	SRRIP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case PLRU:
		return "PLRU"
	case SRRIP:
		return "SRRIP"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

const (
	srripBits    = 2
	srripMax     = 1<<srripBits - 1 // 3: distant re-reference
	srripInsert  = srripMax - 1     // 2: long re-reference on insert
	srripPromote = 0                // hit promotion
)

// replacer tracks recency metadata for one cache set.
type replacer interface {
	// touch records a hit on way w at the given logical time.
	touch(w int, now uint64)
	// insert records a fill into way w.
	insert(w int, now uint64)
	// victim picks the way to evict among ways [0, limit). All ways in
	// range are guaranteed valid when victim is called.
	victim(limit int) int
}

// --- LRU ---

type lruState struct {
	last []uint64
}

func newLRU(ways int) *lruState { return &lruState{last: make([]uint64, ways)} }

func (s *lruState) touch(w int, now uint64)  { s.last[w] = now }
func (s *lruState) insert(w int, now uint64) { s.last[w] = now }

func (s *lruState) victim(limit int) int {
	best, bestT := 0, s.last[0]
	for w := 1; w < limit; w++ {
		if s.last[w] < bestT {
			best, bestT = w, s.last[w]
		}
	}
	return best
}

// --- tree PLRU (power-of-two ways) with CLOCK fallback ---

type plruState struct {
	bits  uint64 // tree bits; bit i is node i (root = 1), pointing to the colder half
	ways  int
	pow2  bool
	ref   []bool // CLOCK fallback
	hand  int
	limit int
}

func newPLRU(ways int) *plruState {
	return &plruState{
		bits: 0,
		ways: ways,
		pow2: ways&(ways-1) == 0,
		ref:  make([]bool, ways),
	}
}

func (s *plruState) touch(w int, _ uint64)  { s.promote(w) }
func (s *plruState) insert(w int, _ uint64) { s.promote(w) }

func (s *plruState) promote(w int) {
	if s.pow2 {
		// Walk from root to leaf w, flipping each node away from w.
		node := 1
		span := s.ways
		lo := 0
		for span > 1 {
			span /= 2
			if w < lo+span {
				// w in left half: point node at right half (bit=1).
				s.bits |= 1 << uint(node)
				node = node * 2
			} else {
				s.bits &^= 1 << uint(node)
				node = node*2 + 1
				lo += span
			}
		}
		return
	}
	s.ref[w] = true
}

func (s *plruState) victim(limit int) int {
	if s.pow2 && limit == s.ways {
		node := 1
		span := s.ways
		lo := 0
		for span > 1 {
			span /= 2
			if s.bits&(1<<uint(node)) != 0 {
				// Bit points right (colder).
				node = node*2 + 1
				lo += span
			} else {
				node = node * 2
			}
		}
		return lo
	}
	// CLOCK over [0, limit).
	for i := 0; i < 2*limit; i++ {
		w := s.hand % limit
		s.hand = (s.hand + 1) % limit
		if !s.ref[w] {
			return w
		}
		s.ref[w] = false
	}
	return 0
}

// --- SRRIP ---

type srripState struct {
	rrpv []uint8
}

func newSRRIP(ways int) *srripState {
	s := &srripState{rrpv: make([]uint8, ways)}
	for i := range s.rrpv {
		s.rrpv[i] = srripMax
	}
	return s
}

func (s *srripState) touch(w int, _ uint64)  { s.rrpv[w] = srripPromote }
func (s *srripState) insert(w int, _ uint64) { s.rrpv[w] = srripInsert }

func (s *srripState) victim(limit int) int {
	for {
		for w := 0; w < limit; w++ {
			if s.rrpv[w] >= srripMax {
				return w
			}
		}
		for w := 0; w < limit; w++ {
			s.rrpv[w]++
		}
	}
}

func newReplacer(p Policy, ways int) replacer {
	switch p {
	case LRU:
		return newLRU(ways)
	case PLRU:
		return newPLRU(ways)
	case SRRIP:
		return newSRRIP(ways)
	}
	panic("cache: unknown policy " + p.String())
}
