// Package cache implements the set-associative caches of the simulated
// memory hierarchy (Table 1 of the paper): tag state, dirty bits,
// prefetch-fill bookkeeping, per-line fill-ready cycles for timeliness
// modelling, and pluggable replacement policies (LRU, tree-PLRU, SRRIP).
//
// Caches here are functional state machines: they decide hits, victims and
// recency. Latency and bandwidth are accounted by internal/sim and
// internal/dram, which consult the per-line Ready cycle recorded at fill
// time to charge partial latency for late prefetches.
package cache

import "fmt"

// Policy selects a replacement policy for a cache.
type Policy uint8

const (
	// LRU is true least-recently-used replacement.
	LRU Policy = iota
	// PLRU is tree-based pseudo-LRU (falls back to CLOCK for
	// non-power-of-two associativity, which only arises after resizing).
	PLRU
	// SRRIP is 2-bit static re-reference interval prediction (Jaleel et
	// al., ISCA'10), the policy Triangel uses for its metadata table and a
	// good stand-in for the hierarchy-aware LLC policy in Table 1.
	SRRIP
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case PLRU:
		return "PLRU"
	case SRRIP:
		return "SRRIP"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

const (
	srripBits    = 2
	srripMax     = 1<<srripBits - 1 // 3: distant re-reference
	srripInsert  = srripMax - 1     // 2: long re-reference on insert
	srripPromote = 0                // hit promotion
)

// replacer tracks recency metadata for every set of one cache. A single
// replacer instance backs the whole cache with flat state arrays (indexed
// set*ways + way); the per-set objects this replaces cost two allocations
// per set — thousands per simulated system — and scattered the state across
// the heap.
type replacer interface {
	// touch records a hit on way w of set si at the given logical time.
	touch(si, w int, now uint64)
	// insert records a fill into way w of set si.
	insert(si, w int, now uint64)
	// victim picks the way to evict among ways [0, limit) of set si. All
	// ways in range are guaranteed valid when victim is called.
	victim(si, limit int) int
	// reset restores the just-constructed state (for scratch reuse).
	reset()
}

// --- LRU ---

type lruState struct {
	ways int
	last []uint64 // sets*ways flat
}

func newLRU(sets, ways int) *lruState {
	return &lruState{ways: ways, last: make([]uint64, sets*ways)}
}

func (s *lruState) touch(si, w int, now uint64)  { s.last[si*s.ways+w] = now }
func (s *lruState) insert(si, w int, now uint64) { s.last[si*s.ways+w] = now }

func (s *lruState) victim(si, limit int) int {
	base := si * s.ways
	best, bestT := 0, s.last[base]
	for w := 1; w < limit; w++ {
		if s.last[base+w] < bestT {
			best, bestT = w, s.last[base+w]
		}
	}
	return best
}

func (s *lruState) reset() { clear(s.last) }

// --- tree PLRU (power-of-two ways) with CLOCK fallback ---

type plruState struct {
	ways int
	pow2 bool
	bits []uint64 // per-set tree bits; bit i is node i (root = 1), pointing to the colder half
	ref  []bool   // CLOCK fallback, sets*ways flat
	hand []int32  // CLOCK hand per set
}

func newPLRU(sets, ways int) *plruState {
	return &plruState{
		ways: ways,
		pow2: ways&(ways-1) == 0,
		bits: make([]uint64, sets),
		ref:  make([]bool, sets*ways),
		hand: make([]int32, sets),
	}
}

func (s *plruState) touch(si, w int, _ uint64)  { s.promote(si, w) }
func (s *plruState) insert(si, w int, _ uint64) { s.promote(si, w) }

func (s *plruState) promote(si, w int) {
	if s.pow2 {
		// Walk from root to leaf w, flipping each node away from w.
		bits := s.bits[si]
		node := 1
		span := s.ways
		lo := 0
		for span > 1 {
			span /= 2
			if w < lo+span {
				// w in left half: point node at right half (bit=1).
				bits |= 1 << uint(node)
				node = node * 2
			} else {
				bits &^= 1 << uint(node)
				node = node*2 + 1
				lo += span
			}
		}
		s.bits[si] = bits
		return
	}
	s.ref[si*s.ways+w] = true
}

func (s *plruState) victim(si, limit int) int {
	if s.pow2 && limit == s.ways {
		bits := s.bits[si]
		node := 1
		span := s.ways
		lo := 0
		for span > 1 {
			span /= 2
			if bits&(1<<uint(node)) != 0 {
				// Bit points right (colder).
				node = node*2 + 1
				lo += span
			} else {
				node = node * 2
			}
		}
		return lo
	}
	// CLOCK over [0, limit).
	base := si * s.ways
	hand := int(s.hand[si])
	for i := 0; i < 2*limit; i++ {
		w := hand % limit
		hand = (hand + 1) % limit
		if !s.ref[base+w] {
			s.hand[si] = int32(hand)
			return w
		}
		s.ref[base+w] = false
	}
	s.hand[si] = int32(hand)
	return 0
}

func (s *plruState) reset() {
	clear(s.bits)
	clear(s.ref)
	clear(s.hand)
}

// --- SRRIP ---

type srripState struct {
	ways int
	rrpv []uint8 // sets*ways flat
}

func newSRRIP(sets, ways int) *srripState {
	s := &srripState{ways: ways, rrpv: make([]uint8, sets*ways)}
	s.reset()
	return s
}

func (s *srripState) touch(si, w int, _ uint64)  { s.rrpv[si*s.ways+w] = srripPromote }
func (s *srripState) insert(si, w int, _ uint64) { s.rrpv[si*s.ways+w] = srripInsert }

func (s *srripState) victim(si, limit int) int {
	base := si * s.ways
	for {
		for w := 0; w < limit; w++ {
			if s.rrpv[base+w] >= srripMax {
				return w
			}
		}
		for w := 0; w < limit; w++ {
			s.rrpv[base+w]++
		}
	}
}

func (s *srripState) reset() {
	for i := range s.rrpv {
		s.rrpv[i] = srripMax
	}
}

func newReplacer(p Policy, sets, ways int) replacer {
	switch p {
	case LRU:
		return newLRU(sets, ways)
	case PLRU:
		return newPLRU(sets, ways)
	case SRRIP:
		return newSRRIP(sets, ways)
	}
	panic("cache: unknown policy " + p.String())
}
