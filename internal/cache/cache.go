package cache

import (
	"fmt"

	"prophet/internal/mem"
)

// Config describes one cache level.
type Config struct {
	// Name labels the cache in stats output ("L1D", "L2", "L3").
	Name string
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles.
	HitLatency uint64
	// MSHRs is the number of outstanding-miss registers (consumed by the
	// core/hierarchy model, recorded here for reporting).
	MSHRs int
	// Policy selects the replacement policy.
	Policy Policy
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * mem.LineBytes) }

// Validate reports configuration errors (non-power-of-two sets, zero sizes).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not divisible into %d ways of 64B lines", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// lineState is the per-way tag state.
type lineState struct {
	line     mem.Line
	valid    bool
	dirty    bool
	prefetch bool     // filled by a prefetch and not yet referenced by demand
	trigger  mem.Addr // PC whose prefetch filled the line (if prefetch)
	ready    uint64   // cycle at which the fill completes
}

// Eviction describes a line displaced by Insert or Resize.
type Eviction struct {
	Line     mem.Line
	Dirty    bool
	Prefetch bool     // evicted while still unreferenced by demand
	Trigger  mem.Addr // prefetch trigger PC, when Prefetch
	Valid    bool     // false when no line was displaced
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Writebacks uint64
}

// Cache is one level of the hierarchy. The zero value is not usable; use New.
//
// The demand-visible portion of the cache may be narrowed with SetDemandWays
// (used by the LLC when the temporal prefetcher's metadata table claims ways).
//
// Tag state is one flat lineState array (set-major, ways within a set
// adjacent), and replacement state is one flat replacer per cache: building
// a cache costs a handful of allocations instead of two per set, and the
// per-access way scans walk contiguous memory.
type Cache struct {
	cfg        Config
	data       []lineState // sets*ways flat, set-major
	lines      []uint64    // scan accelerator: line+1 per valid way, 0 invalid
	repl       replacer
	setMask    uint64
	demandWays int
	clock      uint64 // logical access counter for LRU ordering
	stats      Stats
}

// New builds a cache from cfg. It panics on invalid configurations, which are
// programmer errors (configs are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:        cfg,
		data:       make([]lineState, sets*cfg.Ways),
		lines:      make([]uint64, sets*cfg.Ways),
		repl:       newReplacer(cfg.Policy, sets, cfg.Ways),
		setMask:    uint64(sets - 1),
		demandWays: cfg.Ways,
	}
}

// Reset restores the cache to its just-constructed state, reusing the
// backing arrays. It exists so internal/sim can pool simulated systems
// across runs; a reset cache is indistinguishable from a fresh one.
//
// Only the lines accelerator is cleared; the lineState array keeps stale
// contents. lines is authoritative for validity — every read of data is
// guarded by a lines match (findWay, Insert's scan) or happens after a full
// overwrite of the entry — so stale state is unobservable, and the reset
// cost drops from the full tag array (tens of cache lines per set) to one
// word per way. Replacement state is still reset eagerly: the CLOCK hand is
// read before any insert, so stale recency would change victim choices.
func (c *Cache) Reset() {
	clear(c.lines)
	c.repl.reset()
	c.demandWays = c.cfg.Ways
	c.clock = 0
	c.stats = Stats{}
}

// set returns the full (all-ways) window of set si.
func (c *Cache) set(si int) []lineState {
	base := si * c.cfg.Ways
	return c.data[base : base+c.cfg.Ways]
}

// findWay scans the lines accelerator of set si for l among the first
// limit ways, returning the way index or -1. Scanning 8-byte words instead
// of 40-byte lineState structs keeps the probe inside one or two cache
// lines; values are stored as line+1 so zero never matches.
func (c *Cache) findWay(si int, l mem.Line, limit int) int {
	base := si * c.cfg.Ways
	lines := c.lines[base : base+limit]
	want := uint64(l) + 1
	for w, lv := range lines {
		if lv == want {
			return w
		}
	}
	return -1
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// DemandWays returns the associativity currently visible to demand fills.
func (c *Cache) DemandWays() int { return c.demandWays }

func (c *Cache) setIndex(l mem.Line) int { return int(uint64(l) & c.setMask) }

// Lookup probes for a line without changing replacement state.
// It returns the fill-ready cycle for timeliness accounting.
func (c *Cache) Lookup(l mem.Line) (ready uint64, hit bool) {
	si := c.setIndex(l)
	if w := c.findWay(si, l, c.demandWays); w >= 0 {
		return c.set(si)[w].ready, true
	}
	return 0, false
}

// LookupFill probes like Lookup but the same scan also records the first
// free demand way, so a miss can be completed by Fill without rescanning
// the set. Like Lookup it changes no state and counts no stats; the
// FillSlot is subject to the same no-intervening-operations contract as
// AccessFill's.
func (c *Cache) LookupFill(l mem.Line) (ready uint64, hit bool, slot FillSlot) {
	si := c.setIndex(l)
	base := si * c.cfg.Ways
	want := uint64(l) + 1
	free := -1
	for w := 0; w < c.demandWays; w++ {
		lv := c.lines[base+w]
		if lv == want {
			return c.set(si)[w].ready, true, FillSlot{}
		}
		if lv == 0 && free < 0 {
			free = w
		}
	}
	return 0, false, FillSlot{si: si, free: free}
}

// AccessResult reports what a demand access found.
type AccessResult struct {
	Hit bool
	// Ready is the cycle the line's data is available (fills in flight
	// make this later than the access cycle).
	Ready uint64
	// WasPrefetch is true when this demand access is the first touch of a
	// prefetched line — i.e. the prefetch was useful.
	WasPrefetch bool
	// Trigger is the PC whose prefetch brought the line in (valid only
	// when WasPrefetch).
	Trigger mem.Addr
}

// Access performs a demand access at cycle now. On a hit it updates recency,
// dirtiness and the prefetch-usefulness bookkeeping. On a miss the caller is
// responsible for filling the line (via Insert) after fetching it from the
// next level.
func (c *Cache) Access(l mem.Line, now uint64, write bool) AccessResult {
	c.clock++
	si := c.setIndex(l)
	if w := c.findWay(si, l, c.demandWays); w >= 0 {
		st := &c.set(si)[w]
		c.stats.Hits++
		c.repl.touch(si, w, c.clock)
		res := AccessResult{Hit: true, Ready: st.ready}
		if st.prefetch {
			res.WasPrefetch = true
			res.Trigger = st.trigger
			st.prefetch = false
		}
		if write {
			st.dirty = true
		}
		return res
	}
	c.stats.Misses++
	return AccessResult{}
}

// FillSlot remembers, across a miss, where the fetched line will be filled:
// the set index and the first free demand way found during the access scan
// (-1 when the set is full and a victim must be chosen). It is only valid
// while no other operation touches the cache between AccessFill and Fill.
type FillSlot struct {
	si   int
	free int
}

// AccessFill is Access fused with the fill-side tag scan: the single way
// scan that decides hit/miss also records the first free way, so a miss can
// be completed by Fill without rescanning the set. Behaviour and statistics
// are bit-identical to Access followed (on a miss) by Insert, provided
// nothing else touches the cache in between — which holds for the LLC,
// where misses go straight to DRAM with no intervening prefetch fills.
func (c *Cache) AccessFill(l mem.Line, now uint64, write bool) (AccessResult, FillSlot) {
	c.clock++
	si := c.setIndex(l)
	base := si * c.cfg.Ways
	want := uint64(l) + 1
	free := -1
	for w := 0; w < c.demandWays; w++ {
		lv := c.lines[base+w]
		if lv == want {
			st := &c.set(si)[w]
			c.stats.Hits++
			c.repl.touch(si, w, c.clock)
			res := AccessResult{Hit: true, Ready: st.ready}
			if st.prefetch {
				res.WasPrefetch = true
				res.Trigger = st.trigger
				st.prefetch = false
			}
			if write {
				st.dirty = true
			}
			return res, FillSlot{}
		}
		if lv == 0 && free < 0 {
			free = w
		}
	}
	c.stats.Misses++
	return AccessResult{}, FillSlot{si: si, free: free}
}

// Fill completes the miss recorded by AccessFill's slot, equivalent to
// Insert of the same line but without a second tag scan. The in-place
// refill branch of Insert cannot apply: the line just missed and, per the
// FillSlot contract, nothing has inserted it since.
func (c *Cache) Fill(slot FillSlot, l mem.Line, ready uint64, dirty, prefetch bool, trigger mem.Addr) Eviction {
	c.clock++
	si := slot.si
	set := c.set(si)
	victim := slot.free
	var ev Eviction
	if victim < 0 {
		victim = c.repl.victim(si, c.demandWays)
		st := set[victim]
		ev = Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true}
		if st.dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = lineState{line: l, valid: true, dirty: dirty, prefetch: prefetch, trigger: trigger, ready: ready}
	c.lines[si*c.cfg.Ways+victim] = uint64(l) + 1
	c.repl.insert(si, victim, c.clock)
	c.stats.Fills++
	return ev
}

// Insert fills line l, choosing a victim within the demand-visible ways.
// ready is the cycle the fill data arrives; prefetch marks prefetch fills and
// trigger records the requesting PC. The displaced line, if any, is returned
// so the caller can write it back or notify prefetch-accuracy bookkeeping.
func (c *Cache) Insert(l mem.Line, now, ready uint64, dirty, prefetch bool, trigger mem.Addr) Eviction {
	c.clock++
	si := c.setIndex(l)
	base := si * c.cfg.Ways
	set := c.set(si)
	// One scan finds a refill of a line already present (e.g. prefetch
	// racing demand — update in place, never duplicate tags) and remembers
	// the first free way for the fill.
	victim := -1
	want := uint64(l) + 1
	for w := 0; w < c.demandWays; w++ {
		lv := c.lines[base+w]
		if lv == want {
			st := &set[w]
			if ready < st.ready {
				st.ready = ready
			}
			st.dirty = st.dirty || dirty
			return Eviction{}
		}
		if lv == 0 && victim < 0 {
			victim = w
		}
	}
	var ev Eviction
	if victim < 0 {
		victim = c.repl.victim(si, c.demandWays)
		st := set[victim]
		ev = Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true}
		if st.dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = lineState{line: l, valid: true, dirty: dirty, prefetch: prefetch, trigger: trigger, ready: ready}
	c.lines[base+victim] = want
	c.repl.insert(si, victim, c.clock)
	c.stats.Fills++
	return ev
}

// MarkDirty performs the writeback fast path: if l is present in the
// demand-visible ways it applies exactly the side effects of a demand write
// hit (recency touch, dirty bit, prefetch-flag consumption) and reports
// true; otherwise it reports false with no state change, and the caller
// inserts the line. It fuses the Lookup+Access pair the simulator used to
// issue for every dirty eviction into one tag scan.
func (c *Cache) MarkDirty(l mem.Line, now uint64) bool {
	si := c.setIndex(l)
	if w := c.findWay(si, l, c.demandWays); w >= 0 {
		st := &c.set(si)[w]
		c.clock++
		c.stats.Hits++
		c.repl.touch(si, w, c.clock)
		st.prefetch = false
		st.dirty = true
		return true
	}
	return false
}

// MarkDirtyFill is MarkDirty fused with the fill-side scan: the single tag
// pass that checks for a writeback hit also records the first free demand
// way, so a writeback miss can be completed by Fill without rescanning the
// set. When handled is true the dirty-hit side effects have been applied
// and the slot is meaningless; otherwise no state changed (exactly like a
// false MarkDirty) and the slot obeys the usual FillSlot contract.
func (c *Cache) MarkDirtyFill(l mem.Line, now uint64) (handled bool, slot FillSlot) {
	si := c.setIndex(l)
	base := si * c.cfg.Ways
	want := uint64(l) + 1
	free := -1
	for w := 0; w < c.demandWays; w++ {
		lv := c.lines[base+w]
		if lv == want {
			st := &c.set(si)[w]
			c.clock++
			c.stats.Hits++
			c.repl.touch(si, w, c.clock)
			st.prefetch = false
			st.dirty = true
			return true, FillSlot{}
		}
		if lv == 0 && free < 0 {
			free = w
		}
	}
	return false, FillSlot{si: si, free: free}
}

// Invalidate removes a line if present, returning its eviction record
// (used by exclusive-ish LLC handling and by tests).
func (c *Cache) Invalidate(l mem.Line) Eviction {
	si := c.setIndex(l)
	// Note: the full associativity is searched, not just the demand ways.
	if w := c.findWay(si, l, c.cfg.Ways); w >= 0 {
		set := c.set(si)
		st := set[w]
		set[w] = lineState{}
		c.lines[si*c.cfg.Ways+w] = 0
		if st.dirty {
			c.stats.Writebacks++
		}
		return Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true}
	}
	return Eviction{}
}

// SetDemandWays narrows or widens the demand-visible associativity (the LLC
// calls this when metadata ways are allocated or released). Shrinking evicts
// every line in the ways being removed and returns them, dirty lines first
// requiring writeback by the caller.
func (c *Cache) SetDemandWays(n int) []Eviction {
	if n < 0 {
		n = 0
	}
	if n > c.cfg.Ways {
		n = c.cfg.Ways
	}
	var evs []Eviction
	if n < c.demandWays {
		for si := 0; si < c.cfg.Sets(); si++ {
			set := c.set(si)
			for w := n; w < c.demandWays; w++ {
				st := &set[w]
				// lines, not st.valid, is authoritative (sparse Reset).
				if c.lines[si*c.cfg.Ways+w] != 0 {
					evs = append(evs, Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true})
					if st.dirty {
						c.stats.Writebacks++
					}
					*st = lineState{}
					c.lines[si*c.cfg.Ways+w] = 0
				}
			}
		}
	}
	c.demandWays = n
	return evs
}

// Occupancy returns the number of valid demand-visible lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for si := 0; si < c.cfg.Sets(); si++ {
		base := si * c.cfg.Ways
		for w := 0; w < c.demandWays; w++ {
			if c.lines[base+w] != 0 {
				n++
			}
		}
	}
	return n
}
