package cache

import (
	"fmt"

	"prophet/internal/mem"
)

// Config describes one cache level.
type Config struct {
	// Name labels the cache in stats output ("L1D", "L2", "L3").
	Name string
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// HitLatency is the access latency in cycles.
	HitLatency uint64
	// MSHRs is the number of outstanding-miss registers (consumed by the
	// core/hierarchy model, recorded here for reporting).
	MSHRs int
	// Policy selects the replacement policy.
	Policy Policy
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * mem.LineBytes) }

// Validate reports configuration errors (non-power-of-two sets, zero sizes).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*mem.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %s: size %d not divisible into %d ways of 64B lines", c.Name, c.SizeBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// lineState is the per-way tag state.
type lineState struct {
	line     mem.Line
	valid    bool
	dirty    bool
	prefetch bool     // filled by a prefetch and not yet referenced by demand
	trigger  mem.Addr // PC whose prefetch filled the line (if prefetch)
	ready    uint64   // cycle at which the fill completes
}

// Eviction describes a line displaced by Insert or Resize.
type Eviction struct {
	Line     mem.Line
	Dirty    bool
	Prefetch bool     // evicted while still unreferenced by demand
	Trigger  mem.Addr // prefetch trigger PC, when Prefetch
	Valid    bool     // false when no line was displaced
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Fills      uint64
	Writebacks uint64
}

// Cache is one level of the hierarchy. The zero value is not usable; use New.
//
// The demand-visible portion of the cache may be narrowed with SetDemandWays
// (used by the LLC when the temporal prefetcher's metadata table claims ways).
type Cache struct {
	cfg        Config
	sets       [][]lineState
	repl       []replacer
	setMask    uint64
	demandWays int
	clock      uint64 // logical access counter for LRU ordering
	stats      Stats
}

// New builds a cache from cfg. It panics on invalid configurations, which are
// programmer errors (configs are static).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       make([][]lineState, sets),
		repl:       make([]replacer, sets),
		setMask:    uint64(sets - 1),
		demandWays: cfg.Ways,
	}
	for i := range c.sets {
		c.sets[i] = make([]lineState, cfg.Ways)
		c.repl[i] = newReplacer(cfg.Policy, cfg.Ways)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// DemandWays returns the associativity currently visible to demand fills.
func (c *Cache) DemandWays() int { return c.demandWays }

func (c *Cache) setIndex(l mem.Line) int { return int(uint64(l) & c.setMask) }

// Lookup probes for a line without changing replacement state.
// It returns the fill-ready cycle for timeliness accounting.
func (c *Cache) Lookup(l mem.Line) (ready uint64, hit bool) {
	set := c.sets[c.setIndex(l)]
	for w := 0; w < c.demandWays; w++ {
		if set[w].valid && set[w].line == l {
			return set[w].ready, true
		}
	}
	return 0, false
}

// AccessResult reports what a demand access found.
type AccessResult struct {
	Hit bool
	// Ready is the cycle the line's data is available (fills in flight
	// make this later than the access cycle).
	Ready uint64
	// WasPrefetch is true when this demand access is the first touch of a
	// prefetched line — i.e. the prefetch was useful.
	WasPrefetch bool
	// Trigger is the PC whose prefetch brought the line in (valid only
	// when WasPrefetch).
	Trigger mem.Addr
}

// Access performs a demand access at cycle now. On a hit it updates recency,
// dirtiness and the prefetch-usefulness bookkeeping. On a miss the caller is
// responsible for filling the line (via Insert) after fetching it from the
// next level.
func (c *Cache) Access(l mem.Line, now uint64, write bool) AccessResult {
	c.clock++
	si := c.setIndex(l)
	set := c.sets[si]
	for w := 0; w < c.demandWays; w++ {
		st := &set[w]
		if st.valid && st.line == l {
			c.stats.Hits++
			c.repl[si].touch(w, c.clock)
			res := AccessResult{Hit: true, Ready: st.ready}
			if st.prefetch {
				res.WasPrefetch = true
				res.Trigger = st.trigger
				st.prefetch = false
			}
			if write {
				st.dirty = true
			}
			return res
		}
	}
	c.stats.Misses++
	return AccessResult{}
}

// Insert fills line l, choosing a victim within the demand-visible ways.
// ready is the cycle the fill data arrives; prefetch marks prefetch fills and
// trigger records the requesting PC. The displaced line, if any, is returned
// so the caller can write it back or notify prefetch-accuracy bookkeeping.
func (c *Cache) Insert(l mem.Line, now, ready uint64, dirty, prefetch bool, trigger mem.Addr) Eviction {
	c.clock++
	si := c.setIndex(l)
	set := c.sets[si]
	// Refill of a line already present (e.g. prefetch racing demand):
	// update in place, never duplicate tags.
	for w := 0; w < c.demandWays; w++ {
		if set[w].valid && set[w].line == l {
			st := &set[w]
			if ready < st.ready {
				st.ready = ready
			}
			st.dirty = st.dirty || dirty
			return Eviction{}
		}
	}
	// Free way?
	victim := -1
	for w := 0; w < c.demandWays; w++ {
		if !set[w].valid {
			victim = w
			break
		}
	}
	var ev Eviction
	if victim < 0 {
		victim = c.repl[si].victim(c.demandWays)
		st := set[victim]
		ev = Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true}
		if st.dirty {
			c.stats.Writebacks++
		}
	}
	set[victim] = lineState{line: l, valid: true, dirty: dirty, prefetch: prefetch, trigger: trigger, ready: ready}
	c.repl[si].insert(victim, c.clock)
	c.stats.Fills++
	return ev
}

// Invalidate removes a line if present, returning its eviction record
// (used by exclusive-ish LLC handling and by tests).
func (c *Cache) Invalidate(l mem.Line) Eviction {
	si := c.setIndex(l)
	set := c.sets[si]
	for w := range set {
		if set[w].valid && set[w].line == l {
			st := set[w]
			set[w] = lineState{}
			if st.dirty {
				c.stats.Writebacks++
			}
			return Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true}
		}
	}
	return Eviction{}
}

// SetDemandWays narrows or widens the demand-visible associativity (the LLC
// calls this when metadata ways are allocated or released). Shrinking evicts
// every line in the ways being removed and returns them, dirty lines first
// requiring writeback by the caller.
func (c *Cache) SetDemandWays(n int) []Eviction {
	if n < 0 {
		n = 0
	}
	if n > c.cfg.Ways {
		n = c.cfg.Ways
	}
	var evs []Eviction
	if n < c.demandWays {
		for si := range c.sets {
			for w := n; w < c.demandWays; w++ {
				st := &c.sets[si][w]
				if st.valid {
					evs = append(evs, Eviction{Line: st.line, Dirty: st.dirty, Prefetch: st.prefetch, Trigger: st.trigger, Valid: true})
					if st.dirty {
						c.stats.Writebacks++
					}
					*st = lineState{}
				}
			}
		}
	}
	c.demandWays = n
	return evs
}

// Occupancy returns the number of valid demand-visible lines (for tests).
func (c *Cache) Occupancy() int {
	n := 0
	for si := range c.sets {
		for w := 0; w < c.demandWays; w++ {
			if c.sets[si][w].valid {
				n++
			}
		}
	}
	return n
}
