package cache

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
)

func small(policy Policy) Config {
	return Config{
		Name:       "test",
		SizeBytes:  4 * 4 * mem.LineBytes, // 4 sets x 4 ways
		Ways:       4,
		HitLatency: 2,
		MSHRs:      8,
		Policy:     policy,
	}
}

func TestConfigValidate(t *testing.T) {
	good := small(LRU)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.SizeBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero size accepted")
	}
	bad = good
	bad.SizeBytes = 3 * 4 * mem.LineBytes // 3 sets: not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	bad = good
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestConfigSets(t *testing.T) {
	cfg := Config{SizeBytes: 2 << 20, Ways: 16}
	if got := cfg.Sets(); got != 2048 {
		t.Fatalf("2MB/16-way sets = %d, want 2048", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c := New(small(LRU))
	l := mem.Line(100)
	if res := c.Access(l, 1, false); res.Hit {
		t.Fatal("cold access hit")
	}
	c.Insert(l, 1, 10, false, false, 0)
	res := c.Access(l, 2, false)
	if !res.Hit {
		t.Fatal("access after insert missed")
	}
	if res.Ready != 10 {
		t.Fatalf("Ready = %d, want 10 (fill in flight)", res.Ready)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New(small(LRU))
	// Lines mapping to set 0 in a 4-set cache: multiples of 4.
	lines := []mem.Line{0, 4, 8, 12}
	for i, l := range lines {
		c.Access(l, uint64(i), false)
		c.Insert(l, uint64(i), uint64(i), false, false, 0)
	}
	// Touch line 0 so line 4 becomes LRU.
	c.Access(0, 100, false)
	ev := c.Insert(16, 101, 101, false, false, 0)
	if !ev.Valid || ev.Line != 4 {
		t.Fatalf("evicted %+v, want line 4", ev)
	}
}

func TestPLRUVictimIsNotMRU(t *testing.T) {
	c := New(small(PLRU))
	lines := []mem.Line{0, 4, 8, 12}
	for i, l := range lines {
		c.Insert(l, uint64(i), uint64(i), false, false, 0)
	}
	c.Access(12, 50, false) // 12 is MRU
	ev := c.Insert(16, 51, 51, false, false, 0)
	if !ev.Valid {
		t.Fatal("expected an eviction from a full set")
	}
	if ev.Line == 12 {
		t.Fatal("PLRU evicted the MRU line")
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	c := New(small(SRRIP))
	lines := []mem.Line{0, 4, 8, 12}
	for i, l := range lines {
		c.Insert(l, uint64(i), uint64(i), false, false, 0)
	}
	// Promote 0 and 4 via hits; victim should be 8 or 12.
	c.Access(0, 20, false)
	c.Access(4, 21, false)
	ev := c.Insert(16, 22, 22, false, false, 0)
	if !ev.Valid || (ev.Line != 8 && ev.Line != 12) {
		t.Fatalf("SRRIP evicted %+v, want line 8 or 12", ev)
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(small(LRU))
	c.Insert(0, 0, 0, false, false, 0)
	c.Access(0, 1, true) // dirty it
	for i, l := range []mem.Line{4, 8, 12} {
		c.Insert(l, uint64(i+2), uint64(i+2), false, false, 0)
	}
	ev := c.Insert(16, 10, 10, false, false, 0)
	if !ev.Valid || ev.Line != 0 || !ev.Dirty {
		t.Fatalf("eviction %+v, want dirty line 0", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestPrefetchUsefulBookkeeping(t *testing.T) {
	c := New(small(LRU))
	c.Insert(5, 0, 0, false, true, 0x400100)
	res := c.Access(5, 1, false)
	if !res.Hit || !res.WasPrefetch || res.Trigger != 0x400100 {
		t.Fatalf("first demand touch: %+v", res)
	}
	// Second touch must not report prefetch again.
	res = c.Access(5, 2, false)
	if !res.Hit || res.WasPrefetch {
		t.Fatalf("second touch reported WasPrefetch: %+v", res)
	}
}

func TestPrefetchEvictedUnused(t *testing.T) {
	c := New(small(LRU))
	c.Insert(0, 0, 0, false, true, 0x400200)
	for i, l := range []mem.Line{4, 8, 12} {
		c.Insert(l, uint64(i+1), uint64(i+1), false, false, 0)
	}
	ev := c.Insert(16, 10, 10, false, false, 0)
	if !ev.Valid || ev.Line != 0 || !ev.Prefetch || ev.Trigger != 0x400200 {
		t.Fatalf("eviction %+v, want unused prefetch of line 0", ev)
	}
}

func TestInsertRefillDoesNotDuplicate(t *testing.T) {
	c := New(small(LRU))
	c.Insert(0, 0, 100, false, false, 0)
	ev := c.Insert(0, 1, 50, true, false, 0)
	if ev.Valid {
		t.Fatalf("refill evicted %+v", ev)
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d after refill, want 1", c.Occupancy())
	}
	res := c.Access(0, 2, false)
	if res.Ready != 50 {
		t.Fatalf("refill should keep earlier ready cycle, got %d", res.Ready)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(small(LRU))
	c.Insert(0, 0, 0, false, false, 0)
	c.Access(0, 1, true)
	ev := c.Invalidate(0)
	if !ev.Valid || !ev.Dirty {
		t.Fatalf("Invalidate returned %+v", ev)
	}
	if _, hit := c.Lookup(0); hit {
		t.Fatal("line still present after Invalidate")
	}
	if ev2 := c.Invalidate(0); ev2.Valid {
		t.Fatal("second Invalidate reported a line")
	}
}

func TestSetDemandWaysShrinkEvicts(t *testing.T) {
	c := New(small(LRU))
	for s := 0; s < 4; s++ {
		for w := 0; w < 4; w++ {
			c.Insert(mem.Line(s+4*w), uint64(w), uint64(w), false, false, 0)
		}
	}
	if c.Occupancy() != 16 {
		t.Fatalf("occupancy = %d, want 16", c.Occupancy())
	}
	evs := c.SetDemandWays(2)
	if len(evs) != 8 {
		t.Fatalf("shrinking 4->2 ways evicted %d lines, want 8", len(evs))
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy after shrink = %d, want 8", c.Occupancy())
	}
	if c.DemandWays() != 2 {
		t.Fatalf("DemandWays = %d, want 2", c.DemandWays())
	}
	// Growing back exposes empty ways without resurrecting lines.
	if evs := c.SetDemandWays(4); len(evs) != 0 {
		t.Fatalf("growing evicted %d lines", len(evs))
	}
	if c.Occupancy() != 8 {
		t.Fatalf("occupancy after grow = %d, want 8", c.Occupancy())
	}
}

func TestSetDemandWaysClamps(t *testing.T) {
	c := New(small(LRU))
	c.SetDemandWays(-3)
	if c.DemandWays() != 0 {
		t.Fatalf("DemandWays = %d, want 0", c.DemandWays())
	}
	c.SetDemandWays(99)
	if c.DemandWays() != 4 {
		t.Fatalf("DemandWays = %d, want 4 (config max)", c.DemandWays())
	}
}

func TestLookupDoesNotChangeState(t *testing.T) {
	c := New(small(LRU))
	c.Insert(0, 0, 7, false, true, 1)
	if _, hit := c.Lookup(0); !hit {
		t.Fatal("Lookup missed inserted line")
	}
	// Prefetch bit must survive Lookup (unlike Access).
	res := c.Access(0, 1, false)
	if !res.WasPrefetch {
		t.Fatal("Lookup consumed the prefetch bit")
	}
}

// Property: after arbitrary operations the cache never holds duplicate tags
// and occupancy never exceeds capacity.
func TestCacheInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mem.NewPRNG(seed)
		c := New(small(Policy(seed % 3)))
		for i := 0; i < 2000; i++ {
			l := mem.Line(rng.Intn(64))
			switch rng.Intn(4) {
			case 0:
				c.Access(l, uint64(i), rng.Intn(2) == 0)
			case 1:
				c.Insert(l, uint64(i), uint64(i), false, rng.Intn(2) == 0, 0)
			case 2:
				c.Invalidate(l)
			case 3:
				c.Lookup(l)
			}
		}
		if c.Occupancy() > 16 {
			return false
		}
		// Scan for duplicate tags among valid demand ways.
		seen := map[mem.Line]bool{}
		for si := 0; si < c.cfg.Sets(); si++ {
			for w := 0; w < c.demandWays; w++ {
				st := c.set(si)[w]
				if st.valid {
					if seen[st.line] {
						return false
					}
					seen[st.line] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || PLRU.String() != "PLRU" || SRRIP.String() != "SRRIP" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func TestPLRUNonPow2Fallback(t *testing.T) {
	// 8 sets x 3 ways exercises the CLOCK fallback path.
	cfg := Config{Name: "np2", SizeBytes: 8 * 3 * mem.LineBytes, Ways: 3, HitLatency: 1, Policy: PLRU}
	c := New(cfg)
	for i := 0; i < 200; i++ {
		l := mem.Line(i % 24)
		if res := c.Access(l, uint64(i), false); !res.Hit {
			c.Insert(l, uint64(i), uint64(i), false, false, 0)
		}
	}
	if c.Occupancy() > 24 {
		t.Fatalf("occupancy %d exceeds capacity", c.Occupancy())
	}
}
