package pcapture_test

import (
	"fmt"
	"os"

	"prophet/internal/pcapture"
)

// Example captures one CPU profile window and persists it as a named,
// timestamped .pprof file — the building block of the PGO loop described in
// docs/PROFILING.md.
func Example() {
	dir, err := os.MkdirTemp("", "profiles")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	c := pcapture.New(pcapture.Options{Dir: dir})

	// Open a window, run the workload to profile, close the window.
	if err := c.Start("sweep-4x4"); err != nil {
		fmt.Println(err)
		return
	}
	// ... the code to profile runs here ...
	capture, err := c.Stop()
	if err != nil {
		fmt.Println(err)
		return
	}

	// The capture carries the raw pprof bytes; with a directory configured
	// it was also persisted under a collision-free name.
	fmt.Println("window:", capture.Name)
	fmt.Println("persisted:", capture.Path != "")

	// A second Start while a window is open is refused.
	if err := c.Start("outer"); err != nil {
		fmt.Println(err)
		return
	}
	err = c.Start("inner")
	fmt.Println("double start refused:", err != nil)
	if _, _, err := c.Close(); err != nil { // emit the still-open window
		fmt.Println(err)
		return
	}

	// Merging the captured profile with itself doubles its CPU totals —
	// the same call cmd/pgo uses to fold a directory of captures into
	// default.pgo.
	if _, err := pcapture.Merge(capture.Data, capture.Data); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("merged: true")

	// Output:
	// window: sweep-4x4
	// persisted: true
	// double start refused: true
	// merged: true
}
