package pcapture

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
	"time"
)

// buildProfile assembles a small synthetic CPU profile through the encoder,
// so codec tests exercise exactly the bytes the merger emits.
type buildSample struct {
	stack  []uint64 // location IDs, leaf first
	values []int64
	labels []protoLabel
}

func testProfile(t *testing.T, samples []buildSample, mutate func(*profileData)) []byte {
	t.Helper()
	p := &profileData{
		// 0:"" 1:samples 2:count 3:cpu 4:nanoseconds 5:main.hot 6:main.go
		// 7:main.cold 8:prophetbench 9:abc123
		stringTable: []string{"", "samples", "count", "cpu", "nanoseconds",
			"main.hot", "main.go", "main.cold", "prophetbench", "abc123"},
		sampleType:    []valueType{{1, 2}, {3, 4}},
		periodType:    valueType{3, 4},
		period:        10_000_000,
		timeNanos:     1_000,
		durationNanos: int64(time.Second),
		mapping: []protoMapping{
			{id: 1, memoryStart: 0x400000, memoryLimit: 0x500000, filename: 8, buildID: 9, hasFunctions: true},
		},
		function: []protoFunction{
			{id: 1, name: 5, systemName: 5, filename: 6, startLine: 10},
			{id: 2, name: 7, systemName: 7, filename: 6, startLine: 90},
		},
		location: []protoLocation{
			{id: 1, mappingID: 1, address: 0x401000, line: []protoLine{{functionID: 1, line: 12}}},
			{id: 2, mappingID: 1, address: 0x402000, line: []protoLine{{functionID: 2, line: 95}}},
		},
	}
	for _, s := range samples {
		p.sample = append(p.sample, protoSample{locationID: s.stack, value: s.values, label: s.labels})
	}
	if mutate != nil {
		mutate(p)
	}
	data, err := encodeProfile(p)
	if err != nil {
		t.Fatalf("encodeProfile: %v", err)
	}
	return data
}

func TestCodecRoundTrip(t *testing.T) {
	raw := testProfile(t, []buildSample{
		{stack: []uint64{1, 2}, values: []int64{3, 30_000_000},
			labels: []protoLabel{{key: 1, str: 3}}},
		{stack: []uint64{2}, values: []int64{1, 10_000_000}},
	}, nil)

	p, err := parseProfile(raw)
	if err != nil {
		t.Fatalf("parseProfile: %v", err)
	}
	if got := len(p.sample); got != 2 {
		t.Fatalf("samples = %d, want 2", got)
	}
	if got := p.sample[0].locationID; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("sample 0 stack = %v, want [1 2]", got)
	}
	if got := p.sample[0].value; got[0] != 3 || got[1] != 30_000_000 {
		t.Errorf("sample 0 values = %v", got)
	}
	if len(p.sample[0].label) != 1 || p.sample[0].label[0].key != 1 || p.sample[0].label[0].str != 3 {
		t.Errorf("sample 0 labels = %+v", p.sample[0].label)
	}
	if p.period != 10_000_000 || p.durationNanos != int64(time.Second) || p.timeNanos != 1_000 {
		t.Errorf("scalars: period=%d duration=%d time=%d", p.period, p.durationNanos, p.timeNanos)
	}
	if len(p.mapping) != 1 || !p.mapping[0].hasFunctions || p.mapping[0].memoryLimit != 0x500000 {
		t.Errorf("mapping = %+v", p.mapping)
	}
	if len(p.function) != 2 || p.function[1].startLine != 90 {
		t.Errorf("functions = %+v", p.function)
	}
	if len(p.location) != 2 || p.location[1].line[0].line != 95 {
		t.Errorf("locations = %+v", p.location)
	}

	// A second round trip must be byte-identical: the codec is canonical.
	again, err := encodeProfile(p)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	p2, err := parseProfile(again)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	third, err := encodeProfile(p2)
	if err != nil {
		t.Fatalf("third encode: %v", err)
	}
	if !bytes.Equal(again, third) {
		t.Error("encode→parse→encode is not a fixed point")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":            {},
		"truncated varint": {0x80, 0x80},
		"truncated bytes":  {0x0a, 0xff, 0x01},
		"bad gzip":         {0x1f, 0x8b, 0x00, 0x01},
	}
	for name, data := range cases {
		if _, err := parseProfile(data); err == nil {
			t.Errorf("%s: parseProfile accepted garbage", name)
		}
	}
}

func TestParseSkipsUnknownFields(t *testing.T) {
	raw := testProfile(t, []buildSample{{stack: []uint64{1}, values: []int64{1, 5}}}, nil)
	// Decompress, append an unknown field (100, varint) and a fixed64 field
	// (101), re-wrap; the parser must skip both.
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if _, err := plain.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	var w wireWriter
	w.b = plain.Bytes()
	w.varintField(100, 42)
	w.tag(101, wireFixed64)
	w.b = append(w.b, 1, 2, 3, 4, 5, 6, 7, 8)

	p, err := parseProfile(w.b) // raw protobuf path, no gzip
	if err != nil {
		t.Fatalf("parseProfile with unknown fields: %v", err)
	}
	if len(p.sample) != 1 {
		t.Errorf("samples = %d, want 1", len(p.sample))
	}
}

func TestMergeSumsAndDedupes(t *testing.T) {
	a := testProfile(t, []buildSample{
		{stack: []uint64{1, 2}, values: []int64{3, 30}},
		{stack: []uint64{2}, values: []int64{1, 10}},
	}, nil)
	b := testProfile(t, []buildSample{
		{stack: []uint64{1, 2}, values: []int64{2, 20}}, // same stack as a's first
		{stack: []uint64{1}, values: []int64{5, 50}},    // new stack
	}, func(p *profileData) { p.timeNanos = 500; p.period = 20_000_000 })

	merged, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	p, err := parseProfile(merged)
	if err != nil {
		t.Fatalf("parse merged: %v", err)
	}

	// Symbol tables dedupe: same two functions, one mapping, two locations.
	if len(p.function) != 2 || len(p.mapping) != 1 || len(p.location) != 2 {
		t.Errorf("tables: %d functions, %d mappings, %d locations; want 2/1/2",
			len(p.function), len(p.mapping), len(p.location))
	}
	// Three distinct stacks; the shared one sums 3+2 / 30+20.
	if len(p.sample) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.sample))
	}
	var summed *protoSample
	for i := range p.sample {
		if len(p.sample[i].locationID) == 2 {
			summed = &p.sample[i]
		}
	}
	if summed == nil {
		t.Fatal("no two-frame sample in merged profile")
	}
	if summed.value[0] != 5 || summed.value[1] != 50 {
		t.Errorf("summed values = %v, want [5 50]", summed.value)
	}
	// Scalars: durations add, earliest time, coarsest period.
	if p.durationNanos != 2*int64(time.Second) {
		t.Errorf("duration = %d, want %d", p.durationNanos, 2*int64(time.Second))
	}
	if p.timeNanos != 500 {
		t.Errorf("timeNanos = %d, want 500", p.timeNanos)
	}
	if p.period != 20_000_000 {
		t.Errorf("period = %d, want 20000000", p.period)
	}

	info, err := ReadInfo(merged)
	if err != nil {
		t.Fatalf("ReadInfo: %v", err)
	}
	if info.Samples != 3 || info.TotalCPU != 110 {
		t.Errorf("info = %+v, want 3 samples, 110ns CPU", info)
	}
	if len(info.SampleTypes) != 2 || info.SampleTypes[1] != "cpu/nanoseconds" {
		t.Errorf("sample types = %v", info.SampleTypes)
	}
}

func TestMergeDistinguishesLabels(t *testing.T) {
	a := testProfile(t, []buildSample{
		{stack: []uint64{1}, values: []int64{1, 10}, labels: []protoLabel{{key: 1, str: 3}}},
	}, nil)
	b := testProfile(t, []buildSample{
		{stack: []uint64{1}, values: []int64{1, 10}}, // same stack, no label
	}, nil)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	p, err := parseProfile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sample) != 2 {
		t.Errorf("samples = %d, want 2 (labels must not collapse)", len(p.sample))
	}
}

func TestMergeRejectsIncompatibleShapes(t *testing.T) {
	cpu := testProfile(t, []buildSample{{stack: []uint64{1}, values: []int64{1, 1}}}, nil)
	heap := testProfile(t, []buildSample{{stack: []uint64{1}, values: []int64{1, 1}}},
		func(p *profileData) {
			p.stringTable = append(p.stringTable, "alloc_space", "bytes")
			n := int64(len(p.stringTable))
			p.sampleType = []valueType{{1, 2}, {n - 2, n - 1}}
		})
	if _, err := Merge(cpu, heap); err == nil {
		t.Fatal("Merge accepted profiles with different sample types")
	} else if !strings.Contains(err.Error(), "not mergeable") {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := Merge(); err == nil {
		t.Fatal("Merge accepted zero profiles")
	}
}

func TestMergeSingleIsCanonical(t *testing.T) {
	a := testProfile(t, []buildSample{
		{stack: []uint64{1, 2}, values: []int64{3, 30}},
		{stack: []uint64{1, 2}, values: []int64{2, 20}}, // duplicate stack within one profile
	}, nil)
	merged, err := Merge(a)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	p, err := parseProfile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.sample) != 1 || p.sample[0].value[0] != 5 {
		t.Errorf("single-profile merge did not canonicalize duplicates: %+v", p.sample)
	}
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	a := testProfile(t, []buildSample{{stack: []uint64{1}, values: []int64{1, 10}}}, nil)
	b := testProfile(t, []buildSample{{stack: []uint64{2}, values: []int64{2, 20}}}, nil)
	pa, pb := dir+"/a.pprof", dir+"/b.pprof"
	writeFile(t, pa, a)
	writeFile(t, pb, b)

	merged, err := MergeFiles(pa, pb)
	if err != nil {
		t.Fatalf("MergeFiles: %v", err)
	}
	info, err := ReadInfo(merged)
	if err != nil {
		t.Fatal(err)
	}
	if info.Samples != 2 || info.TotalCPU != 30 {
		t.Errorf("info = %+v", info)
	}

	if _, err := MergeFiles(dir + "/missing.pprof"); err == nil {
		t.Error("MergeFiles accepted a missing file")
	}
}
