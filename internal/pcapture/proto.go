package pcapture

// Low-level protobuf wire codec for the pprof profile.proto schema. The
// merge path cannot depend on the pprof tool or its libraries (the module is
// dependency-free), and the schema is small and frozen, so the fifteen
// Profile fields are decoded and re-encoded directly from the wire format.
// Unknown fields are skipped on decode; every field the current schema
// defines is modeled, so round-trips are lossless for profiles runtime/pprof
// emits.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire types (protobuf encoding spec).
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

var errVarintOverflow = errors.New("pcapture: varint overflows 64 bits")

// wireReader is a cursor over one serialized message.
type wireReader struct {
	data []byte
	pos  int
}

func (r *wireReader) more() bool { return r.pos < len(r.data) }

func (r *wireReader) varint() (uint64, error) {
	var v uint64
	for i := 0; i < 10; i++ {
		if r.pos >= len(r.data) {
			return 0, io.ErrUnexpectedEOF
		}
		b := r.data[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << (7 * i)
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errVarintOverflow
}

// tag reads the next field number and wire type.
func (r *wireReader) tag() (field int, wire int, err error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads a length-delimited payload.
func (r *wireReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.data)-r.pos) {
		return nil, io.ErrUnexpectedEOF
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// skip discards one field of the given wire type.
func (r *wireReader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.varint()
		return err
	case wireFixed64:
		if len(r.data)-r.pos < 8 {
			return io.ErrUnexpectedEOF
		}
		r.pos += 8
		return nil
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireFixed32:
		if len(r.data)-r.pos < 4 {
			return io.ErrUnexpectedEOF
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("pcapture: unsupported wire type %d", wire)
	}
}

// uint64s appends one-or-packed repeated varint values: pprof writers emit
// repeated scalars packed (proto3 default), but unpacked single values are
// legal wire format too, so both are accepted.
func (r *wireReader) uint64s(wire int, dst []uint64) ([]uint64, error) {
	if wire == wireVarint {
		v, err := r.varint()
		if err != nil {
			return dst, err
		}
		return append(dst, v), nil
	}
	if wire != wireBytes {
		return dst, fmt.Errorf("pcapture: repeated varint field has wire type %d", wire)
	}
	body, err := r.bytes()
	if err != nil {
		return dst, err
	}
	sub := wireReader{data: body}
	for sub.more() {
		v, err := sub.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// int64s is uint64s for int64 fields (two's-complement varints).
func (r *wireReader) int64s(wire int, dst []int64) ([]int64, error) {
	tmp, err := r.uint64s(wire, nil)
	if err != nil {
		return dst, err
	}
	for _, v := range tmp {
		dst = append(dst, int64(v))
	}
	return dst, nil
}

// wireWriter builds a serialized message.
type wireWriter struct {
	b []byte
}

func (w *wireWriter) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

func (w *wireWriter) tag(field, wire int) { w.uvarint(uint64(field)<<3 | uint64(wire)) }

// varintField writes a varint-typed field, omitting proto3 zero defaults.
func (w *wireWriter) varintField(field int, v uint64) {
	if v == 0 {
		return
	}
	w.tag(field, wireVarint)
	w.uvarint(v)
}

func (w *wireWriter) int64Field(field int, v int64) { w.varintField(field, uint64(v)) }

func (w *wireWriter) boolField(field int, v bool) {
	if v {
		w.varintField(field, 1)
	}
}

// bytesField writes a length-delimited field (always, even when empty — an
// empty submessage is meaningful for repeated fields).
func (w *wireWriter) bytesField(field int, body []byte) {
	w.tag(field, wireBytes)
	w.uvarint(uint64(len(body)))
	w.b = append(w.b, body...)
}

// packedField writes repeated varints packed; empty slices are omitted.
func (w *wireWriter) packedField(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var sub wireWriter
	for _, v := range vs {
		sub.uvarint(v)
	}
	w.bytesField(field, sub.b)
}

func (w *wireWriter) packedInt64Field(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var sub wireWriter
	for _, v := range vs {
		sub.uvarint(uint64(v))
	}
	w.bytesField(field, sub.b)
}
