package pcapture

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// fakeOptions returns Options whose profiler seams write a fixed payload
// instead of driving runtime/pprof, plus a counter of live "profiles" so
// tests can assert the start/stop pairing.
func fakeOptions(dir string, payload string, now func() time.Time) (Options, *atomic.Int32) {
	var live atomic.Int32
	return Options{
		Dir: dir,
		Now: now,
		start: func(w io.Writer) error {
			live.Add(1)
			_, err := w.Write([]byte(payload))
			return err
		},
		stop: func() { live.Add(-1) },
	}, &live
}

func TestWindowLifecycle(t *testing.T) {
	dir := t.TempDir()
	clock := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	opts, live := fakeOptions(dir, "profile-bytes", func() time.Time { return clock })
	c := New(opts)

	if _, _, ok := c.Active(); ok {
		t.Fatal("fresh capturer reports an active window")
	}
	if err := c.Start("mcf prophet: 4x4!"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if live.Load() != 1 {
		t.Fatalf("profiler not started (live=%d)", live.Load())
	}
	name, since, ok := c.Active()
	if !ok || name != "mcf-prophet--4x4" || !since.Equal(clock) {
		t.Fatalf("Active = %q %v %v", name, since, ok)
	}

	clock = clock.Add(250 * time.Millisecond)
	cap, err := c.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if live.Load() != 0 {
		t.Fatalf("profiler not stopped (live=%d)", live.Load())
	}
	if string(cap.Data) != "profile-bytes" {
		t.Errorf("Data = %q", cap.Data)
	}
	if cap.Duration() != 250*time.Millisecond {
		t.Errorf("Duration = %v", cap.Duration())
	}
	// Naming: <sanitized name>-<UTC timestamp>-<seq>.pprof.
	wantName := "mcf-prophet--4x4-20260808T120000.250-001.pprof"
	if filepath.Base(cap.Path) != wantName {
		t.Errorf("Path base = %q, want %q", filepath.Base(cap.Path), wantName)
	}
	if got, err := os.ReadFile(cap.Path); err != nil || string(got) != "profile-bytes" {
		t.Errorf("persisted file: %q, %v", got, err)
	}

	// Sequence numbers advance across windows.
	if err := c.Start("next"); err != nil {
		t.Fatal(err)
	}
	cap2, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(cap2.Path, "-002.pprof") {
		t.Errorf("second capture path = %q, want -002 suffix", cap2.Path)
	}

	st := c.CaptureStats()
	if st.Captures != 2 || st.Active || st.LastPath != cap2.Path || st.Dir != dir {
		t.Errorf("CaptureStats = %+v", st)
	}
}

func TestDoubleStartRefused(t *testing.T) {
	opts, live := fakeOptions("", "x", nil)
	c := New(opts)
	if err := c.Start("one"); err != nil {
		t.Fatal(err)
	}
	err := c.Start("two")
	if !errors.Is(err, ErrActive) {
		t.Fatalf("second Start = %v, want ErrActive", err)
	}
	if !strings.Contains(err.Error(), `"one"`) {
		t.Errorf("error should name the active window: %v", err)
	}
	if live.Load() != 1 {
		t.Errorf("refused Start must not touch the profiler (live=%d)", live.Load())
	}
	if _, err := c.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStopIdleRefused(t *testing.T) {
	opts, _ := fakeOptions("", "x", nil)
	c := New(opts)
	if _, err := c.Stop(); !errors.Is(err, ErrIdle) {
		t.Fatalf("Stop on idle = %v, want ErrIdle", err)
	}
}

func TestMemoryOnlyCapture(t *testing.T) {
	opts, _ := fakeOptions("", "in-memory", nil) // no Dir
	c := New(opts)
	if err := c.Start(""); err != nil {
		t.Fatal(err)
	}
	cap, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if cap.Path != "" || string(cap.Data) != "in-memory" {
		t.Errorf("capture = %+v", cap)
	}
	if cap.Name != "capture" {
		t.Errorf("empty name should default to %q, got %q", "capture", cap.Name)
	}
}

func TestPersistFailureKeepsData(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "blocked")
	writeFile(t, dir, nil) // a file where the directory should be
	opts, _ := fakeOptions(dir, "precious", nil)
	c := New(opts)
	if err := c.Start("w"); err != nil {
		t.Fatal(err)
	}
	cap, err := c.Stop()
	if err == nil {
		t.Fatal("Stop should report the persistence failure")
	}
	if string(cap.Data) != "precious" {
		t.Errorf("Data lost on persist failure: %q", cap.Data)
	}
	// The window is closed despite the error: a new Start works.
	if err := c.Start("again"); err != nil {
		t.Fatalf("Start after failed persist: %v", err)
	}
}

func TestToggle(t *testing.T) {
	dir := t.TempDir()
	opts, live := fakeOptions(dir, "toggled", nil)
	c := New(opts)

	cap, started, err := c.Toggle("sig")
	if err != nil || !started || cap.Name != "" {
		t.Fatalf("first Toggle = %+v %v %v, want started", cap, started, err)
	}
	if live.Load() != 1 {
		t.Fatal("first Toggle did not start the profiler")
	}
	cap, started, err = c.Toggle("sig")
	if err != nil || started {
		t.Fatalf("second Toggle = %v %v, want a stop", started, err)
	}
	if cap.Path == "" || string(cap.Data) != "toggled" {
		t.Errorf("second Toggle capture = %+v", cap)
	}
	if live.Load() != 0 {
		t.Error("second Toggle did not stop the profiler")
	}
}

func TestCloseEmitsOpenWindow(t *testing.T) {
	dir := t.TempDir()
	opts, live := fakeOptions(dir, "shutdown-profile", nil)
	c := New(opts)

	// Idle Close is a no-op.
	if _, ok, err := c.Close(); ok || err != nil {
		t.Fatalf("idle Close = %v %v", ok, err)
	}

	if err := c.Start("lifetime"); err != nil {
		t.Fatal(err)
	}
	cap, ok, err := c.Close()
	if err != nil || !ok {
		t.Fatalf("Close = %v %v", ok, err)
	}
	if cap.Name != "lifetime" || cap.Path == "" {
		t.Errorf("Close capture = %+v", cap)
	}
	if got, err := os.ReadFile(cap.Path); err != nil || string(got) != "shutdown-profile" {
		t.Errorf("shutdown emit: %q, %v", got, err)
	}
	if live.Load() != 0 {
		t.Error("Close left the profiler running")
	}
}

func TestSignalTriggeredCapture(t *testing.T) {
	dir := t.TempDir()
	opts, _ := fakeOptions(dir, "signal-profile", nil)
	var logs atomic.Int32
	opts.Logf = func(string, ...any) { logs.Add(1) }
	c := New(opts)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.HandleSignals(ctx, syscall.SIGUSR1)

	raise := func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
			t.Fatal(err)
		}
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		for i := 0; i < 200; i++ {
			if cond() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	raise()
	waitFor(func() bool { _, _, ok := c.Active(); return ok }, "signal to open a window")
	if name, _, _ := c.Active(); name != "signal" {
		t.Errorf("window name = %q, want signal", name)
	}

	raise()
	waitFor(func() bool { return c.CaptureStats().Captures == 1 }, "signal to close the window")
	files, err := filepath.Glob(filepath.Join(dir, "signal-*.pprof"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted signal captures = %v, %v", files, err)
	}
	if got, _ := os.ReadFile(files[0]); string(got) != "signal-profile" {
		t.Errorf("signal capture content = %q", got)
	}
	if logs.Load() < 2 {
		t.Errorf("expected toggle log lines, got %d", logs.Load())
	}

	// HandleSignals with no signals is a no-op.
	c.HandleSignals(ctx)
}

// TestRealCPUProfile drives the real runtime/pprof profiler once and checks
// the captured bytes parse with this package's own codec — the two halves of
// the package validating each other.
func TestRealCPUProfile(t *testing.T) {
	dir := t.TempDir()
	c := New(Options{Dir: dir})
	if err := c.Start("real"); err != nil {
		t.Fatalf("Start (is another CPU profile active?): %v", err)
	}
	// Burn a little CPU so the window very likely has samples; the profile
	// is structurally valid either way.
	deadline := time.Now().Add(50 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x += x*31 + 7
	}
	_ = x
	cap, err := c.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if len(cap.Data) == 0 {
		t.Fatal("empty profile")
	}
	info, err := ReadInfo(cap.Data)
	if err != nil {
		t.Fatalf("ReadInfo on a real profile: %v", err)
	}
	want := []string{"samples/count", "cpu/nanoseconds"}
	if len(info.SampleTypes) != 2 || info.SampleTypes[0] != want[0] || info.SampleTypes[1] != want[1] {
		t.Errorf("sample types = %v, want %v", info.SampleTypes, want)
	}

	// And the capture merges with itself through the native merger.
	merged, err := Merge(cap.Data, cap.Data)
	if err != nil {
		t.Fatalf("Merge real profile: %v", err)
	}
	minfo, err := ReadInfo(merged)
	if err != nil {
		t.Fatalf("ReadInfo on merged: %v", err)
	}
	if minfo.TotalCPU != 2*info.TotalCPU {
		t.Errorf("merged TotalCPU = %v, want %v", minfo.TotalCPU, 2*info.TotalCPU)
	}
	if minfo.Duration != 2*info.Duration {
		t.Errorf("merged Duration = %v, want %v", minfo.Duration, 2*info.Duration)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"":                 "capture",
		"   ":              "capture",
		"../../etc/passwd": "etc-passwd",
		"mcf/prophet":      "mcf-prophet",
		"a b\tc":           "a-b-c",
		"ok-name_1.2":      "ok-name_1.2",
		"...":              "capture",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
	// Sanitized names must be safe as file names.
	re := regexp.MustCompile(`^[a-zA-Z0-9._-]+$`)
	for in := range cases {
		if got := sanitizeName(in); !re.MatchString(got) {
			t.Errorf("sanitizeName(%q) = %q contains unsafe characters", in, got)
		}
	}
}
