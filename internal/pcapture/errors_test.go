package pcapture

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"testing"
)

// gunzipRaw strips the gzip framing off an encoded profile so tests can
// corrupt the protobuf payload directly.
func gunzipRaw(t *testing.T, data []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestParseTruncationRobustness parses every prefix of a real encoded
// profile: no prefix may panic, and the codec must fail cleanly on the
// truncations that cut a field in half.
func TestParseTruncationRobustness(t *testing.T) {
	full := gunzipRaw(t, testProfile(t, []buildSample{
		{stack: []uint64{1, 2}, values: []int64{3, 30}, labels: []protoLabel{{key: 1, str: 3, num: 7, numUnit: 4}}},
	}, func(p *profileData) {
		p.comment = []int64{1}
		p.dropFrames = 5
		p.keepFrames = 7
		p.defaultSampleType = 1
		p.docURL = 6
		p.location[0].isFolded = true
		p.mapping[0].hasFilenames = true
		p.mapping[0].hasLineNumbers = true
		p.mapping[0].hasInlineFrames = true
	}))
	for i := 0; i < len(full); i++ {
		_, _ = parseProfile(full[:i]) // must not panic; errors are expected
	}
	if _, err := parseProfile(full); err != nil {
		t.Fatalf("full profile failed to parse: %v", err)
	}
}

// TestParseBitflipRobustness flips every byte of the raw payload once:
// parsing may fail or succeed, but must never panic.
func TestParseBitflipRobustness(t *testing.T) {
	full := gunzipRaw(t, testProfile(t, []buildSample{
		{stack: []uint64{1, 2}, values: []int64{3, 30}},
	}, nil))
	mut := make([]byte, len(full))
	for i := 0; i < len(full); i++ {
		copy(mut, full)
		mut[i] ^= 0xff
		_, _ = parseProfile(mut)
	}
}

// TestParseUnknownSubmessageFields plants unknown fields (varint, fixed32,
// fixed64, bytes) inside every submessage type; the parser must skip them
// and keep the known content.
func TestParseUnknownSubmessageFields(t *testing.T) {
	unknown := func(w *wireWriter) {
		w.varintField(90, 7)
		w.tag(91, wireFixed32)
		w.b = append(w.b, 1, 2, 3, 4)
		w.tag(92, wireFixed64)
		w.b = append(w.b, 1, 2, 3, 4, 5, 6, 7, 8)
		w.bytesField(93, []byte("junk"))
	}

	var vt wireWriter // ValueType{1, 2} + junk
	vt.int64Field(1, 1)
	vt.int64Field(2, 2)
	unknown(&vt)

	var lb wireWriter // Label{key:1, str:3} + junk
	lb.int64Field(1, 1)
	lb.int64Field(2, 3)
	unknown(&lb)

	var sm wireWriter // Sample{stack [1], values [3 30], one label} + junk
	sm.packedField(1, []uint64{1})
	sm.packedInt64Field(2, []int64{3, 30})
	sm.bytesField(3, lb.b)
	unknown(&sm)

	var mp wireWriter // Mapping{id 1} + junk
	mp.varintField(1, 1)
	unknown(&mp)

	var ln wireWriter // Line{function 1, line 12, column 3} + junk
	ln.varintField(1, 1)
	ln.int64Field(2, 12)
	ln.int64Field(3, 3)
	unknown(&ln)

	var loc wireWriter // Location{id 1, mapping 1, addr, line, folded} + junk
	loc.varintField(1, 1)
	loc.varintField(2, 1)
	loc.varintField(3, 0x401000)
	loc.bytesField(4, ln.b)
	loc.boolField(5, true)
	unknown(&loc)

	var fn wireWriter // Function{id 1, name 5, ...} + junk
	fn.varintField(1, 1)
	fn.int64Field(2, 5)
	fn.int64Field(3, 5)
	fn.int64Field(4, 6)
	fn.int64Field(5, 10)
	unknown(&fn)

	var p wireWriter
	p.bytesField(1, vt.b)  // sample_type
	p.bytesField(11, vt.b) // period_type
	p.bytesField(2, sm.b)
	p.bytesField(3, mp.b)
	p.bytesField(4, loc.b)
	p.bytesField(5, fn.b)
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds", "main.hot", "main.go"} {
		p.bytesField(6, []byte(s))
	}

	prof, err := parseProfile(p.b)
	if err != nil {
		t.Fatalf("parseProfile: %v", err)
	}
	if len(prof.sample) != 1 || len(prof.sample[0].label) != 1 {
		t.Fatalf("sample not preserved: %+v", prof.sample)
	}
	if prof.sample[0].label[0].str != 3 {
		t.Errorf("label = %+v", prof.sample[0].label[0])
	}
	if len(prof.location) != 1 || !prof.location[0].isFolded || prof.location[0].line[0].line != 12 {
		t.Errorf("location = %+v", prof.location)
	}
	if len(prof.mapping) != 1 || prof.mapping[0].id != 1 {
		t.Errorf("mapping = %+v", prof.mapping)
	}
	if prof.function[0].startLine != 10 {
		t.Errorf("function = %+v", prof.function)
	}
}

func TestParseWrongWireTypes(t *testing.T) {
	// time_nanos (field 9) as a bytes field: parseInt64 must refuse.
	var p wireWriter
	p.bytesField(9, []byte("not a varint"))
	p.bytesField(6, []byte(""))
	if _, err := parseProfile(p.b); err == nil {
		t.Error("scalar field with bytes wire type accepted")
	}

	// Sample stack (repeated varint) as fixed64: uint64s must refuse.
	var sm wireWriter
	sm.tag(1, wireFixed64)
	sm.b = append(sm.b, 1, 2, 3, 4, 5, 6, 7, 8)
	var p2 wireWriter
	p2.bytesField(2, sm.b)
	p2.bytesField(6, []byte(""))
	if _, err := parseProfile(p2.b); err == nil {
		t.Error("repeated varint field with fixed64 wire type accepted")
	}

	// Unknown field with an invalid wire type (3 = group) errors.
	var p3 wireWriter
	p3.tag(99, 3)
	p3.bytesField(6, []byte(""))
	if _, err := parseProfile(p3.b); err == nil {
		t.Error("group wire type accepted")
	}
}

func TestMergeRejectsDanglingReferences(t *testing.T) {
	base := func() []byte {
		return testProfile(t, []buildSample{{stack: []uint64{1}, values: []int64{1, 10}}}, nil)
	}
	cases := map[string]func(*profileData){
		"sample references unknown location":   func(p *profileData) { p.sample[0].locationID = []uint64{99} },
		"location references unknown mapping":  func(p *profileData) { p.location[0].mappingID = 99 },
		"location references unknown function": func(p *profileData) { p.location[0].line[0].functionID = 99 },
		"sample value count mismatch":          func(p *profileData) { p.sample[0].value = []int64{1} },
		"function name index out of range":     func(p *profileData) { p.function[0].name = 99 },
		"mapping filename index out of range":  func(p *profileData) { p.mapping[0].filename = 99 },
		"label key index out of range": func(p *profileData) {
			p.sample[0].label = []protoLabel{{key: 99}}
		},
		"comment index out of range":     func(p *profileData) { p.comment = []int64{99} },
		"sample type index out of range": func(p *profileData) { p.sampleType[0].typ = 99 },
	}
	for name, corrupt := range cases {
		bad := testProfile(t, []buildSample{{stack: []uint64{1}, values: []int64{1, 10}}}, corrupt)
		if _, err := Merge(base(), bad); err == nil {
			t.Errorf("%s: Merge accepted the corrupt profile", name)
		}
		// As profile 0 the corrupt profile must fail too, not crash.
		if _, err := Merge(bad); err == nil && name != "comment index out of range" &&
			name != "label key index out of range" {
			// Shape errors surface immediately; reference errors surface in add.
			t.Logf("%s: single-profile merge unexpectedly succeeded", name)
		}
	}
}

func TestStartProfilerFailure(t *testing.T) {
	boom := errors.New("profiler busy")
	c := New(Options{start: func(io.Writer) error { return boom }, stop: func() {}})
	if err := c.Start("w"); !errors.Is(err, boom) {
		t.Fatalf("Start = %v, want wrapped profiler error", err)
	}
	// The failed Start must not leave a phantom window behind.
	if _, _, ok := c.Active(); ok {
		t.Error("failed Start left an active window")
	}
}

func TestReadInfoErrors(t *testing.T) {
	if _, err := ReadInfo([]byte{0x01, 0x02}); err == nil {
		t.Error("ReadInfo accepted garbage")
	}
	bad := testProfile(t, nil, func(p *profileData) { p.sampleType[0].unit = 99 })
	if _, err := ReadInfo(bad); err == nil {
		t.Error("ReadInfo accepted out-of-range sample type unit")
	}
}

func TestVarintOverflow(t *testing.T) {
	r := wireReader{data: []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}}
	if _, err := r.varint(); !errors.Is(err, errVarintOverflow) {
		t.Fatalf("varint = %v, want overflow", err)
	}
}
