package pcapture

// In-memory model of the pprof profile.proto Profile message, plus its
// parser and encoder. The model mirrors the schema field-for-field; indices
// into the string table stay indices (resolution happens in the merger,
// which is the only consumer that needs the strings themselves).

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"time"
)

// valueType is profile.proto ValueType: a (type, unit) pair of string-table
// indices, e.g. ("cpu", "nanoseconds").
type valueType struct {
	typ, unit int64
}

// protoLabel is profile.proto Label: key plus exactly one of a string value
// or a (num, numUnit) pair; key/str/numUnit are string-table indices.
type protoLabel struct {
	key, str     int64
	num, numUnit int64
}

// protoSample is profile.proto Sample: a call stack (leaf first) of location
// IDs and one value per profile sample type.
type protoSample struct {
	locationID []uint64
	value      []int64
	label      []protoLabel
}

// protoMapping is profile.proto Mapping.
type protoMapping struct {
	id                                   uint64
	memoryStart, memoryLimit, fileOffset uint64
	filename, buildID                    int64
	hasFunctions, hasFilenames           bool
	hasLineNumbers, hasInlineFrames      bool
}

// protoLine is profile.proto Line.
type protoLine struct {
	functionID   uint64
	line, column int64
}

// protoLocation is profile.proto Location.
type protoLocation struct {
	id        uint64
	mappingID uint64
	address   uint64
	line      []protoLine
	isFolded  bool
}

// protoFunction is profile.proto Function.
type protoFunction struct {
	id                         uint64
	name, systemName, filename int64
	startLine                  int64
}

// profileData is profile.proto Profile.
type profileData struct {
	sampleType        []valueType
	sample            []protoSample
	mapping           []protoMapping
	location          []protoLocation
	function          []protoFunction
	stringTable       []string
	dropFrames        int64
	keepFrames        int64
	timeNanos         int64
	durationNanos     int64
	periodType        valueType
	period            int64
	comment           []int64
	defaultSampleType int64
	docURL            int64
}

// str resolves a string-table index, erroring on out-of-range references so
// a corrupt profile fails loudly instead of aliasing strings.
func (p *profileData) str(i int64) (string, error) {
	if i < 0 || i >= int64(len(p.stringTable)) {
		return "", fmt.Errorf("pcapture: string index %d out of range (table has %d entries)", i, len(p.stringTable))
	}
	return p.stringTable[i], nil
}

// parseProfile decodes a pprof profile, transparently gunzipping (profiles
// from runtime/pprof are gzipped; raw protobuf is accepted too).
func parseProfile(data []byte) (*profileData, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pcapture: gunzip profile: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if cerr := zr.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("pcapture: gunzip profile: %w", err)
		}
		data = raw
	}
	p := &profileData{}
	r := wireReader{data: data}
	for r.more() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, fmt.Errorf("pcapture: parse profile: %w", err)
		}
		switch field {
		case 1: // sample_type
			vt, err := parseValueType(&r)
			if err != nil {
				return nil, err
			}
			p.sampleType = append(p.sampleType, vt)
		case 2: // sample
			s, err := parseSample(&r)
			if err != nil {
				return nil, err
			}
			p.sample = append(p.sample, s)
		case 3: // mapping
			m, err := parseMapping(&r)
			if err != nil {
				return nil, err
			}
			p.mapping = append(p.mapping, m)
		case 4: // location
			l, err := parseLocation(&r)
			if err != nil {
				return nil, err
			}
			p.location = append(p.location, l)
		case 5: // function
			f, err := parseFunction(&r)
			if err != nil {
				return nil, err
			}
			p.function = append(p.function, f)
		case 6: // string_table
			b, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("pcapture: parse string table: %w", err)
			}
			p.stringTable = append(p.stringTable, string(b))
		case 7:
			p.dropFrames, err = parseInt64(&r, wire)
		case 8:
			p.keepFrames, err = parseInt64(&r, wire)
		case 9:
			p.timeNanos, err = parseInt64(&r, wire)
		case 10:
			p.durationNanos, err = parseInt64(&r, wire)
		case 11:
			p.periodType, err = parseValueType(&r)
		case 12:
			p.period, err = parseInt64(&r, wire)
		case 13:
			p.comment, err = r.int64s(wire, p.comment)
		case 14:
			p.defaultSampleType, err = parseInt64(&r, wire)
		case 15:
			p.docURL, err = parseInt64(&r, wire)
		default:
			err = r.skip(wire)
		}
		if err != nil {
			return nil, fmt.Errorf("pcapture: parse profile field %d: %w", field, err)
		}
	}
	if len(p.stringTable) == 0 {
		return nil, fmt.Errorf("pcapture: not a pprof profile (empty string table)")
	}
	return p, nil
}

func parseInt64(r *wireReader, wire int) (int64, error) {
	if wire != wireVarint {
		return 0, fmt.Errorf("unexpected wire type %d", wire)
	}
	v, err := r.varint()
	return int64(v), err
}

func parseValueType(r *wireReader) (valueType, error) {
	body, err := r.bytes()
	if err != nil {
		return valueType{}, err
	}
	var vt valueType
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return vt, err
		}
		switch field {
		case 1:
			vt.typ, err = parseInt64(&sub, wire)
		case 2:
			vt.unit, err = parseInt64(&sub, wire)
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return vt, err
		}
	}
	return vt, nil
}

func parseSample(r *wireReader) (protoSample, error) {
	body, err := r.bytes()
	if err != nil {
		return protoSample{}, err
	}
	var s protoSample
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1:
			s.locationID, err = sub.uint64s(wire, s.locationID)
		case 2:
			s.value, err = sub.int64s(wire, s.value)
		case 3:
			var lb protoLabel
			lb, err = parseLabel(&sub)
			s.label = append(s.label, lb)
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func parseLabel(r *wireReader) (protoLabel, error) {
	body, err := r.bytes()
	if err != nil {
		return protoLabel{}, err
	}
	var lb protoLabel
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return lb, err
		}
		switch field {
		case 1:
			lb.key, err = parseInt64(&sub, wire)
		case 2:
			lb.str, err = parseInt64(&sub, wire)
		case 3:
			lb.num, err = parseInt64(&sub, wire)
		case 4:
			lb.numUnit, err = parseInt64(&sub, wire)
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return lb, err
		}
	}
	return lb, nil
}

func parseMapping(r *wireReader) (protoMapping, error) {
	body, err := r.bytes()
	if err != nil {
		return protoMapping{}, err
	}
	var m protoMapping
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return m, err
		}
		var v uint64
		switch field {
		case 1, 2, 3, 4, 7, 8, 9, 10:
			v, err = sub.varint()
		}
		if err != nil {
			return m, err
		}
		switch field {
		case 1:
			m.id = v
		case 2:
			m.memoryStart = v
		case 3:
			m.memoryLimit = v
		case 4:
			m.fileOffset = v
		case 5:
			m.filename, err = parseInt64(&sub, wire)
		case 6:
			m.buildID, err = parseInt64(&sub, wire)
		case 7:
			m.hasFunctions = v != 0
		case 8:
			m.hasFilenames = v != 0
		case 9:
			m.hasLineNumbers = v != 0
		case 10:
			m.hasInlineFrames = v != 0
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return m, err
		}
	}
	return m, nil
}

func parseLocation(r *wireReader) (protoLocation, error) {
	body, err := r.bytes()
	if err != nil {
		return protoLocation{}, err
	}
	var l protoLocation
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return l, err
		}
		switch field {
		case 1:
			l.id, err = sub.varint()
		case 2:
			l.mappingID, err = sub.varint()
		case 3:
			l.address, err = sub.varint()
		case 4:
			var ln protoLine
			ln, err = parseLine(&sub)
			l.line = append(l.line, ln)
		case 5:
			var v uint64
			v, err = sub.varint()
			l.isFolded = v != 0
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return l, err
		}
	}
	return l, nil
}

func parseLine(r *wireReader) (protoLine, error) {
	body, err := r.bytes()
	if err != nil {
		return protoLine{}, err
	}
	var ln protoLine
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return ln, err
		}
		switch field {
		case 1:
			ln.functionID, err = sub.varint()
		case 2:
			ln.line, err = parseInt64(&sub, wire)
		case 3:
			ln.column, err = parseInt64(&sub, wire)
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return ln, err
		}
	}
	return ln, nil
}

func parseFunction(r *wireReader) (protoFunction, error) {
	body, err := r.bytes()
	if err != nil {
		return protoFunction{}, err
	}
	var f protoFunction
	sub := wireReader{data: body}
	for sub.more() {
		field, wire, err := sub.tag()
		if err != nil {
			return f, err
		}
		switch field {
		case 1:
			f.id, err = sub.varint()
		case 2:
			f.name, err = parseInt64(&sub, wire)
		case 3:
			f.systemName, err = parseInt64(&sub, wire)
		case 4:
			f.filename, err = parseInt64(&sub, wire)
		case 5:
			f.startLine, err = parseInt64(&sub, wire)
		default:
			err = sub.skip(wire)
		}
		if err != nil {
			return f, err
		}
	}
	return f, nil
}

// encodeProfile serializes p back to gzipped profile.proto bytes (the format
// runtime/pprof emits and go build -pgo consumes).
func encodeProfile(p *profileData) ([]byte, error) {
	var w wireWriter
	for _, vt := range p.sampleType {
		w.bytesField(1, encodeValueType(vt))
	}
	for i := range p.sample {
		w.bytesField(2, encodeSample(&p.sample[i]))
	}
	for i := range p.mapping {
		w.bytesField(3, encodeMapping(&p.mapping[i]))
	}
	for i := range p.location {
		w.bytesField(4, encodeLocation(&p.location[i]))
	}
	for i := range p.function {
		w.bytesField(5, encodeFunction(&p.function[i]))
	}
	for _, s := range p.stringTable {
		w.bytesField(6, []byte(s))
	}
	w.int64Field(7, p.dropFrames)
	w.int64Field(8, p.keepFrames)
	w.int64Field(9, p.timeNanos)
	w.int64Field(10, p.durationNanos)
	if p.periodType != (valueType{}) {
		w.bytesField(11, encodeValueType(p.periodType))
	}
	w.int64Field(12, p.period)
	w.packedInt64Field(13, p.comment)
	w.int64Field(14, p.defaultSampleType)
	w.int64Field(15, p.docURL)

	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(w.b); err != nil {
		return nil, fmt.Errorf("pcapture: gzip profile: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("pcapture: gzip profile: %w", err)
	}
	return buf.Bytes(), nil
}

func encodeValueType(vt valueType) []byte {
	var w wireWriter
	w.int64Field(1, vt.typ)
	w.int64Field(2, vt.unit)
	return w.b
}

func encodeSample(s *protoSample) []byte {
	var w wireWriter
	w.packedField(1, s.locationID)
	w.packedInt64Field(2, s.value)
	for _, lb := range s.label {
		var sub wireWriter
		sub.int64Field(1, lb.key)
		sub.int64Field(2, lb.str)
		sub.int64Field(3, lb.num)
		sub.int64Field(4, lb.numUnit)
		w.bytesField(3, sub.b)
	}
	return w.b
}

func encodeMapping(m *protoMapping) []byte {
	var w wireWriter
	w.varintField(1, m.id)
	w.varintField(2, m.memoryStart)
	w.varintField(3, m.memoryLimit)
	w.varintField(4, m.fileOffset)
	w.int64Field(5, m.filename)
	w.int64Field(6, m.buildID)
	w.boolField(7, m.hasFunctions)
	w.boolField(8, m.hasFilenames)
	w.boolField(9, m.hasLineNumbers)
	w.boolField(10, m.hasInlineFrames)
	return w.b
}

func encodeLocation(l *protoLocation) []byte {
	var w wireWriter
	w.varintField(1, l.id)
	w.varintField(2, l.mappingID)
	w.varintField(3, l.address)
	for _, ln := range l.line {
		var sub wireWriter
		sub.varintField(1, ln.functionID)
		sub.int64Field(2, ln.line)
		sub.int64Field(3, ln.column)
		w.bytesField(4, sub.b)
	}
	w.boolField(5, l.isFolded)
	return w.b
}

func encodeFunction(f *protoFunction) []byte {
	var w wireWriter
	w.varintField(1, f.id)
	w.int64Field(2, f.name)
	w.int64Field(3, f.systemName)
	w.int64Field(4, f.filename)
	w.int64Field(5, f.startLine)
	return w.b
}

// Info summarizes a pprof profile without interpreting its call graph.
type Info struct {
	// SampleTypes lists the profile's value dimensions as "type/unit"
	// (CPU profiles: "samples/count", "cpu/nanoseconds").
	SampleTypes []string
	// Samples is the number of (deduplicated) sample records.
	Samples int
	// Functions and Locations count the symbol tables.
	Functions, Locations int
	// Duration is the profiled wall-clock window.
	Duration time.Duration
	// TotalCPU sums the cpu/nanoseconds dimension (zero when absent).
	TotalCPU time.Duration
}

// ReadInfo parses a pprof profile (gzipped or raw) and summarizes it.
func ReadInfo(data []byte) (Info, error) {
	p, err := parseProfile(data)
	if err != nil {
		return Info{}, err
	}
	info := Info{
		Samples:   len(p.sample),
		Functions: len(p.function),
		Locations: len(p.location),
		Duration:  time.Duration(p.durationNanos),
	}
	cpuIdx := -1
	for i, vt := range p.sampleType {
		typ, err := p.str(vt.typ)
		if err != nil {
			return Info{}, err
		}
		unit, err := p.str(vt.unit)
		if err != nil {
			return Info{}, err
		}
		info.SampleTypes = append(info.SampleTypes, typ+"/"+unit)
		if typ == "cpu" && unit == "nanoseconds" {
			cpuIdx = i
		}
	}
	if cpuIdx >= 0 {
		var total int64
		for i := range p.sample {
			if cpuIdx < len(p.sample[i].value) {
				total += p.sample[i].value[cpuIdx]
			}
		}
		info.TotalCPU = time.Duration(total)
	}
	return info, nil
}
