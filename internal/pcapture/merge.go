package pcapture

// Merge folds captured profiles into one — the step between per-workload-mix
// capture and `go build -pgo`. Semantics follow the pprof tool's own merge:
// symbol tables (strings, functions, mappings, locations) are deduplicated
// by content, samples with identical call stacks and labels sum their
// values, durations add, and the period is the coarsest of the inputs.

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

// functionKey identifies a function by content (string indices resolved).
type functionKey struct {
	name, systemName, filename string
	startLine                  int64
}

// mappingKey identifies a mapping by content. Profiles captured from the
// same binary dedupe onto one mapping; different binaries keep separate
// mappings, which is valid pprof (the compiler aggregates by symbol name).
type mappingKey struct {
	memoryStart, memoryLimit, fileOffset uint64
	filename, buildID                    string
}

// merger accumulates the output profile and its dedup indexes.
type merger struct {
	out       *profileData
	strings   map[string]int64
	functions map[functionKey]uint64
	mappings  map[mappingKey]uint64
	locations map[string]uint64
	samples   map[string]int // sample key -> index into out.sample
}

// Merge combines pprof profiles (each gzipped or raw protobuf) into one
// gzipped profile. All inputs must share the same sample types and period
// type — CPU profiles merge with CPU profiles. One input round-trips
// through the codec (and still merges duplicate samples the profiler may
// have emitted); zero inputs error.
func Merge(profiles ...[]byte) ([]byte, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("pcapture: no profiles to merge")
	}
	parsed := make([]*profileData, len(profiles))
	for i, raw := range profiles {
		p, err := parseProfile(raw)
		if err != nil {
			return nil, fmt.Errorf("profile %d: %w", i, err)
		}
		parsed[i] = p
	}

	m := &merger{
		out:       &profileData{},
		strings:   map[string]int64{},
		functions: map[functionKey]uint64{},
		mappings:  map[mappingKey]uint64{},
		locations: map[string]uint64{},
		samples:   map[string]int{},
	}
	m.intern("") // index 0 is always the empty string

	// The first profile fixes the shape: sample types, period type, and the
	// default sample type.
	first := parsed[0]
	shape, err := profileShape(first)
	if err != nil {
		return nil, fmt.Errorf("profile 0: %w", err)
	}
	for _, vt := range first.sampleType {
		typ, _ := first.str(vt.typ)
		unit, _ := first.str(vt.unit)
		m.out.sampleType = append(m.out.sampleType, valueType{m.intern(typ), m.intern(unit)})
	}
	pt, _ := first.str(first.periodType.typ)
	pu, _ := first.str(first.periodType.unit)
	m.out.periodType = valueType{m.intern(pt), m.intern(pu)}
	if s, err := first.str(first.defaultSampleType); err == nil && s != "" {
		m.out.defaultSampleType = m.intern(s)
	}

	seenComment := map[string]bool{}
	for i, p := range parsed {
		ps, err := profileShape(p)
		if err != nil {
			return nil, fmt.Errorf("profile %d: %w", i, err)
		}
		if ps != shape {
			return nil, fmt.Errorf("pcapture: profile %d is not mergeable: sample/period types %q differ from profile 0's %q", i, ps, shape)
		}
		if err := m.add(p, seenComment); err != nil {
			return nil, fmt.Errorf("profile %d: %w", i, err)
		}
	}
	return encodeProfile(m.out)
}

// MergeFiles reads and merges profile files (convenience for cmd/pgo).
func MergeFiles(paths ...string) ([]byte, error) {
	profiles := make([][]byte, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		profiles[i] = data
	}
	merged, err := Merge(profiles...)
	if err != nil && len(paths) > 0 {
		return nil, fmt.Errorf("merging %s: %w", strings.Join(paths, ", "), err)
	}
	return merged, err
}

// profileShape canonicalizes the type signature a profile must match to
// merge: "type/unit,... @ periodtype/unit".
func profileShape(p *profileData) (string, error) {
	var b strings.Builder
	for i, vt := range p.sampleType {
		typ, err := p.str(vt.typ)
		if err != nil {
			return "", err
		}
		unit, err := p.str(vt.unit)
		if err != nil {
			return "", err
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(typ)
		b.WriteByte('/')
		b.WriteString(unit)
	}
	pt, err := p.str(p.periodType.typ)
	if err != nil {
		return "", err
	}
	pu, err := p.str(p.periodType.unit)
	if err != nil {
		return "", err
	}
	b.WriteString(" @ ")
	b.WriteString(pt)
	b.WriteByte('/')
	b.WriteString(pu)
	return b.String(), nil
}

func (m *merger) intern(s string) int64 {
	if i, ok := m.strings[s]; ok {
		return i
	}
	i := int64(len(m.out.stringTable))
	m.out.stringTable = append(m.out.stringTable, s)
	m.strings[s] = i
	return i
}

// add folds one parsed profile into the output.
func (m *merger) add(p *profileData, seenComment map[string]bool) error {
	// Functions: dedupe by resolved content, build old-ID -> new-ID map.
	funcID := map[uint64]uint64{}
	for _, f := range p.function {
		name, err := p.str(f.name)
		if err != nil {
			return err
		}
		sys, err := p.str(f.systemName)
		if err != nil {
			return err
		}
		file, err := p.str(f.filename)
		if err != nil {
			return err
		}
		key := functionKey{name, sys, file, f.startLine}
		id, ok := m.functions[key]
		if !ok {
			id = uint64(len(m.out.function) + 1)
			m.functions[key] = id
			m.out.function = append(m.out.function, protoFunction{
				id:         id,
				name:       m.intern(name),
				systemName: m.intern(sys),
				filename:   m.intern(file),
				startLine:  f.startLine,
			})
		}
		funcID[f.id] = id
	}

	// Mappings.
	mapID := map[uint64]uint64{}
	for _, mp := range p.mapping {
		file, err := p.str(mp.filename)
		if err != nil {
			return err
		}
		build, err := p.str(mp.buildID)
		if err != nil {
			return err
		}
		key := mappingKey{mp.memoryStart, mp.memoryLimit, mp.fileOffset, file, build}
		id, ok := m.mappings[key]
		if !ok {
			id = uint64(len(m.out.mapping) + 1)
			m.mappings[key] = id
			nm := mp
			nm.id = id
			nm.filename = m.intern(file)
			nm.buildID = m.intern(build)
			m.out.mapping = append(m.out.mapping, nm)
		}
		mapID[mp.id] = id
	}

	// Locations: key by remapped mapping, address, and line table.
	locID := map[uint64]uint64{}
	for _, loc := range p.location {
		newMapping, ok := mapID[loc.mappingID]
		if !ok && loc.mappingID != 0 {
			return fmt.Errorf("pcapture: location %d references unknown mapping %d", loc.id, loc.mappingID)
		}
		var kb strings.Builder
		fmt.Fprintf(&kb, "%d@%x", newMapping, loc.address)
		lines := make([]protoLine, 0, len(loc.line))
		for _, ln := range loc.line {
			fid, ok := funcID[ln.functionID]
			if !ok && ln.functionID != 0 {
				return fmt.Errorf("pcapture: location %d references unknown function %d", loc.id, ln.functionID)
			}
			fmt.Fprintf(&kb, "|%d:%d:%d", fid, ln.line, ln.column)
			lines = append(lines, protoLine{functionID: fid, line: ln.line, column: ln.column})
		}
		if loc.isFolded {
			kb.WriteString("|folded")
		}
		key := kb.String()
		id, ok := m.locations[key]
		if !ok {
			id = uint64(len(m.out.location) + 1)
			m.locations[key] = id
			m.out.location = append(m.out.location, protoLocation{
				id:        id,
				mappingID: newMapping,
				address:   loc.address,
				line:      lines,
				isFolded:  loc.isFolded,
			})
		}
		locID[loc.id] = id
	}

	// Samples: remap stacks and labels, then sum values on identical keys.
	for si := range p.sample {
		s := &p.sample[si]
		if len(s.value) != len(m.out.sampleType) {
			return fmt.Errorf("pcapture: sample has %d values, profile has %d sample types", len(s.value), len(m.out.sampleType))
		}
		stack := make([]uint64, len(s.locationID))
		var kb strings.Builder
		for i, old := range s.locationID {
			id, ok := locID[old]
			if !ok {
				return fmt.Errorf("pcapture: sample references unknown location %d", old)
			}
			stack[i] = id
			fmt.Fprintf(&kb, "%d,", id)
		}
		labels, labelKey, err := m.remapLabels(p, s.label)
		if err != nil {
			return err
		}
		kb.WriteByte('#')
		kb.WriteString(labelKey)
		key := kb.String()
		if idx, ok := m.samples[key]; ok {
			dst := m.out.sample[idx].value
			for i, v := range s.value {
				dst[i] += v
			}
			continue
		}
		m.samples[key] = len(m.out.sample)
		m.out.sample = append(m.out.sample, protoSample{
			locationID: stack,
			value:      append([]int64(nil), s.value...),
			label:      labels,
		})
	}

	// Scalar metadata: durations add; the time stamp is the earliest; the
	// period is the coarsest (pprof's rule: the merged profile can claim no
	// finer sampling than its coarsest input); filters are kept from the
	// first profile that set them; comments union.
	m.out.durationNanos += p.durationNanos
	if p.timeNanos != 0 && (m.out.timeNanos == 0 || p.timeNanos < m.out.timeNanos) {
		m.out.timeNanos = p.timeNanos
	}
	if p.period > m.out.period {
		m.out.period = p.period
	}
	if m.out.dropFrames == 0 {
		if s, err := p.str(p.dropFrames); err == nil && s != "" {
			m.out.dropFrames = m.intern(s)
		}
	}
	if m.out.keepFrames == 0 {
		if s, err := p.str(p.keepFrames); err == nil && s != "" {
			m.out.keepFrames = m.intern(s)
		}
	}
	if m.out.docURL == 0 {
		if s, err := p.str(p.docURL); err == nil && s != "" {
			m.out.docURL = m.intern(s)
		}
	}
	for _, ci := range p.comment {
		s, err := p.str(ci)
		if err != nil {
			return err
		}
		if s == "" || seenComment[s] {
			continue
		}
		seenComment[s] = true
		m.out.comment = append(m.out.comment, m.intern(s))
	}
	return nil
}

// remapLabels interns a sample's labels into the output profile and returns
// them with a canonical (sorted) key for sample deduplication.
func (m *merger) remapLabels(p *profileData, labels []protoLabel) ([]protoLabel, string, error) {
	if len(labels) == 0 {
		return nil, "", nil
	}
	out := make([]protoLabel, len(labels))
	parts := make([]string, len(labels))
	for i, lb := range labels {
		key, err := p.str(lb.key)
		if err != nil {
			return nil, "", err
		}
		str, err := p.str(lb.str)
		if err != nil {
			return nil, "", err
		}
		numUnit, err := p.str(lb.numUnit)
		if err != nil {
			return nil, "", err
		}
		out[i] = protoLabel{
			key:     m.intern(key),
			str:     m.intern(str),
			num:     lb.num,
			numUnit: m.intern(numUnit),
		}
		parts[i] = fmt.Sprintf("%s=%s:%d:%s", key, str, lb.num, numUnit)
	}
	sort.Strings(parts)
	return out, strings.Join(parts, ";"), nil
}
