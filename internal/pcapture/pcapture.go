// Package pcapture wraps runtime/pprof with the explicit capture lifecycle
// behind the repository's profile-guided-optimization loop: the service that
// reproduces a paper about profile-guided prefetching is itself built with
// the profiles it serves under.
//
// The package has two halves:
//
//   - A Capturer manages CPU capture windows. Start opens a window, Stop
//     closes it and returns the raw pprof bytes (persisting them as a named,
//     timestamped .pprof file when a directory is configured), Toggle flips
//     between the two — the primitive behind capture-on-SIGUSR1 — and Close
//     emits any still-open window on the way out, the primitive behind
//     capture-on-shutdown. Exactly one window can be open per process
//     (runtime/pprof allows a single CPU profile), so a second Start refuses
//     with ErrActive instead of silently restarting the profile.
//
//   - Merge folds any number of captured profiles into one, deduplicating
//     functions, mappings, locations, and samples and summing sample values,
//     so per-workload-mix captures combine into the single default.pgo the
//     compiler consumes (go build -pgo). The codec speaks the pprof
//     profile.proto wire format directly — parsing and re-encoding gzipped
//     protobuf with no dependency on the pprof tool or its libraries — and
//     ReadInfo summarizes a profile without merging anything.
//
// prophetd exposes the Capturer over HTTP (POST /v1/profile/start and
// /v1/profile/stop, plus the standard /debug/pprof handlers), cmd/
// prophetbench captures its measured matrix with -cpuprofile, and cmd/pgo is
// the command-line front end for Merge. docs/PROFILING.md walks the whole
// loop: capture → merge → go build -pgo → verify.
package pcapture

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// Lifecycle errors. Both are sentinel values: a caller driving the capture
// API over HTTP maps ErrActive/ErrIdle to 409 Conflict.
var (
	// ErrActive rejects Start while a window is already open — runtime/pprof
	// supports one CPU profile per process, and silently restarting it would
	// discard the samples collected so far.
	ErrActive = errors.New("pcapture: a capture window is already active")
	// ErrIdle rejects Stop when no window is open.
	ErrIdle = errors.New("pcapture: no capture window is active")
)

// Options configures a Capturer.
type Options struct {
	// Dir is where Stop persists .pprof files (created on first use).
	// Empty keeps captures in memory only: Stop still returns the bytes.
	Dir string
	// Logf receives asynchronous capture events (signal toggles); nil
	// discards them.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time

	// start/stop are test seams over runtime/pprof.StartCPUProfile and
	// StopCPUProfile; nil means the real profiler.
	start func(io.Writer) error
	stop  func()
}

// Capture is one completed capture window.
type Capture struct {
	// Name is the sanitized window name (it names the persisted file).
	Name string
	// Path is where the profile was persisted; empty when the Capturer has
	// no directory configured.
	Path string
	// Data is the raw pprof-format profile (gzipped protobuf, exactly what
	// runtime/pprof emitted).
	Data []byte
	// Start and End bound the window.
	Start, End time.Time
}

// Duration is the length of the capture window.
func (c Capture) Duration() time.Duration { return c.End.Sub(c.Start) }

// Stats is a Capturer's introspection snapshot (served under /v1/stats).
type Stats struct {
	// Active reports whether a window is open, and ActiveName names it.
	Active     bool   `json:"active"`
	ActiveName string `json:"activeName,omitempty"`
	// Captures counts completed windows.
	Captures int `json:"captures"`
	// LastPath is the most recently persisted file (empty before the first
	// persisted capture, or when no directory is configured).
	LastPath string `json:"lastPath,omitempty"`
	// Dir is the persistence directory ("" = memory only).
	Dir string `json:"dir,omitempty"`
}

// Capturer manages CPU profile capture windows: at most one open window per
// process, explicit Start/Stop, signal-driven Toggle, and emit-on-Close.
// All methods are safe for concurrent use.
type Capturer struct {
	dir   string
	logf  func(string, ...any)
	now   func() time.Time
	start func(io.Writer) error
	stop  func()

	mu       sync.Mutex
	active   *window
	seq      int
	captures int
	lastPath string
}

type window struct {
	name  string
	start time.Time
	buf   bytes.Buffer
}

// New builds a Capturer from opts.
func New(opts Options) *Capturer {
	c := &Capturer{
		dir:   opts.Dir,
		logf:  opts.Logf,
		now:   opts.Now,
		start: opts.start,
		stop:  opts.stop,
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.start == nil {
		c.start = pprof.StartCPUProfile
	}
	if c.stop == nil {
		c.stop = pprof.StopCPUProfile
	}
	return c
}

// Start opens a CPU capture window. name labels the window (and the
// persisted file); it is sanitized to filesystem-safe characters and
// defaults to "capture" when empty. Start fails with ErrActive if a window
// is already open.
func (c *Capturer) Start(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.startLocked(name)
}

func (c *Capturer) startLocked(name string) error {
	if c.active != nil {
		return fmt.Errorf("%w (%q)", ErrActive, c.active.name)
	}
	w := &window{name: sanitizeName(name), start: c.now()}
	if err := c.start(&w.buf); err != nil {
		return fmt.Errorf("pcapture: start CPU profile: %w", err)
	}
	c.active = w
	return nil
}

// Stop closes the open window and returns the capture. When a directory is
// configured the profile is also persisted as
//
//	<name>-<UTC timestamp>-<seq>.pprof
//
// and Capture.Path points at the file. Stop fails with ErrIdle when no
// window is open. A persistence failure is returned as the error, but the
// Capture (with its in-memory Data) is returned alongside it — the profile
// is never lost to a full disk.
func (c *Capturer) Stop() (Capture, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stopLocked()
}

func (c *Capturer) stopLocked() (Capture, error) {
	if c.active == nil {
		return Capture{}, ErrIdle
	}
	c.stop()
	w := c.active
	c.active = nil
	cap := Capture{
		Name:  w.name,
		Data:  w.buf.Bytes(),
		Start: w.start,
		End:   c.now(),
	}
	c.captures++
	if c.dir == "" {
		return cap, nil
	}
	c.seq++
	name := fmt.Sprintf("%s-%s-%03d.pprof", w.name, cap.End.UTC().Format("20060102T150405.000"), c.seq)
	path := filepath.Join(c.dir, name)
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return cap, fmt.Errorf("pcapture: persist %s: %w", name, err)
	}
	if err := os.WriteFile(path, cap.Data, 0o644); err != nil {
		return cap, fmt.Errorf("pcapture: persist %s: %w", name, err)
	}
	cap.Path = path
	c.lastPath = path
	return cap, nil
}

// Toggle flips the window state atomically: idle → Start(name) (started
// true, zero Capture), open → Stop (started false, the Capture). It is the
// primitive behind signal-driven capture, where one signal both ends a
// window and could begin the next.
func (c *Capturer) Toggle(name string) (cap Capture, started bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active == nil {
		return Capture{}, true, c.startLocked(name)
	}
	cap, err = c.stopLocked()
	return cap, false, err
}

// Close emits any still-open window: the capture-on-shutdown path. It
// returns the final capture and ok=true when a window was open, and is a
// no-op (ok=false) otherwise.
func (c *Capturer) Close() (cap Capture, ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active == nil {
		return Capture{}, false, nil
	}
	cap, err = c.stopLocked()
	return cap, true, err
}

// Active reports the open window's name and start time, if any.
func (c *Capturer) Active() (name string, since time.Time, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.active == nil {
		return "", time.Time{}, false
	}
	return c.active.name, c.active.start, true
}

// CaptureStats snapshots the Capturer's counters.
func (c *Capturer) CaptureStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Captures: c.captures, LastPath: c.lastPath, Dir: c.dir}
	if c.active != nil {
		s.Active = true
		s.ActiveName = c.active.name
	}
	return s
}

// HandleSignals toggles a capture window named "signal" every time one of
// sigs arrives (SIGUSR1 in prophetd): the first signal opens a window, the
// next closes and persists it. The handler goroutine exits — and the signal
// registration is released — when ctx is cancelled. Toggle outcomes are
// reported through Logf. With no signals it is a no-op.
func (c *Capturer) HandleSignals(ctx context.Context, sigs ...os.Signal) {
	if len(sigs) == 0 {
		return
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		defer signal.Stop(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case sig := <-ch:
				cap, started, err := c.Toggle("signal")
				switch {
				case err != nil:
					c.logf("pcapture: %v toggle: %v", sig, err)
				case started:
					c.logf("pcapture: %v opened a capture window", sig)
				case cap.Path != "":
					c.logf("pcapture: %v closed the capture window: wrote %s (%d bytes, %s)",
						sig, cap.Path, len(cap.Data), cap.Duration().Round(time.Millisecond))
				default:
					c.logf("pcapture: %v closed the capture window (%d bytes, not persisted: no directory configured)",
						sig, len(cap.Data))
				}
			}
		}
	}()
}

// sanitizeName maps a window name onto filesystem-safe characters so caller-
// supplied names (workload mixes, HTTP request fields) cannot escape the
// profile directory or collide with path syntax.
func sanitizeName(name string) string {
	name = strings.TrimSpace(name)
	if name == "" {
		return "capture"
	}
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	s := strings.Trim(b.String(), ".-")
	if s == "" {
		return "capture"
	}
	return s
}
