package triage

import (
	"testing"

	"prophet/internal/mem"
	"prophet/internal/temporal"
)

func miss(pc mem.Addr, line mem.Line) temporal.AccessEvent {
	return temporal.AccessEvent{PC: pc, Line: line, Hit: false}
}

func testConfig() Config {
	cfg := Default()
	cfg.Table = temporal.TableConfig{Sets: 64, EntriesPerWay: 4, MaxWays: 4, Policy: temporal.MetaSRRIP}
	cfg.Ways = 4
	cfg.BloomResize = false
	return cfg
}

func TestLearnsTemporalSequence(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x400)
	seq := []mem.Line{10, 700, 33, 950, 42}
	// First pass: training only.
	for _, l := range seq {
		p.OnAccess(miss(pc, l))
	}
	// Second pass: each access should predict the next line.
	for i := 0; i+1 < len(seq); i++ {
		got := p.OnAccess(miss(pc, seq[i]))
		if len(got) == 0 {
			t.Fatalf("no prediction at step %d", i)
		}
		if got[0] != seq[i+1] {
			t.Fatalf("step %d predicted %v, want %v", i, got[0], seq[i+1])
		}
	}
}

func TestDegreeChasesChain(t *testing.T) {
	cfg := testConfig()
	cfg.Degree = 4
	p := New(cfg)
	pc := mem.Addr(0x400)
	seq := []mem.Line{10, 700, 33, 950, 42, 77}
	for _, l := range seq {
		p.OnAccess(miss(pc, l))
	}
	got := p.OnAccess(miss(pc, seq[0]))
	if len(got) != 4 {
		t.Fatalf("degree-4 chase returned %d lines: %v", len(got), got)
	}
	for i := 0; i < 4; i++ {
		if got[i] != seq[i+1] {
			t.Fatalf("chain step %d = %v, want %v", i, got[i], seq[i+1])
		}
	}
}

func TestNoInsertionFilter(t *testing.T) {
	// Triage inserts metadata for purely random streams too — that is its
	// defining inefficiency (Section 2.1.1).
	p := New(testConfig())
	rng := mem.NewPRNG(1)
	pc := mem.Addr(0x500)
	for i := 0; i < 100; i++ {
		p.OnAccess(miss(pc, mem.Line(rng.Intn(1<<20))))
	}
	if ins := p.TableStats().Insertions; ins < 90 {
		t.Fatalf("random stream inserted only %d entries; Triage must not filter", ins)
	}
}

func TestHitsAreNotTrained(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x600)
	p.OnAccess(temporal.AccessEvent{PC: pc, Line: 1, Hit: true})
	p.OnAccess(temporal.AccessEvent{PC: pc, Line: 2, Hit: true})
	if p.TableStats().Insertions != 0 {
		t.Fatal("L2 hits must not train the prefetcher")
	}
	// But first touches of prefetched lines are part of the miss stream.
	p.OnAccess(temporal.AccessEvent{PC: pc, Line: 3, Hit: true, HitPrefetched: true})
	p.OnAccess(temporal.AccessEvent{PC: pc, Line: 4, Hit: true, HitPrefetched: true})
	if p.TableStats().Insertions != 1 {
		t.Fatalf("prefetched-hit stream inserted %d entries, want 1", p.TableStats().Insertions)
	}
}

func TestBloomResizeShrinks(t *testing.T) {
	cfg := testConfig()
	cfg.BloomResize = true
	cfg.ResizeEpoch = 200
	p := New(cfg)
	pc := mem.Addr(0x700)
	// A tiny loop of 8 lines needs far less than the full table.
	for i := 0; i < 400; i++ {
		p.OnAccess(miss(pc, mem.Line(i%8)))
	}
	if p.MetaWays() != 1 {
		t.Fatalf("MetaWays = %d after small working set, want 1", p.MetaWays())
	}
}

func TestBloomResizeGrows(t *testing.T) {
	cfg := testConfig()
	cfg.BloomResize = true
	cfg.ResizeEpoch = 800
	p := New(cfg)
	p.Table().Resize(1)
	pc := mem.Addr(0x800)
	// ~800 distinct sources per epoch need ceil(800/256) = 4 ways.
	for i := 0; i < 1600; i++ {
		p.OnAccess(miss(pc, mem.Line(i)))
	}
	if p.MetaWays() < 3 {
		t.Fatalf("MetaWays = %d after large working set, want >= 3", p.MetaWays())
	}
}

func TestNames(t *testing.T) {
	if New(testConfig()).Name() != "triage" {
		t.Error("degree-1 name")
	}
	cfg := testConfig()
	cfg.Degree = 4
	if New(cfg).Name() != "triage4" {
		t.Error("degree-4 name")
	}
}

func TestFeedbackIsNoOp(t *testing.T) {
	p := New(testConfig())
	p.PrefetchUseful(1, 2)
	p.PrefetchUseless(1, 2) // must not panic or change behaviour
}

func TestRepeatedLineNotSelfLinked(t *testing.T) {
	p := New(testConfig())
	pc := mem.Addr(0x900)
	p.OnAccess(miss(pc, 5))
	got := p.OnAccess(miss(pc, 5))
	for _, l := range got {
		if l == 5 {
			t.Fatal("self-correlation prefetched the accessed line")
		}
	}
	if p.TableStats().Insertions != 0 {
		t.Fatal("A->A correlation was inserted")
	}
}
