// Package triage implements the Triage on-chip temporal prefetcher (Wu et
// al., MICRO'19 / IEEE TC'21), the first scheme to move temporal metadata
// into a Markov table sharing LLC space. Relative to later designs it has
// no insertion filter — every trainable access allocates metadata — which is
// exactly the inefficiency the Prophet paper contrasts against (Section
// 2.1.1). Resizing uses a Bloom-filter-style distinct-entry estimator
// (Section 2.1.3); replacement is SRRIP by default, with the original
// paper's Hawkeye-style predictor available via Config.Hawkeye (Section
// 2.1.2 cites ~13KB of state for a <0.25% gain — a trade-off reproducible
// here).
package triage

import (
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// Config parameterizes Triage.
type Config struct {
	// Degree is the Markov chain-walk prefetch degree (1 in the original
	// paper; 4 in the "Triage4" configuration of Figure 19).
	Degree int
	// Ways is the initial metadata-table allocation in LLC ways.
	Ways int
	// Table is the metadata table geometry.
	Table temporal.TableConfig
	// Hawkeye selects the original paper's Hawkeye-style metadata
	// replacement instead of SRRIP (Section 2.1.2: ~13KB for ~0.25%).
	Hawkeye bool
	// BloomResize enables the distinct-entry resizing estimator.
	BloomResize bool
	// ResizeEpoch is the number of trainable accesses between resizing
	// decisions.
	ResizeEpoch uint64
}

// Default returns the standard Triage configuration (degree 1, 1MB table).
func Default() Config {
	tc := temporal.DefaultTableConfig()
	tc.Policy = temporal.MetaSRRIP
	return Config{Degree: 1, Ways: tc.MaxWays, Table: tc, BloomResize: true, ResizeEpoch: 100_000}
}

// Prefetcher is the Triage engine.
type Prefetcher struct {
	cfg     Config
	table   *temporal.Table
	comp    *temporal.Compressor
	train   *temporal.TrainingUnit
	scratch []mem.Line // prediction buffer reused across OnAccess calls

	// Bloom-filter stand-in: distinct sources inserted this epoch. The
	// hardware uses a counting Bloom filter of ~200KB (Section 2.1.3);
	// functionally it estimates the distinct-entry count, which we track
	// exactly and account for in internal/storage.
	epochSources *temporal.U32Set
	epochAccess  uint64
}

// New builds a Triage prefetcher.
func New(cfg Config) *Prefetcher {
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	if cfg.Hawkeye {
		cfg.Table.Policy = temporal.MetaHawkeye
	}
	return &Prefetcher{
		cfg:          cfg,
		table:        temporal.NewTable(cfg.Table, cfg.Ways),
		comp:         temporal.NewCompressor(),
		train:        temporal.NewTrainingUnit(1024),
		scratch:      make([]mem.Line, 0, cfg.Degree),
		epochSources: temporal.NewU32Set(1 << 14),
	}
}

// Name implements temporal.Engine.
func (p *Prefetcher) Name() string {
	if p.cfg.Degree > 1 {
		return "triage4"
	}
	return "triage"
}

// OnAccess implements temporal.Engine.
func (p *Prefetcher) OnAccess(ev temporal.AccessEvent) []mem.Line {
	if !ev.Trainable() {
		return nil
	}
	cur := p.comp.Index(ev.Line)
	// Training: link the PC's previous miss to this one. Triage has no
	// insertion policy — everything is recorded.
	if ev.PC != 0 {
		if prev, ok := p.train.Observe(ev.PC, ev.Line); ok && prev != ev.Line {
			src := p.comp.Index(prev)
			p.table.Insert(src, cur, 0)
			if p.cfg.BloomResize {
				p.epochSources.Add(src)
			}
		}
	}
	p.maybeResize()
	// Prediction: walk the Markov chain from the current address.
	p.scratch = temporal.AppendChase(p.scratch[:0], p.table, p.comp, cur, p.cfg.Degree)
	return p.scratch
}

func (p *Prefetcher) maybeResize() {
	if !p.cfg.BloomResize {
		return
	}
	p.epochAccess++
	if p.epochAccess < p.cfg.ResizeEpoch {
		return
	}
	p.epochAccess = 0
	distinct := p.epochSources.Len()
	p.epochSources.Clear() // keep the set's capacity for the next epoch
	perWay := p.cfg.Table.EntriesPerWayTotal()
	ways := (distinct + perWay - 1) / perWay
	if ways < 1 {
		ways = 1
	}
	if ways > p.cfg.Table.MaxWays {
		ways = p.cfg.Table.MaxWays
	}
	p.table.Resize(ways)
}

// PrefetchUseful implements temporal.Engine (Triage takes no feedback).
func (p *Prefetcher) PrefetchUseful(mem.Addr, mem.Line) {}

// PrefetchUseless implements temporal.Engine.
func (p *Prefetcher) PrefetchUseless(mem.Addr, mem.Line) {}

// MetaWays implements temporal.Engine.
func (p *Prefetcher) MetaWays() int { return p.table.Ways() }

// TableStats implements temporal.Engine.
func (p *Prefetcher) TableStats() temporal.TableStats { return p.table.Stats() }

// Table exposes the metadata table for tests and histogram extraction.
func (p *Prefetcher) Table() *temporal.Table { return p.table }

// Release returns the metadata table's storage to the geometry pool. The
// prefetcher (and anything obtained through Table) must not be used after.
func (p *Prefetcher) Release() { p.table.Release() }

// Compressor exposes the address compressor for measurement tooling.
func (p *Prefetcher) Compressor() *temporal.Compressor { return p.comp }

var _ temporal.Engine = (*Prefetcher)(nil)
