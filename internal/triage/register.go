package triage

import (
	"prophet/internal/registry"
	"prophet/internal/sim"
)

// The triage scheme self-registers: the evaluator resolves it by name, so
// the public API needs no per-prefetcher switch.
func init() {
	registry.MustRegister("triage", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			st := sim.Run(ctx.Sim, New(Default()), nil, nil, nil, ctx.Factory())
			return registry.Result{Stats: st}, nil
		})
	})
}
