package experiments

import (
	"fmt"
	"time"

	"prophet/internal/core"
	"prophet/internal/energy"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/storage"
	"prophet/internal/textplot"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

// Table1 renders the simulated system configuration (Table 1).
func Table1(Options) Result {
	cfg := sim.Default()
	t := textplot.Table{Title: "Table 1: System Configuration", Columns: []string{"Module", "Configuration"}}
	t.AddRow("Core", fmt.Sprintf("%d-wide fetch, %d-wide issue, %d-wide commit", cfg.Core.FetchWidth, cfg.Core.IssueWidth, cfg.Core.CommitWidth))
	t.AddRow("", fmt.Sprintf("%d-entry ROB, %d/%d-entry LQ/SQ", cfg.Core.ROB, cfg.Core.LQ, cfg.Core.SQ))
	t.AddRow("Private L1 I/D cache", fmt.Sprintf("%d KB, %d-way, 64B line, %d MSHRs, PLRU, %d cycles",
		cfg.L1.SizeBytes>>10, cfg.L1.Ways, cfg.L1.MSHRs, cfg.L1.HitLatency))
	t.AddRow("", fmt.Sprintf("degree-%d stride prefetcher for L1D cache", cfg.StrideDegree))
	t.AddRow("Private L2 cache", fmt.Sprintf("%d KB, %d-way, 64B line, %d MSHRs, PLRU, %d cycles",
		cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.MSHRs, cfg.L2.HitLatency))
	t.AddRow("Shared L3 cache", fmt.Sprintf("%d MB, %d-way, 64B line, %d MSHRs, %s, %d cycles",
		cfg.L3.SizeBytes>>20, cfg.L3.Ways, cfg.L3.MSHRs, cfg.L3.Policy, cfg.L3.HitLatency))
	t.AddRow("Memory", fmt.Sprintf("LPDDR5-like: %d channel(s), %d-cycle base latency, %d-cycle burst",
		cfg.DRAM.Channels, cfg.DRAM.BaseLatency, cfg.DRAM.BurstCycles))
	return Result{ID: "T1", Title: "System configuration (Table 1)", Tables: []textplot.Table{t}}
}

// Overheads reproduces Section 5.4: profiling payload (counters vs traces),
// analysis wall-clock, and injected-instruction counts.
func Overheads(opts Options) Result {
	w := workloads.Omnetpp()
	records := opts.records(w.Spec.Records)
	cfg := pipeline.Default()
	p := pipeline.NewProphet(cfg)

	profStart := time.Now()
	counters := p.Profile(w.Source(records))
	profElapsed := time.Since(profStart)

	p.Learn(counters)
	res := p.Analyze()

	counterBytes := counters.OverheadBytes()
	traceBytes := int(records) * 23 // trace record encoding size

	t := textplot.Table{Title: "Section 5.4 overheads", Columns: []string{"Overhead", "Measured", "Paper"}}
	t.AddRow("Profiling payload (counters)", fmt.Sprintf("%d B", counterBytes), "~B per PC (Figure 2)")
	t.AddRow("Equivalent trace payload", fmt.Sprintf("%d B", traceBytes), "~GB at full scale")
	t.AddRow("Counter/trace ratio", fmt.Sprintf("%.5f", float64(counterBytes)/float64(traceBytes)), "<<1")
	t.AddRow("Analysis wall-clock", res.Elapsed.String(), "< 1 s")
	t.AddRow("Hint instructions injected", fmt.Sprintf("%d", res.HintInstructions), "<= 128")
	t.AddRow("PEBS sampling overhead", "< 2% (2-3 PEBS + 1 PMU events)", "< 2% [15]")
	t.AddRow("Profiling run wall-clock (simulator)", profElapsed.Round(time.Millisecond).String(), "n/a (simulator cost)")

	notes := []string{}
	if res.HintInstructions > core.HintBufferEntries {
		notes = append(notes, "VIOLATION: hint instructions exceed the 128-entry budget")
	}
	if res.Elapsed >= time.Second {
		notes = append(notes, "VIOLATION: analysis took >= 1s")
	}
	return Result{ID: "OV", Title: "Profiling, analysis and instruction overhead (Section 5.4)", Tables: []textplot.Table{t}, Notes: notes}
}

// StorageOverhead reproduces Section 5.10 (plus the related-work numbers of
// Section 2.1 for Triage and Triangel).
func StorageOverhead(Options) Result {
	t := textplot.Table{Title: "Storage overhead", Columns: []string{"Scheme", "Structure", "KB"}}
	add := func(scheme string, items []storage.Item) {
		for _, it := range items {
			t.AddRow(scheme, it.Name, fmt.Sprintf("%.2f", it.KB()))
		}
		t.AddRow(scheme, "TOTAL", fmt.Sprintf("%.2f", storage.TotalKB(items)))
	}
	add("Prophet", storage.Prophet())
	add("Triage", storage.Triage())
	add("Triangel", storage.Triangel())
	return Result{
		ID:     "ST",
		Title:  "Storage overhead (Section 5.10)",
		Tables: []textplot.Table{t},
		Notes: []string{
			"paper targets: Prophet = 48KB replacement state + 0.19KB hint buffer + 344KB MVB",
		},
	}
}

// EnergyOverhead reproduces Section 5.11: memory-hierarchy energy of Prophet
// relative to Triangel (paper: +1.6%).
func EnergyOverhead(opts Options) Result {
	model := energy.Default()
	cfg := pipeline.Default()
	set := specSet(opts)
	labels := make([]string, len(set))
	overheads := make([]float64, len(set))
	forEach(opts.workers(), len(set), func(wi int) {
		w := set[wi]
		factory := factoryFor(w, opts)
		trStats := pipeline.RunTriangel(cfg.Sim, triangel.Default(), factory())
		trEnergy := model.Evaluate(trStats, 0).Total()

		p := pipeline.NewProphet(cfg)
		p.ProfileAndLearn(factory())
		engine := p.Engine(core.AllFeatures())
		prStats := sim.Run(cfg.Sim, engine, nil, nil, nil, factory())
		var mvbAccesses uint64
		if engine.MVB() != nil {
			ins, hits := engine.MVB().Stats()
			mvbAccesses = ins + hits
		}
		prEnergy := model.Evaluate(prStats, mvbAccesses).Total()

		labels[wi] = w.Name
		overheads[wi] = energy.Overhead(prEnergy, trEnergy)
	})
	labels = append(labels, "Mean")
	overheads = append(overheads, stats.Mean(overheads))
	return Result{
		ID:     "EN",
		Title:  "Memory-hierarchy energy: Prophet relative to Triangel (Section 5.11)",
		Labels: labels,
		Series: []textplot.Series{{Name: "energy overhead", Values: overheads}},
		Notes:  []string{"shape target: small single-digit percentage (paper: +1.6%), dwarfed by the performance gain"},
	}
}
