package experiments

import (
	"context"
	"fmt"

	"prophet/internal/graphs"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/textplot"
)

// schemeRun is one workload's outcome under one scheme.
type schemeRun struct {
	Stats    sim.Stats
	Speedup  float64
	Traffic  float64 // normalized to baseline
	Coverage float64
	Accuracy float64
}

// comparison is the shared RPG2 / Triangel / Prophet evaluation over a
// workload list — the data behind Figures 10, 11, 12, 15, 17 and 18.
type comparison struct {
	Labels   []string
	Baseline []sim.Stats
	RPG2     []schemeRun
	Triangel []schemeRun
	Prophet  []schemeRun
	Notes    []string
}

// namedWorkload pairs a label with its trace factory. Records is the
// effective trace length — what a remote backend needs alongside the name
// to regenerate the identical trace.
type namedWorkload struct {
	Name    string
	Records uint64
	Factory pipeline.SourceFactory
}

// comparisonSchemes are the registered schemes every comparison evaluates,
// in figure order.
var comparisonSchemes = []string{"rpg2", "triangel", "prophet"}

// runComparisonDefault is runComparison for the figures that evaluate the
// paper's default configuration (F10–F12, F15): exactly those sweeps can be
// dispatched to a remote fleet, because remote daemons simulate their own
// fixed configuration — the default, when started without tuning flags.
// Quick mode always runs in process: its scaled-down workload specs exist
// only locally, so a remote daemon resolving the same name would generate a
// different trace.
// Extra workloads ride along here and pin the figure in process: they
// reference paths only this host can read.
func runComparisonDefault(opts Options, list []namedWorkload) comparison {
	for _, e := range opts.Extra {
		list = append(list, namedWorkload{Name: e.Name, Records: e.Records, Factory: e.Factory})
	}
	if opts.RemoteSweep != nil && !opts.Quick && len(opts.Extra) == 0 {
		return runRemoteComparison(opts, list)
	}
	return runComparison(pipeline.Default(), opts, list)
}

// runComparison evaluates all three schemes against the no-TP baseline
// through an Evaluator sweep: every (workload, scheme) pair runs on the
// worker pool, and each workload's baseline is simulated once — shared
// across the three schemes via the evaluator's cache — instead of once per
// scheme. Results are assembled by job index, so the output is
// byte-identical to a serial evaluation.
func runComparison(cfg pipeline.Config, opts Options, list []namedWorkload) comparison {
	ev := pipeline.NewEvaluator(cfg, opts.workers())
	jobs := make([]pipeline.Job, 0, len(list)*len(comparisonSchemes))
	for _, w := range list {
		for _, s := range comparisonSchemes {
			jobs = append(jobs, pipeline.Job{Key: w.Name, Factory: w.Factory, Scheme: s})
		}
	}
	outs, err := ev.Sweep(context.Background(), jobs...)
	if err != nil {
		panic(fmt.Sprintf("experiments: comparison sweep: %v", err))
	}
	for _, out := range outs {
		// Registered schemes on catalog workloads cannot fail; a zero
		// Stats row would silently corrupt the rendered figure, so any
		// error here is a programming bug worth stopping on.
		if out.Err != nil {
			panic(fmt.Sprintf("experiments: %s under %s: %v", out.Job.Key, out.Job.Scheme, out.Err))
		}
	}

	var c comparison
	for i, w := range list {
		rp := outs[i*len(comparisonSchemes)]
		tr := outs[i*len(comparisonSchemes)+1]
		pr := outs[i*len(comparisonSchemes)+2]
		base := rp.Base
		mk := func(s sim.Stats) schemeRun {
			return schemeRun{
				Stats:    s,
				Speedup:  stats.Speedup(s.IPC(), base.IPC()),
				Traffic:  stats.NormalizedTraffic(s.DRAMTraffic(), base.DRAMTraffic()),
				Coverage: stats.Coverage(base.L2DemandMisses, s.L2DemandMisses),
				Accuracy: s.TPAccuracy(),
			}
		}

		rpRun := mk(rp.Stats)
		if rp.Meta["kernels"] == 0 || rp.Meta["distance"] == 0 {
			// No qualifying kernels (or rolled back): no prefetches
			// were issued, so accuracy is undefined — the paper sets
			// it to 0 (Figure 12 footnote).
			rpRun.Accuracy = 0
		}

		c.Labels = append(c.Labels, w.Name)
		c.Baseline = append(c.Baseline, base)
		c.RPG2 = append(c.RPG2, rpRun)
		c.Triangel = append(c.Triangel, mk(tr.Stats))
		c.Prophet = append(c.Prophet, mk(pr.Stats))
		c.Notes = append(c.Notes,
			fmt.Sprintf("%s: baseIPC=%.3f rpg2Kernels=%d rpg2Dist=%d prophetWays=%d",
				w.Name, base.IPC(), rp.Meta["kernels"], rp.Meta["distance"], pr.Stats.MetaWays))
	}
	return c
}

// runRemoteComparison is the fleet-dispatched comparison: one RemoteJob per
// (workload, scheme) cell — plus an explicit baseline job per workload,
// since the remote outcome rows arrive already normalized and the notes
// need the raw baseline IPC. The normalization formulas run on the backend
// (prophet's summarize uses the same stats helpers as the local path), so
// the assembled comparison is byte-identical to runComparison over the
// default configuration.
func runRemoteComparison(opts Options, list []namedWorkload) comparison {
	schemes := append([]string{"baseline"}, comparisonSchemes...)
	jobs := make([]RemoteJob, 0, len(list)*len(schemes))
	for _, w := range list {
		for _, s := range schemes {
			jobs = append(jobs, RemoteJob{Workload: w.Name, Records: w.Records, Scheme: s})
		}
	}
	rows := opts.RemoteSweep(jobs)
	if len(rows) != len(jobs) {
		panic(fmt.Sprintf("experiments: remote sweep returned %d rows for %d jobs", len(rows), len(jobs)))
	}
	var c comparison
	for i, w := range list {
		cell := rows[i*len(schemes) : (i+1)*len(schemes)]
		for k, r := range cell {
			// Same contract as the local path: catalog workloads under
			// registered schemes cannot fail, and a silently zero row
			// would corrupt the figure.
			if r.Err != nil {
				panic(fmt.Sprintf("experiments: %s under %s (remote): %v", w.Name, schemes[k], r.Err))
			}
		}
		base, rp, tr, pr := cell[0], cell[1], cell[2], cell[3]
		mk := func(r RemoteRun) schemeRun {
			return schemeRun{Speedup: r.Speedup, Traffic: r.Traffic, Coverage: r.Coverage, Accuracy: r.Accuracy}
		}
		rpRun := mk(rp)
		if rp.Meta["kernels"] == 0 || rp.Meta["distance"] == 0 {
			rpRun.Accuracy = 0 // Figure 12 footnote, as in the local path
		}
		c.Labels = append(c.Labels, w.Name)
		c.RPG2 = append(c.RPG2, rpRun)
		c.Triangel = append(c.Triangel, mk(tr))
		c.Prophet = append(c.Prophet, mk(pr))
		c.Notes = append(c.Notes,
			fmt.Sprintf("%s: baseIPC=%.3f rpg2Kernels=%d rpg2Dist=%d prophetWays=%d",
				w.Name, base.IPC, rp.Meta["kernels"], rp.Meta["distance"], pr.MetaWays))
	}
	return c
}

func (c comparison) series(metric func(schemeRun) float64) []textplot.Series {
	get := func(runs []schemeRun) []float64 {
		out := make([]float64, len(runs))
		for i, r := range runs {
			out[i] = metric(r)
		}
		return out
	}
	return []textplot.Series{
		{Name: "RPG2", Values: get(c.RPG2)},
		{Name: "Triangel", Values: get(c.Triangel)},
		{Name: "Prophet", Values: get(c.Prophet)},
	}
}

// specWorkloads builds the named workload list for SPEC comparisons.
func specWorkloads(opts Options) []namedWorkload {
	var out []namedWorkload
	for _, w := range specSet(opts) {
		out = append(out, namedWorkload{
			Name:    w.Name,
			Records: opts.records(w.Spec.Records),
			Factory: factoryFor(w, opts),
		})
	}
	return out
}

// graphWorkloads builds the named workload list for CRONO comparisons.
func graphWorkloads(opts Options) []namedWorkload {
	var out []namedWorkload
	for _, g := range graphSet(opts) {
		out = append(out, namedWorkload{
			Name:    g.Name,
			Records: opts.records(graphs.DefaultRecords),
			Factory: graphFactory(g, opts),
		})
	}
	return out
}
