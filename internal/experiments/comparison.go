package experiments

import (
	"fmt"

	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/textplot"
	"prophet/internal/triangel"
)

// schemeRun is one workload's outcome under one scheme.
type schemeRun struct {
	Stats    sim.Stats
	Speedup  float64
	Traffic  float64 // normalized to baseline
	Coverage float64
	Accuracy float64
}

// comparison is the shared RPG2 / Triangel / Prophet evaluation over a
// workload list — the data behind Figures 10, 11, 12, 15, 17 and 18.
type comparison struct {
	Labels   []string
	Baseline []sim.Stats
	RPG2     []schemeRun
	Triangel []schemeRun
	Prophet  []schemeRun
	Notes    []string
}

// namedWorkload pairs a label with its trace factory.
type namedWorkload struct {
	Name    string
	Factory pipeline.SourceFactory
}

// runComparison evaluates all three schemes against the no-TP baseline.
func runComparison(cfg pipeline.Config, list []namedWorkload) comparison {
	var c comparison
	for _, w := range list {
		base := pipeline.RunBaseline(cfg.Sim, w.Factory())
		mk := func(s sim.Stats) schemeRun {
			return schemeRun{
				Stats:    s,
				Speedup:  stats.Speedup(s.IPC(), base.IPC()),
				Traffic:  stats.NormalizedTraffic(s.DRAMTraffic(), base.DRAMTraffic()),
				Coverage: stats.Coverage(base.L2DemandMisses, s.L2DemandMisses),
				Accuracy: s.TPAccuracy(),
			}
		}

		rp := pipeline.RunRPG2(cfg.Sim, w.Factory, 0)
		rpRun := mk(rp.Stats)
		if rp.Kernels == 0 || rp.Distance == 0 {
			// No qualifying kernels (or rolled back): no prefetches
			// were issued, so accuracy is undefined — the paper sets
			// it to 0 (Figure 12 footnote).
			rpRun.Accuracy = 0
		}

		trStats := pipeline.RunTriangel(cfg.Sim, triangel.Default(), w.Factory())

		prStats, _ := pipeline.RunProphetDirect(cfg, w.Factory)

		c.Labels = append(c.Labels, w.Name)
		c.Baseline = append(c.Baseline, base)
		c.RPG2 = append(c.RPG2, rpRun)
		c.Triangel = append(c.Triangel, mk(trStats))
		c.Prophet = append(c.Prophet, mk(prStats))
		c.Notes = append(c.Notes,
			fmt.Sprintf("%s: baseIPC=%.3f rpg2Kernels=%d rpg2Dist=%d prophetWays=%d",
				w.Name, base.IPC(), rp.Kernels, rp.Distance, prStats.MetaWays))
	}
	return c
}

func (c comparison) series(metric func(schemeRun) float64) []textplot.Series {
	get := func(runs []schemeRun) []float64 {
		out := make([]float64, len(runs))
		for i, r := range runs {
			out[i] = metric(r)
		}
		return out
	}
	return []textplot.Series{
		{Name: "RPG2", Values: get(c.RPG2)},
		{Name: "Triangel", Values: get(c.Triangel)},
		{Name: "Prophet", Values: get(c.Prophet)},
	}
}

// specWorkloads builds the named workload list for SPEC comparisons.
func specWorkloads(opts Options) []namedWorkload {
	var out []namedWorkload
	for _, w := range specSet(opts) {
		out = append(out, namedWorkload{Name: w.Name, Factory: factoryFor(w, opts)})
	}
	return out
}

// graphWorkloads builds the named workload list for CRONO comparisons.
func graphWorkloads(opts Options) []namedWorkload {
	var out []namedWorkload
	for _, g := range graphSet(opts) {
		out = append(out, namedWorkload{Name: g.Name, Factory: graphFactory(g, opts)})
	}
	return out
}
