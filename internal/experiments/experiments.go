// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment is a named runner producing a
// Result with the same rows/series the paper reports; cmd/experiments
// renders them and bench_test.go exposes one benchmark per experiment.
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator, not the authors' gem5 testbed — but each runner's
// Result carries the shape the paper's figure demonstrates, and
// EXPERIMENTS.md records paper-vs-measured for all of them.
//
// Runners execute on the pipeline Evaluator: per-workload baselines are
// simulated once and cached, and independent (workload, scheme) runs fan
// out over a worker pool (Options.Workers). Because every run is pure and
// results are assembled by index, rendered output is byte-identical
// whatever the worker count.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"prophet/internal/graphs"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/stats"
	"prophet/internal/textplot"
	"prophet/internal/workloads"
)

// Options tune experiment cost.
type Options struct {
	// Records overrides the per-run trace length (0 = workload default).
	Records uint64
	// Quick restricts workload sets and trace lengths so the whole suite
	// runs in test-friendly time. Shapes are preserved, magnitudes shrink.
	Quick bool
	// Workers bounds the per-experiment worker pool (0 = all CPUs, 1 =
	// serial). Every experiment produces byte-identical output regardless
	// of worker count: runs are pure and results are assembled by index.
	Workers int
	// RemoteSweep, when set, dispatches the comparison sweeps behind the
	// default-configuration figures (F10–F12, F15) to an external backend
	// fleet instead of the in-process evaluator. cmd/experiments wires it
	// to a prophet.Evaluator with remote backends; the callback indirection
	// keeps this package free of the public-API import cycle. Figures that
	// override the pipeline configuration (F16–F18) and Quick mode (whose
	// scaled workloads a remote catalog cannot reproduce) always run in
	// process. Output stays byte-identical as long as the fleet simulates
	// the default configuration.
	RemoteSweep RemoteSweepFunc
	// Extra appends externally supplied workloads (file: replays,
	// champsim:/csv: ingested traces) to the default-configuration
	// comparison figures (F10–F12, F15). Extras reference local paths, so
	// their presence forces those figures in process even under
	// RemoteSweep.
	Extra []ExtraWorkload
}

// ExtraWorkload is one externally supplied comparison workload: a label, an
// effective trace length, and a factory of fresh deterministic sources
// (prophet.Workload.SourceFactory provides one for any resolvable name).
type ExtraWorkload struct {
	Name    string
	Records uint64
	Factory func() mem.Source
}

// RemoteJob names one (workload, scheme) unit of a remotely dispatched
// comparison sweep. Workload is a catalog name resolvable on the backend.
type RemoteJob struct {
	Workload string
	Records  uint64
	Scheme   string
}

// RemoteRun is one remote job's outcome, already normalized to the
// workload's baseline exactly as the in-process comparison normalizes.
type RemoteRun struct {
	IPC      float64
	Speedup  float64
	Traffic  float64
	Coverage float64
	Accuracy float64
	MetaWays int
	Meta     map[string]int
	Err      error
}

// RemoteSweepFunc executes jobs on a backend fleet and returns one outcome
// per job, in job order.
type RemoteSweepFunc func(jobs []RemoteJob) []RemoteRun

// workers resolves the worker-pool width.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// forEach is the shared fan-out primitive (see pipeline.ForEach): fn(i)
// runs for i in [0,n) on up to workers goroutines, and callers write
// results into index-addressed slots so output stays deterministic.
func forEach(workers, n int, fn func(i int)) { pipeline.ForEach(workers, n, fn) }

// quickRecords is the trace length used in Quick mode.
const quickRecords = 90_000

// quickScale shrinks workload sequence lengths in Quick mode so several
// sequence passes still fit the shorter traces.
const quickScale = 35

func (o Options) records(def uint64) uint64 {
	if o.Records != 0 {
		return o.Records
	}
	if o.Quick {
		if def != 0 && def < quickRecords {
			return def
		}
		return quickRecords
	}
	return def
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier (T1, F1, F6, F8, F10..F19, OV, ST, EN).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Labels are the x-axis entries (typically workload names).
	Labels []string
	// Series hold one named value per label (bars in the figure).
	Series []textplot.Series
	// Tables carry tabular artifacts (Table 1, storage, overheads).
	Tables []textplot.Table
	// Notes are free-form findings appended to the rendering.
	Notes []string
}

// Render formats the result for terminal output.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Series) > 0 {
		b.WriteString(textplot.Chart("", r.Labels, r.Series, 40))
	}
	for _, t := range r.Tables {
		b.WriteString(t.Render())
	}
	for _, n := range r.Notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Value returns the value of a series at a label (helper for tests).
func (r Result) Value(series, label string) (float64, bool) {
	li := -1
	for i, l := range r.Labels {
		if l == label {
			li = i
			break
		}
	}
	if li < 0 {
		return 0, false
	}
	for _, s := range r.Series {
		if s.Name == series && li < len(s.Values) {
			return s.Values[li], true
		}
	}
	return 0, false
}

// Runner is an experiment entry point.
type Runner func(Options) Result

// registryEntry pairs an ID with its runner, in paper order.
type registryEntry struct {
	ID     string
	Run    Runner
	Remark string
}

// Registry returns every experiment in paper order.
func Registry() []registryEntry {
	return []registryEntry{
		{"T1", Table1, "system configuration"},
		{"F1", Figure1, "metadata access pattern vs PatternConf"},
		{"F6", Figure6, "per-PC accuracy levels (omnetpp)"},
		{"F8", Figure8, "Markov target distribution"},
		{"F10", Figure10, "SPEC IPC speedup"},
		{"F11", Figure11, "SPEC DRAM traffic"},
		{"F12", Figure12, "coverage and accuracy"},
		{"F13", Figure13, "gcc input learning"},
		{"F14", Figure14, "astar/soplex learning"},
		{"F15", Figure15, "CRONO graph workloads"},
		{"F16a", Figure16a, "EL_ACC sensitivity"},
		{"F16b", Figure16b, "priority bits sensitivity"},
		{"F16c", Figure16c, "MVB candidates sensitivity"},
		{"F17", Figure17, "IPCP L1 prefetcher"},
		{"F18", Figure18, "DRAM channel sensitivity"},
		{"F19", Figure19, "Prophet feature breakdown"},
		{"OV", Overheads, "profiling/analysis/instruction overhead"},
		{"ST", StorageOverhead, "storage overhead"},
		{"EN", EnergyOverhead, "energy overhead"},
	}
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (Result, error) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e.Run(opts), nil
		}
	}
	return Result{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// specSet returns the SPEC workload list for the options.
func specSet(opts Options) []workloads.Workload {
	all := workloads.SPEC()
	if !opts.Quick {
		return all
	}
	// Quick mode keeps the three workloads whose stories dominate the
	// paper's analysis: mcf (insertion), omnetpp (replacement/Figure 1),
	// soplex (MVB) — scaled so sequences repeat within short traces.
	var out []workloads.Workload
	for _, w := range all {
		switch w.Name {
		case "mcf", "omnetpp", "soplex_pds-50":
			out = append(out, w.Scaled(quickScale))
		}
	}
	return out
}

// graphSet returns the CRONO workload list for the options.
func graphSet(opts Options) []graphs.Workload {
	all := graphs.CRONO()
	if !opts.Quick {
		return all
	}
	var out []graphs.Workload
	for _, g := range all {
		switch g.Name {
		case "bfs_80000_8", "sssp_100000_5", "pagerank_100000_100":
			out = append(out, g)
		}
	}
	return out
}

// factoryFor adapts a SPEC workload to a pipeline source factory.
func factoryFor(w workloads.Workload, opts Options) pipeline.SourceFactory {
	records := opts.records(w.Spec.Records)
	return func() mem.Source { return w.Source(records) }
}

// graphFactory adapts a graph workload.
func graphFactory(g graphs.Workload, opts Options) pipeline.SourceFactory {
	records := opts.records(graphs.DefaultRecords)
	return func() mem.Source { return g.Source(records) }
}

// withGeomean appends a geomean label and extends each series with its
// geometric mean.
func withGeomean(labels []string, series []textplot.Series) ([]string, []textplot.Series) {
	labels = append(labels, "Geomean")
	for i := range series {
		series[i].Values = append(series[i].Values, geomean(series[i].Values))
	}
	return labels, series
}

func geomean(xs []float64) float64 { return stats.Geomean(xs) }

func sortedPCs(m map[mem.Addr]float64) []mem.Addr {
	out := make([]mem.Addr, 0, len(m))
	for pc := range m {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
