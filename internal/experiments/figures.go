package experiments

import (
	"fmt"

	"prophet/internal/core"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/temporal"
	"prophet/internal/textplot"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

// Figure1 reproduces the Figure 1 analysis: a hot interleaved-pattern
// instruction (from omnetpp, footnote 2) observed under an unlimited-table
// temporal prefetcher, classified into useful (blue) and useless (red)
// metadata accesses, with Triangel's PatternConf trajectory overlaid. The
// headline claim — PatternConf collapses during red bursts and then rejects
// insertion for subsequent blue accesses — is quantified in the notes.
func Figure1(opts Options) Result {
	records := opts.records(60_000)
	spec := workloads.Spec{
		Name: "omnetpp-hot-pc",
		Seed: 99,
		Patterns: []workloads.PatternSpec{
			{Kind: workloads.NoisyTemporal, Weight: 1, SeqLines: 3000, NoiseRatio: 0.35, Gap: 4, PCSeed: 620},
		},
		Records: records,
	}
	gen := workloads.NewGenerator(spec, records)

	// Shadow oracle: an unlimited Markov table with no insertion policy
	// (footnote 1 of the paper).
	shadow := map[mem.Line]mem.Line{}
	var prev mem.Line
	havePrev := false

	tr := triangel.New(triangel.Default())

	const samples = 40
	every := int(records) / samples
	if every == 0 {
		every = 1
	}
	var confTrace []float64
	var blue, red, blueRejected uint64
	i := 0
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		line := a.Line()
		if havePrev {
			predicted, known := shadow[prev]
			isBlue := known && predicted == line
			insBefore := tr.TableStats().Insertions + tr.TableStats().Updates
			tr.OnAccess(temporal.AccessEvent{PC: a.PC, Line: line, Hit: false})
			inserted := tr.TableStats().Insertions+tr.TableStats().Updates > insBefore
			if isBlue {
				blue++
				if !inserted {
					blueRejected++
				}
			} else if known {
				red++
			}
			shadow[prev] = line
		} else {
			tr.OnAccess(temporal.AccessEvent{PC: a.PC, Line: line, Hit: false})
		}
		prev, havePrev = line, true
		if i%every == 0 {
			confTrace = append(confTrace, float64(tr.PatternConf(a.PC)))
		}
		i++
	}
	labels := make([]string, len(confTrace))
	for i := range labels {
		labels[i] = fmt.Sprintf("t%02d", i)
	}
	rejFrac := 0.0
	if blue > 0 {
		rejFrac = float64(blueRejected) / float64(blue)
	}
	return Result{
		ID:     "F1",
		Title:  "Interleaved metadata accesses vs Triangel PatternConf (Figure 1)",
		Labels: labels,
		Series: []textplot.Series{{Name: "PatternConf", Values: confTrace}},
		Notes: []string{
			fmt.Sprintf("blue (useful) metadata accesses: %d", blue),
			fmt.Sprintf("red (useless) metadata accesses: %d", red),
			fmt.Sprintf("useful accesses whose insertion Triangel rejected: %d (%.1f%%)", blueRejected, rejFrac*100),
			"shape target: interleaved blue/red stream; PatternConf dips reject a substantial share of useful insertions",
		},
	}
}

// Figure6 reproduces the per-instruction accuracy plot: omnetpp profiled
// under the simplified temporal prefetcher, PC accuracies falling into
// distinct high/medium/low levels.
func Figure6(opts Options) Result {
	cfg := pipeline.Default()
	w := workloads.Omnetpp()
	p := pipeline.NewProphet(cfg)
	counters := p.Profile(factoryFor(w, opts)())

	acc := map[mem.Addr]float64{}
	for pc, e := range counters.PC {
		if a := e.Accuracy(); a >= 0 {
			acc[pc] = a
		}
	}
	var labels []string
	var values []float64
	var high, med, low int
	for _, pc := range sortedPCs(acc) {
		labels = append(labels, fmt.Sprintf("pc_%x", uint64(pc)))
		values = append(values, acc[pc])
		switch {
		case acc[pc] >= 0.75:
			high++
		case acc[pc] >= 0.25:
			med++
		default:
			low++
		}
	}
	return Result{
		ID:     "F6",
		Title:  "Prefetching accuracy per memory instruction, omnetpp (Figure 6)",
		Labels: labels,
		Series: []textplot.Series{{Name: "accuracy", Values: values}},
		Notes: []string{
			fmt.Sprintf("level counts: high=%d medium=%d low=%d", high, med, low),
			"shape target: accuracies cluster into distinct levels usable by Equations 1-2",
		},
	}
}

// Figure8 reproduces the Markov-target histogram: the fraction of source
// addresses exhibiting T distinct successors, per workload.
func Figure8(opts Options) Result {
	set := specSet(opts)
	series := make([]textplot.Series, 5)
	for t := range series {
		series[t].Name = fmt.Sprintf("T=%d", t+1)
	}
	labels := make([]string, len(set))
	for t := range series {
		series[t].Values = make([]float64, len(set))
	}
	forEach(opts.workers(), len(set), func(wi int) {
		w := set[wi]
		h := temporal.NewTargetHistogram(5)
		train := temporal.NewTrainingUnit(1024)
		src := factoryFor(w, opts)()
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			if prev, ok := train.Observe(a.PC, a.Line()); ok && prev != a.Line() {
				h.Observe(uint64(prev), uint64(a.Line()))
			}
		}
		f := h.FractionsMin(2)
		labels[wi] = w.Name
		for t := range series {
			series[t].Values[wi] = f[t]
		}
	})
	labels = append(labels, "Mean")
	for t := range series {
		series[t].Values = append(series[t].Values, stats.Mean(series[t].Values))
	}
	return Result{
		ID:     "F8",
		Title:  "Markov target count distribution (Figure 8)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: T=1 majority, monotonically decreasing tail (paper: 54.85%/20.88%/9.71% for T=1/2/3)"},
	}
}

// Figure10 is the headline SPEC speedup comparison.
func Figure10(opts Options) Result {
	c := runComparisonDefault(opts, specWorkloads(opts))
	labels, series := withGeomean(c.Labels, c.series(func(r schemeRun) float64 { return r.Speedup }))
	return Result{
		ID:     "F10",
		Title:  "IPC speedup vs no-temporal-prefetcher baseline (Figure 10)",
		Labels: labels,
		Series: series,
		Notes: append(c.Notes,
			"shape target: Prophet > Triangel >> RPG2 ~= 1.0 on geomean (paper: 1.346 / 1.204 / 1.001)"),
	}
}

// Figure11 is the DRAM traffic comparison.
func Figure11(opts Options) Result {
	c := runComparisonDefault(opts, specWorkloads(opts))
	labels, series := withGeomean(c.Labels, c.series(func(r schemeRun) float64 { return r.Traffic }))
	return Result{
		ID:     "F11",
		Title:  "Normalized DRAM traffic (Figure 11)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: RPG2 ~= 1.0; Prophet adds a few % over Triangel (paper: +18.67% vs +10.33% over baseline)"},
	}
}

// Figure12 reports prefetching coverage and accuracy.
func Figure12(opts Options) Result {
	c := runComparisonDefault(opts, specWorkloads(opts))
	covLabels, covSeries := withGeomean(append([]string{}, c.Labels...), c.series(func(r schemeRun) float64 { return r.Coverage }))
	accSeries := c.series(func(r schemeRun) float64 { return r.Accuracy })
	accTable := textplot.Table{Title: "(b) Prefetching accuracy", Columns: append([]string{"workload"}, "RPG2", "Triangel", "Prophet")}
	for i, l := range c.Labels {
		accTable.AddRow(l, textplot.F(accSeries[0].Values[i]), textplot.F(accSeries[1].Values[i]), textplot.F(accSeries[2].Values[i]))
	}
	return Result{
		ID:     "F12",
		Title:  "Prefetching coverage (a) and accuracy (b) (Figure 12)",
		Labels: covLabels,
		Series: covSeries,
		Tables: []textplot.Table{accTable},
		Notes:  []string{"shape target: Prophet coverage > Triangel coverage (paper: 42.75% vs 28.08%); accuracies comparable"},
	}
}

// learnStages runs the Figure 13/14 protocol: a cumulative learning pipeline
// evaluated across all inputs after each learning step, bracketed by the
// runtime-only configuration ("Disable") and per-input direct profiling
// ("Direct").
func learnStages(cfg pipeline.Config, opts Options, evalInputs []namedWorkload, learnOrder []namedWorkload, stageNames []string) ([]string, []textplot.Series) {
	workers := opts.workers()
	ev := pipeline.NewEvaluator(cfg, workers)
	baseIPC := make([]float64, len(evalInputs))
	forEach(workers, len(evalInputs), func(i int) {
		baseIPC[i] = ev.Baseline(evalInputs[i].Name, evalInputs[i].Factory).IPC()
	})
	speedup := func(st sim.Stats, i int) float64 { return stats.Speedup(st.IPC(), baseIPC[i]) }

	var series []textplot.Series

	// Disable: the runtime scheme alone (Triage4 + Triangel metadata —
	// the Figure 19 ablation base).
	disable := textplot.Series{Name: "Disable", Values: make([]float64, len(evalInputs))}
	forEach(workers, len(evalInputs), func(i int) {
		eng := core.New(ablationConfig(cfg, core.Features{}), core.HintSet{}, nil)
		st := sim.Run(cfg.Sim, eng, nil, nil, nil, evalInputs[i].Factory())
		disable.Values[i] = speedup(st, i)
	})
	series = append(series, disable)

	// Cumulative learning stages: learning is inherently sequential, but
	// each stage's re-evaluation over every input fans out. Analyze is
	// forced before the fan-out so the parallel runs only read the hints.
	p := pipeline.NewProphet(cfg)
	for si, lw := range learnOrder {
		p.ProfileAndLearn(lw.Factory())
		p.Analyze()
		s := textplot.Series{Name: stageNames[si], Values: make([]float64, len(evalInputs))}
		forEach(workers, len(evalInputs), func(i int) {
			st := p.Run(evalInputs[i].Factory())
			s.Values[i] = speedup(st, i)
		})
		series = append(series, s)
	}

	// Direct: each input profiled for itself (the learning goal).
	direct := textplot.Series{Name: "Direct", Values: make([]float64, len(evalInputs))}
	forEach(workers, len(evalInputs), func(i int) {
		st, _ := pipeline.RunProphetDirect(cfg, evalInputs[i].Factory)
		direct.Values[i] = speedup(st, i)
	})
	series = append(series, direct)

	labels := make([]string, len(evalInputs))
	for i, w := range evalInputs {
		labels[i] = w.Name
	}
	return withGeomean(labels, series)
}

// ablationConfig builds the Prophet engine config for a feature subset at
// the evaluation degree (the "Triage4 + Triangel Meta" base when empty).
func ablationConfig(cfg pipeline.Config, f core.Features) core.Config {
	c := cfg.Prophet
	c.Features = f
	return c
}

// Figure13 is the gcc multi-input learning study.
func Figure13(opts Options) Result {
	cfg := pipeline.Default()
	names := workloads.GCCInputNames()
	if opts.Quick {
		names = []string{"166", "200", "expr", "typeck"}
	}
	var evals []namedWorkload
	for _, n := range names {
		w := workloads.GCC(n)
		if opts.Quick {
			w = w.Scaled(quickScale)
		}
		evals = append(evals, namedWorkload{Name: w.Name, Factory: factoryFor(w, opts)})
	}
	learnNames := []string{"166", "expr", "typeck", "expr2"}
	stageNames := []string{"+166", "+expr", "+typeck", "+expr2"}
	if opts.Quick {
		learnNames = []string{"166", "expr"}
		stageNames = []string{"+166", "+expr"}
	}
	var learn []namedWorkload
	for _, n := range learnNames {
		w := workloads.GCC(n)
		if opts.Quick {
			w = w.Scaled(quickScale)
		}
		learn = append(learn, namedWorkload{Name: w.Name, Factory: factoryFor(w, opts)})
	}
	labels, series := learnStages(cfg, opts, evals, learn, stageNames)
	return Result{
		ID:     "F13",
		Title:  "Prophet learning across gcc inputs (Figure 13)",
		Labels: labels,
		Series: series,
		Notes: []string{
			"shape target: each learned input approaches Direct; unseen gcc_200 improves after learning gcc_expr (shared Load E behaviour)",
		},
	}
}

// Figure14 generalizes the learning study to astar and soplex.
func Figure14(opts Options) Result {
	cfg := pipeline.Default()
	mk := func(w workloads.Workload) namedWorkload {
		if opts.Quick {
			w = w.Scaled(quickScale)
		}
		return namedWorkload{Name: w.Name, Factory: factoryFor(w, opts)}
	}
	astar := []namedWorkload{mk(workloads.AstarBiglakes()), mk(workloads.AstarRivers())}
	soplex := []namedWorkload{mk(workloads.Soplex("pds-50")), mk(workloads.Soplex("ref"))}

	aLabels, aSeries := learnStages(cfg, opts, astar, astar, []string{"+lake", "+river"})
	sLabels, sSeries := learnStages(cfg, opts, soplex, soplex, []string{"+pds", "+ref"})

	// Merge the two families into one result; stage names are positional.
	labels := append(aLabels, sLabels...)
	series := make([]textplot.Series, len(aSeries))
	for i := range aSeries {
		name := aSeries[i].Name
		if name != "Disable" && name != "Direct" {
			name = fmt.Sprintf("+input%d", i)
		}
		series[i] = textplot.Series{Name: name, Values: append(aSeries[i].Values, sSeries[i].Values...)}
	}
	return Result{
		ID:     "F14",
		Title:  "Learning generalization: astar and soplex inputs (Figure 14)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: after learning both inputs the single binary matches Direct on each"},
	}
}

// Figure15 is the CRONO graph-workload comparison.
func Figure15(opts Options) Result {
	c := runComparisonDefault(opts, graphWorkloads(opts))
	labels, series := withGeomean(c.Labels, c.series(func(r schemeRun) float64 { return r.Speedup }))
	return Result{
		ID:     "F15",
		Title:  "IPC speedup on graph workloads (Figure 15)",
		Labels: labels,
		Series: series,
		Notes: append(c.Notes,
			"shape target: Prophet leads; RPG2 competitive (stride kernels are its strength); paper: 1.1485 / 1.0911 / 1.0841"),
	}
}

// sensitivity sweeps one Prophet parameter over the SPEC set, profiling each
// workload once and re-analyzing per setting.
func sensitivity(opts Options, settingNames []string, apply func(cfg *pipeline.Config, setting int)) ([]string, []textplot.Series) {
	set := specWorkloads(opts)
	base := pipeline.Default()
	workers := opts.workers()
	ev := pipeline.NewEvaluator(base, workers)
	series := make([]textplot.Series, len(settingNames))
	for i := range series {
		series[i].Name = settingNames[i]
		series[i].Values = make([]float64, len(set))
	}
	labels := make([]string, len(set))
	forEach(workers, len(set), func(wi int) {
		w := set[wi]
		baseStats := ev.Baseline(w.Name, w.Factory)
		// Step 1 once per workload; the counters feed every setting.
		probe := pipeline.NewProphet(base)
		counters := probe.Profile(w.Factory())
		for si := range settingNames {
			cfg := pipeline.Default()
			apply(&cfg, si)
			p := pipeline.NewProphet(cfg)
			p.Learn(counters.Clone())
			st := p.Run(w.Factory())
			series[si].Values[wi] = stats.Speedup(st.IPC(), baseStats.IPC())
		}
		labels[wi] = w.Name
	})
	return withGeomean(labels, series)
}

// Figure16a sweeps EL_ACC.
func Figure16a(opts Options) Result {
	values := []float64{0.05, 0.15, 0.25}
	labels, series := sensitivity(opts,
		[]string{"EL_ACC=0.05", "EL_ACC=0.15", "EL_ACC=0.25"},
		func(cfg *pipeline.Config, i int) { cfg.Analysis.ELAcc = values[i] })
	return Result{
		ID:     "F16a",
		Title:  "Sensitivity: EL_ACC insertion threshold (Figure 16a)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: the middle setting (0.15) is best or tied-best on geomean"},
	}
}

// Figure16b sweeps the replacement priority bits n.
func Figure16b(opts Options) Result {
	labels, series := sensitivity(opts,
		[]string{"n=1", "n=2", "n=3"},
		func(cfg *pipeline.Config, i int) { cfg.Analysis.PriorityBits = i + 1 })
	return Result{
		ID:     "F16b",
		Title:  "Sensitivity: replacement priority bits n (Figure 16b)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: n>=2 beats n=1 with diminishing returns (paper adopts n=2)"},
	}
}

// Figure16c sweeps the Multi-path Victim Buffer candidate budget.
func Figure16c(opts Options) Result {
	values := []int{1, 2, 4}
	labels, series := sensitivity(opts,
		[]string{"Candidate=1", "Candidate=2", "Candidate=4"},
		func(cfg *pipeline.Config, i int) { cfg.Prophet.MVBCandidates = values[i] })
	return Result{
		ID:     "F16c",
		Title:  "Sensitivity: MVB candidates per entry (Figure 16c)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: Candidate=1 is the best trade-off; more candidates hurt bandwidth-sensitive astar"},
	}
}

// Figure17 re-runs the main comparison with an IPCP-style L1 prefetcher.
func Figure17(opts Options) Result {
	cfg := pipeline.Default()
	cfg.Sim.L1PF = sim.L1IPCP
	c := runComparison(cfg, opts, specWorkloads(opts))
	labels, series := withGeomean(c.Labels, c.series(func(r schemeRun) float64 { return r.Speedup }))
	return Result{
		ID:     "F17",
		Title:  "IPC speedup with an IPCP-style L1 prefetcher (Figure 17)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: ordering preserved under a stronger L1 prefetcher (paper: 1.2995 / 1.1751 / 1.0036)"},
	}
}

// Figure18 re-runs the main comparison with two DRAM channels.
func Figure18(opts Options) Result {
	cfg := pipeline.Default()
	cfg.Sim.DRAM.Channels = 2
	c := runComparison(cfg, opts, specWorkloads(opts))
	labels, series := withGeomean(c.Labels, c.series(func(r schemeRun) float64 { return r.Speedup }))
	return Result{
		ID:     "F18",
		Title:  "IPC speedup with doubled DRAM channels (Figure 18)",
		Labels: labels,
		Series: series,
		Notes:  []string{"shape target: ordering preserved with extra bandwidth (paper: 1.3227 / 1.1817 / 1.001)"},
	}
}

// Figure19 is the cumulative feature ablation: Triage4 + Triangel metadata,
// then +Repla, +Insert, +MVB, +Resize.
func Figure19(opts Options) Result {
	cfg := pipeline.Default()
	stages := []struct {
		name string
		f    core.Features
	}{
		{"Triage4+Meta", core.Features{}},
		{"+Repla", core.Features{Replacement: true}},
		{"+Insert", core.Features{Replacement: true, Insertion: true}},
		{"+MVB", core.Features{Replacement: true, Insertion: true, MVB: true}},
		{"+Resize", core.AllFeatures()},
	}
	set := specWorkloads(opts)
	workers := opts.workers()
	ev := pipeline.NewEvaluator(cfg, workers)
	speedups := make([]textplot.Series, len(stages))
	traffic := textplot.Table{Title: "(b) Normalized DRAM traffic", Columns: []string{"workload", "Triage4+Meta", "+Repla", "+Insert", "+MVB", "+Resize"}}
	for i := range stages {
		speedups[i].Name = stages[i].name
		speedups[i].Values = make([]float64, len(set))
	}
	labels := make([]string, len(set))
	rows := make([][]string, len(set))
	forEach(workers, len(set), func(wi int) {
		w := set[wi]
		base := ev.Baseline(w.Name, w.Factory)
		p := pipeline.NewProphet(cfg)
		p.ProfileAndLearn(w.Factory())
		row := []string{w.Name}
		for si, st := range stages {
			runStats := p.RunWithFeatures(st.f, w.Factory())
			speedups[si].Values[wi] = stats.Speedup(runStats.IPC(), base.IPC())
			row = append(row, textplot.F(stats.NormalizedTraffic(runStats.DRAMTraffic(), base.DRAMTraffic())))
		}
		rows[wi] = row
		labels[wi] = w.Name
	})
	for _, row := range rows {
		traffic.AddRow(row...)
	}
	labels, speedups = withGeomean(labels, speedups)
	return Result{
		ID:     "F19",
		Title:  "Prophet features breakdown (Figure 19)",
		Labels: labels,
		Series: speedups,
		Tables: []textplot.Table{traffic},
		Notes: []string{
			"shape target: cumulative gains; mcf benefits most from +Insert, soplex from +MVB, sphinx3 from +Resize",
		},
	}
}
