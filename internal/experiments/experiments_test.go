package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"T1", "F1", "F6", "F8", "F10", "F11", "F12", "F13", "F14",
		"F15", "F16a", "F16b", "F16c", "F17", "F18", "F19", "OV", "ST", "EN"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Errorf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("F99", quick); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1RendersConfig(t *testing.T) {
	res := Table1(quick)
	out := res.Render()
	for _, want := range []string{"288-entry ROB", "2 MB, 16-way", "degree-8 stride"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFigure1ShowsPatternConfCollapse(t *testing.T) {
	res := Figure1(Options{Records: 40_000})
	if len(res.Series) == 0 || len(res.Series[0].Values) == 0 {
		t.Fatal("no PatternConf trace")
	}
	min := res.Series[0].Values[0]
	for _, v := range res.Series[0].Values {
		if v < min {
			min = v
		}
	}
	if min > 2 {
		t.Fatalf("PatternConf never collapsed (min %v); Figure 1's failure mode missing", min)
	}
}

func TestFigure8Monotone(t *testing.T) {
	res := Figure8(quick)
	t1, ok1 := res.Value("T=1", "Mean")
	t2, ok2 := res.Value("T=2", "Mean")
	t3, ok3 := res.Value("T=3", "Mean")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("missing histogram values")
	}
	if !(t1 > t2 && t2 > t3) {
		t.Fatalf("target distribution not decreasing: %v %v %v", t1, t2, t3)
	}
	if t1 < 0.4 {
		t.Fatalf("T=1 fraction %v too small; should be the majority", t1)
	}
	if t2 < 0.01 {
		t.Fatalf("T=2 fraction %v; multi-target sources missing (Figure 8)", t2)
	}
}

func TestFigure10Ordering(t *testing.T) {
	res := Figure10(quick)
	pr, _ := res.Value("Prophet", "Geomean")
	tr, _ := res.Value("Triangel", "Geomean")
	rp, _ := res.Value("RPG2", "Geomean")
	if pr <= tr {
		t.Fatalf("Prophet (%.3f) must beat Triangel (%.3f) on geomean", pr, tr)
	}
	if rp < 0.97 || rp > 1.1 {
		t.Fatalf("RPG2 geomean %.3f; should sit at ~1.0 on SPEC-like workloads", rp)
	}
}

func TestFigure13LearningConverges(t *testing.T) {
	res := Figure13(quick)
	disable, _ := res.Value("Disable", "Geomean")
	direct, _ := res.Value("Direct", "Geomean")
	// The final learned stage must be near Direct and above Disable.
	var last float64
	for _, s := range res.Series {
		if strings.HasPrefix(s.Name, "+") {
			last = s.Values[len(s.Values)-1]
		}
	}
	if last <= disable {
		t.Fatalf("learning (%.3f) did not improve over Disable (%.3f)", last, disable)
	}
	if last < direct*0.97 {
		t.Fatalf("learned binary (%.3f) far from Direct (%.3f)", last, direct)
	}
}

func TestFigure19CumulativeFeatures(t *testing.T) {
	res := Figure19(quick)
	base, _ := res.Value("Triage4+Meta", "Geomean")
	full, _ := res.Value("+Resize", "Geomean")
	if full <= base {
		t.Fatalf("full Prophet (%.3f) must beat the ablation base (%.3f)", full, base)
	}
	if len(res.Tables) == 0 {
		t.Fatal("traffic table missing")
	}
}

func TestStorageOverheadNumbers(t *testing.T) {
	out := StorageOverhead(quick).Render()
	for _, want := range []string{"48.00", "0.19", "344.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("storage table missing %s KB", want)
		}
	}
}

func TestOverheadsWithinBudgets(t *testing.T) {
	res := Overheads(quick)
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatal(n)
		}
	}
}

// TestParallelRenderByteIdentical pins the acceptance criterion for the
// concurrent sweep engine: an experiment rendered with N workers is
// byte-identical to the serial rendering.
func TestParallelRenderByteIdentical(t *testing.T) {
	for _, id := range []string{"F8", "F10"} {
		serial, err := Run(id, Options{Quick: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Run(id, Options{Quick: true, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if s, p := serial.Render(), parallel.Render(); s != p {
			t.Errorf("%s rendering differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
	}
}

func TestResultValueMissing(t *testing.T) {
	r := Result{Labels: []string{"a"}, Series: nil}
	if _, ok := r.Value("x", "a"); ok {
		t.Fatal("missing series reported ok")
	}
	if _, ok := r.Value("x", "zz"); ok {
		t.Fatal("missing label reported ok")
	}
}
