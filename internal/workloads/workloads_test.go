package workloads

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
)

func TestDeterministicTraces(t *testing.T) {
	for _, w := range SPEC() {
		a := mem.Collect(w.Source(5000), 0)
		b := mem.Collect(w.Source(5000), 0)
		if len(a) != 5000 || len(b) != 5000 {
			t.Fatalf("%s: wrong lengths %d/%d", w.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs: %+v vs %+v", w.Name, i, a[i], b[i])
			}
		}
	}
}

func TestCatalogResolvesAllNames(t *testing.T) {
	for _, w := range All() {
		got, ok := Get(w.Name)
		if !ok || got.Name != w.Name {
			t.Errorf("Get(%q) failed", w.Name)
		}
	}
	if _, ok := Get("no_such_workload"); ok {
		t.Error("Get accepted a bogus name")
	}
}

func TestSPECSetMatchesFigure10(t *testing.T) {
	want := []string{"astar_biglakes", "gcc_166", "mcf", "omnetpp", "soplex_pds-50", "sphinx3", "xalancbmk"}
	set := SPEC()
	if len(set) != len(want) {
		t.Fatalf("SPEC set has %d workloads", len(set))
	}
	for i, w := range set {
		if w.Name != want[i] {
			t.Errorf("SPEC[%d] = %s, want %s", i, w.Name, want[i])
		}
	}
}

func TestGCCNineInputs(t *testing.T) {
	names := GCCInputNames()
	if len(names) != 9 {
		t.Fatalf("gcc inputs = %d, want 9 (Figure 13)", len(names))
	}
	for _, n := range names {
		w := GCC(n)
		if w.Name != "gcc_"+n {
			t.Errorf("GCC(%q).Name = %s", n, w.Name)
		}
	}
}

func TestGCCUnknownInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GCC with unknown input should panic")
		}
	}()
	GCC("nope")
}

// Figure 7 structure: shared Load A PCs appear under every gcc input with
// identical address sequences; input-specific PCs do not overlap.
func TestGCCSharedAndSpecificPCs(t *testing.T) {
	pcsOf := func(name string) map[mem.Addr][]mem.Line {
		out := map[mem.Addr][]mem.Line{}
		src := GCC(name).Source(30000)
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			if len(out[a.PC]) < 50 {
				out[a.PC] = append(out[a.PC], a.Line())
			}
		}
		return out
	}
	a := pcsOf("166")
	b := pcsOf("typeck")
	shared := 0
	identical := 0
	for pc, seqA := range a {
		seqB, ok := b[pc]
		if !ok {
			continue
		}
		shared++
		if len(seqA) > 10 && len(seqB) > 10 {
			same := true
			n := len(seqA)
			if len(seqB) < n {
				n = len(seqB)
			}
			// Interleaving differs between inputs, so compare sets
			// loosely: identical region base implies shared stream.
			if seqA[0]>>20 != seqB[0]>>20 {
				same = false
			}
			if same {
				identical++
			}
		}
	}
	if shared < 5 {
		t.Fatalf("only %d shared PCs between gcc inputs; Figure 7 needs Load A/E sharing", shared)
	}
	if identical == 0 {
		t.Fatal("no shared PC uses the same address region across inputs")
	}
	// Input-specific PCs must exist on both sides.
	onlyA := 0
	for pc := range a {
		if _, ok := b[pc]; !ok {
			onlyA++
		}
	}
	if onlyA == 0 {
		t.Fatal("no input-specific PCs (Loads B/C missing)")
	}
}

func TestPointerChaseDependencies(t *testing.T) {
	w := spec("chase", 1, PatternSpec{Kind: PointerChase, Weight: 1, SeqLines: 100, Gap: 2})
	recs := mem.Collect(w.Source(1000), 0)
	deps := 0
	for _, r := range recs {
		if r.Dep != 0 {
			deps++
		}
	}
	if deps < 900 {
		t.Fatalf("pointer chase emitted only %d/1000 dependent records", deps)
	}
	// Single stream: dependence distance is exactly 1.
	for i, r := range recs[1:] {
		if r.Dep != 1 {
			t.Fatalf("record %d Dep = %d, want 1", i+1, r.Dep)
		}
	}
}

func TestTemporalSequenceRepeats(t *testing.T) {
	w := spec("rep", 2, PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 50})
	recs := mem.Collect(w.Source(150), 0)
	for i := 0; i < 50; i++ {
		if recs[i].Addr != recs[i+50].Addr || recs[i].Addr != recs[i+100].Addr {
			t.Fatalf("sequence does not repeat at position %d", i)
		}
	}
}

func TestMultiPathAlternatesSuccessors(t *testing.T) {
	w := spec("mp", 3, PatternSpec{Kind: MultiPath, Weight: 1, SeqLines: 40, Paths: 2})
	recs := mem.Collect(w.Source(400), 0)
	succ := map[mem.Line]map[mem.Line]bool{}
	for i := 1; i < len(recs); i++ {
		prev, cur := recs[i-1].Line(), recs[i].Line()
		if succ[prev] == nil {
			succ[prev] = map[mem.Line]bool{}
		}
		succ[prev][cur] = true
	}
	multi := 0
	for _, s := range succ {
		if len(s) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("multi-path stream produced no multi-successor sources (Figure 8 pattern missing)")
	}
}

func TestIndirectStrideHasStridedKernel(t *testing.T) {
	w := spec("ind", 4, PatternSpec{Kind: IndirectStride, Weight: 1, SeqLines: 512})
	recs := mem.Collect(w.Source(2000), 0)
	// Kernel PC accesses advance monotonically (strided); data PC accesses
	// depend on the kernel.
	var kernelPC mem.Addr
	for i := 1; i < len(recs); i++ {
		if recs[i].Dep != 0 {
			kernelPC = recs[i-1].PC
			break
		}
	}
	if kernelPC == 0 {
		t.Fatal("no dependent data access found")
	}
	var last mem.Addr
	for _, r := range recs {
		if r.PC == kernelPC {
			if last != 0 && r.Addr < last {
				t.Fatal("kernel PC addresses not monotonic")
			}
			last = r.Addr
		}
	}
}

func TestRandomAccessDoesNotRepeat(t *testing.T) {
	w := spec("rnd", 5, PatternSpec{Kind: RandomAccess, Weight: 1})
	recs := mem.Collect(w.Source(5000), 0)
	seen := map[mem.Line]int{}
	for _, r := range recs {
		seen[r.Line()]++
	}
	if len(seen) < 4900 {
		t.Fatalf("random stream only %d distinct lines of 5000", len(seen))
	}
}

func TestScaledShrinksSequencesAndRecords(t *testing.T) {
	w := MCF()
	s := w.Scaled(50)
	if s.Spec.Records != w.Spec.Records/2 {
		t.Errorf("Records = %d, want %d", s.Spec.Records, w.Spec.Records/2)
	}
	for i := range s.Spec.Patterns {
		if w.Spec.Patterns[i].SeqLines > 0 && s.Spec.Patterns[i].SeqLines != w.Spec.Patterns[i].SeqLines/2 {
			t.Errorf("pattern %d SeqLines = %d, want %d", i, s.Spec.Patterns[i].SeqLines, w.Spec.Patterns[i].SeqLines/2)
		}
	}
	// Original must be untouched (deep copy).
	if w.Spec.Patterns[0].SeqLines != MCF().Spec.Patterns[0].SeqLines {
		t.Error("Scaled mutated the original workload")
	}
	if same := w.Scaled(100); &same.Spec.Patterns[0] != &w.Spec.Patterns[0] {
		// Scaled(100) returns the workload unchanged.
		t.Error("Scaled(100) should be a no-op")
	}
}

func TestClonesSplitWeightAndPCs(t *testing.T) {
	w := spec("cl", 6,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 100, Clones: 3, PCSeed: 900},
	)
	recs := mem.Collect(w.Source(3000), 0)
	pcs := map[mem.Addr]int{}
	for _, r := range recs {
		pcs[r.PC]++
	}
	if len(pcs) != 3 {
		t.Fatalf("3 clones produced %d PCs", len(pcs))
	}
	for pc, n := range pcs {
		if n < 600 || n > 1400 {
			t.Errorf("clone pc %v saw %d records; weights not split evenly", pc, n)
		}
	}
}

func TestGapsAndStores(t *testing.T) {
	w := spec("gs", 7, PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 100, Gap: 5, StoreRatio: 0.3})
	recs := mem.Collect(w.Source(2000), 0)
	stores := 0
	for _, r := range recs {
		if r.Gap < 5 || r.Gap > 7 {
			t.Fatalf("gap %d outside [5,7]", r.Gap)
		}
		if r.Kind == mem.Store {
			stores++
		}
	}
	if stores < 400 || stores > 800 {
		t.Fatalf("stores = %d of 2000, want ~30%%", stores)
	}
}

// Property: any pattern mix produces exactly the requested record count with
// addresses inside the pattern's region space.
func TestGeneratorProducesRequestedRecords(t *testing.T) {
	f := func(seed uint64, kindRaw uint8) bool {
		kind := PatternKind(kindRaw % 8)
		w := spec("prop", seed%1000+1, PatternSpec{Kind: kind, Weight: 1, SeqLines: 256, Paths: 2})
		recs := mem.Collect(w.Source(777), 0)
		return len(recs) == 777
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func TestPatternKindString(t *testing.T) {
	for k := PatternKind(0); k < 8; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestSoplexUnknownInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Soplex with unknown input should panic")
		}
	}()
	Soplex("nope")
}
