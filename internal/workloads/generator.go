// Package workloads provides the synthetic SPEC-CPU-like irregular
// workloads of the evaluation. Real SPEC traces are not redistributable, so
// each workload is a parameterized generator reproducing the memory-access
// *character* the paper's results depend on (see DESIGN.md §4): pointer
// chasing, interleaved useful/useless temporal patterns, multi-path Markov
// sequences, computed (non-stride) prefetch kernels, metadata footprints
// above and below the 1MB table, and bandwidth sensitivity.
//
// A workload is a weighted interleaving of pattern streams. Every stream
// owns one instruction PC and one address region, so per-PC training in the
// prefetchers sees exactly the stream's pattern, and profile-guided hints
// attach to meaningful instructions. All randomness is seeded; the same
// workload name always produces bit-identical traces.
package workloads

import (
	"fmt"
	"math"

	"prophet/internal/mem"
)

// PatternKind classifies a stream's access pattern.
type PatternKind uint8

const (
	// Temporal is a repeating irregular sequence of lines — the solvable
	// temporal pattern hardware prefetchers target.
	Temporal PatternKind = iota
	// NoisyTemporal interleaves a temporal sequence with same-PC random
	// accesses: Figure 1's blue/red interleaving that defeats PatternConf.
	NoisyTemporal
	// PointerChase is a repeating traversal whose loads serialize
	// (Dep = previous record of the stream): linked structures.
	PointerChase
	// IndirectStride is a[b[i]] with a strided index kernel: the RPG2-
	// friendly pattern dominating CRONO-style code.
	IndirectStride
	// IndirectComputed is a[f(i)] with a non-stride, data-dependent
	// kernel (mcf's pattern): temporal-solvable, RPG2-unsolvable.
	IndirectComputed
	// RandomAccess has no pattern at all: prefetching it only wastes
	// bandwidth and metadata (the EL_ACC filter's target).
	RandomAccess
	// MultiPath is a temporal sequence where branch points alternate
	// between successors across passes — multiple Markov targets
	// (Section 4.5, Figure 8).
	MultiPath
	// StreamScan is a sequential sweep the L1 stride prefetcher covers.
	StreamScan
)

// String names the pattern.
func (k PatternKind) String() string {
	switch k {
	case Temporal:
		return "temporal"
	case NoisyTemporal:
		return "noisy-temporal"
	case PointerChase:
		return "pointer-chase"
	case IndirectStride:
		return "indirect-stride"
	case IndirectComputed:
		return "indirect-computed"
	case RandomAccess:
		return "random"
	case MultiPath:
		return "multi-path"
	case StreamScan:
		return "stream"
	}
	return fmt.Sprintf("PatternKind(%d)", uint8(k))
}

// PatternSpec describes one stream of a workload.
type PatternSpec struct {
	// Kind selects the pattern.
	Kind PatternKind
	// Weight is the stream's share of memory records.
	Weight float64
	// SeqLines is the temporal sequence length in lines (patterns with a
	// sequence); also the index-array length for indirect kinds.
	SeqLines int
	// NoiseRatio is the same-PC random-access fraction (NoisyTemporal).
	NoiseRatio float64
	// Paths is the successor count at branch points (MultiPath).
	Paths int
	// Gap is the non-memory instruction count between accesses.
	Gap int
	// StoreRatio is the fraction of accesses that are stores.
	StoreRatio float64
	// PCSeed differentiates otherwise-identical streams; streams with
	// equal PCSeed across workload variants share PC and region (the
	// "Load A/E" sharing of Figure 7). 0 derives it from position.
	PCSeed uint64
	// SeqSeed seeds sequence generation; equal seeds give identical
	// sequences (hint transfer across inputs). 0 derives from PCSeed.
	SeqSeed uint64
	// Serial forces address dependence on the stream's previous record
	// even for kinds that are not inherently chained (e.g. MultiPath
	// pivot chains): the core then serializes the stream's misses.
	Serial bool
	// Clones expands the spec into this many independent streams with
	// distinct PCs and regions, splitting Weight evenly (0/1 = one).
	// Clone PCs derive deterministically from PCSeed, so cloned streams
	// still share hints across workload variants.
	Clones int
}

// Spec is a complete workload description.
type Spec struct {
	// Name identifies the workload ("mcf", "gcc_166", ...).
	Name string
	// Seed drives the interleaving schedule.
	Seed uint64
	// Patterns are the component streams.
	Patterns []PatternSpec
	// Records is the default trace length in memory records.
	Records uint64
}

// pcFor derives the stream's instruction address from its seed.
func pcFor(seed uint64) mem.Addr { return mem.Addr(0x400000 + seed*0x40) }

// regionFor derives the stream's address-region base line from its seed.
// Regions are 1M lines (64MB) apart, far larger than any stream needs.
func regionFor(seed uint64) mem.Line { return mem.Line(1<<24 + seed*(1<<20)) }

// stream is the per-pattern generator state.
type stream struct {
	spec   PatternSpec
	pc     mem.Addr
	region mem.Line
	rng    *mem.PRNG

	seq []mem.Line // temporal order (Temporal/Noisy/Pointer/MultiPath)
	pos int
	// MultiPath branch variants: variants[p][b] is the line used at
	// branch b on passes where pass%Paths == p.
	variants [][]mem.Line
	pass     int
	// Indirect kinds.
	idx        []int // index-array values (line offsets into the region)
	iter       int
	kernelPC   mem.Addr
	kernelBase mem.Line
	emitData   bool
	lastKnown  mem.Line
}

const (
	// kernelElemsPerLine: 8 8-byte indices per 64B line, so the kernel PC
	// touches a new line every 8 iterations (a 12.5%+ miss ratio, enough
	// to qualify for RPG2).
	kernelElemsPerLine = 8
	// branchEvery: MultiPath sequences branch at every 4th element.
	branchEvery = 4
	// noiseSpanLines: the region span used for noise/random accesses.
	noiseSpanLines = 1 << 19 // 32MB of lines
)

// newStream builds the per-pattern state. sp.PCSeed is always non-zero here
// (NewGenerator's clone expansion derives missing seeds); regionSeed is the
// stream's collision-free region slot assigned by NewGenerator.
func newStream(sp PatternSpec, regionSeed uint64) *stream {
	pcSeed := sp.PCSeed
	seqSeed := sp.SeqSeed
	if seqSeed == 0 {
		seqSeed = pcSeed
	}
	s := &stream{
		spec:   sp,
		pc:     pcFor(pcSeed),
		region: regionFor(regionSeed),
		rng:    mem.NewPRNG(seqSeed*0x9e37 + 17),
	}
	n := sp.SeqLines
	if n <= 0 {
		n = 1024
	}
	switch sp.Kind {
	case Temporal, NoisyTemporal, PointerChase:
		s.seq = permutedLines(s.region, n, mem.NewPRNG(seqSeed))
	case MultiPath:
		s.seq = permutedLines(s.region, n, mem.NewPRNG(seqSeed))
		paths := sp.Paths
		if paths < 2 {
			paths = 2
		}
		branches := n / branchEvery
		s.variants = make([][]mem.Line, paths)
		vr := mem.NewPRNG(seqSeed + 7)
		for p := range s.variants {
			s.variants[p] = make([]mem.Line, branches)
			for b := range s.variants[p] {
				if p == 0 {
					// Path 0 keeps the base sequence line.
					s.variants[p][b] = s.seq[b*branchEvery+branchEvery-1]
				} else {
					s.variants[p][b] = s.region + mem.Line(n+vr.Intn(n))
				}
			}
		}
	case IndirectStride, IndirectComputed:
		s.idx = make([]int, n)
		ir := mem.NewPRNG(seqSeed + 3)
		for i := range s.idx {
			s.idx[i] = ir.Intn(n)
		}
		s.kernelPC = s.pc + 8
		s.kernelBase = s.region + mem.Line(2*n)
	}
	return s
}

// permutedLines returns a deterministic pseudo-random visit order over n
// lines starting at base.
func permutedLines(base mem.Line, n int, rng *mem.PRNG) []mem.Line {
	perm := rng.Perm(n)
	out := make([]mem.Line, n)
	for i, p := range perm {
		out[i] = base + mem.Line(p)
	}
	return out
}

// emit produces the stream's next access. serial reports whether the record
// depends on the stream's previous record.
func (s *stream) emit() (a mem.Access, serial bool) {
	sp := s.spec
	kind := mem.Load
	if sp.StoreRatio > 0 && s.rng.Float64() < sp.StoreRatio {
		kind = mem.Store
	}
	gap := sp.Gap
	if gap > 0 {
		gap += s.rng.Intn(3)
	}
	// Gap is a uint16 on the wire: clamp instead of wrapping, so an
	// oversized spec Gap (or Gap+jitter crossing 65535) saturates rather
	// than silently producing a tiny gap.
	if gap > math.MaxUint16 {
		gap = math.MaxUint16
	} else if gap < 0 {
		gap = 0
	}
	base := mem.Access{PC: s.pc, Kind: kind, Gap: uint16(gap)}

	switch sp.Kind {
	case Temporal, NoisyTemporal:
		if sp.NoiseRatio > 0 && s.rng.Float64() < sp.NoiseRatio {
			base.Addr = (s.region + mem.Line(len(s.seq)*2+s.rng.Intn(noiseSpanLines))).Addr()
			return base, sp.Serial
		}
		base.Addr = s.seq[s.pos].Addr()
		s.advance()
		return base, sp.Serial
	case PointerChase:
		base.Addr = s.seq[s.pos].Addr()
		s.advance()
		if sp.NoiseRatio > 0 && s.rng.Float64() < sp.NoiseRatio {
			base.Addr = (s.region + mem.Line(len(s.seq)*2+s.rng.Intn(noiseSpanLines))).Addr()
		}
		return base, true
	case MultiPath:
		line := s.seq[s.pos]
		if (s.pos+1)%branchEvery == 0 {
			b := s.pos / branchEvery
			p := (s.pass + b) % len(s.variants)
			if b < len(s.variants[p]) {
				line = s.variants[p][b]
			}
		}
		base.Addr = line.Addr()
		s.advance()
		return base, sp.Serial
	case IndirectStride:
		if s.emitData {
			s.emitData = false
			base.Addr = (s.region + mem.Line(s.idx[s.iter%len(s.idx)])).Addr()
			s.iter++
			return base, true // a[b[i]] depends on the kernel load
		}
		s.emitData = true
		base.PC = s.kernelPC
		base.Addr = (s.kernelBase + mem.Line(s.iter/kernelElemsPerLine)).Addr()
		if s.iter/kernelElemsPerLine >= 1<<18 {
			s.iter = 0 // wrap the kernel sweep
		}
		return base, false
	case IndirectComputed:
		if s.emitData {
			s.emitData = false
			base.Addr = (s.region + mem.Line(s.idx[s.iter%len(s.idx)])).Addr()
			s.iter++
			return base, true
		}
		s.emitData = true
		base.PC = s.kernelPC
		// Computed kernel: the kernel address itself hops irregularly
		// (multi-step arithmetic in mcf), so neither stride prefetcher
		// nor RPG2 can cover it — but the hop order repeats, so
		// temporal prefetching can.
		base.Addr = (s.kernelBase + mem.Line(s.idx[(s.iter*7+3)%len(s.idx)])).Addr()
		return base, true
	case RandomAccess:
		base.Addr = (s.region + mem.Line(s.rng.Intn(noiseSpanLines))).Addr()
		return base, false
	case StreamScan:
		wrap := sp.SeqLines
		if wrap <= 0 {
			wrap = 1 << 18
		}
		base.Addr = (s.region + mem.Line(s.pos)).Addr()
		s.pos = (s.pos + 1) % wrap
		return base, false
	}
	base.Addr = s.region.Addr()
	return base, false
}

func (s *stream) advance() {
	s.pos++
	if s.pos >= len(s.seq) {
		s.pos = 0
		s.pass++
	}
}

// Generator interleaves a workload's streams into one trace.
type Generator struct {
	streams []*stream
	cum     []float64 // cumulative weights for stream selection
	rng     *mem.PRNG
	lastIdx []uint64 // global record index of each stream's last record
	count   uint64
	limit   uint64
}

// regionSlots is the number of distinct address regions; region assignment
// hashes pcSeed into this space and rehashes on collision.
const regionSlots = 4096

// NewGenerator builds a deterministic trace source for spec, producing
// records memory records (spec.Records when records == 0).
//
// Invalid specs panic with a descriptive message rather than silently
// corrupting traces: a spec with no patterns, a negative/NaN/Inf weight, or
// a zero total weight would otherwise yield NaN cumulative weights that pin
// every record to the last stream.
func NewGenerator(spec Spec, records uint64) *Generator {
	if len(spec.Patterns) == 0 {
		panic(fmt.Sprintf("workloads: spec %q has no patterns", spec.Name))
	}
	if records == 0 {
		records = spec.Records
	}
	g := &Generator{
		rng:   mem.NewPRNG(spec.Seed),
		limit: records,
	}
	expanded := make([]PatternSpec, 0, len(spec.Patterns))
	for i, p := range spec.Patterns {
		if p.Weight < 0 || math.IsNaN(p.Weight) || math.IsInf(p.Weight, 0) {
			panic(fmt.Sprintf("workloads: spec %q pattern %d (%s) has invalid weight %v",
				spec.Name, i, p.Kind, p.Weight))
		}
		n := p.Clones
		if n < 1 {
			n = 1
		}
		base := p.PCSeed
		if base == 0 {
			base = spec.Seed*131 + uint64(i) + 1
		}
		for c := 0; c < n; c++ {
			cp := p
			cp.Weight = p.Weight / float64(n)
			cp.PCSeed = base + uint64(c)*7001
			if p.SeqSeed != 0 {
				cp.SeqSeed = p.SeqSeed + uint64(c)*7001
			}
			expanded = append(expanded, cp)
		}
	}
	if len(expanded) > regionSlots {
		panic(fmt.Sprintf("workloads: spec %q expands to %d streams, more than the %d address regions",
			spec.Name, len(expanded), regionSlots))
	}
	g.lastIdx = make([]uint64, len(expanded))
	total := 0.0
	for _, p := range expanded {
		total += p.Weight
	}
	if !(total > 0) {
		panic(fmt.Sprintf("workloads: spec %q has zero total pattern weight", spec.Name))
	}
	// Region assignment: each stream wants slot pcSeed % regionSlots. Two
	// streams whose pcSeeds differ by a multiple of regionSlots (reachable
	// via the 7001 clone offset) would silently share an address region
	// while keeping distinct PCs, corrupting per-stream pattern isolation.
	// Two passes keep the fix strictly additive: every stream first claims
	// its natural slot (first claimant wins; streams with an identical full
	// pcSeed intentionally share PC and region), then true colliders — and
	// only colliders — probe linearly into slots no stream naturally owns.
	// Non-colliding streams therefore always keep their historical region,
	// whatever their construction order, so existing catalog traces (golden
	// fixtures) are unchanged.
	owner := make(map[uint64]uint64, len(expanded)) // region slot -> full pcSeed
	for _, p := range expanded {
		if _, taken := owner[p.PCSeed%regionSlots]; !taken {
			owner[p.PCSeed%regionSlots] = p.PCSeed
		}
	}
	acc := 0.0
	for _, p := range expanded {
		slot := p.PCSeed % regionSlots
		if owner[slot] != p.PCSeed { // collider: probe past every claimed slot
			for {
				slot = (slot + 1) % regionSlots
				o, taken := owner[slot]
				if !taken || o == p.PCSeed {
					break
				}
			}
			owner[slot] = p.PCSeed
		}
		g.streams = append(g.streams, newStream(p, slot))
		acc += p.Weight / total
		g.cum = append(g.cum, acc)
	}
	return g
}

// Next implements mem.Source.
func (g *Generator) Next() (mem.Access, bool) {
	if g.count >= g.limit || len(g.streams) == 0 {
		return mem.Access{}, false
	}
	r := g.rng.Float64()
	idx := len(g.streams) - 1
	for i, c := range g.cum {
		if r < c {
			idx = i
			break
		}
	}
	a, serial := g.streams[idx].emit()
	g.count++
	if serial && g.lastIdx[idx] > 0 {
		dep := g.count - g.lastIdx[idx]
		if dep > 4096 {
			dep = 0 // too far back to matter; treat as independent
		}
		a.Dep = uint32(dep)
	}
	g.lastIdx[idx] = g.count
	return a, true
}

var _ mem.Source = (*Generator)(nil)
