// Regression tests for the generator's construction-time validation and
// stream isolation: zero/NaN weights, empty patterns, region-collision
// rehashing, clone seed derivation, and Gap saturation.
package workloads

import (
	"math"
	"strings"
	"testing"

	"prophet/internal/mem"
)

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

func TestEmptyPatternsPanics(t *testing.T) {
	mustPanic(t, "has no patterns", func() {
		NewGenerator(Spec{Name: "empty", Seed: 1, Records: 100}, 0)
	})
}

func TestZeroTotalWeightPanics(t *testing.T) {
	mustPanic(t, "zero total pattern weight", func() {
		NewGenerator(Spec{Name: "zw", Seed: 1, Records: 100, Patterns: []PatternSpec{
			{Kind: Temporal, Weight: 0, SeqLines: 64},
			{Kind: RandomAccess, Weight: 0},
		}}, 0)
	})
}

func TestNaNWeightPanics(t *testing.T) {
	mustPanic(t, "invalid weight", func() {
		NewGenerator(Spec{Name: "nan", Seed: 1, Records: 100, Patterns: []PatternSpec{
			{Kind: Temporal, Weight: math.NaN(), SeqLines: 64},
			{Kind: RandomAccess, Weight: 1},
		}}, 0)
	})
}

func TestNegativeWeightPanics(t *testing.T) {
	mustPanic(t, "invalid weight", func() {
		NewGenerator(Spec{Name: "neg", Seed: 1, Records: 100, Patterns: []PatternSpec{
			{Kind: Temporal, Weight: -0.5, SeqLines: 64},
			{Kind: RandomAccess, Weight: 1.5},
		}}, 0)
	})
}

func TestInfWeightPanics(t *testing.T) {
	mustPanic(t, "invalid weight", func() {
		NewGenerator(Spec{Name: "inf", Seed: 1, Records: 100, Patterns: []PatternSpec{
			{Kind: Temporal, Weight: math.Inf(1), SeqLines: 64},
		}}, 0)
	})
}

// regionsByPC replays a trace and groups the 64MB-region index of every
// non-noise line by PC. Temporal streams without noise touch only their own
// region, so disjoint region sets prove stream isolation.
func regionsByPC(src mem.Source) map[mem.Addr]map[mem.Line]bool {
	out := map[mem.Addr]map[mem.Line]bool{}
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if out[a.PC] == nil {
			out[a.PC] = map[mem.Line]bool{}
		}
		out[a.PC][a.Line()>>20] = true
	}
	return out
}

// Streams whose pcSeeds differ by a multiple of 4096 — reachable through the
// 7001 clone offset — must not share an address region. PCSeed 630 with
// Clones 2 yields a clone at seed 7631; 7631 % 4096 == 3535, colliding with
// an explicit PCSeed 3535 stream.
func TestRegionCollisionRehashed(t *testing.T) {
	w := spec("collide", 11,
		PatternSpec{Kind: Temporal, Weight: 0.5, SeqLines: 128, Clones: 2, PCSeed: 630},
		PatternSpec{Kind: Temporal, Weight: 0.5, SeqLines: 128, PCSeed: 3535},
	)
	regions := regionsByPC(w.Source(6000))
	if len(regions) != 3 {
		t.Fatalf("got %d PCs, want 3", len(regions))
	}
	assertDisjointRegions(t, regions)

	// The direct form: two plain streams 4096 apart.
	w2 := spec("collide2", 12,
		PatternSpec{Kind: Temporal, Weight: 0.5, SeqLines: 128, PCSeed: 100},
		PatternSpec{Kind: Temporal, Weight: 0.5, SeqLines: 128, PCSeed: 100 + 4096},
	)
	regions2 := regionsByPC(w2.Source(4000))
	if len(regions2) != 2 {
		t.Fatalf("got %d PCs, want 2", len(regions2))
	}
	assertDisjointRegions(t, regions2)
}

func assertDisjointRegions(t *testing.T, regions map[mem.Addr]map[mem.Line]bool) {
	t.Helper()
	seen := map[mem.Line]mem.Addr{}
	for pc, rs := range regions {
		for r := range rs {
			if prev, ok := seen[r]; ok && prev != pc {
				t.Fatalf("region %#x shared by PCs %#x and %#x", r, prev, pc)
			}
			seen[r] = pc
		}
	}
}

// Non-colliding streams must keep their historical region (pcSeed % 4096):
// the rehash is strictly additive, so golden fixtures stay valid.
func TestNonCollidingRegionsUnchanged(t *testing.T) {
	w := spec("plain", 13,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, PCSeed: 777},
	)
	regions := regionsByPC(w.Source(500))
	rs := regions[pcFor(777)]
	if len(rs) != 1 || !rs[regionFor(777)>>20] {
		t.Fatalf("stream with PCSeed 777 left region %v, want {%#x}", rs, regionFor(777)>>20)
	}
}

// A rehashed collider must never displace a later stream from its natural
// slot: with pcSeeds [100, 4196, 101], the 4196 collider has to probe past
// slot 101 (naturally owned by the third stream) rather than claim it.
func TestColliderDoesNotDisplaceLaterStream(t *testing.T) {
	w := spec("disp", 18,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, PCSeed: 100},
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, PCSeed: 100 + 4096},
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, PCSeed: 101},
	)
	regions := regionsByPC(w.Source(6000))
	if rs := regions[pcFor(100)]; !rs[regionFor(100)>>20] {
		t.Fatalf("PCSeed 100 lost its natural region: %v", rs)
	}
	if rs := regions[pcFor(101)]; !rs[regionFor(101)>>20] {
		t.Fatalf("PCSeed 101 displaced from its natural region by the collider: %v", rs)
	}
	if rs := regions[pcFor(100+4096)]; rs[regionFor(100)>>20] || rs[regionFor(101)>>20] {
		t.Fatalf("collider landed on a naturally owned region: %v", rs)
	}
	assertDisjointRegions(t, regions)
}

// Clones with an explicit SeqSeed derive per-clone sequence seeds, so each
// clone walks its own sequence over its own region.
func TestCloneSeedDerivation(t *testing.T) {
	w := spec("clseed", 14,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, Clones: 2, PCSeed: 900, SeqSeed: 800},
	)
	recs := mem.Collect(w.Source(4000), 0)
	byPC := map[mem.Addr][]mem.Line{}
	for _, r := range recs {
		byPC[r.PC] = append(byPC[r.PC], r.Line())
	}
	if len(byPC) != 2 {
		t.Fatalf("got %d PCs, want 2", len(byPC))
	}
	if _, ok := byPC[pcFor(900)]; !ok {
		t.Fatal("base clone PC missing")
	}
	if _, ok := byPC[pcFor(900+7001)]; !ok {
		t.Fatal("derived clone PC missing (PCSeed + 7001)")
	}
	// The clones must not visit any common line: distinct regions.
	assertDisjointRegions(t, regionsByPC(w.Source(4000)))
}

func TestGapClampInsteadOfWrap(t *testing.T) {
	w := spec("bigGap", 15,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, Gap: 70_000},
	)
	recs := mem.Collect(w.Source(200), 0)
	for i, r := range recs {
		if r.Gap != math.MaxUint16 {
			t.Fatalf("record %d Gap = %d, want clamp to %d (uint16 wrap?)", i, r.Gap, math.MaxUint16)
		}
	}

	neg := spec("negGap", 16,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, Gap: -3},
	)
	for _, r := range mem.Collect(neg.Source(200), 0) {
		if r.Gap != 0 {
			t.Fatalf("negative Gap produced %d, want 0", r.Gap)
		}
	}
}

// A weighted mix with one zero-weight stream is fine as long as the total is
// positive — the zero-weight stream simply never emits.
func TestZeroWeightStreamNeverEmits(t *testing.T) {
	w := spec("mix", 17,
		PatternSpec{Kind: Temporal, Weight: 1, SeqLines: 64, PCSeed: 40},
		PatternSpec{Kind: RandomAccess, Weight: 0, PCSeed: 41},
	)
	for _, r := range mem.Collect(w.Source(2000), 0) {
		if r.PC == pcFor(41) {
			t.Fatal("zero-weight stream emitted a record")
		}
	}
}
