package workloads

import (
	"fmt"
	"sort"

	"prophet/internal/mem"
)

// Workload is a named, runnable workload.
type Workload struct {
	// Name is the benchmark_input identifier used throughout the figures.
	Name string
	// Spec is the generator description.
	Spec Spec
}

// Source returns a fresh deterministic trace of the given length in memory
// records (the spec default when records == 0).
func (w Workload) Source(records uint64) mem.Source {
	return NewGenerator(w.Spec, records)
}

// Scaled returns a copy of the workload with sequence lengths and the
// default trace length scaled to pct percent. Pattern mix, PCs and seeds are
// unchanged, so hints still attach to the same instructions; quick test
// modes use this to keep multiple sequence passes inside short traces.
func (w Workload) Scaled(pct int) Workload {
	if pct <= 0 || pct == 100 {
		return w
	}
	out := w
	out.Spec.Patterns = append([]PatternSpec(nil), w.Spec.Patterns...)
	for i := range out.Spec.Patterns {
		p := &out.Spec.Patterns[i]
		if p.SeqLines > 0 {
			p.SeqLines = p.SeqLines * pct / 100
			if p.SeqLines < 64 {
				p.SeqLines = 64
			}
		}
	}
	out.Spec.Records = w.Spec.Records * uint64(pct) / 100
	if out.Spec.Records < 10_000 {
		out.Spec.Records = 10_000
	}
	return out
}

// DefaultRecords is the evaluation trace length per run. It stands in for
// the paper's 50M-instruction SimPoint windows at a scale that keeps the
// full figure suite runnable in seconds; the access-pattern structure, not
// the raw length, determines the relative results.
const DefaultRecords = 220_000

// spec assembles a Spec with the shared defaults.
func spec(name string, seed uint64, patterns ...PatternSpec) Workload {
	return Workload{Name: name, Spec: Spec{Name: name, Seed: seed, Patterns: patterns, Records: DefaultRecords}}
}

// SPEC returns the seven irregular SPEC-CPU-like workloads of Figures 10-12
// and 16-19. See DESIGN.md §4 for each workload's encoded properties.
func SPEC() []Workload {
	return []Workload{
		AstarBiglakes(),
		GCC("166"),
		MCF(),
		Omnetpp(),
		Soplex("pds-50"),
		Sphinx3(),
		Xalancbmk(),
	}
}

// AstarBiglakes: pointer chasing over medium maps plus temporal reuse.
// Bandwidth-sensitive: heavy miss traffic with tight gaps, so inaccurate
// prefetching backfires (Figure 16c, Section 5.9).
func AstarBiglakes() Workload {
	return spec("astar_biglakes", 101,
		PatternSpec{Kind: PointerChase, Weight: 0.30, SeqLines: 22000, Gap: 4, PCSeed: 110},
		PatternSpec{Kind: PointerChase, Weight: 0.18, SeqLines: 15000, Gap: 4, PCSeed: 111},
		PatternSpec{Kind: Temporal, Weight: 0.22, SeqLines: 18000, Gap: 4, PCSeed: 112},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.12, SeqLines: 9000, NoiseRatio: 0.25, Gap: 4, PCSeed: 113},
		PatternSpec{Kind: StreamScan, Weight: 0.06, Gap: 4, PCSeed: 114},
		PatternSpec{Kind: RandomAccess, Weight: 0.12, Gap: 4, PCSeed: 115},
	)
}

// AstarRivers is the second astar input (Figure 14): the same instructions
// (shared PCSeeds = shared PCs and hint targets) over a differently shaped
// map — sequence lengths and mix shift, behaviour classes stay.
func AstarRivers() Workload {
	return spec("astar_rivers", 102,
		PatternSpec{Kind: PointerChase, Weight: 0.34, SeqLines: 15000, Gap: 4, PCSeed: 110, SeqSeed: 210},
		PatternSpec{Kind: PointerChase, Weight: 0.14, SeqLines: 24000, Gap: 4, PCSeed: 111, SeqSeed: 211},
		PatternSpec{Kind: Temporal, Weight: 0.24, SeqLines: 12000, Gap: 4, PCSeed: 112, SeqSeed: 212},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.10, SeqLines: 11000, NoiseRatio: 0.22, Gap: 4, PCSeed: 113, SeqSeed: 213},
		PatternSpec{Kind: StreamScan, Weight: 0.06, Gap: 4, PCSeed: 114},
		PatternSpec{Kind: RandomAccess, Weight: 0.12, Gap: 4, PCSeed: 115},
	)
}

// gccInput describes how one gcc input exercises the shared binary
// (Figure 7's three cases).
type gccInput struct {
	name string
	seed uint64
	// loadEKind is the behaviour of the shared "Load E" PCs, which depend
	// on the input's global execution context.
	loadEKind  PatternKind
	loadENoise float64
	loadESeed  uint64 // sequence seed: inputs with equal seeds behave alike
	// specificSeed gives the input-specific PCs ("Loads B/C").
	specificSeed uint64
	seqScale     int // percent scaling of shared sequence lengths
}

var gccInputs = []gccInput{
	{name: "166", seed: 301, loadEKind: Temporal, loadESeed: 420, specificSeed: 520, seqScale: 100},
	{name: "200", seed: 302, loadEKind: NoisyTemporal, loadENoise: 0.65, loadESeed: 421, specificSeed: 521, seqScale: 110},
	{name: "cpdecl", seed: 303, loadEKind: RandomAccess, loadESeed: 422, specificSeed: 522, seqScale: 90},
	{name: "expr", seed: 304, loadEKind: NoisyTemporal, loadENoise: 0.65, loadESeed: 421, specificSeed: 523, seqScale: 105},
	{name: "expr2", seed: 305, loadEKind: RandomAccess, loadESeed: 423, specificSeed: 524, seqScale: 95},
	{name: "g23", seed: 306, loadEKind: Temporal, loadESeed: 424, specificSeed: 525, seqScale: 120},
	{name: "s04", seed: 307, loadEKind: NoisyTemporal, loadENoise: 0.6, loadESeed: 425, specificSeed: 526, seqScale: 100},
	{name: "scilab", seed: 308, loadEKind: Temporal, loadESeed: 426, specificSeed: 527, seqScale: 85},
	{name: "typeck", seed: 309, loadEKind: RandomAccess, loadESeed: 427, specificSeed: 528, seqScale: 100},
}

// GCC returns the gcc workload for the given input name (Figure 13's nine
// inputs). The binary's structure follows Figure 7:
//
//   - "Load A" PCs (PCSeed 410-412) run identically under every input:
//     hints learned once transfer everywhere;
//   - "Load B/C" PCs (input-specific seeds) only execute under their input;
//   - "Load E" PCs (PCSeed 415-416) execute everywhere but their behaviour
//     depends on the input (gcc_200 and gcc_expr share it, which is why
//     learning expr also helps 200).
func GCC(input string) Workload {
	var in *gccInput
	for i := range gccInputs {
		if gccInputs[i].name == input {
			in = &gccInputs[i]
			break
		}
	}
	if in == nil {
		panic(fmt.Sprintf("workloads: unknown gcc input %q", input))
	}
	scale := func(n int) int { return n * in.seqScale / 100 }
	return spec("gcc_"+input, in.seed,
		// Load A: shared behaviour, shared sequences.
		PatternSpec{Kind: Temporal, Weight: 0.18, SeqLines: scale(16000), Gap: 5, PCSeed: 410, SeqSeed: 410},
		PatternSpec{Kind: PointerChase, Weight: 0.15, SeqLines: scale(12000), Gap: 5, PCSeed: 411, SeqSeed: 411},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.12, SeqLines: scale(8000), NoiseRatio: 0.35, Gap: 5, PCSeed: 412, SeqSeed: 412},
		// Loads B/C: input-specific instructions.
		PatternSpec{Kind: Temporal, Weight: 0.12, SeqLines: scale(10000), Gap: 5, PCSeed: in.specificSeed, SeqSeed: in.specificSeed},
		PatternSpec{Kind: RandomAccess, Weight: 0.15, Gap: 5, PCSeed: in.specificSeed + 1000},
		// Load E: shared PC, input-dependent behaviour.
		PatternSpec{Kind: in.loadEKind, Weight: 0.14, SeqLines: scale(9000), NoiseRatio: in.loadENoise, Gap: 5, PCSeed: 415, SeqSeed: in.loadESeed},
		PatternSpec{Kind: in.loadEKind, Weight: 0.08, SeqLines: scale(6000), NoiseRatio: in.loadENoise, Gap: 5, PCSeed: 416, SeqSeed: in.loadESeed + 50},
		// Background scan.
		PatternSpec{Kind: StreamScan, Weight: 0.08, Gap: 5, PCSeed: 417},
	)
}

// GCCInputNames lists the nine gcc inputs in Figure 13 order.
func GCCInputNames() []string {
	out := make([]string, len(gccInputs))
	for i, in := range gccInputs {
		out[i] = in.name
	}
	return out
}

// MCF: very large pointer-chasing working set with computed prefetch
// kernels. Its metadata footprint exceeds the 1MB table, Triangel's sampled
// resizing underprovisions it, RPG2 finds no stride kernels, and filtering
// the random PC is worth a lot (Figure 19: +Insert gives mcf +16.72%).
func MCF() Workload {
	w := spec("mcf", 501,
		PatternSpec{Kind: PointerChase, Weight: 0.22, SeqLines: 16000, Gap: 3, PCSeed: 610},
		PatternSpec{Kind: PointerChase, Weight: 0.16, SeqLines: 11000, Gap: 3, PCSeed: 611},
		PatternSpec{Kind: IndirectComputed, Weight: 0.18, SeqLines: 9000, Gap: 3, PCSeed: 612},
		PatternSpec{Kind: Temporal, Weight: 0.10, SeqLines: 12000, Gap: 3, PCSeed: 613},
		PatternSpec{Kind: RandomAccess, Weight: 0.17, Gap: 3, PCSeed: 614},
		PatternSpec{Kind: RandomAccess, Weight: 0.08, Gap: 3, PCSeed: 616},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.09, SeqLines: 7000, NoiseRatio: 0.6, Gap: 3, PCSeed: 617},
		PatternSpec{Kind: StreamScan, Weight: 0.04, Gap: 3, PCSeed: 615},
	)
	// mcf's defining property is a metadata footprint near table capacity;
	// a longer trace lets the junk PCs build that pressure.
	w.Spec.Records = 400_000
	return w
}

// Omnetpp: discrete-event simulation — interleaved useful/useless temporal
// accesses with high reuse-distance variance (the Figure 1 pattern), plus
// pointer-chased event structures. Sensitive to cache pollution.
func Omnetpp() Workload {
	return spec("omnetpp", 502,
		PatternSpec{Kind: NoisyTemporal, Weight: 0.24, SeqLines: 14000, NoiseRatio: 0.40, Gap: 4, PCSeed: 620},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.18, SeqLines: 10000, NoiseRatio: 0.35, Gap: 4, PCSeed: 621},
		PatternSpec{Kind: PointerChase, Weight: 0.20, SeqLines: 15000, Gap: 4, PCSeed: 622},
		PatternSpec{Kind: Temporal, Weight: 0.10, SeqLines: 11000, Gap: 4, PCSeed: 623},
		PatternSpec{Kind: RandomAccess, Weight: 0.12, Gap: 4, PCSeed: 624},
		PatternSpec{Kind: StreamScan, Weight: 0.08, Gap: 4, PCSeed: 625},
		// A marginal instruction: ~10% accuracy, between the Figure 16a
		// EL_ACC candidates — keeping it pollutes, dropping it at 0.25
		// also drops its residual coverage.
		PatternSpec{Kind: NoisyTemporal, Weight: 0.08, SeqLines: 6000, NoiseRatio: 0.7, Gap: 4, PCSeed: 626},
	)
}

// Soplex: sparse LP solving — multi-path Markov sequences from pivoting
// (the Multi-path Victim Buffer's headline case, Figure 19: +13.46%).
func Soplex(input string) Workload {
	switch input {
	case "pds-50":
		return spec("soplex_pds-50", 503,
			PatternSpec{Kind: MultiPath, Weight: 0.28, SeqLines: 8000, Paths: 2, Gap: 4, PCSeed: 630, SeqSeed: 630, Serial: true, Clones: 2},
			PatternSpec{Kind: MultiPath, Weight: 0.20, SeqLines: 6000, Paths: 3, Gap: 4, PCSeed: 631, SeqSeed: 631, Serial: true, Clones: 2},
			PatternSpec{Kind: PointerChase, Weight: 0.20, SeqLines: 9000, Gap: 4, PCSeed: 632, SeqSeed: 632, Clones: 2},
			PatternSpec{Kind: StreamScan, Weight: 0.12, Gap: 4, PCSeed: 633},
			PatternSpec{Kind: RandomAccess, Weight: 0.10, Gap: 4, PCSeed: 634},
			PatternSpec{Kind: NoisyTemporal, Weight: 0.10, SeqLines: 6000, NoiseRatio: 0.25, Gap: 4, PCSeed: 635, SeqSeed: 635},
		)
	case "ref":
		return spec("soplex_ref", 504,
			PatternSpec{Kind: MultiPath, Weight: 0.30, SeqLines: 5500, Paths: 2, Gap: 4, PCSeed: 630, SeqSeed: 730, Serial: true, Clones: 2},
			PatternSpec{Kind: MultiPath, Weight: 0.18, SeqLines: 7500, Paths: 2, Gap: 4, PCSeed: 631, SeqSeed: 731, Serial: true, Clones: 2},
			PatternSpec{Kind: PointerChase, Weight: 0.22, SeqLines: 6500, Gap: 4, PCSeed: 632, SeqSeed: 732, Clones: 2},
			PatternSpec{Kind: StreamScan, Weight: 0.10, Gap: 4, PCSeed: 633},
			PatternSpec{Kind: RandomAccess, Weight: 0.10, Gap: 4, PCSeed: 634},
			PatternSpec{Kind: NoisyTemporal, Weight: 0.10, SeqLines: 7000, NoiseRatio: 0.22, Gap: 4, PCSeed: 635, SeqSeed: 735},
		)
	}
	panic(fmt.Sprintf("workloads: unknown soplex input %q", input))
}

// Sphinx3: speech recognition — compact temporal working set well under the
// 1MB table, so profile-guided resizing returns LLC ways (Figure 19's
// +Resize case), plus scan-heavy acoustic scoring.
func Sphinx3() Workload {
	return spec("sphinx3", 505,
		PatternSpec{Kind: Temporal, Weight: 0.20, SeqLines: 9000, Gap: 6, PCSeed: 640},
		PatternSpec{Kind: Temporal, Weight: 0.16, SeqLines: 8000, Gap: 6, PCSeed: 641},
		PatternSpec{Kind: PointerChase, Weight: 0.14, SeqLines: 7000, Gap: 6, PCSeed: 642},
		PatternSpec{Kind: Temporal, Weight: 0.12, SeqLines: 6000, Gap: 6, PCSeed: 646},
		PatternSpec{Kind: StreamScan, Weight: 0.24, SeqLines: 8000, Gap: 6, PCSeed: 643},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.10, SeqLines: 5000, NoiseRatio: 0.2, Gap: 6, PCSeed: 644},
		PatternSpec{Kind: RandomAccess, Weight: 0.04, Gap: 6, PCSeed: 645},
	)
}

// Xalancbmk: XML transformation — long temporal chains through the DOM with
// moderate noise.
func Xalancbmk() Workload {
	return spec("xalancbmk", 506,
		PatternSpec{Kind: Temporal, Weight: 0.24, SeqLines: 18000, Gap: 4, PCSeed: 650},
		PatternSpec{Kind: Temporal, Weight: 0.16, SeqLines: 13000, Gap: 4, PCSeed: 651},
		PatternSpec{Kind: PointerChase, Weight: 0.20, SeqLines: 11000, Gap: 4, PCSeed: 652},
		PatternSpec{Kind: NoisyTemporal, Weight: 0.14, SeqLines: 9000, NoiseRatio: 0.3, Gap: 4, PCSeed: 653},
		PatternSpec{Kind: StreamScan, Weight: 0.10, Gap: 4, PCSeed: 654},
		PatternSpec{Kind: RandomAccess, Weight: 0.16, Gap: 4, PCSeed: 655},
	)
}

// Get resolves any catalog workload by name (SPEC set, all gcc inputs,
// astar and soplex inputs).
func Get(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// All returns every catalog workload, sorted by name.
func All() []Workload {
	var out []Workload
	out = append(out, SPEC()...)
	out = append(out, AstarRivers(), Soplex("ref"))
	for _, in := range gccInputs {
		if in.name != "166" {
			out = append(out, GCC(in.name))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
