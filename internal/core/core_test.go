package core

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
	"prophet/internal/temporal"
)

func miss(pc mem.Addr, line mem.Line) temporal.AccessEvent {
	return temporal.AccessEvent{PC: pc, Line: line, Hit: false}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Table = temporal.TableConfig{Sets: 64, EntriesPerWay: 4, MaxWays: 4}
	cfg.MVBEntries = 256
	return cfg
}

func hintsAllWays() HintSet {
	return HintSet{PC: map[mem.Addr]Hint{}, MetaWays: 4}
}

func TestHintBits(t *testing.T) {
	cases := []Hint{
		{Insert: true, Priority: 0},
		{Insert: true, Priority: 3},
		{Insert: false, Priority: 2},
	}
	for _, h := range cases {
		if got := HintFromBits(h.Bits()); got != h {
			t.Errorf("round trip %+v -> %#x -> %+v", h, h.Bits(), got)
		}
	}
	if (Hint{Insert: true, Priority: 3}).Bits() != 0b111 {
		t.Error("3-bit encoding wrong")
	}
}

func TestHintBitsProperty(t *testing.T) {
	f := func(b uint8) bool {
		h := HintFromBits(b & 0b111)
		return h.Bits() == b&0b111
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHintBufferCapAndPrioritization(t *testing.T) {
	b := NewHintBuffer(2)
	hints := map[mem.Addr]Hint{
		1: {Insert: true, Priority: 1},
		2: {Insert: true, Priority: 2},
		3: {Insert: false, Priority: 0},
	}
	weight := map[mem.Addr]uint64{1: 10, 2: 100, 3: 50}
	n := b.Install(hints, weight)
	if n != 2 {
		t.Fatalf("installed %d hints, want 2", n)
	}
	if _, ok := b.Lookup(2); !ok {
		t.Error("heaviest PC missing")
	}
	if _, ok := b.Lookup(3); !ok {
		t.Error("second-heaviest PC missing")
	}
	if _, ok := b.Lookup(1); ok {
		t.Error("lightest PC should have been dropped")
	}
}

func TestHintBufferDeterministicTieBreak(t *testing.T) {
	hints := map[mem.Addr]Hint{10: {}, 20: {}, 30: {}}
	for trial := 0; trial < 10; trial++ {
		b := NewHintBuffer(2)
		b.Install(hints, nil) // all weights zero
		if _, ok := b.Lookup(10); !ok {
			t.Fatal("tie-break must prefer lower PC")
		}
		if _, ok := b.Lookup(20); !ok {
			t.Fatal("tie-break must prefer lower PC")
		}
	}
}

func TestHintSetClone(t *testing.T) {
	h := HintSet{PC: map[mem.Addr]Hint{1: {Insert: true}}, MetaWays: 3}
	c := h.Clone()
	c.PC[2] = Hint{}
	if len(h.PC) != 1 {
		t.Fatal("Clone aliases the PC map")
	}
}

func TestProphetLearnsSequence(t *testing.T) {
	p := New(testConfig(), hintsAllWays(), nil)
	pc := mem.Addr(0x400)
	seq := []mem.Line{10, 700, 33, 950, 42}
	for _, l := range seq {
		p.OnAccess(miss(pc, l))
	}
	got := p.OnAccess(miss(pc, seq[0]))
	if len(got) == 0 || got[0] != seq[1] {
		t.Fatalf("prediction = %v, want first %v", got, seq[1])
	}
}

func TestInsertionHintDiscardsPC(t *testing.T) {
	cfg := testConfig()
	hints := hintsAllWays()
	badPC := mem.Addr(0x500)
	hints.PC[badPC] = Hint{Insert: false}
	p := New(cfg, hints, nil)
	for i := 0; i < 50; i++ {
		if got := p.OnAccess(miss(badPC, mem.Line(i*3))); got != nil {
			t.Fatalf("filtered PC still prefetched %v", got)
		}
	}
	if p.TableStats().Insertions != 0 {
		t.Fatal("filtered PC trained the table")
	}
	if p.Dropped() != 50 {
		t.Fatalf("Dropped = %d, want 50", p.Dropped())
	}
}

func TestInsertionFeatureOffIgnoresHint(t *testing.T) {
	cfg := testConfig()
	cfg.Features.Insertion = false
	hints := hintsAllWays()
	badPC := mem.Addr(0x500)
	hints.PC[badPC] = Hint{Insert: false}
	p := New(cfg, hints, nil)
	for i := 0; i < 10; i++ {
		p.OnAccess(miss(badPC, mem.Line(i*3)))
	}
	if p.TableStats().Insertions == 0 {
		t.Fatal("with Insertion off the filter must not apply")
	}
}

func TestReplacementPriorityProtectsHighAccuracyPC(t *testing.T) {
	cfg := testConfig()
	cfg.Degree = 1
	cfg.Features.MVB = false
	hints := hintsAllWays()
	hiPC := mem.Addr(0x600)
	loPC := mem.Addr(0x700)
	hints.PC[hiPC] = Hint{Insert: true, Priority: 3}
	hints.PC[loPC] = Hint{Insert: true, Priority: 0}
	p := New(cfg, hints, nil)
	// High-priority sequence fills part of set space.
	hiSeq := []mem.Line{0, 64, 128, 192, 256}
	for _, l := range hiSeq {
		p.OnAccess(miss(hiPC, l))
	}
	// Low-priority churn targeting the same sets (lines chosen to map to
	// set 0 of the 64-set table: multiples of 64).
	for i := 1; i < 40; i++ {
		p.OnAccess(miss(loPC, mem.Line(i*64*5)))
	}
	// High-priority correlations must survive the churn.
	got := p.OnAccess(miss(hiPC, hiSeq[0]))
	if len(got) == 0 || got[0] != hiSeq[1] {
		t.Fatalf("high-priority metadata evicted by low-priority churn: %v", got)
	}
}

func TestResizingFromCSR(t *testing.T) {
	cfg := testConfig()
	hints := hintsAllWays()
	hints.MetaWays = 2
	p := New(cfg, hints, nil)
	if p.MetaWays() != 2 {
		t.Fatalf("MetaWays = %d, want CSR's 2", p.MetaWays())
	}
	if !p.CSR().ProphetEnabled || p.CSR().MetaWays != 2 {
		t.Fatalf("CSR = %+v", p.CSR())
	}
}

func TestResizingDisableTP(t *testing.T) {
	cfg := testConfig()
	hints := hintsAllWays()
	hints.DisableTP = true
	p := New(cfg, hints, nil)
	pc := mem.Addr(0x800)
	for _, l := range []mem.Line{1, 2, 3, 1, 2, 3} {
		if got := p.OnAccess(miss(pc, l)); got != nil {
			t.Fatalf("disabled TP still prefetched %v", got)
		}
	}
	if p.TableStats().Insertions != 0 {
		t.Fatal("disabled TP trained")
	}
}

func TestResizingFeatureOffUsesMaxWays(t *testing.T) {
	cfg := testConfig()
	cfg.Features.Resizing = false
	hints := hintsAllWays()
	hints.MetaWays = 1
	p := New(cfg, hints, nil)
	if p.MetaWays() != cfg.Table.MaxWays {
		t.Fatalf("MetaWays = %d, want max %d", p.MetaWays(), cfg.Table.MaxWays)
	}
}

func TestMVBRecoversSecondPath(t *testing.T) {
	cfg := testConfig()
	cfg.Degree = 1
	hints := hintsAllWays()
	pc := mem.Addr(0x900)
	hints.PC[pc] = Hint{Insert: true, Priority: 3}
	p := New(cfg, hints, nil)
	// Sequence 1: A -> B -> C. Sequence 2: A -> B -> D. The table keeps
	// one successor of B; the MVB must keep the other.
	a, b, c, d := mem.Line(100), mem.Line(200), mem.Line(300), mem.Line(400)
	run := func(third mem.Line) {
		p.OnAccess(miss(pc, a))
		p.OnAccess(miss(pc, b))
		p.OnAccess(miss(pc, third))
	}
	run(c)
	run(d) // B->D replaces B->C in the table; C's entry evicted to MVB? No:
	// updates replace in place, so force churn through repeated alternation.
	run(c)
	run(d)
	got := p.OnAccess(miss(pc, b))
	found := map[mem.Line]bool{}
	for _, l := range got {
		found[l] = true
	}
	if !found[c] && !found[d] {
		t.Fatalf("no successor of B prefetched: %v", got)
	}
	if !(found[c] && found[d]) {
		t.Fatalf("MVB did not supply the alternate path: got %v, want both %v and %v", got, c, d)
	}
}

func TestMVBInsertionRuleSkipsPriorityZero(t *testing.T) {
	vb := NewVictimBuffer(64, 4, 1)
	// The engine enforces the rule; validate the buffer contract directly:
	// entries inserted are retrievable, respecting the exclude filter.
	vb.Insert(5, 100)
	got := vb.Lookup(5, 100)
	if len(got) != 0 {
		t.Fatal("exclude filter failed")
	}
	got = vb.Lookup(5, 999)
	if len(got) != 1 || got[0] != 100 {
		t.Fatalf("Lookup = %v", got)
	}
}

func TestMVBReplacementPrefersLowCounter(t *testing.T) {
	vb := NewVictimBuffer(4, 4, 4) // single set of 4
	vb.Insert(0, 1)
	vb.Insert(0, 2)
	vb.Insert(0, 3)
	vb.Insert(0, 4)
	// Touch targets 1..3 so target 4 has the lowest counter.
	for _, tgt := range []uint32{1, 2, 3} {
		_ = tgt
	}
	vb.Lookup(0, 2) // bumps 1 (first match only? candidates=4 bumps all but exclude)
	// All except 2 bumped once; insert a new target: victim must be 2.
	vb.Insert(0, 5)
	got := vb.Lookup(0, 0xFFFFFFFF)
	for _, g := range got {
		if g == 2 {
			t.Fatalf("lowest-counter entry survived: %v", got)
		}
	}
}

func TestMVBGeometryAndStorage(t *testing.T) {
	vb := NewVictimBuffer(DefaultMVBEntries, 4, 1)
	if vb.Entries() != DefaultMVBEntries {
		t.Fatalf("Entries = %d", vb.Entries())
	}
	// Section 5.10: 65,536 entries x 43 bits = 344KB.
	wantBits := DefaultMVBEntries * 43
	if vb.StorageBits() != wantBits {
		t.Fatalf("StorageBits = %d, want %d", vb.StorageBits(), wantBits)
	}
	if kb := float64(vb.StorageBits()) / 8 / 1024; kb < 343 || kb > 345 {
		t.Fatalf("MVB storage = %.1fKB, want ~344KB", kb)
	}
}

func TestMVBCandidatesBudget(t *testing.T) {
	vb := NewVictimBuffer(16, 4, 2)
	vb.Insert(1, 10)
	vb.Insert(1, 20)
	vb.Insert(1, 30)
	got := vb.Lookup(1, 0xFFFFFFFF)
	if len(got) != 2 {
		t.Fatalf("candidates=2 returned %d targets", len(got))
	}
}

func TestSimplifiedConfig(t *testing.T) {
	cfg := SimplifiedConfig()
	if cfg.Degree != 1 {
		t.Error("simplified TP must use degree 1")
	}
	if cfg.Features != (Features{}) {
		t.Error("simplified TP must disable all Prophet features")
	}
	p := New(cfg, HintSet{}, nil)
	if p.MetaWays() != cfg.Table.MaxWays {
		t.Errorf("simplified TP table = %d ways, want fixed max %d", p.MetaWays(), cfg.Table.MaxWays)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MVBEntries != 65536 || cfg.MVBCandidates != 1 {
		t.Errorf("MVB config %d/%d, want 65536/1", cfg.MVBEntries, cfg.MVBCandidates)
	}
	if cfg.HintBufferEntries != 128 {
		t.Errorf("hint buffer %d, want 128", cfg.HintBufferEntries)
	}
	if MaxPriority != 3 {
		t.Errorf("n=2 gives max priority 3, got %d", MaxPriority)
	}
}

func TestEngineInterfaceCompliance(t *testing.T) {
	var e temporal.Engine = New(testConfig(), hintsAllWays(), nil)
	e.PrefetchUseful(1, 2)
	e.PrefetchUseless(1, 2)
	if e.Name() != "prophet" {
		t.Error("name")
	}
}
