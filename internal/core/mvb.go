package core

import "math/bits"

// Multi-path Victim Buffer (Section 4.5). The metadata table stores one
// Markov target per source; addresses participating in several temporal
// sequences — (A,B,C) and (A,B,D) give B two successors — keep losing one of
// them. The MVB catches targets evicted from the table so that a prefetch
// trigger can fetch the alternate successors as well.
//
// Management rules (Section 4.5):
//
//   - Insertion: only targets whose Prophet priority level exceeds 0
//     (acc > EL_ACC) are buffered.
//   - Replacement: each target carries a small counter incremented on use;
//     the entry with the lowest counter is the victim (the paper reuses the
//     Prophet replacement policy with "priority = maximal counter value").
//   - Prefetch: every table/reuse-buffer-triggered prefetch also looks up
//     the MVB with the same source key and prefetches any *different*
//     targets found.
//
// Geometry (Section 5.10): 65,536 entries x 43 bits (31-bit target, 10-bit
// tag, 2-bit counter) = 344KB.
type VictimBuffer struct {
	setBits    uint
	assoc      int
	candidates int
	sets       [][]vbEntry
	clock      uint64

	inserts uint64
	hits    uint64
}

type vbEntry struct {
	tag     uint16
	target  uint32
	counter uint8
	valid   bool
	last    uint64
}

const (
	vbTagBits    = 10
	vbTagMask    = 1<<vbTagBits - 1
	vbCounterMax = 3 // 2-bit counter
)

// DefaultMVBEntries is the evaluated buffer size (Section 5.10).
const DefaultMVBEntries = 65536

// NewVictimBuffer builds an MVB with the given total entries (rounded up to
// a power of two), set associativity, and the number of alternate targets
// returned per lookup (Figure 16c's "Candidates", 1 in the final design).
func NewVictimBuffer(entries, assoc, candidates int) *VictimBuffer {
	if assoc <= 0 {
		assoc = 4
	}
	if candidates <= 0 {
		candidates = 1
	}
	if entries < assoc {
		entries = assoc
	}
	setCount := 1
	for setCount*assoc < entries {
		setCount <<= 1
	}
	return &VictimBuffer{
		setBits:    uint(bits.TrailingZeros(uint(setCount))),
		assoc:      assoc,
		candidates: candidates,
		sets:       make([][]vbEntry, setCount),
	}
}

// Entries returns the buffer capacity in entries.
func (b *VictimBuffer) Entries() int { return len(b.sets) * b.assoc }

// Candidates returns the per-lookup alternate-target budget.
func (b *VictimBuffer) Candidates() int { return b.candidates }

func (b *VictimBuffer) locate(srcKey uint32) (set int, tag uint16) {
	set = int(srcKey & (1<<b.setBits - 1))
	tag = uint16((srcKey >> b.setBits) & vbTagMask)
	return set, tag
}

// Insert buffers an evicted Markov target. Only call for targets whose
// Prophet priority exceeds 0; the caller enforces the Section 4.5 insertion
// rule. Duplicate (source, target) pairs refresh the existing entry.
func (b *VictimBuffer) Insert(srcKey, target uint32) {
	set, tag := b.locate(srcKey)
	entries := b.sets[set]
	b.clock++
	for i := range entries {
		e := &entries[i]
		if e.valid && e.tag == tag && e.target == target {
			e.last = b.clock
			return
		}
	}
	b.inserts++
	for i := range entries {
		if !entries[i].valid {
			entries[i] = vbEntry{tag: tag, target: target, valid: true, last: b.clock}
			return
		}
	}
	if len(entries) < b.assoc {
		b.sets[set] = append(entries, vbEntry{tag: tag, target: target, valid: true, last: b.clock})
		return
	}
	// Victim: lowest counter (least-proven target), oldest on ties.
	vi := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].counter < entries[vi].counter ||
			(entries[i].counter == entries[vi].counter && entries[i].last < entries[vi].last) {
			vi = i
		}
	}
	entries[vi] = vbEntry{tag: tag, target: target, valid: true, last: b.clock}
}

// Lookup returns up to Candidates targets recorded for srcKey, excluding
// exclude (the target the metadata table already supplied). Returned entries
// have their use counters incremented, implementing the Section 4.5
// replacement rule.
func (b *VictimBuffer) Lookup(srcKey uint32, exclude uint32) []uint32 {
	return b.AppendLookup(nil, srcKey, exclude)
}

// AppendLookup is Lookup appending into dst, so the per-prediction caller
// can recycle one scratch buffer instead of allocating per hit.
func (b *VictimBuffer) AppendLookup(dst []uint32, srcKey uint32, exclude uint32) []uint32 {
	set, tag := b.locate(srcKey)
	entries := b.sets[set]
	found := 0
	b.clock++
	for i := range entries {
		e := &entries[i]
		if !e.valid || e.tag != tag || e.target == exclude {
			continue
		}
		if e.counter < vbCounterMax {
			e.counter++
		}
		e.last = b.clock
		dst = append(dst, e.target)
		found++
		if found >= b.candidates {
			break
		}
	}
	if found > 0 {
		b.hits++
	}
	return dst
}

// Stats returns (inserts, hits) for reporting.
func (b *VictimBuffer) Stats() (inserts, hits uint64) { return b.inserts, b.hits }

// StorageBits returns the buffer's storage cost in bits: 43 bits per entry
// (31-bit target + 10-bit tag + 2-bit counter), as accounted in Section 5.10.
func (b *VictimBuffer) StorageBits() int {
	return b.Entries() * (31 + vbTagBits + 2)
}
