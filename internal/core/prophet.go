package core

import (
	"prophet/internal/mem"
	"prophet/internal/temporal"
)

// Features selects which Prophet mechanisms are active. The Figure 19
// ablation enables them cumulatively over the "Triage4 + Triangel metadata"
// baseline: +Repla, +Insert, +MVB, +Resize.
type Features struct {
	// Replacement activates the profile-guided replacement policy
	// (priority levels from Equation 2 + runtime policy among candidates).
	Replacement bool
	// Insertion activates the profile-guided insertion filter (Equation 1).
	Insertion bool
	// MVB activates the Multi-path Victim Buffer.
	MVB bool
	// Resizing applies the CSR's profile-guided way allocation
	// (Equation 3) instead of the fixed maximum table.
	Resizing bool
}

// AllFeatures returns the full Prophet configuration.
func AllFeatures() Features {
	return Features{Replacement: true, Insertion: true, MVB: true, Resizing: true}
}

// Config parameterizes the Prophet engine.
type Config struct {
	// Degree is the chained prefetch degree (4, matching the Triage4
	// ablation baseline and Triangel's aggressiveness).
	Degree int
	// Table is the metadata-table geometry; the policy field is chosen by
	// the engine from Features.Replacement.
	Table temporal.TableConfig
	// Features gates Prophet's mechanisms.
	Features Features
	// MVBEntries sizes the victim buffer (DefaultMVBEntries).
	MVBEntries int
	// MVBAssoc is the victim-buffer set associativity.
	MVBAssoc int
	// MVBCandidates is the alternate-target budget per lookup (Fig 16c).
	MVBCandidates int
	// DefaultPriority is the replacement priority for PCs without an
	// installed hint.
	DefaultPriority uint8
	// HintBufferEntries caps the hint buffer (128).
	HintBufferEntries int
}

// DefaultConfig returns the paper's evaluated Prophet configuration.
func DefaultConfig() Config {
	return Config{
		Degree:            4,
		Table:             temporal.DefaultTableConfig(),
		Features:          AllFeatures(),
		MVBEntries:        DefaultMVBEntries,
		MVBAssoc:          4,
		MVBCandidates:     1,
		DefaultPriority:   1,
		HintBufferEntries: HintBufferEntries,
	}
}

// SimplifiedConfig returns the Step 1 profiling configuration (Section 3.2):
// insertion policy disabled, fixed 1MB metadata table, prefetch degree 1 —
// "an unbiased evaluation of memory instructions under temporal prefetching".
func SimplifiedConfig() Config {
	cfg := DefaultConfig()
	cfg.Degree = 1
	cfg.Features = Features{} // pure runtime: no filtering, no MVB, fixed table
	return cfg
}

// Prophet is the temporal prefetcher with profile-guided metadata
// management. Construct with New, passing the hint set extracted from the
// optimized binary (possibly empty for the simplified profiling mode).
type Prophet struct {
	cfg   Config
	csr   CSR
	hints *HintBuffer
	table *temporal.Table
	comp  *temporal.Compressor
	train *temporal.TrainingUnit
	reuse *temporal.ReuseBuffer
	mvb   *VictimBuffer

	scratch []mem.Line // prediction buffer reused across OnAccess calls
	altBuf  []uint32   // MVB lookup buffer, likewise recycled

	dropped uint64 // demand requests discarded by the insertion policy
}

// New builds a Prophet engine from its configuration and the binary's hint
// set. hintWeight carries each PC's miss contribution for hint-buffer
// prioritization (may be nil when hints fit the buffer).
func New(cfg Config, hints HintSet, hintWeight map[mem.Addr]uint64) *Prophet {
	if cfg.Degree <= 0 {
		cfg.Degree = 1
	}
	tableCfg := cfg.Table
	if cfg.Features.Replacement {
		tableCfg.Policy = temporal.ProphetPriority
	} else {
		tableCfg.Policy = temporal.MetaSRRIP
	}
	ways := tableCfg.MaxWays
	csr := CSR{ProphetEnabled: true, MetaWays: ways}
	if cfg.Features.Resizing {
		csr.MetaWays = hints.MetaWays
		csr.TPDisabled = hints.DisableTP
		ways = hints.MetaWays
		if ways > tableCfg.MaxWays {
			ways = tableCfg.MaxWays
		}
		if hints.DisableTP {
			ways = 0
		}
	}
	p := &Prophet{
		cfg:     cfg,
		csr:     csr,
		hints:   NewHintBuffer(cfg.HintBufferEntries),
		table:   temporal.NewTable(tableCfg, ways),
		comp:    temporal.NewCompressor(),
		train:   temporal.NewTrainingUnit(1024),
		reuse:   temporal.NewReuseBuffer(128),
		scratch: make([]mem.Line, 0, 2*cfg.Degree),
		altBuf:  make([]uint32, 0, cfg.MVBCandidates+1),
	}
	if cfg.Features.MVB {
		p.mvb = NewVictimBuffer(cfg.MVBEntries, cfg.MVBAssoc, cfg.MVBCandidates)
	}
	if len(hints.PC) > 0 {
		p.hints.Install(hints.PC, hintWeight)
	}
	return p
}

// Name implements temporal.Engine.
func (p *Prophet) Name() string { return "prophet" }

// CSR returns the engine's control/status register contents.
func (p *Prophet) CSR() CSR { return p.csr }

// HintCount returns the number of installed PC hints.
func (p *Prophet) HintCount() int { return p.hints.Len() }

// Dropped returns how many demand requests the insertion policy discarded.
func (p *Prophet) Dropped() uint64 { return p.dropped }

// OnAccess implements temporal.Engine.
func (p *Prophet) OnAccess(ev temporal.AccessEvent) []mem.Line {
	if p.csr.TPDisabled || p.table.Ways() == 0 {
		return nil
	}
	if !ev.Trainable() {
		return nil
	}

	priority := p.cfg.DefaultPriority
	if ev.PC != 0 {
		if h, ok := p.hints.Lookup(ev.PC); ok {
			if p.cfg.Features.Insertion && !h.Insert {
				// Equation 1: discard all demand requests from
				// PCs with no temporal pattern — no training,
				// no metadata insertion, no prefetch.
				p.dropped++
				return nil
			}
			priority = h.Priority
		}
	}

	cur := p.comp.Index(ev.Line)
	if ev.PC != 0 {
		if prev, ok := p.train.Observe(ev.PC, ev.Line); ok && prev != ev.Line {
			src := p.comp.Index(prev)
			if !p.cfg.Features.Replacement {
				priority = 0
			}
			if ev := p.table.Insert(src, cur, priority); ev.Valid {
				// Section 4.5 insertion rule: only priority > 0
				// targets enter the victim buffer.
				if p.mvb != nil && ev.Priority > 0 {
					p.mvb.Insert(ev.SrcKey(p.table.Config()), ev.Target)
				}
			}
		}
	}

	return p.predict(cur, priority)
}

// mvbPrefetchMinPriority is the fine-grained management rule keeping the
// Multi-path Victim Buffer's bandwidth cost low (Section 5.9 credits MVB's
// +1.95% traffic to "fine-grained management"): alternate-path prefetches
// fire only for triggers whose profiled accuracy sits in the upper priority
// bands, where a second Markov target is likely real rather than noise.
const mvbPrefetchMinPriority = 2

// predict walks the Markov chain and augments each step with Multi-path
// Victim Buffer alternates. The returned slice aliases the engine's scratch
// buffer and is valid until the next prediction.
func (p *Prophet) predict(src uint32, priority uint8) []mem.Line {
	out := p.scratch[:0]
	cur := src
	for i := 0; i < p.cfg.Degree; i++ {
		target, ok := p.reuse.Lookup(cur)
		if !ok {
			target, ok = p.table.Lookup(cur)
			if ok {
				p.reuse.Insert(cur, target)
			}
		}
		var primary uint32
		hasPrimary := ok
		if ok {
			primary = target
			if line, ok2 := p.comp.Line(target); ok2 {
				out = append(out, line)
			}
		}
		// MVB: same lookup key, fetch alternate successors (Section
		// 4.5 "Prefetch" rule). The MVB is searched even when the
		// table missed — the path may live only in the buffer.
		if p.mvb != nil && priority >= mvbPrefetchMinPriority {
			key := p.srcKey(cur)
			exclude := uint32(0xFFFFFFFF)
			if hasPrimary {
				exclude = primary
			}
			p.altBuf = p.mvb.AppendLookup(p.altBuf[:0], key, exclude)
			for _, alt := range p.altBuf {
				if line, ok2 := p.comp.Line(alt); ok2 {
					out = append(out, line)
				}
			}
		}
		if !hasPrimary {
			break
		}
		cur = primary
	}
	p.scratch = out
	return out
}

// srcKey reproduces the metadata table's lossy (set, tag) key for a
// compressed index, so MVB lookups match eviction-time keys.
func (p *Prophet) srcKey(src uint32) uint32 {
	ev := temporal.Evicted{
		Set: int(src & uint32(p.table.Config().Sets-1)),
		Tag: uint16(src >> uint(setBitsOf(p.table.Config().Sets)) & 0x3FF),
	}
	return ev.SrcKey(p.table.Config())
}

func setBitsOf(sets int) int {
	n := 0
	for 1<<n < sets {
		n++
	}
	return n
}

// PrefetchUseful implements temporal.Engine. Prophet's policies are profile-
// driven, so runtime feedback only refreshes the reuse buffer.
func (p *Prophet) PrefetchUseful(mem.Addr, mem.Line) {}

// PrefetchUseless implements temporal.Engine.
func (p *Prophet) PrefetchUseless(mem.Addr, mem.Line) {}

// MetaWays implements temporal.Engine.
func (p *Prophet) MetaWays() int { return p.table.Ways() }

// TableStats implements temporal.Engine.
func (p *Prophet) TableStats() temporal.TableStats { return p.table.Stats() }

// Table exposes the metadata table for measurement tooling.
func (p *Prophet) Table() *temporal.Table { return p.table }

// Release returns the metadata table's storage to the geometry pool. The
// engine (and anything obtained through Table) must not be used after.
func (p *Prophet) Release() { p.table.Release() }

// MVB exposes the victim buffer (nil when the feature is off).
func (p *Prophet) MVB() *VictimBuffer { return p.mvb }

var _ temporal.Engine = (*Prophet)(nil)
