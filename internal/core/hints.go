// Package core implements Prophet, the paper's contribution: a
// hardware/software co-designed temporal prefetcher whose metadata-table
// insertion policy, replacement policy and resizing are driven by
// profile-guided hints injected into the program rather than by short-term
// runtime heuristics.
//
// The split of responsibilities follows Figure 4:
//
//   - PC-level hints (1 insertion bit + n priority bits, 3 bits total at the
//     paper's n=2) ride on demand requests. They are installed once, at
//     program start, into a 128-entry hint buffer near the prefetcher
//     (Section 4.4, the "hint buffer" injection method).
//   - Application-level hints (the metadata-table way allocation, or a
//     "disable temporal prefetching" verdict) are written into a CSR by one
//     manipulation instruction at program entry (Section 4.2, Equation 3).
//   - The Multi-path Victim Buffer (Section 4.5) catches Markov targets
//     evicted from the table so addresses with several successors keep all
//     of them reachable.
//
// The engine coexists with the runtime scheme: with every Prophet feature
// flag off it degenerates to "Triage at degree d with Triangel's metadata
// format", which is exactly the ablation baseline of Figure 19.
package core

import (
	"sort"

	"prophet/internal/mem"
)

// PriorityBits is n in Equation 2; the paper settles on n = 2 (Figure 16b),
// giving 4 priority levels and a 2-bit replacement state per entry.
const PriorityBits = 2

// MaxPriority is the highest priority level (2^n - 1).
const MaxPriority = 1<<PriorityBits - 1

// Hint is the per-PC hint of Section 4.2: Equation 1's insertion decision
// and Equation 2's replacement priority level.
type Hint struct {
	// Insert is I(acc): false when the PC's profiled accuracy fell below
	// EL_ACC, instructing the prefetcher to discard the PC's requests.
	Insert bool
	// Priority is R(acc) in [0, 2^n).
	Priority uint8
}

// Bits returns the hint's 3-bit hardware encoding (insert bit in bit 2).
func (h Hint) Bits() uint8 {
	b := h.Priority & MaxPriority
	if h.Insert {
		b |= 1 << PriorityBits
	}
	return b
}

// HintFromBits decodes a 3-bit hint.
func HintFromBits(b uint8) Hint {
	return Hint{Insert: b&(1<<PriorityBits) != 0, Priority: b & MaxPriority}
}

// HintSet is everything the Analysis step injects into a binary: the
// PC-level hint table and the application-level CSR contents.
type HintSet struct {
	// PC maps memory-instruction addresses to their hints. The injection
	// path truncates this to HintBufferEntries by miss contribution.
	PC map[mem.Addr]Hint
	// MetaWays is Equation 3's way allocation for the metadata table.
	MetaWays int
	// DisableTP records Equation 3's "< 0.5 ways" verdict: temporal
	// prefetching is globally disabled for this binary.
	DisableTP bool
}

// Clone deep-copies the hint set.
func (h HintSet) Clone() HintSet {
	pc := make(map[mem.Addr]Hint, len(h.PC))
	for k, v := range h.PC {
		pc[k] = v
	}
	return HintSet{PC: pc, MetaWays: h.MetaWays, DisableTP: h.DisableTP}
}

// HintBufferEntries is the hint-buffer capacity: "a 128-entry hint buffer
// (0.19 KB) is sufficient for achieving high performance" (Section 4.4).
const HintBufferEntries = 128

// HintBuffer is the hardware structure near the prefetcher that stores
// injected PC hints. Entries are installed once at program start by hint
// instructions; lookups happen on every demand request.
type HintBuffer struct {
	cap   int
	hints map[mem.Addr]Hint
}

// NewHintBuffer returns a hint buffer with the given capacity
// (HintBufferEntries when capEntries <= 0).
func NewHintBuffer(capEntries int) *HintBuffer {
	if capEntries <= 0 {
		capEntries = HintBufferEntries
	}
	return &HintBuffer{cap: capEntries, hints: make(map[mem.Addr]Hint, capEntries)}
}

// Install loads hints for the given PCs, prioritized by weight (miss
// contribution, Section 4.4: "Prophet focuses on memory instructions that
// contribute the most to cache misses"). It returns the number installed,
// at most the buffer capacity.
func (b *HintBuffer) Install(hints map[mem.Addr]Hint, weight map[mem.Addr]uint64) int {
	type cand struct {
		pc mem.Addr
		w  uint64
	}
	cands := make([]cand, 0, len(hints))
	for pc := range hints {
		cands = append(cands, cand{pc: pc, w: weight[pc]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].pc < cands[j].pc // deterministic tie-break
	})
	b.hints = make(map[mem.Addr]Hint, b.cap)
	for _, c := range cands {
		if len(b.hints) >= b.cap {
			break
		}
		b.hints[c.pc] = hints[c.pc]
	}
	return len(b.hints)
}

// Lookup returns the hint for pc, if installed.
func (b *HintBuffer) Lookup(pc mem.Addr) (Hint, bool) {
	h, ok := b.hints[pc]
	return h, ok
}

// Len returns the number of installed hints.
func (b *HintBuffer) Len() int { return len(b.hints) }

// CSR is the control-and-status register carrying application-level hints
// (Section 3.1). One manipulation instruction at program start writes it.
type CSR struct {
	// ProphetEnabled activates the profile-guided policies; when false
	// the runtime scheme operates alone.
	ProphetEnabled bool
	// MetaWays is the profile-guided metadata-table allocation.
	MetaWays int
	// TPDisabled turns the temporal prefetcher off entirely (Equation 3
	// result below 0.5 ways).
	TPDisabled bool
}
