package core

import (
	"fmt"

	"prophet/internal/registry"
	"prophet/internal/sim"
)

// core self-registers the two schemes it anchors: the no-temporal-prefetching
// baseline every figure normalizes to, and Prophet itself. Prophet's run
// needs the profile -> learn -> analyze loop, whose analysis layer imports
// this package — so the flow arrives through the evaluator-injected
// Context.Prophet hook rather than a direct import.
func init() {
	registry.MustRegister("baseline", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			st := sim.RunOpts(ctx.Sim, ctx.Opts, nil, nil, nil, nil, ctx.Factory())
			return registry.Result{Stats: st}, nil
		})
	})
	registry.MustRegister("prophet", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			if ctx.Prophet == nil {
				return registry.Result{}, fmt.Errorf("prophet scheme needs a pipeline-capable evaluator (Context.Prophet is nil)")
			}
			st, meta := ctx.Prophet.RunDirect(ctx.Factory)
			return registry.Result{Stats: st, Meta: meta}, nil
		})
	})
}
