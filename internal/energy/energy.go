// Package energy models memory-hierarchy energy the way Section 5.11 does:
// CACTI-style per-access energies for the on-chip caches at a 22nm node,
// with a DRAM access costing 25x an LLC access. Totals are relative — the
// paper reports Prophet's overhead as a percentage over Triangel, which the
// ratio of two totals reproduces regardless of the absolute scale.
package energy

import "prophet/internal/sim"

// Model holds per-access energies in picojoules.
type Model struct {
	L1Access   float64
	L2Access   float64
	L3Access   float64
	DRAMAccess float64
	// MetaAccess is the metadata-table access cost (an LLC-resident
	// structure, charged like an LLC access).
	MetaAccess float64
	// MVBAccess is the Multi-path Victim Buffer access cost (a small
	// dedicated SRAM).
	MVBAccess float64
}

// Default returns a 22nm-flavoured model: energies grow with structure
// size, and DRAM = 25x LLC (the paper's ratio).
func Default() Model {
	const llc = 100.0 // pJ per LLC access
	return Model{
		L1Access:   10,
		L2Access:   35,
		L3Access:   llc,
		DRAMAccess: 25 * llc,
		MetaAccess: llc,
		MVBAccess:  15,
	}
}

// Breakdown itemizes a run's memory-hierarchy energy.
type Breakdown struct {
	L1, L2, L3, DRAM, Metadata, MVB float64
}

// Total sums the breakdown (pJ).
func (b Breakdown) Total() float64 {
	return b.L1 + b.L2 + b.L3 + b.DRAM + b.Metadata + b.MVB
}

// Evaluate computes the energy breakdown of a simulation run.
// mvbAccesses is 0 for schemes without a victim buffer.
func (m Model) Evaluate(s sim.Stats, mvbAccesses uint64) Breakdown {
	l1 := float64(s.L1.Hits+s.L1.Misses+s.L1.Fills) * m.L1Access
	l2 := float64(s.L2.Hits+s.L2.Misses+s.L2.Fills) * m.L2Access
	l3 := float64(s.L3.Hits+s.L3.Misses+s.L3.Fills) * m.L3Access
	dr := float64(s.DRAM.Traffic()) * m.DRAMAccess
	meta := float64(s.TableStats.Lookups+s.TableStats.Insertions+s.TableStats.Updates) * m.MetaAccess
	mvb := float64(mvbAccesses) * m.MVBAccess
	return Breakdown{L1: l1, L2: l2, L3: l3, DRAM: dr, Metadata: meta, MVB: mvb}
}

// Overhead returns (scheme - reference) / reference for two totals.
func Overhead(scheme, reference float64) float64 {
	if reference == 0 {
		return 0
	}
	return (scheme - reference) / reference
}
