package energy

import (
	"math"
	"testing"

	"prophet/internal/cache"
	"prophet/internal/dram"
	"prophet/internal/sim"
	"prophet/internal/temporal"
)

func TestDRAMRatioMatchesPaper(t *testing.T) {
	m := Default()
	if m.DRAMAccess/m.L3Access != 25 {
		t.Fatalf("DRAM/LLC energy ratio = %v, paper uses 25x", m.DRAMAccess/m.L3Access)
	}
}

func TestEvaluateBreakdown(t *testing.T) {
	m := Model{L1Access: 1, L2Access: 2, L3Access: 4, DRAMAccess: 100, MetaAccess: 4, MVBAccess: 1}
	s := sim.Stats{
		L1:         cache.Stats{Hits: 10, Misses: 5, Fills: 5},
		L2:         cache.Stats{Hits: 4, Misses: 1, Fills: 1},
		L3:         cache.Stats{Hits: 1, Misses: 1, Fills: 1},
		DRAM:       dram.Stats{Reads: 2, Writes: 1},
		TableStats: temporal.TableStats{Lookups: 10, Insertions: 5, Updates: 5},
	}
	b := m.Evaluate(s, 7)
	if b.L1 != 20 || b.L2 != 12 || b.L3 != 12 {
		t.Fatalf("cache energies: %+v", b)
	}
	if b.DRAM != 300 {
		t.Fatalf("DRAM energy = %v", b.DRAM)
	}
	if b.Metadata != 80 {
		t.Fatalf("metadata energy = %v", b.Metadata)
	}
	if b.MVB != 7 {
		t.Fatalf("MVB energy = %v", b.MVB)
	}
	if got := b.Total(); got != 20+12+12+300+80+7 {
		t.Fatalf("total = %v", got)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(103, 100); math.Abs(got-0.03) > 1e-12 {
		t.Fatalf("Overhead = %v", got)
	}
	if Overhead(5, 0) != 0 {
		t.Fatal("zero reference")
	}
}

func TestDRAMDominates(t *testing.T) {
	// Sanity: with realistic counters, DRAM is the dominant term — the
	// property that makes wasted prefetch traffic costly in Section 5.11.
	m := Default()
	s := sim.Stats{
		L1:   cache.Stats{Hits: 1000, Misses: 100, Fills: 100},
		L2:   cache.Stats{Hits: 50, Misses: 50, Fills: 50},
		L3:   cache.Stats{Hits: 25, Misses: 25, Fills: 25},
		DRAM: dram.Stats{Reads: 25, Writes: 5},
	}
	b := m.Evaluate(s, 0)
	if b.DRAM < b.L1 && b.DRAM < b.L2 {
		t.Fatalf("DRAM energy should dominate: %+v", b)
	}
}
