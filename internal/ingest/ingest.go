// Package ingest converts external trace formats into the simulator's
// native mem.Access stream. It is the front door for third-party workloads:
// a pluggable registry of streaming format converters (ChampSim-style load
// traces, generic CSV access logs), each decoding block-buffered records on
// demand — the same zero-materialization discipline as mem.TraceReader —
// so a multi-gigabyte external trace replays in O(block) memory.
//
// Formats self-register in their init functions under a short name that
// doubles as the public workload-source prefix: the workload name
// "champsim:<path>" resolves through Split to the "champsim" converter.
// Compression is orthogonal to format: OpenFile detects gzip from the
// stream's leading magic bytes, never the file name.
//
// The conversion contract mirrors trace replay everywhere else in the
// repository: a fixed input file yields a byte-identical record stream on
// every pass, so multi-pass schemes (RPG2, Prophet) and repeated sweeps see
// the exact trace the validation pass saw. Errors are reported through
// Reader.Err, never panics; Count streams a whole file once to surface
// corrupt headers and mid-record truncation as errors before a simulation
// silently runs on a short trace.
package ingest

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"prophet/internal/mem"
)

// ErrBadTrace reports a malformed external trace (corrupt record, truncated
// file, unparsable field). It wraps every converter's decode errors so
// callers can classify ingestion failures without knowing the format.
var ErrBadTrace = errors.New("ingest: malformed external trace")

// Reader is a streaming converted trace: a mem.Source plus the error that
// terminated it early, if any. A Reader is single-use; re-open the file for
// another pass.
type Reader interface {
	mem.Source
	// Err returns the decode error that ended the stream prematurely, or
	// nil after a clean end of input.
	Err() error
}

// Format is one registered external trace format.
type Format struct {
	// Name is the registry key and the workload-source prefix
	// ("champsim" serves champsim:<path> workload names).
	Name string
	// Description is a one-line summary for tooling (CLI help, the
	// daemon's /v1/workloads source table).
	Description string
	// Open wraps an already-decompressed byte stream in a streaming
	// converter positioned at the first record.
	Open func(r io.Reader) (Reader, error)
}

var (
	mu      sync.RWMutex
	formats = map[string]Format{}
)

// Register installs a format under its name. Duplicates are rejected: two
// converters fighting over a prefix would make workload resolution depend
// on init order.
func Register(f Format) error {
	if f.Name == "" {
		return fmt.Errorf("ingest: empty format name")
	}
	if strings.ContainsAny(f.Name, ":/\\ \t\n") {
		return fmt.Errorf("ingest: format name %q must be prefix-safe", f.Name)
	}
	if f.Open == nil {
		return fmt.Errorf("ingest: nil Open for format %q", f.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := formats[f.Name]; dup {
		return fmt.Errorf("ingest: format %q already registered", f.Name)
	}
	formats[f.Name] = f
	return nil
}

// MustRegister is Register for init functions.
func MustRegister(f Format) {
	if err := Register(f); err != nil {
		panic(err)
	}
}

// Lookup resolves a format by name.
func Lookup(name string) (Format, bool) {
	mu.RLock()
	defer mu.RUnlock()
	f, ok := formats[name]
	return f, ok
}

// Formats lists the registered formats sorted by name, for stable output.
func Formats() []Format {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Format, 0, len(formats))
	for _, f := range formats {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Split parses a "<format>:<path>" workload-source name against the
// registered formats. Names whose prefix is not a registered format (or
// that have no prefix at all) report ok=false — they belong to another
// resolver, like the catalog or "file:".
func Split(name string) (f Format, path string, ok bool) {
	prefix, rest, found := strings.Cut(name, ":")
	if !found || rest == "" {
		return Format{}, "", false
	}
	f, ok = Lookup(prefix)
	return f, rest, ok
}

// FileReader couples a converter with the file (and optional gzip layer)
// beneath it.
type FileReader struct {
	Reader
	f *os.File
}

// Close releases the underlying file.
func (c *FileReader) Close() error { return c.f.Close() }

// OpenFile opens path for streaming conversion under format f,
// transparently decompressing gzip (detected from the stream's leading
// magic bytes, not the file name). The caller owns the returned reader and
// must Close it.
func OpenFile(f Format, path string) (*FileReader, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(file, 1<<16)
	var src io.Reader = br
	if head, err := br.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			file.Close()
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		src = zr
	}
	r, err := f.Open(src)
	if err != nil {
		file.Close()
		return nil, err
	}
	return &FileReader{Reader: r, f: file}, nil
}

// Count streams the whole file through the converter, returning the number
// of access records it yields. It is the validation pass behind workload
// resolution: a corrupt header, a truncated record, or an absurd field
// surfaces here as an error — before a simulation would silently run on a
// short stream.
func Count(f Format, path string) (uint64, error) {
	r, err := OpenFile(f, path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	var n uint64
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return n, nil
}
