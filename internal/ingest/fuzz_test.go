package ingest

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// fuzzDrain pulls every record out of a converter over arbitrary bytes and
// checks the Reader contract: no panic, every failure is ErrBadTrace-classed
// (or a clean EOF), and the stream stays dead once it ends.
func fuzzDrain(t *testing.T, r Reader) int {
	t.Helper()
	n := 0
	for {
		_, ok := r.Next()
		if !ok {
			break
		}
		n++
		if n > 1<<22 {
			t.Fatal("converter yielded absurdly many records for a small input")
		}
	}
	if err := r.Err(); err != nil && !errors.Is(err, ErrBadTrace) {
		t.Fatalf("Err() = %v, not classified under ErrBadTrace", err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("Next() succeeded after stream end")
	}
	return n
}

func FuzzChampSim(f *testing.F) {
	f.Add(sampleChampSim())
	f.Add(sampleChampSim()[:70])             // truncated mid-record
	f.Add(make([]byte, champsimRecordBytes)) // all-zero instruction
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fmtc, _ := Lookup("champsim")
		r, err := fmtc.Open(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := fuzzDrain(t, r)
		if r.Err() == nil {
			// A clean stream must account for every whole record: no more
			// accesses than memory-operand slots in the input.
			if max := (len(data) / champsimRecordBytes) * champsimMaxOps; n > max {
				t.Fatalf("%d accesses from %d bytes (max %d)", n, len(data), max)
			}
			if len(data)%champsimRecordBytes != 0 {
				t.Fatalf("partial record (%d bytes) not reported", len(data)%champsimRecordBytes)
			}
		}
	})
}

func FuzzCSV(f *testing.F) {
	f.Add("pc,addr\n0x1,0x2\n")
	f.Add("# comment\n\n1,2,store,3,4\n")
	f.Add("1,2,load,99999999999999999999\n")
	f.Add(strings.Repeat("a", csvMaxLine+1))
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		fmtc, _ := Lookup("csv")
		r, err := fmtc.Open(strings.NewReader(data))
		if err != nil {
			return
		}
		fuzzDrain(t, r)
	})
}
