package ingest

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/mem"
)

// champsimInstr builds one 64-byte input_instr record.
func champsimInstr(ip uint64, loads []uint64, stores []uint64) []byte {
	b := make([]byte, champsimRecordBytes)
	binary.LittleEndian.PutUint64(b[0:], ip)
	for i, a := range stores {
		binary.LittleEndian.PutUint64(b[16+8*i:], a)
	}
	for i, a := range loads {
		binary.LittleEndian.PutUint64(b[32+8*i:], a)
	}
	return b
}

// sampleChampSim is a small deterministic instruction mix: memory
// instructions interleaved with pure-ALU ones, multi-operand records, and a
// store.
func sampleChampSim() []byte {
	var buf bytes.Buffer
	buf.Write(champsimInstr(0x400000, nil, nil)) // ALU only: becomes Gap
	buf.Write(champsimInstr(0x400004, nil, nil))
	buf.Write(champsimInstr(0x400008, []uint64{0x10000}, nil))
	buf.Write(champsimInstr(0x40000c, []uint64{0x10040, 0x20000}, []uint64{0x30000}))
	buf.Write(champsimInstr(0x400010, nil, nil))
	buf.Write(champsimInstr(0x400014, nil, []uint64{0x10080}))
	return buf.Bytes()
}

func drain(t *testing.T, r Reader) []mem.Access {
	t.Helper()
	var out []mem.Access
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

func TestChampSimExpansion(t *testing.T) {
	f, _ := Lookup("champsim")
	r, err := f.Open(bytes.NewReader(sampleChampSim()))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	want := []mem.Access{
		{PC: 0x400008, Addr: 0x10000, Kind: mem.Load, Gap: 2},
		{PC: 0x40000c, Addr: 0x10040, Kind: mem.Load},
		{PC: 0x40000c, Addr: 0x20000, Kind: mem.Load},
		{PC: 0x40000c, Addr: 0x30000, Kind: mem.Store},
		{PC: 0x400014, Addr: 0x10080, Kind: mem.Store, Gap: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestChampSimTruncation(t *testing.T) {
	raw := sampleChampSim()
	f, _ := Lookup("champsim")
	r, err := f.Open(bytes.NewReader(raw[:len(raw)-13]))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, r)
	if !errors.Is(r.Err(), ErrBadTrace) {
		t.Fatalf("truncated trace: Err() = %v, want ErrBadTrace", r.Err())
	}
}

func TestChampSimGzipAutoDetect(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.champsim")
	if err := os.WriteFile(plain, sampleChampSim(), 0o644); err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(sampleChampSim())
	zw.Close()
	// No .gz suffix on purpose: detection is by magic bytes, not name.
	zipped := filepath.Join(dir, "t.champsim.compressed")
	if err := os.WriteFile(zipped, zbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := Lookup("champsim")
	for _, path := range []string{plain, zipped} {
		n, err := Count(f, path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if n != 5 {
			t.Errorf("%s: Count = %d, want 5", path, n)
		}
	}
}

// TestGoldenChampSim pins the checked-in sample fixture: record count and a
// cheap order-sensitive digest must never drift, since sweep results for
// champsim: workloads hang off this stream being byte-identical.
func TestGoldenChampSim(t *testing.T) {
	f, _ := Lookup("champsim")
	const path = "../../testdata/sample.champsim.gz"
	n, err := Count(f, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6336 {
		t.Fatalf("fixture record count = %d, want 6336", n)
	}
	r, err := OpenFile(f, path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var digest uint64
	for {
		a, ok := r.Next()
		if !ok {
			break
		}
		digest = digest*1099511628211 ^ uint64(a.PC) ^ uint64(a.Addr)<<1 ^ uint64(a.Kind)<<2 ^ uint64(a.Gap)<<3
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if digest != goldenChampSimDigest {
		t.Fatalf("fixture digest = %#x, want %#x", digest, goldenChampSimDigest)
	}
}

func TestCSVParsing(t *testing.T) {
	in := strings.Join([]string{
		"pc,addr,kind,dep,gap", // header
		"# comment",
		"",
		"0x400000,0x10000",
		"0x400004,0x10040,store",
		"4195336,65664,S,1,7",
		"0x40000c,0x20000,load,0,2",
	}, "\n")
	f, _ := Lookup("csv")
	r, err := f.Open(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, r)
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	want := []mem.Access{
		{PC: 0x400000, Addr: 0x10000, Kind: mem.Load},
		{PC: 0x400004, Addr: 0x10040, Kind: mem.Store},
		{PC: 4195336, Addr: 65664, Kind: mem.Store, Dep: 1, Gap: 7},
		{PC: 0x40000c, Addr: 0x20000, Kind: mem.Load, Gap: 2},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"0x400000,0x1000\nnot-a-pc,0x2000",               // bad pc after data
		"0x400000,0x1000\n0x400004,bad",                  // bad addr
		"0x400000,0x1000\n0x400004,0x2000,x",             // bad kind
		"0x400000,0x1000\n1,2,load,99999999999999999999", // absurd dep
		"0x400000,0x1000\n1,2,load,0,70000",              // gap over uint16
		"0x400000,0x1000\n1,2,load,0,1,extra",            // too many fields
		"header\nstill,not,numbers",                      // two unparsable lines
	}
	f, _ := Lookup("csv")
	for _, in := range cases {
		r, err := f.Open(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		drain(t, r)
		if !errors.Is(r.Err(), ErrBadTrace) {
			t.Errorf("input %q: Err() = %v, want ErrBadTrace", in, r.Err())
		}
	}
}

func TestCountValidates(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.champsim")
	if err := os.WriteFile(bad, sampleChampSim()[:70], 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := Lookup("champsim")
	if _, err := Count(f, bad); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("Count(truncated) = %v, want ErrBadTrace", err)
	}
	if _, err := Count(f, filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Count(missing) succeeded")
	}
}

func TestSplit(t *testing.T) {
	if f, path, ok := Split("champsim:/tmp/x.trace"); !ok || f.Name != "champsim" || path != "/tmp/x.trace" {
		t.Fatalf("Split(champsim:...) = %v %q %v", f.Name, path, ok)
	}
	if _, _, ok := Split("csv:relative/dir/log.csv.gz"); !ok {
		t.Fatal("Split(csv:...) not ok")
	}
	for _, name := range []string{"mcf", "file:/tmp/x.trc", "champsim:", "nope:path", ""} {
		if _, _, ok := Split(name); ok {
			t.Errorf("Split(%q) unexpectedly ok", name)
		}
	}
}

func TestRegistry(t *testing.T) {
	names := []string{}
	for _, f := range Formats() {
		names = append(names, f.Name)
	}
	if len(names) < 2 || names[0] != "champsim" || names[1] != "csv" {
		t.Fatalf("Formats() = %v, want [champsim csv ...]", names)
	}
	open := func(io.Reader) (Reader, error) { return nil, nil }
	if err := Register(Format{Name: "champsim", Open: open}); err == nil {
		t.Fatal("duplicate Register succeeded")
	}
	for _, bad := range []Format{
		{Name: "", Open: open},
		{Name: "has:colon", Open: open},
		{Name: "ok"},
	} {
		if err := Register(bad); err == nil {
			t.Errorf("Register(%+v) succeeded, want error", bad)
		}
	}
}

// goldenChampSimDigest is the FNV-style digest of the frozen
// testdata/sample.champsim.gz stream.
const goldenChampSimDigest = 0x31676d8ffc494868
