package ingest

import (
	"encoding/binary"
	"fmt"
	"io"

	"prophet/internal/mem"
)

// ChampSim input_instr records are fixed 64-byte little-endian structs:
//
//	ip                      uint64   // instruction pointer
//	is_branch               uint8
//	branch_taken            uint8
//	destination_registers   [2]uint8
//	source_registers        [4]uint8
//	destination_memory      [2]uint64 // store effective addresses (0 = none)
//	source_memory           [4]uint64 // load effective addresses (0 = none)
//
// One instruction therefore expands into zero or more Access records: its
// source-memory loads first (reads happen before the write), then its
// destination-memory stores. Instructions without memory operands become
// the Gap of the next emitted record — the non-memory instruction count the
// core model charges fetch/commit bandwidth for. Dep is 0 throughout:
// ChampSim traces carry register numbers, not inter-record distances, and
// inventing dependences would fabricate serialization the trace never
// expressed.

const (
	champsimRecordBytes = 64
	// champsimBlockRecords is how many instructions are decoded per refill
	// of the reusable block buffer (mem.TraceReader's discipline).
	champsimBlockRecords = 4096
	// champsimMaxOps bounds the accesses one instruction can expand into:
	// 4 source + 2 destination memory operands.
	champsimMaxOps = 6
)

func init() {
	MustRegister(Format{
		Name:        "champsim",
		Description: "ChampSim input_instr load trace (64-byte records, gzip auto-detected)",
		Open: func(r io.Reader) (Reader, error) {
			return &champsimReader{
				r:     r,
				block: make([]byte, 0, champsimBlockRecords*champsimRecordBytes),
			}, nil
		},
	})
}

// champsimReader streams ChampSim instructions, expanding memory operands
// into Access records on demand from a reusable block buffer.
type champsimReader struct {
	r     io.Reader
	block []byte // whole 64-byte records only
	pos   int    // consumed bytes within block
	eof   bool
	err   error

	// pending holds the current instruction's not-yet-delivered accesses.
	pending    [champsimMaxOps]mem.Access
	pendingN   int
	pendingPos int

	gap uint64 // non-memory instructions since the last emitted access
}

// Err implements Reader.
func (c *champsimReader) Err() error { return c.err }

// Next implements mem.Source.
func (c *champsimReader) Next() (mem.Access, bool) {
	for {
		if c.pendingPos < c.pendingN {
			a := c.pending[c.pendingPos]
			c.pendingPos++
			return a, true
		}
		if c.err != nil {
			return mem.Access{}, false
		}
		if c.pos >= len(c.block) {
			if !c.refill() {
				return mem.Access{}, false
			}
		}
		c.decode(c.block[c.pos : c.pos+champsimRecordBytes])
		c.pos += champsimRecordBytes
	}
}

// decode expands one instruction into pending accesses (possibly none).
func (c *champsimReader) decode(b []byte) {
	ip := mem.Addr(le64(b[0:]))
	c.pendingN, c.pendingPos = 0, 0
	// Loads (source_memory) first, then stores (destination_memory).
	for i := 0; i < 4; i++ {
		if addr := le64(b[32+8*i:]); addr != 0 {
			c.emit(ip, mem.Addr(addr), mem.Load)
		}
	}
	for i := 0; i < 2; i++ {
		if addr := le64(b[16+8*i:]); addr != 0 {
			c.emit(ip, mem.Addr(addr), mem.Store)
		}
	}
	if c.pendingN == 0 {
		c.gap++ // a pure non-memory instruction feeds the next record's Gap
	}
}

// emit queues one access; the instruction's first access carries the
// accumulated non-memory gap (clamped to the field's range, like the
// workload generator's stream.emit).
func (c *champsimReader) emit(pc, addr mem.Addr, kind mem.Kind) {
	gap := uint16(0)
	if c.pendingN == 0 {
		g := c.gap
		if g > 0xFFFF {
			g = 0xFFFF
		}
		gap = uint16(g)
		c.gap = 0
	}
	c.pending[c.pendingN] = mem.Access{PC: pc, Addr: addr, Kind: kind, Gap: gap}
	c.pendingN++
}

// refill reads the next block of whole instructions. A trailing partial
// record is a truncation error, not a silent short stream.
func (c *champsimReader) refill() bool {
	if c.eof {
		return false
	}
	buf := c.block[:cap(c.block)]
	n, err := io.ReadFull(c.r, buf)
	switch err {
	case nil:
	case io.EOF:
		c.eof = true
		return false
	case io.ErrUnexpectedEOF:
		c.eof = true
		if n%champsimRecordBytes != 0 {
			c.err = fmt.Errorf("%w: champsim: truncated instruction (%d trailing bytes)",
				ErrBadTrace, n%champsimRecordBytes)
			return false
		}
	default:
		c.err = fmt.Errorf("%w: champsim: %v", ErrBadTrace, err)
		return false
	}
	c.block = buf[:n-n%champsimRecordBytes]
	c.pos = 0
	return len(c.block) > 0
}

func le64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }
