package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prophet/internal/mem"
)

// The CSV access-log format is the lowest-friction ingestion path: one
// access per line,
//
//	pc,addr[,kind[,dep[,gap]]]
//
// with pc/addr in decimal or 0x-prefixed hex, kind one of load/l/0 or
// store/s/1 (default load), dep a uint32 record distance and gap a uint16
// non-memory instruction count. Blank lines and #-comments are skipped, and
// one optional header line naming the columns ("pc,addr,...") is tolerated
// so exported spreadsheets ingest unmodified. Anything else — missing
// fields, unparsable numbers, out-of-range counts — is an ErrBadTrace with
// its line number, never a silently dropped record.

// csvMaxLine bounds one line; access logs with longer lines are corrupt.
const csvMaxLine = 1 << 16

func init() {
	MustRegister(Format{
		Name:        "csv",
		Description: "CSV access log: pc,addr[,kind[,dep[,gap]]] per line (gzip auto-detected)",
		Open: func(r io.Reader) (Reader, error) {
			sc := bufio.NewScanner(r)
			sc.Buffer(make([]byte, 0, 4096), csvMaxLine)
			return &csvReader{sc: sc}, nil
		},
	})
}

// csvReader streams one parsed access per non-empty line.
type csvReader struct {
	sc   *bufio.Scanner
	line int
	// seen reports that a line was already parsed (or skipped as the
	// header), so the one-header tolerance applies only to the first
	// non-blank, non-comment line.
	seen bool
	err  error
}

// Err implements Reader.
func (c *csvReader) Err() error { return c.err }

// Next implements mem.Source.
func (c *csvReader) Next() (mem.Access, bool) {
	if c.err != nil {
		return mem.Access{}, false
	}
	for c.sc.Scan() {
		c.line++
		text := strings.TrimSpace(c.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		a, err := c.parse(text)
		if err != nil {
			// One unparsable leading line is tolerated as the header
			// ("pc,addr,kind"); any later failure is a real error.
			if !c.seen {
				c.seen = true
				continue
			}
			c.err = err
			return mem.Access{}, false
		}
		c.seen = true
		return a, true
	}
	if err := c.sc.Err(); err != nil {
		c.err = fmt.Errorf("%w: csv: %v", ErrBadTrace, err)
	}
	return mem.Access{}, false
}

// parse decodes one data line.
func (c *csvReader) parse(text string) (mem.Access, error) {
	fields := strings.Split(text, ",")
	if len(fields) < 2 || len(fields) > 5 {
		return mem.Access{}, fmt.Errorf("%w: csv line %d: want 2-5 fields, got %d",
			ErrBadTrace, c.line, len(fields))
	}
	pc, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 0, 64)
	if err != nil {
		return mem.Access{}, fmt.Errorf("%w: csv line %d: bad pc %q", ErrBadTrace, c.line, fields[0])
	}
	addr, err := strconv.ParseUint(strings.TrimSpace(fields[1]), 0, 64)
	if err != nil {
		return mem.Access{}, fmt.Errorf("%w: csv line %d: bad addr %q", ErrBadTrace, c.line, fields[1])
	}
	a := mem.Access{PC: mem.Addr(pc), Addr: mem.Addr(addr)}
	if len(fields) > 2 {
		switch k := strings.ToLower(strings.TrimSpace(fields[2])); k {
		case "", "l", "load", "0":
			a.Kind = mem.Load
		case "s", "store", "1":
			a.Kind = mem.Store
		default:
			return mem.Access{}, fmt.Errorf("%w: csv line %d: bad kind %q", ErrBadTrace, c.line, fields[2])
		}
	}
	if len(fields) > 3 {
		dep, err := strconv.ParseUint(strings.TrimSpace(fields[3]), 0, 32)
		if err != nil {
			return mem.Access{}, fmt.Errorf("%w: csv line %d: bad dep %q", ErrBadTrace, c.line, fields[3])
		}
		a.Dep = uint32(dep)
	}
	if len(fields) > 4 {
		gap, err := strconv.ParseUint(strings.TrimSpace(fields[4]), 0, 16)
		if err != nil {
			return mem.Access{}, fmt.Errorf("%w: csv line %d: bad gap %q", ErrBadTrace, c.line, fields[4])
		}
		a.Gap = uint16(gap)
	}
	return a, nil
}
