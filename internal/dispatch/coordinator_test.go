package dispatch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// probedBackend is a fakeBackend that also reports load, optionally
// failing its probes, and can block Execute until released so tests can
// hold chunks in flight deterministically.
type probedBackend struct {
	fakeBackend
	load      Load
	probeErr  error
	probes    atomic.Int64
	block     chan struct{} // non-nil: Execute waits until closed
	executing chan struct{} // non-nil: receives one token per Execute entry
}

func (p *probedBackend) Probe(ctx context.Context) (Load, error) {
	p.probes.Add(1)
	return p.load, p.probeErr
}

func (p *probedBackend) Execute(ctx context.Context, jobs []int) ([]string, error) {
	if p.executing != nil {
		p.executing <- struct{}{}
	}
	if p.block != nil {
		select {
		case <-p.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return p.fakeBackend.Execute(ctx, jobs)
}

// Cross-strategy equivalence: whatever places the chunks, the merged
// output is byte-identical to the no-backend local run.
func TestSchedulerStrategiesProduceIdenticalResults(t *testing.T) {
	jobs := jobsN(60)
	want := New(testConfig(nil, &localRunner{})).Dispatch(context.Background(), jobs)
	for _, name := range Schedulers() {
		sched, err := SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ring := []Backend[int, string]{
			&probedBackend{fakeBackend: fakeBackend{name: "b0"}, load: Load{QueueDepth: 7}},
			&probedBackend{fakeBackend: fakeBackend{name: "b1"}},
			&probedBackend{fakeBackend: fakeBackend{name: "b2"}, load: Load{InFlight: 2}},
		}
		cfg := testConfig(ring, &localRunner{})
		cfg.Scheduler = sched
		cfg.MaxBatch = 7
		d := New(cfg)
		got := d.Dispatch(context.Background(), jobs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scheduler %q: results diverge from local run", name)
		}
		if st := d.Stats(); st.Remote != int64(len(jobs)) || st.Local != 0 {
			t.Fatalf("scheduler %q: stats %+v, want all %d jobs remote", name, st, len(jobs))
		}
	}
}

// The least-loaded strategy probes Prober backends and routes around a
// deeply queued one when an idle peer has capacity.
func TestLeastLoadedProbesAndFavorsIdle(t *testing.T) {
	busy := &probedBackend{fakeBackend: fakeBackend{name: "busy"}, load: Load{QueueDepth: 1000}}
	idle := &probedBackend{fakeBackend: fakeBackend{name: "idle"}}
	cfg := testConfig([]Backend[int, string]{busy, idle}, &localRunner{})
	cfg.Scheduler = LeastLoaded()
	cfg.MaxBatch = 5
	d := New(cfg)
	jobs := jobsN(20) // 4 chunks ≤ MaxInFlight, all granted in round one
	got := d.Dispatch(context.Background(), jobs)
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge")
	}
	if busy.probes.Load() == 0 || idle.probes.Load() == 0 {
		t.Fatalf("probes busy=%d idle=%d, want both probed", busy.probes.Load(), idle.probes.Load())
	}
	if n := len(busy.received()); n != 0 {
		t.Fatalf("deeply queued backend executed %d jobs; idle peer had capacity for all", n)
	}
	if n := len(idle.received()); n != len(jobs) {
		t.Fatalf("idle backend executed %d jobs, want %d", n, len(jobs))
	}
}

// A failed probe deprioritizes the backend but the sweep still completes
// remotely when the sick backend is the only capacity.
func TestProbeFailureDoesNotBlockDispatch(t *testing.T) {
	sick := &probedBackend{fakeBackend: fakeBackend{name: "sick"}, probeErr: errors.New("probe down")}
	cfg := testConfig([]Backend[int, string]{sick}, &localRunner{})
	cfg.Scheduler = LeastLoaded()
	d := New(cfg)
	jobs := jobsN(6)
	got := d.Dispatch(context.Background(), jobs)
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge")
	}
	if st := d.Stats(); st.Remote != int64(len(jobs)) {
		t.Fatalf("stats %+v, want all jobs remote despite failed probe", st)
	}
}

// Concurrent Dispatch calls on one Dispatcher: no result cross-talk, and
// the shared counters sum exactly.
func TestConcurrentDispatchesShareFleetWithoutCrossTalk(t *testing.T) {
	ring := []Backend[int, string]{
		&fakeBackend{name: "b0"},
		&fakeBackend{name: "b1", failures: 3}, // exercise retry+failover under concurrency
	}
	cfg := testConfig(ring, &localRunner{})
	cfg.MaxBatch = 4
	cfg.Retries = 2
	d := New(cfg)

	const runs = 8
	var wg sync.WaitGroup
	outs := make([][]string, runs)
	jobSets := make([][]int, runs)
	for r := 0; r < runs; r++ {
		jobs := make([]int, 25)
		for i := range jobs {
			jobs[i] = r*1000 + i*3 // disjoint per run, so cross-talk is detectable
		}
		jobSets[r] = jobs
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			outs[r] = d.Dispatch(context.Background(), jobSets[r])
		}(r)
	}
	wg.Wait()
	total := 0
	for r := 0; r < runs; r++ {
		if !reflect.DeepEqual(outs[r], wantResults(jobSets[r])) {
			t.Fatalf("run %d results corrupted by concurrent dispatches", r)
		}
		total += len(jobSets[r])
	}
	st := d.Stats()
	if st.Remote+st.Local != int64(total) {
		t.Fatalf("Remote+Local = %d, want %d (counters must sum across concurrent runs)",
			st.Remote+st.Local, total)
	}
	if st.Cached != 0 || st.ShortLocal != 0 {
		t.Fatalf("unexpected counters in %+v", st)
	}
}

// Removing a peer mid-dispatch (heartbeat expiry) drains it: queued chunks
// reroute to the survivor or fail over, and no job is lost or duplicated.
func TestRemovePeerMidDispatchReroutesWithoutLossOrDup(t *testing.T) {
	release := make(chan struct{})
	slow := &probedBackend{
		fakeBackend: fakeBackend{name: "slow"},
		block:       release,
		executing:   make(chan struct{}, 64),
	}
	fast := &fakeBackend{name: "fast"}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{slow, fast}, local)
	cfg.MaxBatch = 2
	cfg.MaxInFlight = 1 // one chunk per peer at a time: the rest stay queued
	d := New(cfg)

	jobs := jobsN(40)
	done := make(chan []string, 1)
	go func() { done <- d.Dispatch(context.Background(), jobs) }()

	<-slow.executing // slow now holds a chunk in flight
	if !d.Remove("slow") {
		t.Fatal("Remove(slow) = false, want true")
	}
	close(release) // let the in-flight chunk finish after the drain

	got := <-done
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge after mid-dispatch peer removal")
	}
	ran := map[int]int{}
	for _, j := range slow.received() {
		ran[j]++
	}
	for _, j := range fast.received() {
		ran[j]++
	}
	local.mu.Lock()
	for _, j := range local.jobs {
		ran[j]++
	}
	local.mu.Unlock()
	for _, j := range jobs {
		if ran[j] != 1 {
			t.Fatalf("job %d executed %d times across peers+local, want exactly 1", j, ran[j])
		}
	}
	if got := d.Peers(); !reflect.DeepEqual(got, []string{"fast"}) {
		t.Fatalf("Peers() = %v after drain, want [fast]", got)
	}
}

// A peer joining mid-dispatch starts receiving queued chunks.
func TestAddPeerMidDispatchReceivesWork(t *testing.T) {
	release := make(chan struct{})
	gate := &probedBackend{
		fakeBackend: fakeBackend{name: "gate"},
		block:       release,
		executing:   make(chan struct{}, 64),
	}
	cfg := testConfig([]Backend[int, string]{gate}, &localRunner{})
	cfg.MaxBatch = 2
	cfg.MaxInFlight = 1
	d := New(cfg)

	jobs := jobsN(30)
	done := make(chan []string, 1)
	go func() { done <- d.Dispatch(context.Background(), jobs) }()

	<-gate.executing // dispatch is underway with a long queue behind gate
	helper := &fakeBackend{name: "helper"}
	if !d.Add(helper) {
		t.Fatal("Add(helper) = false, want true")
	}
	if d.Add(&fakeBackend{name: "helper"}) {
		t.Fatal("duplicate Add(helper) accepted")
	}

	// The idle newcomer steals queued chunks while gate is blocked.
	deadline := time.After(5 * time.Second)
	for len(helper.received()) == 0 {
		select {
		case <-deadline:
			t.Fatal("joined peer never received work")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	got := <-done
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge after mid-dispatch join")
	}
	if d.Stats().Stolen == 0 {
		t.Fatal("Stolen = 0, want >0 (helper had no hash affinity for its chunks)")
	}
}

// DispatchFunc streams every result exactly once with the right value, and
// the returned slice still matches the ordered merge.
func TestDispatchFuncStreamsEveryResultOnce(t *testing.T) {
	ring := []Backend[int, string]{
		&fakeBackend{name: "b0"},
		&fakeBackend{name: "b1", failures: 1}, // retries must not re-emit
	}
	cache := newFakeCache()
	local := &localRunner{}
	cfg := testConfig(ring, local)
	cfg.MaxBatch = 3
	cfg.Retries = 3
	cfg.CacheGet = cache.get
	cfg.Pin = func(j int) bool { return j%5 == 0 }
	d := New(cfg)

	jobs := jobsN(40)
	cache.put(jobs[2], result(jobs[2])) // one warm entry streams first

	var mu sync.Mutex
	seen := map[int]string{}
	var order []int
	got := d.DispatchFunc(context.Background(), jobs, func(i int, r string) {
		mu.Lock()
		defer mu.Unlock()
		if prev, dup := seen[i]; dup {
			t.Errorf("index %d emitted twice (%q then %q)", i, prev, r)
		}
		seen[i] = r
		order = append(order, i)
	})
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("returned merge diverges")
	}
	if len(seen) != len(jobs) {
		t.Fatalf("streamed %d results, want %d", len(seen), len(jobs))
	}
	for i, j := range jobs {
		if seen[i] != result(j) {
			t.Fatalf("index %d streamed %q, want %q", i, seen[i], result(j))
		}
	}
	if order[0] != 2 {
		t.Fatalf("first emitted index %d, want cache hit 2", order[0])
	}
	// Client-side merge by index reconstructs job order whatever the
	// completion order was.
	sorted := append([]int(nil), order...)
	sort.Ints(sorted)
	merged := make([]string, len(jobs))
	for _, i := range sorted {
		merged[i] = seen[i]
	}
	if !reflect.DeepEqual(merged, got) {
		t.Fatal("index-merged stream diverges from returned slice")
	}
}

// Streaming with no fleet still delivers progressively, chunked by
// MaxBatch.
func TestDispatchFuncNoFleetChunksLocally(t *testing.T) {
	cfg := testConfig(nil, &localRunner{})
	cfg.MaxBatch = 4
	d := New(cfg)
	jobs := jobsN(10)
	var emitted []int
	got := d.DispatchFunc(context.Background(), jobs, func(i int, r string) {
		emitted = append(emitted, i)
	})
	if !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge")
	}
	if !reflect.DeepEqual(emitted, allIndexes(len(jobs))) {
		t.Fatalf("local streaming emitted %v, want ascending indexes", emitted)
	}
}

// A short local return is counted and logged instead of passing silently.
func TestShortLocalReturnCountedAndLogged(t *testing.T) {
	short := func(ctx context.Context, jobs []int) []string {
		out := make([]string, 0, len(jobs))
		for _, j := range jobs[:len(jobs)-2] {
			out = append(out, result(j))
		}
		return out
	}
	var logged []string
	d := New(Config[int, string]{
		Local: short,
		Key:   func(j int) string { return fmt.Sprint(j) },
		Logf:  func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	out := d.Dispatch(context.Background(), jobsN(6))
	if st := d.Stats(); st.ShortLocal != 2 {
		t.Fatalf("ShortLocal = %d, want 2", st.ShortLocal)
	}
	if len(logged) != 1 {
		t.Fatalf("logged %d warnings, want 1: %v", len(logged), logged)
	}
	if out[4] != "" || out[5] != "" {
		t.Fatalf("missing slots not zero-valued: %q %q", out[4], out[5])
	}
}

// Pinned batches are chunked by MaxBatch like remote shards.
func TestPinnedJobsChunkedByMaxBatch(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	local := func(ctx context.Context, jobs []int) []string {
		mu.Lock()
		sizes = append(sizes, len(jobs))
		mu.Unlock()
		out := make([]string, len(jobs))
		for i, j := range jobs {
			out[i] = result(j)
		}
		return out
	}
	cfg := Config[int, string]{
		Backends: []Backend[int, string]{&fakeBackend{name: "b"}},
		Local:    local,
		Key:      func(j int) string { return fmt.Sprint(j) },
		MaxBatch: 3,
		Pin:      func(int) bool { return true },
	}
	d := New(cfg)
	jobs := jobsN(10)
	if got := d.Dispatch(context.Background(), jobs); !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge")
	}
	if want := []int{3, 3, 3, 1}; !reflect.DeepEqual(sizes, want) {
		t.Fatalf("pinned batch sizes %v, want %v", sizes, want)
	}
}

// Retry backoff is jittered: the delay passed to sleep varies within
// [base/2, base] instead of being the fixed doubling sequence.
func TestRetryBackoffJitter(t *testing.T) {
	base := 100 * time.Millisecond
	for i := 0; i < 50; i++ {
		got := fullJitter(base)
		if got < base/2 || got > base {
			t.Fatalf("fullJitter(%v) = %v, outside [%v, %v]", base, got, base/2, base)
		}
	}
	if fullJitter(0) != 0 || fullJitter(1) != 1 {
		t.Fatal("degenerate durations must pass through")
	}
	// The dispatcher routes every retry wait through the jitter hook.
	flaky := &fakeBackend{name: "flaky", failures: 2}
	var waits []time.Duration
	cfg := testConfig([]Backend[int, string]{flaky}, &localRunner{})
	cfg.Retries = 3
	cfg.Backoff = 80 * time.Millisecond
	cfg.jitter = func(d time.Duration) time.Duration {
		waits = append(waits, d)
		return d / 4 // prove the jittered value is what gets slept
	}
	var slept []time.Duration
	cfg.sleep = func(_ context.Context, d time.Duration) { slept = append(slept, d) }
	d := New(cfg)
	jobs := jobsN(3)
	if got := d.Dispatch(context.Background(), jobs); !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge")
	}
	if want := []time.Duration{80 * time.Millisecond, 160 * time.Millisecond}; !reflect.DeepEqual(waits, want) {
		t.Fatalf("jitter saw %v, want doubling bases %v", waits, want)
	}
	if want := []time.Duration{20 * time.Millisecond, 40 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Fatalf("slept %v, want jittered %v", slept, want)
	}
}

// Dispatch with an empty initial fleet uses peers added later.
func TestDispatchAfterJoinFromEmptyFleet(t *testing.T) {
	d := New(testConfig(nil, &localRunner{}))
	b := &fakeBackend{name: "late"}
	if !d.Add(b) {
		t.Fatal("Add failed")
	}
	jobs := jobsN(8)
	if got := d.Dispatch(context.Background(), jobs); !reflect.DeepEqual(got, wantResults(jobs)) {
		t.Fatal("results diverge")
	}
	if len(b.received()) != len(jobs) {
		t.Fatalf("late peer executed %d jobs, want all %d", len(b.received()), len(jobs))
	}
	if !d.Remove("late") {
		t.Fatal("Remove failed")
	}
	if d.Remove("late") {
		t.Fatal("double Remove succeeded")
	}
	if d.NumPeers() != 0 {
		t.Fatalf("NumPeers = %d after drain, want 0", d.NumPeers())
	}
}
