// Scheduling strategies for the dispatch coordinator: how queued chunks of
// sweep work are placed onto the live backend fleet. Two built-ins ship —
// deterministic hash affinity (cache-friendly, the historical default) and
// least-loaded placement fed by health probes (throughput-friendly on
// heterogeneous fleets) — and both are pure functions of their inputs, so
// placement is reproducible given identical fleet state. Placement decides
// only *where* a chunk executes, never *what* it computes: results merge in
// job order whatever the strategy, so the output contract (byte-identity
// with a single-process run) does not depend on the scheduler.
package dispatch

import (
	"context"
	"fmt"
)

// Load is a backend's self-reported load, obtained through a health probe
// (Prober). Zero values mean idle.
type Load struct {
	// QueueDepth is the number of jobs queued behind the backend's
	// in-flight work (e.g. its async job queue).
	QueueDepth int
	// InFlight is the number of jobs the backend is executing right now,
	// including work submitted by other coordinators.
	InFlight int
}

// Prober is implemented by backends that can report live load (prophetd's
// GET /v1/health). Load-driven schedulers consult it; a probe error marks
// the backend unhealthy for placement preference, but execution and the
// retry/failover ladder proceed normally — health only steers, it never
// gates correctness.
type Prober interface {
	Probe(ctx context.Context) (Load, error)
}

// View is the scheduler's snapshot of one live backend at assignment time.
type View struct {
	// Name identifies the backend (typically its URL).
	Name string
	// InFlight counts chunks this dispatcher currently has executing on
	// the backend, across all concurrent Dispatch calls.
	InFlight int
	// Free is the backend's remaining concurrency budget
	// (Config.MaxInFlight minus InFlight); a scheduler must not assign
	// more than Free chunks to the backend in one round.
	Free int
	// Load is the backend's last health probe, nil when unknown (the
	// backend is not a Prober, or no probe has run).
	Load *Load
	// Healthy is false when the last probe failed or reported an
	// incompatible engine. Unprobed backends are healthy.
	Healthy bool
}

// ChunkInfo describes one queued chunk to a scheduler.
type ChunkInfo struct {
	// Key is the shard key of the chunk's first job.
	Key string
	// Owner is the backend name the chunk has hash affinity for; empty
	// when the strategy is purely load-driven.
	Owner string
	// Jobs is the chunk's job count.
	Jobs int
}

// Scheduler decides which live backend executes each queued chunk. The
// dispatcher consults it every time capacity frees up or the fleet
// changes, so strategies see membership churn as it happens.
// Implementations must be stateless and deterministic: identical inputs
// must produce identical assignments.
type Scheduler interface {
	// Name identifies the strategy ("hash", "least-loaded").
	Name() string
	// UsesLoad reports whether the strategy wants health probes; the
	// dispatcher only probes backends when it does.
	UsesLoad() bool
	// Affinity returns the preferred backend ordinal for a shard key over
	// a ring of n live backends, or -1 when placement is purely
	// load-driven. A strategy must answer uniformly: -1 for every key, or
	// a valid ordinal for every key — the dispatcher groups jobs into
	// chunks accordingly before any assignment happens.
	Affinity(key string, n int) int
	// Assign maps queued chunks onto live backends for one round: the
	// returned slice holds, per chunk, the index into views of the backend
	// that should run it, or -1 to leave the chunk queued for a later
	// round (e.g. every backend is at capacity). views is never empty.
	Assign(chunks []ChunkInfo, views []View) []int
}

// Schedulers lists the built-in strategy names accepted by SchedulerByName.
func Schedulers() []string { return []string{"hash", "least-loaded"} }

// SchedulerByName resolves a strategy by name; "" means the default
// (hash). Unknown names are an error listing the valid choices.
func SchedulerByName(name string) (Scheduler, error) {
	switch name {
	case "", "hash":
		return Hash(), nil
	case "least-loaded", "least_loaded":
		return LeastLoaded(), nil
	}
	return nil, fmt.Errorf("dispatch: unknown scheduler %q (choose from %v)", name, Schedulers())
}

// Hash returns the deterministic hash-affinity strategy: each chunk's
// shard key picks its owner backend (FNV-1a over the live ring), so a
// fixed fleet always places a cell on the same worker and that worker's
// baseline/trace caches stay hot for it. Idle backends steal queued
// straggler chunks from the tail of the queue — affinity is a preference,
// not a fence — and chunks whose owner left the fleet are rehashed over
// the survivors.
func Hash() Scheduler { return hashSched{} }

type hashSched struct{}

func (hashSched) Name() string   { return "hash" }
func (hashSched) UsesLoad() bool { return false }
func (hashSched) Affinity(key string, n int) int {
	return int(fnv64a(key) % uint64(n))
}

func (hashSched) Assign(chunks []ChunkInfo, views []View) []int {
	out := make([]int, len(chunks))
	free := make([]int, len(views))
	granted := make([]bool, len(views))
	byName := make(map[string]int, len(views))
	for i, v := range views {
		byName[v.Name] = i
		free[i] = v.Free
	}
	// Pass 1: owners take their own chunks, capacity permitting. A chunk
	// whose owner is gone rehashes its key over the current fleet.
	for k, c := range chunks {
		out[k] = -1
		owner, ok := byName[c.Owner]
		if !ok {
			owner = int(fnv64a(c.Key) % uint64(len(views)))
		}
		if free[owner] > 0 {
			out[k] = owner
			free[owner]--
			granted[owner] = true
		}
	}
	// Pass 2: work stealing. A backend with nothing running and nothing
	// granted this round is a wasted worker while stragglers queue; it
	// takes the last still-queued chunk (the one farthest from its owner's
	// own head of queue), one per round so affinity recovers next round.
	for i := range views {
		if views[i].InFlight > 0 || granted[i] || free[i] <= 0 {
			continue
		}
		for k := len(chunks) - 1; k >= 0; k-- {
			if out[k] == -1 {
				out[k] = i
				free[i]--
				granted[i] = true
				break
			}
		}
	}
	return out
}

// unhealthyPenalty pushes probe-failed backends behind every healthy one
// without excluding them: if only unhealthy capacity remains, work still
// flows (the batch-level retry/failover ladder owns correctness).
const unhealthyPenalty = 1 << 20

// LeastLoaded returns the load-driven strategy: each chunk goes to the
// backend with the lowest combined load — chunks this dispatcher already
// has in flight there, plus the backend's own probed queue depth and
// in-flight jobs (which count work submitted by other coordinators).
// Unprobed backends score on local in-flight alone; unhealthy ones are
// used only when no healthy backend has capacity. Ties break toward the
// earliest-joined backend, keeping assignment deterministic for a fixed
// fleet state.
func LeastLoaded() Scheduler { return leastLoadedSched{} }

type leastLoadedSched struct{}

func (leastLoadedSched) Name() string             { return "least-loaded" }
func (leastLoadedSched) UsesLoad() bool           { return true }
func (leastLoadedSched) Affinity(string, int) int { return -1 }

func (leastLoadedSched) Assign(chunks []ChunkInfo, views []View) []int {
	out := make([]int, len(chunks))
	free := make([]int, len(views))
	score := make([]int, len(views))
	for i, v := range views {
		free[i] = v.Free
		score[i] = v.InFlight
		if v.Load != nil {
			score[i] += v.Load.QueueDepth + v.Load.InFlight
		}
		if !v.Healthy {
			score[i] += unhealthyPenalty
		}
	}
	for k := range chunks {
		best := -1
		for i := range views {
			if free[i] <= 0 {
				continue
			}
			if best == -1 || score[i] < score[best] {
				best = i
			}
		}
		out[k] = best
		if best == -1 {
			continue // every backend at capacity; chunk stays queued
		}
		free[best]--
		score[best]++
	}
	return out
}
