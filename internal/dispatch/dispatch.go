// Package dispatch implements a work-queue coordinator that fans sweep work
// out across a fleet of backends: jobs are grouped into bounded chunks,
// placed onto live backends by a pluggable Scheduler (deterministic hash
// affinity, or least-loaded fed by health probes), retried with jittered
// exponential backoff on backend failure, and failed over to an infallible
// local runner when a backend stays down — all while preserving the
// caller's job order, so the merged result is byte-identical to a
// single-backend run of the same deterministic jobs.
//
// Fleet membership is dynamic: Add and Remove join and drain backends while
// dispatches are in flight. A removed backend stops receiving chunks at the
// next grant round and its in-flight retries are abandoned to local
// failover, so no job is ever lost or duplicated by churn. DispatchFunc
// additionally streams results as chunks complete, for callers that render
// a sweep progressively instead of waiting for the full merge.
//
// The package is generic over job and result types and knows nothing about
// HTTP or simulation: the prophet package instantiates it with
// (prophet.Job, prophet.Result) over remote prophetd backends, and tests
// drive it with plain values. A batch is all-or-nothing: a backend either
// returns exactly one result per job or the whole batch is retried and
// eventually re-run locally, so jobs are never lost or duplicated.
package dispatch

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Backend executes batches of jobs remotely (or anywhere else). Execute
// must return exactly one result per job, in job order; any error (or a
// length mismatch) marks the whole batch as failed and triggers retry and
// eventually failover. Execute must be safe for concurrent use: one
// dispatch may issue several chunks to the same backend at once. A backend
// that also implements Prober reports live load to load-driven schedulers.
type Backend[J, R any] interface {
	// Name identifies the backend in errors and logs (typically its URL).
	Name() string
	// Execute runs the batch and returns one result per job, in order.
	Execute(ctx context.Context, jobs []J) ([]R, error)
}

// Config assembles a Dispatcher.
type Config[J, R any] struct {
	// Backends is the initial fleet. Empty means every job runs locally
	// until peers join via Add.
	Backends []Backend[J, R]
	// Local runs a batch in process, returning one result per job, in
	// order. It is the failover target and must not fail (job-level errors
	// belong inside R). Required.
	Local func(ctx context.Context, jobs []J) []R
	// Key returns the job's shard key; under an affinity scheduler, equal
	// keys always land on the same backend (for a fixed fleet). Required.
	Key func(J) string
	// Pin reports jobs that must run locally regardless of the fleet (e.g.
	// workloads referencing local files a remote cannot read). Optional.
	Pin func(J) bool
	// Scheduler places queued chunks onto live backends (default Hash).
	Scheduler Scheduler
	// Retries is the number of attempts per batch per backend before
	// failing over (default 2 — one try plus one retry).
	Retries int
	// Backoff is the base delay before the first retry, doubling per
	// attempt with full jitter (default 25ms).
	Backoff time.Duration
	// MaxBatch caps jobs per Execute call; larger shards are split into
	// consecutive chunks (0 = unlimited).
	MaxBatch int
	// MaxInFlight caps the chunks a single backend executes concurrently,
	// across all Dispatch calls (default 4).
	MaxInFlight int
	// ProbeTimeout bounds each health probe issued for a load-driven
	// scheduler (default 1s).
	ProbeTimeout time.Duration
	// CacheGet consults a shared result tier (e.g. a durable result store)
	// before dispatch; a hit answers the job without touching backends or
	// the local runner. Optional.
	CacheGet func(J) (R, bool)
	// CachePut records results computed by remote backends into the shared
	// tier, so a coordinator's store accumulates the whole fleet's work.
	// Results from the local runner are not passed through it — the local
	// runner is the caller's own engine, which writes through on its own.
	// Optional.
	CachePut func(J, R)
	// Logf receives operational warnings (probe failures, short local
	// returns). Optional; nil discards them.
	Logf func(format string, args ...any)

	// sleep overrides the inter-retry wait in tests.
	sleep func(ctx context.Context, d time.Duration)
	// jitter overrides retry backoff jitter in tests.
	jitter func(d time.Duration) time.Duration
}

// Stats is a point-in-time snapshot of dispatcher activity.
type Stats struct {
	// Remote counts jobs completed by remote backends.
	Remote int64
	// Local counts jobs completed by the local runner: pinned jobs,
	// no-backend dispatches, and failovers.
	Local int64
	// Retries counts batch retry attempts (not jobs).
	Retries int64
	// Failovers counts jobs re-run locally after a backend's retries were
	// exhausted (or abandoned by cancellation or peer removal).
	Failovers int64
	// Cached counts jobs answered by CacheGet without any execution.
	Cached int64
	// ShortLocal counts result slots the local runner left unfilled by
	// returning fewer results than jobs — merged zeros that would
	// otherwise pass silently.
	ShortLocal int64
	// Stolen counts chunks executed by a backend other than their hash
	// owner (work stealing, or rehash after the owner left the fleet).
	Stolen int64
}

// Dispatcher coordinates job lists over a dynamic backend fleet. It is
// safe for concurrent use; each Dispatch call merges its own results while
// sharing the fleet, its capacity accounting, and the counters.
type Dispatcher[J, R any] struct {
	cfg Config[J, R]

	mu    sync.Mutex
	cond  *sync.Cond
	peers []*peer[J, R] // live fleet, in join order

	remote, local, retries, failovers, cached, shortLocal, stolen atomic.Int64
}

// peer wraps a live backend with the coordinator's accounting: chunks in
// flight (capacity), the drain flag, and the last health probe.
type peer[J, R any] struct {
	b        Backend[J, R]
	inflight atomic.Int64
	gone     atomic.Bool          // set by Remove: abandon retries, fail over
	load     atomic.Pointer[Load] // last successful probe, nil when unknown
	sick     atomic.Bool          // last probe failed
}

// New validates cfg and builds a Dispatcher. Local and Key are required.
func New[J, R any](cfg Config[J, R]) *Dispatcher[J, R] {
	if cfg.Local == nil {
		panic("dispatch: Config.Local is required")
	}
	if cfg.Key == nil {
		panic("dispatch: Config.Key is required")
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = Hash()
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
	if cfg.jitter == nil {
		cfg.jitter = fullJitter
	}
	d := &Dispatcher[J, R]{cfg: cfg}
	d.cond = sync.NewCond(&d.mu)
	for _, b := range cfg.Backends {
		d.peers = append(d.peers, &peer[J, R]{b: b})
	}
	return d
}

// Stats reports cumulative dispatcher counters.
func (d *Dispatcher[J, R]) Stats() Stats {
	return Stats{
		Remote:     d.remote.Load(),
		Local:      d.local.Load(),
		Retries:    d.retries.Load(),
		Failovers:  d.failovers.Load(),
		Cached:     d.cached.Load(),
		ShortLocal: d.shortLocal.Load(),
		Stolen:     d.stolen.Load(),
	}
}

// SchedulerName reports the placement strategy in use.
func (d *Dispatcher[J, R]) SchedulerName() string { return d.cfg.Scheduler.Name() }

// Add joins a backend to the live fleet, effective from the next grant
// round of every in-flight dispatch. It reports false (and does nothing)
// when a backend with the same name is already present.
func (d *Dispatcher[J, R]) Add(b Backend[J, R]) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.peers {
		if p.b.Name() == b.Name() {
			return false
		}
	}
	d.peers = append(d.peers, &peer[J, R]{b: b})
	d.cond.Broadcast() // idle dispatches may have work for the newcomer
	return true
}

// Remove drains the named backend: it stops receiving chunks immediately,
// and chunks it is still retrying abandon the backend and fail over to the
// local runner, so no job is lost or duplicated. It reports false when the
// backend is not in the fleet.
func (d *Dispatcher[J, R]) Remove(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, p := range d.peers {
		if p.b.Name() == name {
			p.gone.Store(true)
			d.peers = append(d.peers[:i], d.peers[i+1:]...)
			d.cond.Broadcast()
			return true
		}
	}
	return false
}

// Peers lists the live fleet's backend names in join order.
func (d *Dispatcher[J, R]) Peers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.peers))
	for i, p := range d.peers {
		out[i] = p.b.Name()
	}
	return out
}

// NumPeers reports the live fleet size.
func (d *Dispatcher[J, R]) NumPeers() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.peers)
}

// chunk is one schedulable unit of work: a bounded, ascending index list
// into the dispatch's job slice.
type chunk struct {
	idx   []int
	key   string // shard key of the first job
	owner string // hash-affinity backend name; "" under load-driven placement
}

// runState is the per-Dispatch bookkeeping shared by the grant loop and
// its chunk goroutines. pending and active are guarded by Dispatcher.mu.
type runState[J, R any] struct {
	jobs    []J
	out     []R
	pending []chunk
	active  int

	emitMu sync.Mutex
	emitFn func(i int, r R)
}

// emit streams the results at idx to the caller's sink, serialized so
// concurrent chunk completions never interleave rows.
func (r *runState[J, R]) emit(idx []int) {
	if r.emitFn == nil {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	for _, i := range idx {
		r.emitFn(i, r.out[i])
	}
}

// Dispatch distributes jobs over the live fleet, executes the chunks
// concurrently as the scheduler grants capacity, and returns one result
// per job in the original job order. Backend failures degrade to the local
// runner; Dispatch itself never fails. Cancelling ctx short-circuits
// retries and grants — outstanding chunks fall through to the local
// runner, which is expected to surface the context error in its per-job
// results.
//
// With CacheGet configured, every job is offered to the shared result tier
// first: hits are merged straight into the output and only the remainder
// is scheduled, so a warm cache dispatches nothing at all.
func (d *Dispatcher[J, R]) Dispatch(ctx context.Context, jobs []J) []R {
	return d.dispatch(ctx, jobs, nil)
}

// DispatchFunc is Dispatch with incremental delivery: emit is called once
// per job — identified by its index into jobs — as results become
// available (cache hits first, then chunk by chunk as execution
// completes). Calls to emit are serialized but arrive in chunk-completion
// order, not job order; callers that need ordered output merge by index.
// The fully merged slice is still returned, identical to Dispatch's.
func (d *Dispatcher[J, R]) DispatchFunc(ctx context.Context, jobs []J, emit func(i int, r R)) []R {
	return d.dispatch(ctx, jobs, emit)
}

func (d *Dispatcher[J, R]) dispatch(ctx context.Context, jobs []J, emit func(i int, r R)) []R {
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	run := &runState[J, R]{jobs: jobs, out: out, emitFn: emit}

	// pending lists the job indexes still needing execution; nil means all.
	var pending []int
	if d.cfg.CacheGet != nil {
		pending = make([]int, 0, len(jobs))
		var hits []int
		for i, j := range jobs {
			if r, ok := d.cfg.CacheGet(j); ok {
				out[i] = r
				hits = append(hits, i)
				continue
			}
			pending = append(pending, i)
		}
		d.cached.Add(int64(len(hits)))
		run.emit(hits)
		if len(pending) == 0 {
			return out
		}
	}

	d.mu.Lock()
	fleet := append([]*peer[J, R](nil), d.peers...)
	d.mu.Unlock()

	if len(fleet) == 0 {
		if emit == nil {
			d.runLocal(ctx, jobs, pending, out)
			return out
		}
		// Streaming without a fleet: run chunk by chunk so the caller
		// still sees progressive results.
		if pending == nil {
			pending = allIndexes(len(jobs))
		}
		for _, c := range chunkIndexes(pending, d.cfg.MaxBatch) {
			d.runLocal(ctx, jobs, c, out)
			run.emit(c)
		}
		return out
	}

	// Split off pinned jobs, then group the remainder into chunks the
	// scheduler will place. Index lists stay in ascending job order, so
	// each chunk preserves the caller's relative ordering.
	var remote, pinned []int
	assign := func(i int) {
		if d.cfg.Pin != nil && d.cfg.Pin(jobs[i]) {
			pinned = append(pinned, i)
			return
		}
		remote = append(remote, i)
	}
	if pending == nil {
		for i := range jobs {
			assign(i)
		}
	} else {
		for _, i := range pending {
			assign(i)
		}
	}

	if d.cfg.Scheduler.UsesLoad() && len(remote) > 0 {
		d.probe(ctx, fleet)
	}
	run.pending = d.buildChunks(jobs, remote, fleet)

	if len(pinned) > 0 {
		// Pinned work streams at the same granularity as remote shards:
		// chunked by MaxBatch, executed sequentially off the grant loop.
		run.active++
		go func() {
			for _, c := range chunkIndexes(pinned, d.cfg.MaxBatch) {
				d.runLocal(ctx, jobs, c, out)
				run.emit(c)
			}
			d.mu.Lock()
			run.active--
			d.cond.Broadcast()
			d.mu.Unlock()
		}()
	}

	// The grant loop: place pending chunks whenever capacity frees up or
	// the fleet changes, wait otherwise, finish when everything has run.
	// Cancellation must also wake the loop so queued chunks can fail over.
	stop := context.AfterFunc(ctx, func() {
		d.mu.Lock()
		d.cond.Broadcast()
		d.mu.Unlock()
	})
	defer stop()
	d.mu.Lock()
	for {
		granted := d.grantLocked(ctx, run)
		if len(run.pending) == 0 && run.active == 0 {
			break
		}
		if len(run.pending) > 0 && granted == 0 && run.active == 0 && d.idleLocked() {
			// No grant, nothing of ours running, fleet fully idle: no
			// future broadcast would unblock us (a scheduler parked every
			// chunk on an idle fleet). Fail the remainder over instead of
			// deadlocking.
			d.failoverAllLocked(ctx, run)
			continue
		}
		d.cond.Wait()
	}
	d.mu.Unlock()
	return out
}

// buildChunks groups the remote job indexes into schedulable chunks. Under
// an affinity scheduler, jobs group by their key's owner backend and chunk
// by MaxBatch, reproducing the deterministic shard map for a fixed fleet.
// Under load-driven placement there is no owner: jobs split into
// consecutive chunks sized to give every backend a few grants to balance.
func (d *Dispatcher[J, R]) buildChunks(jobs []J, remote []int, fleet []*peer[J, R]) []chunk {
	if len(remote) == 0 {
		return nil
	}
	n := len(fleet)
	if d.cfg.Scheduler.Affinity(d.cfg.Key(jobs[remote[0]]), n) < 0 {
		size := d.cfg.MaxBatch
		if size <= 0 {
			// Aim for ~2 chunks per backend so least-loaded has slack to
			// shift work toward faster machines mid-sweep.
			size = (len(remote) + 2*n - 1) / (2 * n)
			if size < 1 {
				size = 1
			}
		}
		var chunks []chunk
		for _, c := range chunkIndexes(remote, size) {
			chunks = append(chunks, chunk{idx: c, key: d.cfg.Key(jobs[c[0]])})
		}
		return chunks
	}
	groups := make([][]int, n)
	for _, i := range remote {
		s := d.cfg.Scheduler.Affinity(d.cfg.Key(jobs[i]), n)
		groups[s] = append(groups[s], i)
	}
	var chunks []chunk
	for s, g := range groups {
		for _, c := range chunkIndexes(g, d.cfg.MaxBatch) {
			chunks = append(chunks, chunk{idx: c, key: d.cfg.Key(jobs[c[0]]), owner: fleet[s].b.Name()})
		}
	}
	return chunks
}

// grantLocked runs one scheduling round under d.mu: snapshot the live
// fleet, ask the scheduler to place the run's pending chunks, and spawn a
// goroutine per grant. Returns the number of chunks started (including
// failovers). A cancelled context or an empty fleet fails everything over.
func (d *Dispatcher[J, R]) grantLocked(ctx context.Context, run *runState[J, R]) int {
	if len(run.pending) == 0 {
		return 0
	}
	if ctx.Err() != nil || len(d.peers) == 0 {
		return d.failoverAllLocked(ctx, run)
	}
	views := make([]View, len(d.peers))
	fleet := append([]*peer[J, R](nil), d.peers...)
	for i, p := range fleet {
		inf := int(p.inflight.Load())
		free := d.cfg.MaxInFlight - inf
		if free < 0 {
			free = 0
		}
		views[i] = View{
			Name:     p.b.Name(),
			InFlight: inf,
			Free:     free,
			Load:     p.load.Load(),
			Healthy:  !p.sick.Load(),
		}
	}
	infos := make([]ChunkInfo, len(run.pending))
	for i, c := range run.pending {
		infos[i] = ChunkInfo{Key: c.key, Owner: c.owner, Jobs: len(c.idx)}
	}
	grants := d.cfg.Scheduler.Assign(infos, views)
	started := 0
	for k := len(grants) - 1; k >= 0; k-- { // high→low so removal keeps indexes valid
		if k >= len(run.pending) {
			continue // defensive: scheduler returned too many grants
		}
		v := grants[k]
		if v < 0 || v >= len(fleet) {
			continue
		}
		p := fleet[v]
		c := run.pending[k]
		run.pending = append(run.pending[:k], run.pending[k+1:]...)
		if c.owner != "" && c.owner != p.b.Name() {
			d.stolen.Add(1)
		}
		p.inflight.Add(1)
		run.active++
		started++
		go d.runChunk(ctx, run, p, c)
	}
	return started
}

// failoverAllLocked sends every pending chunk to the local runner.
func (d *Dispatcher[J, R]) failoverAllLocked(ctx context.Context, run *runState[J, R]) int {
	started := len(run.pending)
	for _, c := range run.pending {
		run.active++
		go func(c chunk) {
			d.failovers.Add(int64(len(c.idx)))
			d.runLocal(ctx, run.jobs, c.idx, run.out)
			run.emit(c.idx)
			d.mu.Lock()
			run.active--
			d.cond.Broadcast()
			d.mu.Unlock()
		}(c)
	}
	run.pending = nil
	return started
}

// idleLocked reports whether no chunk is in flight anywhere on the fleet.
func (d *Dispatcher[J, R]) idleLocked() bool {
	for _, p := range d.peers {
		if p.inflight.Load() > 0 {
			return false
		}
	}
	return true
}

// runChunk executes one granted chunk, releases the backend's capacity
// slot, and wakes every grant loop waiting for it.
func (d *Dispatcher[J, R]) runChunk(ctx context.Context, run *runState[J, R], p *peer[J, R], c chunk) {
	d.runBatch(ctx, p, run, c)
	p.inflight.Add(-1)
	d.mu.Lock()
	run.active--
	d.cond.Broadcast()
	d.mu.Unlock()
}

// probe refreshes load views for a load-driven scheduler: every backend
// implementing Prober is probed concurrently within ProbeTimeout. A failed
// probe marks the backend unhealthy (deprioritized, never excluded); a
// missing Prober leaves Load nil and the backend healthy.
func (d *Dispatcher[J, R]) probe(ctx context.Context, fleet []*peer[J, R]) {
	var wg sync.WaitGroup
	for _, p := range fleet {
		pr, ok := p.b.(Prober)
		if !ok {
			continue
		}
		wg.Add(1)
		go func(p *peer[J, R], pr Prober) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, d.cfg.ProbeTimeout)
			defer cancel()
			l, err := pr.Probe(pctx)
			if err != nil {
				p.sick.Store(true)
				p.load.Store(nil)
				d.logf("dispatch: health probe %s: %v", p.b.Name(), err)
				return
			}
			p.sick.Store(false)
			p.load.Store(&l)
		}(p, pr)
	}
	wg.Wait()
}

// runBatch executes one backend chunk with retries, falling back to the
// local runner when every attempt fails, the context is cancelled, or the
// backend is drained from the fleet mid-retry.
func (d *Dispatcher[J, R]) runBatch(ctx context.Context, p *peer[J, R], run *runState[J, R], c chunk) {
	idx := c.idx
	batch := gather(run.jobs, idx)
	backoff := d.cfg.Backoff
	for attempt := 0; attempt < d.cfg.Retries; attempt++ {
		if attempt > 0 {
			d.retries.Add(1)
			d.cfg.sleep(ctx, d.cfg.jitter(backoff))
			backoff *= 2
		}
		if ctx.Err() != nil {
			break // no point retrying a cancelled sweep
		}
		if p.gone.Load() {
			break // backend drained: don't send it anything new
		}
		res, err := p.b.Execute(ctx, batch)
		if err == nil && len(res) != len(batch) {
			err = fmt.Errorf("dispatch: backend %s returned %d results for %d jobs",
				p.b.Name(), len(res), len(batch))
		}
		if err == nil {
			d.remote.Add(int64(len(idx)))
			scatter(run.out, idx, res)
			if d.cfg.CachePut != nil {
				// Persist remote work into the shared tier: this is how a
				// coordinator's store accumulates results computed by the
				// whole fleet.
				for k, i := range idx {
					d.cfg.CachePut(run.jobs[i], res[k])
				}
			}
			run.emit(idx)
			return
		}
	}
	d.failovers.Add(int64(len(idx)))
	d.runLocal(ctx, run.jobs, idx, run.out)
	run.emit(idx)
}

// runLocal executes the jobs at idx (all jobs when idx is nil) through the
// local runner and scatters the results. The local runner is trusted to
// return one result per job; a short return leaves the missing slots at
// their zero value — counted in Stats.ShortLocal and logged, because a
// silent zero in a merged sweep is indistinguishable from a real result.
func (d *Dispatcher[J, R]) runLocal(ctx context.Context, jobs []J, idx []int, out []R) {
	if idx == nil {
		d.local.Add(int64(len(jobs)))
		res := d.cfg.Local(ctx, jobs)
		if len(res) < len(jobs) {
			d.noteShortLocal(len(jobs), len(res))
		}
		copy(out, res)
		return
	}
	d.local.Add(int64(len(idx)))
	res := d.cfg.Local(ctx, gather(jobs, idx))
	if len(res) < len(idx) {
		d.noteShortLocal(len(idx), len(res))
	}
	scatter(out, idx, res)
}

func (d *Dispatcher[J, R]) noteShortLocal(want, got int) {
	d.shortLocal.Add(int64(want - got))
	d.logf("dispatch: local runner returned %d results for %d jobs; %d slots left at zero value",
		got, want, want-got)
}

func (d *Dispatcher[J, R]) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// allIndexes returns [0, n).
func allIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// chunkIndexes splits an ascending index list into consecutive chunks of
// at most size entries (size <= 0 = one chunk).
func chunkIndexes(idx []int, size int) [][]int {
	if len(idx) == 0 {
		return nil
	}
	if size <= 0 || size >= len(idx) {
		return [][]int{idx}
	}
	var out [][]int
	for len(idx) > 0 {
		n := size
		if n > len(idx) {
			n = len(idx)
		}
		out = append(out, idx[:n:n])
		idx = idx[n:]
	}
	return out
}

// gather collects jobs[idx...] preserving idx order.
func gather[J any](jobs []J, idx []int) []J {
	batch := make([]J, len(idx))
	for k, i := range idx {
		batch[k] = jobs[i]
	}
	return batch
}

// scatter writes batch results back to their original positions.
func scatter[R any](out []R, idx []int, res []R) {
	for k, i := range idx {
		if k < len(res) {
			out[i] = res[k]
		}
	}
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// fullJitter spreads a retry delay uniformly over [d/2, d], so a
// coordinator's many concurrent chunks don't hammer a recovering backend
// in lockstep.
func fullJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// fnv64a is the FNV-1a 64-bit hash: deterministic across processes and Go
// versions, so a coordinator fleet agrees on shard placement.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
