// Package dispatch implements horizontal sharding of sweep work across
// multiple backends: jobs are assigned to backends by a deterministic hash
// of a caller-provided shard key, batched per backend to amortize
// round-trips, retried with exponential backoff on backend failure, and
// failed over to an infallible local runner when a backend stays down — all
// while preserving the caller's job order, so the merged result is
// byte-identical to a single-backend run of the same deterministic jobs.
//
// The package is generic over job and result types and knows nothing about
// HTTP or simulation: the prophet package instantiates it with
// (prophet.Job, prophet.Result) over remote prophetd backends, and tests
// drive it with plain values. A batch is all-or-nothing: a backend either
// returns exactly one result per job or the whole batch is retried and
// eventually re-run locally, so jobs are never lost or duplicated.
package dispatch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Backend executes batches of jobs remotely (or anywhere else). Execute
// must return exactly one result per job, in job order; any error (or a
// length mismatch) marks the whole batch as failed and triggers retry and
// eventually failover. Execute must be safe for concurrent use: one
// dispatch may issue several chunks to the same backend at once.
type Backend[J, R any] interface {
	// Name identifies the backend in errors and logs (typically its URL).
	Name() string
	// Execute runs the batch and returns one result per job, in order.
	Execute(ctx context.Context, jobs []J) ([]R, error)
}

// Config assembles a Dispatcher.
type Config[J, R any] struct {
	// Backends is the shard ring. Empty means every job runs locally.
	Backends []Backend[J, R]
	// Local runs a batch in process, returning one result per job, in
	// order. It is the failover target and must not fail (job-level errors
	// belong inside R). Required.
	Local func(ctx context.Context, jobs []J) []R
	// Key returns the job's shard key; equal keys always land on the same
	// backend (for a fixed ring). Required.
	Key func(J) string
	// Pin reports jobs that must run locally regardless of the ring (e.g.
	// workloads referencing local files a remote cannot read). Optional.
	Pin func(J) bool
	// Retries is the number of attempts per batch per backend before
	// failing over (default 2 — one try plus one retry).
	Retries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 25ms).
	Backoff time.Duration
	// MaxBatch caps jobs per Execute call; larger shards are split into
	// consecutive chunks issued concurrently (0 = unlimited).
	MaxBatch int
	// CacheGet consults a shared result tier (e.g. a durable result store)
	// before dispatch; a hit answers the job without touching backends or
	// the local runner. Optional.
	CacheGet func(J) (R, bool)
	// CachePut records results computed by remote backends into the shared
	// tier, so a coordinator's store accumulates the whole fleet's work.
	// Results from the local runner are not passed through it — the local
	// runner is the caller's own engine, which writes through on its own.
	// Optional.
	CachePut func(J, R)

	// sleep overrides the inter-retry wait in tests.
	sleep func(ctx context.Context, d time.Duration)
}

// Stats is a point-in-time snapshot of dispatcher activity.
type Stats struct {
	// Remote counts jobs completed by remote backends.
	Remote int64
	// Local counts jobs completed by the local runner: pinned jobs,
	// no-backend dispatches, and failovers.
	Local int64
	// Retries counts batch retry attempts (not jobs).
	Retries int64
	// Failovers counts jobs re-run locally after a backend's retries were
	// exhausted.
	Failovers int64
	// Cached counts jobs answered by CacheGet without any execution.
	Cached int64
}

// Dispatcher fans job lists out over a fixed backend ring. It is safe for
// concurrent use; each Dispatch call merges its own results.
type Dispatcher[J, R any] struct {
	cfg Config[J, R]

	remote, local, retries, failovers, cached atomic.Int64
}

// New validates cfg and builds a Dispatcher. Local and Key are required.
func New[J, R any](cfg Config[J, R]) *Dispatcher[J, R] {
	if cfg.Local == nil {
		panic("dispatch: Config.Local is required")
	}
	if cfg.Key == nil {
		panic("dispatch: Config.Key is required")
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 2
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
	return &Dispatcher[J, R]{cfg: cfg}
}

// Stats reports cumulative dispatcher counters.
func (d *Dispatcher[J, R]) Stats() Stats {
	return Stats{
		Remote:    d.remote.Load(),
		Local:     d.local.Load(),
		Retries:   d.retries.Load(),
		Failovers: d.failovers.Load(),
		Cached:    d.cached.Load(),
	}
}

// Dispatch shards jobs over the ring, executes the per-backend batches
// concurrently, and returns one result per job in the original job order.
// Backend failures degrade to the local runner; Dispatch itself never
// fails. Cancelling ctx short-circuits retries — outstanding batches fall
// through to the local runner, which is expected to surface the context
// error in its per-job results.
//
// With CacheGet configured, every job is offered to the shared result tier
// first: hits are merged straight into the output and only the remainder
// is sharded, so a warm cache dispatches nothing at all.
func (d *Dispatcher[J, R]) Dispatch(ctx context.Context, jobs []J) []R {
	out := make([]R, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	// pending lists the job indexes still needing execution; nil means all.
	var pending []int
	if d.cfg.CacheGet != nil {
		pending = make([]int, 0, len(jobs))
		for i, j := range jobs {
			if r, ok := d.cfg.CacheGet(j); ok {
				out[i] = r
				continue
			}
			pending = append(pending, i)
		}
		d.cached.Add(int64(len(jobs) - len(pending)))
		if len(pending) == 0 {
			return out
		}
	}
	if len(d.cfg.Backends) == 0 {
		d.runLocal(ctx, jobs, pending, out)
		return out
	}

	// Assignment: hash of the shard key picks the backend; pinned jobs
	// form one extra local batch. Index lists stay in ascending job order,
	// so each batch preserves the caller's relative ordering.
	shards := make([][]int, len(d.cfg.Backends))
	var pinned []int
	assign := func(i int) {
		j := jobs[i]
		if d.cfg.Pin != nil && d.cfg.Pin(j) {
			pinned = append(pinned, i)
			return
		}
		s := int(fnv64a(d.cfg.Key(j)) % uint64(len(d.cfg.Backends)))
		shards[s] = append(shards[s], i)
	}
	if pending == nil {
		for i := range jobs {
			assign(i)
		}
	} else {
		for _, i := range pending {
			assign(i)
		}
	}

	var wg sync.WaitGroup
	for s, idx := range shards {
		b := d.cfg.Backends[s]
		for len(idx) > 0 {
			n := len(idx)
			if d.cfg.MaxBatch > 0 && n > d.cfg.MaxBatch {
				n = d.cfg.MaxBatch
			}
			chunk := idx[:n:n]
			idx = idx[n:]
			wg.Add(1)
			go func() {
				defer wg.Done()
				d.runBatch(ctx, b, jobs, chunk, out)
			}()
		}
	}
	if len(pinned) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.runLocal(ctx, jobs, pinned, out)
		}()
	}
	wg.Wait()
	return out
}

// runBatch executes one backend chunk with retries, falling back to the
// local runner when every attempt fails.
func (d *Dispatcher[J, R]) runBatch(ctx context.Context, b Backend[J, R], jobs []J, idx []int, out []R) {
	batch := gather(jobs, idx)
	backoff := d.cfg.Backoff
	for attempt := 0; attempt < d.cfg.Retries; attempt++ {
		if attempt > 0 {
			d.retries.Add(1)
			d.cfg.sleep(ctx, backoff)
			backoff *= 2
		}
		if ctx.Err() != nil {
			break // no point retrying a cancelled sweep
		}
		res, err := b.Execute(ctx, batch)
		if err == nil && len(res) != len(batch) {
			err = fmt.Errorf("dispatch: backend %s returned %d results for %d jobs",
				b.Name(), len(res), len(batch))
		}
		if err == nil {
			d.remote.Add(int64(len(idx)))
			scatter(out, idx, res)
			if d.cfg.CachePut != nil {
				// Persist remote work into the shared tier: this is how a
				// coordinator's store accumulates results computed by the
				// whole fleet.
				for k, i := range idx {
					d.cfg.CachePut(jobs[i], res[k])
				}
			}
			return
		}
	}
	d.failovers.Add(int64(len(idx)))
	d.runLocal(ctx, jobs, idx, out)
}

// runLocal executes the jobs at idx (all jobs when idx is nil) through the
// local runner and scatters the results. The local runner is trusted to
// return one result per job; a short return leaves the missing slots at
// their zero value rather than panicking mid-merge.
func (d *Dispatcher[J, R]) runLocal(ctx context.Context, jobs []J, idx []int, out []R) {
	if idx == nil {
		d.local.Add(int64(len(jobs)))
		copy(out, d.cfg.Local(ctx, jobs))
		return
	}
	d.local.Add(int64(len(idx)))
	res := d.cfg.Local(ctx, gather(jobs, idx))
	scatter(out, idx, res)
}

// gather collects jobs[idx...] preserving idx order.
func gather[J any](jobs []J, idx []int) []J {
	batch := make([]J, len(idx))
	for k, i := range idx {
		batch[k] = jobs[i]
	}
	return batch
}

// scatter writes batch results back to their original positions.
func scatter[R any](out []R, idx []int, res []R) {
	for k, i := range idx {
		if k < len(res) {
			out[i] = res[k]
		}
	}
}

// sleepCtx waits for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// fnv64a is the FNV-1a 64-bit hash: deterministic across processes and Go
// versions, so a coordinator fleet agrees on shard placement.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
