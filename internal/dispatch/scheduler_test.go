package dispatch

import (
	"reflect"
	"strconv"
	"testing"
)

func TestSchedulerByName(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", "hash"},
		{"hash", "hash"},
		{"least-loaded", "least-loaded"},
		{"least_loaded", "least-loaded"},
	} {
		s, err := SchedulerByName(tc.in)
		if err != nil {
			t.Fatalf("SchedulerByName(%q): %v", tc.in, err)
		}
		if s.Name() != tc.want {
			t.Fatalf("SchedulerByName(%q).Name() = %q, want %q", tc.in, s.Name(), tc.want)
		}
	}
	if _, err := SchedulerByName("round-robin"); err == nil {
		t.Fatal("unknown scheduler name accepted")
	}
	for _, name := range Schedulers() {
		if _, err := SchedulerByName(name); err != nil {
			t.Fatalf("advertised scheduler %q not resolvable: %v", name, err)
		}
	}
}

func views(free ...int) []View {
	out := make([]View, len(free))
	for i, f := range free {
		out[i] = View{Name: "b" + strconv.Itoa(i), Free: f, Healthy: true}
	}
	return out
}

func TestHashAssignOwnersFirst(t *testing.T) {
	v := views(2, 2, 2)
	chunks := []ChunkInfo{
		{Key: "a", Owner: "b1", Jobs: 3},
		{Key: "b", Owner: "b0", Jobs: 3},
		{Key: "c", Owner: "b2", Jobs: 3},
	}
	got := Hash().Assign(chunks, v)
	if want := []int{1, 0, 2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want owners %v", got, want)
	}
}

func TestHashAssignRespectsCapacity(t *testing.T) {
	v := views(1)
	v[0].InFlight = 3
	chunks := []ChunkInfo{
		{Key: "a", Owner: "b0"},
		{Key: "b", Owner: "b0"},
	}
	got := Hash().Assign(chunks, v)
	if want := []int{0, -1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v (second chunk queued)", got, want)
	}
}

// An idle backend with no chunks of its own steals the tail chunk.
func TestHashAssignSteals(t *testing.T) {
	v := views(1, 4) // b0 has one slot; b1 is idle with capacity
	chunks := []ChunkInfo{
		{Key: "a", Owner: "b0"},
		{Key: "b", Owner: "b0"},
		{Key: "c", Owner: "b0"},
	}
	got := Hash().Assign(chunks, v)
	if want := []int{0, -1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v (b1 steals the tail chunk)", got, want)
	}
}

// A busy backend does not steal: stealing is for idle workers only.
func TestHashAssignBusyBackendDoesNotSteal(t *testing.T) {
	v := views(1, 2)
	v[1].InFlight = 2 // b1 already has our chunks running
	chunks := []ChunkInfo{
		{Key: "a", Owner: "b0"},
		{Key: "b", Owner: "b0"},
	}
	got := Hash().Assign(chunks, v)
	if want := []int{0, -1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v (busy b1 must not steal)", got, want)
	}
}

// A chunk whose owner left the fleet is rehashed over the survivors, not
// dropped.
func TestHashAssignRehashesOrphans(t *testing.T) {
	v := views(4, 4)
	chunks := []ChunkInfo{{Key: "k", Owner: "gone-backend"}}
	got := Hash().Assign(chunks, v)
	want := int(fnv64a("k") % 2)
	if got[0] != want {
		t.Fatalf("orphan chunk assigned to %d, want rehash %d", got[0], want)
	}
}

func TestLeastLoadedPrefersIdleBackend(t *testing.T) {
	v := views(4, 4, 4)
	v[0].Load = &Load{QueueDepth: 10, InFlight: 2}
	v[1].Load = &Load{}
	v[2].Load = &Load{QueueDepth: 3}
	chunks := []ChunkInfo{{Key: "a"}, {Key: "b"}, {Key: "c"}}
	got := LeastLoaded().Assign(chunks, v)
	// b1 is idle: it takes the first chunks until its score catches b2.
	if got[0] != 1 {
		t.Fatalf("first chunk to %d, want idle backend 1 (full: %v)", got[0], got)
	}
	for _, g := range got {
		if g == 0 {
			t.Fatalf("deeply queued backend 0 was assigned before lighter peers: %v", got)
		}
	}
}

func TestLeastLoadedAvoidsUnhealthy(t *testing.T) {
	v := views(4, 4)
	v[0].Healthy = false
	chunks := []ChunkInfo{{Key: "a"}, {Key: "b"}}
	got := LeastLoaded().Assign(chunks, v)
	if want := []int{1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v (all to the healthy backend)", got, want)
	}
	// ...but when only unhealthy capacity remains, work still flows.
	v[1].Free = 0
	got = LeastLoaded().Assign(chunks, v)
	if want := []int{0, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v (unhealthy beats queued)", got, want)
	}
}

func TestLeastLoadedAllAtCapacity(t *testing.T) {
	v := views(0, 0)
	got := LeastLoaded().Assign([]ChunkInfo{{Key: "a"}}, v)
	if want := []int{-1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Assign = %v, want %v (chunk stays queued)", got, want)
	}
}

// Both strategies are pure functions: same inputs, same placement.
func TestAssignDeterministic(t *testing.T) {
	v := views(2, 1, 3)
	v[1].Load = &Load{QueueDepth: 5}
	v[2].InFlight = 1
	chunks := []ChunkInfo{
		{Key: "a", Owner: "b2"}, {Key: "b", Owner: "b0"}, {Key: "c", Owner: "b0"},
		{Key: "d", Owner: "b1"}, {Key: "e", Owner: "b2"},
	}
	for _, s := range []Scheduler{Hash(), LeastLoaded()} {
		first := s.Assign(chunks, v)
		for i := 0; i < 10; i++ {
			if got := s.Assign(chunks, v); !reflect.DeepEqual(got, first) {
				t.Fatalf("%s: Assign changed across identical calls: %v then %v", s.Name(), first, got)
			}
		}
	}
}
