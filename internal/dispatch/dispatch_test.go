package dispatch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"
)

// result computes the canonical (deterministic) outcome for a job, so any
// executor — fake backend or local runner — produces identical results and
// equivalence checks mirror the real system's determinism.
func result(j int) string { return "r" + strconv.Itoa(j) }

// fakeBackend records the batches it receives and can be programmed to
// fail its first N Execute calls or to return short results.
type fakeBackend struct {
	name string

	mu       sync.Mutex
	batches  [][]int
	failures int  // fail this many calls before succeeding
	short    bool // return len-1 results
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Execute(ctx context.Context, jobs []int) ([]string, error) {
	f.mu.Lock()
	f.batches = append(f.batches, append([]int(nil), jobs...))
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	short := f.short
	f.mu.Unlock()
	if fail {
		return nil, errors.New(f.name + ": injected failure")
	}
	out := make([]string, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, result(j))
	}
	if short && len(out) > 0 {
		out = out[:len(out)-1]
	}
	return out, nil
}

// received flattens every job the backend has executed, in arrival order.
func (f *fakeBackend) received() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int
	for _, b := range f.batches {
		out = append(out, b...)
	}
	return out
}

// localRunner mimics the in-process evaluator: infallible, records jobs.
type localRunner struct {
	mu   sync.Mutex
	jobs []int
}

func (l *localRunner) run(ctx context.Context, jobs []int) []string {
	l.mu.Lock()
	l.jobs = append(l.jobs, jobs...)
	l.mu.Unlock()
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = result(j)
	}
	return out
}

func testConfig(backends []Backend[int, string], local *localRunner) Config[int, string] {
	return Config[int, string]{
		Backends: backends,
		Local:    local.run,
		Key:      strconv.Itoa,
		Backoff:  time.Nanosecond,
		sleep:    func(context.Context, time.Duration) {},
	}
}

func jobsN(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i * 3 // arbitrary non-identity values
	}
	return out
}

func wantResults(jobs []int) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = result(j)
	}
	return out
}

// The core equivalence: N backends, 1 backend, and no backends all produce
// the same ordered results.
func TestDispatchOrderIdenticalAcrossRingSizes(t *testing.T) {
	jobs := jobsN(40)
	want := wantResults(jobs)
	for _, n := range []int{0, 1, 2, 3, 7} {
		var ring []Backend[int, string]
		for i := 0; i < n; i++ {
			ring = append(ring, &fakeBackend{name: fmt.Sprintf("b%d", i)})
		}
		local := &localRunner{}
		d := New(testConfig(ring, local))
		got := d.Dispatch(context.Background(), jobs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ring of %d: results %v, want %v", n, got, want)
		}
	}
}

// Shard assignment is a pure function of the key: two dispatches send every
// job to the same backend.
func TestShardAssignmentDeterministic(t *testing.T) {
	jobs := jobsN(30)
	mk := func() ([]Backend[int, string], []*fakeBackend) {
		var ring []Backend[int, string]
		var fs []*fakeBackend
		for i := 0; i < 3; i++ {
			f := &fakeBackend{name: fmt.Sprintf("b%d", i)}
			ring = append(ring, f)
			fs = append(fs, f)
		}
		return ring, fs
	}
	ring1, fs1 := mk()
	ring2, fs2 := mk()
	New(testConfig(ring1, &localRunner{})).Dispatch(context.Background(), jobs)
	New(testConfig(ring2, &localRunner{})).Dispatch(context.Background(), jobs)
	for i := range fs1 {
		a, b := fs1[i].received(), fs2[i].received()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("backend %d saw %v then %v across identical dispatches", i, a, b)
		}
		if len(a) == 0 {
			t.Fatalf("backend %d received no jobs; hash not spreading", i)
		}
	}
}

// A backend that stays down fails over to local: results stay correct and
// ordered, each failed job runs locally exactly once, and no other job
// leaks to the local runner.
func TestPersistentFailureFailsOverWithoutLossOrDup(t *testing.T) {
	jobs := jobsN(24)
	good := &fakeBackend{name: "good"}
	bad := &fakeBackend{name: "bad", failures: 1 << 30}
	local := &localRunner{}
	d := New(testConfig([]Backend[int, string]{good, bad}, local))
	got := d.Dispatch(context.Background(), jobs)
	if want := wantResults(jobs); !reflect.DeepEqual(got, want) {
		t.Fatalf("results %v, want %v", got, want)
	}
	// Every job ran exactly once for real: good's successes plus local's.
	ran := map[int]int{}
	for _, j := range good.received() {
		ran[j]++
	}
	local.mu.Lock()
	for _, j := range local.jobs {
		ran[j]++
	}
	localCount := len(local.jobs)
	local.mu.Unlock()
	for _, j := range jobs {
		if ran[j] != 1 {
			t.Fatalf("job %d executed %d times across good+local, want exactly 1", j, ran[j])
		}
	}
	st := d.Stats()
	if st.Failovers != int64(localCount) || st.Failovers == 0 {
		t.Fatalf("Failovers = %d, want %d (>0)", st.Failovers, localCount)
	}
	if st.Remote+st.Local != int64(len(jobs)) {
		t.Fatalf("Remote+Local = %d, want %d", st.Remote+st.Local, len(jobs))
	}
}

// A transient failure is absorbed by a retry without failover.
func TestRetryThenSuccess(t *testing.T) {
	jobs := jobsN(10)
	flaky := &fakeBackend{name: "flaky", failures: 1}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{flaky}, local)
	cfg.Retries = 3
	d := New(cfg)
	got := d.Dispatch(context.Background(), jobs)
	if want := wantResults(jobs); !reflect.DeepEqual(got, want) {
		t.Fatalf("results %v, want %v", got, want)
	}
	st := d.Stats()
	if st.Retries != 1 || st.Failovers != 0 {
		t.Fatalf("Retries=%d Failovers=%d, want 1/0", st.Retries, st.Failovers)
	}
	if st.Local != 0 {
		t.Fatalf("Local=%d, want 0", st.Local)
	}
}

// A backend returning the wrong number of results is a failure, not a
// silent misalignment.
func TestShortResponseFailsOver(t *testing.T) {
	jobs := jobsN(8)
	short := &fakeBackend{name: "short", short: true}
	local := &localRunner{}
	d := New(testConfig([]Backend[int, string]{short}, local))
	got := d.Dispatch(context.Background(), jobs)
	if want := wantResults(jobs); !reflect.DeepEqual(got, want) {
		t.Fatalf("results %v, want %v", got, want)
	}
	if d.Stats().Failovers != int64(len(jobs)) {
		t.Fatalf("Failovers = %d, want %d", d.Stats().Failovers, len(jobs))
	}
}

// MaxBatch splits a shard into bounded chunks that still cover every job.
func TestMaxBatchChunks(t *testing.T) {
	jobs := jobsN(10)
	b := &fakeBackend{name: "b"}
	cfg := testConfig([]Backend[int, string]{b}, &localRunner{})
	cfg.MaxBatch = 3
	d := New(cfg)
	got := d.Dispatch(context.Background(), jobs)
	if want := wantResults(jobs); !reflect.DeepEqual(got, want) {
		t.Fatalf("results %v, want %v", got, want)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.batches) != 4 { // 3+3+3+1
		t.Fatalf("got %d batches, want 4", len(b.batches))
	}
	seen := map[int]bool{}
	for _, batch := range b.batches {
		if len(batch) > 3 {
			t.Fatalf("batch of %d exceeds MaxBatch 3", len(batch))
		}
		for _, j := range batch {
			if seen[j] {
				t.Fatalf("job %d appears in two batches", j)
			}
			seen[j] = true
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("batches cover %d jobs, want %d", len(seen), len(jobs))
	}
}

// Pinned jobs bypass the ring entirely.
func TestPinnedJobsRunLocal(t *testing.T) {
	jobs := jobsN(12)
	b := &fakeBackend{name: "b"}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{b}, local)
	cfg.Pin = func(j int) bool { return j%2 == 0 }
	d := New(cfg)
	got := d.Dispatch(context.Background(), jobs)
	if want := wantResults(jobs); !reflect.DeepEqual(got, want) {
		t.Fatalf("results %v, want %v", got, want)
	}
	for _, j := range b.received() {
		if j%2 == 0 {
			t.Fatalf("pinned job %d reached the backend", j)
		}
	}
	local.mu.Lock()
	defer local.mu.Unlock()
	for _, j := range local.jobs {
		if j%2 != 0 {
			t.Fatalf("unpinned job %d ran locally", j)
		}
	}
}

// A cancelled context stops retrying and degrades to the local runner,
// which owns surfacing the context error per job.
func TestCancelledContextSkipsRetries(t *testing.T) {
	jobs := jobsN(6)
	bad := &fakeBackend{name: "bad", failures: 1 << 30}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{bad}, local)
	cfg.Retries = 50
	d := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d.Dispatch(ctx, jobs)
	bad.mu.Lock()
	calls := len(bad.batches)
	bad.mu.Unlock()
	if calls != 0 {
		t.Fatalf("cancelled dispatch still issued %d backend calls", calls)
	}
	local.mu.Lock()
	defer local.mu.Unlock()
	if len(local.jobs) != len(jobs) {
		t.Fatalf("local ran %d jobs, want all %d", len(local.jobs), len(jobs))
	}
}

func TestEmptyDispatch(t *testing.T) {
	d := New(testConfig(nil, &localRunner{}))
	if got := d.Dispatch(context.Background(), nil); len(got) != 0 {
		t.Fatalf("empty dispatch returned %v", got)
	}
}

func TestMissingLocalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without Local should panic")
		}
	}()
	New(Config[int, string]{Key: strconv.Itoa})
}

func TestMissingKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without Key should panic")
		}
	}()
	New(Config[int, string]{Local: (&localRunner{}).run})
}

// cacheOf builds CacheGet/CachePut hooks over a plain map guarded by a
// mutex, mimicking the durable result store.
type fakeCache struct {
	mu   sync.Mutex
	vals map[int]string
	puts []int
}

func newFakeCache(seed ...int) *fakeCache {
	c := &fakeCache{vals: map[int]string{}}
	for _, j := range seed {
		c.vals[j] = result(j)
	}
	return c
}

func (c *fakeCache) get(j int) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.vals[j]
	return v, ok
}

func (c *fakeCache) put(j int, r string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.vals[j] = r
	c.puts = append(c.puts, j)
}

func TestCacheGetBypassesBackendsAndLocal(t *testing.T) {
	jobs := jobsN(8)
	cache := newFakeCache(jobs[0], jobs[3], jobs[7])
	b := &fakeBackend{name: "b"}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{b}, local)
	cfg.CacheGet = cache.get
	d := New(cfg)

	out := d.Dispatch(context.Background(), jobs)
	if !reflect.DeepEqual(out, wantResults(jobs)) {
		t.Fatalf("out = %v, want %v (cache hits merged in job order)", out, wantResults(jobs))
	}
	for _, j := range b.received() {
		if _, ok := cache.get(j); ok {
			t.Fatalf("cached job %d was dispatched to a backend", j)
		}
	}
	if len(local.jobs) != 0 {
		t.Fatalf("local ran %v despite healthy backend", local.jobs)
	}
	st := d.Stats()
	if st.Cached != 3 || st.Remote != 5 {
		t.Fatalf("stats %+v, want cached=3 remote=5", st)
	}
}

func TestAllCachedDispatchesNothing(t *testing.T) {
	jobs := jobsN(5)
	cache := newFakeCache(jobs...)
	b := &fakeBackend{name: "b"}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{b}, local)
	cfg.CacheGet = cache.get
	d := New(cfg)

	out := d.Dispatch(context.Background(), jobs)
	if !reflect.DeepEqual(out, wantResults(jobs)) {
		t.Fatalf("out = %v, want %v", out, wantResults(jobs))
	}
	if got := b.received(); len(got) != 0 {
		t.Fatalf("backend executed %v on a fully warm cache", got)
	}
	if len(local.jobs) != 0 {
		t.Fatalf("local executed %v on a fully warm cache", local.jobs)
	}
	if st := d.Stats(); st.Cached != 5 || st.Remote != 0 || st.Local != 0 {
		t.Fatalf("stats %+v, want cached=5 and no execution", st)
	}
}

func TestCachePutRecordsRemoteResultsOnly(t *testing.T) {
	jobs := jobsN(6)
	cache := newFakeCache()
	good := &fakeBackend{name: "good"}
	bad := &fakeBackend{name: "bad", failures: 99} // fails over to local
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{good, bad}, local)
	cfg.CacheGet = cache.get
	cfg.CachePut = cache.put
	d := New(cfg)

	out := d.Dispatch(context.Background(), jobs)
	if !reflect.DeepEqual(out, wantResults(jobs)) {
		t.Fatalf("out = %v, want %v", out, wantResults(jobs))
	}
	// Every remote-computed job is persisted, with the value the backend
	// returned; failed-over jobs went through the local runner, whose own
	// engine is responsible for write-through.
	remote := good.received()
	cache.mu.Lock()
	puts := append([]int(nil), cache.puts...)
	cache.mu.Unlock()
	if len(puts) != len(remote) {
		t.Fatalf("CachePut saw %v, want exactly the remote jobs %v", puts, remote)
	}
	for _, j := range remote {
		if v, ok := cache.get(j); !ok || v != result(j) {
			t.Fatalf("remote job %d not persisted (got %q, %v)", j, v, ok)
		}
	}
	for _, j := range local.jobs {
		for _, p := range puts {
			if p == j {
				t.Fatalf("failed-over job %d was double-persisted by the dispatcher", j)
			}
		}
	}
}

func TestCachedPinnedJobsStillSkipExecution(t *testing.T) {
	jobs := jobsN(4)
	cache := newFakeCache(jobs[1]) // jobs[1] is both pinned and cached
	b := &fakeBackend{name: "b"}
	local := &localRunner{}
	cfg := testConfig([]Backend[int, string]{b}, local)
	cfg.CacheGet = cache.get
	cfg.Pin = func(j int) bool { return j == jobs[1] }
	d := New(cfg)

	out := d.Dispatch(context.Background(), jobs)
	if !reflect.DeepEqual(out, wantResults(jobs)) {
		t.Fatalf("out = %v, want %v", out, wantResults(jobs))
	}
	if len(local.jobs) != 0 {
		t.Fatalf("local ran %v; the only pinned job was cached", local.jobs)
	}
}
