package sim

import (
	"sync"

	"prophet/internal/cache"
	"prophet/internal/cpu"
	"prophet/internal/dram"
	"prophet/internal/mem"
	"prophet/internal/pmu"
	"prophet/internal/prefetch"
	"prophet/internal/temporal"
)

// SWPrefetcher is the hook for software prefetching schemes (RPG2): it sees
// every demand access at issue and returns lines to prefetch into the L2,
// mirroring software prefetch instructions placed next to the load. The
// returned slice may alias a scratch buffer owned by the prefetcher; it is
// valid only until the next OnDemand call.
type SWPrefetcher interface {
	OnDemand(pc mem.Addr, line mem.Line) []mem.Line
}

// DemandObserver receives every demand access with its L1/L2 hit outcome.
// RPG2's profiling pass and ad-hoc experiment probes hook in here.
type DemandObserver interface {
	OnDemandAccess(pc mem.Addr, line mem.Line, l1Hit, l2Hit bool)
}

// Stats aggregates one run's outcome.
type Stats struct {
	Core cpu.Stats
	L1   cache.Stats
	L2   cache.Stats
	L3   cache.Stats
	DRAM dram.Stats

	// L2 demand-side accounting (coverage metrics).
	L2DemandAccesses uint64
	L2DemandMisses   uint64

	// Temporal-prefetcher outcome accounting.
	TPIssued  uint64 // prefetches issued into the L2
	TPUseful  uint64 // prefetched lines hit by demand
	TPUseless uint64 // prefetched lines evicted untouched

	// Other prefetch traffic.
	SWIssued   uint64 // software (RPG2) prefetches issued
	L1PFIssued uint64 // L1 prefetcher fills

	// Metadata table state at end of run.
	MetaWays   int
	TableStats temporal.TableStats
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 { return s.Core.IPC() }

// DRAMTraffic returns total DRAM line transfers (Figure 11's metric).
func (s Stats) DRAMTraffic() uint64 { return s.DRAM.Traffic() }

// TPAccuracy returns useful/issued for the temporal prefetcher (Figure 12b).
func (s Stats) TPAccuracy() float64 {
	if s.TPIssued == 0 {
		return 0
	}
	return float64(s.TPUseful) / float64(s.TPIssued)
}

// System is the assembled machine. It implements cpu.Memory.
type System struct {
	cfg  Config
	l1   *cache.Cache
	l2   *cache.Cache
	l3   *cache.Cache
	dram *dram.DRAM
	l1pf prefetch.L1Prefetcher

	engine   temporal.Engine
	sw       SWPrefetcher
	counters *pmu.Counters
	observer DemandObserver

	st Stats
}

// New assembles a system. engine, sw, counters and observer may each be nil.
func New(cfg Config, engine temporal.Engine, sw SWPrefetcher, counters *pmu.Counters, observer DemandObserver) *System {
	s := &System{
		cfg:      cfg,
		l1:       cache.New(cfg.L1),
		l2:       cache.New(cfg.L2),
		l3:       cache.New(cfg.L3),
		dram:     dram.New(cfg.DRAM),
		l1pf:     cfg.newL1Prefetcher(),
		engine:   engine,
		sw:       sw,
		counters: counters,
		observer: observer,
	}
	s.syncMetaWays(0)
	return s
}

// syncMetaWays keeps the demand-visible LLC in step with the metadata table.
func (s *System) syncMetaWays(now uint64) {
	metaWays := 0
	if s.engine != nil {
		metaWays = s.engine.MetaWays()
	}
	want := s.cfg.L3.Ways - metaWays
	if want < 0 {
		want = 0
	}
	if s.l3.DemandWays() == want {
		return
	}
	for _, ev := range s.l3.SetDemandWays(want) {
		if ev.Dirty {
			s.dram.Write(ev.Line, now)
		}
	}
}

// Access implements cpu.Memory for demand accesses.
func (s *System) Access(a mem.Access, now uint64) (ready uint64, l1Miss bool) {
	line := a.Line()
	write := a.Kind == mem.Store

	// Software prefetch instructions execute alongside the load.
	if s.sw != nil {
		for _, pl := range s.sw.OnDemand(a.PC, line) {
			s.st.SWIssued++
			s.prefetchIntoL2(pl, a.PC, now)
		}
	}

	// Fused L1 scan: the demand access also records the fill slot. The slot
	// survives unless an L1 prefetch fills the set in the meantime, which
	// l1Prefetch reports.
	res, slot := s.l1.AccessFill(line, now, write)
	l1Touched := false

	// Train the L1 prefetcher on the demand stream.
	for _, pl := range s.l1pf.OnAccess(a.PC, line, res.Hit) {
		if s.l1Prefetch(pl, a.PC, now) {
			l1Touched = true
		}
	}

	if res.Hit {
		if s.observer != nil {
			s.observer.OnDemandAccess(a.PC, line, true, false)
		}
		r := now + s.cfg.L1.HitLatency
		if res.Ready > r {
			r = res.Ready
		}
		return r, false
	}

	// L1 miss: walk the hierarchy.
	fillReady, l2Hit := s.demandFromL2(a.PC, line, now+s.cfg.L1.HitLatency)
	if s.observer != nil {
		s.observer.OnDemandAccess(a.PC, line, false, l2Hit)
	}
	// Fill L1; dirty victims write back into the L2. The fused slot applies
	// unless an L1 prefetch touched the cache since the access scan.
	var ev cache.Eviction
	if l1Touched {
		ev = s.l1.Insert(line, now, fillReady, write, false, 0)
	} else {
		ev = s.l1.Fill(slot, line, fillReady, write, false, 0)
	}
	if ev.Valid && ev.Dirty {
		s.writebackToL2(ev.Line, now)
	}
	return fillReady, true
}

// demandFromL2 services a demand L2 access, returning the data-ready cycle.
func (s *System) demandFromL2(pc mem.Addr, line mem.Line, t uint64) (ready uint64, hit bool) {
	s.st.L2DemandAccesses++
	// Fused L2 scan: the demand access also records the fill slot. Between
	// it and the fill only engine prefetches can touch the L2, so the slot
	// stays valid exactly when the engine issued none.
	res, slot := s.l2.AccessFill(line, t, false)
	l2Touched := false

	// Prefetch-outcome feedback: first demand touch of a prefetched line.
	if res.WasPrefetch {
		s.st.TPUseful++
		if s.engine != nil {
			s.engine.PrefetchUseful(res.Trigger, line)
		}
		if s.counters != nil {
			s.counters.RecordUseful(res.Trigger)
		}
	}

	// The temporal prefetcher observes the demand L2 access stream.
	if s.engine != nil {
		targets := s.engine.OnAccess(temporal.AccessEvent{
			PC: pc, Line: line,
			Hit: res.Hit, HitPrefetched: res.WasPrefetch,
			Cycle: t,
		})
		for _, tl := range targets {
			l2Touched = true
			s.prefetchIntoL2(tl, pc, t)
		}
		s.syncMetaWays(t)
	}

	if res.Hit {
		r := t + s.cfg.L2.HitLatency
		if res.Ready > r {
			r = res.Ready
		}
		return r, true
	}

	s.st.L2DemandMisses++
	if s.counters != nil {
		s.counters.RecordL2Miss(pc)
	}
	fillReady := s.fetchFromL3(line, t+s.cfg.L2.HitLatency)
	if l2Touched {
		s.fillL2(line, t, fillReady, false, false, 0)
	} else {
		s.fillL2Slot(slot, line, t, fillReady, false, 0)
	}
	return fillReady, false
}

// fetchFromL3 reads a line from the L3 or DRAM, filling the L3 on a miss.
// The access and the miss fill share one tag scan (cache.AccessFill): the
// LLC is the only level where nothing can touch the cache between the miss
// and its fill, so the fused path is bit-identical to Access+Insert.
func (s *System) fetchFromL3(line mem.Line, t uint64) (ready uint64) {
	res, slot := s.l3.AccessFill(line, t, false)
	if res.Hit {
		r := t + s.cfg.L3.HitLatency
		if res.Ready > r {
			r = res.Ready
		}
		return r
	}
	done := s.dram.Read(line, t+s.cfg.L3.HitLatency)
	if ev := s.l3.Fill(slot, line, done, false, false, 0); ev.Valid && ev.Dirty {
		s.dram.Write(ev.Line, t)
	}
	return done
}

// fillL2 inserts a line into the L2, handling victim writeback and
// prefetch-usefulness accounting for displaced prefetched lines.
func (s *System) fillL2(line mem.Line, now, ready uint64, dirty, isPrefetch bool, trigger mem.Addr) {
	s.l2Evicted(s.l2.Insert(line, now, ready, dirty, isPrefetch, trigger), now)
}

// fillL2Slot is fillL2 completing a miss recorded by an earlier fused L2
// scan (AccessFill/LookupFill), skipping the second tag scan.
func (s *System) fillL2Slot(slot cache.FillSlot, line mem.Line, now, ready uint64, isPrefetch bool, trigger mem.Addr) {
	s.l2Evicted(s.l2.Fill(slot, line, ready, false, isPrefetch, trigger), now)
}

// l2Evicted handles an L2 victim: writeback and prefetch-usefulness
// accounting for displaced prefetched lines.
func (s *System) l2Evicted(ev cache.Eviction, now uint64) {
	if !ev.Valid {
		return
	}
	if ev.Prefetch {
		s.st.TPUseless++
		if s.engine != nil {
			s.engine.PrefetchUseless(ev.Trigger, ev.Line)
		}
	}
	if ev.Dirty {
		s.writebackToL3(ev.Line, now)
	}
}

// writebackToL2 handles a dirty L1 eviction. MarkDirtyFill fuses the hit
// check, the dirty-marking access, and the miss-path fill scan into one tag
// pass; nothing touches the L2 between the scan and the fill.
func (s *System) writebackToL2(line mem.Line, now uint64) {
	handled, slot := s.l2.MarkDirtyFill(line, now)
	if handled {
		return
	}
	s.l2Evicted(s.l2.Fill(slot, line, now, true, false, 0), now)
}

// writebackToL3 handles a dirty L2 eviction.
func (s *System) writebackToL3(line mem.Line, now uint64) {
	handled, slot := s.l3.MarkDirtyFill(line, now)
	if handled {
		return
	}
	if ev := s.l3.Fill(slot, line, now, true, false, 0); ev.Valid && ev.Dirty {
		s.dram.Write(ev.Line, now)
	}
}

// prefetchIntoL2 issues a temporal or software prefetch. Prefetches do not
// stall the core; their fills arrive asynchronously at the computed cycle.
func (s *System) prefetchIntoL2(line mem.Line, trigger mem.Addr, now uint64) {
	// One fused scan covers the presence probe and the fill: between them
	// only the L3/DRAM are touched, so the slot stays valid.
	_, hit, slot := s.l2.LookupFill(line)
	if hit {
		return
	}
	s.st.TPIssued++
	if s.counters != nil {
		s.counters.RecordIssue(trigger)
	}
	ready := s.fetchFromL3(line, now)
	s.fillL2Slot(slot, line, now, ready, true, trigger)
}

// l1Prefetch issues an L1 prefetcher fill, pulling the line through the
// hierarchy without core involvement. The L2 access it causes feeds the
// temporal prefetcher's training stream (Section 5.1). It reports whether
// it modified the L1 (callers holding a fused L1 fill slot must rescan).
func (s *System) l1Prefetch(line mem.Line, trigger mem.Addr, now uint64) bool {
	if _, hit := s.l1.Lookup(line); hit {
		return false
	}
	s.st.L1PFIssued++
	// Fused L2 scan: on a miss, only fetchFromL3 runs before the fill, so
	// the slot from the access scan stays valid.
	res, slot := s.l2.AccessFill(line, now, false)
	if res.WasPrefetch {
		// An L1 prefetch touching a TP-prefetched L2 line counts as
		// useful: the data was needed earlier in the hierarchy.
		s.st.TPUseful++
		if s.engine != nil {
			s.engine.PrefetchUseful(res.Trigger, line)
		}
		if s.counters != nil {
			s.counters.RecordUseful(res.Trigger)
		}
	}
	var ready uint64
	if res.Hit {
		ready = now + s.cfg.L2.HitLatency
		if res.Ready > ready {
			ready = res.Ready
		}
	} else {
		ready = s.fetchFromL3(line, now+s.cfg.L2.HitLatency)
		s.fillL2Slot(slot, line, now, ready, false, 0)
	}
	// The temporal prefetcher trains on L1-prefetch L2 traffic too.
	if s.engine != nil {
		targets := s.engine.OnAccess(temporal.AccessEvent{
			PC: trigger, Line: line,
			Hit: res.Hit, HitPrefetched: res.WasPrefetch,
			FromL1Prefetch: true, Cycle: now,
		})
		for _, tl := range targets {
			s.prefetchIntoL2(tl, trigger, now)
		}
		s.syncMetaWays(now)
	}
	if ev := s.l1.Insert(line, now, ready, false, true, trigger); ev.Valid && ev.Dirty {
		s.writebackToL2(ev.Line, now)
	}
	return true
}

// Stats snapshots the run counters (call after the core finishes).
func (s *System) Stats(coreStats cpu.Stats) Stats {
	st := s.st
	st.Core = coreStats
	st.L1 = s.l1.Stats()
	st.L2 = s.l2.Stats()
	st.L3 = s.l3.Stats()
	st.DRAM = s.dram.Stats()
	if s.engine != nil {
		st.MetaWays = s.engine.MetaWays()
		st.TableStats = s.engine.TableStats()
	}
	return st
}

// scratch bundles the large per-run structures Run recycles: the cache
// hierarchy's tag arrays (megabytes per system), the core's dependence
// ring, and the record-block buffer. Pooling them removes the dominant
// per-run allocations from sweeps — an Evaluator fanning hundreds of short
// simulations over a worker pool constructs each system once per worker
// instead of once per run.
type scratch struct {
	sys  *System
	core *cpu.Core
	buf  []mem.Access // block buffer, sized to the run's BlockRecords
}

// scratchPools maps a runKey — Config plus normalized run Opts — to its
// *sync.Pool of scratch systems. Pools are per-configuration because a
// System's geometry is fixed at construction, and per-Opts because scratch
// shape (block buffer size, sharded-reset discipline) follows the run
// shape: an entry prepared for a sharded run must never serve a sequential
// one, and vice versa. A typed map behind an RWMutex (rather than a
// sync.Map) keeps the per-run lookup allocation-free: interface conversion
// of the large runKey struct would box it on every Run.
var (
	scratchMu    sync.RWMutex
	scratchPools = map[runKey]*sync.Pool{}
)

func poolFor(key runKey) *sync.Pool {
	scratchMu.RLock()
	p := scratchPools[key]
	scratchMu.RUnlock()
	if p != nil {
		return p
	}
	scratchMu.Lock()
	defer scratchMu.Unlock()
	if p = scratchPools[key]; p == nil {
		p = &sync.Pool{}
		scratchPools[key] = p
	}
	return p
}

func getScratch(key runKey, engine temporal.Engine, sw SWPrefetcher, counters *pmu.Counters, observer DemandObserver, par int) *scratch {
	if v := poolFor(key).Get(); v != nil {
		sc := v.(*scratch)
		sc.reset(engine, sw, counters, observer, par)
		return sc
	}
	sys := New(key.cfg, engine, sw, counters, observer)
	sc := &scratch{sys: sys, core: cpu.New(key.cfg.Core, sys)}
	if key.opts.BlockRecords > 0 {
		sc.buf = make([]mem.Access, key.opts.BlockRecords)
	}
	return sc
}

func putScratch(key runKey, sc *scratch) {
	// Drop the run's attachments so the pool does not pin engine metadata
	// (tables, compressors) beyond the run's lifetime.
	sc.sys.engine = nil
	sc.sys.sw = nil
	sc.sys.counters = nil
	sc.sys.observer = nil
	poolFor(key).Put(sc)
}

// Run executes a full trace on a fresh core and returns the statistics. If
// counters were attached, the metadata-table counters are published to them.
// The system and core scratch state come from a per-configuration pool.
// Run uses default Opts (block-batched, synchronous); RunOpts exposes the
// execution-shaping knobs.
func Run(cfg Config, engine temporal.Engine, sw SWPrefetcher, counters *pmu.Counters, observer DemandObserver, src mem.Source) Stats {
	return RunOpts(cfg, Opts{}, engine, sw, counters, observer, src)
}
