package sim

import (
	"testing"

	"prophet/internal/mem"
	"prophet/internal/pmu"
	"prophet/internal/temporal"
)

func loads(n int, pc mem.Addr, stridedLines bool) []mem.Access {
	recs := make([]mem.Access, n)
	for i := range recs {
		addr := mem.Addr(i) * 64 * 128 // far apart: no L1 prefetch interference
		if stridedLines {
			addr = mem.Addr(i) * 64
		}
		recs[i] = mem.Access{PC: pc, Addr: 0x1000000 + addr, Kind: mem.Load, Gap: 3}
	}
	return recs
}

func TestBaselineRunProducesStats(t *testing.T) {
	st := Run(Default(), nil, nil, nil, nil, mem.NewSliceSource(loads(2000, 0x400, false)))
	if st.Core.MemRecords != 2000 {
		t.Fatalf("MemRecords = %d", st.Core.MemRecords)
	}
	if st.Core.Instructions != 2000*4 {
		t.Fatalf("Instructions = %d", st.Core.Instructions)
	}
	if st.IPC() <= 0 {
		t.Fatal("IPC must be positive")
	}
	if st.DRAM.Reads == 0 {
		t.Fatal("cold loads must reach DRAM")
	}
	if st.L2DemandMisses == 0 {
		t.Fatal("cold loads must miss L2")
	}
}

func TestRepeatedWorkingSetHitsCaches(t *testing.T) {
	// 64 distinct lines accessed repeatedly: after warmup everything hits L1.
	var recs []mem.Access
	for i := 0; i < 5000; i++ {
		recs = append(recs, mem.Access{PC: 0x400, Addr: mem.Addr(0x2000000 + (i%64)*64), Kind: mem.Load})
	}
	st := Run(Default(), nil, nil, nil, nil, mem.NewSliceSource(recs))
	if st.L1.Hits < 4800 {
		t.Fatalf("L1 hits = %d, want nearly all", st.L1.Hits)
	}
	if st.DRAM.Reads > 80 {
		t.Fatalf("DRAM reads = %d for a tiny working set", st.DRAM.Reads)
	}
}

// fixedEngine prefetches a fixed target whenever trained.
type fixedEngine struct {
	target  mem.Line
	issued  int
	useful  int
	useless int
	ways    int
}

func (e *fixedEngine) Name() string { return "fixed" }
func (e *fixedEngine) OnAccess(ev temporal.AccessEvent) []mem.Line {
	if !ev.Trainable() {
		return nil
	}
	e.issued++
	return []mem.Line{e.target}
}
func (e *fixedEngine) PrefetchUseful(mem.Addr, mem.Line)  { e.useful++ }
func (e *fixedEngine) PrefetchUseless(mem.Addr, mem.Line) { e.useless++ }
func (e *fixedEngine) MetaWays() int                      { return e.ways }
func (e *fixedEngine) TableStats() temporal.TableStats    { return temporal.TableStats{} }

func TestPrefetchUsefulFeedback(t *testing.T) {
	target := mem.LineOf(0x9000000)
	eng := &fixedEngine{target: target}
	recs := []mem.Access{
		{PC: 1, Addr: 0x1000000, Kind: mem.Load},             // miss: trains, prefetches target
		{PC: 1, Addr: target.Addr(), Kind: mem.Load, Gap: 1}, // demand touch of the prefetched line
	}
	st := Run(Default(), eng, nil, nil, nil, mem.NewSliceSource(recs))
	if st.TPIssued == 0 {
		t.Fatal("engine prefetch not issued")
	}
	if st.TPUseful != 1 {
		t.Fatalf("TPUseful = %d, want 1", st.TPUseful)
	}
	if eng.useful != 1 {
		t.Fatalf("engine useful feedback = %d", eng.useful)
	}
}

func TestPMUCountersCollected(t *testing.T) {
	target := mem.LineOf(0x9000000)
	eng := &fixedEngine{target: target}
	counters := pmu.NewCounters(1)
	recs := []mem.Access{
		{PC: 0x400, Addr: 0x1000000, Kind: mem.Load},
		{PC: 0x400, Addr: target.Addr(), Kind: mem.Load},
	}
	Run(Default(), eng, nil, counters, nil, mem.NewSliceSource(recs))
	if counters.PC[0x400] == nil {
		t.Fatal("no counters for the demand PC")
	}
	if counters.PC[0x400].L2Misses == 0 {
		t.Fatal("L2 miss not counted")
	}
	if counters.PC[0x400].Issued == 0 {
		t.Fatal("prefetch issue not attributed to trigger PC")
	}
	if counters.PC[0x400].Useful == 0 {
		t.Fatal("useful prefetch not attributed")
	}
}

func TestMetaWaysShrinkDemandLLC(t *testing.T) {
	// With 8 metadata ways the demand LLC halves; a working set sized to
	// the full LLC must miss more.
	var recs []mem.Access
	lines := 28000 // ~1.75MB: fits 2MB LLC, not 1MB
	for p := 0; p < 3; p++ {
		for i := 0; i < lines; i++ {
			recs = append(recs, mem.Access{PC: 0x400, Addr: mem.Addr(0x10000000 + i*64), Kind: mem.Load})
		}
	}
	full := Run(Default(), nil, nil, nil, nil, mem.NewSliceSource(recs))
	eng := &fixedEngine{target: 1, ways: 8}
	half := Run(Default(), eng, nil, nil, nil, mem.NewSliceSource(recs))
	if half.DRAM.Reads <= full.DRAM.Reads {
		t.Fatalf("metadata ways did not cost LLC capacity: %d vs %d DRAM reads",
			half.DRAM.Reads, full.DRAM.Reads)
	}
}

type recordingObserver struct{ n int }

func (o *recordingObserver) OnDemandAccess(mem.Addr, mem.Line, bool, bool) { o.n++ }

func TestObserverSeesEveryDemand(t *testing.T) {
	obs := &recordingObserver{}
	Run(Default(), nil, nil, nil, obs, mem.NewSliceSource(loads(500, 1, true)))
	if obs.n != 500 {
		t.Fatalf("observer saw %d accesses, want 500", obs.n)
	}
}

type fixedSW struct{ line mem.Line }

func (s fixedSW) OnDemand(pc mem.Addr, l mem.Line) []mem.Line { return []mem.Line{s.line} }

func TestSoftwarePrefetchFills(t *testing.T) {
	target := mem.LineOf(0x9990000)
	recs := []mem.Access{
		{PC: 1, Addr: 0x1000000, Kind: mem.Load},
		{PC: 1, Addr: target.Addr(), Kind: mem.Load, Gap: 2},
	}
	st := Run(Default(), nil, fixedSW{target}, nil, nil, mem.NewSliceSource(recs))
	if st.SWIssued == 0 {
		t.Fatal("software prefetch not issued")
	}
	if st.TPUseful == 0 {
		t.Fatal("software-prefetched line not useful on demand touch")
	}
}

func TestTimelinessPartialLatency(t *testing.T) {
	// A prefetch issued immediately before the demand cannot hide the
	// full DRAM latency: the demand still stalls for the residual.
	target := mem.LineOf(0x9000000)
	eng := &fixedEngine{target: target}
	late := []mem.Access{
		{PC: 1, Addr: 0x1000000, Kind: mem.Load},
		{PC: 1, Addr: target.Addr(), Kind: mem.Load}, // immediately after
	}
	lateStats := Run(Default(), eng, nil, nil, nil, mem.NewSliceSource(late))

	eng2 := &fixedEngine{target: target}
	early := []mem.Access{{PC: 1, Addr: 0x1000000, Kind: mem.Load}}
	// 300 independent hits give the prefetch time to complete.
	for i := 0; i < 300; i++ {
		early = append(early, mem.Access{PC: 2, Addr: 0x1000000, Kind: mem.Load})
	}
	early = append(early, mem.Access{PC: 1, Addr: target.Addr(), Kind: mem.Load})
	earlyStats := Run(Default(), eng2, nil, nil, nil, mem.NewSliceSource(early))
	_ = earlyStats

	// The late-prefetch run must still charge the residual latency for the
	// second load: total cycles near one full miss (~230), far above the
	// ~15 cycles a clean L2 hit would cost.
	if lateStats.Core.Cycles < 200 {
		t.Fatalf("late prefetch hid the full latency: %d cycles", lateStats.Core.Cycles)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// Write a large footprint so dirty lines churn all the way to DRAM.
	var recs []mem.Access
	for i := 0; i < 80000; i++ {
		recs = append(recs, mem.Access{PC: 1, Addr: mem.Addr(0x10000000 + i*64), Kind: mem.Store})
	}
	// Second pass to force eviction of the first pass's dirty lines.
	for i := 0; i < 80000; i++ {
		recs = append(recs, mem.Access{PC: 1, Addr: mem.Addr(0x40000000 + i*64), Kind: mem.Store})
	}
	st := Run(Default(), nil, nil, nil, nil, mem.NewSliceSource(recs))
	if st.DRAM.Writes == 0 {
		t.Fatal("dirty evictions never reached DRAM")
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Stats {
		eng := &fixedEngine{target: 5}
		return Run(Default(), eng, nil, nil, nil, mem.NewSliceSource(loads(3000, 7, true)))
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestConfigDefaultsMatchTable1(t *testing.T) {
	cfg := Default()
	if cfg.L1.SizeBytes != 64<<10 || cfg.L1.Ways != 4 {
		t.Error("L1 geometry wrong")
	}
	if cfg.L2.SizeBytes != 512<<10 || cfg.L2.Ways != 8 {
		t.Error("L2 geometry wrong")
	}
	if cfg.L3.SizeBytes != 2<<20 || cfg.L3.Ways != 16 {
		t.Error("L3 geometry wrong")
	}
	if cfg.Core.ROB != 288 || cfg.Core.FetchWidth != 5 {
		t.Error("core config wrong")
	}
	if cfg.StrideDegree != 8 {
		t.Error("stride degree wrong")
	}
	if err := cfg.L1.Validate(); err != nil {
		t.Error(err)
	}
}

func TestL1PrefetcherKinds(t *testing.T) {
	for _, k := range []L1PrefetcherKind{L1Stride, L1IPCP, L1None} {
		cfg := Default()
		cfg.L1PF = k
		if cfg.newL1Prefetcher() == nil {
			t.Errorf("no prefetcher for kind %d", k)
		}
	}
}
