// Package sim wires the simulated system together: the Table 1 out-of-order
// core, the three-level cache hierarchy with its L1 prefetcher, the DRAM
// model, an optional L2-attached temporal prefetching engine (Triage /
// Triangel / Prophet), an optional software prefetcher (RPG2), and the PMU.
//
// The package owns the timing rules between components:
//
//   - demand accesses walk L1 -> L2 -> L3 -> DRAM, accumulating hit
//     latencies; a hit on an in-flight fill pays the residual latency
//     (prefetch timeliness);
//   - temporal prefetches fill the L2, tagged with their trigger PC; the
//     first demand touch reports a useful prefetch, an untouched eviction a
//     useless one — feeding both the engines (Triangel's PatternConf) and
//     the PMU (Prophet's profiling counters);
//   - the metadata table physically occupies LLC ways: the demand-visible
//     LLC shrinks by Engine.MetaWays(), re-synced whenever resizing acts;
//   - every DRAM transfer — demand, prefetch, writeback — occupies channel
//     bandwidth, so inaccurate prefetching taxes demand traffic.
package sim

import (
	"prophet/internal/cache"
	"prophet/internal/cpu"
	"prophet/internal/dram"
	"prophet/internal/prefetch"
)

// L1PrefetcherKind selects the L1 prefetcher.
type L1PrefetcherKind uint8

const (
	// L1Stride is Table 1's degree-8 stride prefetcher.
	L1Stride L1PrefetcherKind = iota
	// L1IPCP is the Figure 17 IPCP-style composite prefetcher.
	L1IPCP
	// L1None disables L1 prefetching.
	L1None
)

// Config is the full system configuration (Table 1).
type Config struct {
	Core cpu.Config
	L1   cache.Config
	L2   cache.Config
	L3   cache.Config
	DRAM dram.Config
	L1PF L1PrefetcherKind
	// StrideDegree is the L1 stride prefetcher degree (8 in Table 1).
	StrideDegree int
}

// Default returns the Table 1 system configuration.
func Default() Config {
	return Config{
		Core: cpu.Default(),
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 << 10, Ways: 4,
			HitLatency: 2, MSHRs: 16, Policy: cache.PLRU,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 512 << 10, Ways: 8,
			HitLatency: 9, MSHRs: 32, Policy: cache.PLRU,
		},
		L3: cache.Config{
			Name: "L3", SizeBytes: 2 << 20, Ways: 16,
			HitLatency: 20, MSHRs: 36, Policy: cache.SRRIP,
		},
		DRAM:         dram.Default(),
		L1PF:         L1Stride,
		StrideDegree: 8,
	}
}

// newL1Prefetcher builds the configured L1 prefetcher.
func (c Config) newL1Prefetcher() prefetch.L1Prefetcher {
	switch c.L1PF {
	case L1IPCP:
		return prefetch.NewIPCP()
	case L1None:
		return prefetch.None{}
	default:
		deg := c.StrideDegree
		if deg <= 0 {
			deg = 8
		}
		return prefetch.NewStride(deg)
	}
}
