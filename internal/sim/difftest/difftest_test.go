package difftest

import (
	"bytes"
	"context"
	"flag"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"

	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/triage"
	"prophet/internal/workloads"
)

// The execution-shape matrix under test. CI pins the full grid explicitly;
// the defaults cover the same cells so a plain `go test ./...` proves the
// whole contract too.
var (
	blocksFlag  = flag.String("difftest.blocks", "1,64,4096", "comma-separated block sizes to diff against the sequential reference")
	workersFlag = flag.String("difftest.workers", "1,4", "comma-separated intra-run worker counts to diff against the sequential reference")
)

// TestMain raises GOMAXPROCS so the parallel execution shapes genuinely run
// their goroutine paths (decode-ahead, sharded reset) even on single-CPU
// runners, where load deration would otherwise collapse every request to 1.
func TestMain(m *testing.M) {
	flag.Parse()
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}
	os.Exit(m.Run())
}

func parseList(t *testing.T, s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			t.Fatalf("bad matrix element %q: %v", f, err)
		}
		out = append(out, n)
	}
	return out
}

func matrix(t *testing.T) []Variant {
	return Matrix(parseList(t, *blocksFlag), parseList(t, *workersFlag))
}

// corpusCells mirrors the golden-fixture corpus at the repository root: one
// cell per scheme family, covering the temporal-table engines, RPG2's
// software-prefetch flow, the fused spatial-temporal gaze engine, the
// phase-adaptive wrapper, and the plain baseline.
var corpusCells = []struct {
	workload string
	scheme   string
	records  uint64
}{
	{"mcf", "prophet", 20_000},
	{"omnetpp", "triangel", 20_000},
	{"sphinx3", "triage", 20_000},
	{"xalancbmk", "rpg2", 20_000},
	{"mcf", "baseline", 20_000},
	{"omnetpp", "gaze", 20_000},
	{"sphinx3", "adaptive", 20_000},
}

// runCorpus replays every corpus cell through a fresh pipeline evaluator
// configured with the given execution shape.
func runCorpus(t *testing.T, opts sim.Opts) []pipeline.Outcome {
	t.Helper()
	cfg := pipeline.Default()
	cfg.Run = opts
	ev := pipeline.NewEvaluator(cfg, 1)
	out := make([]pipeline.Outcome, len(corpusCells))
	for i, cell := range corpusCells {
		w, ok := workloads.Get(cell.workload)
		if !ok {
			t.Fatalf("unknown workload %q", cell.workload)
		}
		records := cell.records
		out[i] = ev.Run(context.Background(), pipeline.Job{
			Key:     cell.workload + "@difftest",
			Factory: func() mem.Source { return w.Source(records) },
			Scheme:  cell.scheme,
		})
		if out[i].Err != nil {
			t.Fatalf("%s under %s (%+v): %v", cell.workload, cell.scheme, opts, out[i].Err)
		}
	}
	return out
}

// TestCorpusEquivalence is the harness's core claim: every golden-corpus
// cell, replayed through every block size x worker count in the matrix,
// produces Stats bit-identical to the record-at-a-time sequential reference
// — scheme results, cached baselines, and scheme metadata alike.
func TestCorpusEquivalence(t *testing.T) {
	ref := runCorpus(t, Sequential.Opts)
	for _, v := range matrix(t) {
		t.Run(v.Name, func(t *testing.T) {
			got := runCorpus(t, v.Opts)
			for i, cell := range corpusCells {
				name := cell.workload + "/" + cell.scheme
				if d := Diff(ref[i].Stats, got[i].Stats); d != nil {
					t.Errorf("%s: stats diverged from sequential reference:\n  %s",
						name, strings.Join(d, "\n  "))
				}
				if d := Diff(ref[i].Base, got[i].Base); d != nil {
					t.Errorf("%s: baseline stats diverged:\n  %s", name, strings.Join(d, "\n  "))
				}
				if !reflect.DeepEqual(ref[i].Meta, got[i].Meta) {
					t.Errorf("%s: scheme metadata diverged: %v != %v", name, ref[i].Meta, got[i].Meta)
				}
			}
		})
	}
}

// TestGeneratedWorkloadEquivalence widens coverage beyond the corpus: every
// cataloged generated workload, under both the bare system and a stateful
// temporal engine, through the full matrix. Trace lengths are short — the
// point is breadth of access patterns, not depth.
func TestGeneratedWorkloadEquivalence(t *testing.T) {
	cfg := sim.Default()
	const records = 4_000
	engines := []struct {
		name string
		make func() *triage.Prefetcher // nil = baseline system
	}{
		{"baseline", func() *triage.Prefetcher { return nil }},
		{"triage", func() *triage.Prefetcher { return triage.New(triage.Default()) }},
	}
	vs := matrix(t)
	for _, w := range workloads.All() {
		recs := mem.Materialize(w.Source(records))
		for _, eng := range engines {
			var ref sim.Stats
			if e := eng.make(); e != nil {
				ref = sim.RunOpts(cfg, Sequential.Opts, e, nil, nil, nil, mem.NewSliceSource(recs))
			} else {
				ref = sim.RunOpts(cfg, Sequential.Opts, nil, nil, nil, nil, mem.NewSliceSource(recs))
			}
			for _, v := range vs {
				var got sim.Stats
				if e := eng.make(); e != nil {
					got = sim.RunOpts(cfg, v.Opts, e, nil, nil, nil, mem.NewSliceSource(recs))
				} else {
					got = sim.RunOpts(cfg, v.Opts, nil, nil, nil, nil, mem.NewSliceSource(recs))
				}
				if d := Diff(ref, got); d != nil {
					t.Errorf("%s/%s at %s diverged:\n  %s", w.Name, eng.name, v.Name, strings.Join(d, "\n  "))
				}
			}
		}
	}
}

// TestTraceDecodeAheadEquivalence runs the matrix over a native trace
// stream, the one source family that engages the decode-ahead pipeline
// (in-memory slices bypass it). Every shape must see the exact record
// sequence the blocking reader would deliver.
func TestTraceDecodeAheadEquivalence(t *testing.T) {
	w, ok := workloads.Get("omnetpp")
	if !ok {
		t.Fatal("unknown workload omnetpp")
	}
	var buf bytes.Buffer
	if _, err := mem.WriteTrace(&buf, w.Source(6_000)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	open := func() mem.Source {
		tr, err := mem.NewTraceReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cfg := sim.Default()
	ref := sim.RunOpts(cfg, Sequential.Opts, nil, nil, nil, nil, open())
	for _, v := range matrix(t) {
		got := sim.RunOpts(cfg, v.Opts, nil, nil, nil, nil, open())
		if d := Diff(ref, got); d != nil {
			t.Errorf("trace replay at %s diverged:\n  %s", v.Name, strings.Join(d, "\n  "))
		}
	}
}

// TestMixedOptsPoolStress hammers one configuration's scratch pools with
// concurrent runs at mixed execution shapes. The pools are keyed by
// (Config, Opts), so no run may ever receive scratch prepared for a
// different shape — under -race this catches pool cross-contamination, and
// the stats check catches any state bleed between shapes.
func TestMixedOptsPoolStress(t *testing.T) {
	cfg := sim.Default()
	w, ok := workloads.Get("mcf")
	if !ok {
		t.Fatal("unknown workload mcf")
	}
	recs := mem.Materialize(w.Source(5_000))
	ref := sim.RunOpts(cfg, Sequential.Opts, nil, nil, nil, nil, mem.NewSliceSource(recs))
	variants := append([]Variant{Sequential}, matrix(t)...)
	var wg sync.WaitGroup
	for round := 0; round < 2; round++ {
		for _, v := range variants {
			wg.Add(1)
			go func(v Variant) {
				defer wg.Done()
				for i := 0; i < 2; i++ {
					st := sim.RunOpts(cfg, v.Opts, nil, nil, nil, nil, mem.NewSliceSource(recs))
					if d := Diff(ref, st); d != nil {
						t.Errorf("%s diverged under mixed-shape load:\n  %s", v.Name, strings.Join(d, "\n  "))
					}
				}
			}(v)
		}
	}
	wg.Wait()
}

// FuzzRunParallelism lets the fuzzer pick the execution shape: an arbitrary
// block size (including negative = sequential and absurdly large) and worker
// count over an arbitrary cataloged workload must reproduce the sequential
// reference exactly.
func FuzzRunParallelism(f *testing.F) {
	f.Add(uint8(0), uint16(1000), 1, uint8(2))
	f.Add(uint8(1), uint16(2000), 4096, uint8(4))
	f.Add(uint8(2), uint16(500), -7, uint8(0))
	f.Add(uint8(3), uint16(3000), 64, uint8(255))
	f.Add(uint8(4), uint16(1), 1<<14, uint8(1))
	cfg := sim.Default()
	all := workloads.All()
	f.Fuzz(func(t *testing.T, wsel uint8, records uint16, block int, workers uint8) {
		w := all[int(wsel)%len(all)]
		// Bound the block size (it sizes the scratch buffer) but keep the
		// sign, so negative = sequential stays reachable.
		block %= 1 << 15
		n := uint64(records)%4_096 + 1
		recs := mem.Materialize(w.Source(n))
		ref := sim.RunOpts(cfg, Sequential.Opts, nil, nil, nil, nil, mem.NewSliceSource(recs))
		opts := sim.Opts{BlockRecords: block, Parallelism: int(workers)}
		got := sim.RunOpts(cfg, opts, nil, nil, nil, nil, mem.NewSliceSource(recs))
		if d := Diff(ref, got); d != nil {
			t.Errorf("%s at block=%d workers=%d diverged:\n  %s", w.Name, block, workers, strings.Join(d, "\n  "))
		}
	})
}
