// Package difftest is the differential equivalence harness behind the
// block-batched hot loop. The simulator's contract is that sim.Opts shapes
// HOW a run executes — block granularity, decode-ahead, intra-run worker
// count — and never WHAT it computes: Stats must be bit-identical to the
// record-at-a-time sequential reference at every block size and worker
// count. This package replays the golden-corpus cells and generated
// workloads through a matrix of execution shapes and diffs the full Stats
// structs field by field; a single diverging counter fails the build.
//
// CI drives the full matrix explicitly:
//
//	go test ./internal/sim/difftest -difftest.blocks=1,64,4096 -difftest.workers=1,4
package difftest

import (
	"fmt"
	"reflect"

	"prophet/internal/sim"
)

// Sequential is the reference execution shape: the record-at-a-time loop
// every other shape must reproduce bit for bit.
var Sequential = Variant{Name: "sequential", Opts: sim.Opts{BlockRecords: -1}}

// Variant names one execution shape of the hot loop.
type Variant struct {
	Name string
	Opts sim.Opts
}

// Matrix builds the cross product of block sizes and worker counts as named
// variants. A worker count of 1 exercises the block loop alone; higher
// counts add decode-ahead and the sharded scratch reset.
func Matrix(blocks, workers []int) []Variant {
	var out []Variant
	for _, b := range blocks {
		for _, w := range workers {
			out = append(out, Variant{
				Name: fmt.Sprintf("block=%d/workers=%d", b, w),
				Opts: sim.Opts{BlockRecords: b, Parallelism: w},
			})
		}
	}
	return out
}

// Diff reports the field paths at which two Stats differ, with both values
// (nil means bit-identical). The walk descends nested structs so a failure
// names the exact counter that diverged, not just "stats differ".
func Diff(a, b sim.Stats) []string {
	var out []string
	diffValue("Stats", reflect.ValueOf(a), reflect.ValueOf(b), &out)
	return out
}

func diffValue(path string, a, b reflect.Value, out *[]string) {
	if a.Kind() == reflect.Struct {
		for i := 0; i < a.NumField(); i++ {
			diffValue(path+"."+a.Type().Field(i).Name, a.Field(i), b.Field(i), out)
		}
		return
	}
	if !a.Equal(b) {
		*out = append(*out, fmt.Sprintf("%s: %v != %v", path, a, b))
	}
}
