package sim

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
)

// Property: for any random access mix, the hierarchy's accounting stays
// consistent — hits+misses equals accesses per level, demand misses never
// exceed demand accesses, and DRAM reads never exceed total fills needed.
func TestHierarchyAccountingInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mem.NewPRNG(seed)
		var recs []mem.Access
		n := 2000 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			kind := mem.Load
			if rng.Intn(5) == 0 {
				kind = mem.Store
			}
			recs = append(recs, mem.Access{
				PC:   mem.Addr(0x400 + rng.Intn(8)*8),
				Addr: mem.Addr(0x1000000 + rng.Intn(1<<16)*64),
				Kind: kind,
				Gap:  uint16(rng.Intn(6)),
			})
		}
		st := Run(Default(), nil, nil, nil, nil, mem.NewSliceSource(recs))
		if st.Core.MemRecords != uint64(n) {
			return false
		}
		if st.L1.Hits+st.L1.Misses != uint64(n) {
			return false
		}
		if st.L2DemandMisses > st.L2DemandAccesses {
			return false
		}
		if st.L2DemandAccesses != st.L1.Misses {
			return false
		}
		// Cycles must cover at least the fetch-bandwidth lower bound.
		return st.Core.Cycles >= st.Core.Instructions/uint64(Default().Core.FetchWidth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// Property: shrinking cache capacity never reduces DRAM traffic for the same
// trace (monotonicity of the memory hierarchy).
func TestSmallerLLCNeverReducesTraffic(t *testing.T) {
	rng := mem.NewPRNG(9)
	var recs []mem.Access
	for i := 0; i < 20000; i++ {
		recs = append(recs, mem.Access{PC: 1, Addr: mem.Addr(0x1000000 + rng.Intn(24000)*64), Kind: mem.Load})
	}
	big := Default()
	small := Default()
	small.L3.SizeBytes = 1 << 20 // 1MB instead of 2MB
	bigStats := Run(big, nil, nil, nil, nil, mem.NewSliceSource(recs))
	smallStats := Run(small, nil, nil, nil, nil, mem.NewSliceSource(recs))
	if smallStats.DRAM.Traffic() < bigStats.DRAM.Traffic() {
		t.Fatalf("smaller LLC reduced traffic: %d vs %d",
			smallStats.DRAM.Traffic(), bigStats.DRAM.Traffic())
	}
}

// Property: adding memory bandwidth (channels) never increases cycles for
// the same trace and scheme.
func TestMoreChannelsNeverSlower(t *testing.T) {
	rng := mem.NewPRNG(11)
	var recs []mem.Access
	for i := 0; i < 15000; i++ {
		recs = append(recs, mem.Access{PC: 1, Addr: mem.Addr(0x1000000 + rng.Intn(1<<18)*64), Kind: mem.Load, Gap: 2})
	}
	one := Default()
	two := Default()
	two.DRAM.Channels = 2
	oneStats := Run(one, nil, nil, nil, nil, mem.NewSliceSource(recs))
	twoStats := Run(two, nil, nil, nil, nil, mem.NewSliceSource(recs))
	if twoStats.Core.Cycles > oneStats.Core.Cycles {
		t.Fatalf("two channels slower: %d vs %d cycles", twoStats.Core.Cycles, oneStats.Core.Cycles)
	}
}
