package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"prophet/internal/cpu"
	"prophet/internal/mem"
	"prophet/internal/pmu"
	"prophet/internal/temporal"
)

// Opts shapes HOW a run executes — block granularity and intra-run
// parallelism — never WHAT it computes: Stats are bit-identical for every
// Opts value. internal/sim/difftest and the golden fixtures enforce that
// contract; because results are identical, Opts must never leak into result
// cache keys or store fingerprints.
type Opts struct {
	// BlockRecords is how many trace records the core consumes per block of
	// the hot loop. 0 selects mem.DefaultBlockRecords; negative selects the
	// record-at-a-time reference loop (the sequential baseline the
	// differential harness compares against).
	BlockRecords int

	// Parallelism bounds the intra-run worker set: trace decode-ahead for
	// streaming sources, sharded scratch reset, and the sharded metadata
	// analysis pass. 0 and 1 run fully synchronous. The effective value is
	// derated by the number of concurrently active runs in this process, so
	// a sweep fanning W runs over W cores does not oversubscribe the
	// machine (each run derates to ~GOMAXPROCS/active).
	Parallelism int
}

// normalized resolves defaults so equal-behaviour Opts compare equal (the
// scratch pool and the run loop both key off the normalized form).
func (o Opts) normalized() Opts {
	if o.BlockRecords == 0 {
		o.BlockRecords = mem.DefaultBlockRecords
	} else if o.BlockRecords < 0 {
		o.BlockRecords = -1
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	return o
}

// activeRuns counts sim runs in flight across the whole process; it is the
// load signal for parallelism deration under concurrent sweep load.
var activeRuns atomic.Int64

// ActiveRuns reports the number of simulation runs currently executing in
// this process (exposed for load probes and tests).
func ActiveRuns() int64 { return activeRuns.Load() }

// IntraRunWorkers reports the derated worker budget a pass requesting par
// intra-run workers would receive right now, counting the caller itself as
// one active run. Non-simulation passes that shard metadata work (the
// pipeline's analysis step) size themselves with this.
func IntraRunWorkers(par int) int {
	return effectiveParallelism(par, activeRuns.Load()+1)
}

// effectiveParallelism derates the requested intra-run worker bound by the
// process-wide run load: each active run gets an equal share of GOMAXPROCS,
// never less than 1. Deration affects scheduling only — results are
// identical at every effective value.
func effectiveParallelism(requested int, active int64) int {
	if requested <= 1 {
		return 1
	}
	if active < 1 {
		active = 1
	}
	share := runtime.GOMAXPROCS(0) / int(active)
	if share < 1 {
		share = 1
	}
	if requested < share {
		return requested
	}
	return share
}

// runKey keys the scratch pool. It includes the normalized Opts alongside
// the Config: scratch shape depends on both (block buffer size, sharded
// reset discipline), so a pool entry prepared for one run shape must never
// be handed to a run with another.
type runKey struct {
	cfg  Config
	opts Opts
}

// RunOpts is Run with explicit execution shaping. Stats are bit-identical
// to Run for every opts value.
func RunOpts(cfg Config, opts Opts, engine temporal.Engine, sw SWPrefetcher, counters *pmu.Counters, observer DemandObserver, src mem.Source) Stats {
	opts = opts.normalized()
	active := activeRuns.Add(1)
	defer activeRuns.Add(-1)
	par := effectiveParallelism(opts.Parallelism, active)

	sc := getScratch(runKey{cfg: cfg, opts: opts}, engine, sw, counters, observer, par)

	// Decode-ahead: overlap trace decode/generation with simulation for
	// streaming sources. In-memory traces are already decoded — wrapping
	// them would only add channel hops.
	runSrc := src
	var pf *mem.PrefetchSource
	if par > 1 && opts.BlockRecords > 0 {
		if _, inMemory := src.(*mem.SliceSource); !inMemory {
			pf = mem.Prefetch(src, opts.BlockRecords, par-1)
			runSrc = pf
		}
	}

	var coreStats cpu.Stats
	if opts.BlockRecords > 0 {
		coreStats = sc.core.RunBlocks(runSrc, sc.buf)
	} else {
		coreStats = sc.core.Run(runSrc)
	}
	if pf != nil {
		pf.Stop()
	}
	st := sc.sys.Stats(coreStats)
	if counters != nil && engine != nil {
		ts := engine.TableStats()
		counters.SetTableCounters(ts.Insertions, ts.Replacements)
	}
	putScratch(runKey{cfg: cfg, opts: opts}, sc)
	return st
}

// reset restores pooled scratch for reuse. With par > 1 the large disjoint
// state regions — the three cache tag arrays, DRAM state, and the core's
// dependence ring — are cleared by a bounded worker set; the WaitGroup
// barrier is the deterministic merge point (no run state is observable
// until every shard has finished, so a sharded reset is indistinguishable
// from a sequential one).
func (sc *scratch) reset(engine temporal.Engine, sw SWPrefetcher, counters *pmu.Counters, observer DemandObserver, par int) {
	s := sc.sys
	shards := []func(){
		s.l1.Reset,
		s.l2.Reset,
		s.l3.Reset,
		func() { s.dram.Reset(); sc.core.Reset(s) },
	}
	if par > 1 {
		workers := par
		if workers > len(shards) {
			workers = len(shards)
		}
		var next atomic.Int32
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shards) {
						return
					}
					shards[i]()
				}
			}()
		}
		wg.Wait()
	} else {
		for _, f := range shards {
			f()
		}
	}
	s.l1pf = s.cfg.newL1Prefetcher()
	s.engine = engine
	s.sw = sw
	s.counters = counters
	s.observer = observer
	s.st = Stats{}
	s.syncMetaWays(0)
}
