// Package graphs provides the CRONO-style graph workloads of Figure 15:
// BFS, DFS, betweenness centrality, PageRank and SSSP over synthetic
// power-law graphs.
//
// The algorithms are real: each workload executes the traversal over a
// deterministic virtual CSR graph and records the memory accesses its array
// operations would perform — offset-array reads (strided), neighbour-array
// scans (strided), and data-dependent reads/writes of per-vertex state
// (indirect, a[b[i]]-shaped). This gives both baselines their natural food:
// RPG2 qualifies the strided kernels; temporal prefetchers learn the
// repeated traversal orders across iterations.
//
// Graphs are virtual — degrees and adjacency are deterministic hash
// functions — so multi-hundred-thousand-node workloads cost no memory
// beyond per-vertex state.
package graphs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prophet/internal/mem"
)

// Graph is a deterministic virtual graph in CSR layout.
type Graph struct {
	n      int
	avgDeg int
	seed   uint64
}

// NewGraph builds a virtual graph with n vertices and the given average
// degree (power-law-ish: a few hubs, many low-degree vertices).
func NewGraph(n, avgDeg int, seed uint64) *Graph {
	if n < 2 {
		n = 2
	}
	if avgDeg < 1 {
		avgDeg = 1
	}
	return &Graph{n: n, avgDeg: avgDeg, seed: seed}
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

func (g *Graph) hash(x uint64) uint64 {
	x ^= g.seed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Degree returns vertex u's out-degree: most vertices sit near the average,
// every 64th vertex is a hub with ~8x degree.
func (g *Graph) Degree(u int) int {
	h := g.hash(uint64(u) * 2654435761)
	d := g.avgDeg/2 + int(h%uint64(g.avgDeg+1))
	if u%64 == 0 {
		d *= 8
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Nbr returns vertex u's j-th neighbour: uniform over the graph, so gather
// targets rarely collide and the per-vertex state exceeds every cache level
// on the evaluated graph sizes.
func (g *Graph) Nbr(u, j int) int {
	h := g.hash(uint64(u)<<20 | uint64(j))
	return int(h>>3) % g.n
}

// offsetOf returns the CSR offset of vertex u (prefix sum of degrees,
// approximated deterministically so offsets stay strided without a real
// prefix-sum array).
func (g *Graph) offsetOf(u int) int { return u * g.avgDeg }

// --- array address model ---

// array models one of the algorithm's data arrays for address generation.
type array struct {
	base mem.Addr
	elem int // element size in bytes
}

func (a array) addr(i int) mem.Addr { return a.base + mem.Addr(i*a.elem) }

// Base addresses keep each array in its own region.
// Per-vertex state uses CRONO-style node structs (distance, parent, flags,
// padding), so neighbouring vertices do not share cache lines and gather
// successors stay distinct per vertex.
var (
	arrOffsets = array{base: 0x1_0000_0000, elem: 4}
	arrNbrs    = array{base: 0x2_0000_0000, elem: 4}
	arrWeights = array{base: 0x3_0000_0000, elem: 4}
	arrDist    = array{base: 0x4_0000_0000, elem: 64}
	arrRankSrc = array{base: 0x6_0000_0000, elem: 32}
	arrRankDst = array{base: 0x8_0000_0000, elem: 32}
	arrSigma   = array{base: 0xA_0000_0000, elem: 64}
	arrFront   = array{base: 0xC_0000_0000, elem: 4}
)

// PCs for the algorithms' load/store sites.
const (
	pcOffsets   = mem.Addr(0x500000)
	pcNbr       = mem.Addr(0x500040)
	pcWeight    = mem.Addr(0x500080)
	pcDistLoad  = mem.Addr(0x5000C0)
	pcDistStor  = mem.Addr(0x500100)
	pcRankLoad  = mem.Addr(0x500140)
	pcRankStor  = mem.Addr(0x500180)
	pcSigma     = mem.Addr(0x5001C0)
	pcSigmaBack = mem.Addr(0x500240)
	pcFrontier  = mem.Addr(0x500200)
)

// tracer accumulates the algorithm's access stream up to a record limit.
type tracer struct {
	recs  []mem.Access
	limit int
}

// elemsPerLine4B: 4-byte array elements per 64-byte line; scans emit one
// coalesced access per line.
const elemsPerLine4B = 16

func (t *tracer) full() bool { return len(t.recs) >= t.limit }

func (t *tracer) access(pc mem.Addr, addr mem.Addr, kind mem.Kind, dep uint32, gap uint16) {
	if t.full() {
		return
	}
	t.recs = append(t.recs, mem.Access{PC: pc, Addr: addr, Kind: kind, Dep: dep, Gap: gap})
}

// --- algorithms ---

// bfs runs breadth-first searches from rotating sources until the trace
// budget is exhausted.
func bfs(g *Graph, t *tracer, seed uint64) {
	visited := make([]uint32, g.n)
	epoch := uint32(0)
	rng := mem.NewPRNG(seed)
	// A small cycling source pool: traversals from the same source repeat
	// their visit order, giving the temporal prefetcher its pattern.
	sources := make([]int, 6)
	for i := range sources {
		sources[i] = rng.Intn(g.n)
	}
	const visitBudget = 400 // bounded sub-traversal per source
	for round := 0; !t.full(); round++ {
		epoch++
		src := sources[round%len(sources)]
		frontier := []int{src}
		visited[src] = epoch
		visits := 0
		for len(frontier) > 0 && !t.full() && visits < visitBudget {
			var next []int
			for _, u := range frontier {
				if t.full() || visits >= visitBudget {
					break
				}
				visits++
				// offsets[u], offsets[u+1]: strided kernel
				// (coalesced: one access per touched line).
				if u%elemsPerLine4B == 0 {
					t.access(pcOffsets, arrOffsets.addr(u), mem.Load, 0, 2)
				}
				deg := g.Degree(u)
				off := g.offsetOf(u)
				for j := 0; j < deg && !t.full(); j++ {
					// nbrs[off+j]: sequential scan, one
					// access per line.
					if (off+j)%elemsPerLine4B == 0 || j == 0 {
						t.access(pcNbr, arrNbrs.addr(off+j), mem.Load, 0, 1)
					}
					v := g.Nbr(u, j)
					// visited[v]: indirect, depends on the
					// neighbour load.
					t.access(pcDistLoad, arrDist.addr(v), mem.Load, 1, 1)
					if visited[v] != epoch {
						visited[v] = epoch
						t.access(pcDistStor, arrDist.addr(v), mem.Store, 0, 1)
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
	}
}

// dfs runs depth-first traversals (stack order) from rotating sources.
func dfs(g *Graph, t *tracer, seed uint64) {
	visited := make([]uint32, g.n)
	epoch := uint32(0)
	rng := mem.NewPRNG(seed)
	sources := make([]int, 6)
	for i := range sources {
		sources[i] = rng.Intn(g.n)
	}
	const visitBudget = 400
	for round := 0; !t.full(); round++ {
		epoch++
		stack := []int{sources[round%len(sources)]}
		visits := 0
		for len(stack) > 0 && !t.full() && visits < visitBudget {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			t.access(pcFrontier, arrFront.addr(len(stack)), mem.Load, 0, 1)
			if visited[u] == epoch {
				continue
			}
			visited[u] = epoch
			visits++
			if u%elemsPerLine4B == 0 {
				t.access(pcOffsets, arrOffsets.addr(u), mem.Load, 0, 2)
			}
			deg := g.Degree(u)
			off := g.offsetOf(u)
			for j := 0; j < deg && !t.full(); j++ {
				if (off+j)%elemsPerLine4B == 0 || j == 0 {
					t.access(pcNbr, arrNbrs.addr(off+j), mem.Load, 0, 1)
				}
				v := g.Nbr(u, j)
				t.access(pcDistLoad, arrDist.addr(v), mem.Load, 1, 1)
				if visited[v] != epoch {
					stack = append(stack, v)
					t.access(pcFrontier, arrFront.addr(len(stack)), mem.Store, 0, 1)
				}
			}
		}
	}
}

// pagerank runs power iterations; every iteration repeats the same
// traversal order, the temporal prefetcher's best case.
func pagerank(g *Graph, t *tracer, _ uint64) {
	// Iterate over a bounded vertex window so whole iterations repeat
	// within the trace budget (the temporal pattern); gathers still
	// reach across the full graph through long-range edges.
	window := g.n
	if window > 1200 {
		window = 1200
	}
	for !t.full() {
		for u := 0; u < window && !t.full(); u++ {
			if u%elemsPerLine4B == 0 {
				t.access(pcOffsets, arrOffsets.addr(u), mem.Load, 0, 2)
			}
			deg := g.Degree(u)
			off := g.offsetOf(u)
			for j := 0; j < deg && !t.full(); j++ {
				if (off+j)%elemsPerLine4B == 0 || j == 0 {
					t.access(pcNbr, arrNbrs.addr(off+j), mem.Load, 0, 1)
				}
				v := g.Nbr(u, j)
				// rank_src[v]: indirect gather.
				t.access(pcRankLoad, arrRankSrc.addr(v), mem.Load, 1, 2)
			}
			t.access(pcRankStor, arrRankDst.addr(u), mem.Store, 0, 2)
		}
	}
}

// sssp runs Bellman-Ford-style relaxation rounds with edge weights.
func sssp(g *Graph, t *tracer, seed uint64) {
	rng := mem.NewPRNG(seed)
	_ = rng.Intn(2)
	window := g.n
	if window > 2600 {
		window = 2600
	}
	// Relaxation rounds repeat over a bounded vertex window, so the
	// gather order recurs — the temporal pattern.
	start := 0
	for !t.full() {
		for w := 0; w < window && !t.full(); w++ {
			u := start + w
			if u >= g.n {
				u -= g.n
			}
			if u%elemsPerLine4B == 0 {
				t.access(pcOffsets, arrOffsets.addr(u), mem.Load, 0, 2)
			}
			t.access(pcDistLoad, arrDist.addr(u), mem.Load, 0, 1)
			deg := g.Degree(u)
			off := g.offsetOf(u)
			for j := 0; j < deg && !t.full(); j++ {
				if (off+j)%elemsPerLine4B == 0 || j == 0 {
					t.access(pcNbr, arrNbrs.addr(off+j), mem.Load, 0, 1)
					t.access(pcWeight, arrWeights.addr(off+j), mem.Load, 0, 1)
				}
				v := g.Nbr(u, j)
				t.access(pcDistStor, arrDist.addr(v), mem.Load, 2, 1)
				if g.hash(uint64(u*31+j))&15 == 0 { // sparse relaxations
					t.access(pcDistStor, arrDist.addr(v), mem.Store, 0, 1)
				}
			}
		}
	}
}

// bc approximates Brandes betweenness centrality: forward BFS passes
// accumulating path counts, then backward dependency accumulation.
func bc(g *Graph, t *tracer, seed uint64) {
	visited := make([]uint32, g.n)
	epoch := uint32(0)
	rng := mem.NewPRNG(seed)
	sources := make([]int, 6)
	for i := range sources {
		sources[i] = rng.Intn(g.n)
	}
	for round := 0; !t.full(); round++ {
		epoch++
		src := sources[round%len(sources)]
		frontier := []int{src}
		visited[src] = epoch
		var order []int
		for len(frontier) > 0 && !t.full() && len(order) <= 400 {
			var next []int
			for _, u := range frontier {
				if t.full() || len(order) > 400 {
					break
				}
				order = append(order, u)
				if u%elemsPerLine4B == 0 {
					t.access(pcOffsets, arrOffsets.addr(u), mem.Load, 0, 2)
				}
				deg := g.Degree(u)
				off := g.offsetOf(u)
				for j := 0; j < deg && !t.full(); j++ {
					if (off+j)%elemsPerLine4B == 0 || j == 0 {
						t.access(pcNbr, arrNbrs.addr(off+j), mem.Load, 0, 1)
					}
					v := g.Nbr(u, j)
					t.access(pcSigma, arrSigma.addr(v), mem.Load, 1, 1)
					if visited[v] != epoch {
						visited[v] = epoch
						t.access(pcSigma, arrSigma.addr(v), mem.Store, 0, 1)
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		// Backward accumulation in reverse BFS order (its own loop,
		// hence its own load PC).
		for i := len(order) - 1; i >= 0 && !t.full(); i-- {
			u := order[i]
			t.access(pcSigmaBack, arrSigma.addr(u), mem.Load, 0, 1)
			t.access(pcDistStor, arrDist.addr(u), mem.Store, 0, 2)
		}
	}
}

// --- workload catalog ---

// Workload is a named graph workload.
type Workload struct {
	// Name follows Figure 15: algorithm_nodes_param.
	Name string
	// Algorithm is bfs/dfs/bc/pagerank/sssp.
	Algorithm string
	// Nodes is the vertex count.
	Nodes int
	// Param is the second name component; for bc/bfs/sssp it is the
	// average degree, for pagerank and dfs it parameterizes the input
	// scale (degree is clamped to a practical range).
	Param int
}

// degree maps the name parameter to the average degree used.
func (w Workload) degree() int {
	d := w.Param
	if d < 2 {
		d = 2
	}
	if d > 32 {
		d = 32
	}
	return d
}

// Source returns a deterministic trace of up to records memory records.
func (w Workload) Source(records uint64) mem.Source {
	if records == 0 {
		records = DefaultRecords
	}
	g := NewGraph(w.Nodes, w.degree(), uint64(w.Nodes)*37+uint64(w.Param))
	t := &tracer{limit: int(records)}
	seed := uint64(len(w.Name)) * 1009
	switch w.Algorithm {
	case "bfs":
		bfs(g, t, seed)
	case "dfs":
		dfs(g, t, seed)
	case "pagerank":
		pagerank(g, t, seed)
	case "sssp":
		sssp(g, t, seed)
	case "bc":
		bc(g, t, seed)
	default:
		panic(fmt.Sprintf("graphs: unknown algorithm %q", w.Algorithm))
	}
	return mem.NewSliceSource(t.recs)
}

// DefaultRecords matches the SPEC-like workloads' trace length.
const DefaultRecords = 220_000

// CRONO returns the nine Figure 15 workloads.
func CRONO() []Workload {
	names := []string{
		"bc_40000_10",
		"bc_56384_8",
		"bfs_100000_16",
		"bfs_80000_8",
		"bfs_90000_10",
		"dfs_800000_800",
		"dfs_900000_400",
		"pagerank_100000_100",
		"sssp_100000_5",
	}
	out := make([]Workload, 0, len(names))
	for _, n := range names {
		w, err := Parse(n)
		if err != nil {
			panic(err)
		}
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Parse decodes an algorithm_nodes_param workload name.
func Parse(name string) (Workload, error) {
	parts := strings.Split(name, "_")
	if len(parts) != 3 {
		return Workload{}, fmt.Errorf("graphs: bad workload name %q", name)
	}
	nodes, err1 := strconv.Atoi(parts[1])
	param, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || nodes <= 0 {
		return Workload{}, fmt.Errorf("graphs: bad workload name %q", name)
	}
	switch parts[0] {
	case "bfs", "dfs", "bc", "pagerank", "sssp":
	default:
		return Workload{}, fmt.Errorf("graphs: unknown algorithm %q", parts[0])
	}
	return Workload{Name: name, Algorithm: parts[0], Nodes: nodes, Param: param}, nil
}
