package graphs

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
)

func TestParse(t *testing.T) {
	w, err := Parse("bfs_100000_16")
	if err != nil {
		t.Fatal(err)
	}
	if w.Algorithm != "bfs" || w.Nodes != 100000 || w.Param != 16 {
		t.Fatalf("parsed %+v", w)
	}
	for _, bad := range []string{"bfs_x_16", "nope_10_2", "bfs_10", "bfs_-5_2", ""} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestCRONOSetMatchesFigure15(t *testing.T) {
	set := CRONO()
	if len(set) != 9 {
		t.Fatalf("CRONO set has %d workloads, want 9", len(set))
	}
	algos := map[string]int{}
	for _, w := range set {
		algos[w.Algorithm]++
	}
	if algos["bc"] != 2 || algos["bfs"] != 3 || algos["dfs"] != 2 || algos["pagerank"] != 1 || algos["sssp"] != 1 {
		t.Fatalf("algorithm mix wrong: %v", algos)
	}
}

func TestTracesDeterministic(t *testing.T) {
	for _, w := range CRONO() {
		a := mem.Collect(w.Source(3000), 0)
		b := mem.Collect(w.Source(3000), 0)
		if len(a) != 3000 {
			t.Fatalf("%s: %d records", w.Name, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: record %d differs", w.Name, i)
			}
		}
	}
}

func TestGraphDegreeBounds(t *testing.T) {
	g := NewGraph(10000, 16, 7)
	for u := 0; u < 1000; u++ {
		d := g.Degree(u)
		// Normal vertices reach 1.5x avgDeg; hubs are amplified 8x.
		if d < 1 || d > 16*12 {
			t.Fatalf("Degree(%d) = %d out of bounds", u, d)
		}
	}
	// Hubs every 64 vertices have amplified degree.
	if g.Degree(64) <= g.Degree(63)/2 {
		t.Log("hub not clearly larger; acceptable but suspicious")
	}
}

func TestNbrInRange(t *testing.T) {
	f := func(seed uint64, uRaw, jRaw uint16) bool {
		g := NewGraph(5000, 8, seed)
		v := g.Nbr(int(uRaw)%5000, int(jRaw)%32)
		return v >= 0 && v < 5000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTraversalsRepeat(t *testing.T) {
	// BFS from a cycling source pool revisits the same gather sequences —
	// the temporal pattern. Verify meaningful address repetition exists.
	w, _ := Parse("bfs_50000_8")
	recs := mem.Collect(w.Source(60000), 0)
	seen := map[mem.Addr]int{}
	repeats := 0
	for _, r := range recs {
		seen[r.Addr]++
		if seen[r.Addr] == 2 {
			repeats++
		}
	}
	if repeats < 1000 {
		t.Fatalf("only %d addresses repeat; traversal repetition missing", repeats)
	}
}

func TestIndirectGathersCarryDeps(t *testing.T) {
	w, _ := Parse("bfs_50000_8")
	recs := mem.Collect(w.Source(20000), 0)
	deps := 0
	for _, r := range recs {
		if r.Dep != 0 {
			deps++
		}
	}
	if deps < len(recs)/4 {
		t.Fatalf("only %d/%d dependent records; gathers must depend on neighbour loads", deps, len(recs))
	}
}

func TestKernelScansAreStrided(t *testing.T) {
	w, _ := Parse("pagerank_20000_16")
	recs := mem.Collect(w.Source(20000), 0)
	var nbrAddrs []mem.Addr
	for _, r := range recs {
		if r.PC == pcNbr {
			nbrAddrs = append(nbrAddrs, r.Addr)
		}
	}
	if len(nbrAddrs) < 100 {
		t.Fatalf("only %d nbr kernel accesses", len(nbrAddrs))
	}
	mono := 0
	for i := 1; i < len(nbrAddrs); i++ {
		if nbrAddrs[i] > nbrAddrs[i-1] {
			mono++
		}
	}
	// Rows overlap where deg(u) exceeds the average and each iteration
	// restarts the sweep, so ascent is predominant, not total.
	if float64(mono)/float64(len(nbrAddrs)) < 0.6 {
		t.Fatalf("nbr kernel not predominantly ascending (%d/%d)", mono, len(nbrAddrs))
	}
}

func TestAlgorithmsCoverAllPCs(t *testing.T) {
	cases := map[string][]mem.Addr{
		"bfs_20000_8":      {pcOffsets, pcNbr, pcDistLoad, pcDistStor},
		"dfs_20000_8":      {pcOffsets, pcNbr, pcDistLoad, pcFrontier},
		"pagerank_20000_8": {pcOffsets, pcNbr, pcRankLoad, pcRankStor},
		"sssp_20000_5":     {pcOffsets, pcNbr, pcWeight, pcDistLoad, pcDistStor},
		"bc_20000_8":       {pcOffsets, pcNbr, pcSigma, pcSigmaBack},
	}
	for name, pcs := range cases {
		w, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		recs := mem.Collect(w.Source(30000), 0)
		seen := map[mem.Addr]bool{}
		for _, r := range recs {
			seen[r.PC] = true
		}
		for _, pc := range pcs {
			if !seen[pc] {
				t.Errorf("%s: load site %#x never executed", name, uint64(pc))
			}
		}
	}
}

func TestUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown algorithm should panic in Source")
		}
	}()
	w := Workload{Name: "x", Algorithm: "zzz", Nodes: 10, Param: 2}
	w.Source(10)
}

func TestDegreeClamp(t *testing.T) {
	w := Workload{Name: "dfs_800000_800", Algorithm: "dfs", Nodes: 800000, Param: 800}
	if d := w.degree(); d != 32 {
		t.Fatalf("degree clamp = %d, want 32", d)
	}
	w.Param = 1
	if d := w.degree(); d != 2 {
		t.Fatalf("degree floor = %d, want 2", d)
	}
}
