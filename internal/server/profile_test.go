// Tests for the profiling surface: the /v1/profile capture-window endpoints
// (single-window invariant, raw-bytes response, disk persistence) and the
// /debug/pprof mounts. These drive the real runtime/pprof CPU profiler, so
// they must not overlap another CPU profile in this test binary.
package server

import (
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"prophet/internal/pcapture"
)

func TestProfileCaptureEndpoints(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{Capturer: pcapture.New(pcapture.Options{Dir: dir})})

	// Stop with no window open is a conflict.
	code, body := post(t, ts, "/v1/profile/stop", "")
	if code != http.StatusConflict {
		t.Fatalf("stop while idle = %d %s, want 409", code, body)
	}

	// A named start opens a window; the name comes back sanitized.
	code, body = post(t, ts, "/v1/profile/start", `{"name":"mcf prophet 4x4"}`)
	if code != http.StatusOK || !strings.Contains(string(body), `"mcf-prophet-4x4"`) {
		t.Fatalf("start = %d %s", code, body)
	}

	// A second start while the window is open is a conflict naming the
	// active window.
	code, body = post(t, ts, "/v1/profile/start", "")
	if code != http.StatusConflict || !strings.Contains(string(body), "mcf-prophet-4x4") {
		t.Fatalf("double start = %d %s, want 409 naming the window", code, body)
	}

	// The window shows up in /v1/stats.
	if st := stats(t, ts); !st.Profile.Active || st.Profile.ActiveName != "mcf-prophet-4x4" {
		t.Fatalf("stats profile = %+v", st.Profile)
	}

	// Generate a little load inside the window so the profile has samples.
	for i := 0; i < 3; i++ {
		post(t, ts, "/v1/evaluate", `{"workload":"mcf","scheme":"prophet","records":2000}`)
	}

	// Stop returns the raw pprof bytes, names the capture in headers, and
	// reports the server-side path.
	resp, err := http.Post(ts.URL+"/v1/profile/stop", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stop = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	if got := resp.Header.Get("X-Profile-Name"); got != "mcf-prophet-4x4" {
		t.Errorf("X-Profile-Name = %q", got)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "mcf-prophet-4x4.pprof") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	path := resp.Header.Get("X-Profile-Path")
	if path == "" {
		t.Fatal("X-Profile-Path missing despite a configured profile dir")
	}
	disk, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("persisted profile: %v", err)
	}

	// The response body is the same profile that was persisted, and it
	// parses with the native codec.
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(disk) {
		t.Error("response bytes differ from the persisted file")
	}
	info, err := pcapture.ReadInfo(disk)
	if err != nil {
		t.Fatalf("captured profile does not parse: %v", err)
	}
	if len(info.SampleTypes) != 2 || info.SampleTypes[1] != "cpu/nanoseconds" {
		t.Errorf("sample types = %v", info.SampleTypes)
	}

	// The capture counter advanced and the window closed.
	if st := stats(t, ts); st.Profile.Active || st.Profile.Captures != 1 || st.Profile.LastPath != path {
		t.Errorf("stats profile after stop = %+v", st.Profile)
	}

	// Malformed body is a 400, not a started window.
	code, body = post(t, ts, "/v1/profile/start", `{"nope":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad body = %d %s, want 400", code, body)
	}
	if st := stats(t, ts); st.Profile.Active {
		t.Error("rejected start left a window open")
	}

	// An anonymous start defaults the window name.
	code, body = post(t, ts, "/v1/profile/start", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"capture"`) {
		t.Fatalf("anonymous start = %d %s", code, body)
	}
	if code, _ := post(t, ts, "/v1/profile/stop", ""); code != http.StatusOK {
		t.Fatalf("final stop = %d", code)
	}
}

func TestProfileDefaultCapturer(t *testing.T) {
	// With no Capturer configured the endpoints still work memory-only:
	// bytes come back, nothing is persisted.
	_, ts := newTestServer(t, Config{})
	if code, body := post(t, ts, "/v1/profile/start", ""); code != http.StatusOK {
		t.Fatalf("start = %d %s", code, body)
	}
	resp, err := http.Post(ts.URL+"/v1/profile/stop", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stop = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Profile-Path"); got != "" {
		t.Errorf("memory-only capture reported a path: %q", got)
	}
}

func TestDebugPprofEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := get(t, ts, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
	// Named profiles route through the index handler's trailing-slash mount.
	if code, _ := get(t, ts, "/debug/pprof/heap"); code != http.StatusOK {
		t.Errorf("heap profile = %d", code)
	}
	if code, _ := get(t, ts, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("cmdline = %d", code)
	}
	if code, _ := get(t, ts, "/debug/pprof/symbol"); code != http.StatusOK {
		t.Errorf("symbol = %d", code)
	}
}
