package server

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"
)

// CacheStats is a point-in-time snapshot of the serving cache, surfaced at
// GET /v1/stats. Each cache-routed request lands in exactly one tier:
// Hits+DiskHits+Misses+Coalesced equals the number of routed requests, and
// Misses equals the number of computations actually executed for them
// (coalesced requests piggybacked on a leader in flight — whether that
// leader ultimately hit disk or computed, they count only as coalesced).
type CacheStats struct {
	Hits      int64 `json:"hits"`
	DiskHits  int64 `json:"diskHits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Expired   int64 `json:"expired"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// cacheEntry is one cached (or in-flight) computation. While pending, done
// is open and waiters block on it; val/err are written exactly once, before
// done closes, so post-close reads need no lock.
type cacheEntry struct {
	key     string
	pending bool
	done    chan struct{}
	val     any
	err     error
	expires time.Time
	elem    *list.Element
}

// resultCache is the serving-side result cache above the engine: an LRU
// with TTL expiry, keyed by canonicalized request, where duplicate
// in-flight requests coalesce onto one computation (singleflight). It
// extends the per-workload baseline cache pattern of internal/pipeline one
// layer up: the baseline cache amortizes the denominator of one evaluator,
// this cache amortizes whole request results across HTTP clients.
type resultCache struct {
	max int           // max entries; <= 0 means unbounded
	ttl time.Duration // entry lifetime; <= 0 means never expires
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits, diskHits, misses, coalesced, expired, evictions int64
}

func newResultCache(max int, ttl time.Duration, now func() time.Time) *resultCache {
	if now == nil {
		now = time.Now
	}
	return &resultCache{
		max:     max,
		ttl:     ttl,
		now:     now,
		entries: map[string]*cacheEntry{},
		lru:     list.New(),
	}
}

// Do returns the cached value for key, consulting tiers in order: the
// in-memory entry, then the optional disk tier (nil disk skips it), then
// compute. Concurrent calls for the same key resolve it exactly once: the
// first caller becomes the leader, the rest block until it finishes (or
// their ctx is cancelled) and share the result — the pending entry is
// registered before the disk probe, so coalescing covers the disk window
// too. Failed computations are not cached, so the next request retries.
//
// Tier accounting happens once per request, on completion: the leader
// counts exactly one of diskHits/misses depending on where the value came
// from, and waiters count only coalesced — a disk hit is never also a
// miss, and waiters on a computation that later fails are not re-counted
// anywhere else.
func (c *resultCache) Do(ctx context.Context, key string, disk func() (any, bool), compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.pending {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-e.done:
				return e.val, e.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if c.ttl <= 0 || c.now().Before(e.expires) {
			c.hits++
			c.lru.MoveToFront(e.elem)
			c.mu.Unlock()
			return e.val, e.err
		}
		c.expired++
		c.remove(e)
	}
	e := &cacheEntry{key: key, pending: true, done: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	var val any
	var err error
	fromDisk := false
	if disk != nil {
		func() {
			// A panicking probe degrades to a recompute, exactly like a
			// corrupt store entry; it must not leave waiters blocked.
			defer func() { _ = recover() }()
			val, fromDisk = disk()
		}()
	}
	if !fromDisk {
		val, err = func() (v any, err error) {
			// A panicking compute must not leave waiters blocked forever.
			defer func() {
				if p := recover(); p != nil {
					err = fmt.Errorf("server: compute panicked: %v", p)
				}
			}()
			return compute()
		}()
	}

	c.mu.Lock()
	if fromDisk {
		c.diskHits++
	} else {
		c.misses++
	}
	e.val, e.err = val, err
	e.pending = false
	if err != nil {
		c.remove(e)
	} else {
		if c.ttl > 0 {
			e.expires = c.now().Add(c.ttl)
		}
		c.evict()
	}
	close(e.done)
	c.mu.Unlock()
	return val, err
}

// remove unlinks an entry. Callers hold c.mu.
func (c *resultCache) remove(e *cacheEntry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
}

// evict drops least-recently-used completed entries until the cache fits
// its bound. Pending entries are never evicted — their waiters hold
// references. Callers hold c.mu.
func (c *resultCache) evict() {
	if c.max <= 0 {
		return
	}
	for el := c.lru.Back(); el != nil && c.lru.Len() > c.max; {
		e := el.Value.(*cacheEntry)
		el = el.Prev()
		if e.pending {
			continue
		}
		c.remove(e)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		DiskHits:  c.diskHits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Expired:   c.expired,
		Evictions: c.evictions,
		Entries:   len(c.entries),
	}
}
