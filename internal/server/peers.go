// Elastic fleet membership: the /v1/peers resource lets prophetd workers
// join and leave a coordinator's sweep fleet at runtime. A worker started
// with -join POSTs its advertised URL periodically as a heartbeat; the
// coordinator registers it with the evaluator's dispatcher and expires it
// after PeerTTL without one, so a crashed worker drains automatically —
// its queued chunks reroute to survivors and its in-flight batches fail
// over, never losing or duplicating a job. Peers from the static -peers
// flag are registered as permanent: they never expire (no heartbeat is
// expected of them) but can still be drained explicitly with DELETE.
package server

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"
)

// peerEntry is the registry's record of one fleet member.
type peerEntry struct {
	static   bool // configured at startup; exempt from TTL expiry
	lastSeen time.Time
}

// peerRegistry tracks fleet membership and heartbeats for one server. The
// evaluator's dispatcher holds the authoritative live fleet; the registry
// adds the lifecycle metadata (who is static, who heartbeated when) and
// drives expiry.
type peerRegistry struct {
	mu    sync.Mutex
	peers map[string]*peerEntry
	ttl   time.Duration
	now   func() time.Time
}

func newPeerRegistry(ttl time.Duration, now func() time.Time, static []string) *peerRegistry {
	r := &peerRegistry{peers: make(map[string]*peerEntry), ttl: ttl, now: now}
	for _, u := range static {
		r.peers[u] = &peerEntry{static: true, lastSeen: now()}
	}
	return r
}

// normalizePeerURL validates and canonicalizes a peer base URL.
func normalizePeerURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("url is required")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("invalid url %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("invalid url %q: need http(s)://host[:port]", raw)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// touch registers a peer or renews its heartbeat, reporting whether the
// peer is new to the registry.
func (r *peerRegistry) touch(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.peers[url]; ok {
		e.lastSeen = r.now()
		return false
	}
	r.peers[url] = &peerEntry{lastSeen: r.now()}
	return true
}

// drop deregisters a peer, reporting whether it was present.
func (r *peerRegistry) drop(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.peers[url]; !ok {
		return false
	}
	delete(r.peers, url)
	return true
}

// expired removes every dynamic peer whose heartbeat is older than the TTL
// and returns their URLs, oldest first.
func (r *peerRegistry) expired() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.ttl)
	var out []string
	for u, e := range r.peers {
		if !e.static && e.lastSeen.Before(cutoff) {
			out = append(out, u)
			delete(r.peers, u)
		}
	}
	sort.Strings(out)
	return out
}

// PeerInfo is one row of the GET /v1/peers listing.
type PeerInfo struct {
	URL string `json:"url"`
	// Static peers come from the -peers flag: drained only by explicit
	// DELETE, never by heartbeat expiry.
	Static bool `json:"static,omitempty"`
	// LastSeenSeconds is the age of the peer's last registration or
	// heartbeat.
	LastSeenSeconds float64 `json:"lastSeenSeconds"`
	// ExpiresInSeconds is the time left before heartbeat expiry drains the
	// peer; absent for static peers.
	ExpiresInSeconds float64 `json:"expiresInSeconds,omitempty"`
}

// PeersResponse is the GET /v1/peers (and POST /v1/peers) body.
type PeersResponse struct {
	// Scheduler is the coordinator's fleet scheduling strategy.
	Scheduler string `json:"scheduler"`
	// TTLSeconds is the heartbeat expiry window for dynamic peers.
	TTLSeconds float64    `json:"ttlSeconds"`
	Peers      []PeerInfo `json:"peers"`
}

// PeerJoinRequest is the POST /v1/peers body: a worker announcing (or
// re-announcing — the same request is the heartbeat) its base URL.
type PeerJoinRequest struct {
	URL string `json:"url"`
}

// reapPeers expires overdue dynamic peers and drains them from the
// dispatcher. Called lazily from the peer handlers and stats, plus
// periodically from the background reaper, so expiry happens within one
// heartbeat interval even on an otherwise idle coordinator.
func (s *Server) reapPeers() {
	for _, u := range s.peerReg.expired() {
		if s.ev.RemoveBackend(u) {
			s.logf("peer %s expired after %s without a heartbeat; drained from the fleet", u, s.peerReg.ttl)
		}
	}
}

// peersResponse snapshots the registry in dispatcher (join) order.
func (s *Server) peersResponse() PeersResponse {
	resp := PeersResponse{
		Scheduler:  s.ev.SchedulerName(),
		TTLSeconds: s.peerReg.ttl.Seconds(),
		Peers:      []PeerInfo{},
	}
	now := s.now()
	s.peerReg.mu.Lock()
	defer s.peerReg.mu.Unlock()
	for _, u := range s.ev.Backends() {
		e, ok := s.peerReg.peers[u]
		if !ok {
			// Fleet member the registry doesn't know (joined through the Go
			// API): list it as static so clients still see the whole fleet.
			resp.Peers = append(resp.Peers, PeerInfo{URL: u, Static: true})
			continue
		}
		info := PeerInfo{URL: u, Static: e.static, LastSeenSeconds: now.Sub(e.lastSeen).Seconds()}
		if !e.static {
			info.ExpiresInSeconds = e.lastSeen.Add(s.peerReg.ttl).Sub(now).Seconds()
		}
		resp.Peers = append(resp.Peers, info)
	}
	return resp
}

// handlePeersList serves GET /v1/peers.
func (s *Server) handlePeersList(w http.ResponseWriter, r *http.Request) {
	s.reapPeers()
	writeJSON(w, http.StatusOK, s.peersResponse())
}

// handlePeerJoin serves POST /v1/peers: register a worker, or renew its
// heartbeat — the same idempotent request serves both, so workers just
// re-POST on an interval comfortably inside the TTL.
func (s *Server) handlePeerJoin(w http.ResponseWriter, r *http.Request) {
	s.reapPeers()
	var req PeerJoinRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	u, err := normalizePeerURL(req.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.peerReg.touch(u)
	// AddBackend is idempotent, so a heartbeat for a known peer is a no-op
	// here — and a peer the dispatcher somehow lost (e.g. drained through
	// the Go API while still heartbeating) rejoins on its next beat.
	if s.ev.AddBackend(u) {
		s.logf("peer %s joined the fleet (ttl %s)", u, s.peerReg.ttl)
	}
	writeJSON(w, http.StatusOK, s.peersResponse())
}

// handlePeerLeave serves DELETE /v1/peers?url=...: an explicit drain, for
// workers shutting down gracefully (or operators removing a static peer).
// The peer stops receiving chunks immediately; batches it was still
// retrying fail over to the coordinator's engine.
func (s *Server) handlePeerLeave(w http.ResponseWriter, r *http.Request) {
	s.reapPeers()
	u, err := normalizePeerURL(r.URL.Query().Get("url"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	known := s.peerReg.drop(u)
	if s.ev.RemoveBackend(u) {
		s.logf("peer %s drained from the fleet", u)
		known = true
	}
	if !known {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown peer %q", u))
		return
	}
	writeJSON(w, http.StatusOK, s.peersResponse())
}

// reapLoop expires overdue peers in the background so a dead worker drains
// within roughly one heartbeat interval even when no requests arrive.
func (s *Server) reapLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case <-t.C:
			s.reapPeers()
		}
	}
}
