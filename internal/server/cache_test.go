package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutable time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCacheHitMissAndTTL(t *testing.T) {
	clk := newFakeClock()
	c := newResultCache(8, time.Minute, clk.Now)
	var computes atomic.Int64
	get := func() (any, error) {
		v, err := c.Do(context.Background(), "k", nil, func() (any, error) {
			computes.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, err
	}

	if v, _ := get(); v != 42 {
		t.Fatalf("got %v, want 42", v)
	}
	if v, _ := get(); v != 42 {
		t.Fatalf("got %v, want 42", v)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1 (second call must hit)", n)
	}

	clk.Advance(2 * time.Minute)
	get()
	if n := computes.Load(); n != 2 {
		t.Fatalf("computed %d times after TTL expiry, want 2", n)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Expired != 1 {
		t.Fatalf("stats %+v, want hits=1 misses=2 expired=1", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0, nil)
	ctx := context.Background()
	compute := func(v int) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	c.Do(ctx, "a", nil, compute(1))
	c.Do(ctx, "b", nil, compute(2))
	c.Do(ctx, "a", nil, compute(0)) // touch a: b becomes LRU
	c.Do(ctx, "c", nil, compute(3)) // evicts b
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats %+v, want entries=2 evictions=1", st)
	}
	var recomputed atomic.Bool
	v, _ := c.Do(ctx, "a", nil, func() (any, error) { recomputed.Store(true); return -1, nil })
	if recomputed.Load() || v != 1 {
		t.Fatalf("a was evicted (got %v, recomputed=%v); LRU should have kept it", v, recomputed.Load())
	}
	if _, err := c.Do(ctx, "b", nil, func() (any, error) { return nil, errors.New("recompute b") }); err == nil {
		t.Fatal("b survived eviction")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, err := c.Do(ctx, "k", nil, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, err := c.Do(ctx, "k", nil, func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after error: v=%v err=%v", v, err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("stats %+v: failed compute must not occupy the cache", st)
	}
}

func TestCacheCoalescing(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	const waiters = 7
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, waiters+1)
	do := func(i int) {
		defer wg.Done()
		v, err := c.Do(context.Background(), "k", nil, func() (any, error) {
			computes.Add(1)
			close(started)
			<-release
			return "shared", nil
		})
		if err != nil {
			t.Error(err)
		}
		results[i] = v
	}
	wg.Add(1)
	go do(0)
	<-started
	// The leader is now inside compute: every new request must coalesce.
	wg.Add(waiters)
	for i := 1; i <= waiters; i++ {
		go do(i)
	}
	// Wait until all waiters have registered before releasing.
	for {
		if c.Stats().Coalesced == waiters {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times for %d concurrent requests, want 1", n, waiters+1)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("request %d got %v, want shared", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters {
		t.Fatalf("stats %+v, want misses=1 coalesced=%d", st, waiters)
	}
}

func TestCacheCoalescedWaiterHonorsContext(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", nil, func() (any, error) {
		close(started)
		<-release
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, "k", nil, func() (any, error) { return 2, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestCacheDiskTierOrdering(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	ctx := context.Background()
	var computes, probes atomic.Int64
	disk := func(v any, ok bool) func() (any, bool) {
		return func() (any, bool) { probes.Add(1); return v, ok }
	}
	compute := func(v any) func() (any, error) {
		return func() (any, error) { computes.Add(1); return v, nil }
	}

	// Disk hit: compute never runs, counted as a disk hit, not a miss.
	if v, err := c.Do(ctx, "k", disk("from-disk", true), compute("computed")); err != nil || v != "from-disk" {
		t.Fatalf("disk hit returned (%v, %v)", v, err)
	}
	if computes.Load() != 0 {
		t.Fatal("compute ran despite a disk hit")
	}
	// The disk hit populated the memory tier: next request must not probe.
	if v, _ := c.Do(ctx, "k", disk(nil, false), compute("computed")); v != "from-disk" {
		t.Fatalf("memory tier after disk hit returned %v", v)
	}
	if probes.Load() != 1 {
		t.Fatalf("disk probed %d times, want 1 (memory tier must answer first)", probes.Load())
	}
	// Disk miss falls through to compute.
	if v, _ := c.Do(ctx, "k2", disk(nil, false), compute("computed")); v != "computed" {
		t.Fatalf("disk miss returned %v", v)
	}
	st := c.Stats()
	if st.Hits != 1 || st.DiskHits != 1 || st.Misses != 1 || st.Coalesced != 0 {
		t.Fatalf("stats %+v, want hits=1 diskHits=1 misses=1 coalesced=0", st)
	}
}

func TestCacheDiskProbePanicDegradesToCompute(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	v, err := c.Do(context.Background(), "k",
		func() (any, bool) { panic("corrupt probe") },
		func() (any, error) { return "computed", nil })
	if err != nil || v != "computed" {
		t.Fatalf("got (%v, %v), want computed value", v, err)
	}
	if st := c.Stats(); st.DiskHits != 0 || st.Misses != 1 {
		t.Fatalf("stats %+v, want the panicking probe counted as a plain miss", st)
	}
}

// TestCacheDiskWindowCoalesces: requests arriving while the leader is
// still probing the disk tier coalesce onto it — the probe runs once.
func TestCacheDiskWindowCoalesces(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	const waiters = 4
	var probes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, waiters+1)
	do := func(i int) {
		defer wg.Done()
		v, err := c.Do(context.Background(), "k", func() (any, bool) {
			if probes.Add(1) == 1 {
				close(started)
				<-release
			}
			return "from-disk", true
		}, func() (any, error) { return nil, errors.New("must not compute") })
		if err != nil {
			t.Error(err)
		}
		results[i] = v
	}
	wg.Add(1)
	go do(0)
	<-started
	wg.Add(waiters)
	for i := 1; i <= waiters; i++ {
		go do(i)
	}
	for c.Stats().Coalesced != waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := probes.Load(); n != 1 {
		t.Fatalf("disk probed %d times for %d concurrent requests, want 1", n, waiters+1)
	}
	for i, v := range results {
		if v != "from-disk" {
			t.Fatalf("request %d got %v, want from-disk", i, v)
		}
	}
	st := c.Stats()
	if st.DiskHits != 1 || st.Misses != 0 || st.Coalesced != waiters {
		t.Fatalf("stats %+v, want diskHits=1 misses=0 coalesced=%d", st, waiters)
	}
}

// TestCacheTierAccountingOnFailure pins the accounting invariant for the
// failure path: a failing compute with coalesced waiters costs exactly one
// miss (the leader) and one coalesced count per waiter — waiters are never
// re-counted into another tier, so hits+diskHits+misses+coalesced always
// equals the number of routed requests.
func TestCacheTierAccountingOnFailure(t *testing.T) {
	c := newResultCache(8, time.Minute, nil)
	const waiters = 3
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	var failures atomic.Int64
	do := func() {
		defer wg.Done()
		_, err := c.Do(context.Background(), "k",
			func() (any, bool) { return nil, false }, // disk always misses
			func() (any, error) {
				close(started)
				<-release
				return nil, boom
			})
		if errors.Is(err, boom) {
			failures.Add(1)
		}
	}
	wg.Add(1)
	go do()
	<-started
	wg.Add(waiters)
	for i := 0; i < waiters; i++ {
		go do()
	}
	for c.Stats().Coalesced != waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if failures.Load() != waiters+1 {
		t.Fatalf("%d requests saw the error, want %d", failures.Load(), waiters+1)
	}
	st := c.Stats()
	if st.Hits != 0 || st.DiskHits != 0 || st.Misses != 1 || st.Coalesced != waiters {
		t.Fatalf("stats %+v, want exactly misses=1 coalesced=%d and nothing else", st, waiters)
	}
	if total := st.Hits + st.DiskHits + st.Misses + st.Coalesced; total != waiters+1 {
		t.Fatalf("tier counters sum to %d for %d requests", total, waiters+1)
	}
	if st.Entries != 0 {
		t.Fatalf("failed computation occupies the cache: %+v", st)
	}
}
