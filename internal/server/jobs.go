package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// JobState is an async job's lifecycle phase.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing it.
	JobRunning JobState = "running"
	// JobDone: finished successfully; Result is set.
	JobDone JobState = "done"
	// JobFailed: finished with a non-cancellation error.
	JobFailed JobState = "failed"
	// JobCanceled: cancelled before or during execution (shutdown).
	JobCanceled JobState = "canceled"
)

// JobInfo is the externally visible state of one async job, as returned by
// GET /v1/jobs/{id}.
type JobInfo struct {
	ID       string    `json:"id"`
	Kind     string    `json:"kind"`
	State    JobState  `json:"state"`
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	Error    string    `json:"error,omitempty"`
	Result   any       `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (i JobInfo) Terminal() bool {
	return i.State == JobDone || i.State == JobFailed || i.State == JobCanceled
}

// ErrQueueFull is returned by Submit when the bounded queue is at capacity;
// the HTTP layer maps it to 503 so clients back off instead of piling up.
var ErrQueueFull = errors.New("server: job queue full")

// ErrShuttingDown is returned by Submit after Shutdown began.
var ErrShuttingDown = errors.New("server: shutting down")

type job struct {
	info JobInfo
	fn   func(ctx context.Context) (any, error)
}

// jobStore runs async jobs on a fixed worker pool over a bounded queue.
// Jobs execute under the store's lifecycle context: Shutdown cancels it, so
// queued jobs die quickly as workers drain them and in-flight jobs observe
// cancellation at their next context check (the sweep engine checks per
// job-dispatch; individual simulations run to completion).
type jobStore struct {
	queue   chan *job
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	running atomic.Int64
	now     func() time.Time
	retain  int

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	seq    int
	closed bool
}

func newJobStore(workers, depth, retain int, now func() time.Time) *jobStore {
	if workers <= 0 {
		workers = 2
	}
	if depth <= 0 {
		depth = 64
	}
	if retain <= 0 {
		retain = 256
	}
	if now == nil {
		now = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &jobStore{
		queue:  make(chan *job, depth),
		ctx:    ctx,
		cancel: cancel,
		now:    now,
		retain: retain,
		jobs:   map[string]*job{},
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *jobStore) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

func (s *jobStore) run(j *job) {
	if s.ctx.Err() != nil {
		s.finish(j, nil, s.ctx.Err())
		return
	}
	s.mu.Lock()
	j.info.State = JobRunning
	j.info.Started = s.now()
	s.mu.Unlock()
	s.running.Add(1)
	val, err := func() (v any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("server: job panicked: %v", p)
			}
		}()
		return j.fn(s.ctx)
	}()
	s.running.Add(-1)
	s.finish(j, val, err)
}

func (s *jobStore) finish(j *job, val any, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.info.Finished = s.now()
	switch {
	case err == nil:
		j.info.State = JobDone
		j.info.Result = val
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.info.State = JobCanceled
		j.info.Error = err.Error()
	default:
		j.info.State = JobFailed
		j.info.Error = err.Error()
	}
	s.evict()
}

// evict drops the oldest terminal jobs (and their Result payloads) beyond
// the retention bound, so a long-lived daemon under steady async traffic
// holds a window of history instead of every sweep ever run. Live
// (queued/running) jobs are never evicted. Callers hold s.mu.
func (s *jobStore) evict() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].info.Terminal() {
			terminal++
		}
	}
	if terminal <= s.retain {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if terminal > s.retain && s.jobs[id].info.Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Submit enqueues fn as a new job and returns its ID without waiting. The
// queue is bounded: at capacity, Submit fails fast with ErrQueueFull rather
// than blocking the caller's connection.
func (s *jobStore) Submit(kind string, fn func(ctx context.Context) (any, error)) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrShuttingDown
	}
	id := fmt.Sprintf("job-%d", s.seq+1)
	j := &job{
		info: JobInfo{ID: id, Kind: kind, State: JobQueued, Created: s.now()},
		fn:   fn,
	}
	// Reserve the queue slot before registering: a worker may pick the job
	// up immediately, but its state writes serialize behind this lock, so
	// the job is always registered before any observable transition.
	select {
	case s.queue <- j:
	default:
		return "", ErrQueueFull
	}
	s.seq++
	s.jobs[id] = j
	s.order = append(s.order, id)
	return id, nil
}

// Get returns a snapshot of one job.
func (s *jobStore) Get(id string) (JobInfo, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return j.info, true
}

// List snapshots every job in submission order.
func (s *jobStore) List() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobInfo, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].info)
	}
	return out
}

// Depth reports how many jobs are queued but not yet picked up.
func (s *jobStore) Depth() int { return len(s.queue) }

// Len reports how many jobs the store currently tracks (live + retained).
func (s *jobStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// Running reports how many jobs are executing right now.
func (s *jobStore) Running() int { return int(s.running.Load()) }

// Shutdown stops intake, cancels the lifecycle context (queued jobs are
// drained straight to canceled — by Shutdown itself, so they die even while
// every worker is busy; in-flight jobs see cancellation at their next
// context check), and waits for workers up to ctx's deadline.
func (s *jobStore) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cancel()
		close(s.queue)
	}
	s.mu.Unlock()
	// Drain whatever the workers haven't picked up. Channel receive
	// semantics guarantee each queued job lands exactly once — here or in a
	// worker's run(), which also observes the cancelled context.
	for j := range s.queue {
		s.finish(j, nil, context.Canceled)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
