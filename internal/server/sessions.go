package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"prophet"
)

// sessionResource is one Figure 5 profile→optimize→run loop exposed as a
// REST resource. The underlying prophet.Session is itself concurrency-safe;
// the resource's own mutex additionally guards the last optimized Binary
// and the profiled-workload list.
type sessionResource struct {
	id      string
	num     uint64 // numeric creation-order identity behind the id string
	created time.Time

	mu       sync.Mutex
	s        *prophet.Session
	bin      *prophet.Binary
	profiled []string
	// loops mirrors s.Loops() after each profile: introspection endpoints
	// read this snapshot so listing sessions never blocks behind a
	// long-running profiling simulation holding the session's own lock.
	loops int
}

// sessionStore registers live sessions by ID.
type sessionStore struct {
	now func() time.Time

	mu       sync.Mutex
	sessions map[string]*sessionResource
}

func newSessionStore(now func() time.Time) *sessionStore {
	if now == nil {
		now = time.Now
	}
	return &sessionStore{now: now, sessions: map[string]*sessionResource{}}
}

func (st *sessionStore) Add(s *prophet.Session) *sessionResource {
	res := &sessionResource{
		id:      fmt.Sprintf("session-%d", s.ID()),
		num:     s.ID(),
		created: st.now(),
		s:       s,
	}
	st.mu.Lock()
	st.sessions[res.id] = res
	st.mu.Unlock()
	return res
}

func (st *sessionStore) Get(id string) (*sessionResource, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	res, ok := st.sessions[id]
	return res, ok
}

func (st *sessionStore) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sessions[id]; !ok {
		return false
	}
	delete(st.sessions, id)
	return true
}

func (st *sessionStore) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

func (st *sessionStore) List() []*sessionResource {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*sessionResource, 0, len(st.sessions))
	for _, res := range st.sessions {
		out = append(out, res)
	}
	// Creation order, not lexicographic: "session-10" sorts after
	// "session-2".
	sort.Slice(out, func(i, j int) bool { return out[i].num < out[j].num })
	return out
}

// BinaryInfo summarizes an optimized Binary in a reply.
type BinaryInfo struct {
	PCHints    int  `json:"pcHints"`
	MetaWays   int  `json:"metaWays"`
	TPDisabled bool `json:"tpDisabled"`
}

// SessionInfo is the GET /v1/sessions/{id} body.
type SessionInfo struct {
	ID       string      `json:"id"`
	Created  time.Time   `json:"created"`
	Loops    int         `json:"loops"`
	Profiled []string    `json:"profiled,omitempty"`
	Binary   *BinaryInfo `json:"binary,omitempty"`
}

func (res *sessionResource) info() SessionInfo {
	res.mu.Lock()
	defer res.mu.Unlock()
	out := SessionInfo{
		ID:       res.id,
		Created:  res.created,
		Loops:    res.loops,
		Profiled: append([]string(nil), res.profiled...),
	}
	if res.bin != nil {
		out.Binary = &BinaryInfo{
			PCHints:    res.bin.PCHints,
			MetaWays:   res.bin.MetaWays,
			TPDisabled: res.bin.TPDisabled,
		}
	}
	return out
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	res := s.sess.Add(s.ev.NewSession())
	writeJSON(w, http.StatusCreated, res.info())
}

// SessionsResponse is the GET /v1/sessions body.
type SessionsResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	list := s.sess.List()
	resp := SessionsResponse{Sessions: make([]SessionInfo, 0, len(list))}
	for _, res := range list {
		resp.Sessions = append(resp.Sessions, res.info())
	}
	writeJSON(w, http.StatusOK, resp)
}

// session resolves the path's session or writes a 404.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*sessionResource, bool) {
	id := r.PathValue("id")
	res, ok := s.sess.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
	}
	return res, ok
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	res, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, res.info())
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sess.Delete(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", r.PathValue("id")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// SessionProfileRequest is the POST /v1/sessions/{id}/profile body: one
// input for Steps 1+3 of the Figure 5 loop.
type SessionProfileRequest struct {
	Workload WorkloadRef `json:"workload"`
}

func (s *Server) handleSessionProfile(w http.ResponseWriter, r *http.Request) {
	res, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SessionProfileRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	wl := req.Workload.workload()
	if wl.Name == "" {
		writeError(w, http.StatusBadRequest, "workload.name is required")
		return
	}
	if err := res.s.Profile(wl); err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	loops := res.s.Loops()
	res.mu.Lock()
	res.profiled = append(res.profiled, wl.Name)
	if loops > res.loops {
		res.loops = loops
	}
	res.mu.Unlock()
	writeJSON(w, http.StatusOK, res.info())
}

func (s *Server) handleSessionOptimize(w http.ResponseWriter, r *http.Request) {
	res, ok := s.session(w, r)
	if !ok {
		return
	}
	bin := res.s.Optimize()
	res.mu.Lock()
	res.bin = &bin
	res.mu.Unlock()

	// The full hint list rides along so clients can inspect what would be
	// injected into the binary (Section 4.4), heaviest contributors first.
	type hintJSON struct {
		PC       string `json:"pc"`
		Insert   bool   `json:"insert"`
		Priority int    `json:"priority"`
		Misses   uint64 `json:"misses"`
	}
	hints := bin.Hints()
	out := struct {
		Binary BinaryInfo `json:"binary"`
		Hints  []hintJSON `json:"hints"`
	}{
		Binary: BinaryInfo{PCHints: bin.PCHints, MetaWays: bin.MetaWays, TPDisabled: bin.TPDisabled},
		Hints:  make([]hintJSON, 0, len(hints)),
	}
	for _, h := range hints {
		out.Hints = append(out.Hints, hintJSON{
			PC:       fmt.Sprintf("%#x", h.PC),
			Insert:   h.Insert,
			Priority: h.Priority,
			Misses:   h.Misses,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// SessionRunRequest is the POST /v1/sessions/{id}/run body: execute the
// last optimized binary on a workload.
type SessionRunRequest struct {
	Workload WorkloadRef `json:"workload"`
}

// SessionRunResponse is the POST /v1/sessions/{id}/run reply.
type SessionRunResponse struct {
	Workload WorkloadRef      `json:"workload"`
	Binary   BinaryInfo       `json:"binary"`
	Stats    prophet.RunStats `json:"stats"`
}

func (s *Server) handleSessionRun(w http.ResponseWriter, r *http.Request) {
	res, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SessionRunRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	wl := req.Workload.workload()
	if wl.Name == "" {
		writeError(w, http.StatusBadRequest, "workload.name is required")
		return
	}
	res.mu.Lock()
	bin := res.bin
	res.mu.Unlock()
	if bin == nil {
		writeError(w, http.StatusConflict, "session has no optimized binary: POST …/optimize first")
		return
	}
	stats, err := res.s.Run(r.Context(), *bin, wl)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SessionRunResponse{
		Workload: req.Workload,
		Binary:   BinaryInfo{PCHints: bin.PCHints, MetaWays: bin.MetaWays, TPDisabled: bin.TPDisabled},
		Stats:    stats,
	})
}

// SessionAdaptRequest is the POST /v1/sessions/{id}/adapt body: run a
// workload in online-adaptation mode (no profiling, no optimized binary —
// the phase-adaptive wrapper picks engines at runtime).
type SessionAdaptRequest struct {
	Workload WorkloadRef `json:"workload"`
}

// SessionAdaptResponse is the POST /v1/sessions/{id}/adapt reply.
type SessionAdaptResponse struct {
	Workload WorkloadRef         `json:"workload"`
	Stats    prophet.OnlineStats `json:"stats"`
}

func (s *Server) handleSessionAdapt(w http.ResponseWriter, r *http.Request) {
	res, ok := s.session(w, r)
	if !ok {
		return
	}
	var req SessionAdaptRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	wl := req.Workload.workload()
	if wl.Name == "" {
		writeError(w, http.StatusBadRequest, "workload.name is required")
		return
	}
	stats, err := res.s.RunOnline(r.Context(), wl)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SessionAdaptResponse{Workload: req.Workload, Stats: stats})
}
