// Fleet coordination tests: the /v1/health probe surface, elastic peer
// membership through /v1/peers (join, heartbeat renewal, TTL expiry,
// explicit drain), and streaming sweep delivery — including the contract
// that streamed rows, merged by index, reproduce the buffered response
// byte-for-byte.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prophet"

	"prophet/internal/registry"
)

func TestHealthEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	code, b := get(t, ts, "/v1/health")
	if code != http.StatusOK {
		t.Fatalf("/v1/health: %d %s", code, b)
	}
	var h prophet.Health
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.Version != prophet.Version() {
		t.Errorf("version %q, want %q", h.Version, prophet.Version())
	}
	if h.Engine != s.ev.StoreFingerprint() {
		t.Errorf("engine fingerprint %q, want %q", h.Engine, s.ev.StoreFingerprint())
	}
	if h.Workers < 1 {
		t.Errorf("workers %d, want >= 1", h.Workers)
	}
	if h.InFlight != 0 || h.QueueDepth != 0 || h.Peers != 0 {
		t.Errorf("idle daemon reported inFlight=%d queueDepth=%d peers=%d", h.InFlight, h.QueueDepth, h.Peers)
	}
}

// TestHealthInFlight pins that the probe sees engine work while it runs:
// least-loaded scheduling is only as good as this signal.
func TestHealthInFlight(t *testing.T) {
	arrived := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		once.Do(func() { close(arrived) })
		<-release
		return registry.Result{Stats: ctx.Baseline()}, nil
	})
	t.Cleanup(func() { setTestScheme(nil) })

	_, ts := newTestServer(t, Config{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		post(t, ts, "/v1/sweep", `{"workloads":[{"name":"sphinx3","records":20000}],"schemes":["server-test"]}`)
	}()
	<-arrived

	_, b := get(t, ts, "/v1/health")
	var h prophet.Health
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.InFlight < 1 {
		t.Errorf("inFlight %d during a running sweep, want >= 1", h.InFlight)
	}
	close(release)
	<-done

	_, b = get(t, ts, "/v1/health")
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h.InFlight != 0 {
		t.Errorf("inFlight %d after the sweep finished, want 0", h.InFlight)
	}
}

func peersOf(t *testing.T, b []byte) PeersResponse {
	t.Helper()
	var pr PeersResponse
	if err := json.Unmarshal(b, &pr); err != nil {
		t.Fatalf("peers response %s: %v", b, err)
	}
	return pr
}

func TestPeerJoinHeartbeatAndExpiry(t *testing.T) {
	clock := newFakeClock()
	ev := prophet.New()
	_, ts := newTestServer(t, Config{Evaluator: ev, PeerTTL: 10 * time.Second, Now: clock.Now, Logf: t.Logf})

	// Join: the peer lands in both the registry and the dispatcher fleet.
	code, b := post(t, ts, "/v1/peers", `{"url":"http://worker-a:8373/"}`)
	if code != http.StatusOK {
		t.Fatalf("join: %d %s", code, b)
	}
	pr := peersOf(t, b)
	if len(pr.Peers) != 1 || pr.Peers[0].URL != "http://worker-a:8373" || pr.Peers[0].Static {
		t.Fatalf("after join: %+v", pr.Peers)
	}
	if pr.TTLSeconds != 10 {
		t.Errorf("ttlSeconds %v, want 10", pr.TTLSeconds)
	}
	if got := ev.Backends(); len(got) != 1 || got[0] != "http://worker-a:8373" {
		t.Fatalf("dispatcher fleet after join: %v", got)
	}

	// A heartbeat inside the TTL renews: the peer survives past the
	// original deadline.
	clock.Advance(8 * time.Second)
	post(t, ts, "/v1/peers", `{"url":"http://worker-a:8373"}`)
	clock.Advance(8 * time.Second)
	_, b = get(t, ts, "/v1/peers")
	if pr = peersOf(t, b); len(pr.Peers) != 1 {
		t.Fatalf("renewed peer expired early: %+v", pr.Peers)
	}
	if age := pr.Peers[0].LastSeenSeconds; age != 8 {
		t.Errorf("lastSeenSeconds %v, want 8", age)
	}

	// No heartbeat past the TTL: the next touch of the registry drains the
	// peer from the dispatcher.
	clock.Advance(3 * time.Second)
	_, b = get(t, ts, "/v1/peers")
	if pr = peersOf(t, b); len(pr.Peers) != 0 {
		t.Fatalf("expired peer still listed: %+v", pr.Peers)
	}
	if got := ev.Backends(); len(got) != 0 {
		t.Fatalf("dispatcher fleet after expiry: %v", got)
	}
}

func TestPeerStaticLifecycle(t *testing.T) {
	clock := newFakeClock()
	ev := prophet.New(prophet.WithBackends("http://static-a:8373"))
	_, ts := newTestServer(t, Config{Evaluator: ev, PeerTTL: 5 * time.Second, Now: clock.Now, Logf: t.Logf})

	// Static peers never expire, no matter how stale.
	clock.Advance(time.Hour)
	_, b := get(t, ts, "/v1/peers")
	pr := peersOf(t, b)
	if len(pr.Peers) != 1 || !pr.Peers[0].Static {
		t.Fatalf("static peer missing after an hour: %+v", pr.Peers)
	}

	// ...but an explicit drain removes them.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/peers?url=http://static-a:8373", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	if got := ev.Backends(); len(got) != 0 {
		t.Fatalf("fleet after drain: %v", got)
	}

	// Draining an unknown peer is a 404.
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second drain: %d, want 404", resp.StatusCode)
	}
}

func TestPeerJoinValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{`{}`, `{"url":""}`, `{"url":"ftp://x"}`, `{"url":"not a url"}`, `{"nope":1}`} {
		if code, b := post(t, ts, "/v1/peers", body); code != http.StatusBadRequest {
			t.Errorf("join %s: %d %s, want 400", body, code, b)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/peers", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("delete without url: %d, want 400", resp.StatusCode)
	}
}

var streamRowIndex = regexp.MustCompile(`^\{"index":(\d+),`)

// splitStream parses a stream body into indexed row payloads (with the
// index field stripped, as the protocol documents) and the trailer.
func splitStream(t *testing.T, body, prefix string) (map[int]string, StreamTrailer) {
	t.Helper()
	rows := make(map[int]string)
	var trailer StreamTrailer
	sawTrailer := false
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if prefix != "" {
			rest, ok := strings.CutPrefix(line, prefix)
			if !ok {
				t.Fatalf("stream line %q lacks prefix %q", line, prefix)
			}
			line = rest
		}
		if m := streamRowIndex.FindStringSubmatch(line); m != nil {
			i, _ := strconv.Atoi(m[1])
			if _, dup := rows[i]; dup {
				t.Fatalf("index %d streamed twice", i)
			}
			rows[i] = "{" + line[len(m[0]):]
			continue
		}
		if sawTrailer {
			t.Fatalf("unexpected line after trailer: %q", line)
		}
		if err := json.Unmarshal([]byte(line), &trailer); err != nil {
			t.Fatalf("trailer %q: %v", line, err)
		}
		sawTrailer = true
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer")
	}
	return rows, trailer
}

// TestSweepStreamMatchesBuffered pins the byte-identity contract end to
// end: NDJSON rows sorted by index, index stripped, must equal the
// buffered /v1/sweep results array element-for-element, byte-for-byte.
func TestSweepStreamMatchesBuffered(t *testing.T) {
	ev := prophet.New(prophet.WithBackendMaxBatch(1))
	_, ts := newTestServer(t, Config{Evaluator: ev})
	body := `{"workloads":[{"name":"sphinx3","records":20000},{"name":"xalancbmk","records":20000}],` +
		`"schemes":["baseline","triangel"],"jobs":[{"workload":{"name":"nosuch"},"scheme":"baseline"}]}`

	code, buffered := post(t, ts, "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("buffered sweep: %d %s", code, buffered)
	}
	var raw struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buffered, &raw); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	rows, trailer := splitStream(t, sb.String(), "")
	if !trailer.Done || trailer.Results != len(raw.Results) {
		t.Fatalf("trailer %+v, want done with %d results", trailer, len(raw.Results))
	}
	if len(rows) != len(raw.Results) {
		t.Fatalf("%d streamed rows, want %d", len(rows), len(raw.Results))
	}
	for i, want := range raw.Results {
		if got := rows[i]; got != string(bytes.TrimSpace(want)) {
			t.Errorf("row %d:\nstreamed %s\nbuffered %s", i, got, want)
		}
	}
}

// TestSweepStreamSSE checks the alternative framing: the same rows wrapped
// in data: lines for EventSource clients.
func TestSweepStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"workloads":[{"name":"sphinx3","records":20000}],"schemes":["baseline"]}`
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	rows, trailer := splitStream(t, sb.String(), "data: ")
	if !trailer.Done || trailer.Results != 1 || len(rows) != 1 {
		t.Fatalf("rows %v trailer %+v", rows, trailer)
	}
}

// TestSweepStreamIncremental proves streaming is actually incremental: the
// first row must be readable while a later job is still blocked inside the
// engine — a buffered response could never do that.
func TestSweepStreamIncremental(t *testing.T) {
	// With MaxBatch 1 the local stream runs one-job chunks in order, so the
	// scheme's second invocation is exactly the second job.
	release := make(chan struct{})
	var calls atomic.Int64
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		if calls.Add(1) == 2 {
			<-release
		}
		return registry.Result{Stats: ctx.Baseline()}, nil
	})
	t.Cleanup(func() { setTestScheme(nil) })
	// Guarantee the release even if an assertion fails first.
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	ev := prophet.New(prophet.WithBackendMaxBatch(1))
	_, ts := newTestServer(t, Config{Evaluator: ev})
	body := `{"workloads":[{"name":"sphinx3","records":20000},{"name":"xalancbmk","records":20000}],` +
		`"schemes":["server-test"]}`
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first row before release: %v", sc.Err())
	}
	first := sc.Text()
	if !strings.HasPrefix(first, `{"index":0,`) {
		t.Fatalf("first streamed line %q, want index 0", first)
	}
	once.Do(func() { close(release) })

	got := 1
	var trailerLine string
	for sc.Scan() {
		trailerLine = sc.Text()
		got++
	}
	if got != 3 { // two rows + trailer
		t.Fatalf("streamed %d lines, want 3", got)
	}
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(trailerLine), &trailer); err != nil || !trailer.Done {
		t.Fatalf("trailer %q (err %v), want done", trailerLine, err)
	}
}

// TestStatsReportsScheduler pins the new dispatch block of /v1/stats.
func TestStatsReportsScheduler(t *testing.T) {
	ev := prophet.New(prophet.WithScheduler("least-loaded"), prophet.WithBackends("http://w1:8373"))
	_, ts := newTestServer(t, Config{Evaluator: ev})
	st := stats(t, ts)
	if st.Dispatch.Scheduler != "least-loaded" {
		t.Errorf("stats scheduler %q, want least-loaded", st.Dispatch.Scheduler)
	}
	if len(st.Dispatch.Peers) != 1 {
		t.Errorf("stats peers %v, want one", st.Dispatch.Peers)
	}
}
