// HTTP-level tests for the durable result store tier: warm restarts answer
// from disk with byte-identical bodies and zero simulations, concurrent
// identical requests produce one computation and one store write, and the
// /v1/stats tier counters account for every routed request exactly once.
package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"prophet"

	"prophet/internal/mem"
	"prophet/internal/registry"
	"prophet/internal/resultstore"
)

// storeServer boots a server with a durable store at path, wired the way
// cmd/prophetd wires it: fingerprint from the evaluator, store attached to
// both the evaluator (write-through) and the serving layer (disk tier).
func storeServer(t *testing.T, path string) (*Server, *httptest.Server, *resultstore.Store) {
	t.Helper()
	ev := prophet.New(prophet.WithWorkers(2))
	st, err := resultstore.Open(path, resultstore.Options{Fingerprint: ev.StoreFingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ev.UseResultStore(st)
	s, ts := newTestServer(t, Config{Evaluator: ev, Store: st})
	return s, ts, st
}

const storeEvalBody = `{"workload":{"name":"sphinx3","records":20000},"scheme":"server-test"}`

// TestEvaluateWarmRestartServesFromDisk is the acceptance criterion in
// miniature: a fresh server process on the same store file answers a
// repeated evaluate from the disk tier — byte-identical body, zero
// simulations — and /v1/stats attributes the request to the disk tier.
func TestEvaluateWarmRestartServesFromDisk(t *testing.T) {
	var sims int
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		sims++
		return registry.Result{Stats: ctx.Baseline(), Meta: map[string]int{"tag": 7}}, nil
	})
	t.Cleanup(func() { setTestScheme(nil) })

	path := t.TempDir() + "/results.prst"
	_, ts, _ := storeServer(t, path)
	code, cold := post(t, ts, "/v1/evaluate", storeEvalBody)
	if code != http.StatusOK {
		t.Fatalf("cold evaluate: %d %s", code, cold)
	}
	if sims != 1 {
		t.Fatalf("cold evaluate ran %d simulations, want 1", sims)
	}
	ts.Close()

	// The warm restart: a brand-new evaluator and server on the same file.
	_, ts2, _ := storeServer(t, path)
	code, warm := post(t, ts2, "/v1/evaluate", storeEvalBody)
	if code != http.StatusOK {
		t.Fatalf("warm evaluate: %d %s", code, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm body differs from cold:\n cold %s\n warm %s", cold, warm)
	}
	if sims != 1 {
		t.Fatalf("warm evaluate simulated (%d total runs), want disk-tier answer", sims)
	}
	st := stats(t, ts2)
	if st.Tiers.Disk != 1 || st.Tiers.Computed != 0 || st.Tiers.Memory != 0 {
		t.Fatalf("tiers %+v, want exactly one disk hit", st.Tiers)
	}
	if st.Baseline.Misses != 0 {
		t.Fatalf("warm restart simulated %d baselines, want 0", st.Baseline.Misses)
	}
	if st.Store == nil || st.Store.Hits < 1 {
		t.Fatalf("store stats %+v, want reported with hits", st.Store)
	}
}

// TestConcurrentEvaluatesWriteStoreOnce: N identical concurrent requests
// coalesce onto one computation and leave exactly one store entry written
// once — and the tier counters sum to N.
func TestConcurrentEvaluatesWriteStoreOnce(t *testing.T) {
	gate := make(chan struct{})
	var sims int
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		sims++
		<-gate
		return registry.Result{Stats: ctx.Baseline()}, nil
	})
	t.Cleanup(func() { setTestScheme(nil) })

	s, ts, st := storeServer(t, t.TempDir()+"/results.prst")
	const clients = 8
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func() {
			defer wg.Done()
			code, b := post(t, ts, "/v1/evaluate", storeEvalBody)
			if code != http.StatusOK {
				t.Errorf("evaluate: %d %s", code, b)
			}
			bodies[i] = b
		}()
	}
	// Release the leader once everyone else has coalesced behind it.
	for s.cache.Stats().Coalesced != clients-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("body %d differs:\n %s\n %s", i, bodies[0], bodies[i])
		}
	}
	if sims != 1 {
		t.Fatalf("%d simulations for %d identical requests, want 1", sims, clients)
	}
	ss := st.Stats()
	if ss.Writes != 1 || ss.DupWrites != 0 || st.Len() != 1 {
		t.Fatalf("store %+v len=%d, want exactly one write and one entry", ss, st.Len())
	}
	cs := s.cache.Stats()
	if total := cs.Hits + cs.DiskHits + cs.Misses + cs.Coalesced; total != clients {
		t.Fatalf("tier counters %+v sum to %d for %d requests", cs, total, clients)
	}
	if cs.Misses != 1 || cs.Coalesced != clients-1 {
		t.Fatalf("stats %+v, want misses=1 coalesced=%d", cs, clients-1)
	}
}

// TestSweepPopulatesStoreForEvaluate pins the shared-key contract across
// entry points: a sweep's write-through satisfies a later evaluate from
// the disk tier, with no new simulation.
func TestSweepPopulatesStoreForEvaluate(t *testing.T) {
	var sims int
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		sims++
		return registry.Result{Stats: ctx.Baseline()}, nil
	})
	t.Cleanup(func() { setTestScheme(nil) })

	_, ts, st := storeServer(t, t.TempDir()+"/results.prst")
	code, b := post(t, ts, "/v1/sweep",
		`{"workloads":[{"name":"sphinx3","records":20000}],"schemes":["server-test"]}`)
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, b)
	}
	if sims != 1 || st.Len() != 1 {
		t.Fatalf("sweep: sims=%d store entries=%d, want 1/1", sims, st.Len())
	}
	code, b = post(t, ts, "/v1/evaluate", storeEvalBody)
	if code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", code, b)
	}
	if sims != 1 {
		t.Fatalf("evaluate re-simulated after sweep stored the result (sims=%d)", sims)
	}
	if cs := stats(t, ts); cs.Tiers.Disk != 1 {
		t.Fatalf("tiers %+v, want the evaluate answered from disk", cs.Tiers)
	}
}

// TestFileWorkloadsBypassTheStore: file: traces must never be persisted —
// their contents can change under the same path — and must still evaluate.
func TestFileWorkloadsBypassTheStore(t *testing.T) {
	setTestScheme(nil)
	w, err := prophet.Find("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	src, err := w.WithRecords(20_000).Open()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sphinx3.trc.gz")
	if _, err := mem.WriteTraceFile(path, src); err != nil {
		t.Fatal(err)
	}
	_, ts, st := storeServer(t, t.TempDir()+"/results.prst")
	body := fmt.Sprintf(`{"workload":{"name":"file:%s"},"scheme":"server-test"}`, path)
	code, b := post(t, ts, "/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("file evaluate: %d %s", code, b)
	}
	if st.Len() != 0 {
		t.Fatalf("file: workload was persisted (%d entries)", st.Len())
	}
}
