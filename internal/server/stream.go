// Streaming sweep delivery: POST /v1/sweep with Accept:
// application/x-ndjson (or ?stream=1), or Accept: text/event-stream (or
// ?stream=sse), emits result rows incrementally as chunks complete instead
// of buffering the whole sweep. Every row carries the job's index; rows
// arrive in completion order, so clients reconstruct the exact buffered
// response by sorting rows by index and dropping the index field — the
// payload fields are identical, in identical order, to SweepResult. A
// final trailer object ({"done":true,...}) marks a complete stream; its
// absence means the stream was cut.
package server

import (
	"encoding/json"
	"net/http"
	"strings"

	"prophet"
)

// streamMode classifies a sweep request's delivery: "ndjson", "sse", or ""
// (buffered). The query parameter wins over the Accept header, so curl
// one-liners don't need header flags.
func streamMode(r *http.Request) string {
	switch strings.ToLower(r.URL.Query().Get("stream")) {
	case "sse":
		return "sse"
	case "1", "true", "ndjson":
		return "ndjson"
	}
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, "text/event-stream") {
		return "sse"
	}
	if strings.Contains(accept, "application/x-ndjson") {
		return "ndjson"
	}
	return ""
}

// StreamRow is one streamed sweep result: Index is the job's position in
// the request's job order; the remaining fields are exactly SweepResult's,
// in the same order, so deleting the index from a row yields the
// corresponding buffered results[] element byte-for-byte.
type StreamRow struct {
	Index    int               `json:"index"`
	Workload WorkloadRef       `json:"workload"`
	Scheme   string            `json:"scheme"`
	Stats    *prophet.RunStats `json:"stats,omitempty"`
	Meta     map[string]int    `json:"meta,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// StreamTrailer terminates a sweep stream. Done false (with Error) means
// the sweep itself failed; a missing trailer means the connection was cut.
type StreamTrailer struct {
	Done    bool   `json:"done"`
	Results int    `json:"results"`
	Error   string `json:"error,omitempty"`
}

// streamSweep executes the sweep with incremental delivery. The client
// disconnecting cancels the sweep through the request context.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, jobs []prophet.Job, mode string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		// No flushing, no streaming: fall back to the buffered path rather
		// than emit rows the client would only see at the end anyway.
		resp, err := s.sweep(r.Context(), jobs)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if mode == "sse" {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush() // commit headers before the first (possibly slow) chunk

	writeEvent := func(v any) {
		// Rows and trailer share SetEscapeHTML(false) with writeJSON, so a
		// streamed row's payload bytes match the buffered response's.
		body, err := marshalNoEscape(v)
		if err != nil {
			return
		}
		if mode == "sse" {
			w.Write([]byte("data: "))
			w.Write(body)
			w.Write([]byte("\n\n"))
		} else {
			w.Write(body)
			w.Write([]byte("\n"))
		}
		flusher.Flush()
	}

	defer s.track()()
	count := 0
	err := s.ev.SweepStream(r.Context(), func(i int, res prophet.Result) {
		row := sweepRow(res)
		writeEvent(StreamRow{
			Index:    i,
			Workload: row.Workload,
			Scheme:   row.Scheme,
			Stats:    row.Stats,
			Meta:     row.Meta,
			Error:    row.Error,
		})
		count++
	}, jobs...)
	trailer := StreamTrailer{Done: err == nil, Results: count}
	if err != nil {
		trailer.Error = err.Error()
	}
	writeEvent(trailer)
}

// marshalNoEscape is json.Marshal with HTML escaping off, matching
// writeJSON's encoder settings.
func marshalNoEscape(v any) ([]byte, error) {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return []byte(strings.TrimSuffix(sb.String(), "\n")), nil
}
