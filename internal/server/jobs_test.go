package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func waitState(t *testing.T, s *jobStore, id string, want JobState) JobInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if info.State == want {
			return info
		}
		time.Sleep(time.Millisecond)
	}
	info, _ := s.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, info.State, want)
	return JobInfo{}
}

func TestJobLifecycle(t *testing.T) {
	s := newJobStore(1, 4, 0, nil)
	defer s.Shutdown(context.Background())

	id, err := s.Submit("test", func(ctx context.Context) (any, error) { return "v", nil })
	if err != nil {
		t.Fatal(err)
	}
	info := waitState(t, s, id, JobDone)
	if info.Result != "v" || info.Error != "" || !info.Terminal() {
		t.Fatalf("done job info %+v", info)
	}
	if info.Created.IsZero() || info.Started.IsZero() || info.Finished.IsZero() {
		t.Fatalf("missing timestamps: %+v", info)
	}

	id2, _ := s.Submit("test", func(ctx context.Context) (any, error) { return nil, errors.New("nope") })
	if info := waitState(t, s, id2, JobFailed); info.Error != "nope" {
		t.Fatalf("failed job info %+v", info)
	}

	if _, ok := s.Get("job-999"); ok {
		t.Fatal("unknown job id resolved")
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("List returned %d jobs, want 2", got)
	}
}

func TestJobQueueBound(t *testing.T) {
	s := newJobStore(1, 2, 0, nil)
	defer s.Shutdown(context.Background())
	block := make(chan struct{})
	defer close(block)

	running := make(chan struct{})
	s.Submit("blocker", func(ctx context.Context) (any, error) { close(running); <-block; return nil, nil })
	<-running
	// Worker busy: the queue (depth 2) absorbs exactly two more.
	if _, err := s.Submit("q1", func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("q2", func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("overflow", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if d := s.Depth(); d != 2 {
		t.Fatalf("Depth = %d, want 2", d)
	}
}

// TestJobShutdownCancelsQueued is the store-level half of acceptance
// criterion (c): shutdown drains queued jobs straight to canceled while the
// in-flight job observes a cancelled context.
func TestJobShutdownCancelsQueued(t *testing.T) {
	s := newJobStore(1, 4, 0, nil)
	release := make(chan struct{})
	running := make(chan struct{})

	inflight, _ := s.Submit("inflight", func(ctx context.Context) (any, error) {
		close(running)
		<-release
		return nil, ctx.Err() // a well-behaved job reports cancellation
	})
	<-running
	queued, _ := s.Submit("queued", func(ctx context.Context) (any, error) { return "never", nil })

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// The queued job must die without running, while the worker is still
	// blocked in the in-flight one.
	waitState(t, s, queued, JobCanceled)
	if info, _ := s.Get(inflight); info.State != JobRunning {
		t.Fatalf("in-flight job state %s before release, want running", info.State)
	}
	if _, err := s.Submit("late", nil); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit during shutdown: err = %v, want ErrShuttingDown", err)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if info, _ := s.Get(inflight); info.State != JobCanceled {
		t.Fatalf("in-flight job state %s after shutdown, want canceled (its ctx was cancelled)", info.State)
	}
}

// TestJobRetention: finished jobs beyond the retention bound are evicted
// oldest-first; live jobs are never evicted.
func TestJobRetention(t *testing.T) {
	s := newJobStore(1, 8, 2, nil)
	defer s.Shutdown(context.Background())

	var ids []string
	for i := 0; i < 4; i++ {
		id, err := s.Submit("quick", func(ctx context.Context) (any, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		waitState(t, s, id, JobDone)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatalf("oldest job %s survived retention of 2", ids[0])
	}
	if _, ok := s.Get(ids[1]); ok {
		t.Fatalf("job %s survived retention of 2", ids[1])
	}
	for _, id := range ids[2:] {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("recent job %s was evicted", id)
		}
	}
	if got := len(s.List()); got != 2 {
		t.Fatalf("List returned %d jobs, want 2", got)
	}
}

func TestJobShutdownDeadline(t *testing.T) {
	s := newJobStore(1, 4, 0, nil)
	release := make(chan struct{})
	running := make(chan struct{})
	s.Submit("stuck", func(ctx context.Context) (any, error) { close(running); <-release; return nil, nil })
	<-running

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with stuck worker: err = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
