package server

import (
	"context"
	"net/http"
	"strings"

	"prophet"
)

// WorkloadRef names a workload in a request body. Records 0 means the
// catalog default, exactly as in the Go API.
type WorkloadRef struct {
	Name    string `json:"name"`
	Records uint64 `json:"records,omitempty"`
}

func (w WorkloadRef) workload() prophet.Workload {
	return prophet.Workload{Name: strings.TrimSpace(w.Name), Records: w.Records}
}

// EvaluateRequest is the POST /v1/evaluate body: one (workload, scheme)
// run, normalized to the cached baseline of the same trace.
type EvaluateRequest struct {
	Workload WorkloadRef `json:"workload"`
	Scheme   string      `json:"scheme"`
	// TuneRecords caps tuning traces for schemes that search runtime knobs
	// (RPG2). 0 means full-length.
	TuneRecords uint64 `json:"tuneRecords,omitempty"`
}

// canonicalize trims free-text fields so trivially different spellings of
// the same request share a cache key.
func (r *EvaluateRequest) canonicalize() {
	r.Workload.Name = strings.TrimSpace(r.Workload.Name)
	r.Scheme = strings.TrimSpace(r.Scheme)
}

// job resolves the canonicalized request into an engine job.
func (r EvaluateRequest) job() prophet.Job {
	return prophet.Job{
		Workload:    r.Workload.workload(),
		Scheme:      prophet.Scheme(r.Scheme),
		TuneRecords: r.TuneRecords,
	}
}

// cacheKey is the canonical identity of the request for every cache tier.
// It is prophet.StoreKey of the resolved job, so the in-memory serving
// cache, the durable result store, and sweep dispatch all share one key
// space — a result computed through any entry point satisfies the others.
func (r EvaluateRequest) cacheKey() string {
	return prophet.StoreKey(r.job())
}

// EvaluateResponse is the POST /v1/evaluate reply.
type EvaluateResponse struct {
	Workload WorkloadRef      `json:"workload"`
	Scheme   string           `json:"scheme"`
	Stats    prophet.RunStats `json:"stats"`
	// Meta carries scheme-specific extras (rpg2: "kernels", "distance";
	// prophet: "hints", "metaWays", "disableTP").
	Meta map[string]int `json:"meta,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.canonicalize()
	if req.Workload.Name == "" {
		writeError(w, http.StatusBadRequest, "workload.name is required")
		return
	}
	if req.Scheme == "" {
		writeError(w, http.StatusBadRequest, "scheme is required")
		return
	}
	job := req.job()
	// The disk tier sits between the in-memory cache and the engine: a
	// stored result is decoded and shaped into the same response the
	// compute path would produce — byte-identical, because the stored value
	// encoding is canonical JSON of the same RunStats/Meta.
	var disk func() (any, bool)
	if s.store != nil {
		disk = func() (any, bool) {
			rep, ok := prophet.StoreLookup(s.store, job)
			if !ok {
				return nil, false
			}
			return EvaluateResponse{
				Workload: req.Workload,
				Scheme:   req.Scheme,
				Stats:    rep.Stats,
				Meta:     rep.Meta,
			}, true
		}
	}
	// The computation runs detached from this request's context: coalesced
	// waiters share the result, and one client's disconnect must not fail
	// the simulation for everyone who piggybacked on it. Write-through to
	// the store happens inside RunJob, which persists every completed
	// result it computes.
	computeCtx := context.WithoutCancel(r.Context())
	v, err := s.cache.Do(r.Context(), req.cacheKey(), disk, func() (any, error) {
		defer s.track()()
		rep, err := s.ev.RunJob(computeCtx, job)
		if err != nil {
			return nil, err
		}
		return EvaluateResponse{
			Workload: req.Workload,
			Scheme:   req.Scheme,
			Stats:    rep.Stats,
			Meta:     rep.Meta,
		}, nil
	})
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// SweepRequest is the POST /v1/sweep body: the cross product of Workloads ×
// Schemes (workload-major, like prophet.Jobs), plus any explicit extra
// Jobs, fanned out over the evaluator's worker pool. Async routes the sweep
// through the job queue and returns 202 with a job ID to poll.
type SweepRequest struct {
	Workloads []WorkloadRef     `json:"workloads,omitempty"`
	Schemes   []string          `json:"schemes,omitempty"`
	Jobs      []EvaluateRequest `json:"jobs,omitempty"`
	Async     bool              `json:"async,omitempty"`
}

// jobs expands the request into engine jobs (grid first, explicit extras
// after), mirroring prophet.Jobs ordering.
func (r SweepRequest) jobs() []prophet.Job {
	out := make([]prophet.Job, 0, len(r.Workloads)*len(r.Schemes)+len(r.Jobs))
	for _, w := range r.Workloads {
		for _, sch := range r.Schemes {
			out = append(out, prophet.Job{Workload: w.workload(), Scheme: prophet.Scheme(strings.TrimSpace(sch))})
		}
	}
	for _, j := range r.Jobs {
		j.canonicalize()
		out = append(out, prophet.Job{
			Workload:    j.Workload.workload(),
			Scheme:      prophet.Scheme(j.Scheme),
			TuneRecords: j.TuneRecords,
		})
	}
	return out
}

// SweepResult is one row of a sweep reply, in job order. Exactly one of
// Stats/Error is set.
type SweepResult struct {
	Workload WorkloadRef       `json:"workload"`
	Scheme   string            `json:"scheme"`
	Stats    *prophet.RunStats `json:"stats,omitempty"`
	Meta     map[string]int    `json:"meta,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// SweepResponse is the synchronous POST /v1/sweep reply (and the Result
// payload of an async sweep job).
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// SweepAccepted is the asynchronous POST /v1/sweep reply.
type SweepAccepted struct {
	JobID string `json:"jobId"`
	// Poll is the status URL for the job.
	Poll string `json:"poll"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	jobs := req.jobs()
	if len(jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty sweep: need workloads×schemes or jobs")
		return
	}
	if mode := streamMode(r); mode != "" && !req.Async {
		s.streamSweep(w, r, jobs, mode)
		return
	}
	if req.Async {
		id, err := s.jobs.Submit("sweep", func(ctx context.Context) (any, error) {
			return s.sweep(ctx, jobs)
		})
		if err != nil {
			status := http.StatusServiceUnavailable
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, SweepAccepted{JobID: id, Poll: "/v1/jobs/" + id})
		return
	}
	resp, err := s.sweep(r.Context(), jobs)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweep runs the jobs through the engine and shapes the reply. Per-job
// failures land in their result row; only a sweep-level failure (context
// cancellation) is returned as an error.
func (s *Server) sweep(ctx context.Context, jobs []prophet.Job) (SweepResponse, error) {
	defer s.track()()
	results, err := s.ev.Sweep(ctx, jobs...)
	if err != nil {
		return SweepResponse{}, err
	}
	resp := SweepResponse{Results: make([]SweepResult, len(results))}
	for i, res := range results {
		resp.Results[i] = sweepRow(res)
	}
	return resp, nil
}

// sweepRow shapes one engine result into its wire row — shared by the
// buffered and streaming paths so their payloads cannot drift apart.
func sweepRow(res prophet.Result) SweepResult {
	row := SweepResult{
		Workload: WorkloadRef{Name: res.Job.Workload.Name, Records: res.Job.Workload.Records},
		Scheme:   string(res.Job.Scheme),
	}
	if res.Err != nil {
		row.Error = res.Err.Error()
	} else {
		st := res.Stats
		row.Stats = &st
		row.Meta = res.Meta
	}
	return row
}
