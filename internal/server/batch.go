package server

import (
	"net/http"

	"prophet"
)

// handleBatch serves POST /v1/batch: the fleet-internal bulk execution
// endpoint behind sharded sweep dispatch. A coordinator (an Evaluator with
// WithBackends, or a prophetd started with -peers) sends each backend its
// whole shard in one request, amortizing round-trips. The wire types are
// prophet.BatchRequest / prophet.BatchResponse — shared with the client
// side, so coordinator and worker cannot drift apart.
//
// Jobs execute through Evaluator.SweepLocal, never the daemon's own
// dispatcher: fan-out terminates at one hop, so a worker mistakenly
// configured with -peers cannot cascade or loop a batch back into the
// fleet. Per-job failures (unknown workloads, scheme errors) land in their
// result row exactly as in an in-process sweep; only request-level
// failures (malformed body, cancellation) produce an error status, which
// the coordinator treats as a batch failure and retries or fails over.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req prophet.BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: need jobs")
		return
	}
	jobs := make([]prophet.Job, len(req.Jobs))
	for i, bj := range req.Jobs {
		jobs[i] = bj.Job()
	}
	done := s.track()
	results, err := s.ev.SweepLocal(r.Context(), jobs...)
	done()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	// Echo the simulated configuration: the coordinator fails the batch
	// over (to its own, correctly configured engine) on any mismatch.
	resp := prophet.BatchResponse{
		Options: s.ev.Options(),
		Results: make([]prophet.BatchResult, len(results)),
	}
	for i, res := range results {
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			continue
		}
		st := res.Stats
		resp.Results[i] = prophet.BatchResult{Stats: &st, Meta: res.Meta}
	}
	writeJSON(w, http.StatusOK, resp)
}
