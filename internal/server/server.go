// Package server implements prophetd's HTTP/JSON API: the full evaluation
// engine — single runs, concurrent sweeps, and the Figure 5
// profile→optimize→run loop — exposed as a long-lived service.
//
// The layering mirrors the engine's own caching story one level up:
//
//   - internal/pipeline caches per-workload baselines inside one Evaluator
//     (every normalized metric shares its denominator);
//   - this package caches whole request results across HTTP clients (LRU +
//     TTL, keyed by canonicalized request), and coalesces duplicate
//     in-flight requests onto a single simulation (singleflight);
//   - long-running sweeps go through a bounded async job queue with
//     lifecycle-context cancellation, so graceful shutdown drains
//     connections and cancels work instead of abandoning it;
//   - POST /v1/batch is the fleet-internal bulk endpoint: a coordinator
//     (Evaluator with WithBackends, or prophetd -peers) ships a whole
//     shard of sweep jobs in one request, executed strictly on this
//     daemon's engine so fan-out terminates at one hop.
//
// Everything the engine guarantees — determinism across worker counts,
// errors-never-panics — holds through the HTTP layer: a fixed request body
// yields byte-identical response bodies whatever the concurrency.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prophet"

	"prophet/internal/ingest"
	"prophet/internal/mem"
	"prophet/internal/pcapture"
	"prophet/internal/resultstore"
)

// Config assembles a Server.
type Config struct {
	// Evaluator is the engine to serve. Nil builds a default prophet.New().
	Evaluator *prophet.Evaluator
	// CacheEntries bounds the result cache (default 256; <0 disables the
	// bound).
	CacheEntries int
	// CacheTTL expires cached results (default 10m; <0 caches forever).
	CacheTTL time.Duration
	// JobWorkers sizes the async job pool (default 2).
	JobWorkers int
	// QueueDepth bounds the async job queue (default 64).
	QueueDepth int
	// JobRetention bounds how many finished jobs (and their results) are
	// kept for polling before the oldest are evicted (default 256).
	JobRetention int
	// Store is the durable result store layered under the in-memory cache
	// (lookup order: memory → disk → compute). Nil runs without a disk
	// tier. The caller owns the store's lifecycle and must also attach it
	// to the Evaluator (UseResultStore) so computed results write through.
	Store *resultstore.Store
	// Capturer backs POST /v1/profile/{start,stop}. Nil builds a
	// memory-only capturer (profiles are returned to the caller but not
	// persisted server-side); prophetd passes one configured with
	// -profile-dir so captures also land on disk for the PGO loop.
	Capturer *pcapture.Capturer
	// PeerTTL is the heartbeat expiry window for dynamically joined peers
	// (POST /v1/peers): a peer that has not re-registered within the TTL is
	// drained from the fleet (default 15s).
	PeerTTL time.Duration
	// Logf receives operational notices (peer joins, drains, expiries).
	// Nil means the standard library logger.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Server is the prophetd request handler set plus its serving-side state:
// result cache, async job store, and session registry. Construct with New,
// mount Handler on an http.Server, and Close on the way out.
type Server struct {
	ev    *prophet.Evaluator
	cache *resultCache
	store *resultstore.Store // nil when serving without a disk tier
	capt  *pcapture.Capturer
	jobs  *jobStore
	sess  *sessionStore
	mux   *http.ServeMux
	now   func() time.Time
	start time.Time
	logf  func(format string, args ...any)

	// engineInFlight counts evaluation requests currently executing —
	// reported by GET /v1/health for load-aware fleet scheduling.
	engineInFlight atomic.Int64

	// peerReg tracks dynamic fleet membership (POST /v1/peers heartbeats);
	// reaperStop ends its background expiry loop.
	peerReg    *peerRegistry
	reaperStop chan struct{}
	reaperOnce sync.Once
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Evaluator == nil {
		cfg.Evaluator = prophet.New()
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.CacheTTL == 0 {
		cfg.CacheTTL = 10 * time.Minute
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.Capturer == nil {
		cfg.Capturer = pcapture.New(pcapture.Options{})
	}
	if cfg.PeerTTL <= 0 {
		cfg.PeerTTL = 15 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{
		ev:    cfg.Evaluator,
		cache: newResultCache(cfg.CacheEntries, cfg.CacheTTL, now),
		store: cfg.Store,
		capt:  cfg.Capturer,
		jobs:  newJobStore(cfg.JobWorkers, cfg.QueueDepth, cfg.JobRetention, now),
		sess:  newSessionStore(now),
		now:   now,
		start: now(),
		logf:  cfg.Logf,
		// Peers configured at startup are static: no heartbeat expected,
		// drained only by explicit DELETE /v1/peers.
		peerReg:    newPeerRegistry(cfg.PeerTTL, now, cfg.Evaluator.Backends()),
		reaperStop: make(chan struct{}),
	}
	// The reaper interval is a fraction of the TTL so a dead worker drains
	// within roughly one heartbeat window even on an idle coordinator.
	reapEvery := cfg.PeerTTL / 3
	if reapEvery < time.Second {
		reapEvery = time.Second
	}
	go s.reapLoop(reapEvery)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /v1/peers", s.handlePeersList)
	mux.HandleFunc("POST /v1/peers", s.handlePeerJoin)
	mux.HandleFunc("DELETE /v1/peers", s.handlePeerLeave)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleSessionList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/profile", s.handleSessionProfile)
	mux.HandleFunc("POST /v1/sessions/{id}/optimize", s.handleSessionOptimize)
	mux.HandleFunc("POST /v1/sessions/{id}/run", s.handleSessionRun)
	mux.HandleFunc("POST /v1/sessions/{id}/adapt", s.handleSessionAdapt)
	s.registerProfileRoutes(mux)
	s.mux = mux
	return s
}

// Handler returns the routed handler for mounting on an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the async machinery down: the peer reaper stops, job intake
// stops, queued jobs are cancelled, and workers are awaited up to ctx's
// deadline. Call after (or concurrently with) http.Server.Shutdown —
// in-flight HTTP requests coalesced on the cache drain on their own.
func (s *Server) Close(ctx context.Context) error {
	s.reaperOnce.Do(func() { close(s.reaperStop) })
	return s.jobs.Shutdown(ctx)
}

// VersionResponse is the GET /v1/version body.
type VersionResponse struct {
	Version string `json:"version"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{Version: prophet.Version()})
}

// WorkloadsResponse is the GET /v1/workloads body: the catalog entries plus
// the workload-source prefix table, so clients can discover that file: and
// external-trace names (champsim:, csv:) resolve too — with the caveat that
// path-backed workloads read files on the daemon's own disk.
type WorkloadsResponse struct {
	Workloads []prophet.WorkloadInfo `json:"workloads"`
	Sources   []prophet.SourceInfo   `json:"sources"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, WorkloadsResponse{
		Workloads: prophet.CatalogInfo(),
		Sources:   prophet.Sources(),
	})
}

// SchemesResponse is the GET /v1/schemes body.
type SchemesResponse struct {
	Schemes []string `json:"schemes"`
}

func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SchemesResponse{Schemes: s.ev.Schemes()})
}

// StatsResponse is the GET /v1/stats body: the daemon's operational
// introspection surface (load tests watch these counters).
type StatsResponse struct {
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Workers       int     `json:"workers"`
	// Options is the engine configuration actually being simulated.
	Options prophet.Options `json:"options"`
	Cache   CacheStats      `json:"cache"`
	// Tiers summarizes where cache-routed evaluate requests were answered.
	// Each request lands in exactly one tier, so the four counters sum to
	// the number of routed requests: memory is an in-memory cache hit, disk
	// a durable-store hit, coalesced a request that piggybacked on one in
	// flight, computed an actual engine run.
	Tiers struct {
		Memory    int64 `json:"memory"`
		Disk      int64 `json:"disk"`
		Coalesced int64 `json:"coalesced"`
		Computed  int64 `json:"computed"`
	} `json:"tiers"`
	// Store reports the durable result store's counters (entries, bytes,
	// hits, corruption skips, compactions); absent when the daemon runs
	// without -store.
	Store    *resultstore.Stats `json:"store,omitempty"`
	Baseline struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"baseline"`
	Jobs struct {
		Depth   int `json:"depth"`
		Running int `json:"running"`
		Total   int `json:"total"`
	} `json:"jobs"`
	Sessions int `json:"sessions"`
	// Profile reports the CPU-capture window state: whether one is open
	// (and its name), how many captures this process has taken, and where
	// the last one was persisted.
	Profile pcapture.Stats `json:"profile"`
	// Dispatch reports the sweep fleet: the scheduling strategy, the live
	// peers (static and dynamically joined), and the coordinator's
	// remote/local/retry/failover/steal counters (all zero when the daemon
	// runs standalone).
	Dispatch struct {
		Scheduler string                `json:"scheduler"`
		Peers     []string              `json:"peers,omitempty"`
		Stats     prophet.DispatchStats `json:"stats"`
	} `json:"dispatch"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	resp.Version = prophet.Version()
	resp.UptimeSeconds = s.now().Sub(s.start).Seconds()
	resp.Workers = s.ev.Workers()
	resp.Options = s.ev.Options()
	resp.Cache = s.cache.Stats()
	resp.Tiers.Memory = resp.Cache.Hits
	resp.Tiers.Disk = resp.Cache.DiskHits
	resp.Tiers.Coalesced = resp.Cache.Coalesced
	resp.Tiers.Computed = resp.Cache.Misses
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	resp.Baseline.Hits, resp.Baseline.Misses = s.ev.BaselineCacheStats()
	resp.Jobs.Depth = s.jobs.Depth()
	resp.Jobs.Running = s.jobs.Running()
	resp.Jobs.Total = s.jobs.Len()
	resp.Sessions = s.sess.Len()
	resp.Profile = s.capt.CaptureStats()
	s.reapPeers() // stats must reflect expiries even on an idle coordinator
	resp.Dispatch.Scheduler = s.ev.SchedulerName()
	resp.Dispatch.Peers = s.ev.Backends()
	resp.Dispatch.Stats = s.ev.DispatchStats()
	writeJSON(w, http.StatusOK, resp)
}

// JobsResponse is the GET /v1/jobs body.
type JobsResponse struct {
	Jobs []JobInfo `json:"jobs"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobsResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	info, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// decodeJSON strictly decodes a request body into v: unknown fields and
// trailing garbage are errors, so client typos surface as 400s instead of
// silently-defaulted runs.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid request body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid request body: trailing data")
	}
	return nil
}

// statusFor maps an engine error to an HTTP status: resolution failures
// (unknown workload/scheme, missing or malformed trace file) are the
// client's fault. File errors carry sentinels (fs.ErrNotExist,
// mem.ErrBadTrace, ingest.ErrBadTrace); the catalog errors are plain
// fmt.Errorf values, so those are matched by their stable message prefixes.
func statusFor(err error) int {
	if errors.Is(err, fs.ErrNotExist) || errors.Is(err, mem.ErrBadTrace) || errors.Is(err, ingest.ErrBadTrace) {
		return http.StatusBadRequest
	}
	msg := err.Error()
	if strings.Contains(msg, "unknown workload") || strings.Contains(msg, "unknown scheme") ||
		strings.Contains(msg, "empty workload name") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}
