// Tests for POST /v1/batch, the fleet-internal bulk execution endpoint:
// row-for-row equivalence with SweepLocal, per-job error rows, and the
// request-level validation coordinators rely on to classify failures.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"prophet"
)

func TestBatchMatchesSweepLocal(t *testing.T) {
	ev := prophet.New(prophet.WithWorkers(2))
	_, ts := newTestServer(t, Config{Evaluator: ev})

	body := `{"jobs":[
		{"workload":"mcf","records":3000,"scheme":"baseline"},
		{"workload":"mcf","records":3000,"scheme":"server-test"},
		{"workload":"omnetpp","records":3000,"scheme":"baseline"}
	]}`
	code, b := post(t, ts, "/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("/v1/batch: %d %s", code, b)
	}
	var resp prophet.BatchResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}

	want, err := ev.SweepLocal(context.Background(),
		prophet.Job{Workload: prophet.Workload{Name: "mcf", Records: 3000}, Scheme: "baseline"},
		prophet.Job{Workload: prophet.Workload{Name: "mcf", Records: 3000}, Scheme: "server-test"},
		prophet.Job{Workload: prophet.Workload{Name: "omnetpp", Records: 3000}, Scheme: "baseline"},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range resp.Results {
		if row.Error != "" {
			t.Fatalf("row %d unexpected error %q", i, row.Error)
		}
		if row.Stats == nil {
			t.Fatalf("row %d has no stats", i)
		}
		if !reflect.DeepEqual(*row.Stats, want[i].Stats) {
			t.Errorf("row %d stats differ from SweepLocal:\n got %+v\nwant %+v", i, *row.Stats, want[i].Stats)
		}
	}
}

func TestBatchPerJobErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, b := post(t, ts, "/v1/batch", `{"jobs":[
		{"workload":"no_such_workload","scheme":"baseline"},
		{"workload":"mcf","records":2000,"scheme":"no_such_scheme"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("per-job failures must not fail the batch: %d %s", code, b)
	}
	var resp prophet.BatchResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	for i, row := range resp.Results {
		if row.Error == "" || row.Stats != nil {
			t.Errorf("row %d: want error-only row, got stats=%v error=%q", i, row.Stats, row.Error)
		}
	}
}

func TestBatchRejectsEmptyAndMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if code, b := post(t, ts, "/v1/batch", `{"jobs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d %s", code, b)
	}
	if code, b := post(t, ts, "/v1/batch", `{"jobz":[]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", code, b)
	}
	if code, b := post(t, ts, "/v1/batch", `not json`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d %s", code, b)
	}
}

func TestStatsReportsDispatch(t *testing.T) {
	ev := prophet.New(prophet.WithBackends("http://peer-a:8373", "http://peer-b:8373"))
	_, ts := newTestServer(t, Config{Evaluator: ev})

	st := stats(t, ts)
	if len(st.Dispatch.Peers) != 2 {
		t.Fatalf("stats peers = %v, want 2 entries", st.Dispatch.Peers)
	}
	if st.Dispatch.Stats != (prophet.DispatchStats{}) {
		t.Fatalf("fresh dispatcher stats = %+v, want zeros", st.Dispatch.Stats)
	}
}
