package server

import (
	"net/http"

	"prophet"
)

// track counts one evaluation request as in flight for the duration of the
// returned release func. Coordinators running the least-loaded scheduler
// read this through GET /v1/health, so every compute path — evaluate,
// sweeps (buffered, streamed, async), and fleet batches — must pass
// through it for load reports to mean anything.
func (s *Server) track() func() {
	s.engineInFlight.Add(1)
	return func() { s.engineInFlight.Add(-1) }
}

// handleHealth serves GET /v1/health: the lightweight load and identity
// probe behind load-aware fleet scheduling. It must stay cheap — a
// coordinator may poll it before every sweep — so it reads counters only
// and never touches the engine.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, prophet.Health{
		Version:    prophet.Version(),
		Engine:     s.ev.StoreFingerprint(),
		Workers:    s.ev.Workers(),
		QueueDepth: s.jobs.Depth(),
		InFlight:   int(s.engineInFlight.Load()),
		Peers:      len(s.ev.Backends()),
	})
}
