// HTTP-level tests for the prophetd API, pinning the acceptance contract:
// (a) N identical concurrent evaluates run exactly one simulation, visible
// in /v1/stats; (b) responses are byte-identical across repeats and worker
// counts; (c) graceful shutdown cancels queued/in-flight jobs and drains
// open connections.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prophet"

	"prophet/internal/mem"
	"prophet/internal/registry"
)

// The "server-test" scheme is a controllable hook: tests set its body to
// count invocations or block on gates. The default degenerates to the
// cached baseline.
var testSchemeFn struct {
	mu sync.Mutex
	fn func(ctx registry.Context) (registry.Result, error)
}

func setTestScheme(fn func(ctx registry.Context) (registry.Result, error)) {
	testSchemeFn.mu.Lock()
	testSchemeFn.fn = fn
	testSchemeFn.mu.Unlock()
}

func init() {
	registry.MustRegister("server-test", func() registry.Scheme {
		return registry.Func(func(ctx registry.Context) (registry.Result, error) {
			testSchemeFn.mu.Lock()
			fn := testSchemeFn.fn
			testSchemeFn.mu.Unlock()
			if fn != nil {
				return fn(ctx)
			}
			return registry.Result{Stats: ctx.Baseline()}, nil
		})
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close(context.Background())
	})
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func stats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	code, b := get(t, ts, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: %d %s", code, b)
	}
	var st StatsResponse
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMetadataEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, b := get(t, ts, "/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("/v1/workloads: %d %s", code, b)
	}
	var wl WorkloadsResponse
	if err := json.Unmarshal(b, &wl); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	names := map[string]bool{}
	for _, w := range wl.Workloads {
		kinds[w.Kind] = true
		names[w.Name] = true
		if w.DefaultRecords == 0 {
			t.Errorf("workload %s has no default records", w.Name)
		}
	}
	if !names["mcf"] || !kinds["spec"] || !kinds["graph"] {
		t.Fatalf("catalog incomplete: names[mcf]=%v kinds=%v", names["mcf"], kinds)
	}

	code, b = get(t, ts, "/v1/schemes")
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"prophet"`)) {
		t.Fatalf("/v1/schemes: %d %s", code, b)
	}

	code, b = get(t, ts, "/v1/version")
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"version"`)) {
		t.Fatalf("/v1/version: %d %s", code, b)
	}

	if code, _ := get(t, ts, "/v1/jobs/job-404"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"scheme":"triangel"}`, http.StatusBadRequest},                            // missing workload
		{`{"workload":{"name":"sphinx3"}}`, http.StatusBadRequest},                  // missing scheme
		{`{"workload":{"name":"sphinx3"},"shceme":"x"}`, http.StatusBadRequest},     // unknown field
		{`{"workload":{"name":"nope"},"scheme":"triangel"}`, http.StatusBadRequest}, // unknown workload
		{`{"workload":{"name":"sphinx3","records":20000},"scheme":"warp"}`, http.StatusBadRequest},
		// Missing and malformed trace files are client errors, not 500s.
		{`{"workload":{"name":"file:/no/such.trc"},"scheme":"triangel"}`, http.StatusBadRequest},
	} {
		if code, b := post(t, ts, "/v1/evaluate", tc.body); code != tc.want {
			t.Errorf("body %s: status %d (%s), want %d", tc.body, code, b, tc.want)
		}
	}
	if code, _ := post(t, ts, "/v1/sweep", `{}`); code != http.StatusBadRequest {
		t.Errorf("empty sweep accepted")
	}
}

// TestEvaluateCoalescing is acceptance criterion (a): N identical
// concurrent POST /v1/evaluate requests trigger exactly one simulation,
// observable through /v1/stats.
func TestEvaluateCoalescing(t *testing.T) {
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		if runs.Add(1) == 1 {
			close(started)
		}
		<-release
		return registry.Result{Stats: ctx.Baseline()}, nil
	})
	defer setTestScheme(nil)

	_, ts := newTestServer(t, Config{})
	const clients = 6
	body := `{"workload":{"name":"sphinx3","records":20000},"scheme":"server-test"}`

	codes := make([]int, clients)
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = post(t, ts, "/v1/evaluate", body)
		}(i)
	}

	<-started // the leader is inside the simulation; everyone else must coalesce
	deadline := time.Now().Add(10 * time.Second)
	for stats(t, ts).Cache.Coalesced < clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("stuck: stats %+v", stats(t, ts))
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want exactly 1", clients, n)
	}
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body diverged:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	st := stats(t, ts)
	if st.Cache.Misses != 1 || st.Cache.Coalesced != clients-1 {
		t.Fatalf("cache stats %+v, want misses=1 coalesced=%d", st.Cache, clients-1)
	}
}

// TestEvaluateDeterministic is acceptance criterion (b): a fixed request
// yields byte-identical bodies across repeats and across servers with
// different worker counts.
func TestEvaluateDeterministic(t *testing.T) {
	_, ts1 := newTestServer(t, Config{Evaluator: prophet.New(prophet.WithWorkers(1))})
	_, ts8 := newTestServer(t, Config{Evaluator: prophet.New(prophet.WithWorkers(8))})

	eval := `{"workload":{"name":"sphinx3","records":20000},"scheme":"triangel"}`
	code, first := post(t, ts1, "/v1/evaluate", eval)
	if code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", code, first)
	}
	if _, repeat := post(t, ts1, "/v1/evaluate", eval); !bytes.Equal(first, repeat) {
		t.Fatalf("repeat on one server diverged:\n%s\n%s", first, repeat)
	}
	if st := stats(t, ts1); st.Cache.Hits < 1 {
		t.Fatalf("repeat did not hit the cache: %+v", st.Cache)
	}
	if _, other := post(t, ts8, "/v1/evaluate", eval); !bytes.Equal(first, other) {
		t.Fatalf("1-worker vs 8-worker servers diverged:\n%s\n%s", first, other)
	}

	sweep := `{"workloads":[{"name":"sphinx3","records":20000},{"name":"xalancbmk","records":20000}],` +
		`"schemes":["baseline","triangel"]}`
	_, s1 := post(t, ts1, "/v1/sweep", sweep)
	_, s8 := post(t, ts8, "/v1/sweep", sweep)
	if !bytes.Equal(s1, s8) {
		t.Fatalf("sweep diverged across worker counts:\n%s\n%s", s1, s8)
	}
	var sr SweepResponse
	if err := json.Unmarshal(s1, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 4 {
		t.Fatalf("sweep returned %d rows, want 4", len(sr.Results))
	}
	for i, row := range sr.Results {
		if row.Error != "" || row.Stats == nil {
			t.Fatalf("row %d: %+v", i, row)
		}
	}
}

// TestAsyncSweepJobFlow: async sweeps return 202 + a pollable job that
// finishes with the same payload a synchronous sweep returns.
func TestAsyncSweepJobFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"workloads":[{"name":"sphinx3","records":20000}],"schemes":["baseline"],"async":true}`
	code, b := post(t, ts, "/v1/sweep", body)
	if code != http.StatusAccepted {
		t.Fatalf("async sweep: %d %s", code, b)
	}
	var acc SweepAccepted
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	var info JobInfo
	for {
		code, jb := get(t, ts, acc.Poll)
		if code != http.StatusOK {
			t.Fatalf("poll: %d %s", code, jb)
		}
		if err := json.Unmarshal(jb, &info); err != nil {
			t.Fatal(err)
		}
		if info.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", info)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info.State != JobDone || info.Error != "" {
		t.Fatalf("job finished %s (%s), want done", info.State, info.Error)
	}
	// The async result round-trips as generic JSON; spot-check its shape.
	res, err := json.Marshal(info.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(res, []byte(`"Speedup":1`)) {
		t.Fatalf("async sweep result missing baseline speedup: %s", res)
	}
}

// TestGracefulShutdown is acceptance criterion (c): on shutdown, queued
// jobs are cancelled, the in-flight job observes cancellation, and open
// HTTP connections drain to completion.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	var inflight atomic.Int64
	arrived := make(chan struct{}, 8)
	setTestScheme(func(ctx registry.Context) (registry.Result, error) {
		inflight.Add(1)
		arrived <- struct{}{}
		<-release
		return registry.Result{Stats: ctx.Baseline()}, nil
	})
	defer setTestScheme(nil)

	srv := New(Config{JobWorkers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One async sweep occupies the single job worker...
	code, b := post(t, ts, "/v1/sweep",
		`{"workloads":[{"name":"sphinx3","records":20000}],"schemes":["server-test"],"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async sweep 1: %d %s", code, b)
	}
	var first SweepAccepted
	json.Unmarshal(b, &first)
	<-arrived // its simulation is now in flight

	// ...a second async sweep waits in the queue...
	code, b = post(t, ts, "/v1/sweep",
		`{"workloads":[{"name":"xalancbmk","records":20000}],"schemes":["baseline"],"async":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("async sweep 2: %d %s", code, b)
	}
	var queued SweepAccepted
	json.Unmarshal(b, &queued)

	// ...and a synchronous evaluate holds an open connection.
	syncDone := make(chan struct{})
	var syncCode int
	var syncBody []byte
	go func() {
		defer close(syncDone)
		syncCode, syncBody = post(t, ts, "/v1/evaluate",
			`{"workload":{"name":"sphinx3","records":19000},"scheme":"server-test"}`)
	}()
	<-arrived // the evaluate's simulation is in flight too

	// Begin graceful shutdown while everything is mid-air.
	httpDone := make(chan error, 1)
	jobsDone := make(chan error, 1)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { httpDone <- ts.Config.Shutdown(shutdownCtx) }()
	go func() { jobsDone <- srv.Close(shutdownCtx) }()

	// The queued job must die without ever running.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, ok := srv.jobs.Get(queued.JobID)
		if !ok {
			t.Fatal("queued job vanished")
		}
		if info.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job not cancelled: %+v", info)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := inflight.Load(); n != 2 {
		t.Fatalf("queued job's simulation ran (%d in flight, want 2: job 1 + sync evaluate)", n)
	}

	// Release the gates: the drained connection completes normally and the
	// in-flight job lands in a terminal state having seen cancellation.
	close(release)
	<-syncDone
	if syncCode != http.StatusOK || !bytes.Contains(syncBody, []byte(`"Speedup"`)) {
		t.Fatalf("in-flight evaluate not drained: %d %s", syncCode, syncBody)
	}
	if err := <-httpDone; err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	if err := <-jobsDone; err != nil {
		t.Fatalf("job shutdown: %v", err)
	}
	info, _ := srv.jobs.Get(first.JobID)
	if info.State != JobCanceled {
		t.Fatalf("in-flight job state %s, want canceled (sweep observed cancelled context)", info.State)
	}

	// Post-shutdown, new async work is refused.
	if _, err := srv.jobs.Submit("late", nil); err == nil {
		t.Fatal("Submit accepted after shutdown")
	}
}

// TestSessionFlow drives the Figure 5 loop over HTTP: create → profile →
// optimize → run, plus the error paths (run before optimize, unknown id,
// delete).
func TestSessionFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, b := post(t, ts, "/v1/sessions", "")
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, b)
	}
	var sess SessionInfo
	if err := json.Unmarshal(b, &sess); err != nil {
		t.Fatal(err)
	}
	base := "/v1/sessions/" + sess.ID

	// Run before optimize is a 409, not a panic or a zero-stats 200.
	if code, _ := post(t, ts, base+"/run", `{"workload":{"name":"omnetpp","records":20000}}`); code != http.StatusConflict {
		t.Fatalf("run before optimize: %d, want 409", code)
	}

	code, b = post(t, ts, base+"/profile", `{"workload":{"name":"omnetpp","records":20000}}`)
	if code != http.StatusOK {
		t.Fatalf("profile: %d %s", code, b)
	}
	var after SessionInfo
	json.Unmarshal(b, &after)
	if after.Loops != 1 || len(after.Profiled) != 1 {
		t.Fatalf("after profile: %+v", after)
	}

	code, b = post(t, ts, base+"/optimize", "")
	if code != http.StatusOK || !bytes.Contains(b, []byte(`"binary"`)) {
		t.Fatalf("optimize: %d %s", code, b)
	}

	code, b = post(t, ts, base+"/run", `{"workload":{"name":"omnetpp","records":20000}}`)
	if code != http.StatusOK {
		t.Fatalf("run: %d %s", code, b)
	}
	var run SessionRunResponse
	if err := json.Unmarshal(b, &run); err != nil {
		t.Fatal(err)
	}
	if run.Stats.Speedup <= 0 {
		t.Fatalf("run stats %+v", run.Stats)
	}

	code, b = get(t, ts, "/v1/sessions")
	if code != http.StatusOK || !bytes.Contains(b, []byte(sess.ID)) {
		t.Fatalf("list sessions: %d %s", code, b)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+base, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if code, _ := get(t, ts, base); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", code)
	}
	if code, _ := post(t, ts, "/v1/sessions/session-999/profile", `{"workload":{"name":"mcf"}}`); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d, want 404", code)
	}
}

// TestSessionAdapt: the online-adaptation mode needs no profile or
// optimized binary — it runs the phase-adaptive wrapper directly and
// reports its trajectory alongside the usual stats.
func TestSessionAdapt(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, b := post(t, ts, "/v1/sessions", "")
	if code != http.StatusCreated {
		t.Fatalf("create session: %d %s", code, b)
	}
	var sess SessionInfo
	if err := json.Unmarshal(b, &sess); err != nil {
		t.Fatal(err)
	}
	base := "/v1/sessions/" + sess.ID

	code, b = post(t, ts, base+"/adapt", `{"workload":{"name":"omnetpp","records":40000}}`)
	if code != http.StatusOK {
		t.Fatalf("adapt: %d %s", code, b)
	}
	var run SessionAdaptResponse
	if err := json.Unmarshal(b, &run); err != nil {
		t.Fatal(err)
	}
	if run.Stats.Speedup <= 0 {
		t.Fatalf("adapt stats %+v", run.Stats)
	}
	if run.Stats.Windows == 0 {
		t.Fatalf("adapt reported zero evaluation windows: %+v", run.Stats)
	}
	if run.Stats.Final == "" {
		t.Fatalf("adapt reported no final engine: %+v", run.Stats)
	}

	// The adaptive run is deterministic: repeating it yields identical
	// stats and trajectory.
	code, b = post(t, ts, base+"/adapt", `{"workload":{"name":"omnetpp","records":40000}}`)
	if code != http.StatusOK {
		t.Fatalf("adapt repeat: %d %s", code, b)
	}
	var rerun SessionAdaptResponse
	if err := json.Unmarshal(b, &rerun); err != nil {
		t.Fatal(err)
	}
	if run.Stats != rerun.Stats {
		t.Fatalf("adaptive run nondeterministic:\n first  %+v\n second %+v", run.Stats, rerun.Stats)
	}

	if code, _ := post(t, ts, base+"/adapt", `{"workload":{}}`); code != http.StatusBadRequest {
		t.Fatalf("adapt without workload: %d, want 400", code)
	}
	if code, _ := post(t, ts, base+"/adapt", `{"workload":{"name":"no-such"}}`); code != http.StatusBadRequest {
		t.Fatalf("adapt with unknown workload: %d, want 400", code)
	}
	if code, _ := post(t, ts, "/v1/sessions/session-999/adapt", `{"workload":{"name":"mcf"}}`); code != http.StatusNotFound {
		t.Fatalf("adapt on unknown session: %d, want 404", code)
	}
}

// TestEvaluateFileWorkload: an exported gzip trace evaluated through
// file:<path> matches the generated workload it came from.
func TestEvaluateFileWorkload(t *testing.T) {
	w, err := prophet.Find("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	src, err := w.WithRecords(20_000).Open()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sphinx3.trc.gz")
	if _, err := mem.WriteTraceFile(path, src); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	code, genBody := post(t, ts, "/v1/evaluate",
		`{"workload":{"name":"sphinx3","records":20000},"scheme":"triangel"}`)
	if code != http.StatusOK {
		t.Fatalf("generated evaluate: %d %s", code, genBody)
	}
	code, fileBody := post(t, ts, "/v1/evaluate",
		fmt.Sprintf(`{"workload":{"name":"file:%s"},"scheme":"triangel"}`, path))
	if code != http.StatusOK {
		t.Fatalf("file evaluate: %d %s", code, fileBody)
	}
	var gen, file EvaluateResponse
	json.Unmarshal(genBody, &gen)
	json.Unmarshal(fileBody, &file)
	if gen.Stats != file.Stats {
		t.Fatalf("file trace diverged from generated workload:\n generated %+v\n file      %+v", gen.Stats, file.Stats)
	}
}
