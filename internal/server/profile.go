package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"

	"prophet/internal/pcapture"
)

// registerProfileRoutes mounts the profiling surface:
//
//   - /debug/pprof/* is the standard net/http/pprof family (heap, goroutine,
//     block, mutex, the 30-second CPU profile, execution traces) for ad-hoc
//     inspection with `go tool pprof`;
//   - POST /v1/profile/{start,stop} drives the explicit capture window the
//     PGO loop uses: start opens a named window, stop closes it and returns
//     the raw pprof bytes (and persists them when prophetd runs with
//     -profile-dir). One window at a time — a second start is a 409, as is
//     a stop with no window open.
//
// The ad-hoc /debug/pprof/profile endpoint and the capture window share the
// runtime's single CPU profiler, so using one while the other is active
// fails cleanly rather than corrupting either capture.
func (s *Server) registerProfileRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/profile/start", s.handleProfileStart)
	mux.HandleFunc("POST /v1/profile/stop", s.handleProfileStop)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("POST /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ProfileStartRequest is the optional POST /v1/profile/start body. An empty
// body starts an anonymous window (persisted as "capture-…" when a profile
// directory is configured).
type ProfileStartRequest struct {
	// Name labels the window; it prefixes the persisted file name after
	// sanitization, so use the workload mix being exercised
	// (e.g. "mcf-prophet-4x4").
	Name string `json:"name"`
}

// ProfileStartResponse is the POST /v1/profile/start body.
type ProfileStartResponse struct {
	Started bool   `json:"started"`
	Name    string `json:"name"`
}

func (s *Server) handleProfileStart(w http.ResponseWriter, r *http.Request) {
	var req ProfileStartRequest
	if r.ContentLength != 0 {
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if err := s.capt.Start(req.Name); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, pcapture.ErrActive) {
			status = http.StatusConflict
		}
		writeError(w, status, err.Error())
		return
	}
	name, _, _ := s.capt.Active()
	writeJSON(w, http.StatusOK, ProfileStartResponse{Started: true, Name: name})
}

// handleProfileStop closes the active window and streams the raw pprof bytes
// back (Content-Type application/octet-stream) so the caller can pipe the
// response straight into a file or `go tool pprof`. The window's name and —
// when -profile-dir is set — the server-side path travel in the
// X-Profile-Name and X-Profile-Path headers. A persistence failure still
// returns the bytes: the client's copy is then the only one.
func (s *Server) handleProfileStop(w http.ResponseWriter, r *http.Request) {
	cap, err := s.capt.Stop()
	if err != nil && errors.Is(err, pcapture.ErrIdle) {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	if err != nil && len(cap.Data) == 0 {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", cap.Name+".pprof"))
	w.Header().Set("X-Profile-Name", cap.Name)
	if cap.Path != "" {
		w.Header().Set("X-Profile-Path", cap.Path)
	}
	if err != nil {
		// Persist failed but the capture survived in memory; tell the
		// client theirs is now the only copy.
		w.Header().Set("X-Profile-Persist-Error", err.Error())
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(cap.Data)
}
