package dram

import (
	"testing"
	"testing/quick"

	"prophet/internal/mem"
)

func TestUnloadedLatency(t *testing.T) {
	d := New(Default())
	done := d.Read(0, 1000)
	if got := done - 1000; got != Default().BaseLatency {
		t.Fatalf("unloaded read latency = %d, want %d", got, Default().BaseLatency)
	}
}

func TestQueueingDelay(t *testing.T) {
	cfg := Config{Channels: 1, BaseLatency: 100, BurstCycles: 10, MaxQueue: 0}
	d := New(cfg)
	// Back-to-back reads at the same cycle must serialize on the channel.
	d1 := d.Read(0, 0)
	d2 := d.Read(1, 0)
	d3 := d.Read(2, 0)
	if d1 != 100 {
		t.Fatalf("first read done at %d, want 100", d1)
	}
	if d2 != 110 || d3 != 120 {
		t.Fatalf("queued reads done at %d,%d want 110,120", d2, d3)
	}
}

func TestChannelsRelieveQueueing(t *testing.T) {
	cfg := Config{Channels: 2, BaseLatency: 100, BurstCycles: 10}
	d := New(cfg)
	// Lines 0 and 1 interleave across channels: no queueing.
	d1 := d.Read(0, 0)
	d2 := d.Read(1, 0)
	if d1 != 100 || d2 != 100 {
		t.Fatalf("two-channel parallel reads done at %d,%d want 100,100", d1, d2)
	}
	// Line 2 maps back to channel 0 and queues behind line 0.
	d3 := d.Read(2, 0)
	if d3 != 110 {
		t.Fatalf("same-channel read done at %d, want 110", d3)
	}
}

func TestWritesConsumeBandwidth(t *testing.T) {
	cfg := Config{Channels: 1, BaseLatency: 100, BurstCycles: 10}
	d := New(cfg)
	d.Write(0, 0)
	done := d.Read(1, 0)
	if done != 110 {
		t.Fatalf("read after write done at %d, want 110 (write occupies channel)", done)
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.Traffic() != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMaxQueueSaturates(t *testing.T) {
	cfg := Config{Channels: 1, BaseLatency: 100, BurstCycles: 10, MaxQueue: 4}
	d := New(cfg)
	var last uint64
	for i := 0; i < 100; i++ {
		last = d.Read(mem.Line(i), 0)
	}
	// With MaxQueue=4 the service start is capped at 4*10 cycles past now,
	// so completion is capped at 40 + 100.
	if last != 140 {
		t.Fatalf("saturated read done at %d, want 140", last)
	}
}

func TestAvgReadLatency(t *testing.T) {
	d := New(Config{Channels: 1, BaseLatency: 100, BurstCycles: 10})
	if d.AvgReadLatency() != 0 {
		t.Fatal("AvgReadLatency should be 0 with no reads")
	}
	d.Read(0, 0)
	d.Read(1, 0)
	// Latencies: 100 and 110 -> avg 105.
	if got := d.AvgReadLatency(); got != 105 {
		t.Fatalf("AvgReadLatency = %v, want 105", got)
	}
}

func TestNewPanicsOnZeroChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with 0 channels should panic")
		}
	}()
	New(Config{Channels: 0})
}

// Property: completion is never before now + BaseLatency, and traffic
// accounting matches the number of operations.
func TestReadLowerBound(t *testing.T) {
	f := func(offsets []uint16) bool {
		cfg := Config{Channels: 2, BaseLatency: 50, BurstCycles: 8, MaxQueue: 16}
		d := New(cfg)
		now := uint64(0)
		for _, o := range offsets {
			now += uint64(o % 20)
			done := d.Read(mem.Line(o), now)
			if done < now+cfg.BaseLatency {
				return false
			}
		}
		return d.Stats().Reads == uint64(len(offsets))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := Default()
	if cfg.Channels != 1 {
		t.Errorf("Table 1 specifies a single channel, got %d", cfg.Channels)
	}
	if cfg.BaseLatency == 0 || cfg.BurstCycles == 0 {
		t.Error("default latencies must be non-zero")
	}
}
