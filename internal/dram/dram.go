// Package dram models the off-chip memory of the simulated system: an
// LPDDR5-like device with per-channel bandwidth occupancy and a fixed device
// latency, matching the "LPDDR5_5500_1x16_BG_BL32, single channel" row of
// Table 1 (Figure 18 widens it to multiple channels).
//
// The model is deliberately simple but captures the two effects the paper's
// results depend on: (1) every access — demand, prefetch, or writeback —
// occupies a channel for a burst, so inaccurate prefetching steals bandwidth
// from demand traffic; (2) queueing delay grows when traffic bursts exceed
// channel bandwidth, which is what punishes over-aggressive prefetchers on
// bandwidth-sensitive workloads such as astar.
package dram

import "prophet/internal/mem"

// Config describes the memory device.
type Config struct {
	// Channels is the number of independent channels; lines are
	// channel-interleaved by line address.
	Channels int
	// BaseLatency is the unloaded access latency in core cycles
	// (row activation + CAS + transfer head).
	BaseLatency uint64
	// BurstCycles is the channel occupancy of one 64-byte transfer in core
	// cycles. At a 3GHz core and 11GB/s per LPDDR5-5500 x16 channel a 64B
	// line occupies the channel for ~17 cycles.
	BurstCycles uint64
	// MaxQueue bounds the modelled backlog per channel: once a channel is
	// this many bursts behind, further requests see the saturated delay
	// rather than growing it without bound. 0 means unbounded.
	MaxQueue int
}

// Default returns the Table 1 configuration (single channel).
func Default() Config {
	return Config{Channels: 1, BaseLatency: 200, BurstCycles: 17, MaxQueue: 64}
}

// Stats counts DRAM traffic. Reads + Writes is the "DRAM traffic" metric of
// Figure 11 and Figure 19(b).
type Stats struct {
	Reads  uint64
	Writes uint64
	// ReadLatencySum accumulates total read latency for average-latency
	// reporting.
	ReadLatencySum uint64
}

// Traffic returns total line transfers (reads + writes).
func (s Stats) Traffic() uint64 { return s.Reads + s.Writes }

// DRAM is the memory device model.
type DRAM struct {
	cfg  Config
	busy []uint64 // per-channel cycle until which the channel is occupied
	st   Stats
}

// New builds a DRAM model. It panics on a non-positive channel count, which
// is a static configuration error.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 {
		panic("dram: channel count must be positive")
	}
	return &DRAM{cfg: cfg, busy: make([]uint64, cfg.Channels)}
}

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Reset restores the just-constructed state, reusing the channel array. It
// exists so internal/sim can pool simulated systems across runs.
func (d *DRAM) Reset() {
	clear(d.busy)
	d.st = Stats{}
}

// Stats returns a copy of the traffic counters.
func (d *DRAM) Stats() Stats { return d.st }

func (d *DRAM) channel(l mem.Line) int {
	return int(uint64(l) % uint64(d.cfg.Channels))
}

// Read issues a line read at cycle now and returns the cycle its data
// arrives.
func (d *DRAM) Read(l mem.Line, now uint64) (done uint64) {
	ch := d.channel(l)
	start := d.schedule(ch, now)
	done = start + d.cfg.BaseLatency
	d.st.Reads++
	d.st.ReadLatencySum += done - now
	return done
}

// Write issues a writeback at cycle now. Writebacks are posted (the requester
// does not wait) but still occupy channel bandwidth.
func (d *DRAM) Write(l mem.Line, now uint64) {
	ch := d.channel(l)
	d.schedule(ch, now)
	d.st.Writes++
}

// schedule reserves one burst on channel ch at or after cycle now and returns
// the service start cycle.
func (d *DRAM) schedule(ch int, now uint64) uint64 {
	start := now
	if d.busy[ch] > start {
		start = d.busy[ch]
	}
	if d.cfg.MaxQueue > 0 {
		cap := now + uint64(d.cfg.MaxQueue)*d.cfg.BurstCycles
		if start > cap {
			start = cap
		}
	}
	d.busy[ch] = start + d.cfg.BurstCycles
	return start
}

// AvgReadLatency returns the mean read latency in cycles (0 if no reads).
func (d *DRAM) AvgReadLatency() float64 {
	if d.st.Reads == 0 {
		return 0
	}
	return float64(d.st.ReadLatencySum) / float64(d.st.Reads)
}
