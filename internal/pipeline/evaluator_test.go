package pipeline

import (
	"context"
	"sync"
	"testing"

	"prophet/internal/mem"
	"prophet/internal/workloads"
)

func evalJobs(records uint64) []Job {
	var jobs []Job
	for _, name := range []string{"sphinx3", "xalancbmk"} {
		w, _ := workloads.Get(name)
		factory := func() mem.Source { return w.Source(records) }
		for _, scheme := range []string{"baseline", "triage", "triangel"} {
			jobs = append(jobs, Job{Key: name, Factory: factory, Scheme: scheme})
		}
	}
	return jobs
}

// TestBaselineSingleflight: concurrent Baseline calls for one key simulate
// exactly once.
func TestBaselineSingleflight(t *testing.T) {
	ev := NewEvaluator(Default(), 8)
	w, _ := workloads.Get("sphinx3")
	factory := func() mem.Source { return w.Source(20_000) }
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev.Baseline("sphinx3", factory)
		}()
	}
	wg.Wait()
	hits, misses := ev.CacheStats()
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (singleflight)", misses)
	}
	if hits != 7 {
		t.Fatalf("hits = %d, want 7", hits)
	}
}

// TestSweepOrderAndBaselineSharing: outcomes come back in job order and the
// three schemes of each workload share one baseline simulation.
func TestSweepOrderAndBaselineSharing(t *testing.T) {
	ev := NewEvaluator(Default(), 4)
	jobs := evalJobs(20_000)
	outs, err := ev.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if out.Err != nil {
			t.Fatalf("job %d: %v", i, out.Err)
		}
		if out.Job.Key != jobs[i].Key || out.Job.Scheme != jobs[i].Scheme {
			t.Fatalf("outcome %d out of order: got %s/%s want %s/%s",
				i, out.Job.Key, out.Job.Scheme, jobs[i].Key, jobs[i].Scheme)
		}
		if out.Base.IPC() <= 0 {
			t.Fatalf("job %d missing baseline", i)
		}
	}
	if _, misses := ev.CacheStats(); misses != 2 {
		t.Fatalf("misses = %d, want 2 (one per workload)", misses)
	}
	// The baseline scheme's stats are the cached baseline itself.
	if outs[0].Stats != outs[0].Base {
		t.Fatal("baseline scheme did not reuse the cached run")
	}
}

// TestRunUnknownScheme: unregistered names error cleanly.
func TestRunUnknownScheme(t *testing.T) {
	ev := NewEvaluator(Default(), 1)
	w, _ := workloads.Get("sphinx3")
	out := ev.Run(context.Background(), Job{
		Key:     "sphinx3",
		Factory: func() mem.Source { return w.Source(1_000) },
		Scheme:  "no-such-scheme",
	})
	if out.Err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestSweepEmpty: zero jobs is a no-op, not a hang.
func TestSweepEmpty(t *testing.T) {
	ev := NewEvaluator(Default(), 4)
	outs, err := ev.Sweep(context.Background())
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty sweep: outs=%d err=%v", len(outs), err)
	}
}
