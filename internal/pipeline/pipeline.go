// Package pipeline orchestrates complete evaluation flows: baseline and
// hardware-prefetcher runs, the RPG2 profile-and-tune flow, and Prophet's
// three-step Profiling -> Analysis -> Learning loop from Figure 5.
//
// The package is the programmatic equivalent of the paper's methodology
// (Section 5.1): every scheme runs the same trace on the same simulated
// machine, differing only in the prefetching engine attached.
package pipeline

import (
	"prophet/internal/analysis"
	"prophet/internal/core"
	"prophet/internal/learning"
	"prophet/internal/mem"
	"prophet/internal/pmu"
	"prophet/internal/rpg2"
	"prophet/internal/sim"
	"prophet/internal/triage"
	"prophet/internal/triangel"

	// Registered for their scheme-registry side effects: every binary that
	// evaluates through the pipeline can resolve "gaze" and "adaptive".
	_ "prophet/internal/adaptive"
	_ "prophet/internal/gaze"
)

// SourceFactory produces a fresh deterministic trace for each run.
// Schemes that profile before running (RPG2, Prophet) need several passes
// over identical traces, exactly like re-running a binary on the same input.
type SourceFactory func() mem.Source

// RunBaseline runs the system without any temporal or software prefetcher
// (the L1 stride prefetcher of Table 1 stays on). All speedups in the
// figures are normalized to this configuration.
func RunBaseline(cfg sim.Config, src mem.Source) sim.Stats {
	return sim.Run(cfg, nil, nil, nil, nil, src)
}

// RunTriage runs the Triage hardware prefetcher.
func RunTriage(cfg sim.Config, tcfg triage.Config, src mem.Source) sim.Stats {
	return sim.Run(cfg, triage.New(tcfg), nil, nil, nil, src)
}

// RunTriangel runs the Triangel hardware prefetcher.
func RunTriangel(cfg sim.Config, tcfg triangel.Config, src mem.Source) sim.Stats {
	return sim.Run(cfg, triangel.New(tcfg), nil, nil, nil, src)
}

// --- RPG2 flow ---

// RPG2Result carries the RPG2 evaluation outcome.
type RPG2Result struct {
	Stats    sim.Stats
	Kernels  int
	Distance int
}

// RunRPG2 performs the full RPG2 methodology: profile to find stride
// kernels, tune the prefetch distance by binary search (on a shortened
// trace), then run with the best distance. With no qualifying kernels the
// scheme degenerates to the baseline, as on most SPEC workloads.
//
// Deprecated: the flow lives in rpg2.Evaluate and runs through the scheme
// registry; use an Evaluator with the "rpg2" scheme instead.
func RunRPG2(cfg sim.Config, factory SourceFactory, tuneRecords uint64) RPG2Result {
	res := rpg2.Evaluate(cfg, sim.Opts{}, factory, tuneRecords, nil)
	return RPG2Result{Stats: res.Stats, Kernels: res.Kernels, Distance: res.Distance}
}

// --- Prophet flow (Figure 5) ---

// Config bundles the Prophet pipeline parameters.
type Config struct {
	Sim      sim.Config
	Prophet  core.Config
	Analysis analysis.Params
	// L is the Equation 4 designer parameter.
	L int
	// Run shapes how simulation passes execute (block size, intra-run
	// parallelism). Results are bit-identical for every value, so Run is
	// excluded from result cache keys and store fingerprints.
	Run sim.Opts
}

// Default returns the paper's evaluated pipeline configuration.
func Default() Config {
	return Config{
		Sim:      sim.Default(),
		Prophet:  core.DefaultConfig(),
		Analysis: analysis.DefaultParams(),
		L:        learning.DefaultL,
	}
}

// Prophet is the stateful pipeline: it accumulates profiles across inputs
// (Step 3) and regenerates hints (Step 2) on demand.
type Prophet struct {
	cfg     Config
	profile *learning.Profile
	result  analysis.Result
	fresh   bool // result reflects the current profile
}

// NewProphet starts an empty pipeline.
func NewProphet(cfg Config) *Prophet {
	return &Prophet{cfg: cfg, profile: learning.NewProfile(cfg.L)}
}

// Profile executes Step 1: run the input under the simplified temporal
// prefetcher (1MB fixed table, degree 1, no insertion policy) collecting
// PMU counters.
func (p *Prophet) Profile(src mem.Source) *pmu.Counters {
	counters := pmu.NewCounters(1)
	simplified := p.cfg.Prophet
	simplified.Degree = 1
	simplified.Features = core.Features{}
	engine := core.New(simplified, core.HintSet{}, nil)
	sim.RunOpts(p.cfg.Sim, p.cfg.Run, engine, nil, counters, nil, src)
	engine.Release()
	return counters
}

// Learn executes Step 3: merge counters into the persistent profile.
func (p *Prophet) Learn(c *pmu.Counters) {
	p.profile.Learn(c)
	p.fresh = false
}

// ProfileAndLearn chains Steps 1 and 3 for one input.
func (p *Prophet) ProfileAndLearn(src mem.Source) {
	p.Learn(p.Profile(src))
}

// Analyze executes Step 2: generate hints from the merged profile. The
// per-PC metadata scan shards across the run's derated intra-run worker
// budget; the merge is deterministic, so the result is identical at every
// width.
func (p *Prophet) Analyze() analysis.Result {
	if !p.fresh {
		p.result = analysis.AnalyzeWith(p.profile, p.cfg.Analysis, sim.IntraRunWorkers(p.cfg.Run.Parallelism))
		p.fresh = true
	}
	return p.result
}

// Profile returns the persistent learning state (for inspection).
func (p *Prophet) ProfileState() *learning.Profile { return p.profile }

// Engine builds a Prophet engine from the current hints with the given
// feature set (the Figure 19 ablation toggles features cumulatively).
func (p *Prophet) Engine(features core.Features) *core.Prophet {
	res := p.Analyze()
	cfg := p.cfg.Prophet
	cfg.Features = features
	return core.New(cfg, res.Hints, res.Weights)
}

// Run executes the optimized binary with all Prophet features.
func (p *Prophet) Run(src mem.Source) sim.Stats {
	return p.RunWithFeatures(core.AllFeatures(), src)
}

// RunWithFeatures executes with a specific feature subset.
func (p *Prophet) RunWithFeatures(features core.Features, src mem.Source) sim.Stats {
	engine := p.Engine(features)
	st := sim.RunOpts(p.cfg.Sim, p.cfg.Run, engine, nil, nil, nil, src)
	engine.Release()
	return st
}

// RunProphetDirect is the common single-input flow: profile the input once,
// learn, analyze, and run the optimized binary on it.
func RunProphetDirect(cfg Config, factory SourceFactory) (sim.Stats, *Prophet) {
	p := NewProphet(cfg)
	p.ProfileAndLearn(factory())
	return p.Run(factory()), p
}
