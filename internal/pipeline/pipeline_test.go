package pipeline

import (
	"testing"

	"prophet/internal/core"
	"prophet/internal/mem"
	"prophet/internal/triage"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

// testWorkload is a small, fast workload with a clean temporal pattern and a
// junk PC, scaled for quick runs.
func testWorkload() workloads.Workload {
	return workloads.Workload{Name: "pipe-test", Spec: workloads.Spec{
		Name: "pipe-test",
		Seed: 42,
		Patterns: []workloads.PatternSpec{
			{Kind: workloads.Temporal, Weight: 0.45, SeqLines: 3000, Gap: 3, PCSeed: 11},
			{Kind: workloads.PointerChase, Weight: 0.3, SeqLines: 2500, Gap: 3, PCSeed: 12},
			{Kind: workloads.RandomAccess, Weight: 0.25, Gap: 3, PCSeed: 13},
		},
		Records: 50_000,
	}}
}

func testFactory() SourceFactory {
	w := testWorkload()
	return func() mem.Source { return w.Source(0) }
}

func TestBaselineAndSchemesRun(t *testing.T) {
	cfg := Default()
	f := testFactory()
	base := RunBaseline(cfg.Sim, f())
	if base.IPC() <= 0 {
		t.Fatal("baseline IPC")
	}
	tg := RunTriage(cfg.Sim, triage.Default(), f())
	tr := RunTriangel(cfg.Sim, triangel.Default(), f())
	if tg.TPIssued == 0 || tr.TPIssued == 0 {
		t.Fatal("hardware prefetchers issued nothing")
	}
}

func TestProphetPipelineImproves(t *testing.T) {
	cfg := Default()
	f := testFactory()
	base := RunBaseline(cfg.Sim, f())
	st, p := RunProphetDirect(cfg, f)
	if st.IPC() <= base.IPC() {
		t.Fatalf("Prophet (%.4f) did not beat baseline (%.4f) on a temporal workload", st.IPC(), base.IPC())
	}
	res := p.Analyze()
	if len(res.Hints.PC) == 0 {
		t.Fatal("no hints generated")
	}
	// The random PC must receive a do-not-insert hint.
	filtered := 0
	for _, h := range res.Hints.PC {
		if !h.Insert {
			filtered++
		}
	}
	if filtered == 0 {
		t.Fatal("EL_ACC filter marked no PC; the random stream should qualify")
	}
}

func TestProfileCollectsCounters(t *testing.T) {
	p := NewProphet(Default())
	counters := p.Profile(testFactory()())
	if len(counters.PC) == 0 {
		t.Fatal("no PC counters collected")
	}
	if counters.Insertions == 0 {
		t.Fatal("no table insertions recorded")
	}
}

func TestLearningAccumulates(t *testing.T) {
	p := NewProphet(Default())
	if p.ProfileState().Loops != 0 {
		t.Fatal("fresh pipeline has loops")
	}
	p.ProfileAndLearn(testFactory()())
	p.ProfileAndLearn(testFactory()())
	if p.ProfileState().Loops != 2 {
		t.Fatalf("Loops = %d", p.ProfileState().Loops)
	}
}

func TestAnalyzeIsCached(t *testing.T) {
	p := NewProphet(Default())
	p.ProfileAndLearn(testFactory()())
	r1 := p.Analyze()
	r2 := p.Analyze()
	if &r1.Hints.PC == &r2.Hints.PC {
		// Maps compare by pointer identity here: same cached result.
		return
	}
	// Re-learning invalidates the cache.
	p.ProfileAndLearn(testFactory()())
	_ = p.Analyze()
}

func TestFeatureSubsetsRun(t *testing.T) {
	p := NewProphet(Default())
	p.ProfileAndLearn(testFactory()())
	for _, f := range []core.Features{
		{},
		{Replacement: true},
		{Replacement: true, Insertion: true},
		core.AllFeatures(),
	} {
		st := p.RunWithFeatures(f, testFactory()())
		if st.Core.MemRecords == 0 {
			t.Fatalf("features %+v: empty run", f)
		}
	}
}

func TestRPG2NoKernelsFallsBackToBaseline(t *testing.T) {
	cfg := Default()
	// Pure pointer chase: no stride kernels.
	w := workloads.Workload{Name: "chase", Spec: workloads.Spec{
		Name:     "chase",
		Seed:     7,
		Patterns: []workloads.PatternSpec{{Kind: workloads.PointerChase, Weight: 1, SeqLines: 2000, Gap: 3}},
		Records:  30_000,
	}}
	f := func() mem.Source { return w.Source(0) }
	res := RunRPG2(cfg.Sim, f, 10_000)
	if res.Kernels != 0 {
		t.Fatalf("pointer chase yielded %d kernels", res.Kernels)
	}
	base := RunBaseline(cfg.Sim, f())
	if res.Stats.IPC() != base.IPC() {
		t.Fatalf("no-kernel RPG2 (%.4f) must equal baseline (%.4f)", res.Stats.IPC(), base.IPC())
	}
}

func TestRPG2FindsStrideKernels(t *testing.T) {
	cfg := Default()
	w := workloads.Workload{Name: "ind", Spec: workloads.Spec{
		Name:     "ind",
		Seed:     8,
		Patterns: []workloads.PatternSpec{{Kind: workloads.IndirectStride, Weight: 1, SeqLines: 4096, Gap: 2}},
		Records:  40_000,
	}}
	f := func() mem.Source { return w.Source(0) }
	res := RunRPG2(cfg.Sim, f, 20_000)
	if res.Kernels == 0 {
		t.Fatal("strided kernel not identified")
	}
}

func TestDeterministicPipeline(t *testing.T) {
	run := func() float64 {
		st, _ := RunProphetDirect(Default(), testFactory())
		return st.IPC()
	}
	if run() != run() {
		t.Fatal("pipeline runs are not deterministic")
	}
}
