package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"prophet/internal/mem"
	"prophet/internal/registry"
	"prophet/internal/sim"
)

// Job names one unit of evaluation work: a workload trace run under a
// registered scheme.
type Job struct {
	// Key identifies the trace for baseline caching. Two jobs with equal
	// keys must produce identical traces from their factories (the usual
	// key is "name@records").
	Key string
	// Factory produces a fresh deterministic trace per simulation pass.
	Factory SourceFactory
	// Scheme is the registered scheme name ("baseline", "triage",
	// "triangel", "rpg2", "prophet", or anything registered since).
	Scheme string
	// TuneRecords caps tuning traces for schemes that search runtime
	// knobs (RPG2). 0 means full-length.
	TuneRecords uint64
}

// Outcome is one job's result. Err is non-nil when the scheme is unknown,
// the scheme itself failed, or the sweep was cancelled before the job ran.
type Outcome struct {
	Job   Job
	Stats sim.Stats
	// Base is the cached no-temporal-prefetching baseline for the same
	// trace — every normalized metric divides by it.
	Base sim.Stats
	// Meta carries scheme extras (rpg2: kernels/distance; prophet:
	// hints/metaWays/disableTP).
	Meta map[string]int
	Err  error
}

// Evaluator owns a pipeline configuration, a per-trace baseline cache, and
// a bounded worker pool. It is safe for concurrent use; all scheme runs are
// deterministic, so parallel sweeps return bit-identical results to serial
// ones.
type Evaluator struct {
	cfg     Config
	workers int

	mu        sync.Mutex
	baselines map[string]*baselineEntry

	hits, misses atomic.Int64
}

type baselineEntry struct {
	once  sync.Once
	stats sim.Stats
}

// traceEntry materializes one trace, once. Trace factories are deterministic
// per key, so every simulation pass over the same key — baseline, scheme
// run, Prophet's profile pass, RPG2's tuning ladder, each scheme of a sweep
// — can replay one in-memory record slice instead of re-generating (or
// re-decoding) the stream. Generation is a measurable fraction of short
// runs; this is the sweep-level scratch reuse that removes it.
type traceEntry struct {
	once sync.Once
	recs []mem.Access
}

// traceStore is the process-wide materialized-trace cache. It is global, not
// per-evaluator, because a trace depends only on its key (workload name,
// record count, file identity) — never on the system configuration — so
// independent evaluators sharing a process can share the records. The FIFO
// bound keeps a long-lived daemon from accumulating every trace it served.
var traceStore struct {
	sync.Mutex
	entries map[string]*traceEntry
	order   []string // FIFO of cached keys
}

// traceCacheEntries bounds the materialized-trace cache.
const traceCacheEntries = 8

// NewEvaluator builds an evaluator. workers <= 0 selects runtime.NumCPU().
func NewEvaluator(cfg Config, workers int) *Evaluator {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Evaluator{
		cfg:       cfg,
		workers:   workers,
		baselines: map[string]*baselineEntry{},
	}
}

// cachedFactory wraps a job's trace factory so all passes share one
// materialized record slice. Concurrent callers for the same key coalesce on
// the entry's once; the FIFO bound evicts old keys from the store, but
// factories already handed out keep their entry alive until they are done.
func cachedFactory(key string, f SourceFactory) SourceFactory {
	traceStore.Lock()
	if traceStore.entries == nil {
		traceStore.entries = map[string]*traceEntry{}
	}
	entry, ok := traceStore.entries[key]
	if !ok {
		entry = &traceEntry{}
		traceStore.entries[key] = entry
		traceStore.order = append(traceStore.order, key)
		if len(traceStore.order) > traceCacheEntries {
			delete(traceStore.entries, traceStore.order[0])
			traceStore.order = traceStore.order[1:]
		}
	}
	traceStore.Unlock()
	return func() mem.Source {
		// Materialize shares the backing slice of already slice-backed
		// sources (file: traces decoded by the root-level cache), so the
		// two cache layers never hold duplicate copies of one trace.
		entry.once.Do(func() { entry.recs = mem.Materialize(f()) })
		return mem.NewSliceSource(entry.recs)
	}
}

// Config returns the evaluator's pipeline configuration.
func (e *Evaluator) Config() Config { return e.cfg }

// Workers returns the sweep pool width.
func (e *Evaluator) Workers() int { return e.workers }

// CacheStats reports baseline cache hits and misses so far.
func (e *Evaluator) CacheStats() (hits, misses int64) {
	return e.hits.Load(), e.misses.Load()
}

// Baseline returns the no-temporal-prefetching run for the trace identified
// by key, simulating it at most once per evaluator. Concurrent callers for
// the same key block on one simulation (singleflight) — the run is
// deterministic, so whoever computes it, everyone sees the same stats.
func (e *Evaluator) Baseline(key string, factory SourceFactory) sim.Stats {
	e.mu.Lock()
	entry, ok := e.baselines[key]
	if !ok {
		entry = &baselineEntry{}
		e.baselines[key] = entry
	}
	e.mu.Unlock()
	computed := false
	entry.once.Do(func() {
		computed = true
		entry.stats = sim.RunOpts(e.cfg.Sim, e.cfg.Run, nil, nil, nil, nil, factory())
	})
	if computed {
		e.misses.Add(1)
	} else {
		e.hits.Add(1)
	}
	return entry.stats
}

// RunDirect implements registry.ProphetRunner: the single-input Figure 5
// flow (profile, learn, analyze, run) on a fresh pipeline.
func (e *Evaluator) RunDirect(factory registry.SourceFactory) (sim.Stats, map[string]int) {
	p := NewProphet(e.cfg)
	p.ProfileAndLearn(factory())
	res := p.Analyze()
	st := p.Run(factory())
	meta := map[string]int{"hints": len(res.Hints.PC), "metaWays": res.Hints.MetaWays}
	if res.Hints.DisableTP {
		meta["disableTP"] = 1
	}
	return st, meta
}

// Run executes one job synchronously, consulting the baseline cache.
func (e *Evaluator) Run(ctx context.Context, job Job) Outcome {
	out := Outcome{Job: job}
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}
	factory, ok := registry.Lookup(job.Scheme)
	if !ok {
		out.Err = fmt.Errorf("pipeline: unknown scheme %q (registered: %s)",
			job.Scheme, strings.Join(registry.Names(), ", "))
		return out
	}
	job.Factory = cachedFactory(job.Key, job.Factory)
	out.Base = e.Baseline(job.Key, job.Factory)
	if job.Scheme == "baseline" {
		// The baseline scheme IS the cached run; don't simulate it twice.
		out.Stats = out.Base
		return out
	}
	res, err := factory().Run(registry.Context{
		Sim:         e.cfg.Sim,
		Opts:        e.cfg.Run,
		Factory:     registry.SourceFactory(job.Factory),
		TuneRecords: job.TuneRecords,
		Baseline:    func() sim.Stats { return e.Baseline(job.Key, job.Factory) },
		Prophet:     e,
	})
	out.Stats, out.Meta, out.Err = res.Stats, res.Meta, err
	return out
}

// Sweep fans the jobs out over the worker pool and returns their outcomes
// in job order — results are positionally deterministic and, because every
// run is pure, bit-identical to a serial execution. Cancelling the context
// stops dispatch promptly: jobs not yet started come back with Err set to
// the context error (in-flight simulations run to completion; the simulator
// has no preemption points).
func (e *Evaluator) Sweep(ctx context.Context, jobs ...Job) ([]Outcome, error) {
	out := make([]Outcome, len(jobs))
	ForEach(e.workers, len(jobs), func(i int) {
		out[i] = e.Run(ctx, jobs[i])
	})
	return out, ctx.Err()
}

// ForEach runs fn(i) for i in [0,n) on up to workers goroutines and blocks
// until all complete. It is the shared fan-out primitive behind Sweep and
// the experiment runners: callers write results into index-addressed slots,
// so output stays deterministic whatever the interleaving.
func ForEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
