package prophet_test

import (
	"testing"

	"prophet"
)

func TestCatalogAndFind(t *testing.T) {
	names := prophet.Catalog()
	if len(names) < 20 {
		t.Fatalf("catalog has only %d workloads", len(names))
	}
	for _, n := range []string{"mcf", "gcc_166", "bfs_100000_16"} {
		if _, err := prophet.Find(n); err != nil {
			t.Errorf("Find(%q): %v", n, err)
		}
	}
	if _, err := prophet.Find("not_a_workload"); err == nil {
		t.Error("bogus name accepted")
	}
	// Custom graph sizes parse even outside the CRONO list.
	if _, err := prophet.Find("bfs_1234_4"); err != nil {
		t.Errorf("custom graph name rejected: %v", err)
	}
}

func TestEvaluateBaselineIsUnity(t *testing.T) {
	w, _ := prophet.Find("sphinx3")
	w = w.WithRecords(40_000)
	r, err := prophet.Evaluate(w, prophet.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup != 1.0 || r.NormalizedTraffic != 1.0 {
		t.Fatalf("baseline not normalized to itself: %+v", r)
	}
	if r.IPC <= 0 {
		t.Fatal("IPC must be positive")
	}
}

func TestEvaluateUnknownScheme(t *testing.T) {
	w, _ := prophet.Find("sphinx3")
	if _, err := prophet.Evaluate(w.WithRecords(10_000), prophet.Scheme("nope")); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	w, _ := prophet.Find("omnetpp")
	w = w.WithRecords(80_000)
	p := prophet.NewPipeline(prophet.DefaultOptions())
	p.ProfileInput(w)
	if p.Loops() != 1 {
		t.Fatalf("Loops = %d", p.Loops())
	}
	bin := p.Optimize()
	if bin.PCHints == 0 || bin.PCHints > 128 {
		t.Fatalf("PCHints = %d, want in (0,128]", bin.PCHints)
	}
	if bin.MetaWays <= 0 && !bin.TPDisabled {
		t.Fatalf("binary has no resizing hint: %+v", bin)
	}
	r := p.RunBinary(bin, w)
	if r.Speedup <= 1.0 {
		t.Fatalf("optimized binary speedup %.3f on omnetpp; expected a gain", r.Speedup)
	}
	if r.Coverage <= 0 {
		t.Fatal("no coverage")
	}
}

func TestProphetBeatsTriangelOnHeadlineWorkloads(t *testing.T) {
	// The paper's headline: Prophet's profile-guided management beats the
	// runtime scheme where short-term heuristics mispredict.
	for _, name := range []string{"omnetpp", "soplex_pds-50"} {
		w, _ := prophet.Find(name)
		w = w.WithRecords(120_000)
		pr, err := prophet.Evaluate(w, prophet.Prophet)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := prophet.Evaluate(w, prophet.Triangel)
		if err != nil {
			t.Fatal(err)
		}
		if pr.Speedup <= tr.Speedup {
			t.Errorf("%s: Prophet %.3f <= Triangel %.3f", name, pr.Speedup, tr.Speedup)
		}
	}
}

func TestExperimentAPI(t *testing.T) {
	ids := prophet.ExperimentIDs()
	if len(ids) != 19 {
		t.Fatalf("ExperimentIDs = %d entries", len(ids))
	}
	out, err := prophet.Experiment("ST", true)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty experiment output")
	}
	if _, err := prophet.Experiment("nope", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDeterministicEvaluate(t *testing.T) {
	w, _ := prophet.Find("xalancbmk")
	w = w.WithRecords(30_000)
	a, _ := prophet.Evaluate(w, prophet.Triangel)
	b, _ := prophet.Evaluate(w, prophet.Triangel)
	if a != b {
		t.Fatalf("Evaluate not deterministic: %+v vs %+v", a, b)
	}
}
