// Durable result store plumbing: the public half of the disk cache tier.
// An Evaluator given a ResultStore (WithResultStore / UseResultStore) never
// recomputes a job whose result is already stored — Run, RunJob, SweepLocal
// and sharded Sweep all consult the store first and write completed results
// through — so restarts start warm and a fleet coordinator's store turns
// every peer's past work into O(1) disk reads for the whole fleet.
//
// The contract that makes this safe is content addressing: StoreKey is a
// pure function of the request, the stored value encoding is canonical
// JSON (EncodeStoredResult), and the store itself is namespaced by
// StoreFingerprint — the engine schema generation, build version, and
// resolved simulation options — so results can only ever be replayed into
// the exact engine that would have produced them, byte-identically.
package prophet

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ResultStore is the durable second cache tier consulted below the
// in-memory layers: Get returns the stored value bytes for a key, Put
// persists a completed result. Implementations must be safe for concurrent
// use and idempotent under re-Put of an existing key; internal/resultstore
// provides the append-only log implementation served by prophetd's -store
// flag.
type ResultStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// engineSchema is the generation number of the simulation output schema.
// Bump it whenever a change to the simulator alters RunStats for a fixed
// request (the golden-fixture tests are the tripwire): the fingerprint
// change invalidates every durable store, so an upgraded engine can never
// serve bytes computed by an older one.
const engineSchema = 1

// StoreFingerprint identifies the engine that produces a result: the
// schema generation, the build version, and the resolved simulation
// options. Stores are namespaced by this string — prophetd stamps it into
// the store file at open — so any change to the simulator, its build, or
// its configuration self-invalidates previously stored results.
func StoreFingerprint(o Options) string {
	return fmt.Sprintf("schema=%d;version=%s;opts=%+v", engineSchema, Version(), o)
}

// StoreFingerprint returns the fingerprint of this evaluator's resolved
// configuration — the value a store serving this evaluator must be opened
// with.
func (e *Evaluator) StoreFingerprint() string { return StoreFingerprint(e.opts) }

// StoreKey is the canonical durable-store key of a job: a pure function of
// the request, shared by every tier (the prophetd serving cache, the disk
// store, and sweep dispatch), so one stored computation satisfies all of
// them. The fields are joined positionally with newlines; workload names
// never contain newlines.
func StoreKey(j Job) string {
	return fmt.Sprintf("evaluate\n%s\n%d\n%s\n%d",
		j.Workload.Name, j.Workload.Records, j.Scheme, j.TuneRecords)
}

// storedResult is the canonical stored-value shape. encoding/json renders
// float64s with the shortest round-tripping representation and sorts map
// keys, so encode→decode→encode is byte-stable and a replayed result is
// byte-identical to a recomputed one.
type storedResult struct {
	Stats RunStats       `json:"stats"`
	Meta  map[string]int `json:"meta,omitempty"`
}

// EncodeStoredResult serializes a completed report into the canonical
// durable-store value encoding.
func EncodeStoredResult(rep Report) ([]byte, error) {
	return json.Marshal(storedResult{Stats: rep.Stats, Meta: rep.Meta})
}

// DecodeStoredResult parses a stored value. Decoding is strict — unknown
// fields are an error — so bytes written under a schema the fingerprint
// failed to catch degrade to a recompute, never to silently zeroed fields.
func DecodeStoredResult(b []byte) (Report, error) {
	var sr storedResult
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		return Report{}, fmt.Errorf("prophet: decode stored result: %w", err)
	}
	return Report{Stats: sr.Stats, Meta: sr.Meta}, nil
}

// WithResultStore attaches a durable result store as the cache tier under
// the engine: jobs whose results are stored are answered from disk without
// simulating, and completed computations write through.
func WithResultStore(rs ResultStore) Option {
	return func(e *Evaluator) { e.store = rs }
}

// UseResultStore attaches rs to an already-constructed evaluator — the
// daemon's wiring order, where the store's fingerprint comes from the
// evaluator's resolved options. It is not synchronized with concurrent
// runs: call it before the evaluator starts serving.
func (e *Evaluator) UseResultStore(rs ResultStore) { e.store = rs }

// storable excludes jobs that must not be persisted: workloads backed by an
// on-disk path ("file:", "champsim:", "csv:") reference local files whose
// contents can change under the same name, so a durable entry could outlive
// the trace that produced it.
func storable(j Job) bool { return externalPath(j.Workload.Name) == "" }

// StoreLookup consults rs for j's completed result, applying the full
// read-side contract: storability (external-path workloads are never served
// from a store), the canonical key, and strict decoding (a corrupt or
// drifted-schema value reads as a miss, never as zeroed stats). It is the
// lookup every tier uses — the evaluator internally and prophetd's serving
// layer for its disk-tier probe.
func StoreLookup(rs ResultStore, j Job) (Report, bool) {
	if rs == nil || !storable(j) {
		return Report{}, false
	}
	b, ok := rs.Get(StoreKey(j))
	if !ok {
		return Report{}, false
	}
	rep, err := DecodeStoredResult(b)
	if err != nil {
		return Report{}, false
	}
	return rep, true
}

// storeGet consults the durable tier for a job's completed result.
func (e *Evaluator) storeGet(j Job) (Report, bool) {
	return StoreLookup(e.store, j)
}

// storePut writes a completed result through to the durable tier.
// Store failures never fail the run that produced the result.
func (e *Evaluator) storePut(j Job, rep Report) {
	if e.store == nil || !storable(j) {
		return
	}
	b, err := EncodeStoredResult(rep)
	if err != nil {
		return
	}
	_ = e.store.Put(StoreKey(j), b)
}
