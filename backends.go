// Sharded multi-backend sweep dispatch: the client half of the fleet
// protocol. An Evaluator configured with WithBackends fans Sweep jobs out
// over remote prophetd instances through internal/dispatch — deterministic
// hash sharding by workload+scheme, one batched POST /v1/batch per backend
// shard, bounded retries, and failover to the in-process engine — and
// merges results in job order, so output is byte-identical to a local
// sweep. The wire types below are shared with the serving side in
// internal/server, which keeps client and daemon from drifting apart.
package prophet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"prophet/internal/dispatch"
)

// BatchJob is one job of a POST /v1/batch request: the serialized form of a
// Job. Records 0 means the catalog default, exactly as in the Go API.
type BatchJob struct {
	Workload    string `json:"workload"`
	Records     uint64 `json:"records,omitempty"`
	Scheme      string `json:"scheme"`
	TuneRecords uint64 `json:"tuneRecords,omitempty"`
}

// Job resolves the wire form back to an engine job. Fields pass through
// verbatim — no trimming or canonicalization — so a job executes remotely
// exactly as it would locally and a sharded sweep stays byte-identical to
// SweepLocal even for malformed names (both sides then produce the same
// error row).
func (bj BatchJob) Job() Job {
	return Job{
		Workload:    Workload{Name: bj.Workload, Records: bj.Records},
		Scheme:      Scheme(bj.Scheme),
		TuneRecords: bj.TuneRecords,
	}
}

// BatchRequest is the POST /v1/batch body: a batch of sweep jobs executed
// by the receiving daemon's local engine (fan-out terminates at one hop, so
// fleets cannot cascade).
type BatchRequest struct {
	Jobs []BatchJob `json:"jobs"`
}

// BatchResult is one row of a batch reply, in job order. Exactly one of
// Stats/Error is set.
type BatchResult struct {
	Stats *RunStats      `json:"stats,omitempty"`
	Meta  map[string]int `json:"meta,omitempty"`
	Error string         `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch reply. Options echoes the engine
// configuration the daemon actually simulated — the coordinator rejects a
// batch whose configuration differs from its own, turning a misconfigured
// worker into an explicit failover instead of silently merged wrong-config
// results.
type BatchResponse struct {
	Options Options       `json:"options"`
	Results []BatchResult `json:"results"`
}

// httpBackend executes job batches against one remote prophetd instance.
// want is the coordinator's engine configuration; replies simulated under
// anything else are treated as backend failures.
type httpBackend struct {
	base   string // URL prefix without trailing slash
	client *http.Client
	want   Options
}

func (b *httpBackend) Name() string { return b.base }

func (b *httpBackend) Execute(ctx context.Context, jobs []Job) ([]Result, error) {
	req := BatchRequest{Jobs: make([]BatchJob, len(jobs))}
	for i, j := range jobs {
		req.Jobs[i] = BatchJob{
			Workload:    j.Workload.Name,
			Records:     j.Workload.Records,
			Scheme:      string(j.Scheme),
			TuneRecords: j.TuneRecords,
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("prophet: backend %s: encode batch: %w", b.base, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("prophet: backend %s: %w", b.base, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("prophet: backend %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("prophet: backend %s: HTTP %d: %s",
			b.base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("prophet: backend %s: decode batch reply: %w", b.base, err)
	}
	if br.Options != b.want {
		return nil, fmt.Errorf("prophet: backend %s: engine configuration mismatch (backend %+v, coordinator %+v) — start the worker with matching flags",
			b.base, br.Options, b.want)
	}
	if len(br.Results) != len(jobs) {
		return nil, fmt.Errorf("prophet: backend %s: %d results for %d jobs",
			b.base, len(br.Results), len(jobs))
	}
	out := make([]Result, len(jobs))
	for i, row := range br.Results {
		out[i].Job = jobs[i]
		switch {
		case row.Error != "":
			// The remote engine runs the exact error paths the local one
			// would, so the message round-trips unchanged.
			out[i].Err = errors.New(row.Error)
		case row.Stats == nil:
			return nil, fmt.Errorf("prophet: backend %s: result %d has neither stats nor error", b.base, i)
		default:
			out[i].Stats = *row.Stats
			out[i].Meta = row.Meta
		}
	}
	return out, nil
}

// DispatchStats snapshots the sweep dispatcher's counters. All zeros when
// no backends are configured.
type DispatchStats struct {
	// Remote counts jobs completed by remote backends.
	Remote int64 `json:"remote"`
	// Local counts jobs completed in process (pinned file: workloads and
	// failovers).
	Local int64 `json:"local"`
	// Retries counts batch retry attempts.
	Retries int64 `json:"retries"`
	// Failovers counts jobs re-run locally after a backend stayed down.
	Failovers int64 `json:"failovers"`
	// Cached counts jobs answered from the durable result store before
	// dispatch (zero unless WithResultStore is configured).
	Cached int64 `json:"cached"`
}

// shardKey is the deterministic hash input for backend assignment: the
// workload identity plus the scheme, so a fixed fleet places every
// (workload, scheme) cell on the same backend across sweeps and that
// backend's caches stay hot for it across repeated matrices. The tradeoff
// is within one sweep: a workload's scheme cells can spread over several
// workers, each simulating that workload's baseline once — accepted for
// the finer-grained load spread (a coarser workload-only key would pin a
// whole workload's matrix row, baseline included, to one worker).
func shardKey(j Job) string {
	return fmt.Sprintf("%s@%d|%s", j.Workload.Name, j.Workload.Records, j.Scheme)
}

// pinnedLocal reports jobs that must not leave this process: file: traces
// and external ingest traces (champsim:, csv:) reference paths remote
// daemons cannot read.
func pinnedLocal(j Job) bool { return externalPath(j.Workload.Name) != "" }

// newDispatcher wires the evaluator's backend ring. Called from New after
// the local engine exists (the dispatcher's failover closes over it).
func (e *Evaluator) newDispatcher() *dispatch.Dispatcher[Job, Result] {
	client := e.backendClient
	if client == nil {
		// No client-level timeout: simulations legitimately run long.
		// Callers bound sweeps with the context.
		client = &http.Client{}
	}
	ring := make([]dispatch.Backend[Job, Result], len(e.backendURLs))
	for i, u := range e.backendURLs {
		ring[i] = &httpBackend{base: strings.TrimRight(u, "/"), client: client, want: e.opts}
	}
	return dispatch.New(dispatch.Config[Job, Result]{
		Backends: ring,
		Local: func(ctx context.Context, jobs []Job) []Result {
			rs, _ := e.sweepLocal(ctx, jobs...)
			return rs
		},
		Key:      shardKey,
		Pin:      pinnedLocal,
		Retries:  e.backendRetries,
		MaxBatch: e.backendMaxBatch,
		// The durable result store is the fleet's shared cache tier: jobs
		// already stored skip dispatch entirely, and results computed by
		// remote peers are persisted here, so the next sweep (or the next
		// coordinator process on this store) reuses the whole fleet's
		// work. The closures read e.store at call time so UseResultStore
		// can attach the store after construction; they no-op without one.
		CacheGet: func(j Job) (Result, bool) {
			rep, ok := e.storeGet(j)
			if !ok {
				return Result{}, false
			}
			return Result{Job: j, Stats: rep.Stats, Meta: rep.Meta}, true
		},
		CachePut: func(j Job, r Result) {
			if r.Err != nil {
				return
			}
			e.storePut(j, Report{Stats: r.Stats, Meta: r.Meta})
		},
	})
}
