// Coordinated multi-backend sweep dispatch: the client half of the fleet
// protocol. An Evaluator configured with WithBackends fans Sweep jobs out
// over remote prophetd instances through internal/dispatch — chunks placed
// by a pluggable scheduler (hash affinity by workload+scheme, or
// least-loaded fed by GET /v1/health probes), batched POST /v1/batch
// requests, bounded retries, and failover to the in-process engine — and
// merges results in job order, so output is byte-identical to a local
// sweep. Backends can also join and leave the fleet at runtime
// (AddBackend/RemoveBackend, driven by prophetd's POST /v1/peers). The
// wire types below are shared with the serving side in internal/server,
// which keeps client and daemon from drifting apart.
package prophet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"prophet/internal/dispatch"
)

// BatchJob is one job of a POST /v1/batch request: the serialized form of a
// Job. Records 0 means the catalog default, exactly as in the Go API.
type BatchJob struct {
	Workload    string `json:"workload"`
	Records     uint64 `json:"records,omitempty"`
	Scheme      string `json:"scheme"`
	TuneRecords uint64 `json:"tuneRecords,omitempty"`
}

// Job resolves the wire form back to an engine job. Fields pass through
// verbatim — no trimming or canonicalization — so a job executes remotely
// exactly as it would locally and a sharded sweep stays byte-identical to
// SweepLocal even for malformed names (both sides then produce the same
// error row).
func (bj BatchJob) Job() Job {
	return Job{
		Workload:    Workload{Name: bj.Workload, Records: bj.Records},
		Scheme:      Scheme(bj.Scheme),
		TuneRecords: bj.TuneRecords,
	}
}

// BatchRequest is the POST /v1/batch body: a batch of sweep jobs executed
// by the receiving daemon's local engine (fan-out terminates at one hop, so
// fleets cannot cascade).
type BatchRequest struct {
	Jobs []BatchJob `json:"jobs"`
}

// BatchResult is one row of a batch reply, in job order. Exactly one of
// Stats/Error is set.
type BatchResult struct {
	Stats *RunStats      `json:"stats,omitempty"`
	Meta  map[string]int `json:"meta,omitempty"`
	Error string         `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/batch reply. Options echoes the engine
// configuration the daemon actually simulated — the coordinator rejects a
// batch whose configuration differs from its own, turning a misconfigured
// worker into an explicit failover instead of silently merged wrong-config
// results.
type BatchResponse struct {
	Options Options       `json:"options"`
	Results []BatchResult `json:"results"`
}

// Health is the GET /v1/health reply: a lightweight load and identity
// snapshot a coordinator polls to steer least-loaded scheduling and to
// verify a peer simulates a compatible engine.
type Health struct {
	// Version is the daemon's build version.
	Version string `json:"version"`
	// Engine is the daemon's engine fingerprint (schema generation, build
	// version, simulation options); coordinators refuse to schedule onto a
	// peer whose fingerprint differs from their own.
	Engine string `json:"engine"`
	// Workers is the daemon's sweep worker pool width.
	Workers int `json:"workers"`
	// QueueDepth is the number of queued async jobs awaiting a worker.
	QueueDepth int `json:"queueDepth"`
	// InFlight counts evaluation requests executing right now, whoever
	// submitted them.
	InFlight int `json:"inFlight"`
	// Peers is the size of the daemon's own backend fleet (0 for a plain
	// worker).
	Peers int `json:"peers"`
}

// httpBackend executes job batches against one remote prophetd instance.
// want is the coordinator's engine configuration; replies simulated under
// anything else are treated as backend failures. fp is the coordinator's
// engine fingerprint, checked against the peer's /v1/health report before
// load-driven scheduling trusts it.
type httpBackend struct {
	base   string // URL prefix without trailing slash
	client *http.Client
	want   Options
	fp     string
}

func (b *httpBackend) Name() string { return b.base }

// Probe implements dispatch.Prober over GET /v1/health, so load-driven
// schedulers see the peer's queue depth and in-flight work. A fingerprint
// mismatch is a probe failure: the peer would fail config enforcement at
// batch time anyway, so the scheduler deprioritizes it up front.
func (b *httpBackend) Probe(ctx context.Context) (dispatch.Load, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/health", nil)
	if err != nil {
		return dispatch.Load{}, fmt.Errorf("prophet: backend %s: %w", b.base, err)
	}
	resp, err := b.client.Do(hreq)
	if err != nil {
		return dispatch.Load{}, fmt.Errorf("prophet: backend %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dispatch.Load{}, fmt.Errorf("prophet: backend %s: health HTTP %d", b.base, resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return dispatch.Load{}, fmt.Errorf("prophet: backend %s: decode health: %w", b.base, err)
	}
	if b.fp != "" && h.Engine != b.fp {
		return dispatch.Load{}, fmt.Errorf("prophet: backend %s: engine fingerprint mismatch (backend %q, coordinator %q)",
			b.base, h.Engine, b.fp)
	}
	return dispatch.Load{QueueDepth: h.QueueDepth, InFlight: h.InFlight}, nil
}

func (b *httpBackend) Execute(ctx context.Context, jobs []Job) ([]Result, error) {
	req := BatchRequest{Jobs: make([]BatchJob, len(jobs))}
	for i, j := range jobs {
		req.Jobs[i] = BatchJob{
			Workload:    j.Workload.Name,
			Records:     j.Workload.Records,
			Scheme:      string(j.Scheme),
			TuneRecords: j.TuneRecords,
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("prophet: backend %s: encode batch: %w", b.base, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("prophet: backend %s: %w", b.base, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("prophet: backend %s: %w", b.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("prophet: backend %s: HTTP %d: %s",
			b.base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("prophet: backend %s: decode batch reply: %w", b.base, err)
	}
	if br.Options != b.want {
		return nil, fmt.Errorf("prophet: backend %s: engine configuration mismatch (backend %+v, coordinator %+v) — start the worker with matching flags",
			b.base, br.Options, b.want)
	}
	if len(br.Results) != len(jobs) {
		return nil, fmt.Errorf("prophet: backend %s: %d results for %d jobs",
			b.base, len(br.Results), len(jobs))
	}
	out := make([]Result, len(jobs))
	for i, row := range br.Results {
		out[i].Job = jobs[i]
		switch {
		case row.Error != "":
			// The remote engine runs the exact error paths the local one
			// would, so the message round-trips unchanged.
			out[i].Err = errors.New(row.Error)
		case row.Stats == nil:
			return nil, fmt.Errorf("prophet: backend %s: result %d has neither stats nor error", b.base, i)
		default:
			out[i].Stats = *row.Stats
			out[i].Meta = row.Meta
		}
	}
	return out, nil
}

// DispatchStats snapshots the sweep dispatcher's counters. All zeros when
// no backends are configured.
type DispatchStats struct {
	// Remote counts jobs completed by remote backends.
	Remote int64 `json:"remote"`
	// Local counts jobs completed in process (pinned file: workloads and
	// failovers).
	Local int64 `json:"local"`
	// Retries counts batch retry attempts.
	Retries int64 `json:"retries"`
	// Failovers counts jobs re-run locally after a backend stayed down.
	Failovers int64 `json:"failovers"`
	// Cached counts jobs answered from the durable result store before
	// dispatch (zero unless WithResultStore is configured).
	Cached int64 `json:"cached"`
	// ShortLocal counts result slots the local engine left unfilled by
	// returning fewer results than jobs — should stay zero; nonzero means
	// zero-valued rows were merged.
	ShortLocal int64 `json:"shortLocal"`
	// Stolen counts chunks executed by a backend other than their hash
	// owner (work stealing, or reassignment after a peer left the fleet).
	Stolen int64 `json:"stolen"`
}

// shardKey is the deterministic hash input for backend assignment: the
// workload identity plus the scheme, so a fixed fleet places every
// (workload, scheme) cell on the same backend across sweeps and that
// backend's caches stay hot for it across repeated matrices. The tradeoff
// is within one sweep: a workload's scheme cells can spread over several
// workers, each simulating that workload's baseline once — accepted for
// the finer-grained load spread (a coarser workload-only key would pin a
// whole workload's matrix row, baseline included, to one worker).
func shardKey(j Job) string {
	return fmt.Sprintf("%s@%d|%s", j.Workload.Name, j.Workload.Records, j.Scheme)
}

// pinnedLocal reports jobs that must not leave this process: file: traces
// and external ingest traces (champsim:, csv:) reference paths remote
// daemons cannot read.
func pinnedLocal(j Job) bool { return externalPath(j.Workload.Name) != "" }

// newHTTPBackend builds the dispatch backend for one peer base URL.
func (e *Evaluator) newHTTPBackend(base string) *httpBackend {
	return &httpBackend{base: base, client: e.backendClient, want: e.opts, fp: e.StoreFingerprint()}
}

// AddBackend joins a prophetd peer to the sweep fleet at runtime, effective
// from the next scheduling round of any in-flight sweep. URLs are
// normalized (trailing slash dropped); it reports false for an empty URL or
// a peer already in the fleet.
func (e *Evaluator) AddBackend(url string) bool {
	base := strings.TrimRight(url, "/")
	if base == "" {
		return false
	}
	return e.disp.Add(e.newHTTPBackend(base))
}

// RemoveBackend drains a peer from the sweep fleet: it stops receiving new
// chunks immediately, and batches it was still retrying fail over to the
// local engine, so no job is lost or duplicated. It reports false when the
// peer is not in the fleet.
func (e *Evaluator) RemoveBackend(url string) bool {
	return e.disp.Remove(strings.TrimRight(url, "/"))
}

// newDispatcher wires the evaluator's fleet coordinator. Called from New
// after the local engine exists (the dispatcher's failover closes over it);
// the dispatcher always exists so peers can join an initially empty fleet.
func (e *Evaluator) newDispatcher() *dispatch.Dispatcher[Job, Result] {
	if e.backendClient == nil {
		// No client-level timeout: simulations legitimately run long.
		// Callers bound sweeps with the context.
		e.backendClient = &http.Client{}
	}
	sched, err := dispatch.SchedulerByName(e.scheduler)
	if err != nil {
		panic("prophet: " + err.Error())
	}
	ring := make([]dispatch.Backend[Job, Result], len(e.backendURLs))
	for i, u := range e.backendURLs {
		ring[i] = e.newHTTPBackend(strings.TrimRight(u, "/"))
	}
	return dispatch.New(dispatch.Config[Job, Result]{
		Backends:  ring,
		Scheduler: sched,
		Logf:      e.logf,
		Local: func(ctx context.Context, jobs []Job) []Result {
			rs, _ := e.sweepLocal(ctx, jobs...)
			return rs
		},
		Key:      shardKey,
		Pin:      pinnedLocal,
		Retries:  e.backendRetries,
		MaxBatch: e.backendMaxBatch,
		// The durable result store is the fleet's shared cache tier: jobs
		// already stored skip dispatch entirely, and results computed by
		// remote peers are persisted here, so the next sweep (or the next
		// coordinator process on this store) reuses the whole fleet's
		// work. The closures read e.store at call time so UseResultStore
		// can attach the store after construction; they no-op without one.
		CacheGet: func(j Job) (Result, bool) {
			rep, ok := e.storeGet(j)
			if !ok {
				return Result{}, false
			}
			return Result{Job: j, Stats: rep.Stats, Meta: rep.Meta}, true
		},
		CachePut: func(j Job, r Result) {
			if r.Err != nil {
				return
			}
			e.storePut(j, Report{Stats: r.Stats, Meta: r.Meta})
		},
	})
}
