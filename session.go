package prophet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"prophet/internal/adaptive"
	"prophet/internal/core"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
)

// Session is the stateful Figure 5 loop bound to an Evaluator: Profile
// inputs under the simplified temporal prefetcher (Step 1), merge counters
// across inputs (Step 3), and Optimize into a Binary (Step 2) that adapts
// to every profiled input. Runs of the optimized binary reuse the
// evaluator's baseline cache, so re-evaluating after each learning loop
// never re-simulates a baseline.
//
// A Session is safe for concurrent use: the profile state is guarded by a
// mutex, so overlapping Profile/Optimize/Run calls serialize rather than
// race (the prophetd daemon exposes sessions to concurrent HTTP clients).
// Profiles still merge in call order — concurrent Profile calls commute in
// the learned weights but interleave nondeterministically, so callers that
// need a reproducible profile order should serialize their own calls.
type Session struct {
	e  *Evaluator
	id uint64

	mu sync.Mutex
	p  *pipeline.Prophet
}

// sessionIDs hands out process-unique session identities.
var sessionIDs atomic.Uint64

// NewSession starts an empty profile-guided session on this evaluator's
// configuration.
func (e *Evaluator) NewSession() *Session {
	return &Session{e: e, id: sessionIDs.Add(1), p: pipeline.NewProphet(e.eng.Config())}
}

// ID is the session's process-unique identity (1, 2, ... in creation
// order). Services that expose sessions as resources key them by it.
func (s *Session) ID() uint64 { return s.id }

// Profile executes Steps 1 and 3 for one input: run it under the simplified
// temporal prefetcher, collect PMU counters, and merge them into the
// persistent profile (Equations 4-5).
func (s *Session) Profile(w Workload) error {
	f, err := w.factory()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p.ProfileAndLearn(f())
	return nil
}

// Loops returns how many inputs have been learned.
func (s *Session) Loops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.ProfileState().Loops
}

// Optimize executes Step 2: analyze the merged counters into hints and
// "inject" them, producing the optimized Binary.
func (s *Session) Optimize() Binary {
	s.mu.Lock()
	res := s.p.Analyze()
	s.mu.Unlock()
	return Binary{
		PCHints:    len(res.Hints.PC),
		MetaWays:   res.Hints.MetaWays,
		TPDisabled: res.Hints.DisableTP,
		hints:      res.Hints,
		weights:    res.Weights,
	}
}

// Run executes the optimized binary on a workload, returning metrics
// normalized to the no-temporal-prefetching baseline on the same trace
// (cached across the whole evaluator). Run does not touch the profile
// state — the Binary is self-contained — so concurrent Runs of one session
// proceed in parallel.
func (s *Session) Run(ctx context.Context, b Binary, w Workload) (RunStats, error) {
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	f, err := w.factory()
	if err != nil {
		return RunStats{}, err
	}
	cfg := s.e.eng.Config()
	base := s.e.eng.Baseline(w.key(), f)
	engine := core.New(cfg.Prophet, b.hints, b.weights)
	st := sim.RunOpts(cfg.Sim, cfg.Run, engine, nil, nil, nil, f())
	return summarize(st, base), nil
}

// OnlineStats reports a run in the session's online-adaptation mode: the
// usual normalized metrics plus the adaptation trajectory of the
// phase-adaptive wrapper that produced them.
type OnlineStats struct {
	RunStats
	// Switches counts how many times the active engine changed mid-run.
	Switches int `json:"switches"`
	// Windows counts completed evaluation windows.
	Windows uint64 `json:"windows"`
	// Final names the engine that was active when the trace ended.
	Final string `json:"final"`
}

// RunOnline executes a workload in online-adaptation mode: instead of a
// profile-guided Binary, the phase-adaptive wrapper explores the candidate
// engines at runtime and exploits whichever fits the current phase. It is
// the no-profile counterpart to Run — nothing is learned ahead of time and
// the profile state is untouched, so it composes freely with the Figure 5
// loop on the same session. Metrics are normalized against the same cached
// baseline as Run.
func (s *Session) RunOnline(ctx context.Context, w Workload) (OnlineStats, error) {
	if err := ctx.Err(); err != nil {
		return OnlineStats{}, err
	}
	f, err := w.factory()
	if err != nil {
		return OnlineStats{}, err
	}
	cfg := s.e.eng.Config()
	base := s.e.eng.Baseline(w.key(), f)
	wr := adaptive.New(adaptive.Default())
	st := sim.RunOpts(cfg.Sim, cfg.Run, wr, nil, nil, nil, f())
	return OnlineStats{
		RunStats: summarize(st, base),
		Switches: wr.Switches(),
		Windows:  wr.Windows(),
		Final:    wr.Active(),
	}, nil
}

// Binary represents an optimized binary: the original program plus the
// injected hint instructions and CSR manipulation (Section 4.4).
type Binary struct {
	// PCHints is the number of per-instruction hints injected (<= 128).
	PCHints int
	// MetaWays is the CSR resizing hint (Equation 3).
	MetaWays int
	// TPDisabled reports the Equation 3 disable verdict.
	TPDisabled bool

	hints   core.HintSet
	weights map[mem.Addr]uint64
}

// HintInfo describes one injected per-instruction hint.
type HintInfo struct {
	// PC is the hinted memory instruction.
	PC uint64
	// Insert reports the Equation 1 insertion verdict.
	Insert bool
	// Priority is the Equation 2 replacement priority level.
	Priority int
	// Misses is the PC's profiled miss contribution (hint-buffer weight).
	Misses uint64
}

// Hints lists the injected per-instruction hints, heaviest miss
// contributors first (ties broken by PC for determinism).
func (b Binary) Hints() []HintInfo {
	out := make([]HintInfo, 0, len(b.hints.PC))
	for pc, h := range b.hints.PC {
		out = append(out, HintInfo{
			PC:       uint64(pc),
			Insert:   h.Insert,
			Priority: int(h.Priority),
			Misses:   b.weights[pc],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Misses != out[j].Misses {
			return out[i].Misses > out[j].Misses
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// String renders the binary's headline shape.
func (b Binary) String() string {
	return fmt.Sprintf("Binary{hints=%d metaWays=%d disableTP=%v}", b.PCHints, b.MetaWays, b.TPDisabled)
}
