// Benchmarks: one per table/figure of the paper (the harness behind
// `go test -bench`), plus micro-benchmarks of the core structures. The
// figure benchmarks run the same runners as cmd/experiments in Quick mode
// (reduced workload sets, scaled traces) and report the headline metric of
// each figure via b.ReportMetric, so `go test -bench=. -benchmem` regenerates
// the whole evaluation at CI-friendly cost. Run cmd/experiments for the
// full-scale numbers recorded in EXPERIMENTS.md.
package prophet_test

import (
	"context"
	"testing"

	"prophet"

	"prophet/internal/core"
	"prophet/internal/experiments"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/temporal"
	"prophet/internal/workloads"
)

// benchOpts is the shared quick configuration for figure benchmarks.
var benchOpts = experiments.Options{Quick: true}

// runExperiment executes one experiment per iteration and reports the value
// of a series at a label as the benchmark's custom metric. Allocations are
// always reported: allocs/op is a gated input of the perf-regression CI job,
// so every benchmark must produce it without requiring -benchmem.
func runExperiment(b *testing.B, id, series, label, metric string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if series != "" {
		if v, ok := last.Value(series, label); ok {
			b.ReportMetric(v, metric)
		}
	}
}

func BenchmarkTable1Config(b *testing.B)   { runExperiment(b, "T1", "", "", "") }
func BenchmarkFigure1Pattern(b *testing.B) { runExperiment(b, "F1", "", "", "") }

func BenchmarkFigure6AccuracyLevels(b *testing.B) { runExperiment(b, "F6", "", "", "") }

func BenchmarkFigure8MarkovTargets(b *testing.B) {
	runExperiment(b, "F8", "T=1", "Mean", "T1-fraction")
}

func BenchmarkFigure10Speedup(b *testing.B) {
	runExperiment(b, "F10", "Prophet", "Geomean", "prophet-speedup")
}

func BenchmarkFigure11Traffic(b *testing.B) {
	runExperiment(b, "F11", "Prophet", "Geomean", "prophet-traffic")
}

func BenchmarkFigure12CovAcc(b *testing.B) {
	runExperiment(b, "F12", "Prophet", "Geomean", "prophet-coverage")
}

func BenchmarkFigure13GccLearning(b *testing.B) {
	runExperiment(b, "F13", "Direct", "Geomean", "direct-speedup")
}

func BenchmarkFigure14LearnGeneralize(b *testing.B) {
	runExperiment(b, "F14", "Direct", "Geomean", "direct-speedup")
}

func BenchmarkFigure15Graph(b *testing.B) {
	runExperiment(b, "F15", "Prophet", "Geomean", "prophet-speedup")
}

func BenchmarkFigure16aELACC(b *testing.B) {
	runExperiment(b, "F16a", "EL_ACC=0.15", "Geomean", "elacc015-speedup")
}

func BenchmarkFigure16bPriorityBits(b *testing.B) {
	runExperiment(b, "F16b", "n=2", "Geomean", "n2-speedup")
}

func BenchmarkFigure16cMVBCandidates(b *testing.B) {
	runExperiment(b, "F16c", "Candidate=1", "Geomean", "cand1-speedup")
}

func BenchmarkFigure17IPCP(b *testing.B) {
	runExperiment(b, "F17", "Prophet", "Geomean", "prophet-speedup")
}

func BenchmarkFigure18Bandwidth(b *testing.B) {
	runExperiment(b, "F18", "Prophet", "Geomean", "prophet-speedup")
}

func BenchmarkFigure19Ablation(b *testing.B) {
	runExperiment(b, "F19", "+Resize", "Geomean", "full-prophet-speedup")
}

func BenchmarkOverheads(b *testing.B) { runExperiment(b, "OV", "", "", "") }

func BenchmarkStorageOverhead(b *testing.B) { runExperiment(b, "ST", "", "", "") }

func BenchmarkEnergyOverhead(b *testing.B) {
	runExperiment(b, "EN", "energy overhead", "Mean", "energy-overhead")
}

// --- Evaluator API benchmarks ---

// sweepBenchJobs is the acceptance workload: a 3-scheme x 4-workload sweep.
func sweepBenchJobs(b *testing.B) []prophet.Job {
	b.Helper()
	var ws []prophet.Workload
	for _, name := range []string{"mcf", "omnetpp", "sphinx3", "xalancbmk"} {
		w, err := prophet.Find(name)
		if err != nil {
			b.Fatal(err)
		}
		ws = append(ws, w.WithRecords(30_000))
	}
	return prophet.Jobs(ws, prophet.Triage, prophet.Triangel, prophet.Prophet)
}

// BenchmarkEvaluatorSweep runs the 3x4 grid through a long-lived Evaluator:
// per-workload baselines are simulated once per iteration (cache) and the
// grid fans out over the worker pool.
func BenchmarkEvaluatorSweep(b *testing.B) {
	jobs := sweepBenchJobs(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := prophet.New()
		results, err := ev.Sweep(context.Background(), jobs...)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkEvaluateWithPerCall is the deprecated path over the same grid:
// every call re-simulates its workload's baseline and runs serially. The
// Evaluator sweep above must beat it.
func BenchmarkEvaluateWithPerCall(b *testing.B) {
	jobs := sweepBenchJobs(b)
	opts := prophet.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, err := prophet.EvaluateWith(j.Workload, j.Scheme, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- micro-benchmarks of the core structures ---

// BenchmarkSimulatorThroughput measures raw simulation speed (records/sec)
// of the full system with the Prophet engine attached.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := pipeline.Default()
	w := workloads.Omnetpp().Scaled(35)
	p := pipeline.NewProphet(cfg)
	p.ProfileAndLearn(w.Source(50_000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(w.Source(50_000))
	}
	b.ReportMetric(50_000*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkMetadataTable measures table insert+lookup throughput.
func BenchmarkMetadataTable(b *testing.B) {
	tb := temporal.NewTable(temporal.DefaultTableConfig(), 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := uint32(i) % 500_000
		tb.Insert(src, src+1, uint8(i&3))
		tb.Lookup(src)
	}
}

// BenchmarkVictimBuffer measures MVB insert+lookup throughput.
func BenchmarkVictimBuffer(b *testing.B) {
	vb := core.NewVictimBuffer(core.DefaultMVBEntries, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint32(i) % 100_000
		vb.Insert(key, uint32(i))
		vb.Lookup(key, 0xFFFFFFFF)
	}
}

// BenchmarkWorkloadGeneration measures trace-generation throughput.
func BenchmarkWorkloadGeneration(b *testing.B) {
	w := workloads.MCF()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := w.Source(10_000)
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
	}
	b.ReportMetric(10_000*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkHintBufferLookup measures the per-demand-request hint check.
func BenchmarkHintBufferLookup(b *testing.B) {
	hb := core.NewHintBuffer(core.HintBufferEntries)
	hints := map[mem.Addr]core.Hint{}
	for i := 0; i < 128; i++ {
		hints[mem.Addr(0x400000+i*64)] = core.Hint{Insert: true, Priority: uint8(i & 3)}
	}
	hb.Install(hints, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.Lookup(mem.Addr(0x400000 + (i%256)*64))
	}
}
