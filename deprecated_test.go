// Tests enforcing the one-release compatibility promise: the deprecated
// shims (Evaluate, EvaluateWith, Pipeline) must produce byte-identical
// RunStats to the Evaluator/Session path they delegate to. RunStats is a
// comparable value type, so == is a full bit-for-bit comparison.
package prophet_test

import (
	"context"
	"testing"

	"prophet"
)

func shimWorkload(t *testing.T) prophet.Workload {
	t.Helper()
	w, err := prophet.Find("xalancbmk")
	if err != nil {
		t.Fatal(err)
	}
	return w.WithRecords(20_000)
}

// TestEvaluateShimMatchesEvaluator: prophet.Evaluate == New().Run with
// default options, per scheme.
func TestEvaluateShimMatchesEvaluator(t *testing.T) {
	w := shimWorkload(t)
	for _, scheme := range []prophet.Scheme{prophet.Baseline, prophet.Triage, prophet.Triangel} {
		old, err := prophet.Evaluate(w, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		now, err := prophet.New(prophet.WithWorkers(1)).Run(context.Background(), w, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if old != now {
			t.Errorf("%s: Evaluate shim diverged:\n shim      %+v\n evaluator %+v", scheme, old, now)
		}
	}
}

// TestEvaluateWithShimMatchesEvaluator: non-default options flow through
// the shim identically to WithOptions.
func TestEvaluateWithShimMatchesEvaluator(t *testing.T) {
	w := shimWorkload(t)
	opts := prophet.DefaultOptions()
	opts.ELAcc = 0.3
	opts.PriorityBits = 3
	opts.DRAMChannels = 2

	old, err := prophet.EvaluateWith(w, prophet.Prophet, opts)
	if err != nil {
		t.Fatal(err)
	}
	now, err := prophet.New(prophet.WithOptions(opts), prophet.WithWorkers(1)).
		Run(context.Background(), w, prophet.Prophet)
	if err != nil {
		t.Fatal(err)
	}
	if old != now {
		t.Errorf("EvaluateWith shim diverged:\n shim      %+v\n evaluator %+v", old, now)
	}
}

// TestPipelineShimMatchesSession: the multi-input Figure 5 flow through the
// deprecated Pipeline equals the Session path, including cross-input
// learning (two profiled inputs, evaluated on a third).
func TestPipelineShimMatchesSession(t *testing.T) {
	var ws []prophet.Workload
	for _, name := range []string{"gcc_166", "gcc_200", "gcc_expr"} {
		w, err := prophet.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w.WithRecords(20_000))
	}

	pl := prophet.NewPipeline(prophet.DefaultOptions())
	pl.ProfileInput(ws[0])
	pl.ProfileInput(ws[1])
	oldBin := pl.Optimize()
	old := pl.RunBinary(oldBin, ws[2])
	if err := pl.Err(); err != nil {
		t.Fatal(err)
	}

	s := prophet.New(prophet.WithWorkers(1)).NewSession()
	for _, w := range ws[:2] {
		if err := s.Profile(w); err != nil {
			t.Fatal(err)
		}
	}
	newBin := s.Optimize()
	now, err := s.Run(context.Background(), newBin, ws[2])
	if err != nil {
		t.Fatal(err)
	}

	if oldBin.PCHints != newBin.PCHints || oldBin.MetaWays != newBin.MetaWays ||
		oldBin.TPDisabled != newBin.TPDisabled {
		t.Errorf("optimized binaries diverged: shim %v, session %v", oldBin, newBin)
	}
	if old != now {
		t.Errorf("Pipeline shim diverged from Session:\n shim    %+v\n session %+v", old, now)
	}
	if pl.Loops() != 2 || s.Loops() != 2 {
		t.Errorf("loop counts: shim %d, session %d, want 2", pl.Loops(), s.Loops())
	}
}
