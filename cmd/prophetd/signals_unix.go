//go:build unix

package main

import (
	"os"
	"syscall"
)

// profileSignals lists the signals that toggle a CPU capture window when
// -profile-dir is set. SIGUSR1 is the conventional "do your debug thing"
// signal and exists on every Unix.
var profileSignals = []os.Signal{syscall.SIGUSR1}
