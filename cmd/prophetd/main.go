// Command prophetd serves the evaluation engine over HTTP/JSON: single
// runs, concurrent sweeps (sync or async through a bounded job queue), and
// the Figure 5 profile→optimize→run loop as stateful session resources.
// Results are cached serving-side (LRU + TTL) and duplicate in-flight
// requests coalesce onto one simulation; GET /v1/stats exposes the
// counters. See the "Running the service" section of README.md for the
// endpoint table and example requests.
//
// Usage:
//
//	prophetd                          # serve on :8373 with default engine
//	prophetd -addr :9000 -workers 8
//	prophetd -cache-ttl 1h -queue 128
//	prophetd -store results.prst              # durable result store
//	prophetd -peers http://w1:8373,http://w2:8373   # coordinate a fleet
//	prophetd -scheduler least-loaded -peer-ttl 15s  # load-aware coordinator
//	prophetd -join http://coord:8373 -advertise http://w3:8373  # elastic worker
//	prophetd -profile-dir profiles            # persist CPU captures
//	prophetd -profile-dir profiles -capture-on-shutdown
//	prophetd -version
//
// With -store the daemon keeps a durable, content-addressed result store on
// disk under the in-memory cache: every completed evaluation is appended to
// the store, and a restarted daemon answers repeated requests from disk
// without simulating anything (byte-identical responses, zero engine runs).
// The store is namespaced by an engine fingerprint — schema generation,
// build version, and simulation options — so results from a different
// build or configuration self-invalidate (the file is reset with a logged
// notice). -store-max-bytes bounds the file; over the cap, the least
// recently used entries are compacted away.
//
// With -peers the daemon becomes a fleet coordinator: incoming sweeps are
// chunked and granted across the peer daemons by the -scheduler strategy
// (workload+scheme hash with work stealing, or least-loaded driven by
// GET /v1/health probes), with retries, jittered backoff, and failover to
// the local engine, and the merged results are byte-identical to a
// standalone run whatever the strategy. Peers execute batches on their own
// engines only — fan-out never cascades — so a peer list must name other
// daemons, not the daemon itself.
//
// The fleet is elastic: workers POST /v1/peers to join a coordinator at
// runtime and are expired after -peer-ttl without a heartbeat. A worker
// started with -join (plus -advertise, its own base URL as the coordinator
// reaches it) heartbeats each listed coordinator every -join-interval and
// sends a DELETE /v1/peers drain on graceful shutdown, so workers can be
// added or removed mid-run without restarting the coordinator.
//
// The daemon is also its own profiling subject (the PGO loop in
// docs/PROFILING.md). /debug/pprof/* serves the standard ad-hoc profiles,
// and POST /v1/profile/{start,stop} drives an explicit CPU capture window;
// with -profile-dir every capture is persisted as a named, timestamped
// .pprof file. On Unix, SIGUSR1 toggles a capture window without any HTTP
// involvement, and -capture-on-shutdown opens a window at startup that is
// emitted when the daemon exits — a whole-lifetime profile for free. All
// surfaces share the runtime's single CPU-profile window, so in
// -capture-on-shutdown mode the HTTP start endpoint answers 409 and a stop
// (or SIGUSR1) closes the lifetime window early; pick one mode per daemon.
//
// SIGINT/SIGTERM trigger a graceful shutdown: intake stops, open
// connections drain, queued jobs are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prophet"

	"prophet/internal/cliutil"
	"prophet/internal/pcapture"
	"prophet/internal/resultstore"
	"prophet/internal/server"
)

func main() {
	addr := flag.String("addr", ":8373", "listen address")
	workers := flag.Int("workers", 0, "sweep worker pool (0 = all CPUs)")
	runPar := flag.Int("run-parallelism", 0, "intra-run worker bound per simulation, derated under concurrent sweep load (0 or 1 = fully synchronous; results are identical either way)")
	elAcc := flag.Float64("el-acc", 0.15, "EL_ACC insertion threshold (Equation 1)")
	prioBits := flag.Int("priority-bits", 2, "replacement priority bits n (Equation 2)")
	mvbCand := flag.Int("mvb-candidates", 1, "Multi-path Victim Buffer candidates per lookup")
	learnL := flag.Int("learn-l", 4, "Equation 4 designer parameter L")
	channels := flag.Int("channels", 1, "DRAM channels")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity (-1 = unbounded)")
	cacheTTL := flag.Duration("cache-ttl", 10*time.Minute, "result cache TTL (-1s = never expire)")
	jobWorkers := flag.Int("job-workers", 2, "async job pool size")
	queueDepth := flag.Int("queue", 64, "async job queue bound")
	jobRetention := flag.Int("job-retention", 256, "finished jobs kept for polling before eviction")
	storePath := flag.String("store", "", "durable result store file (empty = no disk tier)")
	storeMax := flag.Int64("store-max-bytes", 256<<20, "result store size cap before LRU compaction (0 = unbounded)")
	peers := flag.String("peers", "", "comma-separated peer prophetd base URLs to shard sweeps across (coordinator mode)")
	peerRetries := flag.Int("peer-retries", 2, "batch attempts per peer before failing over to the local engine")
	scheduler := flag.String("scheduler", "hash", "fleet scheduling strategy: "+strings.Join(prophet.Schedulers(), ", "))
	peerTTL := flag.Duration("peer-ttl", 15*time.Second, "drain dynamic peers after this long without a heartbeat")
	join := flag.String("join", "", "comma-separated coordinator base URLs to join as a worker (requires -advertise)")
	advertise := flag.String("advertise", "", "this daemon's base URL as coordinators reach it (e.g. http://host:8373)")
	joinInterval := flag.Duration("join-interval", 5*time.Second, "heartbeat interval for -join (keep well inside the coordinator's -peer-ttl)")
	profileDir := flag.String("profile-dir", "", "persist CPU captures (POST /v1/profile, SIGUSR1, shutdown) as .pprof files here")
	captureOnShutdown := flag.Bool("capture-on-shutdown", false, "profile the daemon's whole lifetime, emitted at shutdown (requires -profile-dir)")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("prophetd", prophet.Version())
		return
	}

	if !prophet.ValidScheduler(*scheduler) {
		log.Fatalf("unknown -scheduler %q (choose from %s)", *scheduler, strings.Join(prophet.Schedulers(), ", "))
	}
	joinList := cliutil.SplitList(*join)
	if len(joinList) > 0 && *advertise == "" {
		log.Fatal("-join requires -advertise (the URL coordinators dial back)")
	}

	evOpts := []prophet.Option{
		prophet.WithWorkers(*workers),
		prophet.WithRunParallelism(*runPar),
		prophet.WithELAcc(*elAcc),
		prophet.WithPriorityBits(*prioBits),
		prophet.WithMVBCandidates(*mvbCand),
		prophet.WithLearningL(*learnL),
		prophet.WithDRAMChannels(*channels),
	}
	peerList := cliutil.SplitList(*peers)
	if len(peerList) > 0 {
		evOpts = append(evOpts, prophet.WithBackends(peerList...))
	}
	evOpts = append(evOpts,
		prophet.WithBackendRetries(*peerRetries),
		prophet.WithScheduler(*scheduler),
	)
	ev := prophet.New(evOpts...)
	var store *resultstore.Store
	if *storePath != "" {
		var err error
		store, err = resultstore.Open(*storePath, resultstore.Options{
			Fingerprint: ev.StoreFingerprint(),
			MaxBytes:    *storeMax,
			// A fingerprint mismatch at startup means the stored results
			// were computed by a different engine; keeping them would serve
			// stale bytes, so the daemon starts over on a fresh file.
			ResetOnMismatch: true,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatalf("open result store: %v", err)
		}
		defer store.Close()
		ss := store.Stats()
		log.Printf("result store %s: recovered %d entries (%d bytes, %d corrupt skipped, %d resets)",
			*storePath, ss.Entries, ss.Bytes, ss.CorruptSkipped, ss.Resets)
		ev.UseResultStore(store)
	}
	if *captureOnShutdown && *profileDir == "" {
		log.Fatal("-capture-on-shutdown requires -profile-dir (the capture has nowhere to go)")
	}
	capt := pcapture.New(pcapture.Options{Dir: *profileDir, Logf: log.Printf})
	srv := server.New(server.Config{
		Evaluator:    ev,
		CacheEntries: *cacheEntries,
		CacheTTL:     *cacheTTL,
		JobWorkers:   *jobWorkers,
		QueueDepth:   *queueDepth,
		JobRetention: *jobRetention,
		Store:        store,
		Capturer:     capt,
		PeerTTL:      *peerTTL,
		Logf:         log.Printf,
	})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *profileDir != "" {
		// SIGUSR1 (where the platform has it) toggles a capture window:
		// first signal opens, second closes and persists.
		capt.HandleSignals(ctx, profileSignals...)
	}
	if *captureOnShutdown {
		if err := capt.Start("lifetime"); err != nil {
			log.Fatalf("start lifetime capture: %v", err)
		}
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("prophetd %s listening on %s (%d sweep workers, %d job workers, queue %d, scheduler %s)",
		prophet.Version(), *addr, ev.Workers(), *jobWorkers, *queueDepth, ev.SchedulerName())
	if len(peerList) > 0 {
		log.Printf("coordinating sweeps across %d peers: %s (peer ttl %s)", len(peerList), strings.Join(peerList, ", "), *peerTTL)
	}
	if len(joinList) > 0 {
		log.Printf("joining %d coordinators as %s (heartbeat every %s): %s",
			len(joinList), *advertise, *joinInterval, strings.Join(joinList, ", "))
		go heartbeatLoop(ctx, joinList, *advertise, *joinInterval)
	}

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down (draining up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain from every coordinator first so no new chunks are granted to a
	// daemon that is about to stop serving them.
	leaveFleet(shutdownCtx, joinList, *advertise)
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("job drain: %v", err)
	}
	// Emit any still-open capture window (the -capture-on-shutdown lifetime
	// profile, or a window a client started and never stopped).
	if cap, ok, err := capt.Close(); err != nil {
		log.Printf("shutdown capture: %v", err)
	} else if ok {
		log.Printf("shutdown capture %q persisted to %s (%d bytes)", cap.Name, cap.Path, len(cap.Data))
	}
	log.Printf("bye")
}

// heartbeatLoop keeps this daemon registered with each coordinator: an
// immediate join POST, then one per interval. Failures are logged and
// retried on the next beat — a coordinator restart just re-learns the
// worker within one interval.
func heartbeatLoop(ctx context.Context, coordinators []string, advertise string, interval time.Duration) {
	client := &http.Client{Timeout: interval}
	beat := func() {
		for _, c := range coordinators {
			if err := postJoin(ctx, client, c, advertise); err != nil && ctx.Err() == nil {
				log.Printf("heartbeat to %s: %v", c, err)
			}
		}
	}
	beat()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}

// postJoin sends one POST /v1/peers registration/heartbeat.
func postJoin(ctx context.Context, client *http.Client, coordinator, advertise string) error {
	body := fmt.Sprintf(`{"url":%q}`, advertise)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinator, "/")+"/v1/peers", strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// leaveFleet sends a best-effort DELETE /v1/peers drain to each coordinator
// so this daemon stops receiving chunks before its listener closes.
func leaveFleet(ctx context.Context, coordinators []string, advertise string) {
	if len(coordinators) == 0 {
		return
	}
	client := &http.Client{Timeout: 5 * time.Second}
	for _, c := range coordinators {
		u := strings.TrimRight(c, "/") + "/v1/peers?url=" + url.QueryEscape(advertise)
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, u, nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			log.Printf("drain from %s: %v", c, err)
			continue
		}
		resp.Body.Close()
		log.Printf("drained from coordinator %s", c)
	}
}
