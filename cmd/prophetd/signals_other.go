//go:build !unix

package main

import "os"

// profileSignals is empty on platforms without SIGUSR1; the HTTP capture
// endpoints and -capture-on-shutdown still work.
var profileSignals []os.Signal
