// Command prophetbench is the performance harness behind the repository's
// perf-regression gate. It runs a workloads x schemes matrix through the
// public Evaluator, timing each cell with the testing package's benchmark
// machinery, and emits
//
//   - a human-readable table on stdout, and
//   - a schema-versioned, machine-readable JSON file (BENCH_<date>.json by
//     default) holding ns/op, allocs/op, bytes/op, accesses/sec and the
//     simulation-quality metrics (speedup, coverage, accuracy) per cell.
//
// A previous JSON file can be supplied with -compare; prophetbench then
// prints the per-cell deltas and exits non-zero if any cell's ns/op regressed
// by more than -threshold percent. CI runs exactly that against the committed
// baseline, so hot-path regressions fail the build.
//
// -cpuprofile captures the whole matrix run as one CPU profile — the raw
// material for the repository's PGO loop: per-workload runs are merged by
// cmd/pgo into the checked-in default.pgo (see docs/PROFILING.md).
//
// Timing semantics per cell:
//
//   - For prefetching schemes, one op is one Evaluator.Run — a full
//     simulation of the trace under that scheme (for "prophet" this includes
//     the profile + learn + analyze passes, i.e. the whole Figure 5 loop).
//     The workload's no-prefetching baseline is primed before timing starts,
//     so its cost is excluded (it is what the "baseline" cells measure).
//   - For the "baseline" scheme, one op is a fresh Evaluator's baseline
//     simulation (the cache would otherwise make repeat runs free).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"prophet"

	"prophet/internal/cliutil"
	"prophet/internal/pcapture"
)

// schemaVersion identifies the JSON layout; bump on incompatible change.
const schemaVersion = 1

// Report is the top-level JSON document.
type Report struct {
	Schema    int    `json:"schema"`
	Tool      string `json:"tool"`
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Date      string `json:"date"`
	Records   uint64 `json:"records"`
	// RunParallelism is the intra-run worker bound the cells were measured
	// with (0 in reports predating the knob = fully synchronous runs).
	// Results are bit-identical across values; only timings shift, so two
	// reports measured at different nonzero settings are not comparable.
	RunParallelism int    `json:"runParallelism,omitempty"`
	Cells          []Cell `json:"cells"`
}

// Cell is one workload x scheme measurement.
type Cell struct {
	Workload       string  `json:"workload"`
	Scheme         string  `json:"scheme"`
	Records        uint64  `json:"records"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"nsPerOp"`
	AllocsPerOp    int64   `json:"allocsPerOp"`
	BytesPerOp     int64   `json:"bytesPerOp"`
	AccessesPerSec float64 `json:"accessesPerSec"`
	Speedup        float64 `json:"speedup"`
	Coverage       float64 `json:"coverage"`
	Accuracy       float64 `json:"accuracy"`
}

func (c Cell) key() string { return c.Workload + "/" + c.Scheme }

func main() {
	var (
		workloadsFlag = flag.String("workloads", "mcf,omnetpp,sphinx3,xalancbmk", "comma-separated workload names")
		schemesFlag   = flag.String("schemes", "baseline,triage,triangel,prophet", "comma-separated scheme names")
		records       = flag.Uint64("records", 30_000, "trace length per workload in memory records")
		benchtime     = flag.String("benchtime", "1x", "per-cell benchmark time (testing -benchtime syntax, e.g. 2x or 1s)")
		out           = flag.String("o", "", "output JSON path (default BENCH_<date>.json; \"-\" for none)")
		compare       = flag.String("compare", "", "previous report JSON to compare against")
		threshold     = flag.Float64("threshold", 10, "max allowed ns/op regression percent vs -compare")
		nsGate        = flag.Bool("ns-gate", true, "gate on ns/op (disable when the baseline comes from different hardware; allocs/op stays gated)")
		extended      = flag.Bool("extended", false, "append the extra scheme families (gaze, adaptive) to the matrix; their cells are absent from older baselines and therefore not gated")
		runPar        = flag.Int("run-parallelism", 0, "intra-run worker bound per simulation (0 or 1 = fully synchronous; results are identical, only timings shift)")
		cpuprofile    = flag.String("cpuprofile", "", "capture a CPU profile of the whole matrix run to this .pprof file (feeds the PGO loop, docs/PROFILING.md)")
		showVersion   = flag.Bool("version", false, "print version and exit")
	)
	testing.Init()
	flag.Parse()
	if *showVersion {
		fmt.Println(prophet.Version())
		return
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatalf("bad -benchtime %q: %v", *benchtime, err)
	}

	rep := Report{
		Schema:         schemaVersion,
		Tool:           "prophetbench",
		Version:        prophet.Version(),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Date:           time.Now().UTC().Format(time.RFC3339),
		Records:        *records,
		RunParallelism: *runPar,
	}

	ws := cliutil.SplitList(*workloadsFlag)
	schemes := cliutil.SplitList(*schemesFlag)
	if len(ws) == 0 || len(schemes) == 0 {
		fatalf("empty workload or scheme list")
	}
	if *extended {
		have := map[string]bool{}
		for _, s := range schemes {
			have[s] = true
		}
		for _, s := range []string{"gaze", "adaptive"} {
			if !have[s] {
				schemes = append(schemes, s)
			}
		}
	}

	ctx := context.Background()
	newEval := func() *prophet.Evaluator {
		return prophet.New(prophet.WithWorkers(1), prophet.WithRunParallelism(*runPar))
	}
	ev := newEval()

	// With -cpuprofile the whole matrix runs inside one capture window, so
	// the profile weights each cell by its real measurement cost — exactly
	// the mix a PGO build of this binary will execute.
	var capt *pcapture.Capturer
	if *cpuprofile != "" {
		capt = pcapture.New(pcapture.Options{})
		if err := capt.Start("prophetbench"); err != nil {
			fatalf("start CPU profile: %v", err)
		}
	}

	for _, wn := range ws {
		w, err := prophet.Find(wn)
		if err != nil {
			fatalf("%v", err)
		}
		w = w.WithRecords(*records)
		for _, sn := range schemes {
			cell, err := measure(ctx, ev, newEval, w, prophet.Scheme(sn), *records)
			if err != nil {
				fatalf("%s under %s: %v", wn, sn, err)
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Fprintf(os.Stderr, "measured %-12s %-9s %12.0f ns/op %9d allocs/op\n",
				wn, sn, cell.NsPerOp, cell.AllocsPerOp)
		}
	}

	if capt != nil {
		cap, err := capt.Stop()
		if err != nil {
			fatalf("stop CPU profile: %v", err)
		}
		if err := os.WriteFile(*cpuprofile, cap.Data, 0o644); err != nil {
			fatalf("writing %s: %v", *cpuprofile, err)
		}
		fmt.Fprintf(os.Stderr, "cpu profile (%d bytes) written to %s\n", len(cap.Data), *cpuprofile)
	}

	printTable(rep)

	if *out != "-" {
		path := *out
		if path == "" {
			path = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
		}
		if err := writeReport(path, rep); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		fmt.Printf("\nwrote %s\n", path)
	}

	if *compare != "" {
		old, err := readReport(*compare)
		if err != nil {
			fatalf("reading %s: %v", *compare, err)
		}
		if old.Records != rep.Records {
			fatalf("baseline %s measured %d records per cell, this run %d — per-op times are not comparable; rerun with -records %d or regenerate the baseline",
				*compare, old.Records, rep.Records, old.Records)
		}
		// A zero (or absent, in pre-knob baselines) runParallelism means
		// fully synchronous runs and stays comparable with any run; two
		// different nonzero settings measured different execution shapes.
		if old.RunParallelism > 1 && rep.RunParallelism > 1 && old.RunParallelism != rep.RunParallelism {
			fatalf("baseline %s measured -run-parallelism %d, this run %d — timings are not comparable; rerun with -run-parallelism %d or regenerate the baseline",
				*compare, old.RunParallelism, rep.RunParallelism, old.RunParallelism)
		}
		if !printComparison(old, rep, *threshold, *nsGate) {
			os.Exit(1)
		}
	}
}

// measure times one matrix cell and collects its quality metrics. newEval
// builds fresh evaluators with the run's configuration (baseline cells
// cannot reuse ev — its cache would make repeats free).
func measure(ctx context.Context, ev *prophet.Evaluator, newEval func() *prophet.Evaluator, w prophet.Workload, scheme prophet.Scheme, records uint64) (Cell, error) {
	// One untimed run primes the workload baseline in the shared evaluator
	// and yields the cell's simulation-quality metrics.
	stats, err := ev.Run(ctx, w, scheme)
	if err != nil {
		return Cell{}, err
	}
	var res testing.BenchmarkResult
	if scheme == prophet.Baseline {
		// The shared evaluator would serve baseline repeats from cache;
		// measure the raw no-prefetching simulation on fresh evaluators.
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := newEval().Run(ctx, w, scheme); err != nil {
					b.Fatal(err)
				}
			}
		})
	} else {
		res = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Run(ctx, w, scheme); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if res.N == 0 {
		return Cell{}, fmt.Errorf("benchmark produced no iterations")
	}
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	cell := Cell{
		Workload:    w.Name,
		Scheme:      string(scheme),
		Records:     records,
		Iterations:  res.N,
		NsPerOp:     ns,
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Speedup:     stats.Speedup,
		Coverage:    stats.Coverage,
		Accuracy:    stats.Accuracy,
	}
	if ns > 0 {
		cell.AccessesPerSec = float64(records) / (ns / 1e9)
	}
	return cell, nil
}

func printTable(rep Report) {
	fmt.Printf("prophetbench %s (%s %s/%s) records=%d\n\n",
		rep.Version, rep.GoVersion, rep.GOOS, rep.GOARCH, rep.Records)
	fmt.Printf("%-12s %-9s %14s %12s %12s %14s %8s %8s %8s\n",
		"workload", "scheme", "ns/op", "allocs/op", "bytes/op", "accesses/s", "speedup", "cover", "accur")
	for _, c := range rep.Cells {
		fmt.Printf("%-12s %-9s %14.0f %12d %12d %14.0f %8.3f %8.3f %8.3f\n",
			c.Workload, c.Scheme, c.NsPerOp, c.AllocsPerOp, c.BytesPerOp,
			c.AccessesPerSec, c.Speedup, c.Coverage, c.Accuracy)
	}
	if ns, al := geomeans(rep.Cells); ns > 0 {
		fmt.Printf("%-12s %-9s %14.0f %12.0f\n", "geomean", "", ns, al)
	}
}

// geomeans returns the geometric means of ns/op and allocs/op across cells.
func geomeans(cells []Cell) (ns, allocs float64) {
	var lns, lal float64
	n := 0
	for _, c := range cells {
		if c.NsPerOp <= 0 || c.AllocsPerOp <= 0 {
			continue
		}
		lns += math.Log(c.NsPerOp)
		lal += math.Log(float64(c.AllocsPerOp))
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(lns / float64(n)), math.Exp(lal / float64(n))
}

// cellThresholdFactor scales the per-cell backstop: single cells on shared
// CI runners are noisy, so the build gates on the geomean at the threshold
// and on individual cells only at threshold x this factor.
const cellThresholdFactor = 3

// allocThresholdFactor scales the allocs/op gate. Allocation counts are
// machine-independent (unlike ns/op, which shifts with runner hardware),
// so they catch real regressions even against a baseline from a different
// machine; the factor absorbs the cold-start allocations amortized
// differently under different iteration counts.
const allocThresholdFactor = 2

// printComparison reports per-cell deltas vs the old report and returns
// false when the geomean ns/op regressed beyond threshold percent, the
// geomean allocs/op beyond allocThresholdFactor x threshold, or any single
// cell's ns/op beyond cellThresholdFactor x threshold. With nsGate false the
// wall-clock checks are reported but not gated — the right mode when the
// baseline was measured on different hardware, where only the
// machine-independent allocs/op comparison is meaningful.
func printComparison(old, cur Report, threshold float64, nsGate bool) bool {
	oldCells := map[string]Cell{}
	for _, c := range old.Cells {
		oldCells[c.key()] = c
	}
	cellThreshold := threshold * cellThresholdFactor
	fmt.Printf("\ncomparison vs baseline (%s, records=%d, gate: geomean +%.1f%% / cell +%.1f%% ns/op):\n\n",
		old.Date, old.Records, threshold, cellThreshold)
	fmt.Printf("%-12s %-9s %14s %14s %9s %12s %12s %9s\n",
		"workload", "scheme", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	ok := true
	matched, allocMatched := 0, 0
	var worst float64
	var worstKey string
	var lns, lal float64
	for _, c := range cur.Cells {
		o, found := oldCells[c.key()]
		if !found || o.NsPerOp <= 0 {
			fmt.Printf("%-12s %-9s %14s (no baseline cell)\n", c.Workload, c.Scheme, "-")
			continue
		}
		matched++
		dns := (c.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		dal := 0.0
		if o.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			dal = (float64(c.AllocsPerOp) - float64(o.AllocsPerOp)) / float64(o.AllocsPerOp) * 100
			lal += math.Log(float64(c.AllocsPerOp) / float64(o.AllocsPerOp))
			allocMatched++
		}
		mark := ""
		if dns > cellThreshold {
			ok = false
			mark = "  REGRESSION"
		}
		if dns > worst {
			worst, worstKey = dns, c.key()
		}
		lns += math.Log(c.NsPerOp / o.NsPerOp)
		fmt.Printf("%-12s %-9s %14.0f %14.0f %8.1f%% %12d %12d %8.1f%%%s\n",
			c.Workload, c.Scheme, o.NsPerOp, c.NsPerOp, dns, o.AllocsPerOp, c.AllocsPerOp, dal, mark)
	}
	if matched < len(oldCells) {
		// Baseline cells the current run never visited mean the matrix
		// drifted (trimmed workload list, renamed scheme). Passing
		// silently would narrow or disable the gate while CI stays green;
		// force the baseline to be regenerated instead.
		covered := map[string]bool{}
		for _, c := range cur.Cells {
			covered[c.key()] = true
		}
		for _, o := range old.Cells {
			if !covered[o.key()] {
				fmt.Printf("%-12s %-9s %14.0f (baseline cell not measured by this run)\n", o.Workload, o.Scheme, o.NsPerOp)
			}
		}
		fmt.Printf("FAIL: %d of %d baseline cells unmatched — the matrix changed; regenerate the baseline\n",
			len(oldCells)-matched, len(oldCells))
		return false
	}
	if !nsGate {
		ok = true // wall-clock checks reported above, not gated
	}
	geo := (math.Exp(lns/float64(matched)) - 1) * 100
	allocGeo := 0.0
	if allocMatched > 0 {
		allocGeo = (math.Exp(lal/float64(allocMatched)) - 1) * 100
	}
	allocThreshold := threshold * allocThresholdFactor
	fmt.Printf("\ngeomean ns/op change: %+.1f%%   geomean allocs/op change: %+.1f%%\n", geo, allocGeo)
	if !nsGate {
		fmt.Println("(ns/op gate disabled: baseline from different hardware; gating allocs/op only)")
	}
	switch {
	case nsGate && geo > threshold:
		fmt.Printf("FAIL: geomean ns/op regressed %.1f%% > %.1f%% threshold\n", geo, threshold)
		ok = false
	case allocGeo > allocThreshold:
		fmt.Printf("FAIL: geomean allocs/op regressed %.1f%% > %.1f%% threshold (machine-independent gate)\n", allocGeo, allocThreshold)
		ok = false
	case !ok:
		fmt.Printf("FAIL: %s regressed %.1f%% > %.1f%% cell threshold\n", worstKey, worst, cellThreshold)
	default:
		fmt.Printf("PASS: allocs within %.1f%%", allocThreshold)
		if nsGate {
			fmt.Printf(", geomean ns/op within %.1f%%, every cell within %.1f%%", threshold, cellThreshold)
		}
		fmt.Println()
	}
	return ok
}

func writeReport(path string, rep Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, err
	}
	if rep.Schema != schemaVersion {
		return Report{}, fmt.Errorf("unsupported schema %d (want %d)", rep.Schema, schemaVersion)
	}
	sort.Slice(rep.Cells, func(i, j int) bool { return rep.Cells[i].key() < rep.Cells[j].key() })
	return rep, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prophetbench: "+format+"\n", args...)
	os.Exit(1)
}
