// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run the full suite in paper order
//	experiments -list           # list experiment IDs
//	experiments -run F10,F19    # run selected experiments
//	experiments -quick          # reduced workload sets and trace lengths
//	experiments -records N      # override trace length per run
//	experiments -backends http://w1:8373,http://w2:8373
//
// With -backends, the comparison sweeps behind the default-configuration
// figures (F10–F12, F15) shard across the given prophetd fleet — one
// batched request per backend, failover to the local engine — and render
// byte-identical output, provided the daemons run the default engine
// configuration. Figures that override the configuration (F16–F18) and
// -quick mode always run in process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prophet"

	"prophet/internal/cliutil"
	"prophet/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced workload sets and trace lengths")
	records := flag.Uint64("records", 0, "override memory records per run (0 = workload default)")
	workers := flag.Int("workers", 0, "worker pool per experiment (0 = all CPUs, 1 = serial; output is byte-identical either way)")
	backends := flag.String("backends", "", "comma-separated prophetd base URLs to shard default-configuration figure sweeps across")
	scheduler := flag.String("scheduler", "hash", "fleet scheduling strategy with -backends: "+strings.Join(prophet.Schedulers(), ", "))
	extra := flag.String("workloads", "", "comma-separated extra workloads (file:, champsim:, csv:) appended to the comparison figures")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("experiments", prophet.Version())
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Remark)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Records: *records, Workers: *workers}
	for _, name := range cliutil.SplitList(*extra) {
		w, err := prophet.Find(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w = w.WithRecords(*records)
		f, err := w.SourceFactory()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Extra = append(opts.Extra, experiments.ExtraWorkload{Name: w.Name, Records: w.Records, Factory: f})
	}
	if !prophet.ValidScheduler(*scheduler) {
		fmt.Fprintf(os.Stderr, "unknown -scheduler %q (choose from %s)\n", *scheduler, strings.Join(prophet.Schedulers(), ", "))
		os.Exit(1)
	}
	if urls := cliutil.SplitList(*backends); len(urls) > 0 {
		ev := prophet.New(prophet.WithBackends(urls...), prophet.WithScheduler(*scheduler), prophet.WithWorkers(*workers))
		opts.RemoteSweep = remoteSweep(ev)
	}
	var ids []string
	if *run != "" {
		ids = strings.Split(*run, ",")
	} else {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// remoteSweep adapts a backend-configured Evaluator to the experiments
// package's fleet hook (the callback keeps internal/experiments free of the
// public-API import cycle).
func remoteSweep(ev *prophet.Evaluator) experiments.RemoteSweepFunc {
	return func(jobs []experiments.RemoteJob) []experiments.RemoteRun {
		pj := make([]prophet.Job, len(jobs))
		for i, j := range jobs {
			pj[i] = prophet.Job{
				Workload: prophet.Workload{Name: j.Workload, Records: j.Records},
				Scheme:   prophet.Scheme(j.Scheme),
			}
		}
		// The dispatcher never fails sweep-level with a background context;
		// per-job errors ride in the rows.
		res, _ := ev.Sweep(context.Background(), pj...)
		out := make([]experiments.RemoteRun, len(res))
		for i, r := range res {
			out[i] = experiments.RemoteRun{
				IPC:      r.Stats.IPC,
				Speedup:  r.Stats.Speedup,
				Traffic:  r.Stats.NormalizedTraffic,
				Coverage: r.Stats.Coverage,
				Accuracy: r.Stats.Accuracy,
				MetaWays: r.Stats.MetaWays,
				Meta:     r.Meta,
				Err:      r.Err,
			}
		}
		return out
	}
}
