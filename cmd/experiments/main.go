// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                 # run the full suite in paper order
//	experiments -list           # list experiment IDs
//	experiments -run F10,F19    # run selected experiments
//	experiments -quick          # reduced workload sets and trace lengths
//	experiments -records N      # override trace length per run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prophet"

	"prophet/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced workload sets and trace lengths")
	records := flag.Uint64("records", 0, "override memory records per run (0 = workload default)")
	workers := flag.Int("workers", 0, "worker pool per experiment (0 = all CPUs, 1 = serial; output is byte-identical either way)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("experiments", prophet.Version())
		return
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-5s %s\n", e.ID, e.Remark)
		}
		return
	}

	opts := experiments.Options{Quick: *quick, Records: *records, Workers: *workers}
	var ids []string
	if *run != "" {
		ids = strings.Split(*run, ",")
	} else {
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res.Render())
		fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
