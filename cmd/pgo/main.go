// Command pgo closes the repository's profile-guided-optimization loop: it
// folds CPU profiles captured from prophetd and prophetbench into the single
// default.pgo the compiler consumes, and verifies that a PGO build actually
// beats the plain build.
//
// Merge mode (the default) combines .pprof files — explicit arguments,
// a -dir of captures, or both — into one profile:
//
//	pgo -o default.pgo profiles/*.pprof
//	pgo -dir profiles -o default.pgo
//	pgo -info default.pgo                 # summarize without merging
//
// Merging follows the pprof tool's semantics (implemented natively by
// internal/pcapture, no external tooling): symbol tables deduplicate,
// samples with identical stacks sum, durations add. All inputs must be CPU
// profiles.
//
// Verify mode compares two prophetbench JSON reports — the plain build's and
// the PGO build's, measured on the same machine and matrix — and exits
// non-zero unless the PGO build wins the ns/op geomean by more than -min-win
// percent (default 0: any win passes, any loss fails). CI's pgo job runs
// exactly this; see docs/PROFILING.md for the full loop.
//
//	pgo -verify bench-plain.json bench-pgo.json
//	pgo -verify -min-win 1.5 bench-plain.json bench-pgo.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"prophet"

	"prophet/internal/pcapture"
)

func main() {
	var (
		out         = flag.String("o", "default.pgo", "merged profile output path")
		dir         = flag.String("dir", "", "also merge every *.pprof under this directory")
		info        = flag.Bool("info", false, "summarize the input profiles instead of merging")
		verify      = flag.Bool("verify", false, "compare two prophetbench reports (plain, pgo) and require a PGO win")
		minWin      = flag.Float64("min-win", 0, "with -verify: minimum geomean ns/op improvement percent the PGO build must show")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println("pgo", prophet.Version())
		return
	}

	if *verify {
		if flag.NArg() != 2 {
			fatalf("-verify takes exactly two arguments: <plain report.json> <pgo report.json>")
		}
		if err := verifyWin(flag.Arg(0), flag.Arg(1), *minWin); err != nil {
			fatalf("%v", err)
		}
		return
	}

	paths := append([]string{}, flag.Args()...)
	if *dir != "" {
		found, err := filepath.Glob(filepath.Join(*dir, "*.pprof"))
		if err != nil {
			fatalf("scanning %s: %v", *dir, err)
		}
		sort.Strings(found)
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		fatalf("no input profiles (pass .pprof files, or -dir <profiles>)")
	}

	if *info {
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if err != nil {
				fatalf("%v", err)
			}
			pi, err := pcapture.ReadInfo(data)
			if err != nil {
				fatalf("%s: %v", path, err)
			}
			printInfo(path, pi)
		}
		return
	}

	merged, err := pcapture.MergeFiles(paths...)
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, merged, 0o644); err != nil {
		fatalf("%v", err)
	}
	pi, err := pcapture.ReadInfo(merged)
	if err != nil {
		fatalf("reading back %s: %v", *out, err)
	}
	fmt.Printf("merged %d profiles into %s (%d bytes)\n", len(paths), *out, len(merged))
	printInfo(*out, pi)
}

func printInfo(path string, pi pcapture.Info) {
	fmt.Printf("%s: %d samples, %d functions, %d locations, %v profiled, %v CPU [%s]\n",
		path, pi.Samples, pi.Functions, pi.Locations,
		pi.Duration.Round(time.Millisecond), pi.TotalCPU.Round(time.Millisecond),
		joinTypes(pi.SampleTypes))
}

func joinTypes(ts []string) string {
	out := ""
	for i, t := range ts {
		if i > 0 {
			out += ", "
		}
		out += t
	}
	return out
}

// benchReport is the subset of cmd/prophetbench's JSON schema the verify
// mode needs (schema 1).
type benchReport struct {
	Schema  int    `json:"schema"`
	Records uint64 `json:"records"`
	Cells   []struct {
		Workload string  `json:"workload"`
		Scheme   string  `json:"scheme"`
		NsPerOp  float64 `json:"nsPerOp"`
	} `json:"cells"`
}

func readBench(path string) (benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchReport{}, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return benchReport{}, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != 1 {
		return benchReport{}, fmt.Errorf("%s: unsupported prophetbench schema %d (want 1)", path, rep.Schema)
	}
	return rep, nil
}

// verifyWin enforces the PGO acceptance gate: the PGO build's geomean ns/op
// across the cells shared with the plain report must improve by more than
// minWin percent.
func verifyWin(plainPath, pgoPath string, minWin float64) error {
	plain, err := readBench(plainPath)
	if err != nil {
		return err
	}
	pgo, err := readBench(pgoPath)
	if err != nil {
		return err
	}
	if plain.Records != pgo.Records {
		return fmt.Errorf("reports measured different trace lengths (%d vs %d records) — rerun both on the same matrix",
			plain.Records, pgo.Records)
	}
	plainNs := map[string]float64{}
	for _, c := range plain.Cells {
		plainNs[c.Workload+"/"+c.Scheme] = c.NsPerOp
	}
	var logSum float64
	matched := 0
	fmt.Printf("%-12s %-9s %14s %14s %9s\n", "workload", "scheme", "plain ns/op", "pgo ns/op", "Δ")
	for _, c := range pgo.Cells {
		old, ok := plainNs[c.Workload+"/"+c.Scheme]
		if !ok || old <= 0 || c.NsPerOp <= 0 {
			continue
		}
		matched++
		logSum += math.Log(c.NsPerOp / old)
		fmt.Printf("%-12s %-9s %14.0f %14.0f %8.1f%%\n",
			c.Workload, c.Scheme, old, c.NsPerOp, (c.NsPerOp-old)/old*100)
	}
	if matched == 0 {
		return fmt.Errorf("the reports share no measurable cells — were they produced by the same matrix?")
	}
	// Positive geo = PGO slower; negative = PGO faster.
	geo := (math.Exp(logSum/float64(matched)) - 1) * 100
	win := -geo
	fmt.Printf("\ngeomean ns/op: PGO build is %+.2f%% vs plain (%d cells)\n", geo, matched)
	if win <= minWin {
		return fmt.Errorf("PGO build does not beat the plain build by more than %.2f%% (won %.2f%%) — recapture profiles (docs/PROFILING.md) or investigate the regression", minWin, win)
	}
	fmt.Printf("PASS: PGO build wins by %.2f%% (> %.2f%% required)\n", win, minWin)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pgo: "+format+"\n", args...)
	os.Exit(1)
}
