// Command simulate runs one workload under one prefetching scheme and
// prints the raw statistics — the low-level entry point for exploring the
// simulator outside the figure harness. Schemes resolve through the
// pluggable registry, so anything installed with prophet.RegisterScheme
// works here too.
//
// Usage:
//
//	simulate -workload mcf -scheme prophet
//	simulate -workload bfs_100000_16 -scheme triangel -records 100000
//	simulate -workload omnetpp -scheme baseline -channels 2 -l1pf ipcp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"prophet"
)

func main() {
	workload := flag.String("workload", "mcf", "workload name (catalog, file:<path>, champsim:<path>, csv:<path>)")
	scheme := flag.String("scheme", "prophet", "registered scheme name (see -list-schemes)")
	records := flag.Uint64("records", 0, "memory records (0 = workload default)")
	channels := flag.Int("channels", 1, "DRAM channels")
	l1pf := flag.String("l1pf", "stride", "L1 prefetcher: stride | ipcp | none")
	list := flag.Bool("list-schemes", false, "list registered schemes and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("simulate", prophet.Version())
		return
	}

	opts := []prophet.Option{prophet.WithDRAMChannels(*channels)}
	switch *l1pf {
	case "stride":
		opts = append(opts, prophet.WithL1Prefetcher(prophet.L1Stride))
	case "ipcp":
		opts = append(opts, prophet.WithL1Prefetcher(prophet.L1IPCP))
	case "none":
		opts = append(opts, prophet.WithL1Prefetcher(prophet.L1None))
	default:
		fmt.Fprintf(os.Stderr, "unknown l1pf %q\n", *l1pf)
		os.Exit(1)
	}
	ev := prophet.New(opts...)

	if *list {
		fmt.Println(strings.Join(ev.Schemes(), "\n"))
		return
	}

	w, err := prophet.Find(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v (try: mcf, omnetpp, gcc_166, bfs_100000_16, ...)\n", err)
		os.Exit(1)
	}
	w = w.WithRecords(*records)

	rep, err := ev.RunDetailed(context.Background(), w, prophet.Scheme(*scheme))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(rep.Meta) > 0 {
		fmt.Printf("%s:", *scheme)
		for _, k := range []string{"kernels", "distance", "hints", "metaWays", "disableTP"} {
			if v, ok := rep.Meta[k]; ok {
				fmt.Printf(" %s=%d", k, v)
			}
		}
		fmt.Println()
	}

	r := rep.Stats
	fmt.Printf("workload:         %s\n", *workload)
	fmt.Printf("instructions:     %d\n", r.Raw.Instructions)
	fmt.Printf("cycles:           %d\n", r.Raw.Cycles)
	fmt.Printf("IPC:              %.4f (%.3fx baseline)\n", r.IPC, r.Speedup)
	fmt.Printf("L1 hits/misses:   %d / %d\n", r.Raw.L1Hits, r.Raw.L1Misses)
	fmt.Printf("L2 demand misses: %d\n", r.Raw.L2DemandMisses)
	fmt.Printf("DRAM reads/writes: %d / %d\n", r.Raw.DRAMReads, r.Raw.DRAMWrites)
	fmt.Printf("prefetches issued: %d (useful %d, accuracy %.3f)\n", r.Raw.TPIssued, r.Raw.TPUseful, r.Accuracy)
	fmt.Printf("metadata ways:    %d\n", r.MetaWays)
}
