// Command simulate runs one workload under one prefetching scheme and
// prints the raw statistics — the low-level entry point for exploring the
// simulator outside the figure harness.
//
// Usage:
//
//	simulate -workload mcf -scheme prophet
//	simulate -workload bfs_100000_16 -scheme triangel -records 100000
//	simulate -workload omnetpp -scheme baseline -channels 2 -l1pf ipcp
package main

import (
	"flag"
	"fmt"
	"os"

	"prophet/internal/graphs"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/triage"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

func main() {
	workload := flag.String("workload", "mcf", "workload name (SPEC-like or CRONO algorithm_nodes_param)")
	scheme := flag.String("scheme", "prophet", "baseline | rpg2 | triage | triangel | prophet")
	records := flag.Uint64("records", 0, "memory records (0 = workload default)")
	channels := flag.Int("channels", 1, "DRAM channels")
	l1pf := flag.String("l1pf", "stride", "L1 prefetcher: stride | ipcp | none")
	flag.Parse()

	factory, err := resolve(*workload, *records)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := pipeline.Default()
	cfg.Sim.DRAM.Channels = *channels
	switch *l1pf {
	case "stride":
		cfg.Sim.L1PF = sim.L1Stride
	case "ipcp":
		cfg.Sim.L1PF = sim.L1IPCP
	case "none":
		cfg.Sim.L1PF = sim.L1None
	default:
		fmt.Fprintf(os.Stderr, "unknown l1pf %q\n", *l1pf)
		os.Exit(1)
	}

	var st sim.Stats
	switch *scheme {
	case "baseline":
		st = pipeline.RunBaseline(cfg.Sim, factory())
	case "rpg2":
		res := pipeline.RunRPG2(cfg.Sim, factory, 0)
		st = res.Stats
		fmt.Printf("rpg2: kernels=%d distance=%d\n", res.Kernels, res.Distance)
	case "triage":
		st = pipeline.RunTriage(cfg.Sim, triage.Default(), factory())
	case "triangel":
		st = pipeline.RunTriangel(cfg.Sim, triangel.Default(), factory())
	case "prophet":
		var p *pipeline.Prophet
		st, p = pipeline.RunProphetDirect(cfg, factory)
		res := p.Analyze()
		fmt.Printf("prophet: hints=%d metaWays=%d disableTP=%v\n",
			len(res.Hints.PC), res.Hints.MetaWays, res.Hints.DisableTP)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(1)
	}

	fmt.Printf("workload:         %s\n", *workload)
	fmt.Printf("instructions:     %d\n", st.Core.Instructions)
	fmt.Printf("cycles:           %d\n", st.Core.Cycles)
	fmt.Printf("IPC:              %.4f\n", st.IPC())
	fmt.Printf("L1 hits/misses:   %d / %d\n", st.L1.Hits, st.L1.Misses)
	fmt.Printf("L2 demand misses: %d\n", st.L2DemandMisses)
	fmt.Printf("DRAM reads/writes: %d / %d\n", st.DRAM.Reads, st.DRAM.Writes)
	fmt.Printf("prefetches issued: %d (useful %d, accuracy %.3f)\n", st.TPIssued, st.TPUseful, st.TPAccuracy())
	fmt.Printf("metadata ways:    %d\n", st.MetaWays)
}

// resolve maps a workload name to a trace factory, trying the SPEC catalog
// first and the CRONO name grammar second.
func resolve(name string, records uint64) (pipeline.SourceFactory, error) {
	if w, ok := workloads.Get(name); ok {
		return func() mem.Source { return w.Source(records) }, nil
	}
	if g, err := graphs.Parse(name); err == nil {
		return func() mem.Source { return g.Source(records) }, nil
	}
	return nil, fmt.Errorf("unknown workload %q (try: mcf, omnetpp, gcc_166, bfs_100000_16, ...)", name)
}
