// Command tracegen exports a workload's memory trace to a file in the
// repository's binary trace format (see internal/mem), for inspection or
// byte-identical replay.
//
// Usage:
//
//	tracegen -workload omnetpp -records 100000 -o omnetpp.trc
//	tracegen -workload bfs_100000_16 -o bfs.trc.gz   # gzip-compressed
//	tracegen -workload mcf -stats            # print a pattern summary only
//	tracegen -from champsim:trace.champsim.gz -o trace.trc.gz  # convert
//
// A ".gz" output suffix selects gzip compression; either form round-trips
// through the "file:<path>" workload source (cmd/simulate -workload
// file:omnetpp.trc, or the daemon's POST /v1/evaluate).
//
// -from converts an external trace (any internal/ingest format:
// "champsim:<path>" or "csv:<path>", gzip auto-detected) into the native
// format, so third-party traces can be archived and replayed via "file:"
// without paying conversion on every run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prophet"

	"prophet/internal/ingest"
	"prophet/internal/mem"
)

func main() {
	workload := flag.String("workload", "omnetpp", "workload name")
	from := flag.String("from", "", "external trace to convert (e.g. champsim:<path>, csv:<path>); overrides -workload")
	records := flag.Uint64("records", 0, "memory records (0 = workload default)")
	out := flag.String("o", "", "output trace file; a .gz suffix gzip-compresses (required unless -stats)")
	statsOnly := flag.Bool("stats", false, "print trace statistics instead of writing a file")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("tracegen", prophet.Version())
		return
	}

	if *from != "" {
		convert(*from, *out, *records, *statsOnly)
		return
	}

	// Summarizing an existing trace file is a single pass: stream it in
	// reusable blocks instead of materializing the whole record slice the
	// way the multi-pass file: workload source must.
	if path, ok := strings.CutPrefix(*workload, "file:"); ok && *statsOnly && *records == 0 {
		tr, err := mem.OpenTraceFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer tr.Close()
		printStats(tr)
		if err := tr.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	w, err := prophet.Find(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	src, err := w.WithRecords(*records).Open()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *statsOnly {
		printStats(src)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "need -o <file> (or -stats)")
		os.Exit(1)
	}
	n, err := mem.WriteTraceFile(*out, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records to %s\n", n, *out)
}

// convert streams an external trace through its ingest converter into the
// native trace format (or -stats). The converter's terminal error is checked
// after the stream drains: a truncated or corrupt input must fail the
// conversion, never silently archive a short trace.
func convert(from, out string, records uint64, statsOnly bool) {
	f, path, ok := ingest.Split(from)
	if !ok {
		var names []string
		for _, f := range ingest.Formats() {
			names = append(names, f.Name+":<path>")
		}
		fmt.Fprintf(os.Stderr, "-from wants %s, got %q\n", strings.Join(names, " or "), from)
		os.Exit(1)
	}
	r, err := ingest.OpenFile(f, path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer r.Close()
	var src mem.Source = r
	if records > 0 {
		src = mem.Limit(src, records)
	}
	if statsOnly {
		printStats(src)
		if err := r.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if out == "" {
		fmt.Fprintln(os.Stderr, "need -o <file> (or -stats)")
		os.Exit(1)
	}
	n, err := mem.WriteTraceFile(out, src)
	if err == nil {
		err = r.Err()
	}
	if err != nil {
		os.Remove(out)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("converted %d records from %s to %s\n", n, from, out)
}

func printStats(src mem.Source) {
	var records, instructions, loads, stores, deps uint64
	pcs := map[mem.Addr]uint64{}
	lines := map[mem.Line]struct{}{}
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		records++
		instructions += a.Instructions()
		if a.Kind == mem.Store {
			stores++
		} else {
			loads++
		}
		if a.Dep != 0 {
			deps++
		}
		pcs[a.PC]++
		lines[a.Line()] = struct{}{}
	}
	fmt.Printf("records:       %d\n", records)
	fmt.Printf("instructions:  %d\n", instructions)
	fmt.Printf("loads/stores:  %d / %d\n", loads, stores)
	fmt.Printf("dependent:     %d (%.1f%%)\n", deps, pct(deps, records))
	fmt.Printf("distinct PCs:  %d\n", len(pcs))
	fmt.Printf("distinct lines: %d (%.1f MB footprint)\n", len(lines), float64(len(lines))*64/1024/1024)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
