// Command prophet drives the profile-guided pipeline of Figure 5 end to
// end: profile one or more inputs with the simplified temporal prefetcher
// (Step 1), merge counters across inputs (Step 3), generate hints (Step 2),
// and run the optimized binary, reporting the speedup over the
// no-temporal-prefetching baseline and over the Triangel runtime scheme.
//
// Usage:
//
//	prophet -inputs gcc_166,gcc_expr -eval gcc_200
//	prophet -inputs mcf            # profile and evaluate the same input
//	prophet -inputs omnetpp -el-acc 0.25 -priority-bits 3
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"prophet/internal/analysis"
	"prophet/internal/graphs"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/stats"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

func main() {
	inputs := flag.String("inputs", "", "comma-separated workloads to profile and learn, in order")
	eval := flag.String("eval", "", "workloads to evaluate (default: the learned inputs)")
	records := flag.Uint64("records", 0, "memory records per run (0 = workload default)")
	elAcc := flag.Float64("el-acc", 0.15, "EL_ACC insertion threshold (Equation 1)")
	prioBits := flag.Int("priority-bits", 2, "replacement priority bits n (Equation 2)")
	mvbCand := flag.Int("mvb-candidates", 1, "Multi-path Victim Buffer candidates per lookup")
	learnL := flag.Int("learn-l", 4, "Equation 4 designer parameter L")
	flag.Parse()

	if *inputs == "" {
		fmt.Fprintln(os.Stderr, "need -inputs (e.g. -inputs gcc_166,gcc_expr)")
		os.Exit(1)
	}

	cfg := pipeline.Default()
	cfg.Analysis.ELAcc = *elAcc
	cfg.Analysis.PriorityBits = *prioBits
	cfg.Prophet.MVBCandidates = *mvbCand
	cfg.L = *learnL

	p := pipeline.NewProphet(cfg)
	for _, name := range strings.Split(*inputs, ",") {
		name = strings.TrimSpace(name)
		factory, err := resolve(name, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Step 1+3: profiling %s and merging counters (loop %d)\n", name, p.ProfileState().Loops+1)
		p.ProfileAndLearn(factory())
	}

	res := p.Analyze()
	fmt.Printf("Step 2: analysis produced %d PC hints, metaWays=%d, disableTP=%v (%.1fms)\n",
		len(res.Hints.PC), res.Hints.MetaWays, res.Hints.DisableTP,
		float64(res.Elapsed.Microseconds())/1000)
	printHints(res)

	evalList := *eval
	if evalList == "" {
		evalList = *inputs
	}
	fmt.Printf("\n%-16s %10s %10s %10s %12s %12s\n", "workload", "baseIPC", "triangel", "prophet", "vs baseline", "vs triangel")
	for _, name := range strings.Split(evalList, ",") {
		name = strings.TrimSpace(name)
		factory, err := resolve(name, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		base := pipeline.RunBaseline(cfg.Sim, factory())
		tr := pipeline.RunTriangel(cfg.Sim, triangel.Default(), factory())
		pr := p.Run(factory())
		fmt.Printf("%-16s %10.4f %10.4f %10.4f %11.2f%% %11.2f%%\n",
			name, base.IPC(), tr.IPC(), pr.IPC(),
			(stats.Speedup(pr.IPC(), base.IPC())-1)*100,
			(stats.Speedup(pr.IPC(), tr.IPC())-1)*100)
	}
}

// printHints lists the injected PC hints, heaviest miss contributors first.
func printHints(res analysis.Result) {
	type row struct {
		pc     mem.Addr
		weight uint64
	}
	rows := make([]row, 0, len(res.Hints.PC))
	for pc := range res.Hints.PC {
		rows = append(rows, row{pc, res.Weights[pc]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].weight != rows[j].weight {
			return rows[i].weight > rows[j].weight
		}
		return rows[i].pc < rows[j].pc
	})
	max := 12
	if len(rows) < max {
		max = len(rows)
	}
	for _, r := range rows[:max] {
		h := res.Hints.PC[r.pc]
		fmt.Printf("  hint pc=%#x insert=%v priority=%d (misses %d)\n", uint64(r.pc), h.Insert, h.Priority, r.weight)
	}
	if len(rows) > max {
		fmt.Printf("  ... and %d more hints\n", len(rows)-max)
	}
}

func resolve(name string, records uint64) (pipeline.SourceFactory, error) {
	if w, ok := workloads.Get(name); ok {
		return func() mem.Source { return w.Source(records) }, nil
	}
	if g, err := graphs.Parse(name); err == nil {
		return func() mem.Source { return g.Source(records) }, nil
	}
	var known []string
	for _, w := range workloads.All() {
		known = append(known, w.Name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("unknown workload %q; catalog: %s", name, strings.Join(known, ", "))
}
