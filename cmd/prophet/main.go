// Command prophet drives the profile-guided pipeline of Figure 5 end to
// end: profile one or more inputs with the simplified temporal prefetcher
// (Step 1), merge counters across inputs (Step 3), generate hints (Step 2),
// and run the optimized binary, reporting the speedup over the
// no-temporal-prefetching baseline and over the Triangel runtime scheme.
//
// Usage:
//
//	prophet -inputs gcc_166,gcc_expr -eval gcc_200
//	prophet -inputs mcf            # profile and evaluate the same input
//	prophet -inputs omnetpp -el-acc 0.25 -priority-bits 3
//	prophet -inputs mcf -backends http://w1:8373,http://w2:8373
//
// With -backends, the Triangel reference runs are swept as one batch
// sharded across the remote prophetd fleet. Baselines and the
// profile-guided Prophet runs stay local: the Prophet runs carry this
// process's learned hints and normalize against the locally cached
// baselines, so shipping baselines out would only simulate them twice.
// Results are byte-identical to a local run when the backends simulate the
// same configuration, so point -backends at daemons started with matching
// flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"prophet"

	"prophet/internal/cliutil"
)

func main() {
	inputs := flag.String("inputs", "", "comma-separated workloads to profile and learn, in order")
	eval := flag.String("eval", "", "workloads to evaluate (default: the learned inputs)")
	records := flag.Uint64("records", 0, "memory records per run (0 = workload default)")
	elAcc := flag.Float64("el-acc", 0.15, "EL_ACC insertion threshold (Equation 1)")
	prioBits := flag.Int("priority-bits", 2, "replacement priority bits n (Equation 2)")
	mvbCand := flag.Int("mvb-candidates", 1, "Multi-path Victim Buffer candidates per lookup")
	learnL := flag.Int("learn-l", 4, "Equation 4 designer parameter L")
	backends := flag.String("backends", "", "comma-separated prophetd base URLs to shard reference runs across")
	scheduler := flag.String("scheduler", "hash", "fleet scheduling strategy with -backends: "+strings.Join(prophet.Schedulers(), ", "))
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if !prophet.ValidScheduler(*scheduler) {
		fmt.Fprintf(os.Stderr, "unknown -scheduler %q (choose from %s)\n", *scheduler, strings.Join(prophet.Schedulers(), ", "))
		os.Exit(1)
	}

	if *version {
		fmt.Println("prophet", prophet.Version())
		return
	}

	if *inputs == "" {
		fmt.Fprintln(os.Stderr, "need -inputs (e.g. -inputs gcc_166,gcc_expr)")
		os.Exit(1)
	}

	ctx := context.Background()
	evOpts := []prophet.Option{
		prophet.WithELAcc(*elAcc),
		prophet.WithPriorityBits(*prioBits),
		prophet.WithMVBCandidates(*mvbCand),
		prophet.WithLearningL(*learnL),
	}
	if urls := cliutil.SplitList(*backends); len(urls) > 0 {
		evOpts = append(evOpts, prophet.WithBackends(urls...), prophet.WithScheduler(*scheduler))
	}
	ev := prophet.New(evOpts...)
	s := ev.NewSession()

	for _, name := range strings.Split(*inputs, ",") {
		w, err := resolve(name, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Step 1+3: profiling %s and merging counters (loop %d)\n", w.Name, s.Loops()+1)
		if err := s.Profile(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	bin := s.Optimize()
	fmt.Printf("Step 2: analysis produced %d PC hints, metaWays=%d, disableTP=%v\n",
		bin.PCHints, bin.MetaWays, bin.TPDisabled)
	printHints(bin)

	evalList := *eval
	if evalList == "" {
		evalList = *inputs
	}
	var ws []prophet.Workload
	for _, name := range strings.Split(evalList, ",") {
		w, err := resolve(name, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ws = append(ws, w)
	}

	// Baselines run in process on purpose: the session's Prophet runs below
	// need each workload's baseline to normalize their speedup, and a
	// local sweep populates the shared cache so every baseline simulates
	// exactly once. The Triangel reference runs carry no such coupling, so
	// they go out as one sweep — sharded across the fleet with -backends,
	// fanned over the local worker pool without.
	bases, err := ev.SweepLocal(ctx, prophet.Jobs(ws, prophet.Baseline)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	trs, err := ev.Sweep(ctx, prophet.Jobs(ws, prophet.Triangel)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("\n%-16s %10s %10s %10s %12s %12s\n", "workload", "baseIPC", "triangel", "prophet", "vs baseline", "vs triangel")
	for i, w := range ws {
		base, tr := bases[i], trs[i]
		if base.Err != nil {
			fmt.Fprintln(os.Stderr, base.Err)
			os.Exit(1)
		}
		if tr.Err != nil {
			fmt.Fprintln(os.Stderr, tr.Err)
			os.Exit(1)
		}
		pr, err := s.Run(ctx, bin, w)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-16s %10.4f %10.4f %10.4f %11.2f%% %11.2f%%\n",
			w.Name, base.Stats.IPC, tr.Stats.IPC, pr.IPC,
			(pr.Speedup-1)*100,
			(pr.IPC/tr.Stats.IPC-1)*100)
	}
}

// printHints lists the injected PC hints, heaviest miss contributors first.
func printHints(bin prophet.Binary) {
	hints := bin.Hints()
	max := 12
	if len(hints) < max {
		max = len(hints)
	}
	for _, h := range hints[:max] {
		fmt.Printf("  hint pc=%#x insert=%v priority=%d (misses %d)\n", h.PC, h.Insert, h.Priority, h.Misses)
	}
	if len(hints) > max {
		fmt.Printf("  ... and %d more hints\n", len(hints)-max)
	}
}

func resolve(name string, records uint64) (prophet.Workload, error) {
	w, err := prophet.Find(strings.TrimSpace(name))
	if err != nil {
		known := prophet.Catalog()
		sort.Strings(known)
		return prophet.Workload{}, fmt.Errorf("%v; catalog: %s", err, strings.Join(known, ", "))
	}
	return w.WithRecords(records), nil
}
