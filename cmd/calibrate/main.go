// Command calibrate runs the evaluation workloads under every scheme and
// prints the raw metrics side by side. It exists to sanity-check workload
// and prefetcher parameters against the shapes the paper reports; the
// polished per-figure output lives in cmd/experiments.
//
// Each workload's scheme set is dispatched through Evaluator.Sweep, so the
// four prefetchers run concurrently and share one cached baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"prophet"

	"prophet/internal/graphs"
	"prophet/internal/stats"
	"prophet/internal/workloads"
)

func main() {
	records := flag.Uint64("records", workloads.DefaultRecords, "memory records per run")
	only := flag.String("only", "", "run a single workload by name")
	graphsToo := flag.Bool("graphs", false, "include CRONO graph workloads")
	workers := flag.Int("workers", 0, "sweep worker pool (0 = all CPUs)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("calibrate", prophet.Version())
		return
	}

	var names []string
	for _, w := range workloads.SPEC() {
		names = append(names, w.Name)
	}
	if *graphsToo {
		for _, g := range graphs.CRONO() {
			names = append(names, g.Name)
		}
	}

	ev := prophet.New(prophet.WithWorkers(*workers))
	ctx := context.Background()
	schemes := []prophet.Scheme{prophet.RPG2, prophet.Triage, prophet.Triangel, prophet.Prophet}

	var spRPG2, spTriage, spTriangel, spProphet []float64
	fmt.Printf("%-18s %8s | %22s %22s %22s %28s\n",
		"workload", "baseIPC", "rpg2(spd,tr)", "triage(spd,tr,acc)", "triangel(spd,tr,acc,w)", "prophet(spd,tr,acc,w,cov)")
	for _, name := range names {
		if *only != "" && name != *only {
			continue
		}
		w, err := prophet.Find(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w = w.WithRecords(*records)

		start := time.Now()
		base, err := ev.Run(ctx, w, prophet.Baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		byScheme := make(map[prophet.Scheme]prophet.Result, len(schemes))
		jobs := prophet.Jobs([]prophet.Workload{w}, schemes...)
		for i := range jobs {
			if jobs[i].Scheme == prophet.RPG2 {
				// Halve the distance-tuning trace, matching the tool's
				// historical probe cost.
				jobs[i].TuneRecords = *records / 2
			}
		}
		results, err := ev.Sweep(ctx, jobs...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, res := range results {
			if res.Err != nil {
				fmt.Fprintln(os.Stderr, res.Err)
				os.Exit(1)
			}
			byScheme[res.Job.Scheme] = res
		}
		rpRep, prRep := byScheme[prophet.RPG2], byScheme[prophet.Prophet]
		rp, tg := rpRep.Stats, byScheme[prophet.Triage].Stats
		tr, pr := byScheme[prophet.Triangel].Stats, prRep.Stats

		spRPG2 = append(spRPG2, rp.Speedup)
		spTriage = append(spTriage, tg.Speedup)
		spTriangel = append(spTriangel, tr.Speedup)
		spProphet = append(spProphet, pr.Speedup)

		fmt.Printf("%-18s %8.3f | %6.3f %5.2f (k=%d,d=%d) | %6.3f %5.2f %4.2f | %6.3f %5.2f %4.2f w%d | %6.3f %5.2f %4.2f w%d cov%4.2f/%4.2f | hints=%d ways=%d dis=%v %.1fs\n",
			name, base.IPC,
			rp.Speedup, rp.NormalizedTraffic, rpRep.Meta["kernels"], rpRep.Meta["distance"],
			tg.Speedup, tg.NormalizedTraffic, tg.Accuracy,
			tr.Speedup, tr.NormalizedTraffic, tr.Accuracy, tr.MetaWays,
			pr.Speedup, pr.NormalizedTraffic, pr.Accuracy, pr.MetaWays,
			pr.Coverage, tr.Coverage,
			prRep.Meta["hints"], prRep.Meta["metaWays"], prRep.Meta["disableTP"] != 0,
			time.Since(start).Seconds())
		fmt.Printf("    baseMiss=%dk | tg ins=%dk lkup=%dk hit=%dk iss=%dk | tr ins=%dk lkup=%dk hit=%dk iss=%dk | pr ins=%dk lkup=%dk hit=%dk iss=%dk useless tg=%dk tr=%dk pr=%dk\n",
			base.Raw.L2DemandMisses/1000,
			tg.Raw.TableInsertions/1000, tg.Raw.TableLookups/1000, tg.Raw.TableHits/1000, tg.Raw.TPIssued/1000,
			tr.Raw.TableInsertions/1000, tr.Raw.TableLookups/1000, tr.Raw.TableHits/1000, tr.Raw.TPIssued/1000,
			pr.Raw.TableInsertions/1000, pr.Raw.TableLookups/1000, pr.Raw.TableHits/1000, pr.Raw.TPIssued/1000,
			tg.Raw.TPUseless/1000, tr.Raw.TPUseless/1000, pr.Raw.TPUseless/1000)
	}
	hits, misses := ev.BaselineCacheStats()
	fmt.Printf("\nGEOMEAN  rpg2=%.4f triage=%.4f triangel=%.4f prophet=%.4f  (baseline cache: %d hits / %d misses)\n",
		stats.Geomean(spRPG2), stats.Geomean(spTriage), stats.Geomean(spTriangel), stats.Geomean(spProphet),
		hits, misses)
}
