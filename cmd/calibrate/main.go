// Command calibrate runs the evaluation workloads under every scheme and
// prints the raw metrics side by side. It exists to sanity-check workload
// and prefetcher parameters against the shapes the paper reports; the
// polished per-figure output lives in cmd/experiments.
package main

import (
	"flag"
	"fmt"
	"time"

	"prophet/internal/graphs"
	"prophet/internal/mem"
	"prophet/internal/pipeline"
	"prophet/internal/sim"
	"prophet/internal/stats"
	"prophet/internal/triage"
	"prophet/internal/triangel"
	"prophet/internal/workloads"
)

type namedFactory struct {
	name    string
	factory pipeline.SourceFactory
}

func main() {
	records := flag.Uint64("records", workloads.DefaultRecords, "memory records per run")
	only := flag.String("only", "", "run a single workload by name")
	graphsToo := flag.Bool("graphs", false, "include CRONO graph workloads")
	flag.Parse()

	var list []namedFactory
	for _, w := range workloads.SPEC() {
		w := w
		list = append(list, namedFactory{w.Name, func() mem.Source { return w.Source(*records) }})
	}
	if *graphsToo {
		for _, g := range graphs.CRONO() {
			g := g
			list = append(list, namedFactory{g.Name, func() mem.Source { return g.Source(*records) }})
		}
	}

	cfg := pipeline.Default()
	var spRPG2, spTriage, spTriangel, spProphet []float64
	fmt.Printf("%-18s %8s | %22s %22s %22s %28s\n",
		"workload", "baseIPC", "rpg2(spd,tr)", "triage(spd,tr,acc)", "triangel(spd,tr,acc,w)", "prophet(spd,tr,acc,w,cov)")
	for _, w := range list {
		if *only != "" && w.name != *only {
			continue
		}
		start := time.Now()
		base := pipeline.RunBaseline(cfg.Sim, w.factory())

		rp := pipeline.RunRPG2(cfg.Sim, w.factory, *records/2)

		tg := triage.Default()
		tgStats := pipeline.RunTriage(cfg.Sim, tg, w.factory())

		tr := triangel.Default()
		trStats := pipeline.RunTriangel(cfg.Sim, tr, w.factory())

		prStats, pr := pipeline.RunProphetDirect(cfg, w.factory)
		res := pr.Analyze()

		sp := func(s sim.Stats) float64 { return stats.Speedup(s.IPC(), base.IPC()) }
		tf := func(s sim.Stats) float64 { return stats.NormalizedTraffic(s.DRAMTraffic(), base.DRAMTraffic()) }
		cov := func(s sim.Stats) float64 { return stats.Coverage(base.L2DemandMisses, s.L2DemandMisses) }

		spRPG2 = append(spRPG2, sp(rp.Stats))
		spTriage = append(spTriage, sp(tgStats))
		spTriangel = append(spTriangel, sp(trStats))
		spProphet = append(spProphet, sp(prStats))

		fmt.Printf("%-18s %8.3f | %6.3f %5.2f (k=%d,d=%d) | %6.3f %5.2f %4.2f | %6.3f %5.2f %4.2f w%d | %6.3f %5.2f %4.2f w%d cov%4.2f/%4.2f | hints=%d ways=%d dis=%v %.1fs\n",
			w.name, base.IPC(),
			sp(rp.Stats), tf(rp.Stats), rp.Kernels, rp.Distance,
			sp(tgStats), tf(tgStats), tgStats.TPAccuracy(),
			sp(trStats), tf(trStats), trStats.TPAccuracy(), trStats.MetaWays,
			sp(prStats), tf(prStats), prStats.TPAccuracy(), prStats.MetaWays,
			cov(prStats), cov(trStats),
			len(res.Hints.PC), res.Hints.MetaWays, res.Hints.DisableTP,
			time.Since(start).Seconds())
		fmt.Printf("    baseMiss=%dk | tg ins=%dk lkup=%dk hit=%dk iss=%dk | tr ins=%dk lkup=%dk hit=%dk iss=%dk | pr ins=%dk lkup=%dk hit=%dk iss=%dk useless tg=%dk tr=%dk pr=%dk\n",
			base.L2DemandMisses/1000,
			tgStats.TableStats.Insertions/1000, tgStats.TableStats.Lookups/1000, tgStats.TableStats.Hits/1000, tgStats.TPIssued/1000,
			trStats.TableStats.Insertions/1000, trStats.TableStats.Lookups/1000, trStats.TableStats.Hits/1000, trStats.TPIssued/1000,
			prStats.TableStats.Insertions/1000, prStats.TableStats.Lookups/1000, prStats.TableStats.Hits/1000, prStats.TPIssued/1000,
			tgStats.TPUseless/1000, trStats.TPUseless/1000, prStats.TPUseless/1000)
	}
	fmt.Printf("\nGEOMEAN  rpg2=%.4f triage=%.4f triangel=%.4f prophet=%.4f\n",
		stats.Geomean(spRPG2), stats.Geomean(spTriage), stats.Geomean(spTriangel), stats.Geomean(spProphet))
}
