// End-to-end tests for sharded multi-backend sweep dispatch, pinning the
// acceptance contract: a Sweep sharded across prophetd backends returns
// results byte-identical (same RunStats, same order) to the in-process
// Evaluator.Sweep — including under injected backend failures, where jobs
// fail over to the local engine without being lost or duplicated — and the
// default-configuration figure suite renders byte-identical output against
// a fleet. TestShardedSweepLiveBackends runs the same equivalence against
// real daemons named by PROPHET_SHARD_BACKENDS (CI starts two).
package prophet_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"prophet"

	"prophet/internal/experiments"
	"prophet/internal/server"
)

// startWorker launches an in-process prophetd worker (default engine) and
// returns its base URL.
func startWorker(t *testing.T) string {
	t.Helper()
	srv := server.New(server.Config{Evaluator: prophet.New(prophet.WithWorkers(2))})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})
	return ts.URL
}

// sweepJobs is the standard job matrix: three workloads by three schemes at
// a short trace length, enough to spread across shards.
func sweepJobs(t *testing.T) []prophet.Job {
	t.Helper()
	var ws []prophet.Workload
	for _, name := range []string{"mcf", "omnetpp", "xalancbmk"} {
		w, err := prophet.Find(name)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w.WithRecords(3000))
	}
	return prophet.Jobs(ws, prophet.Baseline, prophet.Triage, prophet.Triangel)
}

// assertSweepsEqual compares two result lists row by row: same job order,
// byte-identical RunStats, equal Meta, matching error messages.
func assertSweepsEqual(t *testing.T, got, want []prophet.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Job.Workload.Name != w.Job.Workload.Name || g.Job.Scheme != w.Job.Scheme {
			t.Fatalf("row %d job (%s,%s), want (%s,%s): order not preserved",
				i, g.Job.Workload.Name, g.Job.Scheme, w.Job.Workload.Name, w.Job.Scheme)
		}
		switch {
		case (g.Err == nil) != (w.Err == nil):
			t.Fatalf("row %d error mismatch: got %v, want %v", i, g.Err, w.Err)
		case g.Err != nil:
			if g.Err.Error() != w.Err.Error() {
				t.Fatalf("row %d error text %q, want %q", i, g.Err, w.Err)
			}
		default:
			if g.Stats != w.Stats {
				t.Fatalf("row %d (%s under %s) stats differ:\n got %+v\nwant %+v",
					i, w.Job.Workload.Name, w.Job.Scheme, g.Stats, w.Stats)
			}
			if !reflect.DeepEqual(g.Meta, w.Meta) {
				t.Fatalf("row %d meta %v, want %v", i, g.Meta, w.Meta)
			}
		}
	}
}

func TestShardedSweepMatchesLocal(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	coord := prophet.New(
		prophet.WithBackends(startWorker(t), startWorker(t)),
		prophet.WithWorkers(2),
	)
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)

	st := coord.DispatchStats()
	if st.Remote != int64(len(jobs)) || st.Failovers != 0 {
		t.Fatalf("dispatch stats %+v: want all %d jobs remote, no failovers", st, len(jobs))
	}
}

// One backend is down for good: its shard fails over to the local engine
// and the merged sweep is still byte-identical, with no job lost or run
// into two result rows.
func TestShardedSweepFailoverByteIdentical(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first request

	coord := prophet.New(
		prophet.WithBackends(startWorker(t), dead.URL),
		prophet.WithBackendRetries(2),
		prophet.WithWorkers(2),
	)
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)

	st := coord.DispatchStats()
	if st.Failovers == 0 {
		t.Fatal("dead backend produced no failovers; shard never reached it?")
	}
	if st.Remote+st.Local != int64(len(jobs)) {
		t.Fatalf("dispatch stats %+v: remote+local != %d jobs", st, len(jobs))
	}
}

// A worker simulating a different engine configuration must never have its
// results merged: the coordinator detects the mismatch from the echoed
// Options and fails the shard over to its own (correctly configured)
// engine, keeping the sweep byte-identical to local.
func TestConfigMismatchFailsOver(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Config{Evaluator: prophet.New(prophet.WithELAcc(0.5), prophet.WithWorkers(2))})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})

	coord := prophet.New(
		prophet.WithBackends(ts.URL),
		prophet.WithBackendRetries(1),
		prophet.WithWorkers(2),
	)
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)
	st := coord.DispatchStats()
	if st.Remote != 0 || st.Failovers != int64(len(jobs)) {
		t.Fatalf("dispatch stats %+v: misconfigured worker must contribute nothing remotely", st)
	}
}

// A transiently failing backend (HTTP 500 on its first request) is healed
// by a retry rather than a failover.
func TestShardedSweepRetriesTransientFailure(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	srv := server.New(server.Config{Evaluator: prophet.New(prophet.WithWorkers(2))})
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"injected"}`, http.StatusInternalServerError)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		flaky.Close()
		srv.Close(context.Background())
	})

	coord := prophet.New(
		prophet.WithBackends(flaky.URL),
		prophet.WithBackendRetries(3),
		prophet.WithWorkers(2),
	)
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)

	st := coord.DispatchStats()
	if st.Retries == 0 || st.Failovers != 0 {
		t.Fatalf("dispatch stats %+v: want retries>0, failovers=0", st)
	}
}

// Per-job failures (unknown workload/scheme) surface with the same error
// text whether the job ran remotely or in process, and batching splits
// (WithBackendMaxBatch) don't disturb ordering.
func TestShardedSweepErrorRowsAndChunking(t *testing.T) {
	jobs := sweepJobs(t)
	jobs = append(jobs,
		prophet.Job{Workload: prophet.Workload{Name: "no_such_workload"}, Scheme: prophet.Baseline},
		prophet.Job{Workload: prophet.Workload{Name: "mcf", Records: 3000}, Scheme: "no_such_scheme"},
		// Whitespace-padded names must fail identically on both paths: the
		// batch wire layer passes fields through verbatim, it never trims.
		prophet.Job{Workload: prophet.Workload{Name: " mcf", Records: 3000}, Scheme: prophet.Baseline},
	)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	coord := prophet.New(
		prophet.WithBackends(startWorker(t), startWorker(t)),
		prophet.WithBackendMaxBatch(2),
		prophet.WithWorkers(2),
	)
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)
}

// The figure suite against a fleet: F10 rendered through RemoteSweep must
// be byte-identical to the purely local rendering.
func TestShardedExperimentsMatchLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full F10 twice is not -short material")
	}
	opts := experiments.Options{Records: 6000, Workers: 2}
	localRes, err := experiments.Run("F10", opts)
	if err != nil {
		t.Fatal(err)
	}

	coord := prophet.New(
		prophet.WithBackends(startWorker(t), startWorker(t)),
		prophet.WithWorkers(2),
	)
	remoteOpts := opts
	remoteOpts.RemoteSweep = func(jobs []experiments.RemoteJob) []experiments.RemoteRun {
		pj := make([]prophet.Job, len(jobs))
		for i, j := range jobs {
			pj[i] = prophet.Job{
				Workload: prophet.Workload{Name: j.Workload, Records: j.Records},
				Scheme:   prophet.Scheme(j.Scheme),
			}
		}
		res, _ := coord.Sweep(context.Background(), pj...)
		out := make([]experiments.RemoteRun, len(res))
		for i, r := range res {
			out[i] = experiments.RemoteRun{
				IPC: r.Stats.IPC, Speedup: r.Stats.Speedup, Traffic: r.Stats.NormalizedTraffic,
				Coverage: r.Stats.Coverage, Accuracy: r.Stats.Accuracy,
				MetaWays: r.Stats.MetaWays, Meta: r.Meta, Err: r.Err,
			}
		}
		return out
	}
	remoteRes, err := experiments.Run("F10", remoteOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := remoteRes.Render(), localRes.Render(); got != want {
		t.Fatalf("remote F10 rendering differs from local:\n--- remote ---\n%s\n--- local ---\n%s", got, want)
	}
	if coord.DispatchStats().Remote == 0 {
		t.Fatal("remote F10 never reached the backends")
	}
}

// Every scheduling strategy must produce byte-identical merged results:
// the scheduler chooses placement, never content or order.
func TestSweepByteIdenticalAcrossSchedulers(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := startWorker(t), startWorker(t)
	for _, sched := range prophet.Schedulers() {
		t.Run(sched, func(t *testing.T) {
			coord := prophet.New(
				prophet.WithBackends(w1, w2),
				prophet.WithScheduler(sched),
				prophet.WithBackendMaxBatch(2),
				prophet.WithWorkers(2),
			)
			got, err := coord.Sweep(context.Background(), jobs...)
			if err != nil {
				t.Fatal(err)
			}
			assertSweepsEqual(t, got, want)
			st := coord.DispatchStats()
			if st.Remote != int64(len(jobs)) || st.Failovers != 0 {
				t.Fatalf("dispatch stats %+v: want all %d jobs remote under %s", st, len(jobs), sched)
			}
		})
	}
}

// SweepStream against a fleet: every job index is emitted exactly once, and
// the rows merged by index reproduce the buffered sweep byte-for-byte.
func TestSweepStreamMergesToBuffered(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	coord := prophet.New(
		prophet.WithBackends(startWorker(t), startWorker(t)),
		prophet.WithScheduler("least-loaded"),
		prophet.WithBackendMaxBatch(2),
		prophet.WithWorkers(2),
	)
	merged := make([]prophet.Result, len(jobs))
	seen := make([]int, len(jobs))
	var mu sync.Mutex
	err = coord.SweepStream(context.Background(), func(i int, r prophet.Result) {
		mu.Lock()
		seen[i]++
		merged[i] = r
		mu.Unlock()
	}, jobs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("index %d emitted %d times, want exactly once", i, n)
		}
	}
	assertSweepsEqual(t, merged, want)
}

// Elastic membership through the public API: backends joined mid-lifetime
// take work, drained backends stop taking it, and the sweep stays
// byte-identical throughout.
func TestElasticBackendMembership(t *testing.T) {
	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}

	coord := prophet.New(prophet.WithWorkers(2)) // starts with no fleet
	if got, err := coord.Sweep(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	} else {
		assertSweepsEqual(t, got, want)
	}

	u := startWorker(t)
	if !coord.AddBackend(u) {
		t.Fatal("AddBackend rejected a new worker")
	}
	if coord.AddBackend(u) {
		t.Fatal("AddBackend accepted a duplicate")
	}
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)
	if st := coord.DispatchStats(); st.Remote == 0 {
		t.Fatalf("dispatch stats %+v: joined worker never took a job", st)
	}

	if !coord.RemoveBackend(u) {
		t.Fatal("RemoveBackend missed a known worker")
	}
	if coord.RemoveBackend(u) {
		t.Fatal("RemoveBackend removed a worker twice")
	}
	if bs := coord.Backends(); len(bs) != 0 {
		t.Fatalf("backends after drain: %v", bs)
	}
	before := coord.DispatchStats().Remote
	if got, err := coord.Sweep(context.Background(), jobs...); err != nil {
		t.Fatal(err)
	} else {
		assertSweepsEqual(t, got, want)
	}
	if after := coord.DispatchStats().Remote; after != before {
		t.Fatalf("drained fleet still ran jobs remotely (%d -> %d)", before, after)
	}
}

// TestShardedSweepLiveBackends is the CI fleet check: it shards a sweep
// across real prophetd processes (started by the workflow) and demands
// byte-identical results to the in-process sweep. Skipped unless
// PROPHET_SHARD_BACKENDS names at least two base URLs.
func TestShardedSweepLiveBackends(t *testing.T) {
	env := os.Getenv("PROPHET_SHARD_BACKENDS")
	if env == "" {
		t.Skip("PROPHET_SHARD_BACKENDS not set")
	}
	var urls []string
	for _, u := range strings.Split(env, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) < 2 {
		t.Fatalf("PROPHET_SHARD_BACKENDS=%q: need at least two URLs for a sharded check", env)
	}

	jobs := sweepJobs(t)
	local := prophet.New(prophet.WithWorkers(2))
	want, err := local.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	coord := prophet.New(prophet.WithBackends(urls...), prophet.WithWorkers(2))
	got, err := coord.Sweep(context.Background(), jobs...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, got, want)
	st := coord.DispatchStats()
	if st.Remote != int64(len(jobs)) {
		t.Fatalf("dispatch stats %+v: want all %d jobs remote against the live fleet", st, len(jobs))
	}

	// A sweep mixing an external trace with catalog workloads: the
	// champsim: jobs pin to the local engine (the path means nothing on a
	// remote peer) while the catalog jobs still shard across the fleet, and
	// the whole thing stays byte-identical to an in-process sweep. The new
	// scheme families ride along to prove they are sweepable over the fleet.
	ext, err := prophet.Find("champsim:testdata/sample.champsim.gz")
	if err != nil {
		t.Fatal(err)
	}
	mixed := prophet.Jobs([]prophet.Workload{ext}, prophet.Triangel, "gaze", "adaptive")
	extJobs := len(mixed)
	mixed = append(mixed, jobs...)
	mixedWant, err := local.Sweep(context.Background(), mixed...)
	if err != nil {
		t.Fatal(err)
	}
	coord2 := prophet.New(prophet.WithBackends(urls...), prophet.WithWorkers(2))
	mixedGot, err := coord2.Sweep(context.Background(), mixed...)
	if err != nil {
		t.Fatal(err)
	}
	assertSweepsEqual(t, mixedGot, mixedWant)
	st = coord2.DispatchStats()
	if st.Local != int64(extJobs) || st.Remote != int64(len(jobs)) {
		t.Fatalf("dispatch stats %+v: want %d external jobs pinned local and %d catalog jobs remote",
			st, extJobs, len(jobs))
	}

	// The same fleet under the least-loaded scheduler with streamed
	// delivery: health probes drive placement, rows arrive in completion
	// order, and the index-merged results are still byte-identical.
	coord3 := prophet.New(
		prophet.WithBackends(urls...),
		prophet.WithScheduler("least-loaded"),
		prophet.WithBackendMaxBatch(2),
		prophet.WithWorkers(2),
	)
	merged := make([]prophet.Result, len(jobs))
	seen := make([]int, len(jobs))
	var mu sync.Mutex
	if err := coord3.SweepStream(context.Background(), func(i int, r prophet.Result) {
		mu.Lock()
		seen[i]++
		merged[i] = r
		mu.Unlock()
	}, jobs...); err != nil {
		t.Fatal(err)
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("live stream emitted index %d %d times, want exactly once", i, n)
		}
	}
	assertSweepsEqual(t, merged, want)
}
