package prophet

import (
	"context"
	"fmt"
	"log"
	"net/http"

	"prophet/internal/dispatch"
	"prophet/internal/experiments"
	"prophet/internal/pipeline"
	"prophet/internal/registry"
	"prophet/internal/sim"
)

// Evaluator is the stateful evaluation service: it owns a fixed system /
// pipeline configuration, a per-workload baseline cache, and a concurrent
// sweep engine over the pluggable scheme registry. It is safe for
// concurrent use, and all runs are deterministic — a parallel Sweep returns
// bit-identical results to a serial one, and a Sweep sharded over remote
// backends (WithBackends) returns bit-identical results to an in-process
// one.
type Evaluator struct {
	opts    Options
	l1pf    L1Prefetcher
	workers int
	// runPar is the per-run intra-run parallelism bound. It lives outside
	// Options on purpose: results are bit-identical at every value, so it
	// must not enter store fingerprints or result cache keys.
	runPar int

	backendURLs     []string
	backendClient   *http.Client
	backendRetries  int
	backendMaxBatch int
	scheduler       string
	logf            func(format string, args ...any)

	// store is the optional durable result tier (WithResultStore): jobs
	// whose results are stored are answered from disk instead of being
	// simulated, and completed results write through.
	store ResultStore

	eng  *pipeline.Evaluator
	disp *dispatch.Dispatcher[Job, Result]
}

// Option configures an Evaluator under construction.
type Option func(*Evaluator)

// WithOptions applies a full legacy Options value (bulk form of the
// individual With* options).
func WithOptions(o Options) Option { return func(e *Evaluator) { e.opts = o } }

// WithELAcc sets the Equation 1 insertion threshold (default 0.15).
func WithELAcc(v float64) Option { return func(e *Evaluator) { e.opts.ELAcc = v } }

// WithPriorityBits sets Equation 2's n (default 2).
func WithPriorityBits(n int) Option { return func(e *Evaluator) { e.opts.PriorityBits = n } }

// WithMVBCandidates sets the victim-buffer alternate budget (default 1).
func WithMVBCandidates(n int) Option { return func(e *Evaluator) { e.opts.MVBCandidates = n } }

// WithLearningL sets Equation 4's designer parameter L (default 4).
func WithLearningL(n int) Option { return func(e *Evaluator) { e.opts.LearningL = n } }

// WithDRAMChannels widens memory bandwidth (default 1, Table 1).
func WithDRAMChannels(n int) Option { return func(e *Evaluator) { e.opts.DRAMChannels = n } }

// L1Prefetcher selects the simulated L1 prefetcher.
type L1Prefetcher int

const (
	// L1Stride is Table 1's degree-8 stride prefetcher (the default).
	L1Stride L1Prefetcher = iota
	// L1IPCP is the Figure 17 IPCP-style composite prefetcher.
	L1IPCP
	// L1None disables L1 prefetching.
	L1None
)

// WithL1Prefetcher selects the L1 prefetcher.
func WithL1Prefetcher(k L1Prefetcher) Option { return func(e *Evaluator) { e.l1pf = k } }

// WithIPCPPrefetcher replaces the L1 stride prefetcher with the IPCP-style
// composite (Figure 17). Shorthand for WithL1Prefetcher(L1IPCP).
func WithIPCPPrefetcher() Option { return WithL1Prefetcher(L1IPCP) }

// WithWorkers bounds the Sweep worker pool (default: runtime.NumCPU()).
func WithWorkers(n int) Option { return func(e *Evaluator) { e.workers = n } }

// WithRunParallelism bounds the intra-run worker set of every simulation
// this evaluator runs: trace decode-ahead for streaming sources, sharded
// scratch reset, and the sharded profile-analysis pass. It shapes only HOW a
// run executes — results stay bit-identical at every value (the
// internal/sim/difftest harness enforces this), so it never enters result
// cache keys or store fingerprints. The effective width is derated under
// concurrent sweep load so intra-run workers and sweep workers do not
// oversubscribe the machine. 0 or 1 runs each simulation fully synchronous
// (the default).
func WithRunParallelism(n int) Option { return func(e *Evaluator) { e.runPar = n } }

// WithBackends configures remote prophetd base URLs (e.g.
// "http://worker1:8373") as a sharded sweep fleet. When at least one
// backend is configured, Sweep assigns each job to a backend by a
// deterministic hash of its workload+scheme key, batches per-backend jobs
// into single POST /v1/batch requests, retries failed batches, and fails
// over to the in-process engine when a backend stays down — results come
// back in job order, byte-identical to a purely local sweep as long as the
// backends simulate the same engine configuration. Jobs naming "file:"
// trace workloads always run locally (remote daemons cannot read this
// machine's files). Run, RunJob, and SweepLocal never leave the process.
func WithBackends(urls ...string) Option {
	return func(e *Evaluator) { e.backendURLs = append([]string(nil), urls...) }
}

// WithBackendClient sets the HTTP client used to reach backends (default: a
// client with no request timeout — sweeps are bounded by their context).
func WithBackendClient(c *http.Client) Option {
	return func(e *Evaluator) { e.backendClient = c }
}

// WithBackendRetries sets how many attempts each batch gets on its backend
// before failing over to the local engine (default 2).
func WithBackendRetries(n int) Option {
	return func(e *Evaluator) { e.backendRetries = n }
}

// WithBackendMaxBatch caps jobs per batch request; a backend's shard beyond
// the cap is split into concurrent chunks (default 0 = one request per
// backend per sweep).
func WithBackendMaxBatch(n int) Option {
	return func(e *Evaluator) { e.backendMaxBatch = n }
}

// WithScheduler selects the fleet scheduling strategy by name (see
// Schedulers): "hash" (the default) places chunks deterministically by
// workload+scheme affinity with idle-peer work stealing; "least-loaded"
// probes each peer's GET /v1/health and routes chunks to the least busy
// one — better for heterogeneous fleets, identical merged output either
// way. New panics on an unknown name; CLIs should validate against
// Schedulers() first.
func WithScheduler(name string) Option {
	return func(e *Evaluator) { e.scheduler = name }
}

// Schedulers lists the strategy names WithScheduler accepts.
func Schedulers() []string { return dispatch.Schedulers() }

// ValidScheduler reports whether name resolves to a fleet scheduling
// strategy ("" counts: it means the default).
func ValidScheduler(name string) bool {
	_, err := dispatch.SchedulerByName(name)
	return err == nil
}

// WithLogf routes the evaluator's operational warnings (failed health
// probes, short engine returns) to a custom sink (default: the standard
// library logger).
func WithLogf(f func(format string, args ...any)) Option {
	return func(e *Evaluator) { e.logf = f }
}

// New constructs an Evaluator from the paper's default configuration plus
// the given options.
func New(opts ...Option) *Evaluator {
	e := &Evaluator{opts: DefaultOptions()}
	for _, o := range opts {
		o(e)
	}
	cfg := e.opts.pipelineConfig()
	switch e.l1pf {
	case L1IPCP:
		cfg.Sim.L1PF = sim.L1IPCP
		// Keep the bulk Options form in sync so Options() reports the
		// configuration actually simulated.
		e.opts.IPCPPrefetcher = true
	case L1None:
		cfg.Sim.L1PF = sim.L1None
	}
	cfg.Run = sim.Opts{Parallelism: e.runPar}
	e.eng = pipeline.NewEvaluator(cfg, e.workers)
	if e.logf == nil {
		e.logf = log.Printf
	}
	// The coordinator always exists, even with an empty initial fleet, so
	// peers can join at runtime (AddBackend / prophetd's POST /v1/peers).
	e.disp = e.newDispatcher()
	return e
}

// Backends reports the live fleet's peer base URLs in join order (nil when
// sweeps run purely in process). Unlike the WithBackends list, this tracks
// runtime joins and drains.
func (e *Evaluator) Backends() []string {
	ps := e.disp.Peers()
	if len(ps) == 0 {
		return nil
	}
	return ps
}

// SchedulerName reports the fleet scheduling strategy in use.
func (e *Evaluator) SchedulerName() string { return e.disp.SchedulerName() }

// DispatchStats reports cumulative sweep-dispatch counters; all zeros until
// a sweep is dispatched over at least one backend.
func (e *Evaluator) DispatchStats() DispatchStats {
	st := e.disp.Stats()
	return DispatchStats{
		Remote:     st.Remote,
		Local:      st.Local,
		Retries:    st.Retries,
		Failovers:  st.Failovers,
		Cached:     st.Cached,
		ShortLocal: st.ShortLocal,
		Stolen:     st.Stolen,
	}
}

// Workers reports the sweep pool width actually in use.
func (e *Evaluator) Workers() int { return e.eng.Workers() }

// RunParallelism reports the configured intra-run parallelism bound (0 or 1
// means fully synchronous runs).
func (e *Evaluator) RunParallelism() int { return e.runPar }

// Options reports the resolved configuration the evaluator was built with
// (functional options folded into the bulk form) — introspection for
// services that surface their engine's knobs. L1None has no representation
// in the legacy Options struct; WithL1Prefetcher(L1None) reports as the
// default.
func (e *Evaluator) Options() Options { return e.opts }

// BaselineCacheStats reports baseline cache hits and misses so far — each
// miss is one no-prefetching simulation; each hit is one such simulation
// amortized away.
func (e *Evaluator) BaselineCacheStats() (hits, misses int64) { return e.eng.CacheStats() }

// Schemes lists every registered scheme name, sorted.
func (e *Evaluator) Schemes() []string { return registry.Names() }

// Job names one unit of sweep work.
type Job struct {
	Workload Workload
	Scheme   Scheme
	// TuneRecords caps tuning traces for schemes that search runtime
	// knobs (RPG2's prefetch-distance binary search). 0 = full-length.
	TuneRecords uint64
}

// Jobs builds the cross product of workloads and schemes in workload-major
// order — the usual sweep shape ("run these schemes on these workloads").
func Jobs(ws []Workload, schemes ...Scheme) []Job {
	out := make([]Job, 0, len(ws)*len(schemes))
	for _, w := range ws {
		for _, s := range schemes {
			out = append(out, Job{Workload: w, Scheme: s})
		}
	}
	return out
}

// Result pairs a sweep job with its outcome. Exactly one of Stats/Err is
// meaningful.
type Result struct {
	Job   Job
	Stats RunStats
	// Meta carries scheme-specific extras (rpg2: "kernels", "distance";
	// prophet: "hints", "metaWays", "disableTP"). May be nil.
	Meta map[string]int
	Err  error
}

// Report is a detailed single-run outcome: the normalized stats plus
// scheme-specific metadata (rpg2: "kernels", "distance"; prophet: "hints",
// "metaWays", "disableTP").
type Report struct {
	Stats RunStats
	Meta  map[string]int
}

// Run evaluates one workload under one scheme, returning metrics normalized
// to the no-temporal-prefetching baseline on the same trace. The baseline
// is simulated at most once per workload per Evaluator and cached; unknown
// workloads and schemes surface as errors, never panics.
func (e *Evaluator) Run(ctx context.Context, w Workload, scheme Scheme) (RunStats, error) {
	rep, err := e.RunDetailed(ctx, w, scheme)
	return rep.Stats, err
}

// RunDetailed is Run plus scheme-specific metadata.
func (e *Evaluator) RunDetailed(ctx context.Context, w Workload, scheme Scheme) (Report, error) {
	return e.RunJob(ctx, Job{Workload: w, Scheme: scheme})
}

// RunJob evaluates one sweep job synchronously — RunDetailed plus the
// job-level knobs (TuneRecords). Single-run callers that need those knobs
// (the prophetd evaluate endpoint) use this instead of building a
// one-element Sweep. With a durable store attached, a stored result is
// returned without simulating, and a computed one writes through.
func (e *Evaluator) RunJob(ctx context.Context, j Job) (Report, error) {
	job, err := e.job(j)
	if err != nil {
		return Report{}, err
	}
	if rep, ok := e.storeGet(j); ok {
		return rep, nil
	}
	out := e.eng.Run(ctx, job)
	if out.Err != nil {
		return Report{}, fmt.Errorf("prophet: %s under %s: %w", j.Workload.Name, j.Scheme, out.Err)
	}
	rep := Report{Stats: summarize(out.Stats, out.Base), Meta: out.Meta}
	e.storePut(j, rep)
	return rep, nil
}

// Sweep fans the jobs out over the evaluator's worker pool and returns one
// Result per job, in job order. Baselines are shared through the cache: a
// 5-scheme sweep over one workload simulates its baseline once, not five
// times. Cancelling the context aborts the sweep promptly — jobs not yet
// started report the context error — and Sweep returns that error.
//
// With at least one live backend (WithBackends, or a runtime AddBackend /
// peer join), the sweep is instead coordinated across the fleet: jobs are
// chunked and placed by the configured scheduler, failed backends fail
// over to the local engine, and the merged results are byte-identical to
// an in-process sweep of the same jobs.
func (e *Evaluator) Sweep(ctx context.Context, jobs ...Job) ([]Result, error) {
	if e.disp.NumPeers() > 0 {
		return e.disp.Dispatch(ctx, jobs), ctx.Err()
	}
	return e.sweepLocal(ctx, jobs...)
}

// SweepStream is Sweep with incremental delivery: emit is called exactly
// once per job — identified by the job's index — as results become
// available, in completion order rather than job order (callers that need
// ordered output merge by index; the full index set is always covered).
// Calls to emit are serialized. Results are identical to Sweep's: the
// streamed rows, merged by index, reproduce the buffered sweep
// byte-for-byte.
//
// With live backends the fleet coordinator streams chunk completions;
// without, jobs run through the local engine in bounded chunks so progress
// still renders incrementally.
func (e *Evaluator) SweepStream(ctx context.Context, emit func(i int, r Result), jobs ...Job) error {
	if e.disp.NumPeers() > 0 {
		e.disp.DispatchFunc(ctx, jobs, emit)
		return ctx.Err()
	}
	chunk := e.backendMaxBatch
	if chunk <= 0 {
		chunk = e.Workers()
		if chunk < 1 {
			chunk = 1
		}
	}
	var firstErr error
	for start := 0; start < len(jobs); start += chunk {
		end := start + chunk
		if end > len(jobs) {
			end = len(jobs)
		}
		// A failed chunk (context cancellation) still emits its rows — the
		// engine stamps the per-job errors — so every index is covered and
		// the stream mirrors what a buffered sweep would have returned.
		rs, err := e.sweepLocal(ctx, jobs[start:end]...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for k, r := range rs {
			emit(start+k, r)
		}
	}
	return firstErr
}

// SweepLocal is Sweep restricted to the in-process engine, ignoring any
// configured backends. The daemon's batch endpoint executes through this,
// so fleet fan-out terminates after one hop instead of cascading between
// peers.
func (e *Evaluator) SweepLocal(ctx context.Context, jobs ...Job) ([]Result, error) {
	return e.sweepLocal(ctx, jobs...)
}

func (e *Evaluator) sweepLocal(ctx context.Context, jobs ...Job) ([]Result, error) {
	results := make([]Result, len(jobs))
	valid := make([]pipeline.Job, 0, len(jobs))
	validIdx := make([]int, 0, len(jobs))
	for i, j := range jobs {
		results[i] = Result{Job: j}
		pj, jerr := e.job(j)
		if jerr != nil {
			// Unresolvable workloads land in their result row; the rest
			// of the sweep still runs.
			results[i].Err = jerr
			continue
		}
		// Durable-store hits are answered without touching the engine, so
		// a warm restart's repeat sweep runs zero simulations (not even
		// the baselines the engine would otherwise share per workload).
		if rep, ok := e.storeGet(j); ok {
			results[i].Stats = rep.Stats
			results[i].Meta = rep.Meta
			continue
		}
		valid = append(valid, pj)
		validIdx = append(validIdx, i)
	}
	outs, err := e.eng.Sweep(ctx, valid...)
	for k, out := range outs {
		i := validIdx[k]
		if out.Err != nil {
			results[i].Err = fmt.Errorf("prophet: %s under %s: %w",
				jobs[i].Workload.Name, jobs[i].Scheme, out.Err)
			continue
		}
		results[i].Stats = summarize(out.Stats, out.Base)
		results[i].Meta = out.Meta
		e.storePut(jobs[i], Report{Stats: results[i].Stats, Meta: results[i].Meta})
	}
	return results, err
}

// job resolves a public Job into an engine job.
func (e *Evaluator) job(j Job) (pipeline.Job, error) {
	f, err := j.Workload.factory()
	if err != nil {
		return pipeline.Job{}, err
	}
	return pipeline.Job{
		Key:         j.Workload.key(),
		Factory:     f,
		Scheme:      string(j.Scheme),
		TuneRecords: j.TuneRecords,
	}, nil
}

// Experiment reproduces one of the paper's tables or figures by ID (see
// ExperimentIDs), running its workloads on the evaluator's worker pool, and
// returns the rendered text. Output is byte-identical regardless of worker
// count.
//
// Each experiment prescribes its own system/pipeline configuration (that is
// what it reproduces — F17 overrides the L1 prefetcher, F18 the DRAM
// channels, F16 the analysis knobs); only the worker pool comes from this
// evaluator. Options like WithELAcc do not alter experiment output — use
// Run/Sweep to measure a custom configuration.
func (e *Evaluator) Experiment(id string, quick bool) (string, error) {
	res, err := experiments.Run(id, experiments.Options{Quick: quick, Workers: e.eng.Workers()})
	if err != nil {
		return "", err
	}
	return res.Render(), nil
}

// RegisterScheme installs a custom prefetching scheme under name, making it
// available to every Evaluator (and the cmd tools) alongside the built-in
// self-registered schemes. The factory builds a fresh scheme instance per
// run, so implementations may keep per-run state without locking. Duplicate
// names are rejected.
func RegisterScheme(name string, factory SchemeFactory) error {
	return registry.Register(name, factory)
}

// SchemeFactory builds scheme instances; see internal/registry for the
// run-context contract.
type SchemeFactory = registry.Factory

// Experiment reproduces one of the paper's tables or figures by ID with a
// default evaluator (all CPUs).
func Experiment(id string, quick bool) (string, error) {
	return New().Experiment(id, quick)
}

// ExperimentIDs lists the reproducible artifacts in paper order.
func ExperimentIDs() []string {
	var out []string
	for _, e := range experiments.Registry() {
		out = append(out, e.ID)
	}
	return out
}
